#!/usr/bin/env bash
# Hermetic CI for the rlibm-rs workspace.
#
# The build policy is ZERO registry dependencies: everything resolves
# from path dependencies, so every step below runs with --offline and
# must succeed on a machine with no network access. If a registry
# dependency ever sneaks back into a manifest, the first step fails at
# resolution time — the regression this script exists to catch.

set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --offline =="
cargo build --workspace --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== panic-free gate: library crates deny unwrap/expect/panic =="
# The failure-model policy (DESIGN.md): every reachable failure in the
# library crates is a typed error. --lib scopes the gate to library
# targets; tests, benches and examples stay exempt. assert!-style
# invariant checks and unreachable!() on proven-impossible arms are
# intentionally still allowed.
cargo clippy --offline --lib \
    -p rlibm-obs -p rlibm-fp -p rlibm-posit -p rlibm-mp -p rlibm-lp \
    -p rlibm-core -p rlibm-math -p rlibm-serve \
    -- -D warnings \
    -D clippy::unwrap_used -D clippy::expect_used -D clippy::panic

echo "== packed-table determinism: rebuild via build.rs, diff the pin =="
# The lookup tables are emitted at build time (crates/libm/build.rs)
# from the 160-bit oracle and bit-packed; the committed tables.fnv pins
# their exact bytes. Force a regeneration and diff the checksum the
# build script stamped into its emission against the committed pin —
# a mismatch means the generated tables drifted from what every
# certification artifact was computed against. (The build script itself
# also fails hard on a mismatch; this leg keeps the property visible
# and greppable in CI output.)
touch crates/libm/build.rs
cargo build --release --offline -p rlibm-math
GEN_TABLES=$(ls -t target/release/build/rlibm-math-*/out/packed_tables.rs | head -1)
GEN_FNV=$(grep -o 'TABLES_FNV64: u64 = 0x[0-9a-f]*' "$GEN_TABLES" | grep -o '0x[0-9a-f]*')
PINNED_FNV=$(cat crates/libm/tables.fnv)
if [ "$GEN_FNV" != "$PINNED_FNV" ]; then
    echo "FAIL: regenerated table checksum $GEN_FNV != pinned $PINNED_FNV"
    exit 1
fi
echo "regenerated tables match pin $PINNED_FNV"

echo "== tier counters: delta accounting in both telemetry configs =="
# Every in-domain call ships from exactly one of the three progressive
# tiers (prefix/full/dd), scalar and batched alike; with telemetry off
# the counters must stay zero and the outputs bit-identical. Run the
# delta suite in both configurations.
cargo test -q --offline --release -p rlibm --features telemetry --test tier_counters
cargo test -q --offline --release -p rlibm --test tier_counters

echo "== telemetry-off identity: instrumentation changes no output bit =="
# Workspace-wide test runs above unify features with rlibm-bench and so
# run with telemetry ON; building the facade crate alone leaves telemetry
# OFF. The telemetry test suite pins the runtime library's outputs on a
# fixed sweep to one checksum constant, so passing in both configurations
# proves the instrumented and uninstrumented libraries are bit-identical.
cargo test -q --offline --release -p rlibm --test telemetry

echo "== simd feature leg: build, bit-identity matrix, clippy =="
# The AVX2 staged slice kernels (crates/libm/src/slice_simd.rs) must be
# drop-in bit-identical to the scalar reference. The workspace test run
# above already pins the batched-output checksum with default features;
# this leg re-runs the identity suite with `simd` on — same pinned
# constant, so a single diverging output bit fails one of the two runs.
# Clippy with the feature keeps the intrinsics cfg warning-clean.
cargo build --workspace --release --offline --features rlibm/simd,rlibm-bench/simd
cargo test -q --offline --release -p rlibm --features simd --test two_tier_identity
cargo clippy --workspace --all-targets --offline \
    --features rlibm/simd,rlibm-bench/simd -- -D warnings

echo "== fault-injection smoke: corrupted fast paths never mis-round =="
# Seeded corruption at all 18 tier-1 kernel sites, checked bit-for-bit
# against the dd reference (which has no injection site). The full
# acceptance bar is 100k injections/function (run the bin with no args);
# CI uses a 5k smoke target to stay fast. Exits nonzero on any escaped
# corruption or injection shortfall.
cargo run --release --offline -p rlibm-core --features fault \
    --bin fault_sweep -- 5000

echo "== serve fault leg: chaos-injected supervision tests =="
# The workspace test run above unifies features WITHOUT rlibm-serve's
# `fault` (production builds carry no serve-layer injection sites), so
# the chaos-dependent serve tests — panic salvage/restart, restart-budget
# exhaustion, corruption detection — only compile and run here. Clippy
# with the feature keeps the injection code under the same panic-free
# gate as the rest of the serve library (the one deliberate chaos panic
# site carries a scoped allow).
cargo test -q --offline --release -p rlibm-serve --features fault
cargo clippy --offline --lib -p rlibm-serve --features fault \
    -- -D warnings \
    -D clippy::unwrap_used -D clippy::expect_used -D clippy::panic

echo "== serve fault+telemetry leg: flight recorder under chaos =="
# The fault leg above runs with tracing compiled OUT (flight dumps must
# be absent); this leg turns the `telemetry` feature on so the chaos
# tests additionally assert that panics and corruption dump the flight
# recorder — and that the pinned serve output checksum still holds, the
# bit-identity half of the tracing contract.
cargo test -q --offline --release -p rlibm-serve --features fault,telemetry

echo "== chaos smoke: chaos_bench --quick + committed manifest check =="
# Six adversarial scenarios against the supervised serving layer (shard
# panic storms, deadline pressure, ring corruption, backpressure, drain
# under load, kernel faults composed with panics); the bin asserts on
# every scenario that each request ends as exactly one of a bit-identical
# completion or an explicitly-reasoned shed record, with zero mis-rounded
# outputs. --check re-validates the committed full-run manifest: schema,
# per-row balance, zero mismatches, and the 100k-injection floor.
mkdir -p target/bench-smoke
cargo run --release --offline -p rlibm-bench --features fault --bin chaos_bench -- \
    --quick --out target/bench-smoke/CHAOS_manifest.quick.json
grep -q '"schema": "rlibm-chaos/v1"' target/bench-smoke/CHAOS_manifest.quick.json
cargo run --release --offline -p rlibm-bench --features fault --bin chaos_bench -- \
    --check CHAOS_manifest.json

echo "== bench smoke: fig3 --quick + JSON schema =="
# Quick-mode harness run, fully offline, writing under target/ so the
# committed full-run BENCH_*.json files are never clobbered. Each
# harness re-parses and schema-checks its own emission and exits
# non-zero on a malformed document; the greps below double-check the
# files landed with the expected schema tags.
mkdir -p target/bench-smoke
cargo run --release --offline -p rlibm-bench --bin fig3 -- \
    --quick --out target/bench-smoke/BENCH_fig3.quick.json
grep -q '"schema": "rlibm-bench/fig3/v2"' target/bench-smoke/BENCH_fig3.quick.json
cargo run --release --offline -p rlibm-bench --bin fig4 -- \
    --quick --out target/bench-smoke/BENCH_fig4.quick.json
grep -q '"schema": "rlibm-bench/fig4/v1"' target/bench-smoke/BENCH_fig4.quick.json
cargo run --release --offline -p rlibm-bench --bin vector_harness -- \
    --quick --out target/bench-smoke/BENCH_vector.quick.json
grep -q '"schema": "rlibm-bench/vector/v2"' target/bench-smoke/BENCH_vector.quick.json
cargo run --release --offline -p rlibm-bench --bin gen_bench -- \
    --quick --out target/bench-smoke/BENCH_gen.quick.json
grep -q '"schema": "rlibm-bench/gen/v1"' target/bench-smoke/BENCH_gen.quick.json

echo "== serve smoke: serve_bench --quick + JSON schema =="
# Closed-loop sharded serving over the slice kernels (simd config, like
# the committed full run): the bin itself asserts every served response
# is bit-identical to the scalar functions before writing the document.
cargo run --release --offline -p rlibm-bench --features simd --bin serve_bench -- \
    --quick --out target/bench-smoke/BENCH_serve.quick.json
grep -q '"schema": "rlibm-bench/serve/v1"' target/bench-smoke/BENCH_serve.quick.json

echo "== vector regression gate: committed BENCH_vector vs quick simd run =="
# The committed BENCH_vector.json is a full simd-feature run; a fresh
# --quick run in the same configuration must stay within the comparator's
# regression threshold on every ns_* field (scalar AND batched paths),
# so a slice-kernel pessimisation fails CI here. Threshold is widened to
# +60% over the default: quick mode does fewer reps and this gate runs
# on whatever shared hardware CI lands on — it is an order-of-magnitude
# tripwire, while the committed-file protocol (EXPERIMENTS.md) remains
# the precise before/after evidence.
cargo run --release --offline -p rlibm-bench --features simd --bin vector_harness -- \
    --quick --out target/bench-smoke/BENCH_vector.simd.quick.json
cargo run --release --offline -p rlibm-bench --bin bench_compare -- \
    BENCH_vector.json target/bench-smoke/BENCH_vector.simd.quick.json --threshold 60

echo "== telemetry smoke: telemetry_report --quick + JSON schema =="
# Exercises every instrumented layer (oracle Ziv loop, LP, polygen,
# validation, runtime fallbacks, batched eval) and snapshot-checks the
# registry; the binary itself asserts the core sections are populated.
cargo run --release --offline -p rlibm-bench --bin telemetry_report -- \
    --quick --out target/bench-smoke/TELEM_report.quick.json
grep -q '"schema": "rlibm-telem/v1"' target/bench-smoke/TELEM_report.quick.json

echo "== trace smoke: trace_report --quick + committed report check =="
# Latency attribution across the serving stack: the harness drives the
# traced closed loop (healthy, rescalar-harvest, deadline, drain legs —
# plus the chaos legs under `fault`), asserts every served bit matches
# the scalar functions, and schema-checks its own emission. The default
# build exercises the no-chaos path; the fault build must additionally
# produce an exemplar for every shed reason and at least one flight
# dump. --check re-validates the committed full-run report in both
# configurations, so a stale or hand-edited TRACE_report.json fails CI.
cargo run --release --offline -p rlibm-bench --bin trace_report -- \
    --quick --out target/bench-smoke/TRACE_report.quick.json
grep -q '"schema": "rlibm-trace/v1"' target/bench-smoke/TRACE_report.quick.json
cargo run --release --offline -p rlibm-bench --bin trace_report -- \
    --check TRACE_report.json
cargo run --release --offline -p rlibm-bench --features fault --bin trace_report -- \
    --quick --out target/bench-smoke/TRACE_report.fault.quick.json
grep -q '"fault": true' target/bench-smoke/TRACE_report.fault.quick.json
cargo run --release --offline -p rlibm-bench --features fault --bin trace_report -- \
    --check TRACE_report.json

echo "== certification smoke: special-region shards certify clean =="
# Five special-region shards per (kind, function) at 2^16 geometry —
# signed zeros/subnormals, the 1.0 neighborhood, inf/NaN and the posit
# analogues — fast path vs dd reference bit-for-bit plus a budgeted
# Ziv-oracle sample, fully offline, state wiped each run so the smoke
# re-certifies. Exits nonzero on any mismatch.
cargo run --release --offline -p rlibm-bench --bin certify -- \
    --quick --out target/bench-smoke/CERT_manifest.quick.json
grep -q '"schema": "rlibm-cert/v1"' target/bench-smoke/CERT_manifest.quick.json

echo "== certification manifest check: committed CERT_manifest.json =="
# Re-parses the committed full-run manifest, re-validates the schema,
# byte-compares it against its own canonical re-emission, cross-checks
# the function set against the live dispatch registry, and fails on any
# recorded mismatch.
cargo run --release --offline -p rlibm-bench --bin certify -- \
    --check CERT_manifest.json

echo "== bench_compare smoke: committed BENCH files self-diff clean =="
# A file diffed against itself must report all-1.0 ratios and exit 0;
# nonzero means the comparator (or a committed artifact) broke.
cargo run --release --offline -p rlibm-bench --bin bench_compare -- \
    BENCH_fig3.json BENCH_fig3.json
cargo run --release --offline -p rlibm-bench --bin bench_compare -- \
    BENCH_fig4.json BENCH_fig4.json
cargo run --release --offline -p rlibm-bench --bin bench_compare -- \
    BENCH_gen.json BENCH_gen.json
cargo run --release --offline -p rlibm-bench --bin bench_compare -- \
    BENCH_vector.json BENCH_vector.json
cargo run --release --offline -p rlibm-bench --bin bench_compare -- \
    BENCH_serve.json BENCH_serve.json
cargo run --release --offline -p rlibm-bench --bin bench_compare -- \
    CHAOS_manifest.json CHAOS_manifest.json
cargo run --release --offline -p rlibm-bench --bin bench_compare -- \
    TRACE_report.json TRACE_report.json

echo "CI OK"
