#!/usr/bin/env bash
# Hermetic CI for the rlibm-rs workspace.
#
# The build policy is ZERO registry dependencies: everything resolves
# from path dependencies, so every step below runs with --offline and
# must succeed on a machine with no network access. If a registry
# dependency ever sneaks back into a manifest, the first step fails at
# resolution time — the regression this script exists to catch.

set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --offline =="
cargo build --workspace --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== bench smoke: fig3 --quick + JSON schema =="
# Quick-mode harness run, fully offline, writing under target/ so the
# committed full-run BENCH_*.json files are never clobbered. Each
# harness re-parses and schema-checks its own emission and exits
# non-zero on a malformed document; the greps below double-check the
# files landed with the expected schema tags.
mkdir -p target/bench-smoke
cargo run --release --offline -p rlibm-bench --bin fig3 -- \
    --quick --out target/bench-smoke/BENCH_fig3.quick.json
grep -q '"schema": "rlibm-bench/fig3/v1"' target/bench-smoke/BENCH_fig3.quick.json
cargo run --release --offline -p rlibm-bench --bin fig4 -- \
    --quick --out target/bench-smoke/BENCH_fig4.quick.json
grep -q '"schema": "rlibm-bench/fig4/v1"' target/bench-smoke/BENCH_fig4.quick.json
cargo run --release --offline -p rlibm-bench --bin vector_harness -- \
    --quick --out target/bench-smoke/BENCH_vector.quick.json
grep -q '"schema": "rlibm-bench/vector/v1"' target/bench-smoke/BENCH_vector.quick.json

echo "CI OK"
