#!/usr/bin/env bash
# Hermetic CI for the rlibm-rs workspace.
#
# The build policy is ZERO registry dependencies: everything resolves
# from path dependencies, so every step below runs with --offline and
# must succeed on a machine with no network access. If a registry
# dependency ever sneaks back into a manifest, the first step fails at
# resolution time — the regression this script exists to catch.

set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --offline =="
cargo build --workspace --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
