//! # rlibm — correctly rounded 32-bit math libraries in Rust
//!
//! A from-scratch Rust reproduction of **RLIBM-32** (Lim & Nagarakatte,
//! *High Performance Correctly Rounded Math Libraries for 32-bit Floating
//! Point Representations*, PLDI 2021).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`fp`] — bit-level float utilities and 16-bit software floats.
//! * [`posit`] — posit32/posit16 arithmetic built from scratch.
//! * [`mp`] — the multi-precision oracle (MPFR substitute).
//! * [`lp`] — the exact rational LP solver (SoPlex substitute).
//! * [`gen`] — the RLIBM-32 generator (rounding intervals, reduced
//!   intervals, domain splitting, counterexample-guided polynomials).
//! * [`math`] — the generated correctly rounded library for `f32`,
//!   `posit32` and `bfloat16`.
//! * [`obs`] — zero-dependency telemetry (counters, log2 histograms,
//!   span timers). Compiles to no-ops unless the `telemetry` feature of
//!   this crate (or of any crate in the build graph) is enabled.
//!
//! # Quickstart
//!
//! ```
//! // Correctly rounded float32 functions:
//! let y = rlibm::math::exp(1.0f32);
//! assert_eq!(y, 2.7182817f32);
//! let z = rlibm::math::log2(8.0f32);
//! assert_eq!(z, 3.0);
//! ```

pub use rlibm_core as gen;
pub use rlibm_fp as fp;
pub use rlibm_lp as lp;
pub use rlibm_math as math;
pub use rlibm_mp as mp;
pub use rlibm_obs as obs;
pub use rlibm_posit as posit;

/// The stack-wide error taxonomy: every typed failure a library crate
/// can surface, under one roof for callers that drive the whole
/// pipeline (oracle → LP → generator → runtime library).
///
/// Each layer keeps its own narrow error type — [`mp::OracleError`] for
/// the Ziv precision ceiling, [`lp::LpError`] for simplex cycling and
/// malformed constraint systems, [`gen::pipeline::GenError`] for the
/// end-to-end generator (which internally wraps the other two), and
/// [`math::UnknownFunction`] for by-name dispatch — and `RlibmError`
/// provides the `From` lattice so `?` composes across layers.
#[derive(Debug, Clone, PartialEq)]
pub enum RlibmError {
    /// The Ziv oracle hit its precision ceiling (or an unexpected zero).
    Oracle(mp::OracleError),
    /// The exact rational / f64 simplex failed (cycling, dimensions).
    Lp(lp::LpError),
    /// The end-to-end generator failed (includes checkpoint I/O).
    Generator(gen::pipeline::GenError),
    /// A by-name lookup in the runtime library missed.
    UnknownFunction(math::UnknownFunction),
}

impl From<mp::OracleError> for RlibmError {
    fn from(e: mp::OracleError) -> Self {
        RlibmError::Oracle(e)
    }
}

impl From<lp::LpError> for RlibmError {
    fn from(e: lp::LpError) -> Self {
        RlibmError::Lp(e)
    }
}

impl From<gen::pipeline::GenError> for RlibmError {
    fn from(e: gen::pipeline::GenError) -> Self {
        RlibmError::Generator(e)
    }
}

impl From<math::UnknownFunction> for RlibmError {
    fn from(e: math::UnknownFunction) -> Self {
        RlibmError::UnknownFunction(e)
    }
}

impl core::fmt::Display for RlibmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RlibmError::Oracle(e) => write!(f, "oracle: {e}"),
            RlibmError::Lp(e) => write!(f, "lp: {e}"),
            RlibmError::Generator(e) => write!(f, "generator: {e}"),
            RlibmError::UnknownFunction(e) => write!(f, "lookup: {e}"),
        }
    }
}

impl std::error::Error for RlibmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RlibmError::Oracle(e) => Some(e),
            RlibmError::Lp(e) => Some(e),
            RlibmError::Generator(e) => Some(e),
            RlibmError::UnknownFunction(e) => Some(e),
        }
    }
}
