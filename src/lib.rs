//! # rlibm — correctly rounded 32-bit math libraries in Rust
//!
//! A from-scratch Rust reproduction of **RLIBM-32** (Lim & Nagarakatte,
//! *High Performance Correctly Rounded Math Libraries for 32-bit Floating
//! Point Representations*, PLDI 2021).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`fp`] — bit-level float utilities and 16-bit software floats.
//! * [`posit`] — posit32/posit16 arithmetic built from scratch.
//! * [`mp`] — the multi-precision oracle (MPFR substitute).
//! * [`lp`] — the exact rational LP solver (SoPlex substitute).
//! * [`gen`] — the RLIBM-32 generator (rounding intervals, reduced
//!   intervals, domain splitting, counterexample-guided polynomials).
//! * [`math`] — the generated correctly rounded library for `f32`,
//!   `posit32` and `bfloat16`.
//!
//! # Quickstart
//!
//! ```
//! // Correctly rounded float32 functions:
//! let y = rlibm::math::exp(1.0f32);
//! assert_eq!(y, 2.7182817f32);
//! let z = rlibm::math::log2(8.0f32);
//! assert_eq!(z, 3.0);
//! ```

pub use rlibm_core as gen;
pub use rlibm_fp as fp;
pub use rlibm_lp as lp;
pub use rlibm_math as math;
pub use rlibm_mp as mp;
pub use rlibm_posit as posit;
