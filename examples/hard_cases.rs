//! Hunts for "hard cases": inputs where a conventional library misrounds
//! but the correctly rounded library does not — the concrete inputs behind
//! the paper's Table 1 counts.
//!
//! Run with: `cargo run --release --example hard_cases`

use rlibm::gen::interval::rounding_interval;
use rlibm::gen::validate::stratified_f32;
use rlibm::mp::{correctly_rounded, Func};

fn main() {
    println!("Hunting misroundings of the float-libm model (paper Table 1)...\n");
    let xs = stratified_f32(25, 0xC0FFEE);
    let mut found = 0;
    for f in Func::ALL {
        for &x in &xs {
            let base = match f.name() {
                "ln" => rlibm::math::baselines::float32::ln(x),
                "log2" => rlibm::math::baselines::float32::log2(x),
                "log10" => rlibm::math::baselines::float32::log10(x),
                "exp" => rlibm::math::baselines::float32::exp(x),
                "exp2" => rlibm::math::baselines::float32::exp2(x),
                "exp10" => rlibm::math::baselines::float32::exp10(x),
                "sinh" => rlibm::math::baselines::float32::sinh(x),
                "cosh" => rlibm::math::baselines::float32::cosh(x),
                "sinpi" => rlibm::math::baselines::float32::sinpi(x),
                "cospi" => rlibm::math::baselines::float32::cospi(x),
                _ => unreachable!(),
            };
            let ours = rlibm::math::eval_f32_by_name(f.name(), x).expect("known name");
            if base.to_bits() != ours.to_bits() && !base.is_nan() && base.is_finite() {
                let oracle: f32 = correctly_rounded(f, x);
                if oracle.to_bits() != ours.to_bits() {
                    continue; // zero-sign or NaN funny business: skip
                }
                found += 1;
                if found <= 12 {
                    println!("{}({:e})  [bits {:#010x}]", f.name(), x, x.to_bits());
                    println!("  conventional: {base:e}  (WRONG)");
                    println!("  rlibm/oracle: {oracle:e}");
                    // Show WHY it's hard: the true value sits close to the
                    // rounding boundary of the two candidates.
                    if let Some(iv) = rounding_interval(oracle) {
                        let mp = rlibm::mp::correctly_rounded_f64(f, x as f64);
                        let to_lo = (mp - iv.lo).abs();
                        let to_hi = (iv.hi - mp).abs();
                        let frac = to_lo.min(to_hi) / (iv.hi - iv.lo);
                        println!(
                            "  oracle f64 value {mp:e}; distance to nearest interval edge = {:.3} of the interval",
                            frac
                        );
                    }
                    println!();
                }
            }
        }
    }
    println!("total misroundings of the conventional model in this sample: {found}");
    println!("(every one of them is correctly rounded by the rlibm functions)");
    assert!(found > 0, "expected to find hard cases in a sample this size");
}
