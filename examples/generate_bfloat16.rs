//! Runs the COMPLETE RLIBM generation pipeline end to end on a 16-bit
//! target and proves the paper's headline property — *correctly rounded
//! for all inputs* — by exhaustive validation.
//!
//! Pipeline stages exercised (paper Section 3):
//!   1. oracle result + rounding interval per input     (Algorithm 1)
//!   2. reduced-interval deduction                       (Algorithm 2)
//!   3. bit-pattern domain splitting                     (Algorithm 3)
//!   4. counterexample-guided polynomial generation      (Algorithm 4)
//!   5. exhaustive validation
//!
//! Run with: `cargo run --release --example generate_bfloat16`

use rlibm::fp::BFloat16;
use rlibm::gen::pipeline::{generate, GeneratorSpec};
use rlibm::gen::validate::{all_16bit, validate};
use rlibm::mp::Func;

fn main() {
    // --- log2 over [1, 2): the canonical reduced domain of every log ---
    // Special / exactly representable cases (here: log2(1) = 0) are
    // dispatched by the library front-end, exactly as in the paper.
    let inputs: Vec<BFloat16> = all_16bit::<BFloat16>()
        .filter(|x: &BFloat16| {
            x.is_finite()
                && x.to_f64() >= 1.0
                && x.to_f64() < 2.0
                && !rlibm::mp::oracle::is_special_case(Func::Log2, x.to_f64())
        })
        .collect();
    println!(
        "generating bfloat16 log2 over [1,2): {} inputs, degree <= 7",
        inputs.len()
    );
    let spec = GeneratorSpec::identity(Func::Log2, (0..=7).collect());
    let generated = generate(&spec, &inputs).expect("generation must succeed");
    let st = generated.stats();
    println!(
        "  generated in {:.2}s: {} reduced inputs, {} sub-domain(s), degree {}, {} LP calls",
        st.seconds, st.reduced_inputs, st.piecewise_sizes[0], st.degrees[0], st.lp_calls
    );
    let report = validate(
        Func::Log2,
        |x: BFloat16| BFloat16::from_f64(generated.eval(x.to_f64())),
        inputs.iter().copied(),
    );
    println!(
        "  exhaustive validation: {}/{} correct{}",
        report.total - report.wrong,
        report.total,
        if report.all_correct() { "  <- ALL inputs" } else { "  FAILURES!" }
    );
    assert!(report.all_correct());

    // --- exp over [-1, 1]: a dense two-sign domain -----------------------
    let inputs: Vec<BFloat16> = all_16bit::<BFloat16>()
        .filter(|x: &BFloat16| {
            x.is_finite()
                && x.to_f64().abs() <= 1.0
                && !rlibm::mp::oracle::is_special_case(Func::Exp, x.to_f64())
        })
        .collect();
    println!("\ngenerating bfloat16 exp over [-1,1]: {} inputs", inputs.len());
    let spec = GeneratorSpec::identity(Func::Exp, (0..=6).collect());
    let generated = generate(&spec, &inputs).expect("generation must succeed");
    let st = generated.stats();
    println!(
        "  generated in {:.2}s: {} reduced inputs, {} sub-domain(s) (pos+neg), degree {}",
        st.seconds, st.reduced_inputs, st.piecewise_sizes[0], st.degrees[0]
    );
    let report = validate(
        Func::Exp,
        |x: BFloat16| BFloat16::from_f64(generated.eval(x.to_f64())),
        inputs.iter().copied(),
    );
    println!(
        "  exhaustive validation: {}/{} correct",
        report.total - report.wrong,
        report.total
    );
    assert!(report.all_correct());

    println!("\nThe same machinery scales to 32-bit targets by sampling (the");
    println!("paper's counterexample-guided generation); see the table3 harness.");
}
