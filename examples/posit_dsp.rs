//! A domain scenario for the posit32 library: signal-processing style
//! computations (dB conversion, softmax, log-sum-exp) where posit
//! saturation semantics and correct rounding both matter.
//!
//! Run with: `cargo run --release --example posit_dsp`

use rlibm::math::posit::{cosh_p32, exp_p32, ln_p32, log10_p32};
use rlibm::posit::Posit32;

/// Power ratio to decibels: `10 * log10(p / p_ref)`.
fn to_db(power: Posit32, p_ref: Posit32) -> Posit32 {
    let ratio = power / p_ref;
    log10_p32(ratio) * Posit32::from_f64(10.0)
}

/// Numerically careful softmax over posit32 logits.
fn softmax(logits: &[Posit32]) -> Vec<Posit32> {
    // Subtract the max for stability (posit arithmetic is exact here).
    let max = logits
        .iter()
        .copied()
        .reduce(|a, b| if a > b { a } else { b })
        .expect("non-empty");
    let exps: Vec<Posit32> = logits.iter().map(|&l| exp_p32(l - max)).collect();
    let sum = exps.iter().copied().fold(Posit32::ZERO, |a, b| a + b);
    exps.iter().map(|&e| e / sum).collect()
}

fn main() {
    println!("== decibel meter on posit32 ==");
    let p_ref = Posit32::from_f64(1e-12); // reference power
    for &(label, w) in &[("whisper", 1e-9), ("speech", 1e-6), ("jet", 1e1)] {
        let db = to_db(Posit32::from_f64(w), p_ref);
        println!("  {label:>8}: {w:>8.0e} W -> {db} dB");
    }

    println!("\n== softmax with extreme logits ==");
    let logits: Vec<Posit32> = [-50.0, 0.0, 3.0, 3.1]
        .iter()
        .map(|&v| Posit32::from_f64(v))
        .collect();
    let probs = softmax(&logits);
    let mut total = Posit32::ZERO;
    for (l, p) in logits.iter().zip(&probs) {
        println!("  logit {l:>6}: p = {p}");
        total = total + *p;
    }
    println!("  sum = {total} (correctly rounded at every step)");

    println!("\n== why saturation semantics matter ==");
    // exp of a large posit: a repurposed double library overflows to inf,
    // which posits must encode as NaR — destroying the whole pipeline.
    let big = Posit32::from_f64(750.0);
    let correct = exp_p32(big);
    let naive = rlibm::math::baselines::double64::to_posit32("exp", big);
    println!("  exp(750): rlibm = {correct} (maxpos), repurposed double = {naive}");
    assert_eq!(correct, Posit32::MAXPOS);
    assert!(naive.is_nar());

    // log-sum-exp of large values survives thanks to saturation:
    let lse_inputs = [Posit32::from_f64(100.0), Posit32::from_f64(100.5)];
    let m = lse_inputs[1];
    let lse = m + ln_p32(exp_p32(lse_inputs[0] - m) + exp_p32(Posit32::ZERO));
    println!("  log-sum-exp(100, 100.5) = {lse}");

    println!("\n== tapered precision showcase ==");
    // Near 1.0, posit32 carries 27 fraction bits (f32 has 23): cosh of a
    // small value keeps four extra bits of the x^2/2 term.
    let small = Posit32::from_f64(0.001);
    let c = cosh_p32(small);
    println!("  cosh(0.001) = {:.12} (posit32 quantum near 1 is 2^-27)", c.to_f64());
    assert!(c > Posit32::ONE);
}
