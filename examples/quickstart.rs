//! Quickstart: the correctly rounded 32-bit math library in two minutes.
//!
//! Run with: `cargo run --release --example quickstart`

use rlibm::fp::BFloat16;
use rlibm::mp::{correctly_rounded, Func};
use rlibm::posit::Posit32;

fn main() {
    println!("== float32: the paper's ten functions ==");
    let x = 0.1f32;
    println!("ln({x})    = {:e}", rlibm::math::ln(x));
    println!("log2({x})  = {:e}", rlibm::math::log2(x));
    println!("log10({x}) = {:e}", rlibm::math::log10(x));
    println!("exp({x})   = {:e}", rlibm::math::exp(x));
    println!("exp2({x})  = {:e}", rlibm::math::exp2(x));
    println!("exp10({x}) = {:e}", rlibm::math::exp10(x));
    println!("sinh({x})  = {:e}", rlibm::math::sinh(x));
    println!("cosh({x})  = {:e}", rlibm::math::cosh(x));
    println!("sinpi({x}) = {:e}", rlibm::math::sinpi(x));
    println!("cospi({x}) = {:e}", rlibm::math::cospi(x));

    println!("\n== every result is the correctly rounded one ==");
    for f in Func::ALL {
        let ours = rlibm::math::eval_f32_by_name(f.name(), x).expect("known name");
        let oracle: f32 = correctly_rounded(f, x);
        assert_eq!(ours.to_bits(), oracle.to_bits());
        println!("{:>6}: library {ours:e} == oracle {oracle:e}", f.name());
    }

    println!("\n== posit32: tapered precision, saturation semantics ==");
    let p = Posit32::from_f64(2.0);
    println!("ln(2) as posit32   = {}", rlibm::math::posit::ln_p32(p));
    let huge = Posit32::from_f64(500.0);
    println!(
        "exp(500) saturates to maxpos = 2^120: {}",
        rlibm::math::posit::exp_p32(huge)
    );
    let host_would = (500.0f64).exp(); // inf: a repurposed double library
    println!("  (a double library overflows to {host_would} -> NaR: wrong)");

    println!("\n== bfloat16: small enough to check EVERY input ==");
    let b = BFloat16::from_f64(3.0);
    println!("exp(3) in bfloat16 = {}", rlibm::math::bf16::exp_bf16(b));

    println!("\n== the classic motivating example ==");
    // float libms disagree with the correctly rounded result on millions
    // of inputs; here is one from our Table 1 harness:
    let mut shown = 0;
    let mut bits: u32 = 0x3F00_0000;
    while shown < 3 && bits < 0x4180_0000 {
        let x = f32::from_bits(bits);
        let sloppy = rlibm::math::baselines::float32::exp(x);
        let correct = rlibm::math::exp(x);
        if sloppy != correct {
            println!(
                "exp({x:e}): a float libm returns {sloppy:e}, correctly rounded is {correct:e}"
            );
            shown += 1;
        }
        bits += 97;
    }
    if shown == 0 {
        println!("(no misrounding in this quick scan; run the table1 harness)");
    }
}
