//! Dumps the exact bit patterns of every polynomial coefficient the
//! `gen_bench` workloads generate, one line per function. Diffing this
//! output between two revisions proves (or refutes) that a generator
//! change is bit-identical where it claims to be — the evidence protocol
//! behind DESIGN.md "Generator performance".
//!
//! Run: `cargo run --release --offline --example dump_gen_polys`

use rlibm::gen::reduced::ReductionCase;
use rlibm::gen::validate::all_16bit;
use rlibm::gen::{
    deduce_reduced_intervals, gen_polynomial, merge_by_reduced_input, rounding_interval,
    PolyGenConfig, ReducedConstraint,
};
use rlibm::mp::oracle::{
    is_special_case, try_correctly_rounded, try_correctly_rounded_f64, DEFAULT_PREC_CEILING,
};
use rlibm::mp::Func;

fn main() {
    // Mirrors the gen_bench workload table (crates/bench/src/bin/gen_bench.rs).
    let workloads: Vec<(Func, Vec<u32>, f64, f64, bool)> = vec![
        (Func::Ln, (0..=7).collect(), 1.0, 2.0, false),
        (Func::Log2, (0..=7).collect(), 1.0, 2.0, false),
        (Func::Log10, (0..=7).collect(), 1.0, 2.0, false),
        (Func::Exp, (0..=6).collect(), 2f64.powi(-8), 2f64.powi(-2), true),
        (Func::Exp2, (0..=6).collect(), 2f64.powi(-8), 2f64.powi(-2), true),
        (Func::Exp10, (0..=6).collect(), 2f64.powi(-8), 2f64.powi(-2), true),
        (Func::Sinh, vec![1, 3, 5], 2f64.powi(-6), 2f64.powi(-2), false),
        (Func::Cosh, vec![0, 2, 4], 2f64.powi(-6), 2f64.powi(-2), false),
        (Func::SinPi, vec![1, 3, 5, 7], 2f64.powi(-8), 2f64.powi(-2), false),
        (Func::CosPi, vec![0, 2, 4, 6], 2f64.powi(-8), 2f64.powi(-2), false),
    ];
    for (func, terms, lo, hi, both_signs) in workloads {
        let name = func.name();
        let inputs: Vec<rlibm::fp::Half> = all_16bit::<rlibm::fp::Half>()
            .filter(|x| {
                let v = x.to_f64();
                let m = v.abs();
                v.is_finite()
                    && (lo..hi).contains(&m)
                    && (both_signs || v > 0.0)
                    && !is_special_case(func, v)
            })
            .collect();
        let mut cases = Vec::with_capacity(inputs.len());
        for &x in &inputs {
            let xf = x.to_f64();
            let y: rlibm::fp::Half =
                try_correctly_rounded(func, x, DEFAULT_PREC_CEILING).expect("oracle");
            let Some(target) = rounding_interval(y) else { continue };
            let cv = try_correctly_rounded_f64(func, xf, DEFAULT_PREC_CEILING).expect("f64 oracle");
            cases.push(ReductionCase { x: xf, target, r: xf, component_values: vec![cv] });
        }
        let per_component =
            deduce_reduced_intervals(&cases, &|vals, _| vals[0]).expect("deduce");
        let merged: Vec<ReducedConstraint> =
            merge_by_reduced_input(&per_component[0], 0).expect("merge");
        let cfg = PolyGenConfig { terms, ..Default::default() };
        let (poly, _) = gen_polynomial(&merged, &cfg).expect("generate");
        let bits: Vec<String> = poly
            .coeffs()
            .iter()
            .map(|c| format!("{:016x}", c.to_bits()))
            .collect();
        println!("{name}: {}", bits.join(" "));
    }
}
