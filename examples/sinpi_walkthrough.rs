//! A guided tour of Section 2: the paper's `sinpi` overview, executed
//! step by step on the two concrete inputs of Figure 2.
//!
//! Run with: `cargo run --release --example sinpi_walkthrough`

use rlibm::gen::interval::rounding_interval;
use rlibm::gen::split::BitPatternSplitter;
use rlibm::mp::{correctly_rounded, Func};

fn main() {
    // The two inputs from Figure 2(a) and 2(b):
    let x1 = 1.953_126_9e-3_f32;
    let x2 = 2.148_437_7e-2_f32;
    println!("Section 2 walkthrough: sinpi(x) for the Figure 2 inputs\n");

    for (label, x) in [("x1", x1), ("x2", x2)] {
        println!("{label} = {x:e}  (bits {:#010x})", x.to_bits());

        // Step 1: correctly rounded result + rounding interval.
        let y: f32 = correctly_rounded(Func::SinPi, x);
        let iv = rounding_interval(y).unwrap();
        println!("  oracle sinpi({label}) = {y:e}");
        println!("  rounding interval in double: [{:e}, {:e}]", iv.lo, iv.hi);

        // Step 2: the paper's range reduction x = 2I + J, J = K + L,
        // L' = min(L, 1-L), L' = N/512 + R.
        let a = x as f64;
        let j = a - 2.0 * (a / 2.0).floor();
        let (k, l) = if j >= 1.0 { (1, j - 1.0) } else { (0, j) };
        let lp = if l > 0.5 { 1.0 - l } else { l };
        let n = (lp * 512.0).floor();
        let r = lp - n / 512.0;
        println!("  reduction: K={k}, L={l:e}, L'={lp:e}, N={n}, R={r:e}");
        println!("  R bits: {:#018x}", r.to_bits());
    }

    // Both inputs map to the same reduced input (the paper's point):
    let reduce = |x: f32| {
        let a = x as f64;
        let j = a - 2.0 * (a / 2.0).floor();
        let l = if j >= 1.0 { j - 1.0 } else { j };
        let lp = if l > 0.5 { 1.0 - l } else { l };
        lp - (lp * 512.0).floor() / 512.0
    };
    let r1 = reduce(x1);
    let r2 = reduce(x2);
    println!("\nR(x1) == R(x2)? {} (R = {r1:e})", r1.to_bits() == r2.to_bits());
    assert_eq!(r1.to_bits(), r2.to_bits());
    assert_eq!(r1, 1.862_645_149_230_957e-9, "the paper's exact R");

    // Figure 2(d): the 5-bit sub-domain index after the 6 common bits.
    let splitter = BitPatternSplitter::new(2f64.powi(-52), 1.999 * 2f64.powi(-9), 5);
    println!(
        "sub-domain of R with 32 piecewise polynomials: {:#07b} ({})",
        splitter.index(r1),
        splitter.index(r1)
    );
    assert_eq!(splitter.index(r1), 0b10001, "Figure 2(d)'s bit pattern");

    // And the library's answers are the correctly rounded ones:
    let lib1 = rlibm::math::sinpi(x1);
    let lib2 = rlibm::math::sinpi(x2);
    let or1: f32 = correctly_rounded(Func::SinPi, x1);
    let or2: f32 = correctly_rounded(Func::SinPi, x2);
    println!("\nlibrary sinpi(x1) = {lib1:e} (oracle {or1:e})");
    println!("library sinpi(x2) = {lib2:e} (oracle {or2:e})");
    assert_eq!(lib1.to_bits(), or1.to_bits());
    assert_eq!(lib2.to_bits(), or2.to_bits());
    println!("\nboth correctly rounded — one table, one polynomial pair, as in the paper.");
}
