//! Exact bit-level operations on `f32` and `f64`.
//!
//! Everything in this module is branch-by-branch deterministic bit
//! arithmetic: no floating point rounding is involved unless stated
//! otherwise. These helpers implement the "properties of T and H" that the
//! paper's `RoundingInterval` function (Algorithm 1, lines 14-17) relies on
//! to find interval endpoints without a search.

/// Returns the next `f64` strictly greater than `x` in the total order of
/// finite values (subnormals included).
///
/// # Panics
///
/// Panics if `x` is NaN or `+inf` — callers in the generator only ever walk
/// within the finite range.
///
/// # Example
///
/// ```
/// use rlibm_fp::bits::next_up_f64;
/// assert_eq!(next_up_f64(0.0), f64::from_bits(1));
/// assert!(next_up_f64(1.0) > 1.0);
/// ```
pub fn next_up_f64(x: f64) -> f64 {
    assert!(!x.is_nan(), "next_up_f64(NaN)");
    assert!(x != f64::INFINITY, "next_up_f64(+inf)");
    let bits = x.to_bits();
    if x == 0.0 {
        // Both +0.0 and -0.0 step to the smallest positive subnormal.
        return f64::from_bits(1);
    }
    if bits >> 63 == 0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// Returns the next `f64` strictly less than `x`.
///
/// # Panics
///
/// Panics if `x` is NaN or `-inf`.
pub fn next_down_f64(x: f64) -> f64 {
    assert!(!x.is_nan(), "next_down_f64(NaN)");
    assert!(x != f64::NEG_INFINITY, "next_down_f64(-inf)");
    let bits = x.to_bits();
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    if bits >> 63 == 0 {
        f64::from_bits(bits - 1)
    } else {
        f64::from_bits(bits + 1)
    }
}

/// Returns the next `f32` strictly greater than `x`.
///
/// # Panics
///
/// Panics if `x` is NaN or `+inf`.
pub fn next_up_f32(x: f32) -> f32 {
    assert!(!x.is_nan(), "next_up_f32(NaN)");
    assert!(x != f32::INFINITY, "next_up_f32(+inf)");
    let bits = x.to_bits();
    if x == 0.0 {
        return f32::from_bits(1);
    }
    if bits >> 31 == 0 {
        f32::from_bits(bits + 1)
    } else {
        f32::from_bits(bits - 1)
    }
}

/// Returns the next `f32` strictly less than `x`.
///
/// # Panics
///
/// Panics if `x` is NaN or `-inf`.
pub fn next_down_f32(x: f32) -> f32 {
    assert!(!x.is_nan(), "next_down_f32(NaN)");
    assert!(x != f32::NEG_INFINITY, "next_down_f32(-inf)");
    let bits = x.to_bits();
    if x == 0.0 {
        return -f32::from_bits(1);
    }
    if bits >> 31 == 0 {
        f32::from_bits(bits - 1)
    } else {
        f32::from_bits(bits + 1)
    }
}

/// Exact midpoint of two adjacent finite `f32` values, computed in `f64`.
///
/// Adjacent `f32` values convert exactly to `f64`; their sum needs at most
/// 26 significand bits, so both the sum and the halving are exact in `f64`.
/// This is how the rounding-interval endpoints of Algorithm 1 are obtained
/// without any search.
pub fn midpoint_f32(a: f32, b: f32) -> f64 {
    (a as f64 + b as f64) * 0.5
}

/// The value halfway between the largest finite `f32` and what would be the
/// next representable value (`2^128`). Doubles at or beyond this magnitude
/// round to `f32::INFINITY` under round-to-nearest-even.
pub fn f32_overflow_threshold() -> f64 {
    // max finite f32 = (2 - 2^-23) * 2^127; the next step would be 2^104
    // wide, so the rounding boundary is max + 2^103.
    f32::MAX as f64 + 2f64.powi(103)
}

/// Unbiased exponent of a finite nonzero `f64` (the `e` in `m * 2^e` with
/// `m` in `[1, 2)` for normal values; subnormals report their effective
/// exponent based on the leading significand bit).
///
/// # Panics
///
/// Panics if `x` is zero, NaN, or infinite.
pub fn exponent_f64(x: f64) -> i32 {
    assert!(x.is_finite() && x != 0.0, "exponent_f64 of zero/non-finite");
    let bits = x.to_bits();
    let raw = ((bits >> 52) & 0x7ff) as i32;
    if raw != 0 {
        raw - 1023
    } else {
        // Subnormal: value = frac * 2^-1074, so the effective exponent is
        // the index of the top set fraction bit minus 1074.
        let frac = bits & ((1u64 << 52) - 1);
        (63 - frac.leading_zeros() as i32) - 1074
    }
}

/// One unit in the last place of `x` as a positive `f64`, i.e. the spacing
/// between `x` and the next representable value away from zero.
///
/// # Panics
///
/// Panics if `x` is NaN or infinite.
pub fn ulp_f64(x: f64) -> f64 {
    assert!(x.is_finite(), "ulp_f64 of non-finite");
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let a = x.abs();
    next_up_f64(a) - a
}

/// One unit in the last place of `x` as a positive `f32`.
///
/// # Panics
///
/// Panics if `x` is NaN or infinite.
pub fn ulp_f32(x: f32) -> f32 {
    assert!(x.is_finite(), "ulp_f32 of non-finite");
    if x == 0.0 {
        return f32::from_bits(1);
    }
    let a = x.abs();
    if a == f32::MAX {
        return a - next_down_f32(a);
    }
    next_up_f32(a) - a
}

/// Splits a finite nonzero `f64` into `(sign, mantissa, exponent)` such that
/// `x == (-1)^sign * mantissa * 2^exponent` exactly, with `mantissa` an odd
/// integer (trailing zeros folded into the exponent), except that a zero
/// mantissa is returned for `x == 0`.
pub fn decompose_f64(x: f64) -> (bool, u64, i32) {
    assert!(x.is_finite(), "decompose_f64 of non-finite");
    let bits = x.to_bits();
    let sign = bits >> 63 == 1;
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    if raw_exp == 0 && frac == 0 {
        return (sign, 0, 0);
    }
    let (mut mant, mut exp) = if raw_exp == 0 {
        (frac, -1074)
    } else {
        (frac | (1u64 << 52), raw_exp - 1075)
    };
    let tz = mant.trailing_zeros();
    mant >>= tz;
    exp += tz as i32;
    (sign, mant, exp)
}

/// Reconstructs the `f64` from a [`decompose_f64`] triple. Exact as long as
/// the value is representable (which it always is for triples produced by
/// `decompose_f64`).
pub fn compose_f64(sign: bool, mant: u64, exp: i32) -> f64 {
    let v = mant as f64 * 2f64.powi(exp);
    if sign {
        -v
    } else {
        v
    }
}

/// True when the `f64` significand (including hidden bit semantics) is even,
/// i.e. the lowest stored fraction bit is 0. Used to decide whether a
/// rounding-interval endpoint is attained under ties-to-even.
pub fn is_even_f64(x: f64) -> bool {
    x.to_bits() & 1 == 0
}

/// True when the `f32` significand is even (lowest fraction bit 0).
pub fn is_even_f32(x: f32) -> bool {
    x.to_bits() & 1 == 0
}

/// Rounds an extended-precision value expressed as `value + direction` to
/// `f32`, where `value` is an `f64` and `direction` indicates a nonzero
/// residual with the given sign (`> 0` means the true value is slightly
/// above `value`). This implements exact round-to-nearest-even of a value
/// that is *not* representable as a double but is sandwiched strictly
/// between `value` and its `f64` neighbour.
pub fn round_residual_f32(value: f64, residual_positive: bool) -> f32 {
    let base = value as f32;
    // `value as f32` rounds ties to even; we must fix up the case where
    // `value` is exactly a rounding boundary (midpoint between two f32
    // values) and the residual pushes the true value off the midpoint.
    if (base as f64) == value {
        return base; // value is exactly an f32; residual can't cross a boundary
    }
    let lo = if value > base as f64 {
        base
    } else {
        next_down_f32(base)
    };
    let hi = if value > base as f64 {
        next_up_f32(base)
    } else {
        base
    };
    let mid = midpoint_f32(lo, hi);
    if value > mid || (value == mid && residual_positive) {
        hi
    } else if value < mid || (value == mid && !residual_positive) {
        lo
    } else {
        base
    }
}

/// Maps an `f64` to an `i64` key that is strictly monotone in the IEEE
/// total order of non-NaN values (`-inf < ... < -0.0 < +0.0 < ... < +inf`).
/// Used for binary searches over the double line.
pub fn f64_order_key(x: f64) -> i64 {
    let b = x.to_bits();
    if b >> 63 == 0 {
        b as i64
    } else {
        // Negative: flip the magnitude bits so larger keys mean larger values.
        (b ^ 0x7fff_ffff_ffff_ffff) as i64
    }
}

/// Inverse of [`f64_order_key`].
pub fn f64_from_order_key(k: i64) -> f64 {
    if k >= 0 {
        f64::from_bits(k as u64)
    } else {
        f64::from_bits((k as u64) ^ 0x7fff_ffff_ffff_ffff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_key_is_monotone_and_invertible() {
        let xs = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -f64::MIN_POSITIVE,
            -f64::from_bits(1),
            -0.0,
            0.0,
            f64::from_bits(1),
            1.0,
            f64::INFINITY,
        ];
        let mut prev = f64_order_key(xs[0]);
        for &x in &xs[1..] {
            let k = f64_order_key(x);
            assert!(k > prev || (x == 0.0 && k >= prev), "key not monotone at {x}");
            assert_eq!(f64_from_order_key(k).to_bits(), x.to_bits());
            prev = k;
        }
        // Adjacent doubles have adjacent keys.
        assert_eq!(f64_order_key(next_up_f64(1.0)), f64_order_key(1.0) + 1);
        assert_eq!(f64_order_key(next_up_f64(-1.0)), f64_order_key(-1.0) + 1);
    }

    #[test]
    fn next_up_down_roundtrip_f64() {
        for &x in &[0.0, -0.0, 1.0, -1.0, 1e-300, f64::MIN_POSITIVE, -3.5e12] {
            assert_eq!(next_down_f64(next_up_f64(x)), x, "x = {x}");
            assert!(next_up_f64(x) > x);
            assert!(next_down_f64(x) < x);
        }
    }

    #[test]
    fn next_up_crosses_zero() {
        let neg_min = -f64::from_bits(1);
        assert_eq!(next_up_f64(neg_min), 0.0);
        assert_eq!(next_down_f64(f64::from_bits(1)), 0.0);
    }

    #[test]
    fn next_up_f32_at_max() {
        assert_eq!(next_up_f32(f32::MAX), f32::INFINITY);
        assert_eq!(next_down_f32(f32::MIN), f32::NEG_INFINITY);
    }

    #[test]
    fn midpoint_is_exact_and_ties_even() {
        let a = 1.0f32;
        let b = next_up_f32(a);
        let m = midpoint_f32(a, b);
        // The midpoint must lie strictly between the two values...
        assert!((a as f64) < m && m < (b as f64));
        // ...and round to the even-mantissa neighbour (1.0 has even mantissa).
        assert_eq!(m as f32, a);
    }

    #[test]
    fn overflow_threshold_rounds_to_inf() {
        let t = f32_overflow_threshold();
        assert_eq!(t as f32, f32::INFINITY);
        assert_eq!(next_down_f64(t) as f32, f32::MAX);
    }

    #[test]
    fn exponent_matches_powers_of_two() {
        assert_eq!(exponent_f64(1.0), 0);
        assert_eq!(exponent_f64(2.0), 1);
        assert_eq!(exponent_f64(0.5), -1);
        assert_eq!(exponent_f64(1.5), 0);
        assert_eq!(exponent_f64(f64::MIN_POSITIVE), -1022);
    }

    #[test]
    fn exponent_of_subnormals() {
        assert_eq!(exponent_f64(f64::from_bits(1)), -1074);
        assert_eq!(exponent_f64(f64::from_bits(1) * 2.0), -1073);
    }

    #[test]
    fn ulp_basics() {
        assert_eq!(ulp_f64(1.0), f64::EPSILON);
        assert_eq!(ulp_f32(1.0), f32::EPSILON);
        assert_eq!(ulp_f64(0.0), f64::from_bits(1));
        assert!(ulp_f32(f32::MAX).is_finite());
    }

    #[test]
    fn decompose_compose_roundtrip() {
        for &x in &[1.0, -1.0, 0.75, 3.5, 1e-40, -2.5e30, f64::MIN_POSITIVE] {
            let (s, m, e) = decompose_f64(x);
            assert_eq!(compose_f64(s, m, e), x, "x = {x}");
            if m != 0 {
                assert_eq!(m % 2, 1, "mantissa must be odd for x = {x}");
            }
        }
    }

    #[test]
    fn evenness() {
        assert!(is_even_f32(1.0));
        assert!(!is_even_f32(next_up_f32(1.0)));
        assert!(is_even_f64(1.0));
        assert!(!is_even_f64(next_up_f64(1.0)));
    }

    #[test]
    fn round_residual_breaks_midpoint_ties() {
        let a = 1.0f32;
        let b = next_up_f32(a);
        let mid = midpoint_f32(a, b);
        // True value slightly above the midpoint -> round up regardless of parity.
        assert_eq!(round_residual_f32(mid, true), b);
        // Slightly below -> round down.
        assert_eq!(round_residual_f32(mid, false), a);
    }
}
