//! The bfloat16 ("brain float") format: 1 sign, 8 exponent, 7 fraction bits.
//!
//! bfloat16 is one of the two 16-bit targets of the original RLIBM work that
//! this paper extends. Because it has only 65 536 bit patterns, the *entire*
//! generation pipeline (oracle → rounding intervals → LP → validation) can
//! run exhaustively over it in tests, proving the "correct for all inputs"
//! property end to end.

use crate::small::SmallFormat;

const FMT: SmallFormat = SmallFormat::BFLOAT16;

/// A bfloat16 value, stored as its bit pattern.
///
/// Arithmetic is performed by exact widening to `f64` followed by a single
/// correct rounding, which is exact for `+`, `-`, `*` (products of 8-bit
/// significands fit in `f64`) and correctly rounded for `/` (the quotient is
/// never close enough to a rounding boundary for the double rounding to
/// matter; see the crate tests).
///
/// # Example
///
/// ```
/// use rlibm_fp::BFloat16;
/// let x = BFloat16::from_f64(1.5);
/// assert_eq!(x.to_f64(), 1.5);
/// assert_eq!((x + x).to_f64(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BFloat16(u16);

impl BFloat16 {
    /// Positive zero.
    pub const ZERO: BFloat16 = BFloat16(0);
    /// One.
    pub const ONE: BFloat16 = BFloat16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: BFloat16 = BFloat16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: BFloat16 = BFloat16(0xFF80);
    /// Canonical quiet NaN.
    pub const NAN: BFloat16 = BFloat16(0x7FC0);
    /// Largest finite value, `(2 - 2^-7) * 2^127`.
    pub const MAX: BFloat16 = BFloat16(0x7F7F);
    /// Smallest positive normal value, `2^-126`.
    pub const MIN_POSITIVE: BFloat16 = BFloat16(0x0080);

    /// Constructs a value from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        BFloat16(bits)
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Rounds an `f64` to bfloat16 (round-to-nearest-even, single rounding).
    pub fn from_f64(x: f64) -> Self {
        BFloat16(FMT.round_from_f64(x))
    }

    /// Rounds an `f32` to bfloat16.
    pub fn from_f32(x: f32) -> Self {
        Self::from_f64(x as f64)
    }

    /// Exact conversion to `f64`.
    pub fn to_f64(self) -> f64 {
        FMT.decode(self.0)
    }

    /// Exact conversion to `f32` (every bfloat16 is an `f32`).
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        let exp = (self.0 >> 7) & 0xFF;
        exp == 0xFF && self.0 & 0x7F != 0
    }

    /// True for +/- infinity.
    pub fn is_infinite(self) -> bool {
        self.0 & 0x7FFF == 0x7F80
    }

    /// True for every value that is neither infinite nor NaN.
    pub fn is_finite(self) -> bool {
        (self.0 >> 7) & 0xFF != 0xFF
    }

    /// True if the sign bit is set (including -0.0 and NaNs with sign).
    pub fn is_sign_negative(self) -> bool {
        self.0 >> 15 == 1
    }
}

impl PartialEq for BFloat16 {
    fn eq(&self, other: &Self) -> bool {
        self.to_f64() == other.to_f64() // IEEE semantics: NaN != NaN, -0 == +0
    }
}

impl PartialOrd for BFloat16 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        self.to_f64().partial_cmp(&other.to_f64())
    }
}

impl core::fmt::Display for BFloat16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl From<BFloat16> for f64 {
    fn from(x: BFloat16) -> f64 {
        x.to_f64()
    }
}

impl From<BFloat16> for f32 {
    fn from(x: BFloat16) -> f32 {
        x.to_f32()
    }
}

macro_rules! bf16_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl core::ops::$trait for BFloat16 {
            type Output = BFloat16;
            fn $method(self, rhs: BFloat16) -> BFloat16 {
                BFloat16::from_f64(self.to_f64() $op rhs.to_f64())
            }
        }
    };
}

bf16_binop!(Add, add, +);
bf16_binop!(Sub, sub, -);
bf16_binop!(Mul, mul, *);
bf16_binop!(Div, div, /);

impl core::ops::Neg for BFloat16 {
    type Output = BFloat16;
    fn neg(self) -> BFloat16 {
        BFloat16(self.0 ^ 0x8000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_decode_correctly() {
        assert_eq!(BFloat16::ZERO.to_f64(), 0.0);
        assert_eq!(BFloat16::ONE.to_f64(), 1.0);
        assert_eq!(BFloat16::INFINITY.to_f64(), f64::INFINITY);
        assert!(BFloat16::NAN.is_nan());
        assert_eq!(BFloat16::MIN_POSITIVE.to_f64(), 2f64.powi(-126));
        assert_eq!(BFloat16::MAX.to_f64(), (2.0 - 2f64.powi(-7)) * 2f64.powi(127));
    }

    #[test]
    fn arithmetic_is_correctly_rounded() {
        let a = BFloat16::from_f64(1.0);
        let b = BFloat16::from_f64(2f64.powi(-8)); // half an ulp of 1.0
        // 1 + 2^-8 is exactly the rounding boundary; ties to even keeps 1.0.
        assert_eq!((a + b).to_f64(), 1.0);
        let c = BFloat16::from_f64(3.0);
        assert_eq!((c * c).to_f64(), 9.0);
        assert_eq!((c / BFloat16::from_f64(2.0)).to_f64(), 1.5);
    }

    #[test]
    fn neg_flips_sign_bit_only() {
        assert_eq!((-BFloat16::ONE).to_f64(), -1.0);
        assert!((-BFloat16::NAN).is_nan());
        assert_eq!((-BFloat16::ZERO).to_bits(), 0x8000);
    }

    #[test]
    fn nan_comparisons() {
        assert_ne!(BFloat16::NAN, BFloat16::NAN);
        assert_eq!(BFloat16::ZERO, -BFloat16::ZERO);
        assert!(BFloat16::ONE > BFloat16::ZERO);
    }

    #[test]
    fn division_correctly_rounded_exhaustive_slice() {
        // Check f64-mediated division against exact rational comparison for
        // a slice of operand pairs, including awkward significands.
        for a_bits in (0x3F80u16..0x4080).step_by(7) {
            for b_bits in (0x3F80u16..0x4080).step_by(11) {
                let a = BFloat16::from_bits(a_bits);
                let b = BFloat16::from_bits(b_bits);
                let q = (a / b).to_f64();
                // The correctly rounded quotient must satisfy
                // |a/b - q| <= |a/b - q'| for the neighbours q' of q.
                let exact = a.to_f64() / b.to_f64(); // exact to 2^-53, boundaries at 2^-9
                let up = BFloat16::from_f64(q).to_f64();
                assert_eq!(q, up);
                let err = (exact - q).abs();
                let alt = BFloat16::from_f64(exact * (1.0 + 1e-14)).to_f64();
                let err_alt = (exact - alt).abs();
                assert!(err <= err_alt + 1e-12 * exact.abs());
            }
        }
    }
}
