//! A tiny deterministic PRNG for workloads, sampling and tests.
//!
//! The workspace builds hermetically (no registry dependencies), so the
//! pseudo-random inputs used by the stratified validation samplers, the
//! timing workloads and the property-style tests all come from this one
//! xorshift64 generator instead of the `rand` crate. The stream is fully
//! determined by the seed, so every workload and test sweep is exactly
//! reproducible across runs, hosts and thread counts.

/// Marsaglia's xorshift64: full-period (2^64 - 1) over nonzero states.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (a zero seed is remapped — the
    /// all-zero state is the one fixed point of xorshift).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    /// Next raw 32-bit value (upper half of the 64-bit state, which has
    /// better short-term equidistribution than the low bits).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`.
    #[inline]
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi && lo.is_finite() && hi.is_finite());
        lo + (hi - lo) * self.next_unit_f64()
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform_f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.uniform_f64(lo as f64, hi as f64) as f32
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A finite `f64` with uniformly random bit pattern (non-finite
    /// patterns are remapped into `[1, 2)` by forcing the exponent).
    pub fn finite_f64(&mut self) -> f64 {
        let x = f64::from_bits(self.next_u64());
        if x.is_finite() {
            x
        } else {
            f64::from_bits(x.to_bits() & 0x000F_FFFF_FFFF_FFFF | 0x3FF0_0000_0000_0000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut r = XorShift64::new(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let mut r = XorShift64::new(42);
        let b: Vec<u64> = (0..64).map(|_| r.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            let x = r.uniform_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let y = r.uniform_f32(0.5, 0.6);
            assert!((0.5..0.6).contains(&y));
            let k = r.uniform_i64(-4, 11);
            assert!((-4..11).contains(&k));
            assert!(r.finite_f64().is_finite());
            let u = r.next_unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn streams_differ_by_seed() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
