//! A tiny deterministic PRNG for workloads, sampling and tests.
//!
//! The workspace builds hermetically (no registry dependencies), so the
//! pseudo-random inputs used by the stratified validation samplers, the
//! timing workloads and the property-style tests all come from this one
//! xorshift64 generator instead of the `rand` crate. The stream is fully
//! determined by the seed, so every workload and test sweep is exactly
//! reproducible across runs, hosts and thread counts.

/// Marsaglia's xorshift64: full-period (2^64 - 1) over nonzero states.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (a zero seed is remapped — the
    /// all-zero state is the one fixed point of xorshift).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    /// Next raw 32-bit value (upper half of the 64-bit state, which has
    /// better short-term equidistribution than the low bits).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`.
    #[inline]
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi && lo.is_finite() && hi.is_finite());
        lo + (hi - lo) * self.next_unit_f64()
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform_f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.uniform_f64(lo as f64, hi as f64) as f32
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A finite `f64` with uniformly random bit pattern (non-finite
    /// patterns are remapped into `[1, 2)` by forcing the exponent).
    pub fn finite_f64(&mut self) -> f64 {
        let x = f64::from_bits(self.next_u64());
        if x.is_finite() {
            x
        } else {
            f64::from_bits(x.to_bits() & 0x000F_FFFF_FFFF_FFFF | 0x3FF0_0000_0000_0000)
        }
    }
}

/// The f32 input range in which a tier-1 kernel (rather than the
/// special-case filter or a saturating front end) handles the named
/// function. The log family returns the `(0.0, 0.0)` sentinel: its
/// kernel-reaching inputs are the positive reals, which
/// [`draw_biased_f32`] covers log-uniformly instead of by interval.
pub fn f32_kernel_domain(name: &str) -> (f32, f32) {
    match name {
        "exp" => (-87.0, 88.0),
        "exp2" => (-125.0, 127.0),
        "exp10" => (-37.0, 38.0),
        "sinh" | "cosh" => (-88.0, 88.0),
        "sinpi" | "cospi" => (-4096.0, 4096.0),
        // logs: positive reals; magnitudes drawn log-uniform instead.
        _ => (0.0, 0.0),
    }
}

/// A domain-biased f32 draw for the named function: three draws in four
/// land in the kernel-reaching domain ([`f32_kernel_domain`]; log-uniform
/// positives for the log family), the fourth is a raw bit pattern so
/// specials, subnormals and saturating magnitudes keep exercising the
/// front-end filters. Shared by the fault-injection sweep and the
/// telemetry fallback sweep, both of which would waste most uniform
/// random bits on the exp family's saturated tails.
pub fn draw_biased_f32(rng: &mut XorShift64, name: &str) -> f32 {
    if rng.next_u64() & 3 == 0 {
        return f32::from_bits(rng.next_u32());
    }
    let (lo, hi) = f32_kernel_domain(name);
    if lo == hi {
        // log family: log-uniform positive value via a random exponent.
        let e = rng.uniform_i64(1, 254) as u32;
        return f32::from_bits((e << 23) | (rng.next_u32() & 0x007F_FFFF));
    }
    rng.uniform_f32(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut r = XorShift64::new(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let mut r = XorShift64::new(42);
        let b: Vec<u64> = (0..64).map(|_| r.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            let x = r.uniform_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let y = r.uniform_f32(0.5, 0.6);
            assert!((0.5..0.6).contains(&y));
            let k = r.uniform_i64(-4, 11);
            assert!((-4..11).contains(&k));
            assert!(r.finite_f64().is_finite());
            let u = r.next_unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn biased_draws_mostly_reach_the_kernel_domain() {
        for name in ["ln", "log2", "exp", "exp2", "exp10", "sinh", "cosh", "sinpi", "cospi"] {
            let mut r = XorShift64::new(0xD0);
            let (lo, hi) = f32_kernel_domain(name);
            let in_domain = (0..4000)
                .filter(|_| {
                    let x = draw_biased_f32(&mut r, name);
                    if lo == hi {
                        x.is_finite() && x > 0.0
                    } else {
                        (lo..hi).contains(&x)
                    }
                })
                .count();
            // 3/4 of draws target the domain; raw-bit draws can land there
            // too, so well over half of all draws must be inside.
            assert!(in_domain > 2000, "{name}: only {in_domain}/4000 in-domain");
        }
    }

    #[test]
    fn streams_differ_by_seed() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
