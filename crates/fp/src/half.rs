//! IEEE 754 binary16 ("half precision"): 1 sign, 5 exponent, 10 fraction
//! bits. Provided alongside [`crate::BFloat16`] so the generator's 16-bit
//! exhaustive tests cover a format with a *narrow* exponent range and wide
//! significand (the opposite trade-off from bfloat16).

use crate::small::SmallFormat;

const FMT: SmallFormat = SmallFormat::BINARY16;

/// An IEEE binary16 value, stored as its bit pattern.
///
/// Arithmetic widens exactly to `f64` and rounds once; `+`, `-`, `*` are
/// exact in the intermediate and `/` is far enough from rounding boundaries
/// that the single rounding is correct.
///
/// # Example
///
/// ```
/// use rlibm_fp::Half;
/// let x = Half::from_f64(0.5);
/// assert_eq!((x * x).to_f64(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Half(u16);

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0);
    /// One.
    pub const ONE: Half = Half(0x3C00);
    /// Positive infinity.
    pub const INFINITY: Half = Half(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Half = Half(0xFC00);
    /// Canonical quiet NaN.
    pub const NAN: Half = Half(0x7E00);
    /// Largest finite value, `65504`.
    pub const MAX: Half = Half(0x7BFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: Half = Half(0x0400);

    /// Constructs a value from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        Half(bits)
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Rounds an `f64` to binary16 (round-to-nearest-even, single rounding).
    pub fn from_f64(x: f64) -> Self {
        Half(FMT.round_from_f64(x))
    }

    /// Exact conversion to `f64`.
    pub fn to_f64(self) -> f64 {
        FMT.decode(self.0)
    }

    /// Exact conversion to `f32` (every binary16 is an `f32`).
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        let exp = (self.0 >> 10) & 0x1F;
        exp == 0x1F && self.0 & 0x3FF != 0
    }

    /// True for +/- infinity.
    pub fn is_infinite(self) -> bool {
        self.0 & 0x7FFF == 0x7C00
    }

    /// True for every value that is neither infinite nor NaN.
    pub fn is_finite(self) -> bool {
        (self.0 >> 10) & 0x1F != 0x1F
    }

    /// True if the sign bit is set.
    pub fn is_sign_negative(self) -> bool {
        self.0 >> 15 == 1
    }
}

impl PartialEq for Half {
    fn eq(&self, other: &Self) -> bool {
        self.to_f64() == other.to_f64()
    }
}

impl PartialOrd for Half {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        self.to_f64().partial_cmp(&other.to_f64())
    }
}

impl core::fmt::Display for Half {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl From<Half> for f64 {
    fn from(x: Half) -> f64 {
        x.to_f64()
    }
}

macro_rules! half_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl core::ops::$trait for Half {
            type Output = Half;
            fn $method(self, rhs: Half) -> Half {
                Half::from_f64(self.to_f64() $op rhs.to_f64())
            }
        }
    };
}

half_binop!(Add, add, +);
half_binop!(Sub, sub, -);
half_binop!(Mul, mul, *);
half_binop!(Div, div, /);

impl core::ops::Neg for Half {
    type Output = Half;
    fn neg(self) -> Half {
        Half(self.0 ^ 0x8000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_decode_correctly() {
        assert_eq!(Half::ONE.to_f64(), 1.0);
        assert_eq!(Half::MAX.to_f64(), 65504.0);
        assert_eq!(Half::MIN_POSITIVE.to_f64(), 2f64.powi(-14));
        assert!(Half::NAN.is_nan());
        assert!(Half::INFINITY.is_infinite());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(Half::from_f64(65520.0).to_f64(), f64::INFINITY);
        // 65519.999... rounds down to MAX.
        assert_eq!(Half::from_f64(65519.0).to_f64(), 65504.0);
    }

    #[test]
    fn subnormal_arithmetic() {
        let min_sub = Half::from_bits(1);
        assert_eq!(min_sub.to_f64(), 2f64.powi(-24));
        assert_eq!((min_sub + min_sub).to_f64(), 2f64.powi(-23));
        assert_eq!((min_sub - min_sub).to_f64(), 0.0);
    }

    #[test]
    fn mul_is_exact_through_f64() {
        // Largest significands: (2 - 2^-10)^2 needs 22 bits, fine in f64.
        let m = Half::from_bits(0x3FFF); // 1.9990234375
        let sq = (m * m).to_f64();
        let exact = 1.9990234375f64 * 1.9990234375f64;
        assert_eq!(sq, Half::from_f64(exact).to_f64());
    }
}
