//! The [`Representation`] trait: the target type `T` of the paper.
//!
//! RLIBM-32 generates libraries for multiple 32-bit representations (IEEE
//! float, posit32) and its precursor handled 16-bit types. Everything the
//! oracle and the generator need from a target representation is captured
//! here: exact widening to `f64` (the evaluation precision `H`), correct
//! rounding *from* `f64`, and total-order navigation for interval
//! computation and exhaustive enumeration.

use crate::small::SmallFormat;

/// A finite-precision rounding target (the representation `T` in the paper).
///
/// # Contract
///
/// * `to_f64` is **exact** for every non-NaN value — every implementor is a
///   subset of `f64` (true for f32, bfloat16, binary16, posit32, posit16).
/// * `round_from_f64` is the representation's canonical rounding (IEEE
///   round-to-nearest-even for the float family; posit rounding with
///   saturation for posits) and is **monotone** in the f64 total order.
/// * `next_up`/`next_down` walk the non-NaN values in numeric order.
pub trait Representation: Copy + core::fmt::Debug + PartialEq + Send + Sync + 'static {
    /// Short human-readable name ("float32", "posit32", ...).
    const NAME: &'static str;
    /// Total bit width of the representation (≤ 32).
    const BITS: u32;

    /// Reconstructs a value from its bit pattern (low `BITS` bits used).
    fn from_bits_u32(bits: u32) -> Self;
    /// The value's bit pattern in the low `BITS` bits.
    fn to_bits_u32(self) -> u32;
    /// Exact conversion to `f64` (NaN maps to NaN, infinities to
    /// infinities; posit NaR maps to NaN).
    fn to_f64(self) -> f64;
    /// Correct single rounding of an `f64` into this representation.
    fn round_from_f64(x: f64) -> Self;
    /// True for NaN (or posit NaR).
    fn is_nan(self) -> bool;
    /// Numeric successor among non-NaN values, or `None` at the top.
    fn next_up(self) -> Option<Self>;
    /// Numeric predecessor among non-NaN values, or `None` at the bottom.
    fn next_down(self) -> Option<Self>;
    /// Number of distinct bit patterns.
    fn pattern_count() -> u64 {
        1u64 << Self::BITS
    }
}

impl Representation for f32 {
    const NAME: &'static str = "float32";
    const BITS: u32 = 32;

    fn from_bits_u32(bits: u32) -> Self {
        f32::from_bits(bits)
    }

    fn to_bits_u32(self) -> u32 {
        self.to_bits()
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn round_from_f64(x: f64) -> Self {
        x as f32 // IEEE-correct single rounding, ties to even
    }

    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }

    fn next_up(self) -> Option<Self> {
        if self.is_nan() || self == f32::INFINITY {
            None
        } else {
            Some(crate::bits::next_up_f32(self))
        }
    }

    fn next_down(self) -> Option<Self> {
        if self.is_nan() || self == f32::NEG_INFINITY {
            None
        } else {
            Some(crate::bits::next_down_f32(self))
        }
    }
}

macro_rules! small_float_repr {
    ($ty:ty, $fmt:expr, $name:literal) => {
        impl Representation for $ty {
            const NAME: &'static str = $name;
            const BITS: u32 = 16;

            fn from_bits_u32(bits: u32) -> Self {
                <$ty>::from_bits(bits as u16)
            }

            fn to_bits_u32(self) -> u32 {
                self.to_bits() as u32
            }

            fn to_f64(self) -> f64 {
                $fmt.decode(self.to_bits())
            }

            fn round_from_f64(x: f64) -> Self {
                <$ty>::from_bits($fmt.round_from_f64(x))
            }

            fn is_nan(self) -> bool {
                <$ty>::is_nan(self)
            }

            fn next_up(self) -> Option<Self> {
                if self.is_nan() {
                    return None;
                }
                let fmt = $fmt;
                let bits = self.to_bits();
                if bits == fmt.inf_bits() {
                    return None; // +inf has no successor
                }
                let sign = bits >> 15 == 1;
                let next = if bits == 0x8000 {
                    // -0.0 steps to the smallest positive subnormal,
                    // matching f64 semantics used throughout the generator.
                    1
                } else if sign {
                    bits - 1
                } else {
                    bits + 1
                };
                Some(<$ty>::from_bits(next))
            }

            fn next_down(self) -> Option<Self> {
                if self.is_nan() {
                    return None;
                }
                let fmt = $fmt;
                let bits = self.to_bits();
                if bits == fmt.inf_bits() | 0x8000 {
                    return None; // -inf has no predecessor
                }
                let sign = bits >> 15 == 1;
                let next = if bits == 0 {
                    0x8001 // +0.0 steps down to the smallest negative subnormal
                } else if sign {
                    bits + 1
                } else {
                    bits - 1
                };
                Some(<$ty>::from_bits(next))
            }
        }
    };
}

small_float_repr!(crate::BFloat16, SmallFormat::BFLOAT16, "bfloat16");
small_float_repr!(crate::Half, SmallFormat::BINARY16, "binary16");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BFloat16, Half};

    #[test]
    fn f32_repr_roundtrip() {
        for &x in &[0.0f32, -0.0, 1.5, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(f32::from_bits_u32(x.to_bits_u32()), x);
            assert_eq!(x.to_f64() as f32, x);
        }
    }

    #[test]
    fn f32_round_from_f64_is_single_rounding() {
        let y = 1.0f32;
        let above = crate::bits::midpoint_f32(y, crate::bits::next_up_f32(y));
        assert_eq!(f32::round_from_f64(above), y, "tie to even");
        assert_eq!(
            f32::round_from_f64(crate::bits::next_up_f64(above)),
            crate::bits::next_up_f32(y)
        );
    }

    #[test]
    fn next_up_walks_entire_bf16_line() {
        // Walk from -inf to +inf and count the steps: there are
        // 2 * (2^15 - 2^7) + 1 non-NaN values minus ... easier: count.
        let mut v = BFloat16::from_bits(0xFF80); // -inf
        let mut count = 1u32;
        while let Some(n) = v.next_up() {
            assert!(n.to_f64() > v.to_f64() || (v.to_f64() == 0.0 && n.to_f64() == 0.0));
            v = n;
            count += 1;
            assert!(count < 70000, "runaway walk");
        }
        assert_eq!(v.to_bits(), 0x7F80, "walk must end at +inf");
        // Total non-NaN patterns: 2^16 minus NaNs (2 * (2^7 - 1)) minus one
        // (the walk visits -0.0's numeric twin +0.0 but skips -0.0 itself
        // when stepping up from the negative side... it does visit both).
        let nan_patterns = 2 * ((1u32 << 7) - 1);
        // The walk from -inf visits every non-NaN pattern except -0.0
        // (next_up from the smallest negative subnormal goes to -0.0? No:
        // our next_up maps -min_subnormal -> 0x8000 which *is* -0.0).
        assert_eq!(count, (1u32 << 16) - nan_patterns - 1);
    }

    #[test]
    fn half_ordering_is_monotone() {
        let mut prev = Half::from_bits(0xFC00).to_f64(); // -inf
        let mut v = Half::from_bits(0xFC00);
        while let Some(n) = v.next_up() {
            let f = n.to_f64();
            assert!(f >= prev, "{f} < {prev}");
            prev = f;
            v = n;
        }
    }

    #[test]
    fn round_from_f64_monotone_bf16() {
        // Monotonicity of the rounding function is a trait contract the
        // generator's interval binary search depends on.
        let xs = [-1e30, -5.5, -1.0, -1e-3, 0.0, 1e-42, 0.7, 1.0, 3.25, 2.5e20];
        let mut prev = BFloat16::round_from_f64(xs[0]).to_f64();
        for &x in &xs[1..] {
            let r = BFloat16::round_from_f64(x).to_f64();
            assert!(r >= prev);
            prev = r;
        }
    }
}
