//! Generic encode/decode/round helpers for small (≤16-bit) IEEE-style
//! binary floating point formats.
//!
//! Both [`crate::BFloat16`] (8 exponent bits, 7 fraction bits) and
//! [`crate::Half`] (5 exponent bits, 10 fraction bits) are thin wrappers
//! over these routines. The rounding routine implements a *single* correct
//! round-to-nearest-even from `f64`, avoiding the double-rounding trap of
//! going through `f32` first (the same trap that makes CR-LIBM's double
//! results wrong for float in the paper's Table 1).

/// Parameters of a small binary interchange format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmallFormat {
    /// Number of exponent bits.
    pub exp_bits: u32,
    /// Number of stored fraction bits.
    pub frac_bits: u32,
}

impl SmallFormat {
    /// bfloat16: 1 sign, 8 exponent, 7 fraction bits.
    pub const BFLOAT16: SmallFormat = SmallFormat { exp_bits: 8, frac_bits: 7 };
    /// IEEE binary16: 1 sign, 5 exponent, 10 fraction bits.
    pub const BINARY16: SmallFormat = SmallFormat { exp_bits: 5, frac_bits: 10 };

    /// Exponent bias.
    pub fn bias(self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// Minimum normal exponent (unbiased).
    pub fn emin(self) -> i32 {
        1 - self.bias()
    }

    /// Maximum normal exponent (unbiased).
    pub fn emax(self) -> i32 {
        self.bias()
    }

    /// Total bit width including the sign.
    pub fn width(self) -> u32 {
        1 + self.exp_bits + self.frac_bits
    }

    /// Bit pattern of +infinity.
    pub fn inf_bits(self) -> u16 {
        (((1u32 << self.exp_bits) - 1) << self.frac_bits) as u16
    }

    /// A canonical quiet-NaN bit pattern.
    pub fn nan_bits(self) -> u16 {
        self.inf_bits() | (1 << (self.frac_bits - 1))
    }

    /// Decodes a bit pattern to the exactly equal `f64`.
    ///
    /// Infinities map to `f64` infinities and every NaN pattern maps to
    /// `f64::NAN`.
    pub fn decode(self, bits: u16) -> f64 {
        let sign = (bits >> (self.width() - 1)) & 1 == 1;
        let exp_field = ((bits >> self.frac_bits) as u32) & ((1 << self.exp_bits) - 1);
        let frac = (bits as u64) & ((1u64 << self.frac_bits) - 1);
        let max_exp_field = (1u32 << self.exp_bits) - 1;
        let magnitude = if exp_field == max_exp_field {
            if frac == 0 {
                f64::INFINITY
            } else {
                return f64::NAN;
            }
        } else if exp_field == 0 {
            // Subnormal: frac * 2^(emin - frac_bits)
            frac as f64 * pow2(self.emin() - self.frac_bits as i32)
        } else {
            let e = exp_field as i32 - self.bias();
            let significand = (1u64 << self.frac_bits) | frac;
            significand as f64 * pow2(e - self.frac_bits as i32)
        };
        if sign {
            -magnitude
        } else {
            magnitude
        }
    }

    /// Rounds an `f64` to this format with round-to-nearest-even.
    ///
    /// Overflow produces infinity, underflow produces a (possibly signed)
    /// zero, and NaN maps to the canonical NaN pattern. This is a single
    /// rounding step: results differ from `((x as f32) -> format)` exactly
    /// in the double-rounding cases.
    pub fn round_from_f64(self, x: f64) -> u16 {
        if x.is_nan() {
            return self.nan_bits();
        }
        let sign_bit = if x.is_sign_negative() {
            1u16 << (self.width() - 1)
        } else {
            0
        };
        let a = x.abs();
        if a == 0.0 {
            return sign_bit;
        }
        if a.is_infinite() {
            return sign_bit | self.inf_bits();
        }
        let fb = self.frac_bits as i32;
        let e = crate::bits::exponent_f64(a);
        if e < self.emin() {
            // Subnormal candidate: count quanta of 2^(emin - frac_bits).
            // The scaling by a power of two is exact; round_ties_even then
            // performs the one true rounding.
            let scaled = a * pow2(-(self.emin() - fb));
            let n = scaled.round_ties_even();
            let n = n as u64;
            if n == 0 {
                return sign_bit; // underflow to zero
            }
            if n >= (1u64 << self.frac_bits) {
                // Rounded up into the normal range: exponent field 1, frac 0.
                return sign_bit | (1u16 << self.frac_bits);
            }
            return sign_bit | n as u16;
        }
        if e > self.emax() {
            return sign_bit | self.inf_bits();
        }
        // Normal candidate: significand scaled to an integer in
        // [2^frac_bits, 2^(frac_bits+1)). Power-of-two scaling is exact.
        let scaled = a * pow2(fb - e);
        let n = scaled.round_ties_even() as u64;
        let (n, e) = if n == (1u64 << (self.frac_bits + 1)) {
            (1u64 << self.frac_bits, e + 1)
        } else {
            (n, e)
        };
        if e > self.emax() {
            return sign_bit | self.inf_bits();
        }
        debug_assert!(n >= (1u64 << self.frac_bits));
        let frac = (n - (1u64 << self.frac_bits)) as u16;
        let exp_field = (e + self.bias()) as u16;
        sign_bit | (exp_field << self.frac_bits) | frac
    }
}

/// `2^e` as an exact `f64`, covering the subnormal range.
fn pow2(e: i32) -> f64 {
    if e >= 1024 {
        f64::INFINITY
    } else if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else if e >= -1074 {
        f64::from_bits(1u64 << (e + 1074))
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_and_ranges() {
        assert_eq!(SmallFormat::BFLOAT16.bias(), 127);
        assert_eq!(SmallFormat::BFLOAT16.emin(), -126);
        assert_eq!(SmallFormat::BINARY16.bias(), 15);
        assert_eq!(SmallFormat::BINARY16.emax(), 15);
    }

    #[test]
    fn decode_special_values() {
        let f = SmallFormat::BFLOAT16;
        assert_eq!(f.decode(0), 0.0);
        assert_eq!(f.decode(f.inf_bits()), f64::INFINITY);
        assert!(f.decode(f.nan_bits()).is_nan());
        // 1.0 in bfloat16 is 0x3F80
        assert_eq!(f.decode(0x3F80), 1.0);
    }

    #[test]
    fn decode_binary16_one() {
        assert_eq!(SmallFormat::BINARY16.decode(0x3C00), 1.0);
        assert_eq!(SmallFormat::BINARY16.decode(0xC000), -2.0);
    }

    #[test]
    fn round_trip_all_bfloat16() {
        let f = SmallFormat::BFLOAT16;
        for bits in 0..=u16::MAX {
            let v = f.decode(bits);
            if v.is_nan() {
                assert_eq!(f.round_from_f64(v), f.nan_bits());
                continue;
            }
            let back = f.round_from_f64(v);
            // -0.0 and 0.0 keep their sign; everything else round-trips bit-exactly.
            assert_eq!(back, bits, "bits {bits:#06x}, value {v}");
        }
    }

    #[test]
    fn round_trip_all_binary16() {
        let f = SmallFormat::BINARY16;
        for bits in 0..=u16::MAX {
            let v = f.decode(bits);
            if v.is_nan() {
                continue;
            }
            assert_eq!(f.round_from_f64(v), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn rne_ties_go_to_even() {
        let f = SmallFormat::BFLOAT16;
        let one = f.decode(0x3F80);
        let next = f.decode(0x3F81);
        let mid = (one + next) / 2.0;
        // Tie: 0x3F80 has even fraction -> rounds down.
        assert_eq!(f.round_from_f64(mid), 0x3F80);
        let next2 = f.decode(0x3F82);
        let mid2 = (next + next2) / 2.0;
        // Tie between odd 0x3F81 and even 0x3F82 -> rounds up to even.
        assert_eq!(f.round_from_f64(mid2), 0x3F82);
    }

    #[test]
    fn overflow_and_underflow() {
        let f = SmallFormat::BFLOAT16;
        assert_eq!(f.round_from_f64(1e40), f.inf_bits());
        assert_eq!(f.round_from_f64(-1e40), f.inf_bits() | 0x8000);
        // Halfway below the smallest subnormal underflows to zero.
        let min_sub = f.decode(1);
        assert_eq!(f.round_from_f64(min_sub / 2.1), 0);
        // Exactly half of the smallest subnormal ties to even (zero).
        assert_eq!(f.round_from_f64(min_sub / 2.0), 0);
    }

    #[test]
    fn avoids_double_rounding() {
        // Construct a value whose f64->f32->bf16 path rounds differently
        // from the direct f64->bf16 path: pick the bf16 midpoint between
        // 1.0 and 1.0078125 then nudge it down by less than an f32 ulp.
        let f = SmallFormat::BFLOAT16;
        let mid = (f.decode(0x3F80) + f.decode(0x3F81)) / 2.0;
        let nudged = crate::bits::next_down_f64(mid);
        // Direct rounding: below the midpoint -> 0x3F80.
        assert_eq!(f.round_from_f64(nudged), 0x3F80);
        // Via f32 the nudge survives (f32 has plenty of precision here),
        // so this particular case agrees; the subnormal boundary does not:
        let tiny_mid = f.decode(1) / 2.0; // exactly representable in f64
        let above = crate::bits::next_up_f64(tiny_mid);
        assert_eq!(f.round_from_f64(above), 1, "just above the tie must round up");
    }
}
