//! Bit-level floating point utilities for the RLIBM-32 reproduction.
//!
//! This crate provides the low-level substrate that every other crate in the
//! workspace builds on:
//!
//! * [`bits`] — exact bit manipulation of `f32`/`f64` (neighbours, ulps,
//!   exact midpoints of adjacent values, exponent/mantissa access).
//! * [`bf16::BFloat16`] and [`half::Half`] — software 16-bit float types
//!   (bfloat16 and IEEE binary16). These are the types RLIBM (the PLDI'21
//!   paper's precursor) targeted, and they let the full generation pipeline
//!   run *exhaustively* over a complete input domain in tests.
//! * [`Representation`] — the trait that unifies every rounding target
//!   (float, bfloat16, half, and the posit types from `rlibm-posit`). The
//!   oracle and the generator are written against this trait.
//! * [`rng`] — the deterministic xorshift64 generator behind every
//!   pseudo-random workload and test sweep (the workspace is hermetic:
//!   no `rand`, no registry dependencies at all).
//!
//! # Example
//!
//! ```
//! use rlibm_fp::bits::{next_up_f64, midpoint_f32};
//!
//! // Midpoints of adjacent f32 values are exactly representable in f64:
//! let m = midpoint_f32(1.0f32, 1.0f32 + f32::EPSILON);
//! assert_eq!(m as f32, 1.0f32); // ties-to-even rounds the midpoint down
//! assert!(next_up_f64(1.0) > 1.0);
//! ```

pub mod bf16;
pub mod bits;
pub mod half;
pub mod repr;
pub mod rng;
pub mod small;

pub use bf16::BFloat16;
pub use half::Half;
pub use repr::Representation;
