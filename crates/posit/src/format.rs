//! Generic posit decode/encode for widths up to 32 bits.
//!
//! A posit `<width, es>` encodes, after the sign bit, a run-length-encoded
//! *regime* `k`, then `es` exponent bits, then fraction bits. The value of a
//! positive pattern is `2^(k * 2^es + e) * (1 + f / 2^F)`. Negative values
//! are the two's complement of the positive pattern. There are exactly two
//! special patterns: all zeros (`0`) and the sign bit alone (`NaR`,
//! "not a real").
//!
//! Rounding follows the SoftPosit convention used by the RLIBM-32 artifact:
//! round-to-nearest-even on the *bit stream* (round + sticky bits taken
//! after the last stored position), with posit saturation — no finite value
//! ever rounds to zero, `NaR`, or past `±maxpos`.

/// Parameters of a posit format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PositFormat {
    /// Total width in bits (2..=32).
    pub width: u32,
    /// Number of exponent bits (the `es` parameter).
    pub es: u32,
}

/// A decoded posit value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// The zero pattern.
    Zero,
    /// Not-a-Real (the posit exception value).
    NaR,
    /// A finite nonzero value `(-1)^neg * (sig / 2^63) * 2^scale` where
    /// `sig` always has its most significant bit (bit 63) set, i.e. the
    /// significand `sig / 2^63` lies in `[1, 2)`.
    Finite {
        /// Sign (true = negative).
        neg: bool,
        /// Power-of-two scale.
        scale: i32,
        /// Normalized significand, MSB (bit 63) set.
        sig: u64,
    },
}

impl PositFormat {
    /// The standard 32-bit posit (es = 2), the paper's `posit32`.
    pub const POSIT32: PositFormat = PositFormat { width: 32, es: 2 };
    /// The classic 16-bit posit (es = 1) targeted by the original RLIBM.
    pub const POSIT16: PositFormat = PositFormat { width: 16, es: 1 };

    /// Mask selecting the low `width` bits.
    pub fn mask(self) -> u32 {
        if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        }
    }

    /// The NaR bit pattern (sign bit alone).
    pub fn nar_bits(self) -> u32 {
        1u32 << (self.width - 1)
    }

    /// The largest positive pattern (`maxpos`).
    pub fn maxpos_bits(self) -> u32 {
        (1u32 << (self.width - 1)) - 1
    }

    /// Scale of `maxpos` = `(width - 2) * 2^es`; `minpos` has the negated
    /// scale.
    pub fn max_scale(self) -> i32 {
        ((self.width - 2) << self.es) as i32
    }

    /// Decodes a bit pattern.
    pub fn decode(self, bits: u32) -> Decoded {
        let bits = bits & self.mask();
        if bits == 0 {
            return Decoded::Zero;
        }
        if bits == self.nar_bits() {
            return Decoded::NaR;
        }
        let neg = bits & self.nar_bits() != 0;
        let mag = if neg {
            bits.wrapping_neg() & self.mask()
        } else {
            bits
        };
        // Left-align so the (zero) sign bit sits at bit 31; the pad bits
        // below are zero, which is exactly the "ghost bits are zero"
        // convention for short exponent/fraction fields.
        let aligned = mag << (32 - self.width);
        let body = aligned << 1; // regime field starts at bit 31
        let rem_len = self.width - 1;
        let (k, consumed) = if body >> 31 == 1 {
            let ones = body.leading_ones().min(rem_len);
            (ones as i32 - 1, (ones + 1).min(rem_len))
        } else {
            let zeros = body.leading_zeros().min(rem_len);
            (-(zeros as i32), (zeros + 1).min(rem_len))
        };
        let rest = if consumed >= 32 { 0 } else { body << consumed };
        let e = if self.es == 0 {
            0
        } else {
            rest >> (32 - self.es)
        };
        let frac = if self.es >= 32 { 0 } else { rest << self.es };
        let scale = (k << self.es) + e as i32;
        let sig = (1u64 << 63) | ((frac as u64) << 31);
        Decoded::Finite { neg, scale, sig }
    }

    /// Exact conversion of a pattern to `f64`.
    ///
    /// Exact for every posit of width ≤ 32 (at most 29 significand bits and
    /// scale within ±120 for posit32). `NaR` maps to `f64::NAN`.
    pub fn to_f64(self, bits: u32) -> f64 {
        match self.decode(bits) {
            Decoded::Zero => 0.0,
            Decoded::NaR => f64::NAN,
            Decoded::Finite { neg, scale, sig } => {
                // sig/2^63 * 2^scale; both factors exact in f64.
                let v = sig as f64 * 2f64.powi(scale - 63);
                if neg {
                    -v
                } else {
                    v
                }
            }
        }
    }

    /// Encodes a finite nonzero value `(-1)^neg * (sig / 2^63) * 2^scale`
    /// (with `sig` MSB-set) plus an optional sticky residual, rounding to
    /// the nearest pattern (ties to even) with posit saturation.
    ///
    /// # Panics
    ///
    /// Panics if `sig` does not have its top bit set.
    pub fn encode_round(self, neg: bool, scale: i32, sig: u64, sticky_extra: bool) -> u32 {
        assert!(sig >> 63 == 1, "significand must be normalized");
        let max_scale = self.max_scale();
        let body = if scale > max_scale {
            self.maxpos_bits()
        } else if scale < -max_scale {
            1 // minpos: nonzero values never round to zero
        } else {
            let k = scale >> self.es;
            let e = (scale - (k << self.es)) as u32;
            debug_assert!(e < (1 << self.es));
            let (regime, regime_len) = if k >= 0 {
                // k+1 ones then a zero terminator.
                ((((1u128 << (k + 1)) - 1) << 1), (k + 2) as u32)
            } else {
                // |k| zeros then a one.
                (1u128, (1 - k) as u32)
            };
            let frac63 = (sig << 1) as u128; // hidden bit dropped, left-aligned in 64
            let stream = (regime << (self.es + 64)) | ((e as u128) << 64) | frac63;
            let total_len = regime_len + self.es + 64;
            let shift = total_len - (self.width - 1);
            let mut body = (stream >> shift) as u32;
            let round_bit = (stream >> (shift - 1)) & 1;
            let sticky =
                (stream & ((1u128 << (shift - 1)) - 1)) != 0 || sticky_extra;
            if round_bit == 1 && (sticky || body & 1 == 1) {
                body += 1;
            }
            if body > self.maxpos_bits() {
                body = self.maxpos_bits(); // never round past maxpos
            }
            if body == 0 {
                body = 1; // never round a nonzero value to zero
            }
            body
        };
        if neg {
            body.wrapping_neg() & self.mask()
        } else {
            body
        }
    }

    /// Correctly rounds an `f64` into this posit format.
    ///
    /// NaN and infinities map to `NaR` (infinity is not a real). Zero maps
    /// to the zero pattern. Everything else rounds with saturation.
    pub fn round_from_f64(self, x: f64) -> u32 {
        if x.is_nan() || x.is_infinite() {
            return self.nar_bits();
        }
        if x == 0.0 {
            return 0;
        }
        let neg = x < 0.0;
        let a = x.abs();
        let bits = a.to_bits();
        let raw_exp = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        let (scale, sig) = if raw_exp == 0 {
            // Subnormal double: normalize the fraction.
            let shift = frac.leading_zeros() - 11;
            let mant = frac << shift;
            (-1022 - shift as i32, mant << 11)
        } else {
            (raw_exp - 1023, (frac | (1u64 << 52)) << 11)
        };
        self.encode_round(neg, scale, sig, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P32: PositFormat = PositFormat::POSIT32;
    const P16: PositFormat = PositFormat::POSIT16;

    #[test]
    fn decode_special_patterns() {
        assert_eq!(P32.decode(0), Decoded::Zero);
        assert_eq!(P32.decode(0x8000_0000), Decoded::NaR);
        assert_eq!(P16.decode(0x8000), Decoded::NaR);
    }

    #[test]
    fn decode_one() {
        // +1.0 for any posit: sign 0, regime "10", e = 0, frac = 0
        // posit32: 0100...0 = 0x4000_0000.
        match P32.decode(0x4000_0000) {
            Decoded::Finite { neg, scale, sig } => {
                assert!(!neg);
                assert_eq!(scale, 0);
                assert_eq!(sig, 1u64 << 63);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(P32.to_f64(0x4000_0000), 1.0);
        assert_eq!(P16.to_f64(0x4000), 1.0);
    }

    #[test]
    fn decode_minpos_maxpos() {
        assert_eq!(P32.to_f64(P32.maxpos_bits()), 2f64.powi(120));
        assert_eq!(P32.to_f64(1), 2f64.powi(-120));
        assert_eq!(P16.to_f64(P16.maxpos_bits()), 2f64.powi(28));
        assert_eq!(P16.to_f64(1), 2f64.powi(-28));
    }

    #[test]
    fn negative_patterns_are_twos_complement() {
        // -1.0 = two's complement of 0x4000_0000 = 0xC000_0000.
        assert_eq!(P32.to_f64(0xC000_0000), -1.0);
        assert_eq!(P32.round_from_f64(-1.0), 0xC000_0000);
    }

    #[test]
    fn roundtrip_every_posit16_pattern() {
        for bits in 0..=u16::MAX as u32 {
            let v = P16.to_f64(bits);
            if v.is_nan() {
                continue;
            }
            assert_eq!(
                P16.round_from_f64(v),
                bits,
                "pattern {bits:#06x} (value {v}) failed to round-trip"
            );
        }
    }

    #[test]
    fn roundtrip_posit32_sample() {
        // Stratified sample: every (multiple-of-97) pattern round-trips.
        let mut bits: u32 = 1;
        loop {
            let v = P32.to_f64(bits);
            if !v.is_nan() {
                assert_eq!(P32.round_from_f64(v), bits, "pattern {bits:#010x}");
            }
            match bits.checked_add(961_748_927) {
                Some(b) => bits = b,
                None => break,
            }
        }
    }

    #[test]
    fn saturation_rules() {
        // Values beyond maxpos saturate.
        assert_eq!(P32.round_from_f64(1e300), P32.maxpos_bits());
        assert_eq!(P32.round_from_f64(-1e300), P32.maxpos_bits().wrapping_neg());
        // Tiny nonzero values round to minpos, never zero.
        assert_eq!(P32.round_from_f64(1e-300), 1);
        assert_eq!(P32.round_from_f64(-1e-300), 1u32.wrapping_neg() & P32.mask());
        // Infinity and NaN are NaR.
        assert_eq!(P32.round_from_f64(f64::INFINITY), P32.nar_bits());
        assert_eq!(P32.round_from_f64(f64::NAN), P32.nar_bits());
    }

    #[test]
    fn rounding_is_to_nearest_with_even_ties() {
        // Adjacent posits around 1.0 in posit32: fraction quantum 2^-27.
        let one = P32.to_f64(0x4000_0000);
        let next = P32.to_f64(0x4000_0001);
        let mid = (one + next) / 2.0; // exactly representable in f64
        // Tie: 0x4000_0000 has even last bit -> rounds down.
        assert_eq!(P32.round_from_f64(mid), 0x4000_0000);
        let next2 = P32.to_f64(0x4000_0002);
        let mid2 = (next + next2) / 2.0;
        assert_eq!(P32.round_from_f64(mid2), 0x4000_0002);
        // Slightly off the tie rounds to the closer one.
        assert_eq!(P32.round_from_f64(mid * (1.0 + 1e-12)), 0x4000_0001);
    }

    #[test]
    fn pattern_order_is_value_order() {
        // For positive patterns, bit order == value order (the property the
        // encoder's carry propagation relies on).
        let mut prev = P32.to_f64(1);
        for bits in (2..P32.maxpos_bits()).step_by(7_919_111) {
            let v = P32.to_f64(bits);
            assert!(v > prev);
            prev = v;
        }
    }
}
