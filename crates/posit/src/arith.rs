//! Exact posit arithmetic on bit patterns.
//!
//! Each operation decodes to (sign, scale, 64-bit significand), performs
//! exact integer arithmetic with guard/sticky bits, and re-encodes with a
//! single correct rounding. This mirrors a classic softfloat design, adapted
//! to posit saturation semantics.

use crate::format::{Decoded, PositFormat};

/// Negation: two's complement of the pattern (exact, total).
pub fn neg(fmt: PositFormat, a: u32) -> u32 {
    a.wrapping_neg() & fmt.mask()
}

/// Correctly rounded posit multiplication.
pub fn mul(fmt: PositFormat, a: u32, b: u32) -> u32 {
    let (da, db) = (fmt.decode(a), fmt.decode(b));
    match (da, db) {
        (Decoded::NaR, _) | (_, Decoded::NaR) => fmt.nar_bits(),
        (Decoded::Zero, _) | (_, Decoded::Zero) => 0,
        (
            Decoded::Finite { neg: na, scale: sa, sig: siga },
            Decoded::Finite { neg: nb, scale: sb, sig: sigb },
        ) => {
            let neg = na ^ nb;
            let prod = siga as u128 * sigb as u128; // in [2^126, 2^128)
            let (sig, sticky, bump) = if prod >> 127 == 1 {
                (
                    (prod >> 64) as u64,
                    prod & ((1u128 << 64) - 1) != 0,
                    1,
                )
            } else {
                (
                    (prod >> 63) as u64,
                    prod & ((1u128 << 63) - 1) != 0,
                    0,
                )
            };
            fmt.encode_round(neg, sa + sb + bump, sig, sticky)
        }
    }
}

/// Correctly rounded posit division.
///
/// Division by zero yields `NaR` (posits have no infinity).
pub fn div(fmt: PositFormat, a: u32, b: u32) -> u32 {
    let (da, db) = (fmt.decode(a), fmt.decode(b));
    match (da, db) {
        (Decoded::NaR, _) | (_, Decoded::NaR) => fmt.nar_bits(),
        (_, Decoded::Zero) => fmt.nar_bits(),
        (Decoded::Zero, _) => 0,
        (
            Decoded::Finite { neg: na, scale: sa, sig: siga },
            Decoded::Finite { neg: nb, scale: sb, sig: sigb },
        ) => {
            let neg = na ^ nb;
            // ratio = siga/sigb in (1/2, 2).
            let num = (siga as u128) << 63;
            let q = num / sigb as u128;
            let r = num % sigb as u128;
            let (sig, sticky, bump) = if q >> 63 == 1 {
                // ratio >= 1: q already has 64 bits with MSB set.
                (q as u64, r != 0, 0)
            } else {
                // ratio < 1: recompute with one more bit of quotient.
                let num2 = (siga as u128) << 64;
                let q2 = num2 / sigb as u128;
                let r2 = num2 % sigb as u128;
                debug_assert!(q2 >> 63 == 1);
                (q2 as u64, r2 != 0, -1)
            };
            fmt.encode_round(neg, sa - sb + bump, sig, sticky)
        }
    }
}

/// Correctly rounded posit addition.
pub fn add(fmt: PositFormat, a: u32, b: u32) -> u32 {
    let (da, db) = (fmt.decode(a), fmt.decode(b));
    let (na, sa, siga, nb, sb, sigb) = match (da, db) {
        (Decoded::NaR, _) | (_, Decoded::NaR) => return fmt.nar_bits(),
        (Decoded::Zero, _) => return b & fmt.mask(),
        (_, Decoded::Zero) => return a & fmt.mask(),
        (
            Decoded::Finite { neg: na, scale: sa, sig: siga },
            Decoded::Finite { neg: nb, scale: sb, sig: sigb },
        ) => (na, sa, siga, nb, sb, sigb),
    };
    // Order by magnitude: (scale, sig) lexicographic.
    let ((nh, sh, sigh), (nl, sl, sigl)) = if (sa, siga) >= (sb, sigb) {
        ((na, sa, siga), (nb, sb, sigb))
    } else {
        ((nb, sb, sigb), (na, sa, siga))
    };
    let d = (sh - sl) as u32;
    const G: u32 = 3; // guard bits
    let big = (sigh as u128) << G;
    let (small, mut sticky) = if d >= 64 + G {
        (0u128, true)
    } else {
        let full = (sigl as u128) << G;
        (full >> d, full & ((1u128 << d) - 1) != 0)
    };
    let (result_neg, mut sum) = if nh == nl {
        (nh, big + small)
    } else {
        let mut s = big - small;
        if sticky {
            // The true subtrahend is slightly larger than `small`; borrow
            // one and keep a positive residue in the sticky bit.
            s -= 1;
        }
        if s == 0 && !sticky {
            return 0; // exact cancellation
        }
        (nh, s)
    };
    if sum == 0 {
        // Only reachable with sticky set; the true value is a positive
        // residue below one guard ulp -- encode as the tiniest contribution.
        sum = 1;
    }
    let p = 127 - sum.leading_zeros() as i32; // top bit index
    let scale = sh - (63 + G as i32) + p;
    let sig = if p >= 63 {
        let drop = (p - 63) as u32;
        sticky |= sum & ((1u128 << drop) - 1) != 0;
        (sum >> drop) as u64
    } else {
        (sum << (63 - p)) as u64
    };
    fmt.encode_round(result_neg, scale, sig, sticky)
}

/// Correctly rounded posit subtraction.
pub fn sub(fmt: PositFormat, a: u32, b: u32) -> u32 {
    add(fmt, a, neg(fmt, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    const P16: PositFormat = PositFormat::POSIT16;
    const P32: PositFormat = PositFormat::POSIT32;

    fn p32(x: f64) -> u32 {
        P32.round_from_f64(x)
    }

    #[test]
    fn small_integer_arithmetic() {
        let two = p32(2.0);
        let three = p32(3.0);
        assert_eq!(P32.to_f64(add(P32, two, three)), 5.0);
        assert_eq!(P32.to_f64(mul(P32, two, three)), 6.0);
        assert_eq!(P32.to_f64(sub(P32, two, three)), -1.0);
        assert_eq!(P32.to_f64(div(P32, three, two)), 1.5);
    }

    #[test]
    fn special_value_propagation() {
        let nar = P32.nar_bits();
        let one = p32(1.0);
        assert_eq!(add(P32, nar, one), nar);
        assert_eq!(mul(P32, nar, one), nar);
        assert_eq!(div(P32, one, 0), nar);
        assert_eq!(add(P32, 0, one), one);
        assert_eq!(mul(P32, 0, one), 0);
    }

    #[test]
    fn cancellation_is_exact() {
        let x = p32(1.0e10);
        assert_eq!(sub(P32, x, x), 0);
        // Sterbenz-style: close values subtract exactly.
        let a = p32(1.0);
        let b = P32.decode(a);
        let _ = b;
        let a_next = a + 1; // next posit above 1.0
        let diff = P32.to_f64(sub(P32, a_next, a));
        assert_eq!(diff, P32.to_f64(a_next) - 1.0);
    }

    #[test]
    fn saturation_in_arithmetic() {
        let maxpos = P32.maxpos_bits();
        // maxpos * maxpos saturates to maxpos (no overflow in posits).
        assert_eq!(mul(P32, maxpos, maxpos), maxpos);
        // minpos / maxpos saturates to minpos (no underflow to zero).
        assert_eq!(div(P32, 1, maxpos), 1);
    }

    /// Reference model: exact rational comparison through f64 on formats
    /// small enough that f64 holds every intermediate exactly.
    #[test]
    fn posit16_add_matches_f64_reference_exhaustively_sampled() {
        // When the f64 sum of two posit16 values is exact (checked with the
        // Fast2Sum error term), rounding that exact sum is ground truth and
        // must equal our integer-path addition. Inexact sums are skipped:
        // there the f64 path itself double-rounds and is NOT a reference.
        let mut checked = 0u32;
        for a in (0..=u16::MAX as u32).step_by(251) {
            for b in (0..=u16::MAX as u32).step_by(257) {
                let (fa, fb) = (P16.to_f64(a), P16.to_f64(b));
                if fa.is_nan() || fb.is_nan() {
                    continue;
                }
                let s = fa + fb;
                if !s.is_finite() || (s - fa) != fb || (s - (s - fa)) != fa {
                    continue; // f64 sum not exact
                }
                checked += 1;
                let want = P16.round_from_f64(s);
                let got = add(P16, a, b);
                assert_eq!(
                    got, want,
                    "add({a:#06x},{b:#06x}) = {fa} + {fb}: got {got:#06x} want {want:#06x}"
                );
            }
        }
        assert!(checked > 10_000, "too few exact pairs exercised: {checked}");
    }

    #[test]
    fn posit16_mul_matches_f64_reference_sampled() {
        // Products of posit16 significands (<= 13 bits each) are exact in
        // f64, and scales stay in range, so f64-mediated rounding is the
        // ground truth.
        for a in (0..=u16::MAX as u32).step_by(103) {
            for b in (0..=u16::MAX as u32).step_by(101) {
                let (fa, fb) = (P16.to_f64(a), P16.to_f64(b));
                if fa.is_nan() || fb.is_nan() {
                    continue;
                }
                let want = P16.round_from_f64(fa * fb);
                let got = mul(P16, a, b);
                assert_eq!(
                    got, want,
                    "mul({a:#06x},{b:#06x}): got {got:#06x} want {want:#06x}"
                );
            }
        }
    }

    #[test]
    fn posit16_sub_matches_f64_reference_sampled() {
        for a in (0..=u16::MAX as u32).step_by(113) {
            for b in (0..=u16::MAX as u32).step_by(127) {
                let (fa, fb) = (P16.to_f64(a), P16.to_f64(b));
                if fa.is_nan() || fb.is_nan() {
                    continue;
                }
                let s = fa - fb;
                if !s.is_finite() || (fa - s) != fb || (s + (fa - s)) != fa {
                    continue; // f64 difference not exact
                }
                let want = P16.round_from_f64(s);
                let got = sub(P16, a, b);
                assert_eq!(got, want, "sub({a:#06x},{b:#06x})");
            }
        }
    }
}
