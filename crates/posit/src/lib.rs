//! Posit arithmetic built from scratch for the RLIBM-32 reproduction.
//!
//! The paper develops the *first* correctly rounded elementary functions for
//! the 32-bit posit type. That requires a full posit substrate: decoding,
//! encoding with correct (saturating) rounding, exact conversions to the
//! evaluation precision `f64`, and ordinary arithmetic for applications.
//! This crate provides all of it, for [`Posit32`] (es = 2) and [`Posit16`]
//! (es = 1, the original RLIBM 16-bit target).
//!
//! # Example
//!
//! ```
//! use rlibm_posit::Posit32;
//!
//! let x = Posit32::from_f64(2.0);
//! let y = Posit32::from_f64(0.5);
//! assert_eq!((x * y).to_f64(), 1.0);
//!
//! // Posits saturate instead of overflowing:
//! let huge = Posit32::MAXPOS;
//! assert_eq!(huge * huge, Posit32::MAXPOS);
//! ```

pub mod arith;
pub mod format;
pub mod types;

pub use format::{Decoded, PositFormat};
pub use types::{Posit16, Posit32};
