//! The [`Posit32`] and [`Posit16`] value types.

use crate::arith;
use crate::format::{Decoded, PositFormat};
use rlibm_fp::Representation;

macro_rules! posit_type {
    ($(#[$doc:meta])* $name:ident, $storage:ty, $fmt:expr, $repr_name:literal, $bits:literal) => {
        $(#[$doc])*
        // Posit equality is plain pattern equality: NaR == NaR and there
        // is only one zero, so the derived bitwise PartialEq is exact.
        // (This differs from IEEE floats.)
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
        pub struct $name($storage);

        impl $name {
            /// The format parameters (width, es).
            pub const FORMAT: PositFormat = $fmt;
            /// The zero pattern.
            pub const ZERO: $name = $name(0);
            /// One (`0b01` followed by zeros).
            pub const ONE: $name = $name(1 << ($bits - 2));
            /// Not-a-Real: the posit exception value (sign bit alone).
            pub const NAR: $name = $name(1 << ($bits - 1));
            /// Largest representable value.
            pub const MAXPOS: $name = $name((1 << ($bits - 1)) - 1);
            /// Smallest positive value.
            pub const MINPOS: $name = $name(1);

            /// Constructs a value from its raw bit pattern.
            pub const fn from_bits(bits: $storage) -> Self {
                $name(bits)
            }

            /// The raw bit pattern.
            pub const fn to_bits(self) -> $storage {
                self.0
            }

            /// Rounds an `f64` into this posit format (NaN/inf become NaR;
            /// finite values saturate at `MAXPOS`/`MINPOS`).
            pub fn from_f64(x: f64) -> Self {
                $name(Self::FORMAT.round_from_f64(x) as $storage)
            }

            /// Exact conversion to `f64` (`NaR` becomes NaN).
            pub fn to_f64(self) -> f64 {
                Self::FORMAT.to_f64(self.0 as u32)
            }

            /// True for the NaR pattern.
            pub fn is_nar(self) -> bool {
                self == Self::NAR
            }

            /// True for the zero pattern.
            pub fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// True if the value is finite and nonzero with a negative sign.
            pub fn is_negative(self) -> bool {
                !self.is_nar() && (self.0 >> ($bits - 1)) == 1
            }

            /// Decodes into sign / scale / significand parts.
            pub fn decode(self) -> Decoded {
                Self::FORMAT.decode(self.0 as u32)
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
                if self.is_nar() || other.is_nar() {
                    return None;
                }
                // Pattern order as signed integers IS value order.
                let a = (self.0 as i32) << (32 - $bits);
                let b = (other.0 as i32) << (32 - $bits);
                a.partial_cmp(&b)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if self.is_nar() {
                    write!(f, "NaR")
                } else {
                    write!(f, "{}", self.to_f64())
                }
            }
        }

        impl From<$name> for f64 {
            fn from(x: $name) -> f64 {
                x.to_f64()
            }
        }

        impl core::ops::Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(arith::neg(Self::FORMAT, self.0 as u32) as $storage)
            }
        }

        impl core::ops::Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(arith::add(Self::FORMAT, self.0 as u32, rhs.0 as u32) as $storage)
            }
        }

        impl core::ops::Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(arith::sub(Self::FORMAT, self.0 as u32, rhs.0 as u32) as $storage)
            }
        }

        impl core::ops::Mul for $name {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(arith::mul(Self::FORMAT, self.0 as u32, rhs.0 as u32) as $storage)
            }
        }

        impl core::ops::Div for $name {
            type Output = $name;
            fn div(self, rhs: $name) -> $name {
                $name(arith::div(Self::FORMAT, self.0 as u32, rhs.0 as u32) as $storage)
            }
        }

        impl Representation for $name {
            const NAME: &'static str = $repr_name;
            const BITS: u32 = $bits;

            fn from_bits_u32(bits: u32) -> Self {
                $name((bits & Self::FORMAT.mask()) as $storage)
            }

            fn to_bits_u32(self) -> u32 {
                self.0 as u32
            }

            fn to_f64(self) -> f64 {
                $name::to_f64(self)
            }

            fn round_from_f64(x: f64) -> Self {
                $name::from_f64(x)
            }

            fn is_nan(self) -> bool {
                self.is_nar()
            }

            fn next_up(self) -> Option<Self> {
                if self.is_nar() || self == Self::MAXPOS {
                    return None;
                }
                Some($name(self.0.wrapping_add(1) & (Self::FORMAT.mask() as $storage)))
            }

            fn next_down(self) -> Option<Self> {
                // The most negative finite posit is NaR's pattern + 1.
                if self.is_nar() || self.0 == Self::NAR.0 | 1 {
                    return None;
                }
                Some($name(self.0.wrapping_sub(1) & (Self::FORMAT.mask() as $storage)))
            }
        }
    };
}

posit_type!(
    /// A 32-bit posit with `es = 2` (the paper's `posit32` type).
    ///
    /// Posits provide *tapered* precision: up to 27 fraction bits near 1
    /// (more than `f32`'s 23) and progressively fewer toward the extremes
    /// (`maxpos = 2^120`, `minpos = 2^-120`). There are no infinities, no
    /// signed zero, no subnormals and a single exception value `NaR`.
    ///
    /// # Example
    ///
    /// ```
    /// use rlibm_posit::Posit32;
    /// let x = Posit32::from_f64(1.5);
    /// assert_eq!(x.to_f64(), 1.5);
    /// assert_eq!((x * x).to_f64(), 2.25);
    /// assert!(Posit32::NAR.is_nar());
    /// ```
    Posit32,
    u32,
    PositFormat::POSIT32,
    "posit32",
    32
);

posit_type!(
    /// A 16-bit posit with `es = 1` (the `posit16` type of the original
    /// RLIBM work). Small enough for exhaustive end-to-end pipeline tests.
    ///
    /// # Example
    ///
    /// ```
    /// use rlibm_posit::Posit16;
    /// assert_eq!(Posit16::ONE.to_f64(), 1.0);
    /// ```
    Posit16,
    u16,
    PositFormat::POSIT16,
    "posit16",
    16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Posit32::ONE.to_f64(), 1.0);
        assert_eq!(Posit32::MAXPOS.to_f64(), 2f64.powi(120));
        assert_eq!(Posit32::MINPOS.to_f64(), 2f64.powi(-120));
        assert!(Posit32::NAR.to_f64().is_nan());
        assert_eq!(Posit16::MAXPOS.to_f64(), 2f64.powi(28));
    }

    #[test]
    fn comparison_follows_value_order() {
        let a = Posit32::from_f64(-3.0);
        let b = Posit32::from_f64(-1.0);
        let c = Posit32::from_f64(0.5);
        assert!(a < b && b < c);
        assert!(Posit32::NAR.partial_cmp(&a).is_none());
    }

    #[test]
    fn next_up_walks_in_value_order() {
        let mut v = Posit16::from_bits(0x8001); // most negative finite
        let mut count = 1u32;
        let mut prev = v.to_f64();
        while let Some(n) = v.next_up() {
            assert!(n.to_f64() > prev, "{} !> {}", n.to_f64(), prev);
            prev = n.to_f64();
            v = n;
            count += 1;
        }
        assert_eq!(v, Posit16::MAXPOS);
        // Every pattern except NaR is visited.
        assert_eq!(count, (1u32 << 16) - 1);
    }

    #[test]
    fn tapered_precision_near_one() {
        // Near 1.0 the posit32 quantum is 2^-27 (27 fraction bits).
        let one = Posit32::ONE;
        let next = one.next_up().unwrap();
        assert_eq!(next.to_f64() - 1.0, 2f64.powi(-27));
        // Near maxpos the quantum is a factor of 16.
        let top = Posit32::MAXPOS;
        let below = top.next_down().unwrap();
        assert_eq!(top.to_f64() / below.to_f64(), 16.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Posit32::NAR.to_string(), "NaR");
        assert_eq!(Posit32::ONE.to_string(), "1");
    }
}
