//! Lightweight scoped timers with a thread-local nesting depth.

use crate::metric::Histogram;

#[cfg(feature = "telemetry")]
use std::cell::Cell;
#[cfg(feature = "telemetry")]
use std::sync::Once;
#[cfg(feature = "telemetry")]
use std::time::Instant;

#[cfg(feature = "telemetry")]
thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Current span nesting depth on this thread (0 without the `telemetry`
/// feature, and 0 outside every span).
pub fn span_depth() -> usize {
    #[cfg(feature = "telemetry")]
    {
        DEPTH.with(|d| d.get())
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// A named scoped timer. [`SpanTimer::start`] reads the monotonic clock
/// and returns a guard; dropping the guard records the elapsed
/// nanoseconds into the timer's histogram. Without the `telemetry`
/// feature the clock is never read and the guard is a unit struct.
pub struct SpanTimer {
    durations_ns: Histogram,
    #[cfg(feature = "telemetry")]
    once: Once,
}

impl SpanTimer {
    /// A new span timer; `name` follows the workspace naming scheme and
    /// identifies this span in the snapshot's `spans` section.
    pub const fn new(name: &'static str) -> SpanTimer {
        SpanTimer {
            durations_ns: Histogram::new(name),
            #[cfg(feature = "telemetry")]
            once: Once::new(),
        }
    }

    /// The span name.
    pub fn name(&self) -> &'static str {
        self.durations_ns.name()
    }

    /// Starts the span: bumps this thread's nesting depth and reads the
    /// monotonic clock. Bind the guard (`let _span = TIMER.start();`) —
    /// dropping it ends the span.
    #[must_use = "binding the guard defines the span's extent"]
    pub fn start(&'static self) -> SpanGuard {
        #[cfg(feature = "telemetry")]
        {
            self.once
                .call_once(|| crate::registry::register(crate::registry::MetricRef::Span(self)));
            DEPTH.with(|d| d.set(d.get() + 1));
            SpanGuard { timer: self, start: Instant::now() }
        }
        #[cfg(not(feature = "telemetry"))]
        SpanGuard {}
    }

    /// The nanosecond histogram behind this span.
    pub fn durations_ns(&self) -> &Histogram {
        &self.durations_ns
    }

    /// Times spent in completed spans (0 without the feature).
    pub fn count(&self) -> u64 {
        self.durations_ns.count()
    }

    /// Total nanoseconds across completed spans (0 without the feature).
    pub fn total_ns(&self) -> u64 {
        self.durations_ns.sum()
    }
}

/// Guard returned by [`SpanTimer::start`]; records on drop.
pub struct SpanGuard {
    #[cfg(feature = "telemetry")]
    timer: &'static SpanTimer,
    #[cfg(feature = "telemetry")]
    start: Instant,
}

#[cfg(feature = "telemetry")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let ns = self.start.elapsed().as_nanos();
        self.timer.durations_ns.record_fields(ns.min(u64::MAX as u128) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_tracks_nesting_and_guard_records() {
        static OUTER: SpanTimer = SpanTimer::new("test.span.outer");
        static INNER: SpanTimer = SpanTimer::new("test.span.inner");
        assert_eq!(span_depth(), 0);
        {
            let _a = OUTER.start();
            {
                let _b = INNER.start();
                if crate::enabled() {
                    assert_eq!(span_depth(), 2);
                }
            }
            if crate::enabled() {
                assert_eq!(span_depth(), 1);
            }
        }
        assert_eq!(span_depth(), 0);
        if crate::enabled() {
            assert_eq!(OUTER.count(), 1);
            assert_eq!(INNER.count(), 1);
            // Outer span encloses the inner one.
            assert!(OUTER.total_ns() >= INNER.total_ns());
        } else {
            assert_eq!(OUTER.count(), 0);
        }
    }
}
