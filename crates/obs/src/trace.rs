//! The flight recorder: lock-free, bounded, per-thread trace rings.
//!
//! Counters and histograms say *how much*; the trace ring says *what
//! happened last*. Each participating thread claims one single-writer
//! ring from a fixed static pool and appends fixed-size records —
//! `(48-bit monotonic timestamp, event kind, u8 aux, u64 tag, u32
//! payload)` packed into three `u64` words. Writers never block, never
//! allocate, and never contend with each other; readers take a
//! torn-record-safe snapshot of every ring at once, which is what the
//! serve supervisor dumps when a shard panics, restarts, or detects
//! corruption.
//!
//! # Record layout
//!
//! Word 0: `kind << 56 | aux << 48 | ts_ns & ((1 << 48) - 1)` — 48 bits
//! of nanoseconds since the process trace epoch (~3.2 days of range).
//! Word 1: the request `tag`. Word 2: the `u32` payload (input bit
//! pattern, latency, lane count — kind-dependent), zero-extended.
//!
//! # Sampling
//!
//! Per-request events are sampled by a deterministic hash of the request
//! tag ([`sampled`]): a request is sampled when the low
//! [`sample_shift`] bits of `splitmix64(tag)` are zero, so every stage
//! of the pipeline — producer, shard, completion — independently agrees
//! on the same sample set and a sampled request yields a *complete*
//! span breakdown. Shed and rescalar events bypass sampling: they are
//! the exemplars the harness exists to capture.
//!
//! # Memory bound and loss
//!
//! The pool is `MAX_RINGS` rings of `RING_CAP` records (24 bytes each):
//! ~384 KiB total, allocated statically. A thread that finds every ring
//! busy drops its events and bumps [`dropped_events`]; a full ring
//! overwrites its own oldest records. A snapshot taken while a writer
//! is mid-append conservatively excludes the records the writer could
//! have been touching, so at most `RING_CAP - 1` records per ring are
//! visible.
//!
//! Without the `telemetry` feature every function here is an
//! `#[inline(always)]` no-op, the pool does not exist, and
//! [`snapshot_rings`] returns an empty vector.

#[cfg(feature = "telemetry")]
use core::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::cell::{Cell, RefCell};
#[cfg(feature = "telemetry")]
use std::sync::OnceLock;
#[cfg(feature = "telemetry")]
use std::time::Instant;

/// Records per ring. One ring holds the last `RING_CAP` events of one
/// thread (a snapshot sees at most `RING_CAP - 1` of them).
pub const RING_CAP: usize = 512;

/// Rings in the static pool — the maximum number of concurrently
/// tracing threads. Threads beyond this drop events (counted).
pub const MAX_RINGS: usize = 32;

/// `u64` words per record.
#[cfg(feature = "telemetry")]
const WORDS: usize = 3;

/// Timestamp mask: 48 bits of nanoseconds (~3.2 days).
#[cfg(feature = "telemetry")]
const TS_MASK: u64 = (1 << 48) - 1;

/// What a trace record describes. The discriminant is stored in the
/// record's high byte; sheds get one kind per reason so the payload
/// stays free for the input bit pattern (the exemplar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// Producer pushed a request into a shard ring. Payload: input bits.
    Enqueue = 1,
    /// Shard popped the request. Payload: queue wait (ns, saturated).
    Dequeue = 2,
    /// A batch left staging for the kernel. Payload: lane count.
    BatchFlush = 3,
    /// A sampled request completed. Payload: latency (ns, saturated).
    Complete = 4,
    /// A slice-kernel lane fell back to the scalar two-tier path.
    /// Payload: the lane's f32 input bits.
    Rescalar = 5,
    /// Shed: deadline exceeded. Payload: input bits.
    ShedDeadline = 6,
    /// Shed: ring full past the push budget. Payload: input bits.
    ShedBackpressure = 7,
    /// Shed: admission closed (drain). Payload: input bits.
    ShedAdmission = 8,
    /// Shed: checksum mismatch. Payload: input bits (as observed).
    ShedCorrupted = 9,
    /// Shed: shard gave up after repeated panics. Payload: input bits.
    ShedPoisoned = 10,
    /// Supervisor caught a shard panic. Payload: restart ordinal.
    PanicCaught = 11,
    /// Supervisor restarted a shard worker. Payload: restart ordinal.
    Restart = 12,
}

impl TraceKind {
    /// Decodes a stored kind byte (`None` for invalid bytes, which a
    /// snapshot skips rather than misreports).
    pub fn from_u8(v: u8) -> Option<TraceKind> {
        Some(match v {
            1 => TraceKind::Enqueue,
            2 => TraceKind::Dequeue,
            3 => TraceKind::BatchFlush,
            4 => TraceKind::Complete,
            5 => TraceKind::Rescalar,
            6 => TraceKind::ShedDeadline,
            7 => TraceKind::ShedBackpressure,
            8 => TraceKind::ShedAdmission,
            9 => TraceKind::ShedCorrupted,
            10 => TraceKind::ShedPoisoned,
            11 => TraceKind::PanicCaught,
            12 => TraceKind::Restart,
            _ => return None,
        })
    }

    /// Stable lowercase label for reports.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Enqueue => "enqueue",
            TraceKind::Dequeue => "dequeue",
            TraceKind::BatchFlush => "batch_flush",
            TraceKind::Complete => "complete",
            TraceKind::Rescalar => "rescalar",
            TraceKind::ShedDeadline => "shed_deadline",
            TraceKind::ShedBackpressure => "shed_backpressure",
            TraceKind::ShedAdmission => "shed_admission",
            TraceKind::ShedCorrupted => "shed_corrupted",
            TraceKind::ShedPoisoned => "shed_poisoned",
            TraceKind::PanicCaught => "panic_caught",
            TraceKind::Restart => "restart",
        }
    }
}

/// One decoded trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch (low 48 bits).
    pub ts_ns: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-dependent context byte — the global function id for request
    /// and kernel events, the shard index for supervisor events.
    pub aux: u8,
    /// The request tag (0 when no request is in scope).
    pub tag: u64,
    /// Kind-dependent payload bits (see [`TraceKind`]).
    pub payload: u32,
}

/// The snapshot of one ring: the visible events of one (possibly
/// already exited) thread, in append order.
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    /// Pool index of the ring.
    pub ring: usize,
    /// Visible events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Default [`sample_shift`]: sample 1 request in 16.
pub const DEFAULT_SAMPLE_SHIFT: u32 = 4;

/// `splitmix64` finalizer — the tag hash behind [`sampled`]. Public so
/// harnesses can build payloads that are checkable functions of the tag.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Pure form of [`sampled`]: is `tag` in the sample set at this shift?
/// A request is sampled when the low `shift` bits of `mix64(tag)` are
/// zero — rate `2^-shift`, shift 0 samples everything.
pub fn sampled_at(tag: u64, shift: u32) -> bool {
    mix64(tag) & ((1u64 << shift.min(63)) - 1) == 0
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::*;

    pub(super) struct Ring {
        pub(super) busy: AtomicBool,
        /// Next sequence number; `seq % RING_CAP` is the slot. Stored
        /// with Release *after* the slot words, so a reader that
        /// Acquire-loads the cursor sees fully written records.
        pub(super) cursor: AtomicU64,
        pub(super) words: [AtomicU64; RING_CAP * WORDS],
    }

    impl Ring {
        const fn new() -> Ring {
            Ring {
                busy: AtomicBool::new(false),
                cursor: AtomicU64::new(0),
                words: [const { AtomicU64::new(0) }; RING_CAP * WORDS],
            }
        }
    }

    pub(super) static RINGS: [Ring; MAX_RINGS] = [const { Ring::new() }; MAX_RINGS];
    pub(super) static DROPPED: AtomicU64 = AtomicU64::new(0);
    pub(super) static SAMPLE_SHIFT: AtomicU32 = AtomicU32::new(DEFAULT_SAMPLE_SHIFT);
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Releases this thread's ring on thread exit. The ring's contents
    /// stay visible to snapshots until another thread claims it — a dead
    /// shard's last events remain dumpable.
    pub(super) struct RingGuard(pub(super) usize);

    impl Drop for RingGuard {
        fn drop(&mut self) {
            RINGS[self.0].busy.store(false, Ordering::Release);
        }
    }

    thread_local! {
        pub(super) static MY_RING: RefCell<Option<RingGuard>> = const { RefCell::new(None) };
        pub(super) static CONTEXT: Cell<u8> = const { Cell::new(0) };
        pub(super) static FALLBACK_NS: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn now_ns_imp() -> u64 {
        let epoch = EPOCH.get_or_init(Instant::now);
        epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn claim() -> Option<RingGuard> {
        for (i, r) in RINGS.iter().enumerate() {
            if r.busy
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // Fresh window for the new owner; stale words beyond the
                // cursor are never decoded.
                r.cursor.store(0, Ordering::Release);
                return Some(RingGuard(i));
            }
        }
        None
    }

    /// Runs `f` on this thread's ring, claiming one on first use.
    /// Returns false (and counts a drop) when the pool is exhausted or
    /// the thread is past TLS destruction.
    pub(super) fn with_ring(f: impl FnOnce(&Ring)) -> bool {
        let ok = MY_RING
            .try_with(|slot| {
                let mut g = slot.borrow_mut();
                if g.is_none() {
                    *g = claim();
                }
                match g.as_ref() {
                    Some(rg) => {
                        f(&RINGS[rg.0]);
                        true
                    }
                    None => false,
                }
            })
            .unwrap_or(false);
        if !ok {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    pub(super) fn append(ring: &Ring, kind: TraceKind, aux: u8, tag: u64, payload: u32) {
        let meta =
            ((kind as u64) << 56) | ((aux as u64) << 48) | (now_ns_imp() & TS_MASK);
        let seq = ring.cursor.load(Ordering::Relaxed);
        let slot = (seq as usize % RING_CAP) * WORDS;
        ring.words[slot].store(meta, Ordering::Relaxed);
        ring.words[slot + 1].store(tag, Ordering::Relaxed);
        ring.words[slot + 2].store(u64::from(payload), Ordering::Relaxed);
        ring.cursor.store(seq + 1, Ordering::Release);
    }

    pub(super) fn snapshot_ring(idx: usize, ring: &Ring) -> Option<ThreadTrace> {
        let c1 = ring.cursor.load(Ordering::Acquire);
        if c1 == 0 {
            return None;
        }
        let copy: Vec<u64> =
            ring.words.iter().map(|w| w.load(Ordering::Relaxed)).collect();
        let c2 = ring.cursor.load(Ordering::Acquire);
        // Seqs present at c1: [c1 - CAP, c1). While we copied, the writer
        // may have advanced to c2 and begun writing seq c2 itself, dirtying
        // the slots of seqs [c1 - CAP, c2 - CAP]. Keep only records whose
        // slots could not have been touched.
        let present_lo = c1.saturating_sub(RING_CAP as u64);
        let safe_lo = (c2 + 1).saturating_sub(RING_CAP as u64);
        let lo = present_lo.max(safe_lo);
        let mut events = Vec::with_capacity((c1 - lo) as usize);
        for seq in lo..c1 {
            let slot = (seq as usize % RING_CAP) * WORDS;
            let meta = copy[slot];
            if let Some(kind) = TraceKind::from_u8((meta >> 56) as u8) {
                events.push(TraceEvent {
                    ts_ns: meta & TS_MASK,
                    kind,
                    aux: (meta >> 48) as u8,
                    tag: copy[slot + 1],
                    payload: copy[slot + 2] as u32,
                });
            }
        }
        (!events.is_empty()).then_some(ThreadTrace { ring: idx, events })
    }
}

/// Appends one event to this thread's ring (no-op without `telemetry`).
/// Callers decide sampling; this always records when a ring is
/// available.
#[inline(always)]
pub fn emit(kind: TraceKind, aux: u8, tag: u64, payload: u32) {
    #[cfg(feature = "telemetry")]
    imp::with_ring(|r| imp::append(r, kind, aux, tag, payload));
    #[cfg(not(feature = "telemetry"))]
    let _ = (kind, aux, tag, payload);
}

/// Is this request tag in the deterministic sample set? Always false
/// without the `telemetry` feature — callers can gate whole
/// instrumentation blocks on it.
#[inline(always)]
pub fn sampled(tag: u64) -> bool {
    #[cfg(feature = "telemetry")]
    {
        sampled_at(tag, imp::SAMPLE_SHIFT.load(Ordering::Relaxed))
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = tag;
        false
    }
}

/// Sets the global sampling rate to `2^-shift` (clamped to `2^-32`).
/// Shift 0 samples every request.
pub fn set_sample_shift(shift: u32) {
    #[cfg(feature = "telemetry")]
    imp::SAMPLE_SHIFT.store(shift.min(32), Ordering::Relaxed);
    #[cfg(not(feature = "telemetry"))]
    let _ = shift;
}

/// The current sampling shift ([`DEFAULT_SAMPLE_SHIFT`] unless
/// overridden; 0 reported without the feature).
pub fn sample_shift() -> u32 {
    #[cfg(feature = "telemetry")]
    {
        imp::SAMPLE_SHIFT.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// Nanoseconds since the process trace epoch (0 without the feature).
pub fn now_ns() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        imp::now_ns_imp()
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// Sets this thread's trace context byte — the serving layer stores the
/// global function id here before invoking a kernel, so events emitted
/// *inside* the kernel (rescalar exemplars) carry the right attribution.
#[inline(always)]
pub fn set_context(aux: u8) {
    #[cfg(feature = "telemetry")]
    let _ = imp::CONTEXT.try_with(|c| c.set(aux));
    #[cfg(not(feature = "telemetry"))]
    let _ = aux;
}

/// This thread's trace context byte (0 without the feature).
#[inline(always)]
pub fn context() -> u8 {
    #[cfg(feature = "telemetry")]
    {
        imp::CONTEXT.try_with(|c| c.get()).unwrap_or(0)
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// Reports one rescalar-lane fallback from inside a slice kernel: emits
/// a [`TraceKind::Rescalar`] exemplar carrying the lane's input bits
/// (attributed via [`context`]) and accrues the lane's scalar-path
/// nanoseconds into this thread's fallback accumulator, which the
/// serving layer drains per batch with [`take_fallback_ns`].
#[inline(always)]
pub fn rescalar_exemplar(x_bits: u32, ns: u64) {
    #[cfg(feature = "telemetry")]
    {
        emit(TraceKind::Rescalar, context(), 0, x_bits);
        let _ = imp::FALLBACK_NS.try_with(|f| f.set(f.get().saturating_add(ns)));
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (x_bits, ns);
}

/// Drains this thread's rescalar fallback-time accumulator, returning
/// the nanoseconds accrued since the last call (0 without the feature).
#[inline(always)]
pub fn take_fallback_ns() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        imp::FALLBACK_NS.try_with(|f| f.replace(0)).unwrap_or(0)
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// Events dropped because every ring was busy (0 without the feature).
pub fn dropped_events() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        imp::DROPPED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// A torn-record-safe snapshot of every non-empty ring, including rings
/// released by exited threads (their last events persist until the ring
/// is reclaimed). Rings quiescent across the call are captured exactly;
/// a ring being appended to concurrently loses up to its newest record
/// plus however far its writer advanced during the copy.
pub fn snapshot_rings() -> Vec<ThreadTrace> {
    #[cfg(feature = "telemetry")]
    {
        imp::RINGS
            .iter()
            .enumerate()
            .filter_map(|(i, r)| imp::snapshot_ring(i, r))
            .collect()
    }
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// Empties every ring in the pool (claimed or not) by resetting its
/// cursor; [`crate::reset_all`] calls this. Intended for quiescent
/// points between measured phases — a writer racing the reset may
/// resurrect a partial window, which the next reset clears.
pub fn reset_rings() {
    #[cfg(feature = "telemetry")]
    for r in &imp::RINGS {
        r.cursor.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that read whole-ring windows or reset the
    /// pool; the pool is process-global and tests run concurrently.
    static POOL: Mutex<()> = Mutex::new(());

    #[test]
    fn sampling_is_deterministic_and_near_rate() {
        // Pure helper: feature-independent.
        for tag in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(sampled_at(tag, 4), sampled_at(tag, 4));
            assert!(sampled_at(tag, 0), "shift 0 samples everything");
        }
        let hits = (0..100_000u64).filter(|&t| sampled_at(t, 4)).count();
        // 1/16 of 100k = 6250; the tag hash should land within ±15%.
        assert!((5300..7200).contains(&hits), "sample rate off: {hits}");
    }

    #[test]
    fn emit_snapshot_roundtrip_and_wraparound() {
        let _pool = POOL.lock().unwrap_or_else(|p| p.into_inner());
        // Marker aux keeps this test independent of concurrent tests
        // sharing the pool.
        const MARK: u8 = 0xE1;
        let total = RING_CAP as u64 + 50;
        for i in 0..total {
            emit(TraceKind::Complete, MARK, i, mix64(i) as u32);
        }
        let mine: Vec<TraceEvent> = snapshot_rings()
            .into_iter()
            .flat_map(|t| t.events)
            .filter(|e| e.aux == MARK)
            .collect();
        if crate::enabled() {
            // Single-writer quiescent ring: the visible window is the
            // newest RING_CAP - 1 records.
            assert_eq!(mine.len(), RING_CAP - 1);
            let tags: Vec<u64> = mine.iter().map(|e| e.tag).collect();
            assert!(tags.windows(2).all(|w| w[1] == w[0] + 1), "append order");
            assert_eq!(*tags.last().unwrap(), total - 1, "newest survives");
            assert!(tags[0] >= 50, "oldest overwritten");
            for e in &mine {
                assert_eq!(e.payload, mix64(e.tag) as u32, "untorn");
                assert_eq!(e.kind, TraceKind::Complete);
            }
        } else {
            assert!(mine.is_empty());
            assert_eq!(dropped_events(), 0);
        }
    }

    #[test]
    fn reset_rings_clears_marked_events() {
        let _pool = POOL.lock().unwrap_or_else(|p| p.into_inner());
        const MARK: u8 = 0xE2;
        emit(TraceKind::Enqueue, MARK, 7, 7);
        let count = |snaps: Vec<ThreadTrace>| {
            snaps.iter().flat_map(|t| &t.events).filter(|e| e.aux == MARK).count()
        };
        if crate::enabled() {
            assert!(count(snapshot_rings()) >= 1);
        }
        reset_rings();
        assert_eq!(count(snapshot_rings()), 0, "reset empties the pool");
    }

    #[test]
    fn fallback_accumulator_drains() {
        set_context(9);
        rescalar_exemplar(0x3f80_0000, 120);
        rescalar_exemplar(0x4000_0000, 80);
        if crate::enabled() {
            assert_eq!(context(), 9);
            assert_eq!(take_fallback_ns(), 200);
        }
        assert_eq!(take_fallback_ns(), 0, "drained");
        set_context(0);
    }

    #[test]
    fn kind_codes_roundtrip() {
        for k in [
            TraceKind::Enqueue,
            TraceKind::Dequeue,
            TraceKind::BatchFlush,
            TraceKind::Complete,
            TraceKind::Rescalar,
            TraceKind::ShedDeadline,
            TraceKind::ShedBackpressure,
            TraceKind::ShedAdmission,
            TraceKind::ShedCorrupted,
            TraceKind::ShedPoisoned,
            TraceKind::PanicCaught,
            TraceKind::Restart,
        ] {
            assert_eq!(TraceKind::from_u8(k as u8), Some(k));
            assert!(!k.name().is_empty());
        }
        assert_eq!(TraceKind::from_u8(0), None);
        assert_eq!(TraceKind::from_u8(200), None);
    }
}
