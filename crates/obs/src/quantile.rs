//! Shared quantile estimation: exact nearest-rank over sorted samples,
//! and bucket-interpolated estimates over the log2 histograms this
//! crate records. Pure functions, independent of the `telemetry`
//! feature — harnesses use them on both raw latency vectors
//! (`serve_bench`, `chaos_bench`) and snapshot bucket lists
//! (`trace_report`).

use crate::metric::bucket_lo;

/// Nearest-rank percentile of an ascending-sorted sample vector:
/// `sorted[round((len - 1) * q)]`, 0 for an empty slice. This is the
/// exact estimator the serve harnesses have always reported.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Inclusive upper bound of log2 bucket `i` (the largest value that
/// lands in it): bucket 0 holds exact zeros, bucket `i >= 1` covers
/// `[2^(i-1), 2^i - 1]`, bucket 64 tops out at `u64::MAX`.
pub fn bucket_hi(i: usize) -> u64 {
    match i {
        0 => 0,
        i if i >= 64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Estimates the `q`-quantile from a histogram's nonzero
/// `(bucket index, count)` pairs (ascending, as produced by
/// [`crate::Histogram::nonzero_buckets`] and
/// [`crate::HistogramSnapshot`]). Finds the bucket holding the
/// nearest-rank sample, then interpolates linearly across the bucket's
/// value range by the rank's position within the bucket — exact when
/// the bucket spans a single value (bucket 0 and bucket 1), within a
/// factor of 2 otherwise, which is the resolution the histograms store.
/// Returns 0 when the histogram is empty.
pub fn from_log2_buckets(buckets: &[(u32, u64)], q: f64) -> u64 {
    let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return 0;
    }
    // Nearest rank, 1-based, clamped to [1, total].
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for &(i, n) in buckets {
        if rank <= seen + n {
            let lo = bucket_lo(i as usize);
            let hi = bucket_hi(i as usize);
            let pos = rank - seen; // 1..=n within this bucket
            let span = (hi - lo) as f64;
            return lo + (span * pos as f64 / n as f64) as u64;
        }
        seen += n;
    }
    // Unreachable when counts sum to total; be lenient about malformed
    // input rather than panicking inside telemetry.
    buckets.last().map_or(0, |&(i, _)| bucket_hi(i as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_matches_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.0), 7);
        assert_eq!(percentile(&[7], 1.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.5), 51); // round(99 * 0.5) = 50
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Each bucket's range is [bucket_lo, bucket_hi] and adjacent
        // buckets tile the u64 line with no gap or overlap.
        assert_eq!(bucket_hi(0), 0);
        assert_eq!(bucket_hi(1), 1);
        assert_eq!(bucket_hi(2), 3);
        assert_eq!(bucket_hi(64), u64::MAX);
        for i in 0..64 {
            assert_eq!(bucket_hi(i) + 1, bucket_lo(i + 1), "bucket {i} boundary");
            assert!(bucket_lo(i) <= bucket_hi(i));
        }
    }

    #[test]
    fn log2_estimate_is_exact_on_single_value_buckets() {
        // All samples zero.
        assert_eq!(from_log2_buckets(&[(0, 10)], 0.5), 0);
        assert_eq!(from_log2_buckets(&[(0, 10)], 1.0), 0);
        // Bucket 1 holds only the value 1.
        assert_eq!(from_log2_buckets(&[(1, 5)], 0.5), 1);
        // Boundary between buckets: 50 zeros then 50 ones — the median
        // rank lands in the zeros bucket, p99 in the ones bucket.
        let b = [(0, 50), (1, 50)];
        assert_eq!(from_log2_buckets(&b, 0.5), 0);
        assert_eq!(from_log2_buckets(&b, 0.99), 1);
    }

    #[test]
    fn log2_estimate_stays_in_bucket_and_is_monotone() {
        assert_eq!(from_log2_buckets(&[], 0.5), 0);
        let b = [(5u32, 100u64), (11, 10), (20, 1)];
        let mut last = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = from_log2_buckets(&b, q);
            assert!(est >= last, "monotone in q");
            last = est;
            // The estimate never leaves the histogram's covered range.
            assert!(est >= bucket_lo(5) && est <= bucket_hi(20));
        }
        // p50 of 111 samples is rank 56, inside bucket 5: [16, 31].
        let p50 = from_log2_buckets(&b, 0.5);
        assert!((16..=31).contains(&p50), "p50 {p50} in bucket 5");
        // p999 is rank 111, the last sample, inside bucket 20.
        let p999 = from_log2_buckets(&b, 0.999);
        assert!(p999 >= bucket_lo(20) && p999 <= bucket_hi(20));
    }
}
