//! # rlibm-obs — the unified telemetry layer
//!
//! Three generations of ad-hoc instrumentation grew across the workspace
//! — the runtime's fallback atomics, the generator's `PolyGenStats`, the
//! fault sweep's per-site counters — with no way to see, in one place,
//! where a generation run or a serving workload spends its effort. This
//! crate replaces all of them with one hand-rolled, zero-dependency,
//! hermetic-offline registry of three primitives:
//!
//! * [`Counter`] — a named relaxed-atomic event counter;
//! * [`Histogram`] — a named log2-bucketed value distribution (bucket
//!   `i >= 1` covers `[2^(i-1), 2^i)`, bucket 0 holds exact zeros);
//! * [`SpanTimer`] — a named monotonic-clock scoped timer whose guard
//!   records elapsed nanoseconds into a histogram on drop and maintains a
//!   thread-local nesting depth ([`span_depth`]).
//!
//! Metrics are declared as `static` items and register themselves in the
//! process-wide registry on first use, so the snapshot only ever lists
//! metrics the build actually links; [`Counter::register`] forces a
//! metric into the snapshot at value zero (harnesses use this so "counter
//! absent" and "counter zero" stay distinguishable).
//!
//! # Feature gating
//!
//! Everything is behind the `telemetry` cargo feature. **Off** (the
//! default), every recording call is an `#[inline(always)]` empty
//! function, the statics carry only their name, and [`snapshot`] returns
//! an empty [`TelemetrySnapshot`] — the compiled hot paths are
//! bit-identical to an uninstrumented build. **On**, recording is a
//! relaxed atomic RMW (plus a one-time registration), cheap enough for
//! cold and warm paths alike; the workspace keeps it off hot inner loops
//! regardless.
//!
//! # Naming scheme
//!
//! `<layer>.<component>.<metric>[.<function>]`, all lowercase:
//! `oracle.ziv.final_prec.ln`, `polygen.lp_calls`, `lp.exact.pivots`,
//! `validate.mismatches`, `runtime.fallback.f32.exp`. Span timers use the
//! plain component name (`pipeline.generate`); their snapshot section
//! reports nanosecond histograms.
//!
//! ```
//! static REQUESTS: rlibm_obs::Counter = rlibm_obs::Counter::new("doc.requests");
//! static LATENCY: rlibm_obs::SpanTimer = rlibm_obs::SpanTimer::new("doc.handle");
//!
//! {
//!     let _span = LATENCY.start();
//!     REQUESTS.add(1);
//! }
//! let snap = rlibm_obs::snapshot();
//! if rlibm_obs::enabled() {
//!     assert_eq!(snap.counter("doc.requests"), Some(1));
//! } else {
//!     assert!(snap.counters.is_empty());
//! }
//! ```

mod metric;
pub mod quantile;
mod registry;
mod span;
pub mod trace;

pub use metric::{bucket_lo, Counter, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{
    enabled, reset_all, snapshot, CounterSnapshot, HistogramSnapshot, SpanSnapshot,
    TelemetrySnapshot,
};
pub use span::{span_depth, SpanGuard, SpanTimer};
