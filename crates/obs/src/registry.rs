//! The process-wide metric registry and its serializable snapshot.

use crate::metric::{Counter, Histogram};
use crate::span::SpanTimer;

#[cfg(feature = "telemetry")]
use std::sync::Mutex;

/// True when the crate was built with the `telemetry` feature. Harnesses
/// that *measure* assert this so a misconfigured build fails loudly
/// instead of reporting silent zeros.
pub fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// A registered metric (all metrics are `&'static`, registered once).
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
pub(crate) enum MetricRef {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
    Span(&'static SpanTimer),
}

#[cfg(feature = "telemetry")]
static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

#[cfg(feature = "telemetry")]
pub(crate) fn register(m: MetricRef) {
    // Poisoning is impossible (no panicking code holds the lock), but
    // recover anyway: telemetry must never take the process down.
    let mut g = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    g.push(m);
}

#[cfg(feature = "telemetry")]
fn with_registry<R>(f: impl FnOnce(&[MetricRef]) -> R) -> R {
    let g = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    f(&g)
}

/// One counter in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Value at capture time.
    pub value: u64,
}

/// One histogram in a [`TelemetrySnapshot`]. For spans the samples are
/// elapsed nanoseconds, so `sum` is total time in the span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Nonzero `(log2 bucket index, count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// Span snapshots share the histogram shape (nanosecond samples).
pub type SpanSnapshot = HistogramSnapshot;

/// A point-in-time capture of every registered metric, sorted by name
/// within each section (deterministic, diff-friendly output).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// All registered counters.
    pub counters: Vec<CounterSnapshot>,
    /// All registered histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// All registered span timers (nanosecond histograms).
    pub spans: Vec<SpanSnapshot>,
}

impl TelemetrySnapshot {
    /// Value of a counter by name (`None` when not registered).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// A span by name.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Captures every registered metric. Empty without the `telemetry`
/// feature. Concurrent recording during capture is safe (relaxed reads);
/// the snapshot is a consistent-enough view for reporting, not a
/// linearization point.
pub fn snapshot() -> TelemetrySnapshot {
    #[cfg(feature = "telemetry")]
    {
        let mut snap = with_registry(|ms| {
            let mut snap = TelemetrySnapshot::default();
            for m in ms {
                match m {
                    MetricRef::Counter(c) => {
                        snap.counters.push(CounterSnapshot { name: c.name(), value: c.get() });
                    }
                    MetricRef::Histogram(h) => snap.histograms.push(HistogramSnapshot {
                        name: h.name(),
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.nonzero_buckets(),
                    }),
                    MetricRef::Span(s) => {
                        let h = s.durations_ns();
                        snap.spans.push(SpanSnapshot {
                            name: s.name(),
                            count: h.count(),
                            sum: h.sum(),
                            buckets: h.nonzero_buckets(),
                        });
                    }
                }
            }
            snap
        });
        snap.counters.sort_by_key(|c| c.name);
        snap.histograms.sort_by_key(|h| h.name);
        snap.spans.sort_by_key(|s| s.name);
        snap
    }
    #[cfg(not(feature = "telemetry"))]
    TelemetrySnapshot::default()
}

/// Zeroes every registered metric (counters, histogram buckets, span
/// histograms) and empties every trace ring. Metrics stay registered.
/// Harnesses call this before a measured phase so the snapshot reflects
/// only that phase.
pub fn reset_all() {
    #[cfg(feature = "telemetry")]
    with_registry(|ms| {
        for m in ms {
            match m {
                MetricRef::Counter(c) => c.reset(),
                MetricRef::Histogram(h) => h.reset(),
                MetricRef::Span(s) => s.durations_ns().reset(),
            }
        }
    });
    crate::trace::reset_rings();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lists_registered_metrics_sorted() {
        static CB: Counter = Counter::new("test.registry.b");
        static CA: Counter = Counter::new("test.registry.a");
        static H: Histogram = Histogram::new("test.registry.hist");
        CB.add(2);
        CA.add(1);
        H.record(9);
        let snap = snapshot();
        if enabled() {
            assert_eq!(snap.counter("test.registry.a"), Some(1));
            assert_eq!(snap.counter("test.registry.b"), Some(2));
            let names: Vec<_> = snap.counters.iter().map(|c| c.name).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            assert_eq!(names, sorted, "counters are name-sorted");
            let h = snap.histogram("test.registry.hist").expect("registered");
            assert!(h.count >= 1);
        } else {
            assert!(snap.counters.is_empty());
            assert!(snap.histograms.is_empty());
            assert!(snap.spans.is_empty());
        }
    }

    #[test]
    fn register_makes_zero_counters_visible() {
        static Z: Counter = Counter::new("test.registry.zero");
        Z.register();
        let snap = snapshot();
        if enabled() {
            assert_eq!(snap.counter("test.registry.zero"), Some(0));
        } else {
            assert_eq!(snap.counter("test.registry.zero"), None);
        }
    }
}
