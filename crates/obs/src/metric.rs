//! Counters and log2-bucketed histograms.

#[cfg(feature = "telemetry")]
use core::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::Once;

/// Number of histogram buckets: bucket 0 for exact zeros, buckets
/// `1..=64` for values with that many significant bits.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Lower bound of histogram bucket `i` (inclusive): 0, 1, 2, 4, 8, ...
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1).min(63),
    }
}

#[cfg(feature = "telemetry")]
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// A named event counter. Declare as a `static`; increments are relaxed
/// atomics and the counter registers itself in the global snapshot
/// registry on first use.
pub struct Counter {
    name: &'static str,
    #[cfg(feature = "telemetry")]
    value: AtomicU64,
    #[cfg(feature = "telemetry")]
    once: Once,
}

impl Counter {
    /// A new counter. `name` follows the workspace scheme
    /// (`layer.component.metric[.function]`).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            #[cfg(feature = "telemetry")]
            value: AtomicU64::new(0),
            #[cfg(feature = "telemetry")]
            once: Once::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events (no-op without the `telemetry` feature).
    #[inline(always)]
    pub fn add(&'static self, n: u64) {
        #[cfg(feature = "telemetry")]
        {
            self.register();
            self.value.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Adds `n` events without an atomic read-modify-write: a relaxed
    /// load/add/store pair instead of `fetch_add`. A locked RMW is a
    /// full barrier on x86 and serializes otherwise-independent work,
    /// which costs several ns *per call* when a counter sits on a
    /// per-call hot path; the plain load/store stays out of the
    /// dependency chain. The trade: concurrent increments can lose
    /// counts (last store wins), so this is only for high-frequency
    /// *statistical* counters where rates matter and exactness under
    /// contention does not. Single-threaded use is exact.
    #[inline(always)]
    pub fn add_lossy(&'static self, n: u64) {
        #[cfg(feature = "telemetry")]
        {
            self.register();
            self.value
                .store(self.value.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Current value (0 without the feature).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        0
    }

    /// Forces the counter into the snapshot registry even at value zero,
    /// so readers can distinguish "never fired" from "not linked".
    pub fn register(&'static self) {
        #[cfg(feature = "telemetry")]
        self.once
            .call_once(|| crate::registry::register(crate::registry::MetricRef::Counter(self)));
    }

    /// Zeroes the counter (no-op without the feature).
    pub fn reset(&self) {
        #[cfg(feature = "telemetry")]
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A named log2-bucketed histogram of `u64` samples. Tracks the bucket
/// counts plus the exact sample count and sum, all as relaxed atomics.
pub struct Histogram {
    name: &'static str,
    #[cfg(feature = "telemetry")]
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    #[cfg(feature = "telemetry")]
    count: AtomicU64,
    #[cfg(feature = "telemetry")]
    sum: AtomicU64,
    #[cfg(feature = "telemetry")]
    once: Once,
}

impl Histogram {
    /// A new histogram (see [`Counter::new`] for naming).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            #[cfg(feature = "telemetry")]
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            #[cfg(feature = "telemetry")]
            count: AtomicU64::new(0),
            #[cfg(feature = "telemetry")]
            sum: AtomicU64::new(0),
            #[cfg(feature = "telemetry")]
            once: Once::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample (no-op without the `telemetry` feature).
    #[inline(always)]
    pub fn record(&'static self, v: u64) {
        #[cfg(feature = "telemetry")]
        {
            self.register();
            self.record_fields(v);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = v;
    }

    /// Records without touching the registry — used by [`crate::SpanTimer`],
    /// which registers itself under the span section instead.
    #[cfg(feature = "telemetry")]
    #[inline]
    pub(crate) fn record_fields(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Forces registration at zero samples (see [`Counter::register`]).
    pub fn register(&'static self) {
        #[cfg(feature = "telemetry")]
        self.once
            .call_once(|| crate::registry::register(crate::registry::MetricRef::Histogram(self)));
    }

    /// Total samples recorded (0 without the feature).
    pub fn count(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        0
    }

    /// Sum of all samples (0 without the feature).
    pub fn sum(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            self.sum.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        0
    }

    /// Nonzero buckets as `(bucket index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        #[cfg(feature = "telemetry")]
        {
            self.buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect()
        }
        #[cfg(not(feature = "telemetry"))]
        Vec::new()
    }

    /// Zeroes every bucket, the count and the sum.
    pub fn reset(&self) {
        #[cfg(feature = "telemetry")]
        {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.count.store(0, Ordering::Relaxed);
            self.sum.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(2), 2);
        assert_eq!(bucket_lo(3), 4);
        assert_eq!(bucket_lo(64), 1u64 << 63);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every v lands in the bucket whose range contains it.
        for v in [0u64, 1, 2, 5, 127, 128, 1 << 40, u64::MAX] {
            let i = bucket_of(v);
            assert!(v >= bucket_lo(i));
            if i < 64 {
                assert!(v < bucket_lo(i + 1) || i == 0 && v == 0);
            }
        }
    }

    #[test]
    fn counter_reflects_build_configuration() {
        static C: Counter = Counter::new("test.metric.counter");
        C.add(3);
        C.add(4);
        if crate::enabled() {
            assert_eq!(C.get(), 7);
        } else {
            assert_eq!(C.get(), 0);
        }
        C.reset();
        assert_eq!(C.get(), 0);
        assert_eq!(C.name(), "test.metric.counter");
    }

    #[test]
    fn histogram_reflects_build_configuration() {
        static H: Histogram = Histogram::new("test.metric.hist");
        H.record(0);
        H.record(1);
        H.record(1024);
        if crate::enabled() {
            assert_eq!(H.count(), 3);
            assert_eq!(H.sum(), 1025);
            assert_eq!(H.nonzero_buckets(), vec![(0, 1), (1, 1), (11, 1)]);
        } else {
            assert_eq!(H.count(), 0);
            assert!(H.nonzero_buckets().is_empty());
        }
        H.reset();
        assert_eq!(H.count(), 0);
    }
}
