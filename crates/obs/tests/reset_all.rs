//! `reset_all()` must clear every telemetry surface, including the
//! trace ring pool. This lives in its own integration binary because a
//! global reset racing the crate's parallel unit tests would wipe their
//! state mid-assertion; here the two tests below are the only tenants
//! and serialize themselves.

use rlibm_obs::trace::{self, TraceKind};
use rlibm_obs::{Counter, Histogram};
use std::sync::Mutex;

static SEQ: Mutex<()> = Mutex::new(());

#[test]
fn snapshot_after_reset_is_empty() {
    let _seq = SEQ.lock().unwrap_or_else(|p| p.into_inner());
    static C: Counter = Counter::new("test.reset.counter");
    static H: Histogram = Histogram::new("test.reset.hist");
    C.add(5);
    H.record(1024);
    trace::emit(TraceKind::Dequeue, 3, 0xF00D, 42);
    trace::emit(TraceKind::Complete, 3, 0xF00D, 99);

    if rlibm_obs::enabled() {
        assert_eq!(C.get(), 5);
        let events: usize = trace::snapshot_rings().iter().map(|t| t.events.len()).sum();
        assert!(events >= 2, "events recorded before reset");
    }

    rlibm_obs::reset_all();

    let snap = rlibm_obs::snapshot();
    if rlibm_obs::enabled() {
        assert_eq!(snap.counter("test.reset.counter"), Some(0));
        let h = snap.histogram("test.reset.hist").expect("stays registered");
        assert_eq!(h.count, 0);
        assert!(h.buckets.is_empty());
    } else {
        assert!(snap.counters.is_empty());
    }
    assert!(
        trace::snapshot_rings().is_empty(),
        "trace pool empty after reset_all in every feature config"
    );
}

#[test]
fn reset_is_idempotent_and_rings_accept_new_events() {
    let _seq = SEQ.lock().unwrap_or_else(|p| p.into_inner());
    rlibm_obs::reset_all();
    rlibm_obs::reset_all();
    assert!(trace::snapshot_rings().is_empty());
    trace::emit(TraceKind::Enqueue, 1, 1, 1);
    if rlibm_obs::enabled() {
        let events: usize = trace::snapshot_rings().iter().map(|t| t.events.len()).sum();
        assert_eq!(events, 1, "pool records again after reset");
    }
}
