//! Batched evaluation — the §4.3 vectorization regime as a real API.
//!
//! [`eval_slice_f32`] (and the per-function `*_slice` entry points)
//! evaluate a whole input slice with the same progressive-tier guarantee
//! as the scalar functions: the output is **bit-identical** to mapping
//! the scalar function over the slice. The speed comes from
//! restructuring the *prefix* tier — the truncated polynomial that ships
//! the overwhelming majority of lanes — as structure-of-arrays stages
//! over fixed-size chunks:
//!
//! 1. **widen**: classify each lane against the function's fast-path
//!    domain and widen to f64 (special lanes get a benign placeholder so
//!    the staged arithmetic stays total);
//! 2. **reduce**: the range reduction for every lane (k/r for the exp
//!    family, e/j/u for the logs) into parallel arrays;
//! 3. **lookup + Horner**: table access and *prefix-degree* polynomial
//!    evaluation over the arrays — straight-line plain-double code the
//!    compiler can unroll and schedule across lanes (and auto-vectorize
//!    where the target allows);
//! 4. **resolve**: per lane, the round-safety test against the wide
//!    prefix band decides whether the prefix double ships. Lanes the
//!    prefix band rejects escalate **as a chunk** to the full-degree
//!    staged kernel against the narrow full band; lanes that band
//!    rejects too (and every special-case lane) re-enter the scalar
//!    progressive entry, which owns the dd tier.
//!
//! Escalation is per chunk, not per slice: the full-degree stage only
//! runs when at least one in-domain lane of the chunk failed the prefix
//! band, so a clean chunk pays for exactly one (shorter) polynomial.
//! Per-tier accounting lands in the same `runtime.tier.*` counters the
//! scalar front ends use — prefix acceptances batched per call, full
//! acceptances batched per call, dd events recorded by the scalar entry
//! the rescalar lanes fall into.
//!
//! `sinh`/`cosh` route their dominant cost (the `e^|x|` evaluation)
//! through the same staged exp pipeline; `sinpi`/`cospi` are evaluated
//! per lane inside the chunk driver — their reduction is short but
//! branch-heavy (mirror folds), so staging buys nothing there.
//!
//! Posit32 batching ([`eval_slice_posit32`]) is a chunked scalar loop:
//! posit decode/encode is regime-dependent bit manipulation with no
//! shared stage structure to hoist, so the honest batched form is the
//! scalar two-tier call per lane.

use crate::fast;
use crate::tables as t;
use rlibm_obs::Counter;

/// AVX2 implementations of the staged pipeline (`simd` feature, x86_64
/// only). The entry points below dispatch into it at runtime when AVX2
/// is present; the scalar chunk functions in this module stay the
/// certified reference and the fallback.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[path = "slice_simd.rs"]
mod simd;

/// Chunk width of the staged pipeline. 64 lanes of f64 is 4 cache lines
/// per stage array — small enough to stay resident, wide enough that the
/// per-chunk loop overhead vanishes.
const LANES: usize = 64;

// Batched-evaluation telemetry (no-ops unless built with the `telemetry`
// feature). Both counters accumulate locally and hit the atomics once per
// chunk / call, never per lane. The rescalar count is the number to
// watch: every rescalar lane pays the scalar two-tier price, so a high
// ratio against `64 * chunks` means the workload defeats the staging.
static SLICE_CHUNKS: Counter = Counter::new("runtime.slice.f32.chunks");
static SLICE_RESCALAR: Counter = Counter::new("runtime.slice.f32.rescalar_lanes");

// Posit batching has no staged pipeline (and so no rescalar lanes), but
// serving-layer posit traffic still needs to show up in TELEM snapshots:
// chunks processed and total requests (lanes) served.
static SLICE_POSIT_CHUNKS: Counter = Counter::new("runtime.slice.posit32.chunks");
static SLICE_POSIT_REQUESTS: Counter = Counter::new("runtime.slice.posit32.requests");

/// Forces the slice counters into the snapshot registry at value zero.
pub(crate) fn register_metrics() {
    SLICE_CHUNKS.register();
    SLICE_RESCALAR.register();
    SLICE_POSIT_CHUNKS.register();
    SLICE_POSIT_REQUESTS.register();
}

/// Resolves one rescalar lane through the scalar two-tier entry. With
/// the `telemetry` feature the lane is also timed and reported to the
/// flight recorder as an exemplar (`rescalar` event carrying the input
/// bits, attributed via the thread's trace context), and the scalar-path
/// nanoseconds accrue into the per-thread fallback accumulator the
/// serving layer drains per batch. The scalar value is computed
/// identically in both configs — tracing observes, never alters.
#[cfg(feature = "telemetry")]
#[inline]
fn rescalar_resolve(scalar: fn(f32) -> f32, x: f32) -> f32 {
    let t0 = std::time::Instant::now();
    let v = scalar(x);
    let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    rlibm_obs::trace::rescalar_exemplar(x.to_bits(), ns);
    v
}

#[cfg(not(feature = "telemetry"))]
#[inline(always)]
fn rescalar_resolve(scalar: fn(f32) -> f32, x: f32) -> f32 {
    scalar(x)
}

/// Shared chunk driver: widen in-domain lanes, run the staged
/// prefix-tier evaluation, then resolve every lane through the prefix
/// round-safety band. Chunks with prefix-rejected in-domain lanes
/// escalate those lanes through the full-degree staged kernel; lanes the
/// full band rejects too (and special lanes) re-enter the scalar
/// progressive front end.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // tier plumbing: two staged kernels + their bands
fn drive(
    xs: &[f32],
    out: &mut [f32],
    dom: impl Fn(f32) -> bool,
    prefix_chunk: impl Fn(&[f64], &mut [f64]),
    prefix_band: u64,
    fast_chunk: impl Fn(&[f64], &mut [f64]),
    band: u64,
    slot: usize,
    scalar: fn(f32) -> f32,
) {
    assert_eq!(xs.len(), out.len(), "eval_slice: input/output length mismatch");
    let mut xd = [0.0f64; LANES];
    let mut y = [0.0f64; LANES];
    let mut chunks = 0u64;
    let mut rescalar = 0u64;
    let mut prefix_hits = 0u64;
    let mut full_hits = 0u64;
    for (xc, oc) in xs.chunks(LANES).zip(out.chunks_mut(LANES)) {
        chunks += 1;
        let n = xc.len();
        for i in 0..n {
            // Placeholder 1.0 keeps every stage total for special lanes;
            // their staged result is discarded in the resolve stage.
            xd[i] = if dom(xc[i]) { xc[i] as f64 } else { 1.0 };
        }
        prefix_chunk(&xd[..n], &mut y[..n]);
        // Lane bitmask of in-domain lanes the prefix band rejected
        // (LANES = 64 keeps this a single word).
        let mut pending = 0u64;
        for i in 0..n {
            if !dom(xc[i]) {
                rescalar += 1;
                oc[i] = rescalar_resolve(scalar, xc[i]);
            } else if crate::round::f32_round_safe(y[i], prefix_band) {
                prefix_hits += 1;
                oc[i] = y[i] as f32;
            } else {
                pending |= 1 << i;
            }
        }
        if pending != 0 {
            // Compact the rejected lanes and escalate only those: every
            // chunk kernel is lane-independent, so running the full tier
            // on a dense sub-chunk produces the same bits as re-running
            // the whole chunk, without paying for the (typically 63)
            // lanes the prefix tier already shipped.
            let mut xp = [0.0f64; LANES];
            let mut lanes = [0usize; LANES];
            let mut np = 0;
            for (i, &x) in xd.iter().enumerate().take(n) {
                if (pending >> i) & 1 == 1 {
                    xp[np] = x;
                    lanes[np] = i;
                    np += 1;
                }
            }
            fast_chunk(&xp[..np], &mut y[..np]);
            for (j, &i) in lanes[..np].iter().enumerate() {
                if crate::round::f32_round_safe(y[j], band) {
                    full_hits += 1;
                    oc[i] = y[j] as f32;
                } else {
                    rescalar += 1;
                    oc[i] = rescalar_resolve(scalar, xc[i]);
                }
            }
        }
    }
    SLICE_CHUNKS.add(chunks);
    SLICE_RESCALAR.add(rescalar);
    crate::stats::record_tier_prefix_n(slot, prefix_hits);
    crate::stats::record_tier_full_n(slot, full_hits);
}

// ---------------------------------------------------------------------
// exp family chunks
// ---------------------------------------------------------------------

/// Staged `e^x` over a chunk: reduction array pass, then lookup+Horner.
/// `combined` selects the polynomial tier (prefix or full degree) — the
/// reduction stages are tier-invariant.
fn exp_chunk_with(xd: &[f64], y: &mut [f64], combined: fn(i64, f64) -> f64) {
    let mut k = [0i64; LANES];
    let mut r = [0.0f64; LANES];
    for i in 0..xd.len() {
        let kk = (xd[i] * (64.0 * t::LOG2_E)).round_ties_even() as i64;
        let kf = kk as f64;
        k[i] = kk;
        r[i] = (xd[i] - kf * t::LN2_64_HI) - kf * t::LN2_64_MID;
    }
    for i in 0..xd.len() {
        y[i] = combined(k[i], r[i]);
    }
}

fn exp_prefix_chunk(xd: &[f64], y: &mut [f64]) {
    exp_chunk_with(xd, y, fast::exp_combined_prefix)
}

fn exp_chunk(xd: &[f64], y: &mut [f64]) {
    exp_chunk_with(xd, y, fast::exp_combined_fast)
}

fn exp2_chunk_with(xd: &[f64], y: &mut [f64], combined: fn(i64, f64) -> f64) {
    let mut k = [0i64; LANES];
    let mut r = [0.0f64; LANES];
    for i in 0..xd.len() {
        let kk = (xd[i] * 64.0).round_ties_even() as i64;
        let tt = xd[i] - (kk as f64) / 64.0;
        k[i] = kk;
        r[i] = tt * t::LN2_HI + tt * t::LN2_LO;
    }
    for i in 0..xd.len() {
        y[i] = combined(k[i], r[i]);
    }
}

fn exp2_prefix_chunk(xd: &[f64], y: &mut [f64]) {
    exp2_chunk_with(xd, y, fast::exp_combined_prefix)
}

fn exp2_chunk(xd: &[f64], y: &mut [f64]) {
    exp2_chunk_with(xd, y, fast::exp_combined_fast)
}

fn exp10_chunk_with(xd: &[f64], y: &mut [f64], combined: fn(i64, f64) -> f64) {
    let mut k = [0i64; LANES];
    let mut r = [0.0f64; LANES];
    for i in 0..xd.len() {
        let kk = (xd[i] * (64.0 * t::LOG2_10)).round_ties_even() as i64;
        let kf = kk as f64;
        let b = kf * t::LN2_64_HI;
        k[i] = kk;
        r[i] = (xd[i] * t::LN10_HI - b) + (xd[i] * t::LN10_LO - kf * t::LN2_64_MID);
    }
    for i in 0..xd.len() {
        y[i] = combined(k[i], r[i]);
    }
}

fn exp10_prefix_chunk(xd: &[f64], y: &mut [f64]) {
    exp10_chunk_with(xd, y, fast::exp_combined_prefix)
}

fn exp10_chunk(xd: &[f64], y: &mut [f64]) {
    exp10_chunk_with(xd, y, fast::exp_combined_fast)
}

// ---------------------------------------------------------------------
// log family chunks
// ---------------------------------------------------------------------

/// Staged log reduction shared by the three logs: `(e, j, u)` arrays,
/// then the `log1p` Horner pass at the tier's degree (`poly` is
/// [`fast::log1p_poly_prefix`] or [`fast::log1p_poly_fast`]).
#[inline(always)]
fn log_stages(xd: &[f64], e: &mut [i64], j: &mut [usize], p: &mut [f64], poly: fn(f64) -> f64) {
    let mut u = [0.0f64; LANES];
    for i in 0..xd.len() {
        let (ei, ji, ui) = fast::reduce_fast(xd[i]);
        e[i] = ei;
        j[i] = ji;
        u[i] = ui;
    }
    for i in 0..xd.len() {
        p[i] = poly(u[i]);
    }
}

fn ln_chunk_with(xd: &[f64], y: &mut [f64], poly: fn(f64) -> f64) {
    let mut e = [0i64; LANES];
    let mut j = [0usize; LANES];
    let mut p = [0.0f64; LANES];
    log_stages(xd, &mut e, &mut j, &mut p, poly);
    for i in 0..xd.len() {
        let ef = e[i] as f64;
        let (fh, fl) = t::ln_f(j[i]);
        let c = ef * t::LN2_HI42 + fh;
        let lo = fl + ef * t::LN2_MID;
        y[i] = c + (p[i] + lo);
    }
}

fn ln_prefix_chunk(xd: &[f64], y: &mut [f64]) {
    ln_chunk_with(xd, y, fast::log1p_poly_prefix)
}

fn ln_chunk(xd: &[f64], y: &mut [f64]) {
    ln_chunk_with(xd, y, fast::log1p_poly_fast)
}

fn log2_chunk_with(xd: &[f64], y: &mut [f64], poly: fn(f64) -> f64) {
    let mut e = [0i64; LANES];
    let mut j = [0usize; LANES];
    let mut p = [0.0f64; LANES];
    log_stages(xd, &mut e, &mut j, &mut p, poly);
    for i in 0..xd.len() {
        let (fh, fl) = t::log2_f(j[i]);
        let c = e[i] as f64 + fh;
        y[i] = c + (p[i] * t::INV_LN2_HI + (fl + p[i] * t::INV_LN2_LO));
    }
}

fn log2_prefix_chunk(xd: &[f64], y: &mut [f64]) {
    log2_chunk_with(xd, y, fast::log1p_poly_prefix)
}

fn log2_chunk(xd: &[f64], y: &mut [f64]) {
    log2_chunk_with(xd, y, fast::log1p_poly_fast)
}

fn log10_chunk_with(xd: &[f64], y: &mut [f64], poly: fn(f64) -> f64) {
    let mut e = [0i64; LANES];
    let mut j = [0usize; LANES];
    let mut p = [0.0f64; LANES];
    log_stages(xd, &mut e, &mut j, &mut p, poly);
    for i in 0..xd.len() {
        let ef = e[i] as f64;
        let (fh, fl) = t::log10_f(j[i]);
        let c = ef * t::LOG10_2_HI + fh;
        y[i] = c
            + (p[i] * t::INV_LN10_HI
                + (fl + ef * t::LOG10_2_LO + p[i] * t::INV_LN10_LO));
    }
}

fn log10_prefix_chunk(xd: &[f64], y: &mut [f64]) {
    log10_chunk_with(xd, y, fast::log1p_poly_prefix)
}

fn log10_chunk(xd: &[f64], y: &mut [f64]) {
    log10_chunk_with(xd, y, fast::log1p_poly_fast)
}

// ---------------------------------------------------------------------
// hyperbolic chunks (big factor through the staged exp pipeline)
// ---------------------------------------------------------------------

fn sinh_chunk_with(xd: &[f64], y: &mut [f64], exp_tier: fn(&[f64], &mut [f64])) {
    let mut a = [0.0f64; LANES];
    for i in 0..xd.len() {
        a[i] = xd[i].abs();
    }
    let mut big = [0.0f64; LANES];
    exp_tier(&a[..xd.len()], &mut big[..xd.len()]);
    for i in 0..xd.len() {
        let v = if a[i] < 0.0625 {
            let x2 = a[i] * a[i];
            a[i] + a[i]
                * x2
                * (1.0 / 6.0
                    + x2 * (1.0 / 120.0 + x2 * (1.0 / 5040.0 + x2 * (1.0 / 362_880.0))))
        } else {
            0.5 * (big[i] - 1.0 / big[i])
        };
        y[i] = if xd[i] < 0.0 { -v } else { v };
    }
}

fn sinh_prefix_chunk(xd: &[f64], y: &mut [f64]) {
    sinh_chunk_with(xd, y, exp_prefix_chunk)
}

fn sinh_chunk(xd: &[f64], y: &mut [f64]) {
    sinh_chunk_with(xd, y, exp_chunk)
}

fn cosh_chunk_with(xd: &[f64], y: &mut [f64], exp_tier: fn(&[f64], &mut [f64])) {
    let mut a = [0.0f64; LANES];
    for i in 0..xd.len() {
        a[i] = xd[i].abs();
    }
    let mut big = [0.0f64; LANES];
    exp_tier(&a[..xd.len()], &mut big[..xd.len()]);
    for i in 0..xd.len() {
        y[i] = if a[i] < 0.0625 {
            let x2 = a[i] * a[i];
            1.0 + x2 * (0.5 + x2 * (1.0 / 24.0 + x2 * (1.0 / 720.0 + x2 * (1.0 / 40_320.0))))
        } else {
            0.5 * (big[i] + 1.0 / big[i])
        };
    }
}

fn cosh_prefix_chunk(xd: &[f64], y: &mut [f64]) {
    cosh_chunk_with(xd, y, exp_prefix_chunk)
}

fn cosh_chunk(xd: &[f64], y: &mut [f64]) {
    cosh_chunk_with(xd, y, exp_chunk)
}

// ---------------------------------------------------------------------
// sinpi / cospi chunks (per-lane: reduction is branch-heavy)
// ---------------------------------------------------------------------

fn sinpi_chunk_with(xd: &[f64], y: &mut [f64], reduced: fn(f64) -> (bool, f64)) {
    for i in 0..xd.len() {
        let a = xd[i].abs();
        let (k, v) = reduced(a);
        let neg = (xd[i] < 0.0) ^ k;
        y[i] = if neg { -v } else { v };
    }
}

fn sinpi_prefix_chunk(xd: &[f64], y: &mut [f64]) {
    sinpi_chunk_with(xd, y, fast::sinpi_prefix_reduced)
}

fn sinpi_chunk(xd: &[f64], y: &mut [f64]) {
    sinpi_chunk_with(xd, y, fast::sinpi_fast_reduced)
}

fn cospi_chunk_with(xd: &[f64], y: &mut [f64], reduced: fn(f64) -> (bool, f64)) {
    for i in 0..xd.len() {
        let (neg, v) = reduced(xd[i].abs());
        y[i] = if neg { -v } else { v };
    }
}

fn cospi_prefix_chunk(xd: &[f64], y: &mut [f64]) {
    cospi_chunk_with(xd, y, fast::cospi_prefix_reduced)
}

fn cospi_chunk(xd: &[f64], y: &mut [f64]) {
    cospi_chunk_with(xd, y, fast::cospi_fast_reduced)
}

// ---------------------------------------------------------------------
// public entry points
// ---------------------------------------------------------------------

/// Routes an entry point through the AVX2 staged pipeline when the
/// `simd` feature is on and the CPU has AVX2; otherwise falls through to
/// the scalar chunk driver below. Expands to nothing without the feature.
macro_rules! simd_dispatch {
    ($fn_name:ident, $xs:expr, $out:expr) => {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if simd::avx2_available() {
            return simd::$fn_name($xs, $out);
        }
    };
}

/// Batched [`crate::exp`]: bit-identical to the scalar map.
pub fn exp_slice(xs: &[f32], out: &mut [f32]) {
    simd_dispatch!(exp_slice, xs, out);
    drive(
        xs,
        out,
        |x| (-106.0..=89.0).contains(&x),
        exp_prefix_chunk,
        fast::EXP_PREFIX_BAND,
        exp_chunk,
        fast::EXP_BAND,
        crate::stats::slot::EXP,
        crate::exp,
    )
}

/// Batched [`crate::exp2`].
pub fn exp2_slice(xs: &[f32], out: &mut [f32]) {
    simd_dispatch!(exp2_slice, xs, out);
    drive(
        xs,
        out,
        |x| (-151.0..128.0).contains(&x),
        exp2_prefix_chunk,
        fast::EXP2_PREFIX_BAND,
        exp2_chunk,
        fast::EXP2_BAND,
        crate::stats::slot::EXP2,
        crate::exp2,
    )
}

/// Batched [`crate::exp10`].
pub fn exp10_slice(xs: &[f32], out: &mut [f32]) {
    simd_dispatch!(exp10_slice, xs, out);
    drive(
        xs,
        out,
        |x| (-45.5..=38.6).contains(&x),
        exp10_prefix_chunk,
        fast::EXP10_PREFIX_BAND,
        exp10_chunk,
        fast::EXP10_BAND,
        crate::stats::slot::EXP10,
        crate::exp10,
    )
}

/// Batched [`crate::ln`].
pub fn ln_slice(xs: &[f32], out: &mut [f32]) {
    simd_dispatch!(ln_slice, xs, out);
    drive(
        xs,
        out,
        |x| x > 0.0 && x < f32::INFINITY,
        ln_prefix_chunk,
        fast::LN_PREFIX_BAND,
        ln_chunk,
        fast::LN_BAND,
        crate::stats::slot::LN,
        crate::ln,
    )
}

/// Batched [`crate::log2`].
pub fn log2_slice(xs: &[f32], out: &mut [f32]) {
    simd_dispatch!(log2_slice, xs, out);
    drive(
        xs,
        out,
        |x| x > 0.0 && x < f32::INFINITY,
        log2_prefix_chunk,
        fast::LOG2_PREFIX_BAND,
        log2_chunk,
        fast::LOG2_BAND,
        crate::stats::slot::LOG2,
        crate::log2,
    )
}

/// Batched [`crate::log10`].
pub fn log10_slice(xs: &[f32], out: &mut [f32]) {
    simd_dispatch!(log10_slice, xs, out);
    drive(
        xs,
        out,
        |x| x > 0.0 && x < f32::INFINITY,
        log10_prefix_chunk,
        fast::LOG10_PREFIX_BAND,
        log10_chunk,
        fast::LOG10_BAND,
        crate::stats::slot::LOG10,
        crate::log10,
    )
}

/// Batched [`crate::sinh`].
pub fn sinh_slice(xs: &[f32], out: &mut [f32]) {
    simd_dispatch!(sinh_slice, xs, out);
    let tiny = 2f32.powi(-12);
    drive(
        xs,
        out,
        move |x| x.abs() <= 90.0 && x.abs() >= tiny,
        sinh_prefix_chunk,
        fast::SINH_PREFIX_BAND,
        sinh_chunk,
        fast::SINH_BAND,
        crate::stats::slot::SINH,
        crate::sinh,
    )
}

/// Batched [`crate::cosh`].
pub fn cosh_slice(xs: &[f32], out: &mut [f32]) {
    simd_dispatch!(cosh_slice, xs, out);
    let tiny = 2f32.powi(-13);
    drive(
        xs,
        out,
        move |x| x.abs() <= 90.0 && x.abs() >= tiny,
        cosh_prefix_chunk,
        fast::COSH_PREFIX_BAND,
        cosh_chunk,
        fast::COSH_BAND,
        crate::stats::slot::COSH,
        crate::cosh,
    )
}

/// Batched [`crate::sinpi`].
pub fn sinpi_slice(xs: &[f32], out: &mut [f32]) {
    simd_dispatch!(sinpi_slice, xs, out);
    drive(
        xs,
        out,
        |x| {
            let a = (x as f64).abs();
            x.is_finite() && a < 8_388_608.0 && a >= 2f64.powi(-36) && a != a.trunc()
        },
        sinpi_prefix_chunk,
        fast::SINPI_PREFIX_BAND,
        sinpi_chunk,
        fast::SINPI_BAND,
        crate::stats::slot::SINPI,
        crate::sinpi,
    )
}

/// Batched [`crate::cospi`].
pub fn cospi_slice(xs: &[f32], out: &mut [f32]) {
    simd_dispatch!(cospi_slice, xs, out);
    drive(
        xs,
        out,
        |x| {
            let a = (x as f64).abs();
            // 2a == trunc(2a) catches integers AND half-integers (both
            // handled by the scalar front's exact special cases).
            x.is_finite()
                && (7.77e-5..16_777_216.0).contains(&a)
                && 2.0 * a != (2.0 * a).trunc()
        },
        cospi_prefix_chunk,
        fast::COSPI_PREFIX_BAND,
        cospi_chunk,
        fast::COSPI_BAND,
        crate::stats::slot::COSPI,
        crate::cospi,
    )
}

/// Error returned by the by-name slice entry points when the name is not
/// in the paper's function tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFunction(pub String);

impl core::fmt::Display for UnknownFunction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unknown function {:?}", self.0)
    }
}

impl std::error::Error for UnknownFunction {}

/// Batched evaluation of an f32 function by its paper-table name:
/// `out[i] = f(xs[i])`, bit-identical to the scalar function (special
/// lanes — NaN, ±0, ±inf, out-of-domain — resolve per lane through the
/// scalar entry). Unknown names are a typed error, not a panic.
pub fn eval_slice_f32(name: &str, xs: &[f32], out: &mut [f32]) -> Result<(), UnknownFunction> {
    match name {
        "ln" => ln_slice(xs, out),
        "log2" => log2_slice(xs, out),
        "log10" => log10_slice(xs, out),
        "exp" => exp_slice(xs, out),
        "exp2" => exp2_slice(xs, out),
        "exp10" => exp10_slice(xs, out),
        "sinh" => sinh_slice(xs, out),
        "cosh" => cosh_slice(xs, out),
        "sinpi" => sinpi_slice(xs, out),
        "cospi" => cospi_slice(xs, out),
        _ => return Err(UnknownFunction(name.to_owned())),
    }
    Ok(())
}

/// Batched evaluation of a posit32 function by name. Posit encode/decode
/// is regime-dependent bit twiddling, so the chunked loop simply applies
/// the scalar two-tier function per lane — the entry point exists so
/// harnesses can time "batched posit" without pretending there is a
/// staged pipeline to exploit. NaR lanes resolve per lane exactly like
/// the scalar API (NaR in, NaR out).
pub fn eval_slice_posit32(
    name: &str,
    xs: &[rlibm_posit::Posit32],
    out: &mut [rlibm_posit::Posit32],
) -> Result<(), UnknownFunction> {
    assert_eq!(xs.len(), out.len(), "eval_slice: input/output length mismatch");
    let f = crate::posit32_fn_by_name(name).ok_or_else(|| UnknownFunction(name.to_owned()))?;
    let mut chunks = 0u64;
    for (xc, oc) in xs.chunks(LANES).zip(out.chunks_mut(LANES)) {
        chunks += 1;
        for i in 0..xc.len() {
            oc[i] = f(xc[i]);
        }
    }
    SLICE_POSIT_CHUNKS.add(chunks);
    SLICE_POSIT_REQUESTS.add(xs.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlibm_fp::rng::XorShift64;

    const NAMES: [&str; 10] = [
        "ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh", "sinpi", "cospi",
    ];

    fn adversarial_inputs() -> Vec<f32> {
        let mut xs = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MAX,
            f32::MIN,
            f32::MIN_POSITIVE,
            f32::from_bits(1),
            88.9,
            -106.5,
            128.5,
            -151.5,
            38.7,
            -45.7,
            90.5,
            -90.5,
            0.5,
            2.5,
            8_388_609.0,
            1e-8,
            2e-4,
        ];
        let mut rng = XorShift64::new(0x51CE);
        for _ in 0..5000 {
            xs.push(f32::from_bits(rng.next_u32()));
        }
        // Plus a dense in-domain band for each family.
        for i in 0..2000 {
            xs.push(-20.0 + i as f32 * 0.02); // exp/sinh/cosh/trig range
            xs.push(f32::from_bits(0x3F00_0000 + i * 37)); // near 1 for logs
        }
        xs
    }

    #[test]
    fn slices_are_bit_identical_to_scalar() {
        let xs = adversarial_inputs();
        let mut out = vec![0.0f32; xs.len()];
        for name in NAMES {
            eval_slice_f32(name, &xs, &mut out).expect("known name");
            for (i, (&x, &got)) in xs.iter().zip(out.iter()).enumerate() {
                let want = crate::eval_f32_by_name(name, x).expect("known name");
                assert!(
                    got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                    "{name}[{i}]: x = {x:e} ({:#010x}): slice {got:e} vs scalar {want:e}",
                    x.to_bits()
                );
            }
        }
    }

    #[test]
    fn posit_slice_matches_scalar() {
        use rlibm_posit::Posit32;
        let mut rng = XorShift64::new(0x9051);
        let xs: Vec<Posit32> = (0..3000).map(|_| Posit32::from_bits(rng.next_u32())).collect();
        let mut out = vec![Posit32::ZERO; xs.len()];
        for name in ["ln", "exp", "sinh", "cosh", "log10", "exp2", "exp10", "log2"] {
            eval_slice_posit32(name, &xs, &mut out).expect("known name");
            for (&x, &got) in xs.iter().zip(out.iter()) {
                assert_eq!(got, crate::eval_posit32_by_name(name, x).expect("known name"), "{name}");
            }
        }
    }

    /// Satellite regression: specials (NaN, ±0, ±inf, subnormals,
    /// saturating magnitudes) scattered *through* a single 64-lane chunk
    /// must resolve per lane exactly like the scalar API — the staged
    /// pipeline may not let a special lane contaminate its neighbours.
    #[test]
    fn specials_scattered_through_one_chunk_resolve_per_lane() {
        let specials = [
            f32::NAN,
            f32::from_bits(0x7FC0_1234), // NaN with a payload
            f32::from_bits(0xFFC0_0001), // negative NaN payload
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            f32::from_bits(1),          // smallest subnormal
            f32::from_bits(0x007F_FFFF), // largest subnormal
            f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            1e30,  // saturates exp-family
            -1e30, // underflows exp-family
        ];
        // Exactly one chunk: specials at scattered lanes, plain in-domain
        // values everywhere else.
        let mut xs = [0.0f32; 64];
        for (i, lane) in xs.iter_mut().enumerate() {
            *lane = 0.25 + i as f32 * 0.37;
        }
        for (k, &s) in specials.iter().enumerate() {
            xs[(k * 9 + 3) % 64] = s;
        }
        let mut out = [0.0f32; 64];
        for name in NAMES {
            eval_slice_f32(name, &xs, &mut out).expect("known name");
            for (i, (&x, &got)) in xs.iter().zip(out.iter()).enumerate() {
                let want = crate::eval_f32_by_name(name, x).expect("known name");
                assert!(
                    got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                    "{name} lane {i}: x = {x:e}: slice {got:e} vs scalar {want:e}"
                );
            }
        }

        // Posit chunk with NaR / min / max scattered among ordinary values.
        use rlibm_posit::Posit32;
        let mut pxs = [Posit32::from_f64(1.5); 64];
        for (i, lane) in pxs.iter_mut().enumerate() {
            *lane = Posit32::from_f64(0.3 + i as f64 * 0.21);
        }
        for (k, s) in
            [Posit32::NAR, Posit32::ZERO, Posit32::MINPOS, Posit32::MAXPOS].into_iter().enumerate()
        {
            pxs[(k * 17 + 5) % 64] = s;
        }
        let mut pout = [Posit32::ZERO; 64];
        for name in ["ln", "exp", "sinh", "cosh", "log10", "exp2", "exp10", "log2"] {
            eval_slice_posit32(name, &pxs, &mut pout).expect("known name");
            for (i, (&x, &got)) in pxs.iter().zip(pout.iter()).enumerate() {
                let want = crate::eval_posit32_by_name(name, x).expect("known name");
                assert_eq!(got, want, "{name} lane {i}");
            }
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let mut out = [0.0f32; 1];
        let err = eval_slice_f32("tanh", &[1.0], &mut out).expect_err("unknown");
        assert_eq!(err, UnknownFunction("tanh".to_owned()));
        let mut pout = [rlibm_posit::Posit32::ZERO; 1];
        assert!(eval_slice_posit32("sinpi", &[rlibm_posit::Posit32::ZERO], &mut pout).is_err());
    }

    #[test]
    fn empty_and_partial_chunks() {
        let mut out = [];
        exp_slice(&[], &mut out);
        // A length that is not a multiple of the lane width.
        let xs: Vec<f32> = (0..97).map(|i| i as f32 * 0.11 - 5.0).collect();
        let mut out = vec![0.0f32; 97];
        ln_slice(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(out.iter()) {
            let want = crate::ln(x);
            assert!(got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut out = vec![0.0f32; 3];
        exp_slice(&[1.0, 2.0], &mut out);
    }
}
