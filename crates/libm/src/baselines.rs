//! Baseline library models for the paper's comparisons (Table 1, Table 2,
//! Figures 3 and 4).
//!
//! The paper compares RLIBM-32 against Intel libm, glibc libm (float and
//! double), CR-LIBM and MetaLibm. None of those can be linked here, so
//! this module implements one representative of each *failure class* the
//! evaluation depends on:
//!
//! * [`float32`] — a mainstream "single-precision libm": double-precision
//!   arithmetic inside (like glibc's `expf`/`sinf`), but with a cheap
//!   table-free reduction and mini-max-style polynomial whose total error
//!   (~2^-30 relative) leaves the result wrong for roughly one input in
//!   10^4–10^6, matching the X(1.7E5)…X(3.0E7) counts of Table 1.
//! * [`double64`] — "re-purposing a double library": the host's `f64`
//!   functions rounded down to the target. Almost correct for floats
//!   (double rounding bites on a handful of inputs) and badly wrong for
//!   posits (overflow to `inf` becomes NaR, underflow to `0` loses
//!   `minpos` — the Table 2 failure mode with hundreds of millions of
//!   wrong results).
//! * [`crlibm`] — a correctly rounded *double* library: our own
//!   double-double kernels plus a Ziv-style confirmation pass (the source
//!   of CR-LIBM's ~2x slowdown), rounded first to double and then to the
//!   target — correct in double, wrong for float exactly on the
//!   double-rounding cases.

use rlibm_posit::Posit32;

/// The model of a mainstream single-precision libm.
pub mod float32 {
    /// `e^x`: cheap reduction + degree-5 polynomial, no lookup table.
    pub fn exp(x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        if x > 89.0 {
            return f32::INFINITY;
        }
        if x < -106.0 {
            return 0.0;
        }
        let xd = x as f64;
        let k = (xd * core::f64::consts::LOG2_E).round_ties_even();
        let r = xd - k * core::f64::consts::LN_2; // one rounding: ~2^-53 abs
        // Degree-5 Taylor: truncation ~r^6/720 ~ 2^-33 relative.
        let p = 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0 + r / 120.0))));
        (p * super::pow2_f64(k as i64)) as f32
    }

    /// `2^x` via `exp(x ln 2)` (compounding the reduction error).
    pub fn exp2(x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        if x >= 128.0 {
            return f32::INFINITY;
        }
        if x < -151.0 {
            return 0.0;
        }
        let xd = x as f64;
        let k = xd.round_ties_even();
        let r = (xd - k) * core::f64::consts::LN_2;
        let p = 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0 + r / 120.0))));
        (p * super::pow2_f64(k as i64)) as f32
    }

    /// `10^x` via `2^(x log2 10)`.
    pub fn exp10(x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        if x > 38.6 {
            return f32::INFINITY;
        }
        if x < -45.5 {
            return 0.0;
        }
        let xd = x as f64 * core::f64::consts::LOG2_10; // rounding here hurts
        let k = xd.round_ties_even();
        let r = (xd - k) * core::f64::consts::LN_2;
        let p = 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0 + r / 120.0))));
        (p * super::pow2_f64(k as i64)) as f32
    }

    /// `ln`: atanh-series over the full `[1, 2)` mantissa (no table).
    pub fn ln(x: f32) -> f32 {
        if x.is_nan() || x < 0.0 {
            return f32::NAN;
        }
        if x == 0.0 {
            return f32::NEG_INFINITY;
        }
        if x.is_infinite() {
            return f32::INFINITY;
        }
        let xd = x as f64;
        let bits = xd.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let mut z = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
        let mut e = e;
        if z > core::f64::consts::SQRT_2 {
            z *= 0.5;
            e += 1;
        }
        // ln z = 2 atanh(s), s = (z-1)/(z+1), |s| <= 0.172; degree 9 odd:
        // truncation ~s^11/11 ~ 2^-31.5 relative.
        let s = (z - 1.0) / (z + 1.0);
        let s2 = s * s;
        let p = 2.0 * s * (1.0 + s2 * (1.0 / 3.0 + s2 * (1.0 / 5.0 + s2 * (1.0 / 7.0 + s2 / 9.0))));
        (e as f64 * core::f64::consts::LN_2 + p) as f32
    }

    /// `log2` via `ln / ln 2`.
    pub fn log2(x: f32) -> f32 {
        if x.is_nan() || x < 0.0 {
            return f32::NAN;
        }
        if x == 0.0 {
            return f32::NEG_INFINITY;
        }
        if x.is_infinite() {
            return f32::INFINITY;
        }
        let xd = x as f64;
        let bits = xd.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let z = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
        let s = (z - 1.0) / (z + 1.0);
        let s2 = s * s;
        let p = 2.0 * s * (1.0 + s2 * (1.0 / 3.0 + s2 * (1.0 / 5.0 + s2 * (1.0 / 7.0 + s2 / 9.0))));
        (e as f64 + p * core::f64::consts::LOG2_E) as f32
    }

    /// `log10` via `ln / ln 10`.
    pub fn log10(x: f32) -> f32 {
        if x.is_nan() || x < 0.0 {
            return f32::NAN;
        }
        if x == 0.0 {
            return f32::NEG_INFINITY;
        }
        if x.is_infinite() {
            return f32::INFINITY;
        }
        let l = ln(x) as f64; // two roundings stacked: visibly wrong often
        (l / core::f64::consts::LN_10) as f32
    }

    /// `sinh` from two exponentials (cancellation below 1 is unprotected
    /// beyond a linear shortcut — a classic float-libm shape).
    pub fn sinh(x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        if x.abs() < 6e-4 {
            return x;
        }
        if x > 90.0 {
            return f32::INFINITY;
        }
        if x < -90.0 {
            return f32::NEG_INFINITY;
        }
        let a = exp(x.abs()) as f64;
        let v = 0.5 * (a - 1.0 / a);
        if x < 0.0 {
            (-v) as f32
        } else {
            v as f32
        }
    }

    /// `cosh` from two exponentials.
    pub fn cosh(x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        if x.abs() > 90.0 {
            return f32::INFINITY;
        }
        let a = exp(x.abs()) as f64;
        (0.5 * (a + 1.0 / a)) as f32
    }

    /// `sin(pi x)` with a plain `pi * x` and the host sine.
    pub fn sinpi(x: f32) -> f32 {
        if x.is_nan() || x.is_infinite() {
            return f32::NAN;
        }
        let a = x as f64;
        if a.abs() >= 8_388_608.0 {
            return 0.0;
        }
        // pi*x rounds before the sine: the paper's Intel column shape.
        ((core::f64::consts::PI * a).sin()) as f32
    }

    /// `cos(pi x)` likewise.
    pub fn cospi(x: f32) -> f32 {
        if x.is_nan() || x.is_infinite() {
            return f32::NAN;
        }
        let a = (x as f64).abs();
        if a >= 16_777_216.0 {
            return 1.0;
        }
        ((core::f64::consts::PI * a).cos()) as f32
    }
}

/// `2^k` handling the subnormal tail by two-step scaling.
fn pow2_f64(k: i64) -> f64 {
    if (-1022..=1023).contains(&k) {
        f64::from_bits(((k + 1023) as u64) << 52)
    } else if k > 1023 {
        f64::INFINITY
    } else {
        f64::from_bits((1u64 << 52).wrapping_add(0)) * 0.0 + 2f64.powi(k as i32)
    }
}

/// The model of "re-purpose a double-precision library".
pub mod double64 {
    use rlibm_posit::Posit32;

    /// Dispatches to the host double libm by function index (the order of
    /// [`rlibm_mp::Func::ALL`], but without depending on that crate).
    /// Unknown names yield NaN — the baseline model stays total.
    pub fn eval_f64(name: &str, x: f64) -> f64 {
        match name {
            "ln" => x.ln(),
            "log2" => x.log2(),
            "log10" => x.log10(),
            "exp" => x.exp(),
            "exp2" => x.exp2(),
            "exp10" => 10f64.powf(x),
            "sinh" => x.sinh(),
            "cosh" => x.cosh(),
            "sinpi" => (core::f64::consts::PI * x).sin(),
            "cospi" => (core::f64::consts::PI * x).cos(),
            _ => f64::NAN,
        }
    }

    /// Double result rounded to `f32` — the double-rounding failure mode.
    pub fn to_f32(name: &str, x: f32) -> f32 {
        eval_f64(name, x as f64) as f32
    }

    /// Double result rounded to posit32 — the saturation failure mode
    /// (overflow -> inf -> NaR; underflow -> 0 instead of minpos).
    pub fn to_posit32(name: &str, x: Posit32) -> Posit32 {
        if x.is_nar() {
            return Posit32::NAR;
        }
        Posit32::from_f64(eval_f64(name, x.to_f64()))
    }
}

/// The model of CR-LIBM: correctly rounded in *double*, then rounded to
/// the target (plus the Ziv confirmation pass that costs the ~2x of
/// Figure 3c).
pub mod crlibm {
    use crate::dd::Dd;
    use crate::float::exp::{exp10_kernel, exp2_kernel, exp_kernel};
    use crate::float::hyper::{cosh_kernel, sinh_kernel};
    use crate::float::log::{ln_kernel, log10_kernel, log2_kernel};

    fn kernel(name: &str, x: f64) -> Option<Dd> {
        Some(match name {
            "ln" => ln_kernel(x),
            "log2" => log2_kernel(x),
            "log10" => log10_kernel(x),
            "exp" => exp_kernel(x),
            "exp2" => exp2_kernel(x),
            "exp10" => exp10_kernel(x),
            "sinh" => sinh_kernel(x),
            "cosh" => cosh_kernel(x),
            _ => return None,
        })
    }

    /// Correctly rounded double, then cast: wrong for f32 exactly on
    /// double-rounding cases. The Ziv-style confirmation re-evaluates and
    /// cross-checks (mirroring CR-LIBM's two-phase cost profile).
    pub fn to_f32(name: &str, x: f32) -> f32 {
        let xd = x as f64;
        if !in_domain(name, xd) {
            return super::double64::to_f32(name, x);
        }
        // in_domain() only admits the eight kernel names, so both lookups
        // succeed; fall back to the double64 model otherwise to stay total.
        let (Some(first), Some(second)) = (kernel(name, xd), kernel(name, xd)) else {
            return super::double64::to_f32(name, x);
        };
        let d = first.to_f64();
        // Confirmation pass (the second onion layer).
        assert!(d == second.to_f64(), "Ziv confirmation must agree");
        d as f32 // double rounding: the Table 1 CR-LIBM column
    }

    fn in_domain(name: &str, x: f64) -> bool {
        match name {
            "ln" | "log2" | "log10" => x.is_finite() && x > 0.0,
            "exp" | "exp2" | "exp10" => x.is_finite() && x.abs() < 300.0,
            "sinh" | "cosh" => x.is_finite() && x.abs() < 90.0,
            _ => false,
        }
    }
}

/// Posit front end for the baselines used in Figure 4 (glibc/Intel double
/// and CR-LIBM re-purposed for posit32).
pub fn double64_posit(name: &str, x: Posit32) -> Posit32 {
    double64::to_posit32(name, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float32_baseline_is_usually_right_but_not_always() {
        // Accuracy must be good enough to look plausible...
        let mut wrong = 0u32;
        let mut total = 0u32;
        for i in 0..200_000u32 {
            let x = f32::from_bits(0x3D80_0000 + i * 16); // spread over [~0.06, ~1)
            let base = float32::exp(x);
            let ours = crate::exp(x);
            total += 1;
            if base != ours {
                wrong += 1;
            }
        }
        // ...but a visible fraction of inputs must misround (Table 1).
        assert!(wrong > 0, "the float baseline should misround somewhere");
        assert!(wrong < total / 50, "but not be garbage ({wrong}/{total})");
    }

    #[test]
    fn double64_posit_fails_on_saturation() {
        let big = Posit32::from_f64(1000.0);
        let naive = double64::to_posit32("exp", big);
        // exp(1000) overflows f64 -> inf -> NaR: the Table 2 failure.
        assert!(naive.is_nar());
        // The correct answer saturates:
        assert_eq!(crate::posit::exp_p32(big), Posit32::MAXPOS);
        // Underflow loses minpos:
        let neg = Posit32::from_f64(-1000.0);
        assert!(double64::to_posit32("exp", neg).is_zero());
        assert_eq!(crate::posit::exp_p32(neg), Posit32::MINPOS);
    }

    #[test]
    fn crlibm_is_correct_in_double_but_double_rounds() {
        // On generic inputs it matches our correctly rounded f32...
        let mut agree = 0;
        for i in 0..1000 {
            let x = 0.5f32 + i as f32 * 0.001;
            if crlibm::to_f32("exp", x) == crate::exp(x) {
                agree += 1;
            }
        }
        assert!(agree >= 999, "CR-LIBM repurposing is almost always right");
    }

    #[test]
    fn pow2_f64_range() {
        assert_eq!(pow2_f64(10), 1024.0);
        assert_eq!(pow2_f64(-1030), 2f64.powi(-1030));
        assert_eq!(pow2_f64(2000), f64::INFINITY);
    }
}
