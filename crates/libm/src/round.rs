//! Single correct rounding from a double-double result into any target.
//!
//! A kernel produces `hi + lo` representing `f(x)` to ~2^-90 relative
//! error. Collapsing to one double (`hi + lo`) and casting would round
//! *twice* — the exact failure mode that makes CR-LIBM's double results
//! wrong for float in the paper's Table 1. Instead we convert the pair to
//! a **round-to-odd** double (exactly: the residual of the collapse tells
//! us which side the true value lies on, and one of the two neighbouring
//! doubles is always odd), then apply the target's own rounding. Round-odd
//! at 53 bits followed by round-to-nearest into any representation with at
//! most 51 significant bits is a single correct rounding — ties and exact
//! values included.

use rlibm_fp::bits::{next_down_f64, next_up_f64};
use rlibm_fp::Representation;

use crate::dd::Dd;

/// Collapses a double-double to the round-to-odd double of its exact value.
#[inline]
pub fn to_f64_round_odd(v: Dd) -> f64 {
    let s = v.hi + v.lo;
    if !s.is_finite() {
        return s;
    }
    // Residual of the collapse: s + e == hi + lo exactly (FastTwoSum error
    // term; the dd invariant |lo| <= ulp(hi)/2 makes it valid).
    let e = v.lo - (s - v.hi);
    if e == 0.0 {
        return s; // exact: round-odd keeps exact values
    }
    if s.to_bits() & 1 == 1 {
        return s; // s is odd and the true value lies strictly between
                  // s's neighbours' midpoints: round-odd picks s
    }
    // s even: the true value is strictly between s and the adjacent double
    // in the residual's direction, and that neighbour is odd.
    if e > 0.0 {
        next_up_f64(s)
    } else {
        next_down_f64(s)
    }
}

/// Rounds a double-double kernel result into the target representation
/// with one correct rounding of the exact `hi + lo` value.
#[inline]
pub fn round_dd<T: Representation>(v: Dd) -> T {
    T::round_from_f64(to_f64_round_odd(v))
}

/// Convenience: round into `f32`.
#[inline]
pub fn round_dd_f32(v: Dd) -> f32 {
    round_dd::<f32>(v)
}

/// Certifies that rounding the plain double `y` to `f32` yields the
/// correct rounding of any real value within `band · 2^-53` *relative*
/// of `y` — the fast path's safety test.
///
/// `y` approximates `f(x)` with a statically derived relative error
/// bound. In the binade `[2^e, 2^(e+1))` that bound is at most
/// `band · 2^(e-52)` absolute, i.e. `band` units of the f64 fraction's
/// last place. The f32 rounding boundaries are the midpoints of adjacent
/// f32 values: fraction patterns whose low 29 bits equal `0x1000_0000`
/// (f32 keeps 23 of the 52 fraction bits in every normal binade). If `y`
/// is more than `band` units away from the nearest midpoint, every value
/// within the error bound rounds to the same f32 — so `y as f32` *is* the
/// correctly rounded result.
///
/// Boundaries *outside* `y`'s binade are automatically far: the nearest
/// cross-binade midpoints sit at least `2^27` fraction units from any
/// interior point's distance-to-midpoint test (and `band << 2^27`), so a
/// per-binade view is sound. Results that are not f32-normal (subnormal,
/// zero, overflow) are rejected wholesale — the dd fallback owns them.
#[inline(always)]
pub fn f32_round_safe(y: f64, band: u64) -> bool {
    debug_assert!(band < (1 << 26));
    let bits = y.to_bits();
    let be = (bits >> 52) & 0x7ff;
    // f32-normal results only: 2^-126 <= |y| < 2^128.
    if !(897..=1150).contains(&be) {
        return false;
    }
    let frac = bits & 0x1FFF_FFFF;
    frac.abs_diff(0x1000_0000) > band
}

/// Posit32 counterpart of [`f32_round_safe`].
///
/// Posit32 (`es = 2`) has a *regime-dependent* fraction width: for
/// unbiased exponent `e`, the regime `k = floor(e/4)` occupies
/// `k + 2` bits (`k >= 0`) or `-k + 1` bits (`k < 0`), leaving
/// `29 - regime_len` fraction bits. The rounding midpoints are therefore
/// at a different bit position per regime; everything else mirrors the
/// f32 test, with the band again in units of `2^-53` relative.
///
/// The accepted exponent range `-112 <= e <= 111` is exactly where the
/// posit grid inside `y`'s binade is uniform with both binade endpoints
/// representable, so a single frac-space midpoint test is sound. That
/// holds down to `frac_bits = 0` (`|k| <= 27` positive side, `k >= -28`
/// negative side), where the binade's grid is just its endpoints `2^e`
/// and `2^(e+1)` and the lone midpoint sits at mantissa 1.5. Beyond
/// that (`|k| >= 28`) the es field itself is truncated, the grid skips
/// exponents, and midpoints stop aligning with frac space — those
/// extremes (and the saturation zone near `maxpos = 2^120`) fall back
/// to the dd kernel.
#[inline(always)]
pub fn posit32_round_safe(y: f64, band: u64) -> bool {
    let bits = y.to_bits() & !(1u64 << 63);
    let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    if !(-112..=111).contains(&e) {
        return false; // covers zero (e = -1023) and non-finite too
    }
    let k = e.div_euclid(4);
    let regime_len = if k >= 0 { k as u64 + 2 } else { (-k) as u64 + 1 };
    let frac_bits = 29 - regime_len; // 0..=27 within the accepted range
    let shift = 52 - frac_bits;
    let frac = bits & ((1u64 << shift) - 1);
    frac.abs_diff(1u64 << (shift - 1)) > band
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlibm_fp::bits::midpoint_f32;

    #[test]
    fn exact_values_pass_through() {
        let v = Dd::from_f64(1.5);
        assert_eq!(to_f64_round_odd(v), 1.5);
        assert_eq!(round_dd_f32(v), 1.5f32);
    }

    #[test]
    fn avoids_double_rounding_at_f32_ties() {
        // Value = f32 tie + tiny: plain (hi+lo) as f32 would land ON the
        // tie and round to even (wrong); round_dd must go up.
        let tie = midpoint_f32(1.0, 1.0 + f32::EPSILON); // 1 + 2^-24
        let v = Dd::new(tie, 2f64.powi(-80));
        assert_eq!((v.hi + v.lo) as f32, 1.0, "naive path double-rounds");
        assert_eq!(round_dd_f32(v), 1.0 + f32::EPSILON, "round_dd must not");
        // And tie - tiny goes down.
        let w = Dd::new(tie, -2f64.powi(-80));
        assert_eq!(round_dd_f32(w), 1.0);
        // An exact tie keeps the ties-to-even answer.
        let t = Dd::from_f64(tie);
        assert_eq!(round_dd_f32(t), 1.0);
    }

    #[test]
    fn posit_boundaries_are_respected() {
        use rlibm_posit::Posit32;
        // posit32 tie between 1.0 and its successor (quantum 2^-27).
        let tie = 1.0 + 2f64.powi(-28);
        let v = Dd::new(tie, 1e-25);
        let up: Posit32 = round_dd(v);
        assert_eq!(up.to_f64(), 1.0 + 2f64.powi(-27));
        let dn: Posit32 = round_dd(Dd::new(tie, -1e-25));
        assert_eq!(dn.to_f64(), 1.0);
        // Exact tie: even pattern wins (1.0 has pattern 0x40000000, even).
        let ex: Posit32 = round_dd(Dd::from_f64(tie));
        assert_eq!(ex.to_f64(), 1.0);
    }

    #[test]
    fn overflow_and_underflow() {
        let big = Dd::from_f64(1e300);
        assert_eq!(round_dd_f32(big), f32::INFINITY);
        let tiny = Dd::new(2f64.powi(-200), 2f64.powi(-260));
        assert_eq!(round_dd_f32(tiny), 0.0);
        // f32 underflow tie: 2^-150 exactly -> 0 (ties to even)...
        let t = Dd::from_f64(2f64.powi(-150));
        assert_eq!(round_dd_f32(t), 0.0);
        // ...but a hair above must produce the smallest subnormal.
        let t2 = Dd::new(2f64.powi(-150), 2f64.powi(-220));
        assert_eq!(round_dd_f32(t2), f32::from_bits(1));
    }

    #[test]
    fn f32_safe_accepts_interior_and_rejects_midpoints() {
        // 1.5 sits exactly on the f32 grid: maximally far from midpoints.
        assert!(f32_round_safe(1.5, 4096));
        // An exact f32 midpoint (1 + 2^-24) must be rejected for any band.
        let mid = 1.0 + 2f64.powi(-24);
        assert!(!f32_round_safe(mid, 0));
        // Just past the band's edge on either side: accepted again.
        let band = 256u64;
        let above = f64::from_bits(mid.to_bits() + band + 1);
        let below = f64::from_bits(mid.to_bits() - band - 1);
        assert!(f32_round_safe(above, band));
        assert!(f32_round_safe(below, band));
        // Within the band: rejected.
        assert!(!f32_round_safe(f64::from_bits(mid.to_bits() + band), band));
    }

    #[test]
    fn f32_safe_rejects_non_normal_results() {
        assert!(!f32_round_safe(0.0, 256));
        assert!(!f32_round_safe(f64::NAN, 256));
        assert!(!f32_round_safe(f64::INFINITY, 256));
        assert!(!f32_round_safe(2f64.powi(-127), 256)); // f32-subnormal
        assert!(!f32_round_safe(2f64.powi(128), 256)); // f32 overflow
        assert!(f32_round_safe(2f64.powi(-126) * 1.5, 256));
        assert!(f32_round_safe(2f64.powi(127) * 1.5, 256));
    }

    #[test]
    fn f32_safe_agrees_with_cast_when_accepted() {
        use rlibm_fp::rng::XorShift64;
        // Property: if the test accepts y, then every value within
        // band·2^-53 relative of y casts to the same f32 as y.
        let mut rng = XorShift64::new(0xBEEF);
        let band = 2048u64;
        for _ in 0..50_000 {
            let e = rng.uniform_f64(-120.0, 120.0);
            let y = rng.uniform_f64(1.0, 2.0) * e.exp2();
            if !f32_round_safe(y, band) {
                continue;
            }
            let delta = band as f64 * 2f64.powi(-53) * y.abs();
            assert_eq!((y + delta) as f32, y as f32, "y = {y:e}");
            assert_eq!((y - delta) as f32, y as f32, "y = {y:e}");
        }
    }

    #[test]
    fn posit_safe_agrees_with_round_when_accepted() {
        use rlibm_fp::rng::XorShift64;
        use rlibm_posit::Posit32;
        let mut rng = XorShift64::new(0xCAFE);
        let band = 2048u64;
        let mut accepted = 0u32;
        for _ in 0..50_000 {
            let e = rng.uniform_f64(-100.0, 100.0);
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            let y = sign * rng.uniform_f64(1.0, 2.0) * e.exp2();
            if !posit32_round_safe(y, band) {
                continue;
            }
            accepted += 1;
            let delta = band as f64 * 2f64.powi(-53) * y.abs();
            let p = Posit32::from_f64(y);
            assert_eq!(Posit32::from_f64(y + delta), p, "y = {y:e}");
            assert_eq!(Posit32::from_f64(y - delta), p, "y = {y:e}");
        }
        assert!(accepted > 40_000, "safety test too conservative: {accepted}");
    }

    #[test]
    fn posit_safe_rejects_extremes() {
        assert!(!posit32_round_safe(0.0, 256));
        assert!(!posit32_round_safe(f64::NAN, 256));
        // Exact powers of two deep in the regime tail are still safe...
        assert!(posit32_round_safe(2f64.powi(100), 256));
        assert!(posit32_round_safe(2f64.powi(-100), 256));
        // ...but the es-truncation zone (|k| >= 28) is rejected wholesale.
        assert!(!posit32_round_safe(1.5 * 2f64.powi(112), 256));
        assert!(!posit32_round_safe(1.5 * 2f64.powi(-113), 256));
        assert!(!posit32_round_safe(2f64.powi(119), 256)); // near saturation
        // The exact posit 1.5 is far from every midpoint.
        assert!(posit32_round_safe(1.5, 4096));
        assert!(posit32_round_safe(-1.5, 4096));
        // A posit32 midpoint near 1.0: quantum 2^-27, midpoint 1 + 2^-28.
        assert!(!posit32_round_safe(1.0 + 2f64.powi(-28), 0));
    }

    #[test]
    fn odd_s_keeps_s() {
        let s = f64::from_bits(0x3FF0_0000_0000_0001); // odd lsb
        let v = Dd::new(s, 2f64.powi(-80));
        assert_eq!(to_f64_round_odd(v), s);
        let w = Dd::new(s, -2f64.powi(-80));
        assert_eq!(to_f64_round_odd(w), s);
    }
}
