//! Single correct rounding from a double-double result into any target.
//!
//! A kernel produces `hi + lo` representing `f(x)` to ~2^-90 relative
//! error. Collapsing to one double (`hi + lo`) and casting would round
//! *twice* — the exact failure mode that makes CR-LIBM's double results
//! wrong for float in the paper's Table 1. Instead we convert the pair to
//! a **round-to-odd** double (exactly: the residual of the collapse tells
//! us which side the true value lies on, and one of the two neighbouring
//! doubles is always odd), then apply the target's own rounding. Round-odd
//! at 53 bits followed by round-to-nearest into any representation with at
//! most 51 significant bits is a single correct rounding — ties and exact
//! values included.

use rlibm_fp::bits::{next_down_f64, next_up_f64};
use rlibm_fp::Representation;

use crate::dd::Dd;

/// Collapses a double-double to the round-to-odd double of its exact value.
#[inline]
pub fn to_f64_round_odd(v: Dd) -> f64 {
    let s = v.hi + v.lo;
    if !s.is_finite() {
        return s;
    }
    // Residual of the collapse: s + e == hi + lo exactly (FastTwoSum error
    // term; the dd invariant |lo| <= ulp(hi)/2 makes it valid).
    let e = v.lo - (s - v.hi);
    if e == 0.0 {
        return s; // exact: round-odd keeps exact values
    }
    if s.to_bits() & 1 == 1 {
        return s; // s is odd and the true value lies strictly between
                  // s's neighbours' midpoints: round-odd picks s
    }
    // s even: the true value is strictly between s and the adjacent double
    // in the residual's direction, and that neighbour is odd.
    if e > 0.0 {
        next_up_f64(s)
    } else {
        next_down_f64(s)
    }
}

/// Rounds a double-double kernel result into the target representation
/// with one correct rounding of the exact `hi + lo` value.
#[inline]
pub fn round_dd<T: Representation>(v: Dd) -> T {
    T::round_from_f64(to_f64_round_odd(v))
}

/// Convenience: round into `f32`.
#[inline]
pub fn round_dd_f32(v: Dd) -> f32 {
    round_dd::<f32>(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlibm_fp::bits::midpoint_f32;

    #[test]
    fn exact_values_pass_through() {
        let v = Dd::from_f64(1.5);
        assert_eq!(to_f64_round_odd(v), 1.5);
        assert_eq!(round_dd_f32(v), 1.5f32);
    }

    #[test]
    fn avoids_double_rounding_at_f32_ties() {
        // Value = f32 tie + tiny: plain (hi+lo) as f32 would land ON the
        // tie and round to even (wrong); round_dd must go up.
        let tie = midpoint_f32(1.0, 1.0 + f32::EPSILON); // 1 + 2^-24
        let v = Dd::new(tie, 2f64.powi(-80));
        assert_eq!((v.hi + v.lo) as f32, 1.0, "naive path double-rounds");
        assert_eq!(round_dd_f32(v), 1.0 + f32::EPSILON, "round_dd must not");
        // And tie - tiny goes down.
        let w = Dd::new(tie, -2f64.powi(-80));
        assert_eq!(round_dd_f32(w), 1.0);
        // An exact tie keeps the ties-to-even answer.
        let t = Dd::from_f64(tie);
        assert_eq!(round_dd_f32(t), 1.0);
    }

    #[test]
    fn posit_boundaries_are_respected() {
        use rlibm_posit::Posit32;
        // posit32 tie between 1.0 and its successor (quantum 2^-27).
        let tie = 1.0 + 2f64.powi(-28);
        let v = Dd::new(tie, 1e-25);
        let up: Posit32 = round_dd(v);
        assert_eq!(up.to_f64(), 1.0 + 2f64.powi(-27));
        let dn: Posit32 = round_dd(Dd::new(tie, -1e-25));
        assert_eq!(dn.to_f64(), 1.0);
        // Exact tie: even pattern wins (1.0 has pattern 0x40000000, even).
        let ex: Posit32 = round_dd(Dd::from_f64(tie));
        assert_eq!(ex.to_f64(), 1.0);
    }

    #[test]
    fn overflow_and_underflow() {
        let big = Dd::from_f64(1e300);
        assert_eq!(round_dd_f32(big), f32::INFINITY);
        let tiny = Dd::new(2f64.powi(-200), 2f64.powi(-260));
        assert_eq!(round_dd_f32(tiny), 0.0);
        // f32 underflow tie: 2^-150 exactly -> 0 (ties to even)...
        let t = Dd::from_f64(2f64.powi(-150));
        assert_eq!(round_dd_f32(t), 0.0);
        // ...but a hair above must produce the smallest subnormal.
        let t2 = Dd::new(2f64.powi(-150), 2f64.powi(-220));
        assert_eq!(round_dd_f32(t2), f32::from_bits(1));
    }

    #[test]
    fn odd_s_keeps_s() {
        let s = f64::from_bits(0x3FF0_0000_0000_0001); // odd lsb
        let v = Dd::new(s, 2f64.powi(-80));
        assert_eq!(to_f64_round_odd(v), s);
        let w = Dd::new(s, -2f64.powi(-80));
        assert_eq!(to_f64_round_odd(w), s);
    }
}
