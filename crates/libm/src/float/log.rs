//! The logarithm family: `ln`, `log2`, `log10`.
//!
//! Tang-style table reduction, exactly the structure the paper's
//! generators target: `x = z·2^e` with `z in [1,2)`, `F = 1 + j/128`
//! the nearest table point, `u = (z-F)/F`, and
//! `log(x) = e·log(2) + table[j] + log1p(u)` with `|u| <= 1/256`.
//! Table values and the `log 2` constant are carried as double-doubles;
//! the polynomial's head terms run in double-double so that the whole
//! kernel stays within ~2^-85 relative error.

use crate::dd::{two_prod, two_sum, Dd};
use crate::tables as t;

/// Decomposes a positive finite double into `(e, z)` with `x = z * 2^e`,
/// `z` in `[1, 2)` (handles f32-origin subnormals after upscaling).
#[inline]
fn split(x: f64) -> (i64, f64) {
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let z = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    (e, z)
}

/// `log1p(u)` for `|u| <= 1/256 + slack`, as a double-double.
#[inline]
fn log1p_poly(u: Dd) -> Dd {
    let uh = u.hi;
    // Tail: u^3/3 - u^4/4 + ... - u^8/8 in plain double (|u^3| <= 2^-24).
    let tail = uh * uh * uh
        * (1.0 / 3.0
            + uh * (-1.0 / 4.0
                + uh * (1.0 / 5.0 + uh * (-1.0 / 6.0 + uh * (1.0 / 7.0 - uh / 8.0)))));
    // Head: u - u^2/2 in double-double (cross term kept).
    let (p, e) = two_prod(uh, uh);
    let half_sq = Dd::new(0.5 * p, 0.5 * (e + 2.0 * uh * u.lo));
    u.add(half_sq.neg()).add_f64(tail)
}

/// Shared reduction: returns `(e, j, log1p(u))`.
#[inline]
fn reduce(x: f64) -> (i64, usize, Dd) {
    let (mut e, mut z) = split(x);
    if e == -1023 {
        // f32-origin subnormal widened to f64 is still normal in f64, so
        // this only triggers for genuinely subnormal doubles (not produced
        // by the f32 wrapper, which upscales first). Normalize anyway.
        let scaled = x * 2f64.powi(120);
        let (e2, z2) = split(scaled);
        e = e2 - 120;
        z = z2;
    }
    let j = ((z - 1.0) * 128.0).round_ties_even() as usize; // 0..=128
    let f = 1.0 + j as f64 / 128.0;
    let num = z - f; // exact: same binade, shared grid
    // u = num / f as a double-double via a Newton residual step.
    let u_hi = num / f;
    let res = (-u_hi).mul_add(f, num); // exact residual via FMA
    let u = Dd::new(u_hi, res / f);
    (e, j, log1p_poly(u))
}

/// Kernel: `ln(x)` for finite positive `x`, as a double-double.
pub(crate) fn ln_kernel(x: f64) -> Dd {
    let (e, j, p) = reduce(x);
    let ef = e as f64;
    // e * LN2_HI42 is exact (42-bit constant, |e| <= 2^11).
    let (fh, fl) = t::ln_f(j);
    let (s, se) = two_sum(ef * t::LN2_HI42, fh);
    let lo = se + fl + ef * t::LN2_MID + ef * t::LN2_LO42;
    Dd::new(s, lo).add(p)
}

/// Kernel: `log2(x)`.
pub(crate) fn log2_kernel(x: f64) -> Dd {
    let (e, j, p) = reduce(x);
    // log2(x) = e + table[j] + p / ln2; e is an exact integer.
    let (fh, fl) = t::log2_f(j);
    let (s, se) = two_sum(e as f64, fh);
    let scaled = p.mul(Dd { hi: t::INV_LN2_HI, lo: t::INV_LN2_LO });
    Dd::new(s, se + fl).add(scaled)
}

/// Kernel: `log10(x)`.
pub(crate) fn log10_kernel(x: f64) -> Dd {
    let (e, j, p) = reduce(x);
    let ef = e as f64;
    // e * log10(2) via an exact product split.
    let (eh, el) = two_prod(ef, t::LOG10_2_HI);
    let (fh, fl) = t::log10_f(j);
    let (s, se) = two_sum(eh, fh);
    let scaled = p.mul(Dd { hi: t::INV_LN10_HI, lo: t::INV_LN10_LO });
    Dd::new(s, se + el + fl + ef * t::LOG10_2_LO).add(scaled)
}

/// Common three-tier f32 front end: special cases, then the prefix
/// polynomial, escalating to the full-degree plain-double kernel when
/// the wide prefix band rejects, and to the dd kernel when the full
/// band rejects too.
#[inline]
fn log_front(
    x: f32,
    prefix: fn(f64) -> f64,
    prefix_band: u64,
    fast: fn(f64) -> f64,
    band: u64,
    slot: usize,
    kernel: fn(f64) -> Dd,
) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x < 0.0 {
        return f32::NAN;
    }
    if x == 0.0 {
        return f32::NEG_INFINITY;
    }
    if x == f32::INFINITY {
        return f32::INFINITY;
    }
    let xd = x as f64;
    let y = crate::fault::perturb(slot, prefix(xd));
    if crate::round::f32_round_safe(y, prefix_band) {
        crate::stats::record_tier_prefix(slot);
        return y as f32;
    }
    let y = fast(xd);
    if crate::round::f32_round_safe(y, band) {
        crate::stats::record_tier_full(slot);
        return y as f32;
    }
    crate::stats::record_fallback(slot);
    crate::round::round_dd_f32(kernel(xd))
}

/// dd-only front end (tier 2 alone), kept for the `*_dd` reference
/// entry points that the bit-identity tests and benches compare against.
#[inline]
fn log_front_dd(x: f32, kernel: fn(f64) -> Dd) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x < 0.0 {
        return f32::NAN;
    }
    if x == 0.0 {
        return f32::NEG_INFINITY;
    }
    if x == f32::INFINITY {
        return f32::INFINITY;
    }
    crate::round::round_dd_f32(kernel(x as f64))
}

/// Correctly rounded natural logarithm for `f32`.
///
/// # Example
///
/// ```
/// assert_eq!(rlibm_math::ln(1.0f32), 0.0);
/// assert_eq!(rlibm_math::ln(0.0f32), f32::NEG_INFINITY);
/// assert!(rlibm_math::ln(-1.0f32).is_nan());
/// assert_eq!(rlibm_math::ln(0.1f32), -2.3025851f32);
/// ```
pub fn ln(x: f32) -> f32 {
    log_front(
        x,
        crate::fast::ln_prefix,
        crate::fast::LN_PREFIX_BAND,
        crate::fast::ln_fast,
        crate::fast::LN_BAND,
        crate::stats::slot::LN,
        ln_kernel,
    )
}

/// `ln` through the double-double kernel only (no fast path).
pub fn ln_dd(x: f32) -> f32 {
    log_front_dd(x, ln_kernel)
}

/// Correctly rounded base-2 logarithm for `f32`.
///
/// # Example
///
/// ```
/// assert_eq!(rlibm_math::log2(8.0f32), 3.0);
/// // The smallest subnormal is an exact power of two:
/// assert_eq!(rlibm_math::log2(f32::from_bits(1)), -149.0);
/// ```
pub fn log2(x: f32) -> f32 {
    log_front(
        x,
        crate::fast::log2_prefix,
        crate::fast::LOG2_PREFIX_BAND,
        crate::fast::log2_fast,
        crate::fast::LOG2_BAND,
        crate::stats::slot::LOG2,
        log2_kernel,
    )
}

/// `log2` through the double-double kernel only (no fast path).
pub fn log2_dd(x: f32) -> f32 {
    log_front_dd(x, log2_kernel)
}

/// Correctly rounded base-10 logarithm for `f32`.
///
/// # Example
///
/// ```
/// assert_eq!(rlibm_math::log10(100.0f32), 2.0);
/// assert_eq!(rlibm_math::log10(1e10f32), 10.0);
/// ```
pub fn log10(x: f32) -> f32 {
    log_front(
        x,
        crate::fast::log10_prefix,
        crate::fast::LOG10_PREFIX_BAND,
        crate::fast::log10_fast,
        crate::fast::LOG10_BAND,
        crate::stats::slot::LOG10,
        log10_kernel,
    )
}

/// `log10` through the double-double kernel only (no fast path).
pub fn log10_dd(x: f32) -> f32 {
    log_front_dd(x, log10_kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_values() {
        for f in [ln, log2, log10] {
            assert!(f(f32::NAN).is_nan());
            assert!(f(-3.0).is_nan());
            assert_eq!(f(0.0), f32::NEG_INFINITY);
            assert_eq!(f(-0.0), f32::NEG_INFINITY);
            assert_eq!(f(f32::INFINITY), f32::INFINITY);
            assert_eq!(f(1.0), 0.0);
        }
    }

    #[test]
    fn exact_cases() {
        for k in -149..=127 {
            let x = 2f64.powi(k) as f32; // f32::powi underflows for subnormals
            assert_eq!(log2(x), k as f32, "log2(2^{k})");
        }
        for k in 0..=10 {
            assert_eq!(log10(10f32.powi(k)), k as f32, "log10(10^{k})");
        }
    }

    #[test]
    fn subnormal_inputs() {
        let x = f32::from_bits(1); // 2^-149
        assert_eq!(log2(x), -149.0);
        assert!(ln(x) < -103.0 && ln(x) > -104.0);
    }

    #[test]
    fn inverse_identities() {
        // exp(ln(x)) returns to x up to the f32 quantization of ln(x),
        // whose rounding is amplified by exp: tol ~ x * ulp(ln x) / 2.
        let mut x = 1e-30f32;
        while x < 1e30 {
            let l = ln(x);
            let y = crate::exp(l);
            let tol = 2.0 * rlibm_fp::bits::ulp_f32(x) as f64
                + (x as f64) * rlibm_fp::bits::ulp_f32(l) as f64 * 0.75;
            assert!(((y - x) as f64).abs() <= tol, "roundtrip at {x}: {y}");
            x *= 3.7;
        }
    }

    #[test]
    fn against_host_on_grid() {
        let mut x = 1e-35f64;
        while x < 1e35 {
            let ours = ln(x as f32) as f64;
            let host = (x as f32 as f64).ln();
            assert!((ours - host).abs() <= host.abs() * 1e-7 + 1e-9, "ln({x})");
            let o2 = log10(x as f32) as f64;
            let h2 = (x as f32 as f64).log10();
            assert!((o2 - h2).abs() <= h2.abs() * 1e-7 + 1e-9, "log10({x})");
            x *= 2.31;
        }
    }

    #[test]
    fn near_one_accuracy() {
        // The cancellation-prone region x slightly below 1.
        for i in 1..100u32 {
            let x = 1.0f32 - i as f32 * f32::EPSILON;
            let ours = ln(x) as f64;
            let host = (x as f64).ln();
            assert!(
                (ours - host).abs() <= host.abs() * 1e-7,
                "ln({x}) = {ours} vs {host}"
            );
        }
    }
}
