//! `sinpi` and `cospi` — the paper's two case studies (Sections 2 and 5).
//!
//! `sinpi` follows Section 2.1 verbatim: exact binary reduction
//! `x -> J in [0,2) -> L in [0,1) -> L' in [0,1/2]`, then the table split
//! `L' = N/512 + R` with 257-entry `sinpi`/`cospi` tables and two short
//! polynomials over `R in [0, 1/512]`, recombined with
//! `sinpi(L') = sinpi(N/512)·cospi(R) + cospi(N/512)·sinpi(R)`.
//!
//! `cospi` uses Section 5's *monotonic* output compensation: for `N != 0`
//! the split is flipped to `L' = N'/512 - R` with `N' = N + 1`, so the
//! recombination `cospi(N'/512)·cospi(R) + sinpi(N'/512)·sinpi(R)` has no
//! cancellation (both terms share a sign), unlike the textbook identity
//! with its `-sinpi·sinpi` term.

use crate::dd::{two_prod, Dd};
use crate::tables as t;

/// `sin(pi R)` for exact `R in [0, 1/512]`, as a double-double.
#[inline]
pub(crate) fn sinpi_poly(r: f64) -> Dd {
    // Head: pi * R in double-double; tail: C3 R^3 + C5 R^5 + C7 R^7 in
    // plain double (|tail| <= 2^-25, rounding error ~2^-78).
    let (p, e) = two_prod(t::PI_HI, r);
    let head = Dd::new(p, e + t::PI_LO * r);
    let r2 = r * r;
    let tail = r * r2 * (t::SINPI_C3 + r2 * (t::SINPI_C5 + r2 * t::SINPI_C7));
    head.add_f64(tail)
}

/// `cos(pi R)` for exact `R in [0, 1/512]`, as a double-double.
#[inline]
pub(crate) fn cospi_poly(r: f64) -> Dd {
    let (p, e) = two_prod(r, r);
    let r2 = Dd::new(p, e);
    let quad = r2.mul(Dd { hi: t::COSPI_C2_HI, lo: t::COSPI_C2_LO });
    let tail = p * p * (t::COSPI_C4 + p * t::COSPI_C6);
    Dd::from_f64(1.0).add(quad).add_f64(tail)
}

/// Exact reduction of `a in [0, 2^23)` to `(K, L)` with `a mod 2 = K + L`,
/// `K in {0, 1}`, `L in [0, 1)`. Every step is exact in double (the
/// integer-cast round trip is `floor` for this non-negative range, minus
/// the dynamic libm call `f64::floor` costs on baseline x86-64).
#[inline]
fn mod2_split(a: f64) -> (bool, f64) {
    let j = a - 2.0 * (((a * 0.5) as u64) as f64);
    if j >= 1.0 {
        (true, j - 1.0)
    } else {
        (false, j)
    }
}

/// `a == trunc(a)` for non-negative `a < 2^53`, via the same exact
/// integer-cast round trip (avoids the `trunc` libm call).
#[inline(always)]
fn is_int_pos(a: f64) -> bool {
    a == ((a as u64) as f64)
}

/// Kernel: `sinpi(|x|)` with the sign of the half-period, for
/// `0 < a < 2^23`, non-integer. Returns (negate, magnitude dd).
pub(crate) fn sinpi_kernel(a: f64) -> (bool, Dd) {
    let (k, l) = mod2_split(a);
    // Mirror symmetry about 1/2 (1 - L is exact by Sterbenz).
    let lp = if l > 0.5 { 1.0 - l } else { l };
    let n = (lp * 512.0) as usize; // as-cast truncation == floor (lp >= 0) // 0..=256
    let r = lp - n as f64 / 512.0; // exact
    let (sh, sl) = t::sinpi_t(n);
    let s = Dd { hi: sh, lo: sl };
    let (ch, cl) = t::cospi_t(n);
    let c = Dd { hi: ch, lo: cl };
    let v = s.mul(cospi_poly(r)).add(c.mul(sinpi_poly(r)));
    (k, v)
}

/// Correctly rounded `sin(pi x)` for `f32`.
///
/// # Example
///
/// ```
/// assert_eq!(rlibm_math::sinpi(0.5f32), 1.0);
/// assert_eq!(rlibm_math::sinpi(1.0f32), 0.0);
/// assert_eq!(rlibm_math::sinpi(0.25f32), 0.70710677f32);
/// assert_eq!(rlibm_math::sinpi(-0.25f32), -0.70710677f32);
/// ```
pub fn sinpi(x: f32) -> f32 {
    if x.is_nan() || x.is_infinite() {
        return f32::NAN;
    }
    if x == 0.0 {
        return x;
    }
    let a = (x as f64).abs();
    if a >= 8_388_608.0 {
        return 0.0; // every |x| >= 2^23 is an integer
    }
    // Tiny inputs: sinpi(x) = pi*x to well below the rounding interval
    // (the paper's first special class, |x| < 1.17e-7, and smaller).
    if a < 2f64.powi(-36) {
        let (p, e) = two_prod(t::PI_HI, x as f64);
        return crate::round::round_dd_f32(Dd::new(p, e + t::PI_LO * x as f64));
    }
    if is_int_pos(a) {
        return 0.0;
    }
    let (k, v) = crate::fast::sinpi_prefix_reduced(a);
    let v = crate::fault::perturb(crate::stats::slot::SINPI, v);
    if crate::round::f32_round_safe(v, crate::fast::SINPI_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::SINPI);
        let neg = (x < 0.0) ^ k;
        return if neg { -v as f32 } else { v as f32 };
    }
    let (k, v) = crate::fast::sinpi_fast_reduced(a);
    if crate::round::f32_round_safe(v, crate::fast::SINPI_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::SINPI);
        let neg = (x < 0.0) ^ k;
        return if neg { -v as f32 } else { v as f32 };
    }
    crate::stats::record_fallback(crate::stats::slot::SINPI);
    let (k, v) = sinpi_kernel(a);
    let neg = (x < 0.0) ^ k;
    crate::round::round_dd_f32(if neg { v.neg() } else { v })
}

/// `sinpi` through the double-double kernel only (no fast path).
pub fn sinpi_dd(x: f32) -> f32 {
    if x.is_nan() || x.is_infinite() {
        return f32::NAN;
    }
    if x == 0.0 {
        return x;
    }
    let a = (x as f64).abs();
    if a >= 8_388_608.0 {
        return 0.0;
    }
    if a < 2f64.powi(-36) {
        let (p, e) = two_prod(t::PI_HI, x as f64);
        return crate::round::round_dd_f32(Dd::new(p, e + t::PI_LO * x as f64));
    }
    if is_int_pos(a) {
        return 0.0;
    }
    let (k, v) = sinpi_kernel(a);
    let neg = (x < 0.0) ^ k;
    crate::round::round_dd_f32(if neg { v.neg() } else { v })
}

/// Correctly rounded `cos(pi x)` for `f32`.
///
/// # Example
///
/// ```
/// assert_eq!(rlibm_math::cospi(0.0f32), 1.0);
/// assert_eq!(rlibm_math::cospi(1.0f32), -1.0);
/// assert_eq!(rlibm_math::cospi(0.5f32), 0.0);
/// assert_eq!(rlibm_math::cospi(0.75f32), -0.70710677f32);
/// ```
/// Kernel: `cospi(|x|)` with the half-period sign, for non-integer,
/// non-half-integer `0 < a < 2^24`. Returns (negate, magnitude dd).
pub(crate) fn cospi_kernel(a: f64) -> (bool, Dd) {
    let (k, l) = mod2_split(a);
    // Mirror about 1/2 with a sign flip: cospi(L) = (-1)^M cospi(L').
    let (m, lp) = if l > 0.5 { (true, 1.0 - l) } else { (false, l) };
    let n = (lp * 512.0) as usize; // as-cast truncation == floor (lp >= 0) // 0..=255 here (lp < 1/2)
    let v = if n == 0 {
        cospi_poly(lp)
    } else {
        // Section 5's monotonic recombination: L' = N'/512 - R.
        let np = n + 1;
        let r = np as f64 / 512.0 - lp; // exact
        let (ch, cl) = t::cospi_t(np);
        let c = Dd { hi: ch, lo: cl };
        let (sh, sl) = t::sinpi_t(np);
        let s = Dd { hi: sh, lo: sl };
        c.mul(cospi_poly(r)).add(s.mul(sinpi_poly(r)))
    };
    (k ^ m, v)
}

pub fn cospi(x: f32) -> f32 {
    if x.is_nan() || x.is_infinite() {
        return f32::NAN;
    }
    let a = (x as f64).abs(); // cospi is even
    if a >= 16_777_216.0 {
        return 1.0; // |x| >= 2^24: every value is an even integer
    }
    // Paper special class 1: |x| < 7.77e-5 rounds to 1.0. (The general
    // path also gets this right; the early exit matches the paper.)
    if a < 7.77e-5 {
        return 1.0;
    }
    // Integers and half-integers (exact +/-1 and 0 results) share one
    // exact test: `2a < 2^25` is exact, and `2a` is an integer iff `a`
    // is a half-multiple. One integer-cast round trip replaces the two
    // `trunc` libm calls and the dd `mod2_split` the old checks cost.
    let a2 = a + a;
    let h = a2 as u64;
    if a2 == h as f64 {
        if h & 1 == 1 {
            return 0.0; // half-integers are exact zeros
        }
        return if h & 2 == 0 { 1.0 } else { -1.0 }; // even/odd integer
    }
    let (neg, v) = crate::fast::cospi_prefix_reduced(a);
    let v = crate::fault::perturb(crate::stats::slot::COSPI, v);
    if crate::round::f32_round_safe(v, crate::fast::COSPI_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::COSPI);
        return if neg { -v as f32 } else { v as f32 };
    }
    let (neg, v) = crate::fast::cospi_fast_reduced(a);
    if crate::round::f32_round_safe(v, crate::fast::COSPI_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::COSPI);
        return if neg { -v as f32 } else { v as f32 };
    }
    crate::stats::record_fallback(crate::stats::slot::COSPI);
    let (neg, v) = cospi_kernel(a);
    crate::round::round_dd_f32(if neg { v.neg() } else { v })
}

/// `cospi` through the double-double kernel only (no fast path).
pub fn cospi_dd(x: f32) -> f32 {
    if x.is_nan() || x.is_infinite() {
        return f32::NAN;
    }
    let a = (x as f64).abs();
    if a >= 16_777_216.0 {
        return 1.0;
    }
    if a < 7.77e-5 {
        return 1.0;
    }
    let a2 = a + a;
    let h = a2 as u64;
    if a2 == h as f64 {
        if h & 1 == 1 {
            return 0.0;
        }
        return if h & 2 == 0 { 1.0 } else { -1.0 };
    }
    let (neg, v) = cospi_kernel(a);
    crate::round::round_dd_f32(if neg { v.neg() } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_values() {
        assert!(sinpi(f32::NAN).is_nan());
        assert!(sinpi(f32::INFINITY).is_nan());
        assert!(cospi(f32::NEG_INFINITY).is_nan());
        assert_eq!(sinpi(0.0).to_bits(), 0);
        assert_eq!(sinpi(-0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(cospi(0.0), 1.0);
    }

    #[test]
    fn integers_and_half_integers() {
        for n in -10..=10i32 {
            assert_eq!(sinpi(n as f32), 0.0, "sinpi({n})");
            let want = if n.rem_euclid(2) == 0 { 1.0 } else { -1.0 };
            assert_eq!(cospi(n as f32), want, "cospi({n})");
        }
        assert_eq!(sinpi(0.5), 1.0);
        assert_eq!(sinpi(1.5), -1.0);
        assert_eq!(sinpi(2.5), 1.0);
        assert_eq!(sinpi(-0.5), -1.0);
        assert_eq!(cospi(0.5), 0.0);
        assert_eq!(cospi(7.5), 0.0);
        assert_eq!(cospi(-2.5), 0.0);
    }

    #[test]
    fn large_inputs() {
        assert_eq!(sinpi(2f32.powi(23)), 0.0);
        assert_eq!(cospi(2f32.powi(24)), 1.0);
        // 2^23 + 1 is an odd integer representable in f32.
        let odd = 8_388_609.0f32;
        assert_eq!(cospi(odd), -1.0);
        assert_eq!(sinpi(odd), 0.0);
    }

    #[test]
    fn symmetry() {
        for &x in &[0.1f32, 0.37, 1.21, 100.63, 0.499] {
            assert_eq!(sinpi(-x), -sinpi(x), "odd at {x}");
            assert_eq!(cospi(-x), cospi(x), "even at {x}");
        }
    }

    #[test]
    fn quarter_values() {
        let s = 0.70710677f32; // RN(sqrt(2)/2)
        assert_eq!(sinpi(0.25), s);
        assert_eq!(sinpi(0.75), s);
        assert_eq!(sinpi(1.25), -s);
        assert_eq!(cospi(0.25), s);
        assert_eq!(cospi(0.75), -s);
        assert_eq!(cospi(1.75), s);
    }

    #[test]
    fn pythagorean_identity_at_kernel_level() {
        for &r in &[1e-4f64, 1e-3, 1.9e-3] {
            let s = sinpi_poly(r);
            let c = cospi_poly(r);
            let id = s.mul(s).add(c.mul(c));
            assert!((id.to_f64() - 1.0).abs() < 1e-28, "r = {r}");
        }
    }

    #[test]
    fn against_host() {
        let mut x = 0.0001f32;
        while x < 1000.0 {
            let hs = (core::f64::consts::PI * x as f64).sin();
            let ours = sinpi(x) as f64;
            // Host error grows with |x| through the pi multiplication.
            let tol = 1e-7 * hs.abs() + (x as f64) * 1e-15 + 1e-12;
            assert!((ours - hs).abs() <= tol, "sinpi({x}): {ours} vs {hs}");
            x *= 1.37;
        }
    }

    #[test]
    fn paper_overview_inputs() {
        // The two inputs from Figure 2 map to the same reduced input and
        // must both be correctly rounded.
        let x1 = 1.953_126_9e-3_f32;
        let x2 = 2.148_437_7e-2_f32;
        let y1 = sinpi(x1);
        let y2 = sinpi(x2);
        // Cross-check against the double computation of sin(pi x).
        assert!((y1 as f64 - (core::f64::consts::PI * x1 as f64).sin()).abs() < 5e-10);
        assert!((y2 as f64 - (core::f64::consts::PI * x2 as f64).sin()).abs() < 4e-9);
    }
}
