//! The exponential family: `exp`, `exp2`, `exp10`.
//!
//! All three share one kernel. The input is reduced to
//! `x = (k/64)·ln2 + r` with `|r| <= ln2/128`, so that
//! `f(x) = 2^(k div 64) · 2^((k mod 64)/64) · e^r`: a 64-entry
//! double-double table covers the middle factor and a degree-7 Taylor
//! polynomial (head in double-double) covers `e^r`. This is the paper's
//! table-driven reduction for exp/exp2/exp10 with positive and negative
//! reduced inputs handled uniformly.

use crate::dd::{two_prod, two_sum, Dd};
use crate::tables as t;

/// `2^i` as a double, total over every integer: exact for
/// `i in [-1074, 1023]` (subnormal powers included), saturating to
/// `inf` / `0` beyond. The kernels' reductions keep `i` well inside the
/// normal range for in-domain inputs, but inputs near the f32 underflow
/// edge (e.g. `exp2(-150.9)`) legitimately request subnormal scales, and
/// the batched pipeline evaluates garbage lanes that can request
/// anything — so the function must not have a precondition.
#[inline]
pub(crate) fn pow2i(i: i64) -> f64 {
    if i > 1023 {
        f64::INFINITY
    } else if i >= -1022 {
        f64::from_bits(((i + 1023) as u64) << 52)
    } else if i >= -1074 {
        f64::from_bits(1u64 << (i + 1074))
    } else {
        0.0
    }
}

/// `e^r` for `|r| <= ln2/128 + slack`, as a double-double.
#[inline]
fn exp_poly(r: Dd) -> Dd {
    let rh = r.hi;
    // Tail: r^3/6 + ... + r^7/5040, evaluated in plain double on the hi
    // component (absolute value <= 2^-24; its rounding error ~2^-77).
    let tail = rh * rh * rh
        * (1.0 / 6.0
            + rh * (1.0 / 24.0
                + rh * (1.0 / 120.0 + rh * (1.0 / 720.0 + rh * (1.0 / 5040.0)))));
    // Head: 1 + r + r^2/2 in double-double. The cross term 2*rh*r.lo of
    // the square is at ~2^-67 and must be kept.
    let (p, e) = two_prod(rh, rh);
    let half_sq = Dd::new(0.5 * p, 0.5 * (e + 2.0 * rh * r.lo));
    Dd::from_f64(1.0).add(r).add(half_sq).add_f64(tail)
}

/// `2^(k64/64) * e^r` with `k64` in units of 1/64 and `r` the residual.
#[inline]
fn exp_combined(k64: i64, r: Dd) -> Dd {
    let i = k64.div_euclid(64);
    let j = k64.rem_euclid(64) as usize;
    let (th, tl) = t::exp2_64(j);
    let v = Dd { hi: th, lo: tl }.mul(exp_poly(r));
    v.scale(pow2i(i))
}

/// Kernel: `e^x` as a double-double. `x` must be finite with
/// `|x| <= 700` (callers clamp to their representation's range first).
pub(crate) fn exp_kernel(x: f64) -> Dd {
    debug_assert!(x.is_finite() && x.abs() <= 700.0);
    // k = round(x * 64/ln2): |k| <= 64645 < 2^17; the 39-bit LN2_64_HI
    // keeps k * LN2_64_HI exact up to 2^14, so the clamp range matters.
    let k = (x * (64.0 * t::LOG2_E)).round_ties_even() as i64;
    // r_hi = x - k*LN2_64_HI is exact (both operands on a coarse shared
    // grid, difference representable); the two tail corrections are tiny.
    let kf = k as f64;
    let r_hi = x - kf * t::LN2_64_HI;
    let r = Dd::new(r_hi, -kf * t::LN2_64_MID).add_f64(-kf * t::LN2_64_LO);
    exp_combined(k, r)
}

/// Kernel: `2^x`. `|x| <= 1100`.
pub(crate) fn exp2_kernel(x: f64) -> Dd {
    debug_assert!(x.is_finite() && x.abs() <= 1100.0);
    let k = (x * 64.0).round_ties_even() as i64;
    // t = x - k/64 is exact: both are multiples of 2^-64-ish grids and
    // the difference is tiny.
    let tt = x - (k as f64) / 64.0;
    // r = t * ln2 as a double-double (t exact, LN2 in two parts).
    let (p, e) = two_prod(tt, t::LN2_HI);
    let r = Dd::new(p, e + tt * t::LN2_LO);
    exp_combined(k, r)
}

/// Kernel: `10^x`. `|x| <= 330`.
pub(crate) fn exp10_kernel(x: f64) -> Dd {
    debug_assert!(x.is_finite() && x.abs() <= 330.0);
    let k = (x * (64.0 * t::LOG2_10)).round_ties_even() as i64;
    let kf = k as f64;
    // u = x*ln10 - k*(ln2/64), double-double with ~7 bits of cancellation
    // absorbed by the ~2^-100 component error.
    let (p, e) = two_prod(x, t::LN10_HI);
    let a = Dd::new(p, e + x * t::LN10_LO);
    let b_hi = kf * t::LN2_64_HI; // exact only for |k| < 2^14; see below
    let (s, se) = two_sum(a.hi, -b_hi);
    let lo = se + a.lo - kf * t::LN2_64_MID - kf * t::LN2_64_LO;
    let r = Dd::new(s, lo);
    exp_combined(k, r)
}

/// Correctly rounded `e^x` for `f32`.
///
/// # Example
///
/// ```
/// assert_eq!(rlibm_math::exp(0.0f32), 1.0);
/// assert_eq!(rlibm_math::exp(1.0f32), 2.7182817f32);
/// assert_eq!(rlibm_math::exp(f32::NEG_INFINITY), 0.0);
/// ```
pub fn exp(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x > 89.0 {
        return f32::INFINITY; // exp(89) > 2^128: past the overflow boundary
    }
    if x < -106.0 {
        return 0.0; // exp(-106) < 2^-150: rounds to zero
    }
    let xd = x as f64;
    let y = crate::fault::perturb(crate::stats::slot::EXP, crate::fast::exp_prefix(xd));
    if crate::round::f32_round_safe(y, crate::fast::EXP_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::EXP);
        return y as f32;
    }
    let y = crate::fast::exp_fast(xd);
    if crate::round::f32_round_safe(y, crate::fast::EXP_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::EXP);
        return y as f32;
    }
    crate::stats::record_fallback(crate::stats::slot::EXP);
    crate::round::round_dd_f32(exp_kernel(xd))
}

/// `exp` through the double-double kernel only (no fast path).
pub fn exp_dd(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x > 89.0 {
        return f32::INFINITY;
    }
    if x < -106.0 {
        return 0.0;
    }
    crate::round::round_dd_f32(exp_kernel(x as f64))
}

/// Correctly rounded `2^x` for `f32`.
///
/// # Example
///
/// ```
/// assert_eq!(rlibm_math::exp2(10.0f32), 1024.0);
/// assert_eq!(rlibm_math::exp2(-1.5f32), 0.35355338f32);
/// ```
pub fn exp2(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x >= 128.0 {
        return f32::INFINITY;
    }
    if x < -151.0 {
        return 0.0;
    }
    let xd = x as f64;
    let y = crate::fault::perturb(crate::stats::slot::EXP2, crate::fast::exp2_prefix(xd));
    if crate::round::f32_round_safe(y, crate::fast::EXP2_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::EXP2);
        return y as f32;
    }
    let y = crate::fast::exp2_fast(xd);
    if crate::round::f32_round_safe(y, crate::fast::EXP2_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::EXP2);
        return y as f32;
    }
    crate::stats::record_fallback(crate::stats::slot::EXP2);
    crate::round::round_dd_f32(exp2_kernel(xd))
}

/// `exp2` through the double-double kernel only (no fast path).
pub fn exp2_dd(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x >= 128.0 {
        return f32::INFINITY;
    }
    if x < -151.0 {
        return 0.0;
    }
    crate::round::round_dd_f32(exp2_kernel(x as f64))
}

/// Correctly rounded `10^x` for `f32`.
///
/// # Example
///
/// ```
/// assert_eq!(rlibm_math::exp10(3.0f32), 1000.0);
/// assert_eq!(rlibm_math::exp10(-1.0f32), 0.1f32);
/// ```
pub fn exp10(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x > 38.6 {
        return f32::INFINITY; // 10^38.6 > 2^128
    }
    if x < -45.5 {
        return 0.0; // 10^-45.5 < 2^-150
    }
    let xd = x as f64;
    let y = crate::fault::perturb(crate::stats::slot::EXP10, crate::fast::exp10_prefix(xd));
    if crate::round::f32_round_safe(y, crate::fast::EXP10_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::EXP10);
        return y as f32;
    }
    let y = crate::fast::exp10_fast(xd);
    if crate::round::f32_round_safe(y, crate::fast::EXP10_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::EXP10);
        return y as f32;
    }
    crate::stats::record_fallback(crate::stats::slot::EXP10);
    crate::round::round_dd_f32(exp10_kernel(xd))
}

/// `exp10` through the double-double kernel only (no fast path).
pub fn exp10_dd(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x > 38.6 {
        return f32::INFINITY;
    }
    if x < -45.5 {
        return 0.0;
    }
    crate::round::round_dd_f32(exp10_kernel(x as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_values() {
        assert!(exp(f32::NAN).is_nan());
        assert_eq!(exp(f32::INFINITY), f32::INFINITY);
        assert_eq!(exp(f32::NEG_INFINITY), 0.0);
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp2(0.0), 1.0);
        assert_eq!(exp10(0.0), 1.0);
        assert_eq!(exp2(-0.0), 1.0);
    }

    #[test]
    fn exact_powers() {
        for k in -140..=127 {
            // (f32::powi underflows internally for subnormal results;
            // compute the expected value through f64.)
            assert_eq!(exp2(k as f32), 2f64.powi(k) as f32, "2^{k}");
        }
        for k in -10..=10 {
            let want = 10f64.powi(k) as f32;
            assert_eq!(exp10(k as f32), want, "10^{k}");
        }
    }

    #[test]
    fn overflow_and_underflow_boundaries() {
        assert_eq!(exp(88.8f32), f32::INFINITY);
        assert_eq!(exp(-104.0f32), 0.0);
        // Largest x with finite exp: ~88.722839.
        assert!(exp(88.72f32).is_finite());
        // Smallest x with nonzero exp: ~-103.97.
        assert!(exp(-103.9f32) > 0.0);
        assert_eq!(exp2(128.0f32), f32::INFINITY);
        // 2^127.9 = 3.17e38 is still below f32::MAX = 2^128*(1-2^-24).
        assert!(exp2(127.9f32).is_finite());
        assert_eq!(exp2(-149.0f32), f32::from_bits(1));
        assert_eq!(exp2(-151.0f32), 0.0);
    }

    #[test]
    fn pow2i_is_total() {
        assert_eq!(pow2i(0), 1.0);
        assert_eq!(pow2i(-1022), 2f64.powi(-1022));
        assert_eq!(pow2i(1023), 2f64.powi(1023));
        // Overflow clamps to infinity instead of shifting garbage into
        // the exponent field.
        assert_eq!(pow2i(1024), f64::INFINITY);
        assert_eq!(pow2i(i64::MAX), f64::INFINITY);
        // The subnormal branch is exact down to the last f64 bit...
        assert_eq!(pow2i(-1023), 2f64.powi(-1023));
        assert_eq!(pow2i(-1074), f64::from_bits(1));
        // ...and everything below flushes to a clean zero.
        assert_eq!(pow2i(-1075), 0.0);
        assert_eq!(pow2i(i64::MIN), 0.0);
    }

    #[test]
    fn f32_underflow_edge() {
        // Around the f32 subnormal floor 2^-149: the smallest results the
        // exp family can produce, where a non-total pow2i used to be one
        // wide batched k away from undefined behavior.
        assert_eq!(exp2(-149.5f32), f32::from_bits(1)); // 2^-149.5 ~ 0.707*2^-149
        assert_eq!(exp2(-150.0f32), 0.0); // exact tie with 0: even mantissa wins
        assert_eq!(exp2(-149.0f32), f32::from_bits(1));
        assert!(exp2(-148.99f32) >= f32::from_bits(1));
        // exp at its own floor: exp(-103.98) < 2^-150 < exp(-103.97).
        assert_eq!(exp(-103.99f32), 0.0);
        assert_eq!(exp(-103.9f32), f32::from_bits(1));
    }

    #[test]
    fn subnormal_results() {
        // exp2 of -148.5: sqrt(2)*2^-149 -> subnormal f32.
        let y = exp2(-148.5f32);
        assert!(y > 0.0 && y < f32::MIN_POSITIVE);
    }

    #[test]
    fn against_host_on_grid() {
        // The host exp is ~1 ulp; agree within 1 f32 ulp everywhere.
        let mut x = -80.0f32;
        while x < 80.0 {
            let ours = exp(x) as f64;
            let host = (x as f64).exp();
            assert!(
                (ours - host).abs() <= host * 1e-7,
                "exp({x}): {ours} vs {host}"
            );
            x += 0.37;
        }
    }

    #[test]
    fn kernel_accuracy_vs_dd_identity() {
        // e^a * e^-a == 1 to dd precision.
        for &a in &[0.5f64, 3.3, 40.0, -17.2] {
            let p = exp_kernel(a);
            let q = exp_kernel(-a);
            let prod = p.mul(q);
            assert!((prod.to_f64() - 1.0).abs() < 1e-29, "a = {a}");
        }
    }
}
