//! The ten correctly rounded `f32` functions of the paper's Table 1.

pub mod exp;
pub mod hyper;
pub mod log;
pub mod trig;

pub use exp::{exp, exp10, exp2};
pub use hyper::{cosh, sinh};
pub use log::{ln, log10, log2};
pub use trig::{cospi, sinpi};
