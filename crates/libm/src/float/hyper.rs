//! Hyperbolic functions: `sinh`, `cosh`.
//!
//! Output compensation for these needs *two* elementary function values —
//! the paper's Algorithm 2 case: `sinh(x) = (A - 1/A)/2` and
//! `cosh(x) = (A + 1/A)/2` with `A = e^x`. Above `|x| = 2^-8` the
//! subtraction cancels at most ~8 bits, which the double-double carries
//! comfortably; below it `sinh` switches to its odd Taylor series (no
//! cancellation, relative accuracy down to the smallest subnormals).

use crate::dd::{two_prod, Dd};
use crate::float::exp::exp_kernel;

/// Kernel: `sinh(x)` for finite `|x| <= 91`.
pub(crate) fn sinh_kernel(x: f64) -> Dd {
    let a = x.abs();
    let v = if a < 0.00390625 {
        // |x| < 2^-8: x + x^3/6 + x^5/120 + x^7/5040, tail in plain double.
        let x2 = a * a;
        let tail = a * x2 * (1.0 / 6.0 + x2 * (1.0 / 120.0 + x2 * (1.0 / 5040.0)));
        Dd::new(a, tail)
    } else {
        let big = exp_kernel(a);
        let inv = big.recip();
        big.add(inv.neg()).scale(0.5)
    };
    if x < 0.0 {
        v.neg()
    } else {
        v
    }
}

/// Kernel: `cosh(x)` for finite `|x| <= 91`.
pub(crate) fn cosh_kernel(x: f64) -> Dd {
    let a = x.abs();
    if a < 0.00390625 {
        // 1 + x^2/2 + x^4/24 (x^2/2 in double-double, the rest tiny).
        let (p, e) = two_prod(a, a);
        let x2 = Dd::new(p, e);
        let head = Dd::from_f64(1.0).add(x2.scale(0.5));
        head.add_f64(p * p * (1.0 / 24.0))
    } else {
        let big = exp_kernel(a);
        let inv = big.recip();
        big.add(inv).scale(0.5)
    }
}

/// Correctly rounded hyperbolic sine for `f32`.
///
/// # Example
///
/// ```
/// assert_eq!(rlibm_math::sinh(0.0f32), 0.0);
/// assert_eq!(rlibm_math::sinh(-0.0f32), -0.0);
/// assert_eq!(rlibm_math::sinh(1.0f32), 1.1752012f32);
/// assert_eq!(rlibm_math::sinh(f32::INFINITY), f32::INFINITY);
/// ```
pub fn sinh(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x == 0.0 {
        return x; // preserves the zero's sign
    }
    if x > 90.0 {
        return f32::INFINITY; // sinh(90) ~ e^90/2 > 2^128
    }
    if x < -90.0 {
        return f32::NEG_INFINITY;
    }
    let xd = x as f64;
    // |x| < 2^-12: sinh(x) - x = x³/6 + ... < (2/3)·halfulp(x) for every
    // f32 here (x = m·2^e, e <= -13 gives x³/6 = m³·2^(3e)/6 and
    // halfulp(x) = 2^(e-25) for normals, larger relatively for
    // subnormals), so sinh(x) rounds to x itself.
    if xd.abs() < 2f64.powi(-12) {
        return x;
    }
    let y = crate::fault::perturb(crate::stats::slot::SINH, crate::fast::sinh_prefix(xd));
    if crate::round::f32_round_safe(y, crate::fast::SINH_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::SINH);
        return y as f32;
    }
    let y = crate::fast::sinh_fast(xd);
    if crate::round::f32_round_safe(y, crate::fast::SINH_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::SINH);
        return y as f32;
    }
    crate::stats::record_fallback(crate::stats::slot::SINH);
    crate::round::round_dd_f32(sinh_kernel(xd))
}

/// `sinh` through the double-double kernel only (no fast path).
pub fn sinh_dd(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x == 0.0 {
        return x;
    }
    if x > 90.0 {
        return f32::INFINITY;
    }
    if x < -90.0 {
        return f32::NEG_INFINITY;
    }
    crate::round::round_dd_f32(sinh_kernel(x as f64))
}

/// Correctly rounded hyperbolic cosine for `f32`.
///
/// # Example
///
/// ```
/// assert_eq!(rlibm_math::cosh(0.0f32), 1.0);
/// assert_eq!(rlibm_math::cosh(1.0f32), 1.5430807f32);
/// assert_eq!(rlibm_math::cosh(f32::NEG_INFINITY), f32::INFINITY);
/// ```
pub fn cosh(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x.abs() > 90.0 {
        return f32::INFINITY;
    }
    let xd = x as f64;
    // cosh(x) - 1 = x²/2 + ... < 2^-27 << halfulp(1) = 2^-24: rounds to 1.
    if xd.abs() < 2f64.powi(-13) {
        return 1.0;
    }
    let y = crate::fault::perturb(crate::stats::slot::COSH, crate::fast::cosh_prefix(xd));
    if crate::round::f32_round_safe(y, crate::fast::COSH_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::COSH);
        return y as f32;
    }
    let y = crate::fast::cosh_fast(xd);
    if crate::round::f32_round_safe(y, crate::fast::COSH_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::COSH);
        return y as f32;
    }
    crate::stats::record_fallback(crate::stats::slot::COSH);
    crate::round::round_dd_f32(cosh_kernel(xd))
}

/// `cosh` through the double-double kernel only (no fast path).
pub fn cosh_dd(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x.abs() > 90.0 {
        return f32::INFINITY;
    }
    crate::round::round_dd_f32(cosh_kernel(x as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_values() {
        assert!(sinh(f32::NAN).is_nan());
        assert!(cosh(f32::NAN).is_nan());
        assert_eq!(sinh(f32::INFINITY), f32::INFINITY);
        assert_eq!(sinh(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert_eq!(cosh(f32::NEG_INFINITY), f32::INFINITY);
        assert_eq!(cosh(0.0), 1.0);
        assert_eq!(sinh(0.0).to_bits(), 0);
        assert_eq!(sinh(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn odd_even_symmetry() {
        for &x in &[0.001f32, 0.1, 1.7, 10.0, 50.0] {
            assert_eq!(sinh(-x), -sinh(x));
            assert_eq!(cosh(-x), cosh(x));
        }
    }

    #[test]
    fn tiny_inputs_are_linear() {
        // sinh(x) rounds to x for tiny x; cosh rounds to 1.
        for &x in &[1e-20f32, 2e-30, f32::from_bits(1), f32::MIN_POSITIVE] {
            assert_eq!(sinh(x), x, "sinh({x:e})");
            assert_eq!(cosh(x), 1.0);
        }
    }

    #[test]
    fn overflow_boundary() {
        assert_eq!(sinh(89.5f32), f32::INFINITY);
        assert!(sinh(88.0f32).is_finite());
        assert_eq!(cosh(89.5f32), f32::INFINITY);
    }

    #[test]
    fn identity_cosh2_minus_sinh2() {
        // cosh^2 - sinh^2 == 1, checked in dd at kernel level.
        for &x in &[0.5f64, 2.0, 10.5, 0.002] {
            let s = sinh_kernel(x);
            let c = cosh_kernel(x);
            let id = c.mul(c).add(s.mul(s).neg());
            assert!((id.to_f64() - 1.0).abs() < 1e-25, "x = {x}");
        }
    }

    #[test]
    fn against_host() {
        let mut x = -85.0f32;
        while x < 85.0 {
            let hs = (x as f64).sinh();
            let hc = (x as f64).cosh();
            assert!(((sinh(x) as f64) - hs).abs() <= hs.abs() * 1e-7 + 1e-45, "sinh({x})");
            assert!(((cosh(x) as f64) - hc).abs() <= hc * 1e-7, "cosh({x})");
            x += 0.73;
        }
    }
}
