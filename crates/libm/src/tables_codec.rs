//! Bit-packing codec for the kernel lookup tables.
//!
//! Every table column (hi or lo of a double-double pair) uses a narrow
//! slice of the f64 exponent range, and the hi column is always
//! non-negative, so a full entry packs into **15 bytes** instead of 16:
//!
//! ```text
//! bits   0..52   hi mantissa (52 bits)
//! bits  52..56   hi exponent code (4 bits; 0 = value is +0.0,
//!                otherwise biased exponent = hi_base + code - 1)
//! bits  56..108  lo mantissa (52 bits)
//! bits 108..112  lo exponent code (4 bits, same scheme vs lo_base)
//! bit  112       lo sign
//! bits 113..120  unused (7 bits of padding to the byte boundary)
//! ```
//!
//! Entries live at a fixed 15-byte stride, so both the scalar accessors
//! and the AVX2 gather path decode with two unaligned u64 loads (at
//! byte offsets `15n` and `15n + 7`) plus fixed shifts and masks —
//! no per-entry branching beyond the zero-code select. Decoding is
//! exact: the packed form stores every mantissa bit, so unpack(pack(x))
//! reproduces `x` bit for bit (the property `tests/table_packing.rs`
//! sweeps).
//!
//! This file is compiled twice on purpose: as `crate::tables_codec` in
//! the runtime library and via `include!` inside `build.rs`, so the
//! packer and unpacker can never drift apart. Keep it free of `use
//! crate::...` items.

/// Bytes per packed table entry.
pub const PACKED_STRIDE: usize = 15;

/// Mask of the 52 mantissa bits.
pub const MANT52_MASK: u64 = (1 << 52) - 1;

/// Mask selecting a packed hi word out of the u64 loaded at offset `15n`
/// (56 low bits).
pub const HI_WORD_MASK: u64 = (1 << 56) - 1;

/// Mask selecting a packed lo word out of the u64 loaded at offset
/// `15n + 7` (57 low bits).
pub const LO_WORD_MASK: u64 = (1 << 57) - 1;

/// Decodes a 56-bit packed hi word (no sign) into f64 bits.
#[inline(always)]
pub fn decode_hi(word: u64, base: u64) -> u64 {
    let code = (word >> 52) & 0xF;
    if code == 0 {
        0
    } else {
        ((base + code - 1) << 52) | (word & MANT52_MASK)
    }
}

/// Decodes a 57-bit packed lo word (sign in bit 56) into f64 bits.
#[inline(always)]
pub fn decode_lo(word: u64, base: u64) -> u64 {
    let code = (word >> 52) & 0xF;
    if code == 0 {
        0
    } else {
        ((word >> 56) << 63) | ((base + code - 1) << 52) | (word & MANT52_MASK)
    }
}

/// Unpacks entry `idx` of a packed table into its `(hi, lo)` pair.
///
/// One bounds check per entry (on the 15-byte chunk slice; the two
/// fixed-offset u64 loads inside it are check-free). The hot trig
/// kernels do two of these per call, so the single-check shape matters.
#[inline(always)]
pub fn unpack_entry(bytes: &[u8], idx: usize, hi_base: u64, lo_base: u64) -> (f64, f64) {
    let off = idx * PACKED_STRIDE;
    let chunk = &bytes[off..off + PACKED_STRIDE];
    let mut b0 = [0u8; 8];
    b0.copy_from_slice(&chunk[..8]);
    let mut b1 = [0u8; 8];
    b1.copy_from_slice(&chunk[7..15]);
    let hi_word = u64::from_le_bytes(b0) & HI_WORD_MASK;
    let lo_word = u64::from_le_bytes(b1) & LO_WORD_MASK;
    (
        f64::from_bits(decode_hi(hi_word, hi_base)),
        f64::from_bits(decode_lo(lo_word, lo_base)),
    )
}

/// Unpacks only the hi half of entry `idx`: one u64 load at offset
/// `15 * idx` plus the hi decode. Tiers whose certified error band
/// dwarfs the lo words' ~2^-53 contribution (the trig prefix tier) use
/// this to halve their table traffic.
#[inline(always)]
pub fn unpack_hi(bytes: &[u8], idx: usize, hi_base: u64) -> f64 {
    let off = idx * PACKED_STRIDE;
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    f64::from_bits(decode_hi(u64::from_le_bytes(b) & HI_WORD_MASK, hi_base))
}

/// Encodes f64 bits into a 56-bit hi word, or `None` if the value does
/// not fit (negative, non-finite, subnormal, or an exponent outside the
/// 15-code window starting at `base`).
#[inline]
pub fn encode_hi(bits: u64, base: u64) -> Option<u64> {
    if bits == 0 {
        return Some(0);
    }
    if bits >> 63 != 0 {
        return None; // hi columns are non-negative by construction
    }
    let exp = (bits >> 52) & 0x7FF;
    if exp == 0 || exp == 0x7FF || exp < base || exp > base + 14 {
        return None;
    }
    Some(((exp - base + 1) << 52) | (bits & MANT52_MASK))
}

/// Encodes f64 bits into a 57-bit lo word (sign in bit 56); `None` when
/// the exponent misses the code window. `-0.0` is rejected — zeros pack
/// as code 0 with a clear sign so the decoder's zero select is exact.
#[inline]
pub fn encode_lo(bits: u64, base: u64) -> Option<u64> {
    if bits == 0 {
        return Some(0);
    }
    let exp = (bits >> 52) & 0x7FF;
    if exp == 0 || exp == 0x7FF || exp < base || exp > base + 14 {
        return None;
    }
    Some(((bits >> 63) << 56) | ((exp - base + 1) << 52) | (bits & MANT52_MASK))
}

/// Packs one `(hi, lo)` pair into its 15-byte little-endian form.
#[inline]
pub fn pack_entry(hi: f64, lo: f64, hi_base: u64, lo_base: u64) -> Option<[u8; PACKED_STRIDE]> {
    let hw = encode_hi(hi.to_bits(), hi_base)?;
    let lw = encode_lo(lo.to_bits(), lo_base)?;
    let v = (hw as u128) | ((lw as u128) << 56);
    let le = v.to_le_bytes();
    let mut out = [0u8; PACKED_STRIDE];
    out.copy_from_slice(&le[..PACKED_STRIDE]);
    Some(out)
}
