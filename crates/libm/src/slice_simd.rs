//! AVX2 implementations of the staged slice pipeline (`simd` feature).
//!
//! Every stage of [`super`]'s structure-of-arrays pipeline — domain
//! classification + widen, range reduction, table gather, Horner
//! evaluation, and the bit-pattern round-safety test — is rewritten here
//! with explicit `core::arch::x86_64` intrinsics, four f64 lanes at a
//! time over the same 64-lane chunks.
//!
//! # Bit-identity contract
//!
//! The scalar chunk functions in `super` remain the **certified
//! reference**; this module must produce bit-identical slice outputs
//! (`tests/two_tier_identity.rs` runs with the feature on and off and
//! pins one shared checksum). That holds because every lane executes the
//! *same IEEE-754 operation sequence* as the scalar code:
//!
//! * `_mm256_{add,sub,mul,div}_pd` round exactly like the corresponding
//!   scalar f64 ops (no FMA contraction — the scalar kernels use plain
//!   mul/add, and so does this module);
//! * `_mm256_cvtpd_epi32` rounds with the MXCSR mode, which Rust leaves
//!   at round-to-nearest-even — exactly `f64::round_ties_even` followed
//!   by the integral cast the scalar reductions perform;
//! * `_mm256_cvttpd_epi32` truncates, matching `.floor() as usize` on
//!   the non-negative values the trig reductions feed it;
//! * table gathers read the identical `(hi, lo)` entries, and the
//!   branchy scalar folds (`j == 128` in the log reduction, the trig
//!   mirror folds, the sinh/cosh Taylor-vs-exp split) become mask
//!   blends where each lane selects a value computed by the same ops the
//!   scalar branch would have run.
//!
//! Out-of-domain lanes get the same placeholder (`1.0`) the scalar
//! widen stage uses, so the staged arithmetic stays total and the
//! exponents handed to [`pow2i4`] stay deep inside the normal f64 range
//! (the per-function domain bounds cap `|k/64|` near 155 — see the
//! scalar `fast` kernels' preconditions).
//!
//! The round-safety test vectorizes as a 64-bit lane mask
//! ([`f32_round_safe_mask`], four integer compares per group). The tier
//! escalation mirrors the scalar chunk driver: every stage kernel is
//! monomorphized over `PREFIX` (truncated vs full-degree Horner — the
//! reduction, gather, and recombination ops are tier-invariant), the
//! prefix stage runs first against the wide prefix band, and chunks
//! with surviving in-domain lanes re-run the `PREFIX = false` stage
//! against the narrow full band. Lanes that fail both bands fall
//! through to the scalar progressive entry in the resolve loop, counted
//! by the existing `runtime.slice.f32.rescalar_lanes` counter — same
//! fallback semantics, same telemetry, as the scalar driver — and
//! prefix/full acceptances land batched in the same `runtime.tier.*`
//! counters the scalar front ends use.
//!
//! The `fault` feature's injection sites live in the scalar front ends;
//! like the scalar staged pipeline, the SIMD stages bypass them, and
//! rescalar lanes re-enter the hooked scalar path.

use super::LANES;
use crate::fast;
use crate::tables as t;
use crate::tables_codec as codec;
use core::arch::x86_64::*;

/// Runtime gate for the AVX2 path (cached by std's feature detection).
/// The dispatchers in `super` fall back to the scalar driver when this
/// returns false, so a `simd` build still runs correctly on pre-AVX2
/// hardware.
#[inline]
pub(super) fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// A staged chunk kernel: classifies lanes against the function's
/// fast-path domain (returned as a bitmask, lane `i` = bit `i`), widens
/// in-domain lanes (placeholder 1.0 elsewhere), and writes the staged
/// plain-double results. Only 4-lane groups whose bit is set in
/// `groups` are processed — escalations pass just the groups that
/// contain rejected lanes, so a one-lane escalation re-runs one group,
/// not sixteen; skipped groups keep their previous `y` values and
/// report dom bit 0.
///
/// # Safety
/// Requires AVX2 (checked by the dispatchers via [`avx2_available`]).
type StageFn = unsafe fn(&[f32; LANES], &mut [f64; LANES], u16) -> u64;

/// Sign-bit mask for f64 negation/abs.
const SIGN: u64 = 1u64 << 63;

/// Shared SIMD chunk driver: prefix stage, vector safety mask against
/// the wide prefix band, per-lane resolve. Chunks whose in-domain lanes
/// escape the prefix band re-run the full-degree stage and re-test
/// against the narrow full band; lanes that fail both (and special
/// lanes) re-enter the scalar progressive entry. Mirrors `super::drive`
/// exactly, including the per-tier counter accounting.
#[allow(clippy::too_many_arguments)] // tier plumbing: two staged kernels + their bands
fn drive_simd(
    xs: &[f32],
    out: &mut [f32],
    prefix_stage: StageFn,
    prefix_band: u64,
    full_stage: StageFn,
    band: u64,
    slot: usize,
    scalar: fn(f32) -> f32,
) {
    assert_eq!(xs.len(), out.len(), "eval_slice: input/output length mismatch");
    debug_assert!(avx2_available());
    let mut y = [0.0f64; LANES];
    let mut xpad = [1.0f32; LANES];
    let mut chunks = 0u64;
    let mut rescalar = 0u64;
    let mut prefix_hits = 0u64;
    let mut full_hits = 0u64;
    for (xc, oc) in xs.chunks(LANES).zip(out.chunks_mut(LANES)) {
        chunks += 1;
        let n = xc.len();
        let live = if n == LANES { u64::MAX } else { (1u64 << n) - 1 };
        let xfull: &[f32; LANES] = if n == LANES {
            // SAFETY: chunks(LANES) yields exactly LANES elements here.
            unsafe { &*xc.as_ptr().cast() }
        } else {
            // Final partial chunk: pad with the in-domain-agnostic
            // placeholder; pad lanes are never read back.
            xpad[..n].copy_from_slice(xc);
            &xpad
        };
        // SAFETY: AVX2 presence is checked once by the dispatcher.
        let dom = unsafe { prefix_stage(xfull, &mut y, u16::MAX) };
        let safe = unsafe { f32_round_safe_mask(&y, prefix_band) };
        let ok = dom & safe & live;
        prefix_hits += u64::from(ok.count_ones());
        for i in 0..n {
            if (ok >> i) & 1 == 1 {
                oc[i] = y[i] as f32;
            } else if (dom >> i) & 1 == 0 {
                rescalar += 1;
                oc[i] = super::rescalar_resolve(scalar, xc[i]);
            }
        }
        // In-domain lanes the prefix band rejected: escalate the chunk
        // through the full-degree stage (rare — the prefix bands are
        // sized so well under 1% of in-domain lanes land here).
        let pending = dom & !safe & live;
        if pending != 0 {
            // Re-run only the 4-lane groups that hold a pending lane
            // (typically one of sixteen); the rest keep their shipped
            // prefix results.
            let mut groups = 0u16;
            for g in 0..LANES / 4 {
                if (pending >> (4 * g)) & 0xF != 0 {
                    groups |= 1 << g;
                }
            }
            let _ = unsafe { full_stage(xfull, &mut y, groups) };
            let safe_full = unsafe { f32_round_safe_mask(&y, band) };
            let ok_full = pending & safe_full;
            full_hits += u64::from(ok_full.count_ones());
            for i in 0..n {
                if (pending >> i) & 1 == 0 {
                    continue;
                }
                if (ok_full >> i) & 1 == 1 {
                    oc[i] = y[i] as f32;
                } else {
                    rescalar += 1;
                    oc[i] = super::rescalar_resolve(scalar, xc[i]);
                }
            }
        }
    }
    super::SLICE_CHUNKS.add(chunks);
    super::SLICE_RESCALAR.add(rescalar);
    crate::stats::record_tier_prefix_n(slot, prefix_hits);
    crate::stats::record_tier_full_n(slot, full_hits);
}

/// Vectorized [`crate::round::f32_round_safe`] over a full chunk,
/// returned as a lane bitmask. Same integer test per lane: biased
/// exponent in `897..=1150` (f32-normal results only) and fraction
/// distance to the nearest f32 rounding boundary greater than `band`.
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
unsafe fn f32_round_safe_mask(y: &[f64; LANES], band: u64) -> u64 {
    debug_assert!(band < (1 << 26));
    let be_lo = _mm256_set1_epi64x(896); // be > 896  <=>  be >= 897
    let be_hi = _mm256_set1_epi64x(1151); // be < 1151 <=>  be <= 1150
    let be_mask = _mm256_set1_epi64x(0x7ff);
    let frac_mask = _mm256_set1_epi64x(0x1FFF_FFFF);
    // abs_diff(frac, 2^28) > band  <=>  frac > 2^28+band || frac < 2^28-band
    let hi = _mm256_set1_epi64x(0x1000_0000i64 + band as i64);
    let lo = _mm256_set1_epi64x(0x1000_0000i64 - band as i64);
    let mut safe = 0u64;
    for g in 0..LANES / 4 {
        let bits = _mm256_castpd_si256(_mm256_loadu_pd(y.as_ptr().add(4 * g)));
        // Logical shift: the sign bit lands in bit 11 and is masked off,
        // exactly like the scalar `(bits >> 52) & 0x7ff` on u64.
        let be = _mm256_and_si256(_mm256_srli_epi64::<52>(bits), be_mask);
        let in_range =
            _mm256_and_si256(_mm256_cmpgt_epi64(be, be_lo), _mm256_cmpgt_epi64(be_hi, be));
        let frac = _mm256_and_si256(bits, frac_mask);
        let far = _mm256_or_si256(_mm256_cmpgt_epi64(frac, hi), _mm256_cmpgt_epi64(lo, frac));
        let ok = _mm256_and_si256(in_range, far);
        safe |= (_mm256_movemask_pd(_mm256_castsi256_pd(ok)) as u32 as u64 & 0xF) << (4 * g);
    }
    safe
}

// ---------------------------------------------------------------------
// 4-lane building blocks (each mirrors one scalar helper op-for-op)
// ---------------------------------------------------------------------

/// Widens 4 f32 lanes to f64 (exact) starting at lane `4*g`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn widen4(xs: &[f32; LANES], g: usize) -> __m256d {
    _mm256_cvtps_pd(_mm_loadu_ps(xs.as_ptr().add(4 * g)))
}

/// Stores 4 staged results at lane `4*g`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn store4(y: &mut [f64; LANES], g: usize, v: __m256d) {
    _mm256_storeu_pd(y.as_mut_ptr().add(4 * g), v)
}

/// Blends the scalar widen stage's placeholder into out-of-domain lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn placeholder(x: __m256d, dom: __m256d) -> __m256d {
    _mm256_blendv_pd(_mm256_set1_pd(1.0), x, dom)
}

/// `|x|` (clears the sign bit, exact — same as scalar `abs`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn abs4(x: __m256d) -> __m256d {
    _mm256_andnot_pd(_mm256_castsi256_pd(_mm256_set1_epi64x(SIGN as i64)), x)
}

/// `-x` where the mask is set (IEEE negation is a sign flip).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn negate_where(v: __m256d, mask: __m256d) -> __m256d {
    let flipped = _mm256_xor_pd(v, _mm256_castsi256_pd(_mm256_set1_epi64x(SIGN as i64)));
    _mm256_blendv_pd(v, flipped, mask)
}

/// `2^i` for the four i32 exponents, by direct bit construction. Not
/// total like the scalar `pow2i`: valid only for `-1022 <= i <= 1023`,
/// which the staged pipelines guarantee — the domain filters cap the
/// exp-family reductions at `|k| < 64*156`, so `i = k >> 6` stays within
/// `[-156, 156]`, and placeholder lanes produce tiny `k`. For those
/// inputs the scalar `pow2i` takes exactly this branch.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn pow2i4(i: __m128i) -> __m256d {
    let wide = _mm256_cvtepi32_epi64(i);
    let bits = _mm256_slli_epi64::<52>(_mm256_add_epi64(wide, _mm256_set1_epi64x(1023)));
    _mm256_castsi256_pd(bits)
}

/// Mirror of `fast::exp_poly_fast`: same Horner structure, same
/// grouping, no contraction.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn exp_poly4(r: __m256d) -> __m256d {
    let c = |v: f64| _mm256_set1_pd(v);
    let mut q = c(1.0 / 5040.0);
    q = _mm256_add_pd(c(1.0 / 720.0), _mm256_mul_pd(r, q));
    q = _mm256_add_pd(c(1.0 / 120.0), _mm256_mul_pd(r, q));
    q = _mm256_add_pd(c(1.0 / 24.0), _mm256_mul_pd(r, q));
    q = _mm256_add_pd(c(1.0 / 6.0), _mm256_mul_pd(r, q));
    q = _mm256_add_pd(c(0.5), _mm256_mul_pd(r, q));
    // 1 + r·(1 + r·q)
    _mm256_add_pd(c(1.0), _mm256_mul_pd(r, _mm256_add_pd(c(1.0), _mm256_mul_pd(r, q))))
}

/// Mirror of `fast::exp_poly_prefix` (progressive tier 0): the same
/// Horner spine truncated after the `1/24` term.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn exp_poly_prefix4(r: __m256d) -> __m256d {
    let c = |v: f64| _mm256_set1_pd(v);
    let mut q = c(1.0 / 24.0);
    q = _mm256_add_pd(c(1.0 / 6.0), _mm256_mul_pd(r, q));
    q = _mm256_add_pd(c(0.5), _mm256_mul_pd(r, q));
    // 1 + r·(1 + r·q)
    _mm256_add_pd(c(1.0), _mm256_mul_pd(r, _mm256_add_pd(c(1.0), _mm256_mul_pd(r, q))))
}

/// Mirror of `fast::exp_combined_fast` / `fast::exp_combined_prefix`
/// (tier selected by `PREFIX`, const-folded per monomorphization): table
/// gather at `j = k mod 64`, Horner, exponent scale at `i = k div 64`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn exp_combined4<const PREFIX: bool>(k: __m128i, r: __m256d) -> __m256d {
    // k & 63 == rem_euclid(64), k >> 6 == div_euclid(64) for two's
    // complement (divisor a power of two).
    let j = _mm_and_si128(k, _mm_set1_epi32(63));
    let i = _mm_srai_epi32::<6>(k);
    if PREFIX {
        // th * p * 2^i — hi-only table read, like the scalar prefix.
        let th = gather_hi4(&t::EXP2_64_P, j, t::EXP2_64_HI_BASE);
        _mm256_mul_pd(_mm256_mul_pd(th, exp_poly_prefix4(r)), pow2i4(i))
    } else {
        let (th, tl) = gather_packed4(&t::EXP2_64_P, j, t::EXP2_64_HI_BASE, t::EXP2_64_LO_BASE);
        // (th * p + tl) * 2^i
        _mm256_mul_pd(_mm256_add_pd(_mm256_mul_pd(th, exp_poly4(r)), tl), pow2i4(i))
    }
}

/// The `e^x` reduction + combine over 4 widened lanes (mirror of the
/// scalar `exp_chunk_with` body at the selected tier).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn exp4<const PREFIX: bool>(xd: __m256d) -> __m256d {
    // cvtpd_epi32 rounds ties-to-even (MXCSR default): identical to
    // `(x * C).round_ties_even() as i64` for these small magnitudes.
    let k = _mm256_cvtpd_epi32(_mm256_mul_pd(xd, _mm256_set1_pd(64.0 * t::LOG2_E)));
    let kf = _mm256_cvtepi32_pd(k);
    let r = _mm256_sub_pd(
        _mm256_sub_pd(xd, _mm256_mul_pd(kf, _mm256_set1_pd(t::LN2_64_HI))),
        _mm256_mul_pd(kf, _mm256_set1_pd(t::LN2_64_MID)),
    );
    exp_combined4::<PREFIX>(k, r)
}

/// Mirror of `fast::log1p_poly_fast`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn log1p_poly4(u: __m256d) -> __m256d {
    let c = |v: f64| _mm256_set1_pd(v);
    // q = -1/2 + u·(1/3 + u·(-1/4 + u·(1/5 + u·(-1/6 + u·(1/7 - u/8)))))
    let mut q = _mm256_sub_pd(c(1.0 / 7.0), _mm256_mul_pd(u, c(0.125)));
    q = _mm256_add_pd(c(-1.0 / 6.0), _mm256_mul_pd(u, q));
    q = _mm256_add_pd(c(0.2), _mm256_mul_pd(u, q));
    q = _mm256_add_pd(c(-0.25), _mm256_mul_pd(u, q));
    q = _mm256_add_pd(c(1.0 / 3.0), _mm256_mul_pd(u, q));
    q = _mm256_add_pd(c(-0.5), _mm256_mul_pd(u, q));
    // u + u^2·q
    _mm256_add_pd(u, _mm256_mul_pd(_mm256_mul_pd(u, u), q))
}

/// Mirror of `fast::log1p_poly_prefix`: `q` truncated after the `u^3/5`
/// term.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn log1p_poly_prefix4(u: __m256d) -> __m256d {
    let c = |v: f64| _mm256_set1_pd(v);
    // q = -1/2 + u·(1/3 + u·(-1/4 + u·(1/5)))
    let mut q = _mm256_add_pd(c(-0.25), _mm256_mul_pd(u, c(0.2)));
    q = _mm256_add_pd(c(1.0 / 3.0), _mm256_mul_pd(u, q));
    q = _mm256_add_pd(c(-0.5), _mm256_mul_pd(u, q));
    // u + u^2·q
    _mm256_add_pd(u, _mm256_mul_pd(_mm256_mul_pd(u, u), q))
}

/// Tier dispatch for the log-family Horner pass.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn log1p_tier4<const PREFIX: bool>(u: __m256d) -> __m256d {
    if PREFIX {
        log1p_poly_prefix4(u)
    } else {
        log1p_poly4(u)
    }
}

/// The shared log reduction (mirror of `fast::reduce_fast`): returns
/// `(e as f64, j as i32x4, u)` with the index-128 fold applied as a
/// blend. Requires positive normal-f64 lanes (the dom filter + widen
/// guarantee it: every positive f32, subnormals included, widens to a
/// normal f64).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn log_reduce4(xd: __m256d) -> (__m256d, __m128i, __m256d) {
    let bits = _mm256_castpd_si256(xd);
    // Biased exponent as an exact small-integer double via the 2^52
    // magic-bits trick, with the -1023 bias folded into the subtrahend.
    let be = _mm256_srli_epi64::<52>(bits); // sign bit is 0: x > 0
    let magic = _mm256_set1_epi64x(0x4330_0000_0000_0000); // 2^52
    let ef = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(be, magic)),
        _mm256_set1_pd(4_503_599_627_370_496.0 + 1023.0),
    );
    let z = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x(0x000F_FFFF_FFFF_FFFF)),
        _mm256_set1_epi64x(0x3FF0_0000_0000_0000u64 as i64),
    ));
    // j = round_ties_even((z - 1) * 128), 0..=128
    let j = _mm256_cvtpd_epi32(_mm256_mul_pd(
        _mm256_sub_pd(z, _mm256_set1_pd(1.0)),
        _mm256_set1_pd(128.0),
    ));
    // Index-128 fold: e += 1, z *= 0.5 (exact), j = 0.
    let fold = _mm_cmpeq_epi32(j, _mm_set1_epi32(128));
    let fold_pd = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(fold));
    let ef = _mm256_add_pd(ef, _mm256_and_pd(fold_pd, _mm256_set1_pd(1.0)));
    let z = _mm256_blendv_pd(z, _mm256_mul_pd(z, _mm256_set1_pd(0.5)), fold_pd);
    let j = _mm_andnot_si128(fold, j);
    // f = 1 + j/128 (exact), u = (z - f)/f
    let f = _mm256_add_pd(
        _mm256_set1_pd(1.0),
        _mm256_div_pd(_mm256_cvtepi32_pd(j), _mm256_set1_pd(128.0)),
    );
    let u = _mm256_div_pd(_mm256_sub_pd(z, f), f);
    (ef, j, u)
}

/// Vector twin of `tables_codec::decode_hi`: 4 masked 56-bit hi words
/// to f64 lanes. `base` is the table's hi exponent origin.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn decode_hi4(w: __m256i, base: u64) -> __m256d {
    let mant = _mm256_and_si256(w, _mm256_set1_epi64x(codec::MANT52_MASK as i64));
    let code = _mm256_srli_epi64::<52>(w); // word is pre-masked to 56 bits
    let exp = _mm256_slli_epi64::<52>(_mm256_add_epi64(code, _mm256_set1_epi64x(base as i64 - 1)));
    let bits = _mm256_or_si256(exp, mant);
    let zero = _mm256_cmpeq_epi64(code, _mm256_setzero_si256());
    _mm256_castsi256_pd(_mm256_andnot_si256(zero, bits))
}

/// Vector twin of `tables_codec::decode_lo`: 4 masked 57-bit lo words
/// (sign in bit 56) to f64 lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn decode_lo4(w: __m256i, base: u64) -> __m256d {
    let mant = _mm256_and_si256(w, _mm256_set1_epi64x(codec::MANT52_MASK as i64));
    let code = _mm256_and_si256(_mm256_srli_epi64::<52>(w), _mm256_set1_epi64x(0xF));
    let sign = _mm256_slli_epi64::<7>(_mm256_and_si256(w, _mm256_set1_epi64x(1i64 << 56)));
    let exp = _mm256_slli_epi64::<52>(_mm256_add_epi64(code, _mm256_set1_epi64x(base as i64 - 1)));
    let bits = _mm256_or_si256(sign, _mm256_or_si256(exp, mant));
    let zero = _mm256_cmpeq_epi64(code, _mm256_setzero_si256());
    _mm256_castsi256_pd(_mm256_andnot_si256(zero, bits))
}

/// Gathers and decodes 4 entries of a 15-byte-stride packed table: two
/// scale-1 `i32gather_epi64` loads per group (byte offsets `15n` and
/// `15n + 7`), then the fixed shift/mask decode. The last entry's lo
/// load ends exactly at the table's final byte, so every in-bounds index
/// gathers in bounds.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn gather_packed4(
    bytes: &[u8],
    idx: __m128i,
    hi_base: u64,
    lo_base: u64,
) -> (__m256d, __m256d) {
    let base = bytes.as_ptr().cast::<i64>();
    // byte offset 15n computed as 16n - n
    let off = _mm_sub_epi32(_mm_slli_epi32::<4>(idx), idx);
    let w0 = _mm256_i32gather_epi64::<1>(base, off);
    let w1 = _mm256_i32gather_epi64::<1>(base, _mm_add_epi32(off, _mm_set1_epi32(7)));
    let hw = _mm256_and_si256(w0, _mm256_set1_epi64x(codec::HI_WORD_MASK as i64));
    let lw = _mm256_and_si256(w1, _mm256_set1_epi64x(codec::LO_WORD_MASK as i64));
    (decode_hi4(hw, hi_base), decode_lo4(lw, lo_base))
}

/// `gather_packed4` into the sinpi table through the cospi mirror
/// (`COSPI_T[n] == SINPI_T[256 - n]`, verified at build time).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn gather_cospi4(idx: __m128i) -> (__m256d, __m256d) {
    let mirrored = _mm_sub_epi32(_mm_set1_epi32(256), idx);
    gather_packed4(&t::SINPI_T_P, mirrored, t::SINPI_T_HI_BASE, t::SINPI_T_LO_BASE)
}

/// Hi-word-only gather — the prefix tier's table read (vector twin of
/// `tables::*_hi`): one u64 gather at byte offset `15n` plus the hi
/// decode, half the gather traffic of [`gather_packed4`]. Sound for the
/// same reason as the scalar prefix kernels: the dropped lo words sit
/// far inside every prefix band, and an excursion escalates a tier.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn gather_hi4(bytes: &[u8], idx: __m128i, hi_base: u64) -> __m256d {
    let base = bytes.as_ptr().cast::<i64>();
    let off = _mm_sub_epi32(_mm_slli_epi32::<4>(idx), idx);
    let w0 = _mm256_i32gather_epi64::<1>(base, off);
    decode_hi4(_mm256_and_si256(w0, _mm256_set1_epi64x(codec::HI_WORD_MASK as i64)), hi_base)
}

/// [`gather_hi4`] through the cospi mirror.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn gather_cospi_hi4(idx: __m128i) -> __m256d {
    let mirrored = _mm_sub_epi32(_mm_set1_epi32(256), idx);
    gather_hi4(&t::SINPI_T_P, mirrored, t::SINPI_T_HI_BASE)
}

/// Mirror of `fast::sinpi_poly_fast`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sinpi_poly4(r: __m256d) -> __m256d {
    let c = |v: f64| _mm256_set1_pd(v);
    let r2 = _mm256_mul_pd(r, r);
    let tail = _mm256_add_pd(
        c(t::SINPI_C3),
        _mm256_mul_pd(r2, _mm256_add_pd(c(t::SINPI_C5), _mm256_mul_pd(r2, c(t::SINPI_C7)))),
    );
    // r·PI_HI + (r·PI_LO + (r·r2)·tail)
    _mm256_add_pd(
        _mm256_mul_pd(r, c(t::PI_HI)),
        _mm256_add_pd(
            _mm256_mul_pd(r, c(t::PI_LO)),
            _mm256_mul_pd(_mm256_mul_pd(r, r2), tail),
        ),
    )
}

/// Mirror of `fast::cospi_poly_fast`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cospi_poly4(r: __m256d) -> __m256d {
    let c = |v: f64| _mm256_set1_pd(v);
    let r2 = _mm256_mul_pd(r, r);
    let tail = _mm256_add_pd(
        c(t::COSPI_C4),
        _mm256_mul_pd(r2, c(t::COSPI_C6)),
    );
    // 1 + (r2·C2_HI + (r2·C2_LO + (r2·r2)·tail))
    _mm256_add_pd(
        c(1.0),
        _mm256_add_pd(
            _mm256_mul_pd(r2, c(t::COSPI_C2_HI)),
            _mm256_add_pd(
                _mm256_mul_pd(r2, c(t::COSPI_C2_LO)),
                _mm256_mul_pd(_mm256_mul_pd(r2, r2), tail),
            ),
        ),
    )
}

/// Mirror of `fast::sinpi_poly_prefix` (drops `C5`, `C7`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sinpi_poly_prefix4(r: __m256d) -> __m256d {
    let c = |v: f64| _mm256_set1_pd(v);
    let r2 = _mm256_mul_pd(r, r);
    // r·PI_HI + (r·PI_LO + (r·r2)·C3)
    _mm256_add_pd(
        _mm256_mul_pd(r, c(t::PI_HI)),
        _mm256_add_pd(
            _mm256_mul_pd(r, c(t::PI_LO)),
            _mm256_mul_pd(_mm256_mul_pd(r, r2), c(t::SINPI_C3)),
        ),
    )
}

/// Mirror of `fast::cospi_poly_prefix` (drops `C6`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cospi_poly_prefix4(r: __m256d) -> __m256d {
    let c = |v: f64| _mm256_set1_pd(v);
    let r2 = _mm256_mul_pd(r, r);
    // 1 + (r2·C2_HI + (r2·C2_LO + (r2·r2)·C4))
    _mm256_add_pd(
        c(1.0),
        _mm256_add_pd(
            _mm256_mul_pd(r2, c(t::COSPI_C2_HI)),
            _mm256_add_pd(
                _mm256_mul_pd(r2, c(t::COSPI_C2_LO)),
                _mm256_mul_pd(_mm256_mul_pd(r2, r2), c(t::COSPI_C4)),
            ),
        ),
    )
}

/// Tier dispatch for the trig polynomial pair.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sinpi_tier4<const PREFIX: bool>(r: __m256d) -> __m256d {
    if PREFIX {
        sinpi_poly_prefix4(r)
    } else {
        sinpi_poly4(r)
    }
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cospi_tier4<const PREFIX: bool>(r: __m256d) -> __m256d {
    if PREFIX {
        cospi_poly_prefix4(r)
    } else {
        cospi_poly4(r)
    }
}

/// Mirror of `fast::mod2_split_fast`: `(k mask, l)` with
/// `l = a mod 2` folded into `[0, 1)` and `k` flagging the upper half
/// period.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mod2_split4(a: __m256d) -> (__m256d, __m256d) {
    const FLOOR: i32 = _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC;
    let fl = _mm256_round_pd::<FLOOR>(_mm256_mul_pd(a, _mm256_set1_pd(0.5)));
    let jm = _mm256_sub_pd(a, _mm256_mul_pd(_mm256_set1_pd(2.0), fl));
    let k = _mm256_cmp_pd::<_CMP_GE_OQ>(jm, _mm256_set1_pd(1.0));
    let l = _mm256_blendv_pd(jm, _mm256_sub_pd(jm, _mm256_set1_pd(1.0)), k);
    (k, l)
}

// ---------------------------------------------------------------------
// per-function stage kernels
// ---------------------------------------------------------------------

/// Builds an exp-family stage: dom filter (inclusive/exclusive bounds as
/// a const generic pair is overkill — each wrapper inlines its own), and
/// the shared reduction shape is parameterized by a closure that would
/// defeat `target_feature`, so the three wrappers are spelled out.
#[target_feature(enable = "avx2")]
unsafe fn exp_stage<const PREFIX: bool>(xs: &[f32; LANES], y: &mut [f64; LANES], groups: u16) -> u64 {
    let mut dom = 0u64;
    for g in 0..LANES / 4 {
        if groups & (1 << g) == 0 {
            continue;
        }
        let x = widen4(xs, g);
        // (-106.0..=89.0).contains(&x) — f32 compare, exactly preserved
        // on the exactly-widened doubles. NaN fails both ordered cmps.
        let m = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_GE_OQ>(x, _mm256_set1_pd(-106.0)),
            _mm256_cmp_pd::<_CMP_LE_OQ>(x, _mm256_set1_pd(89.0)),
        );
        let xd = placeholder(x, m);
        store4(y, g, exp4::<PREFIX>(xd));
        dom |= ((_mm256_movemask_pd(m) as u32 as u64) & 0xF) << (4 * g);
    }
    dom
}

#[target_feature(enable = "avx2")]
unsafe fn exp2_stage<const PREFIX: bool>(xs: &[f32; LANES], y: &mut [f64; LANES], groups: u16) -> u64 {
    let mut dom = 0u64;
    for g in 0..LANES / 4 {
        if groups & (1 << g) == 0 {
            continue;
        }
        let x = widen4(xs, g);
        // (-151.0..128.0): half-open on the right.
        let m = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_GE_OQ>(x, _mm256_set1_pd(-151.0)),
            _mm256_cmp_pd::<_CMP_LT_OQ>(x, _mm256_set1_pd(128.0)),
        );
        let xd = placeholder(x, m);
        let k = _mm256_cvtpd_epi32(_mm256_mul_pd(xd, _mm256_set1_pd(64.0)));
        let kf = _mm256_cvtepi32_pd(k);
        // tt = x - k/64 (exact); r = tt·LN2_HI + tt·LN2_LO
        let tt = _mm256_sub_pd(xd, _mm256_div_pd(kf, _mm256_set1_pd(64.0)));
        let r = _mm256_add_pd(
            _mm256_mul_pd(tt, _mm256_set1_pd(t::LN2_HI)),
            _mm256_mul_pd(tt, _mm256_set1_pd(t::LN2_LO)),
        );
        store4(y, g, exp_combined4::<PREFIX>(k, r));
        dom |= ((_mm256_movemask_pd(m) as u32 as u64) & 0xF) << (4 * g);
    }
    dom
}

#[target_feature(enable = "avx2")]
unsafe fn exp10_stage<const PREFIX: bool>(xs: &[f32; LANES], y: &mut [f64; LANES], groups: u16) -> u64 {
    let mut dom = 0u64;
    for g in 0..LANES / 4 {
        if groups & (1 << g) == 0 {
            continue;
        }
        let x = widen4(xs, g);
        // (-45.5..=38.6): 38.6 here is the f32 literal widened exactly.
        let m = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_GE_OQ>(x, _mm256_set1_pd(-45.5f32 as f64)),
            _mm256_cmp_pd::<_CMP_LE_OQ>(x, _mm256_set1_pd(38.6f32 as f64)),
        );
        let xd = placeholder(x, m);
        let k = _mm256_cvtpd_epi32(_mm256_mul_pd(xd, _mm256_set1_pd(64.0 * t::LOG2_10)));
        let kf = _mm256_cvtepi32_pd(k);
        let b = _mm256_mul_pd(kf, _mm256_set1_pd(t::LN2_64_HI));
        // r = (x·LN10_HI - b) + (x·LN10_LO - kf·LN2_64_MID)
        let r = _mm256_add_pd(
            _mm256_sub_pd(_mm256_mul_pd(xd, _mm256_set1_pd(t::LN10_HI)), b),
            _mm256_sub_pd(
                _mm256_mul_pd(xd, _mm256_set1_pd(t::LN10_LO)),
                _mm256_mul_pd(kf, _mm256_set1_pd(t::LN2_64_MID)),
            ),
        );
        store4(y, g, exp_combined4::<PREFIX>(k, r));
        dom |= ((_mm256_movemask_pd(m) as u32 as u64) & 0xF) << (4 * g);
    }
    dom
}

/// Shared log-family dom mask: `x > 0 && x < inf` (subnormal f32 widens
/// to normal f64, so the reduction's normal-f64 precondition holds).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn log_dom4(x: __m256d) -> __m256d {
    _mm256_and_pd(
        _mm256_cmp_pd::<_CMP_GT_OQ>(x, _mm256_set1_pd(0.0)),
        _mm256_cmp_pd::<_CMP_LT_OQ>(x, _mm256_set1_pd(f64::INFINITY)),
    )
}

#[target_feature(enable = "avx2")]
unsafe fn ln_stage<const PREFIX: bool>(xs: &[f32; LANES], y: &mut [f64; LANES], groups: u16) -> u64 {
    let mut dom = 0u64;
    for g in 0..LANES / 4 {
        if groups & (1 << g) == 0 {
            continue;
        }
        let x = widen4(xs, g);
        let m = log_dom4(x);
        let xd = placeholder(x, m);
        let (ef, j, u) = log_reduce4(xd);
        let p = log1p_tier4::<PREFIX>(u);
        let v = if PREFIX {
            // Hi-only gather: c = ef·LN2_HI42 + th; y = c + (p + ef·LN2_MID)
            let th = gather_hi4(&t::LN_F_P, j, t::LN_F_HI_BASE);
            let c = _mm256_add_pd(_mm256_mul_pd(ef, _mm256_set1_pd(t::LN2_HI42)), th);
            _mm256_add_pd(c, _mm256_add_pd(p, _mm256_mul_pd(ef, _mm256_set1_pd(t::LN2_MID))))
        } else {
            let (th, tl) = gather_packed4(&t::LN_F_P, j, t::LN_F_HI_BASE, t::LN_F_LO_BASE);
            // c = ef·LN2_HI42 + th; lo = tl + ef·LN2_MID; y = c + (p + lo)
            let c = _mm256_add_pd(_mm256_mul_pd(ef, _mm256_set1_pd(t::LN2_HI42)), th);
            let lo = _mm256_add_pd(tl, _mm256_mul_pd(ef, _mm256_set1_pd(t::LN2_MID)));
            _mm256_add_pd(c, _mm256_add_pd(p, lo))
        };
        store4(y, g, v);
        dom |= ((_mm256_movemask_pd(m) as u32 as u64) & 0xF) << (4 * g);
    }
    dom
}

#[target_feature(enable = "avx2")]
unsafe fn log2_stage<const PREFIX: bool>(xs: &[f32; LANES], y: &mut [f64; LANES], groups: u16) -> u64 {
    let mut dom = 0u64;
    for g in 0..LANES / 4 {
        if groups & (1 << g) == 0 {
            continue;
        }
        let x = widen4(xs, g);
        let m = log_dom4(x);
        let xd = placeholder(x, m);
        let (ef, j, u) = log_reduce4(xd);
        let p = log1p_tier4::<PREFIX>(u);
        let v = if PREFIX {
            // Hi-only gather: c = e + th; y = c + (p·INV_LN2_HI + p·INV_LN2_LO)
            let c = _mm256_add_pd(ef, gather_hi4(&t::LOG2_F_P, j, t::LOG2_F_HI_BASE));
            _mm256_add_pd(
                c,
                _mm256_add_pd(
                    _mm256_mul_pd(p, _mm256_set1_pd(t::INV_LN2_HI)),
                    _mm256_mul_pd(p, _mm256_set1_pd(t::INV_LN2_LO)),
                ),
            )
        } else {
            let (th, tl) = gather_packed4(&t::LOG2_F_P, j, t::LOG2_F_HI_BASE, t::LOG2_F_LO_BASE);
            // c = e + th; y = c + (p·INV_LN2_HI + (tl + p·INV_LN2_LO))
            let c = _mm256_add_pd(ef, th);
            _mm256_add_pd(
                c,
                _mm256_add_pd(
                    _mm256_mul_pd(p, _mm256_set1_pd(t::INV_LN2_HI)),
                    _mm256_add_pd(tl, _mm256_mul_pd(p, _mm256_set1_pd(t::INV_LN2_LO))),
                ),
            )
        };
        store4(y, g, v);
        dom |= ((_mm256_movemask_pd(m) as u32 as u64) & 0xF) << (4 * g);
    }
    dom
}

#[target_feature(enable = "avx2")]
unsafe fn log10_stage<const PREFIX: bool>(xs: &[f32; LANES], y: &mut [f64; LANES], groups: u16) -> u64 {
    let mut dom = 0u64;
    for g in 0..LANES / 4 {
        if groups & (1 << g) == 0 {
            continue;
        }
        let x = widen4(xs, g);
        let m = log_dom4(x);
        let xd = placeholder(x, m);
        let (ef, j, u) = log_reduce4(xd);
        let p = log1p_tier4::<PREFIX>(u);
        let v = if PREFIX {
            // Hi-only gather: c = ef·LOG10_2_HI + th
            // y = c + (p·INV_LN10_HI + (ef·LOG10_2_LO + p·INV_LN10_LO))
            let th = gather_hi4(&t::LOG10_F_P, j, t::LOG10_F_HI_BASE);
            let c = _mm256_add_pd(_mm256_mul_pd(ef, _mm256_set1_pd(t::LOG10_2_HI)), th);
            let inner = _mm256_add_pd(
                _mm256_mul_pd(ef, _mm256_set1_pd(t::LOG10_2_LO)),
                _mm256_mul_pd(p, _mm256_set1_pd(t::INV_LN10_LO)),
            );
            _mm256_add_pd(
                c,
                _mm256_add_pd(_mm256_mul_pd(p, _mm256_set1_pd(t::INV_LN10_HI)), inner),
            )
        } else {
            let (th, tl) = gather_packed4(&t::LOG10_F_P, j, t::LOG10_F_HI_BASE, t::LOG10_F_LO_BASE);
            // c = ef·LOG10_2_HI + th
            // y = c + (p·INV_LN10_HI + ((tl + ef·LOG10_2_LO) + p·INV_LN10_LO))
            let c = _mm256_add_pd(_mm256_mul_pd(ef, _mm256_set1_pd(t::LOG10_2_HI)), th);
            let inner = _mm256_add_pd(
                _mm256_add_pd(tl, _mm256_mul_pd(ef, _mm256_set1_pd(t::LOG10_2_LO))),
                _mm256_mul_pd(p, _mm256_set1_pd(t::INV_LN10_LO)),
            );
            _mm256_add_pd(
                c,
                _mm256_add_pd(_mm256_mul_pd(p, _mm256_set1_pd(t::INV_LN10_HI)), inner),
            )
        };
        store4(y, g, v);
        dom |= ((_mm256_movemask_pd(m) as u32 as u64) & 0xF) << (4 * g);
    }
    dom
}

/// sinh/cosh share the dominant `e^|x|` pipeline; the small-|x| Taylor
/// branch becomes a blend (both sides are computed with the scalar
/// branch's exact op sequence, each lane keeps the one the scalar code
/// would have taken).
#[target_feature(enable = "avx2")]
unsafe fn sinh_stage<const PREFIX: bool>(xs: &[f32; LANES], y: &mut [f64; LANES], groups: u16) -> u64 {
    let c = |v: f64| _mm256_set1_pd(v);
    let tiny = 2f32.powi(-12) as f64;
    let mut dom = 0u64;
    for g in 0..LANES / 4 {
        if groups & (1 << g) == 0 {
            continue;
        }
        let x = widen4(xs, g);
        let ax = abs4(x);
        let m = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_LE_OQ>(ax, c(90.0)),
            _mm256_cmp_pd::<_CMP_GE_OQ>(ax, c(tiny)),
        );
        let xd = placeholder(x, m);
        let a = abs4(xd);
        let big = exp4::<PREFIX>(a);
        let x2 = _mm256_mul_pd(a, a);
        // a + (a·x2)·(1/6 + x2·(1/120 + x2·(1/5040 + x2·(1/362880))))
        let tail = _mm256_add_pd(
            c(1.0 / 6.0),
            _mm256_mul_pd(
                x2,
                _mm256_add_pd(
                    c(1.0 / 120.0),
                    _mm256_mul_pd(
                        x2,
                        _mm256_add_pd(c(1.0 / 5040.0), _mm256_mul_pd(x2, c(1.0 / 362_880.0))),
                    ),
                ),
            ),
        );
        let v_small = _mm256_add_pd(a, _mm256_mul_pd(_mm256_mul_pd(a, x2), tail));
        // 0.5·(big - 1/big)
        let v_big = _mm256_mul_pd(c(0.5), _mm256_sub_pd(big, _mm256_div_pd(c(1.0), big)));
        let small = _mm256_cmp_pd::<_CMP_LT_OQ>(a, c(0.0625));
        let v = _mm256_blendv_pd(v_big, v_small, small);
        let neg = _mm256_cmp_pd::<_CMP_LT_OQ>(xd, c(0.0));
        store4(y, g, negate_where(v, neg));
        dom |= ((_mm256_movemask_pd(m) as u32 as u64) & 0xF) << (4 * g);
    }
    dom
}

#[target_feature(enable = "avx2")]
unsafe fn cosh_stage<const PREFIX: bool>(xs: &[f32; LANES], y: &mut [f64; LANES], groups: u16) -> u64 {
    let c = |v: f64| _mm256_set1_pd(v);
    let tiny = 2f32.powi(-13) as f64;
    let mut dom = 0u64;
    for g in 0..LANES / 4 {
        if groups & (1 << g) == 0 {
            continue;
        }
        let x = widen4(xs, g);
        let ax = abs4(x);
        let m = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_LE_OQ>(ax, c(90.0)),
            _mm256_cmp_pd::<_CMP_GE_OQ>(ax, c(tiny)),
        );
        let xd = placeholder(x, m);
        let a = abs4(xd);
        let big = exp4::<PREFIX>(a);
        let x2 = _mm256_mul_pd(a, a);
        // 1 + x2·(1/2 + x2·(1/24 + x2·(1/720 + x2·(1/40320))))
        let tail = _mm256_add_pd(
            c(0.5),
            _mm256_mul_pd(
                x2,
                _mm256_add_pd(
                    c(1.0 / 24.0),
                    _mm256_mul_pd(
                        x2,
                        _mm256_add_pd(c(1.0 / 720.0), _mm256_mul_pd(x2, c(1.0 / 40_320.0))),
                    ),
                ),
            ),
        );
        let v_small = _mm256_add_pd(c(1.0), _mm256_mul_pd(x2, tail));
        // 0.5·(big + 1/big)
        let v_big = _mm256_mul_pd(c(0.5), _mm256_add_pd(big, _mm256_div_pd(c(1.0), big)));
        let small = _mm256_cmp_pd::<_CMP_LT_OQ>(a, c(0.0625));
        store4(y, g, _mm256_blendv_pd(v_big, v_small, small));
        dom |= ((_mm256_movemask_pd(m) as u32 as u64) & 0xF) << (4 * g);
    }
    dom
}

/// The trig reductions' "branch-heavy mirror folds" become mask blends;
/// this vectorizes the lanes the scalar slice path evaluates per lane.
#[target_feature(enable = "avx2")]
unsafe fn sinpi_stage<const PREFIX: bool>(xs: &[f32; LANES], y: &mut [f64; LANES], groups: u16) -> u64 {
    const TRUNC: i32 = _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC;
    let c = |v: f64| _mm256_set1_pd(v);
    let mut dom = 0u64;
    for g in 0..LANES / 4 {
        if groups & (1 << g) == 0 {
            continue;
        }
        let x = widen4(xs, g);
        let ax = abs4(x);
        // finite && a < 2^23 && a >= 2^-36 && a != trunc(a)
        let m = _mm256_and_pd(
            _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LT_OQ>(ax, c(8_388_608.0)),
                _mm256_cmp_pd::<_CMP_GE_OQ>(ax, c(2f64.powi(-36))),
            ),
            _mm256_cmp_pd::<_CMP_NEQ_OQ>(ax, _mm256_round_pd::<TRUNC>(ax)),
        );
        let xd = placeholder(x, m);
        let a = abs4(xd);
        let (k, l) = mod2_split4(a);
        let upper = _mm256_cmp_pd::<_CMP_GT_OQ>(l, c(0.5));
        let lp = _mm256_blendv_pd(l, _mm256_sub_pd(c(1.0), l), upper);
        // n = floor(lp·512) in 0..=256 for staged lanes; clamped to the
        // table bound purely as gather-safety (never binding in-domain).
        let n = _mm_min_epi32(
            _mm256_cvttpd_epi32(_mm256_mul_pd(lp, c(512.0))),
            _mm_set1_epi32(256),
        );
        let r = _mm256_sub_pd(lp, _mm256_div_pd(_mm256_cvtepi32_pd(n), c(512.0)));
        let sp = sinpi_tier4::<PREFIX>(r);
        let cp = cospi_tier4::<PREFIX>(r);
        let v = if PREFIX {
            // Hi-only gathers, no corr fold (mirror of the scalar
            // prefix): v = sh·cp + ch·sp
            let sh = gather_hi4(&t::SINPI_T_P, n, t::SINPI_T_HI_BASE);
            let ch = gather_cospi_hi4(n);
            _mm256_add_pd(_mm256_mul_pd(sh, cp), _mm256_mul_pd(ch, sp))
        } else {
            let (sh, sl) =
                gather_packed4(&t::SINPI_T_P, n, t::SINPI_T_HI_BASE, t::SINPI_T_LO_BASE);
            let (ch, cl) = gather_cospi4(n);
            // corr = sl·cp + cl·sp; v = sh·cp + (ch·sp + corr)
            let corr = _mm256_add_pd(_mm256_mul_pd(sl, cp), _mm256_mul_pd(cl, sp));
            _mm256_add_pd(_mm256_mul_pd(sh, cp), _mm256_add_pd(_mm256_mul_pd(ch, sp), corr))
        };
        // neg = (x < 0) ^ k
        let neg = _mm256_xor_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(xd, c(0.0)), k);
        store4(y, g, negate_where(v, neg));
        dom |= ((_mm256_movemask_pd(m) as u32 as u64) & 0xF) << (4 * g);
    }
    dom
}

#[target_feature(enable = "avx2")]
unsafe fn cospi_stage<const PREFIX: bool>(xs: &[f32; LANES], y: &mut [f64; LANES], groups: u16) -> u64 {
    const TRUNC: i32 = _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC;
    let c = |v: f64| _mm256_set1_pd(v);
    let mut dom = 0u64;
    for g in 0..LANES / 4 {
        if groups & (1 << g) == 0 {
            continue;
        }
        let x = widen4(xs, g);
        let ax = abs4(x);
        let a2 = _mm256_mul_pd(c(2.0), ax);
        // finite && (7.77e-5..2^24).contains(a) && 2a != trunc(2a)
        let m = _mm256_and_pd(
            _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_GE_OQ>(ax, c(7.77e-5)),
                _mm256_cmp_pd::<_CMP_LT_OQ>(ax, c(16_777_216.0)),
            ),
            _mm256_cmp_pd::<_CMP_NEQ_OQ>(a2, _mm256_round_pd::<TRUNC>(a2)),
        );
        let xd = placeholder(x, m);
        let a = abs4(xd);
        let (k, l) = mod2_split4(a);
        let upper = _mm256_cmp_pd::<_CMP_GT_OQ>(l, c(0.5));
        let lp = _mm256_blendv_pd(l, _mm256_sub_pd(c(1.0), l), upper);
        // n in 0..=255 for staged lanes (lp < 1/2: half-integers are
        // filtered by the dom mask and placeholders land at lp = 0);
        // clamp is gather-safety only.
        let n = _mm_min_epi32(
            _mm256_cvttpd_epi32(_mm256_mul_pd(lp, c(512.0))),
            _mm_set1_epi32(255),
        );
        let n0 = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(_mm_cmpeq_epi32(n, _mm_setzero_si128())));
        // n == 0 branch: pure polynomial at lp.
        let v0 = cospi_tier4::<PREFIX>(lp);
        // n >= 1 branch: complementary recombination at np = n + 1.
        let np = _mm_add_epi32(n, _mm_set1_epi32(1));
        let r = _mm256_sub_pd(_mm256_div_pd(_mm256_cvtepi32_pd(np), c(512.0)), lp);
        let sp = sinpi_tier4::<PREFIX>(r);
        let cp = cospi_tier4::<PREFIX>(r);
        let v1 = if PREFIX {
            // Hi-only gathers, no corr fold (mirror of the scalar
            // prefix): v = ch·cp + sh·sp
            let ch = gather_cospi_hi4(np);
            let sh = gather_hi4(&t::SINPI_T_P, np, t::SINPI_T_HI_BASE);
            _mm256_add_pd(_mm256_mul_pd(ch, cp), _mm256_mul_pd(sh, sp))
        } else {
            let (ch, cl) = gather_cospi4(np);
            let (sh, sl) =
                gather_packed4(&t::SINPI_T_P, np, t::SINPI_T_HI_BASE, t::SINPI_T_LO_BASE);
            // corr = cl·cp + sl·sp; v = ch·cp + (sh·sp + corr)
            let corr = _mm256_add_pd(_mm256_mul_pd(cl, cp), _mm256_mul_pd(sl, sp));
            _mm256_add_pd(_mm256_mul_pd(ch, cp), _mm256_add_pd(_mm256_mul_pd(sh, sp), corr))
        };
        let v = _mm256_blendv_pd(v1, v0, n0);
        // sign = k ^ m(irror)
        let neg = _mm256_xor_pd(k, upper);
        store4(y, g, negate_where(v, neg));
        dom |= ((_mm256_movemask_pd(m) as u32 as u64) & 0xF) << (4 * g);
    }
    dom
}

// ---------------------------------------------------------------------
// dispatch targets (called by the entry points in `super`)
// ---------------------------------------------------------------------

pub(super) fn exp_slice(xs: &[f32], out: &mut [f32]) {
    drive_simd(
        xs,
        out,
        exp_stage::<true>,
        fast::EXP_PREFIX_BAND,
        exp_stage::<false>,
        fast::EXP_BAND,
        crate::stats::slot::EXP,
        crate::exp,
    )
}

pub(super) fn exp2_slice(xs: &[f32], out: &mut [f32]) {
    drive_simd(
        xs,
        out,
        exp2_stage::<true>,
        fast::EXP2_PREFIX_BAND,
        exp2_stage::<false>,
        fast::EXP2_BAND,
        crate::stats::slot::EXP2,
        crate::exp2,
    )
}

pub(super) fn exp10_slice(xs: &[f32], out: &mut [f32]) {
    drive_simd(
        xs,
        out,
        exp10_stage::<true>,
        fast::EXP10_PREFIX_BAND,
        exp10_stage::<false>,
        fast::EXP10_BAND,
        crate::stats::slot::EXP10,
        crate::exp10,
    )
}

pub(super) fn ln_slice(xs: &[f32], out: &mut [f32]) {
    drive_simd(
        xs,
        out,
        ln_stage::<true>,
        fast::LN_PREFIX_BAND,
        ln_stage::<false>,
        fast::LN_BAND,
        crate::stats::slot::LN,
        crate::ln,
    )
}

pub(super) fn log2_slice(xs: &[f32], out: &mut [f32]) {
    drive_simd(
        xs,
        out,
        log2_stage::<true>,
        fast::LOG2_PREFIX_BAND,
        log2_stage::<false>,
        fast::LOG2_BAND,
        crate::stats::slot::LOG2,
        crate::log2,
    )
}

pub(super) fn log10_slice(xs: &[f32], out: &mut [f32]) {
    drive_simd(
        xs,
        out,
        log10_stage::<true>,
        fast::LOG10_PREFIX_BAND,
        log10_stage::<false>,
        fast::LOG10_BAND,
        crate::stats::slot::LOG10,
        crate::log10,
    )
}

pub(super) fn sinh_slice(xs: &[f32], out: &mut [f32]) {
    drive_simd(
        xs,
        out,
        sinh_stage::<true>,
        fast::SINH_PREFIX_BAND,
        sinh_stage::<false>,
        fast::SINH_BAND,
        crate::stats::slot::SINH,
        crate::sinh,
    )
}

pub(super) fn cosh_slice(xs: &[f32], out: &mut [f32]) {
    drive_simd(
        xs,
        out,
        cosh_stage::<true>,
        fast::COSH_PREFIX_BAND,
        cosh_stage::<false>,
        fast::COSH_BAND,
        crate::stats::slot::COSH,
        crate::cosh,
    )
}

pub(super) fn sinpi_slice(xs: &[f32], out: &mut [f32]) {
    drive_simd(
        xs,
        out,
        sinpi_stage::<true>,
        fast::SINPI_PREFIX_BAND,
        sinpi_stage::<false>,
        fast::SINPI_BAND,
        crate::stats::slot::SINPI,
        crate::sinpi,
    )
}

pub(super) fn cospi_slice(xs: &[f32], out: &mut [f32]) {
    drive_simd(
        xs,
        out,
        cospi_stage::<true>,
        fast::COSPI_PREFIX_BAND,
        cospi_stage::<false>,
        fast::COSPI_BAND,
        crate::stats::slot::COSPI,
        crate::cospi,
    )
}

#[cfg(test)]
mod tests {
    use super::super::LANES;
    use rlibm_fp::rng::XorShift64;

    const NAMES: [&str; 10] =
        ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh", "sinpi", "cospi"];

    /// The SIMD driver must be lane-for-lane bit-identical to the scalar
    /// map on adversarial inputs (specials, domain edges, random bit
    /// patterns, dense in-domain bands). This is the same contract the
    /// scalar slice tests pin; here it exercises the AVX2 stages
    /// directly because with the `simd` feature the public entry points
    /// route through them.
    #[test]
    fn simd_slices_are_bit_identical_to_scalar() {
        if !super::avx2_available() {
            return; // scalar fallback path: covered by the super tests
        }
        let mut xs = vec![
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MAX,
            f32::MIN,
            f32::MIN_POSITIVE,
            f32::from_bits(1),
            88.9,
            -106.5,
            128.5,
            -151.5,
            38.7,
            -45.7,
            90.5,
            0.5,
            2.5,
            8_388_609.0,
            1e-8,
            2e-4,
        ];
        let mut rng = XorShift64::new(0x51CE_51CE);
        for _ in 0..20_000 {
            xs.push(f32::from_bits(rng.next_u32()));
        }
        for i in 0..4000 {
            xs.push(-20.0 + i as f32 * 0.01);
            xs.push(f32::from_bits(0x3F00_0000 + i * 37));
        }
        let mut out = vec![0.0f32; xs.len()];
        for name in NAMES {
            crate::eval_slice_f32(name, &xs, &mut out).expect("known name");
            for (i, (&x, &got)) in xs.iter().zip(out.iter()).enumerate() {
                let want = crate::eval_f32_by_name(name, x).expect("known name");
                assert!(
                    got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                    "{name}[{i}]: x = {x:e} ({:#010x}): simd slice {got:e} vs scalar {want:e}",
                    x.to_bits()
                );
            }
        }
    }

    /// Partial chunks (tail shorter than the lane width, including
    /// shorter than one 4-lane group) pad with the placeholder and must
    /// still resolve every real lane correctly.
    #[test]
    fn simd_partial_chunks_match_scalar() {
        if !super::avx2_available() {
            return;
        }
        for len in [1usize, 3, 4, 5, 63, 64, 65, 67, 127, 130] {
            let xs: Vec<f32> = (0..len).map(|i| 0.3 + i as f32 * 0.41).collect();
            let mut out = vec![0.0f32; len];
            for name in NAMES {
                crate::eval_slice_f32(name, &xs, &mut out).expect("known name");
                for (&x, &got) in xs.iter().zip(out.iter()) {
                    let want = crate::eval_f32_by_name(name, x).expect("known name");
                    assert_eq!(got.to_bits(), want.to_bits(), "{name}({x:e}) len {len}");
                }
            }
        }
    }

    /// The vectorized safety mask agrees with the scalar predicate on
    /// every lane for random doubles and for values planted exactly at
    /// band edges.
    #[test]
    fn round_safe_mask_matches_scalar_predicate() {
        if !super::avx2_available() {
            return;
        }
        let mut rng = XorShift64::new(0xBEEF_CAFE);
        for band in [0u64, 16, 256, 1024, 2048] {
            let mut y = [0.0f64; LANES];
            for trial in 0..200 {
                for (i, lane) in y.iter_mut().enumerate() {
                    *lane = match (trial + i) % 5 {
                        0 => f64::from_bits(rng.next_u64()),
                        1 => {
                            let e = rng.uniform_f64(-130.0, 130.0);
                            rng.uniform_f64(1.0, 2.0) * e.exp2()
                        }
                        // Exactly on / next to a midpoint band edge.
                        2 => {
                            let mid = 1.0 + 2f64.powi(-24);
                            f64::from_bits(mid.to_bits() + band)
                        }
                        3 => {
                            let mid = 1.0 + 2f64.powi(-24);
                            f64::from_bits(mid.to_bits() + band + 1)
                        }
                        _ => [0.0, f64::NAN, f64::INFINITY, 2f64.powi(-127), -1.5]
                            [(trial + i) % 5 % 5],
                    };
                }
                let mask = unsafe { super::f32_round_safe_mask(&y, band) };
                for (i, &v) in y.iter().enumerate() {
                    assert_eq!(
                        (mask >> i) & 1 == 1,
                        crate::round::f32_round_safe(v, band),
                        "band {band}, lane {i}, y = {v:e} ({:#018x})",
                        v.to_bits()
                    );
                }
            }
        }
    }
}
