//! Lookup tables and double-double constants for the correctly rounded
//! kernels — **generated at build time** by `crates/libm/build.rs` from
//! the 160-bit oracle (`rlibm_mp::tables_src`) and pinned by the
//! committed checksum `crates/libm/tables.fnv`.
//!
//! The tables are stored **bit-packed** at a 15-byte stride (see
//! [`crate::tables_codec`] for the exact layout): each hi/lo pair keeps
//! all 52 mantissa bits but compresses the sign and exponent into a
//! 4-bit code against a per-column base, which the accessors expand
//! with two unaligned u64 loads and fixed shifts. `COSPI_T` is not
//! stored at all — `cos(pi n/512) == sin(pi (256-n)/512)` bit-for-bit,
//! so [`cospi_t`] mirror-indexes the sinpi table. Together that is
//! [`TABLE_BYTES_PACKED`] bytes in place of the former
//! [`TABLE_BYTES_UNPACKED`] (a 31% reduction), which matters because
//! every serving shard hammers these tables through the slice kernels:
//! smaller tables, fewer L1/L2 misses under concurrent traffic.
//!
//! Unpacking is exact — `tests/table_packing.rs` round-trips every
//! entry against the pre-packing committed bits — so kernel outputs are
//! bit-identical to the unpacked era. The AVX2 gather path in
//! [`crate::slice_simd`] decodes the same layout with vector loads at
//! byte offsets `15n` / `15n + 7`.
//!
//! Regenerate the pin (after an intentional oracle/packing change) with
//! `RLIBM_WRITE_TABLE_FNV=1 cargo build -p rlibm-math`, then re-certify.

use crate::tables_codec as codec;

include!(concat!(env!("OUT_DIR"), "/packed_tables.rs"));

/// `2^(j/64)` for `j in 0..64`, as a hi/lo double-double pair.
#[inline(always)]
pub fn exp2_64(j: usize) -> (f64, f64) {
    codec::unpack_entry(&EXP2_64_P, j, EXP2_64_HI_BASE, EXP2_64_LO_BASE)
}

/// `ln(1 + j/128)` for `j in 0..=128` (`j == 0` is exactly zero).
#[inline(always)]
pub fn ln_f(j: usize) -> (f64, f64) {
    codec::unpack_entry(&LN_F_P, j, LN_F_HI_BASE, LN_F_LO_BASE)
}

/// `log2(1 + j/128)` for `j in 0..=128`.
#[inline(always)]
pub fn log2_f(j: usize) -> (f64, f64) {
    codec::unpack_entry(&LOG2_F_P, j, LOG2_F_HI_BASE, LOG2_F_LO_BASE)
}

/// `log10(1 + j/128)` for `j in 0..=128`.
#[inline(always)]
pub fn log10_f(j: usize) -> (f64, f64) {
    codec::unpack_entry(&LOG10_F_P, j, LOG10_F_HI_BASE, LOG10_F_LO_BASE)
}

/// `sin(pi n/512)` for `n in 0..=256`.
#[inline(always)]
pub fn sinpi_t(n: usize) -> (f64, f64) {
    codec::unpack_entry(&SINPI_T_P, n, SINPI_T_HI_BASE, SINPI_T_LO_BASE)
}

/// `cos(pi n/512)` for `n in 0..=256` — the bit-exact mirror
/// `sinpi_t(256 - n)`, verified at build time.
#[inline(always)]
pub fn cospi_t(n: usize) -> (f64, f64) {
    sinpi_t(256 - n)
}

// Hi-word-only accessors — the prefix tier's table reads. Every prefix
// band dwarfs the lo column's contribution (at most ~1 f64 ulp of the
// hi word, amplified to a few hundred 2^-53 units by the log family's
// post-fold cancellation floor — see the tier-0 band notes in
// `crate::fast`), so tier 0 decodes a single u64 per entry and touches
// half the packed bytes. The full tier keeps the exact hi/lo pairs.

/// Hi word only of [`exp2_64`].
#[inline(always)]
pub fn exp2_64_hi(j: usize) -> f64 {
    codec::unpack_hi(&EXP2_64_P, j, EXP2_64_HI_BASE)
}

/// Hi word only of [`ln_f`].
#[inline(always)]
pub fn ln_f_hi(j: usize) -> f64 {
    codec::unpack_hi(&LN_F_P, j, LN_F_HI_BASE)
}

/// Hi word only of [`log2_f`].
#[inline(always)]
pub fn log2_f_hi(j: usize) -> f64 {
    codec::unpack_hi(&LOG2_F_P, j, LOG2_F_HI_BASE)
}

/// Hi word only of [`log10_f`].
#[inline(always)]
pub fn log10_f_hi(j: usize) -> f64 {
    codec::unpack_hi(&LOG10_F_P, j, LOG10_F_HI_BASE)
}

/// Hi word only of [`sinpi_t`].
#[inline(always)]
pub fn sinpi_t_hi(n: usize) -> f64 {
    codec::unpack_hi(&SINPI_T_P, n, SINPI_T_HI_BASE)
}

/// Hi word only of [`cospi_t`] (mirror of [`sinpi_t_hi`]).
#[inline(always)]
pub fn cospi_t_hi(n: usize) -> f64 {
    sinpi_t_hi(256 - n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_entries_unpack_exactly() {
        assert_eq!(exp2_64(0), (1.0, 0.0));
        assert_eq!(ln_f(0), (0.0, 0.0));
        assert_eq!(ln_f(128).0, core::f64::consts::LN_2);
        assert_eq!(log2_f(128), (1.0, 0.0));
        assert_eq!(sinpi_t(0), (0.0, 0.0));
        assert_eq!(sinpi_t(256), (1.0, 0.0));
        assert_eq!(cospi_t(0), (1.0, 0.0));
        assert_eq!(cospi_t(256), (0.0, 0.0));
    }

    #[test]
    fn lo_parts_keep_their_signs() {
        // The packed lo column carries a real sign bit; at least one
        // entry per table is negative in the committed data.
        for table in [ln_f as fn(usize) -> (f64, f64), log2_f, log10_f, sinpi_t] {
            assert!(
                (0..=128).any(|j| table(j).1 < 0.0),
                "no negative lo part survived unpacking"
            );
        }
    }

    #[test]
    fn hi_accessors_match_pair_hi() {
        for j in 0..64 {
            assert_eq!(exp2_64_hi(j).to_bits(), exp2_64(j).0.to_bits());
        }
        for j in 0..=128 {
            assert_eq!(ln_f_hi(j).to_bits(), ln_f(j).0.to_bits());
            assert_eq!(log2_f_hi(j).to_bits(), log2_f(j).0.to_bits());
            assert_eq!(log10_f_hi(j).to_bits(), log10_f(j).0.to_bits());
        }
        for n in 0..=256 {
            assert_eq!(sinpi_t_hi(n).to_bits(), sinpi_t(n).0.to_bits());
            assert_eq!(cospi_t_hi(n).to_bits(), cospi_t(n).0.to_bits());
        }
    }

    #[test]
    fn packed_sizes_add_up() {
        assert_eq!(
            TABLE_BYTES_PACKED,
            EXP2_64_P.len() + LN_F_P.len() + LOG2_F_P.len() + LOG10_F_P.len() + SINPI_T_P.len()
        );
        // The acceptance gate: >= 30% fewer table bytes than the
        // unpacked [(f64, f64)] representation.
        const { assert!(TABLE_BYTES_PACKED * 10 <= TABLE_BYTES_UNPACKED * 7) }
    }
}
