//! Plain-double **fast-path kernels** — the paper's actual evaluation
//! regime (`H = double`), recovered.
//!
//! The dd kernels in [`crate::float`] carry double-double pairs through
//! every accuracy-critical step, which buys a ~2^-85 evaluation error at a
//! self-measured 2-3x instruction cost (each `two_prod` is an `fma`
//! libcall on the workspace's baseline x86-64 target). RLIBM-32 never pays
//! that tax: its generated polynomials evaluate in *plain double* and the
//! result is still correctly rounded because the double sits far enough
//! from every rounding boundary of the 32-bit target.
//!
//! This module reproduces that regime as a **certified two-tier design**:
//!
//! 1. every function gets a plain-double kernel (reduction, table lookup,
//!    Horner — no double-double, no `fma` libcalls) with a *statically
//!    derived* relative error bound `BAND · 2^-53`;
//! 2. the front end checks, with one bit-pattern test
//!    ([`crate::round::f32_round_safe`] / `posit32_round_safe`]), whether
//!    the double could lie within that bound of a rounding boundary of the
//!    target grid. If it cannot, rounding the double **is** the correct
//!    rounding and the fast result ships;
//! 3. otherwise (a few parts per million of inputs) the existing dd +
//!    round-to-odd kernel re-runs — Ziv's two-step strategy with a
//!    statically certified first step instead of a dynamically widened
//!    one.
//!
//! # Certification argument
//!
//! Each kernel's bound is derived below from the classical op-by-op model
//! (every +,-,*,/ rounds with relative error <= 2^-53; exact steps are
//! called out) and then padded by 4-7 bits of margin. The bounds are
//! additionally validated empirically: the workspace tests compare the
//! two-tier output **bit-for-bit** against the pure dd kernels over the
//! exhaustive bfloat16 domain and million-input stratified f32/posit32
//! sweeps, and the tier-1 oracle tests (multi-precision Ziv oracle) cover
//! the composed pipeline. A band violation would surface as a bit
//! difference in those sweeps.
//!
//! Per-kernel error derivations (all relative to the final result, in
//! units of 2^-53; `u` denotes one rounding):
//!
//! | kernel | dominant terms | bound | BAND |
//! |---|---|---|---|
//! | `exp`   | reduction exact + 1u, poly ~4u, table combine ~2u | ~8u | 256 |
//! | `exp2`  | `t = x - k/64` exact (Sterbenz), rest as `exp` | ~8u | 256 |
//! | `exp10` | `x·LN10_HI` rounds before a 2^7 cancellation: ~2^7 u | ~160u | 1024 |
//! | `ln`    | `e·LN2_HI42` exact; cancellation vs table is Sterbenz-exact; poly-vs-result amplification <= 2.7x | ~16u | 256 |
//! | `log2`  | `e + table.0` exact in the cancelling case (integer + [1/2,1)) | ~16u | 256 |
//! | `log10` | `e·LOG10_2_HI` exact for the only cancelling `e = -1` | ~24u | 384 |
//! | `sinh`  | `(A - 1/A)` cancels <= coth(1/16) ~ 16x of ~4u | ~70u | 2048 |
//! | `cosh`  | `(A + 1/A)` never cancels | ~8u | 512 |
//! | `sinpi` | recombination terms share a sign; min result 0.0061 amplifies ~3u absolute | ~500u worst, pure-poly ~4u when `N = 0` | 2048 |
//! | `cospi` | Section 5 monotonic recombination, same shape as `sinpi` | ~500u | 2048 |
//!
//! The `sinpi`/`cospi` "amplification" rows deserve a note: for table
//! index `N = 0` (resp. `N' = 256`) the result *is* the polynomial value
//! and stays relatively accurate all the way to the smallest outputs; for
//! `N >= 1` the result is bounded below by `sin(pi/512) ~ 0.0061`, so a
//! ~3·2^-53 absolute error is at most ~500·2^-53 relative. The same
//! argument bounds `ln`/`log2`/`log10` away from their `x -> 1`
//! cancellation: the folded reduction (table index 128 -> exponent+1)
//! routes every input with `|log(x)| < ~0.0015` through the pure-poly
//! branch.
//!
//! All kernels require a **finite, in-domain** input (the front ends
//! filter specials first) and produce a finite double; out-of-range
//! results (f32-subnormal, posit regime > 24) are rejected by the safety
//! test itself, so the kernels never need to reason about them.

use crate::float::exp::pow2i;
use crate::tables as t;

// Certified relative error bounds, in units of 2^-53 (see module docs).
pub(crate) const EXP_BAND: u64 = 256;
pub(crate) const EXP2_BAND: u64 = 256;
pub(crate) const EXP10_BAND: u64 = 1024;
pub(crate) const LN_BAND: u64 = 256;
pub(crate) const LOG2_BAND: u64 = 256;
pub(crate) const LOG10_BAND: u64 = 384;
pub(crate) const SINH_BAND: u64 = 2048;
pub(crate) const COSH_BAND: u64 = 512;
pub(crate) const SINPI_BAND: u64 = 2048;
pub(crate) const COSPI_BAND: u64 = 2048;

// Derived worst-case kernel errors from the table above, rounded *up* to
// the next power of two (same 2^-53 units as the bands). The difference
// `BAND - DERIVED` is the certification **slack**: a perturbation that
// moves a kernel result by at most that many f64 ulps keeps the total
// error within BAND, so an accepted round-safe test still implies a
// correct cast. The `fault` feature's in-band nudges are sized by these
// (see `crate::fault`).
#[cfg_attr(not(feature = "fault"), allow(dead_code))]
pub(crate) const EXP_DERIVED: u64 = 16;
#[cfg_attr(not(feature = "fault"), allow(dead_code))]
pub(crate) const EXP2_DERIVED: u64 = 16;
#[cfg_attr(not(feature = "fault"), allow(dead_code))]
pub(crate) const EXP10_DERIVED: u64 = 256;
#[cfg_attr(not(feature = "fault"), allow(dead_code))]
pub(crate) const LN_DERIVED: u64 = 32;
#[cfg_attr(not(feature = "fault"), allow(dead_code))]
pub(crate) const LOG2_DERIVED: u64 = 32;
#[cfg_attr(not(feature = "fault"), allow(dead_code))]
pub(crate) const LOG10_DERIVED: u64 = 64;
#[cfg_attr(not(feature = "fault"), allow(dead_code))]
pub(crate) const SINH_DERIVED: u64 = 128;
#[cfg_attr(not(feature = "fault"), allow(dead_code))]
pub(crate) const COSH_DERIVED: u64 = 16;
#[cfg_attr(not(feature = "fault"), allow(dead_code))]
pub(crate) const SINPI_DERIVED: u64 = 1024;
#[cfg_attr(not(feature = "fault"), allow(dead_code))]
pub(crate) const COSPI_DERIVED: u64 = 1024;

// ---------------------------------------------------------------------
// Progressive prefix tier (tier 0)
// ---------------------------------------------------------------------
//
// Each function also gets a **prefix kernel**: the same reduction and
// table combine, but evaluating only a low-degree prefix of the
// polynomial (the progressive sets `rlibm_core::polygen::gen_progressive`
// emits). The truncation error is larger, so the prefix result is tested
// against a wider `*_PREFIX_BAND`; the rare escalations (the band is
// still a tiny fraction of the 2^28-scale rounding boundary, so well
// under 1% of inputs) re-run the full-degree kernel, and only *its*
// rejects reach dd. Output bits are unchanged at every tier: both safety
// tests are sound for any in-band error, so whichever tier ships, the
// cast is the correct rounding.
//
// Prefix bands, same 2^-53 relative units. Derivations mirror the full
// table above with the truncated tail added. The prefix kernels also
// read only the **hi words** of the packed tables (half the bytes, one
// u64 decode per entry): the dropped lo word is < 2^-54 of its hi word,
// which is under 1u for the exp family and at most a few hundred u for
// the log family at the fold's ~0.0027 cancellation floor — noise
// against every band below, and any excursion simply escalates a tier.
//
// | prefix kernel | dropped terms | added trunc error | PREFIX_BAND |
// |---|---|---|---|
// | `exp`/`exp2` | r^5/120.. | r^5/120 <= ~351u at |r| <= ln2/128 | 2048 |
// | `exp10` | r^5/120.. | ~351u on top of the ~160u reduction | 4096 |
// | logs | u^4 term of q on | u^6/6 abs; <= ~2300u rel after the fold's 0.0027 floor (x1.44 for log2) | 16384 |
// | `sinh` | via prefix exp | ~351u x coth(1/16) ~ 16 | 16384 |
// | `cosh` | via prefix exp | ~351u, no cancellation | 2048 |
// | `sinpi`/`cospi` | C5, C7 of sp; C6 of cp | C5·r^5 ~ 7.3e-14 abs vs the 0.0061 result floor: ~110000u | 1 << 19 |
pub(crate) const EXP_PREFIX_BAND: u64 = 2048;
pub(crate) const EXP2_PREFIX_BAND: u64 = 2048;
pub(crate) const EXP10_PREFIX_BAND: u64 = 4096;
pub(crate) const LN_PREFIX_BAND: u64 = 16384;
pub(crate) const LOG2_PREFIX_BAND: u64 = 16384;
pub(crate) const LOG10_PREFIX_BAND: u64 = 16384;
pub(crate) const SINH_PREFIX_BAND: u64 = 16384;
pub(crate) const COSH_PREFIX_BAND: u64 = 2048;
pub(crate) const SINPI_PREFIX_BAND: u64 = 1 << 19;
pub(crate) const COSPI_PREFIX_BAND: u64 = 1 << 19;

// Derived worst-case prefix errors, rounded up to a power of two. The
// `fault` hook still nudges by the *full-band* slack (`BAND - DERIVED`)
// but now at the prefix site, so soundness needs
// `PREFIX_DERIVED + (BAND - DERIVED) <= PREFIX_BAND` — asserted for
// every function in the tests below.
pub(crate) const EXP_PREFIX_DERIVED: u64 = 512;
pub(crate) const EXP2_PREFIX_DERIVED: u64 = 512;
pub(crate) const EXP10_PREFIX_DERIVED: u64 = 1024;
pub(crate) const LN_PREFIX_DERIVED: u64 = 4096;
pub(crate) const LOG2_PREFIX_DERIVED: u64 = 4096;
pub(crate) const LOG10_PREFIX_DERIVED: u64 = 4096;
pub(crate) const SINH_PREFIX_DERIVED: u64 = 8192;
pub(crate) const COSH_PREFIX_DERIVED: u64 = 512;
pub(crate) const SINPI_PREFIX_DERIVED: u64 = 1 << 17;
pub(crate) const COSPI_PREFIX_DERIVED: u64 = 1 << 17;

// ---------------------------------------------------------------------
// exp family
// ---------------------------------------------------------------------

/// Degree-7 Taylor for `e^r`, `|r| <= ln2/128`, plain Horner.
///
/// Structured as `1 + r·(1 + r·q(r))` so the relative error stays a few
/// ulps even as `r -> 0`. Truncation `r^8/8! < 2^-75`.
#[inline(always)]
pub(crate) fn exp_poly_fast(r: f64) -> f64 {
    let q = 0.5
        + r * (1.0 / 6.0
            + r * (1.0 / 24.0 + r * (1.0 / 120.0 + r * (1.0 / 720.0 + r * (1.0 / 5040.0)))));
    1.0 + r * (1.0 + r * q)
}

/// `2^(k/64) · e^r` in plain double. The table's `lo` word is folded in
/// with one add (`p ~ 1`, so `tl·p ~ tl`), recovering ~half a bit.
#[inline(always)]
pub(crate) fn exp_combined_fast(k64: i64, r: f64) -> f64 {
    let i = k64.div_euclid(64);
    let j = k64.rem_euclid(64) as usize;
    let (th, tl) = t::exp2_64(j);
    (th * exp_poly_fast(r) + tl) * pow2i(i)
}

/// Fast `e^x`. Requires finite `|x| <= 91` (so `|k| < 2^14` keeps
/// `k·LN2_64_HI` exact: 39-bit constant x 14-bit integer).
#[inline(always)]
pub(crate) fn exp_fast(x: f64) -> f64 {
    let k = (x * (64.0 * t::LOG2_E)).round_ties_even() as i64;
    let kf = k as f64;
    // x - k·LN2_64_HI is exact (cancellation => Sterbenz); the MID word is
    // a power of two, so its product is exact and the subtraction rounds
    // once: |delta r| <= ulp(ln2/128) ~ 2^-60.
    let r = (x - kf * t::LN2_64_HI) - kf * t::LN2_64_MID;
    exp_combined_fast(k, r)
}

/// Fast `2^x`. Requires finite `|x| <= 155`.
#[inline(always)]
pub(crate) fn exp2_fast(x: f64) -> f64 {
    let k = (x * 64.0).round_ties_even() as i64;
    let tt = x - (k as f64) / 64.0; // exact: shared grid, Sterbenz
    let r = tt * t::LN2_HI + tt * t::LN2_LO;
    exp_combined_fast(k, r)
}

/// Fast `10^x`. Requires finite `|x| <= 40`.
///
/// The reduced argument cancels ~7 bits of `x·ln10`, and `x·LN10_HI`
/// rounds *before* the cancellation — the dominant ~2^-46 relative error
/// in the table above, absorbed by `EXP10_BAND`.
#[inline(always)]
pub(crate) fn exp10_fast(x: f64) -> f64 {
    let k = (x * (64.0 * t::LOG2_10)).round_ties_even() as i64;
    let kf = k as f64;
    let b = kf * t::LN2_64_HI; // exact (|k| < 2^14)
    let r = (x * t::LN10_HI - b) + (x * t::LN10_LO - kf * t::LN2_64_MID);
    exp_combined_fast(k, r)
}

/// Degree-4 prefix of [`exp_poly_fast`] (progressive tier 0): drops the
/// `1/120..1/5040` tail, truncation `r^5/120 <= ~351·2^-53` relative at
/// `|r| <= ln2/128`.
#[inline(always)]
pub(crate) fn exp_poly_prefix(r: f64) -> f64 {
    1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0))))
}

/// [`exp_combined_fast`] with the prefix polynomial.
#[inline(always)]
pub(crate) fn exp_combined_prefix(k64: i64, r: f64) -> f64 {
    let i = k64.div_euclid(64);
    let j = k64.rem_euclid(64) as usize;
    // Hi-only table read: the dropped lo word is < 2^-54·th, under 1u
    // against the 2048u prefix band (see the tier-0 notes above).
    t::exp2_64_hi(j) * exp_poly_prefix(r) * pow2i(i)
}

/// Prefix-tier `e^x` (same reduction as [`exp_fast`]).
#[inline(always)]
pub(crate) fn exp_prefix(x: f64) -> f64 {
    let k = (x * (64.0 * t::LOG2_E)).round_ties_even() as i64;
    let kf = k as f64;
    let r = (x - kf * t::LN2_64_HI) - kf * t::LN2_64_MID;
    exp_combined_prefix(k, r)
}

/// Prefix-tier `2^x`.
#[inline(always)]
pub(crate) fn exp2_prefix(x: f64) -> f64 {
    let k = (x * 64.0).round_ties_even() as i64;
    let tt = x - (k as f64) / 64.0;
    let r = tt * t::LN2_HI + tt * t::LN2_LO;
    exp_combined_prefix(k, r)
}

/// Prefix-tier `10^x`.
#[inline(always)]
pub(crate) fn exp10_prefix(x: f64) -> f64 {
    let k = (x * (64.0 * t::LOG2_10)).round_ties_even() as i64;
    let kf = k as f64;
    let b = kf * t::LN2_64_HI;
    let r = (x * t::LN10_HI - b) + (x * t::LN10_LO - kf * t::LN2_64_MID);
    exp_combined_prefix(k, r)
}

// ---------------------------------------------------------------------
// log family
// ---------------------------------------------------------------------

/// Plain-double Tang reduction with the **index-128 fold**: `j = 128` is
/// remapped to `(e + 1, j = 0)`, so every input with `|log x| < ~0.0039`
/// lands in the pure-polynomial branch (`e = 0, j = 0`) where the result
/// keeps *relative* accuracy. Returns `(e, j, u)` with `u = (z - F)/F`.
#[inline(always)]
pub(crate) fn reduce_fast(x: f64) -> (i64, usize, f64) {
    debug_assert!(x >= f64::MIN_POSITIVE && x.is_finite());
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut z = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    let mut j = ((z - 1.0) * 128.0).round_ties_even() as usize; // 0..=128
    if j == 128 {
        e += 1;
        z *= 0.5; // exact
        j = 0;
    }
    let f = 1.0 + j as f64 / 128.0;
    let num = z - f; // exact: same binade, shared grid (Sterbenz at j = 0)
    (e, j, num / f)
}

/// `log1p(u)` for `|u| <= 1/256 + slack`, plain Horner, structured as
/// `u + u^2·q(u)` for small-`u` relative accuracy. Truncation `u^9/9`.
#[inline(always)]
pub(crate) fn log1p_poly_fast(u: f64) -> f64 {
    let q = -0.5
        + u * (1.0 / 3.0
            + u * (-0.25 + u * (0.2 + u * (-1.0 / 6.0 + u * (1.0 / 7.0 - u * 0.125)))));
    u + (u * u) * q
}

/// Fast `ln(x)` for finite positive normal-f64 `x`.
#[inline(always)]
pub(crate) fn ln_fast(x: f64) -> f64 {
    let (e, j, u) = reduce_fast(x);
    let ef = e as f64;
    // ef·LN2_HI42 is exact (42-bit constant x |e| <= 2^11); when it
    // cancels against the table value the sum is Sterbenz-exact.
    let (fh, fl) = t::ln_f(j);
    let c = ef * t::LN2_HI42 + fh;
    let lo = fl + ef * t::LN2_MID;
    c + (log1p_poly_fast(u) + lo)
}

/// Fast `log2(x)`.
#[inline(always)]
pub(crate) fn log2_fast(x: f64) -> f64 {
    let (e, j, u) = reduce_fast(x);
    // Integer + [0, 1): exact whenever it cancels (e = -1, j near 128).
    let (fh, fl) = t::log2_f(j);
    let c = e as f64 + fh;
    let p = log1p_poly_fast(u);
    c + (p * t::INV_LN2_HI + (fl + p * t::INV_LN2_LO))
}

/// Fast `log10(x)`.
#[inline(always)]
pub(crate) fn log10_fast(x: f64) -> f64 {
    let (e, j, u) = reduce_fast(x);
    let ef = e as f64;
    // The only cancelling exponent is e = -1, where the product is exact.
    let (fh, fl) = t::log10_f(j);
    let c = ef * t::LOG10_2_HI + fh;
    let p = log1p_poly_fast(u);
    c + (p * t::INV_LN10_HI + (fl + ef * t::LOG10_2_LO + p * t::INV_LN10_LO))
}

/// Degree-5 prefix of [`log1p_poly_fast`]: `q` keeps terms through
/// `u^3/5`, truncation `u^6/6` absolute.
#[inline(always)]
pub(crate) fn log1p_poly_prefix(u: f64) -> f64 {
    let q = -0.5 + u * (1.0 / 3.0 + u * (-0.25 + u * 0.2));
    u + (u * u) * q
}

/// Prefix-tier `ln(x)`.
#[inline(always)]
pub(crate) fn ln_prefix(x: f64) -> f64 {
    let (e, j, u) = reduce_fast(x);
    let ef = e as f64;
    // Hi-only table reads throughout the log-family prefix tier: the
    // dropped lo word is < 2^-54 absolute, ~200u relative at the fold's
    // cancellation floor — far inside the 16384u prefix band.
    let c = ef * t::LN2_HI42 + t::ln_f_hi(j);
    c + (log1p_poly_prefix(u) + ef * t::LN2_MID)
}

/// Prefix-tier `log2(x)`.
#[inline(always)]
pub(crate) fn log2_prefix(x: f64) -> f64 {
    let (e, j, u) = reduce_fast(x);
    let c = e as f64 + t::log2_f_hi(j);
    let p = log1p_poly_prefix(u);
    c + (p * t::INV_LN2_HI + p * t::INV_LN2_LO)
}

/// Prefix-tier `log10(x)`.
#[inline(always)]
pub(crate) fn log10_prefix(x: f64) -> f64 {
    let (e, j, u) = reduce_fast(x);
    let ef = e as f64;
    let c = ef * t::LOG10_2_HI + t::log10_f_hi(j);
    let p = log1p_poly_prefix(u);
    c + (p * t::INV_LN10_HI + (ef * t::LOG10_2_LO + p * t::INV_LN10_LO))
}

// ---------------------------------------------------------------------
// hyperbolic family
// ---------------------------------------------------------------------

/// Fast `sinh(x)` for finite `2^-11 <= |x| <= 91` (the front ends return
/// `x` itself below 2^-11, where `sinh(x)` rounds to `x` in every 32-bit
/// target). Below 2^-4 the odd Taylor series avoids the `A - 1/A`
/// cancellation entirely; above it the cancellation is bounded by
/// `coth(1/16) ~ 16`.
#[inline(always)]
pub(crate) fn sinh_fast(x: f64) -> f64 {
    let a = x.abs();
    let v = if a < 0.0625 {
        let x2 = a * a;
        a + a * x2
            * (1.0 / 6.0 + x2 * (1.0 / 120.0 + x2 * (1.0 / 5040.0 + x2 * (1.0 / 362_880.0))))
    } else {
        let big = exp_fast(a);
        0.5 * (big - 1.0 / big)
    };
    if x < 0.0 {
        -v
    } else {
        v
    }
}

/// Fast `cosh(x)` for finite `|x| <= 91`. `A + 1/A` never cancels.
#[inline(always)]
pub(crate) fn cosh_fast(x: f64) -> f64 {
    let a = x.abs();
    if a < 0.0625 {
        let x2 = a * a;
        1.0 + x2 * (0.5 + x2 * (1.0 / 24.0 + x2 * (1.0 / 720.0 + x2 * (1.0 / 40_320.0))))
    } else {
        let big = exp_fast(a);
        0.5 * (big + 1.0 / big)
    }
}

/// Prefix-tier `sinh(x)`: the dominant branch runs [`exp_prefix`]; the
/// small-|x| Taylor branch is already cheap and stays at full degree, so
/// its error remains inside even the full band.
#[inline(always)]
pub(crate) fn sinh_prefix(x: f64) -> f64 {
    let a = x.abs();
    let v = if a < 0.0625 {
        let x2 = a * a;
        a + a * x2
            * (1.0 / 6.0 + x2 * (1.0 / 120.0 + x2 * (1.0 / 5040.0 + x2 * (1.0 / 362_880.0))))
    } else {
        let big = exp_prefix(a);
        0.5 * (big - 1.0 / big)
    };
    if x < 0.0 {
        -v
    } else {
        v
    }
}

/// Prefix-tier `cosh(x)` (see [`sinh_prefix`] for the branch policy).
#[inline(always)]
pub(crate) fn cosh_prefix(x: f64) -> f64 {
    let a = x.abs();
    if a < 0.0625 {
        let x2 = a * a;
        1.0 + x2 * (0.5 + x2 * (1.0 / 24.0 + x2 * (1.0 / 720.0 + x2 * (1.0 / 40_320.0))))
    } else {
        let big = exp_prefix(a);
        0.5 * (big + 1.0 / big)
    }
}

// ---------------------------------------------------------------------
// sinpi / cospi
// ---------------------------------------------------------------------

/// `sin(pi r)` for exact `r in [0, 1/512]`, plain double, relative
/// accurate as `r -> 0` (leading term rounds once).
#[inline(always)]
pub(crate) fn sinpi_poly_fast(r: f64) -> f64 {
    let r2 = r * r;
    r * t::PI_HI + (r * t::PI_LO + r * r2 * (t::SINPI_C3 + r2 * (t::SINPI_C5 + r2 * t::SINPI_C7)))
}

/// `cos(pi r)` for exact `r in [0, 1/512]`, plain double.
#[inline(always)]
pub(crate) fn cospi_poly_fast(r: f64) -> f64 {
    let r2 = r * r;
    1.0 + (r2 * t::COSPI_C2_HI + (r2 * t::COSPI_C2_LO + r2 * r2 * (t::COSPI_C4 + r2 * t::COSPI_C6)))
}

/// `floor(x)` for non-negative `x < 2^53` via an exact integer-cast
/// round trip. `f64::floor` lowers to a dynamic libm call on the
/// baseline x86-64 target (no SSE4.1 `roundsd`), which costs more than
/// the whole surrounding reduction; two convert instructions don't.
#[inline(always)]
pub(crate) fn floor_pos(x: f64) -> f64 {
    (x as u64) as f64
}

/// Exact `a mod 2` split, shared with the dd kernel's structure.
#[inline(always)]
fn mod2_split_fast(a: f64) -> (bool, f64) {
    let j = a - 2.0 * floor_pos(a * 0.5);
    if j >= 1.0 {
        (true, j - 1.0)
    } else {
        (false, j)
    }
}

/// Fast `sinpi(|x|)` magnitude + half-period sign for non-integer
/// `2^-36 <= a < 2^23`. Mirrors `sinpi_kernel`: the table's `lo` words are
/// folded with two cheap products (`corr`), recovering the ~2^-54 they
/// carry.
#[inline(always)]
pub(crate) fn sinpi_fast_reduced(a: f64) -> (bool, f64) {
    let (k, l) = mod2_split_fast(a);
    let lp = if l > 0.5 { 1.0 - l } else { l };
    let n = (lp * 512.0) as usize; // as-cast truncation == floor (lp >= 0) // 0..=256
    let r = lp - n as f64 / 512.0; // exact
    let sp = sinpi_poly_fast(r);
    let cp = cospi_poly_fast(r);
    let (sh, sl) = t::sinpi_t(n);
    let (ch, cl) = t::cospi_t(n);
    // N = 0 has (sh, sl) = (0, 0) and (ch, cl) = (1, 0): v = sp exactly,
    // keeping relative accuracy for the smallest results.
    let corr = sl * cp + cl * sp;
    (k, sh * cp + (ch * sp + corr))
}

/// Fast `cospi` magnitude + sign for non-integer, non-half-integer
/// `7.77e-5 <= a < 2^24`. Section 5's monotonic recombination
/// (`L' = N'/512 - R`, both terms share a sign); `N' = 256` has table
/// value 0 and degenerates to the pure `sinpi` polynomial, keeping
/// relative accuracy near the zeros at half-integers.
#[inline(always)]
pub(crate) fn cospi_fast_reduced(a: f64) -> (bool, f64) {
    let (k, l) = mod2_split_fast(a);
    let (m, lp) = if l > 0.5 { (true, 1.0 - l) } else { (false, l) };
    let n = (lp * 512.0) as usize; // as-cast truncation == floor (lp >= 0) // 0..=255 (lp < 1/2 here)
    let v = if n == 0 {
        cospi_poly_fast(lp)
    } else {
        let np = n + 1;
        let r = np as f64 / 512.0 - lp; // exact
        let sp = sinpi_poly_fast(r);
        let cp = cospi_poly_fast(r);
        let (ch, cl) = t::cospi_t(np);
        let (sh, sl) = t::sinpi_t(np);
        let corr = cl * cp + sl * sp;
        ch * cp + (sh * sp + corr)
    };
    (k ^ m, v)
}

/// Degree-3 prefix of [`sinpi_poly_fast`] (drops `C5`, `C7`).
#[inline(always)]
pub(crate) fn sinpi_poly_prefix(r: f64) -> f64 {
    let r2 = r * r;
    r * t::PI_HI + (r * t::PI_LO + r * r2 * t::SINPI_C3)
}

/// Degree-4 prefix of [`cospi_poly_fast`] (drops `C6`).
#[inline(always)]
pub(crate) fn cospi_poly_prefix(r: f64) -> f64 {
    let r2 = r * r;
    1.0 + (r2 * t::COSPI_C2_HI + (r2 * t::COSPI_C2_LO + r2 * r2 * t::COSPI_C4))
}

/// Prefix-tier [`sinpi_fast_reduced`]. On top of the truncated
/// polynomials, the prefix tier drops the table `lo` words and the
/// `corr` fold entirely: the lo words carry ~2^-53 relative, invisible
/// against the certified `SINPI_PREFIX_BAND` of `2^19 * 2^-53 = 2^-34`,
/// and skipping them halves the tier's packed-table traffic (one u64
/// load + hi decode per entry).
#[inline(always)]
pub(crate) fn sinpi_prefix_reduced(a: f64) -> (bool, f64) {
    let (k, l) = mod2_split_fast(a);
    let lp = if l > 0.5 { 1.0 - l } else { l };
    let n = (lp * 512.0) as usize; // as-cast truncation == floor (lp >= 0)
    let r = lp - n as f64 / 512.0;
    let sp = sinpi_poly_prefix(r);
    let cp = cospi_poly_prefix(r);
    let sh = t::sinpi_t_hi(n);
    let ch = t::cospi_t_hi(n);
    (k, sh * cp + ch * sp)
}

/// Prefix-tier [`cospi_fast_reduced`] (hi-only table words; see
/// [`sinpi_prefix_reduced`]).
#[inline(always)]
pub(crate) fn cospi_prefix_reduced(a: f64) -> (bool, f64) {
    let (k, l) = mod2_split_fast(a);
    let (m, lp) = if l > 0.5 { (true, 1.0 - l) } else { (false, l) };
    let n = (lp * 512.0) as usize; // as-cast truncation == floor (lp >= 0)
    let v = if n == 0 {
        cospi_poly_prefix(lp)
    } else {
        let np = n + 1;
        let r = np as f64 / 512.0 - lp;
        let sp = sinpi_poly_prefix(r);
        let cp = cospi_poly_prefix(r);
        let ch = t::cospi_t_hi(np);
        let sh = t::sinpi_t_hi(np);
        ch * cp + sh * sp
    };
    (k ^ m, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::exp::{exp10_kernel, exp2_kernel, exp_kernel};
    use crate::float::hyper::{cosh_kernel, sinh_kernel};
    use crate::float::log::{ln_kernel, log10_kernel, log2_kernel};
    use rlibm_fp::rng::XorShift64;

    /// Checks the fast kernel against the dd kernel on random in-domain
    /// inputs: the observed relative error must stay within the certified
    /// band constant (the dd kernel is ~2^-85 accurate, so the difference
    /// is an excellent proxy for the fast kernel's true error).
    fn assert_within_band(
        fast: impl Fn(f64) -> f64,
        dd: impl Fn(f64) -> crate::dd::Dd,
        lo: f64,
        hi: f64,
        band: u64,
        log_domain: bool,
    ) {
        let mut rng = XorShift64::new(0xFA57);
        for _ in 0..20_000 {
            let x = if log_domain {
                // log-uniform positives
                let e = rng.uniform_f64(-120.0, 120.0);
                rng.uniform_f64(1.0, 2.0) * e.exp2()
            } else {
                rng.uniform_f64(lo, hi)
            };
            let got = fast(x);
            let want = dd(x).to_f64();
            let rel = ((got - want) / want).abs();
            assert!(
                rel <= band as f64 * 2f64.powi(-53),
                "fast kernel out of band at x = {x:e}: rel = {rel:e}, band = {band}"
            );
        }
    }

    #[test]
    fn exp_family_within_band() {
        assert_within_band(exp_fast, exp_kernel, -87.0, 88.0, EXP_BAND, false);
        assert_within_band(exp2_fast, exp2_kernel, -149.0, 127.9, EXP2_BAND, false);
        assert_within_band(exp10_fast, exp10_kernel, -45.0, 38.5, EXP10_BAND, false);
    }

    #[test]
    fn log_family_within_band() {
        assert_within_band(ln_fast, ln_kernel, 0.0, 0.0, LN_BAND, true);
        assert_within_band(log2_fast, log2_kernel, 0.0, 0.0, LOG2_BAND, true);
        assert_within_band(log10_fast, log10_kernel, 0.0, 0.0, LOG10_BAND, true);
    }

    #[test]
    fn hyper_within_band() {
        assert_within_band(sinh_fast, sinh_kernel, -88.0, 88.0, SINH_BAND, false);
        assert_within_band(cosh_fast, cosh_kernel, -88.0, 88.0, COSH_BAND, false);
    }

    #[test]
    fn log_cancellation_strip_within_band() {
        // The x -> 1 strip from both sides: the folded reduction must keep
        // relative accuracy where the dd kernel leans on double-doubles.
        for i in 1..2000u32 {
            for x in [
                1.0 + i as f64 * 2f64.powi(-24),
                1.0 - i as f64 * 2f64.powi(-25),
            ] {
                let got = ln_fast(x);
                let want = ln_kernel(x).to_f64();
                let rel = ((got - want) / want).abs();
                assert!(
                    rel <= LN_BAND as f64 * 2f64.powi(-53),
                    "ln_fast({x:e}): rel {rel:e}"
                );
            }
        }
    }

    #[test]
    fn trig_reduced_within_band() {
        let mut rng = XorShift64::new(0x517A);
        for _ in 0..20_000 {
            let a = rng.uniform_f64(2f64.powi(-30), 8_388_607.0);
            if a == a.trunc() {
                continue;
            }
            let (ks, vs) = sinpi_fast_reduced(a);
            let (kd, vd) = crate::float::trig::sinpi_kernel(a);
            assert_eq!(ks, kd);
            let want = vd.to_f64();
            if want != 0.0 {
                let rel = ((vs - want) / want).abs();
                assert!(
                    rel <= SINPI_BAND as f64 * 2f64.powi(-53),
                    "sinpi_fast({a:e}): rel {rel:e}"
                );
            }
        }
    }

    #[test]
    fn prefix_kernels_within_prefix_bands() {
        assert_within_band(exp_prefix, exp_kernel, -87.0, 88.0, EXP_PREFIX_BAND, false);
        assert_within_band(exp2_prefix, exp2_kernel, -149.0, 127.9, EXP2_PREFIX_BAND, false);
        assert_within_band(exp10_prefix, exp10_kernel, -45.0, 38.5, EXP10_PREFIX_BAND, false);
        assert_within_band(ln_prefix, ln_kernel, 0.0, 0.0, LN_PREFIX_BAND, true);
        assert_within_band(log2_prefix, log2_kernel, 0.0, 0.0, LOG2_PREFIX_BAND, true);
        assert_within_band(log10_prefix, log10_kernel, 0.0, 0.0, LOG10_PREFIX_BAND, true);
        assert_within_band(sinh_prefix, sinh_kernel, -88.0, 88.0, SINH_PREFIX_BAND, false);
        assert_within_band(cosh_prefix, cosh_kernel, -88.0, 88.0, COSH_PREFIX_BAND, false);
    }

    #[test]
    fn prefix_trig_within_prefix_bands() {
        let mut rng = XorShift64::new(0x9217);
        for _ in 0..20_000 {
            let a = rng.uniform_f64(2f64.powi(-30), 8_388_607.0);
            if a == a.trunc() {
                continue;
            }
            let (ks, vs) = sinpi_prefix_reduced(a);
            let (kd, vd) = crate::float::trig::sinpi_kernel(a);
            assert_eq!(ks, kd);
            let want = vd.to_f64();
            if want != 0.0 {
                let rel = ((vs - want) / want).abs();
                assert!(
                    rel <= SINPI_PREFIX_BAND as f64 * 2f64.powi(-53),
                    "sinpi_prefix({a:e}): rel {rel:e}"
                );
            }
            let a2 = rng.uniform_f64(1e-4, 16_777_215.0);
            if 2.0 * a2 == (2.0 * a2).trunc() {
                continue;
            }
            let (kc, vc) = cospi_prefix_reduced(a2);
            let (kd2, vd2) = crate::float::trig::cospi_kernel(a2);
            assert_eq!(kc, kd2);
            let want2 = vd2.to_f64();
            if want2 != 0.0 {
                let rel = ((vc - want2) / want2).abs();
                assert!(
                    rel <= COSPI_PREFIX_BAND as f64 * 2f64.powi(-53),
                    "cospi_prefix({a2:e}): rel {rel:e}"
                );
            }
        }
    }

    #[test]
    fn prefix_bands_absorb_full_band_fault_slack() {
        // The fault hook nudges prefix-tier results by the *full-band*
        // slack, so prefix acceptance stays sound only if
        // PREFIX_DERIVED + (BAND - DERIVED) <= PREFIX_BAND.
        let rows: [(u64, u64, u64, u64); 10] = [
            (EXP_PREFIX_DERIVED, EXP_BAND, EXP_DERIVED, EXP_PREFIX_BAND),
            (EXP2_PREFIX_DERIVED, EXP2_BAND, EXP2_DERIVED, EXP2_PREFIX_BAND),
            (EXP10_PREFIX_DERIVED, EXP10_BAND, EXP10_DERIVED, EXP10_PREFIX_BAND),
            (LN_PREFIX_DERIVED, LN_BAND, LN_DERIVED, LN_PREFIX_BAND),
            (LOG2_PREFIX_DERIVED, LOG2_BAND, LOG2_DERIVED, LOG2_PREFIX_BAND),
            (LOG10_PREFIX_DERIVED, LOG10_BAND, LOG10_DERIVED, LOG10_PREFIX_BAND),
            (SINH_PREFIX_DERIVED, SINH_BAND, SINH_DERIVED, SINH_PREFIX_BAND),
            (COSH_PREFIX_DERIVED, COSH_BAND, COSH_DERIVED, COSH_PREFIX_BAND),
            (SINPI_PREFIX_DERIVED, SINPI_BAND, SINPI_DERIVED, SINPI_PREFIX_BAND),
            (COSPI_PREFIX_DERIVED, COSPI_BAND, COSPI_DERIVED, COSPI_PREFIX_BAND),
        ];
        for (i, (pd, band, derived, pband)) in rows.iter().enumerate() {
            assert!(
                pd + (band - derived) <= *pband,
                "row {i}: prefix band cannot absorb the fault slack"
            );
            assert!(*pband < (1 << 26), "row {i}: band too wide for round_safe");
        }
    }

    #[test]
    fn fast_kernels_handle_domain_edges() {
        // exp at the f32 overflow edge stays finite in double.
        assert!(exp_fast(88.9).is_finite());
        assert!(exp2_fast(-150.9) > 0.0);
        // Pure-poly log branch at the fold boundary.
        let y = ln_fast(0.998_046_875); // z = 1.99609375 exactly, j = 128 pre-fold
        assert!((y - 0.998_046_875f64.ln()).abs() < 1e-15);
        // sinh parity.
        assert_eq!(sinh_fast(-3.25), -sinh_fast(3.25));
    }
}
