//! Correctly rounded IEEE binary16 ("half") functions. Like the bfloat16
//! set, small enough for exhaustive validation; unlike bfloat16, the
//! format has a narrow exponent range (±15) with a wide significand, so
//! its special-case thresholds sit in very different places — a useful
//! stress on the front-end logic.

use rlibm_fp::Half;

use crate::float::exp::{exp10_kernel, exp2_kernel, exp_kernel};
use crate::float::hyper::{cosh_kernel, sinh_kernel};
use crate::float::log::{ln_kernel, log10_kernel, log2_kernel};
use crate::round::round_dd;

macro_rules! half_log {
    ($(#[$doc:meta])* $name:ident, $kernel:ident) => {
        $(#[$doc])*
        pub fn $name(x: Half) -> Half {
            if x.is_nan() {
                return Half::NAN;
            }
            let xd = x.to_f64();
            if xd < 0.0 {
                return Half::NAN;
            }
            if xd == 0.0 {
                return Half::NEG_INFINITY;
            }
            if xd.is_infinite() {
                return Half::INFINITY;
            }
            round_dd($kernel(xd))
        }
    };
}

half_log!(
    /// Correctly rounded natural logarithm for binary16.
    ///
    /// ```
    /// use rlibm_fp::Half;
    /// assert_eq!(rlibm_math::half16::ln_f16(Half::ONE).to_f64(), 0.0);
    /// ```
    ln_f16, ln_kernel
);
half_log!(
    /// Correctly rounded base-2 logarithm for binary16.
    ///
    /// ```
    /// use rlibm_fp::Half;
    /// let y = rlibm_math::half16::log2_f16(Half::from_f64(8.0));
    /// assert_eq!(y.to_f64(), 3.0);
    /// ```
    log2_f16, log2_kernel
);
half_log!(
    /// Correctly rounded base-10 logarithm for binary16.
    ///
    /// ```
    /// use rlibm_fp::Half;
    /// let y = rlibm_math::half16::log10_f16(Half::from_f64(100.0));
    /// assert_eq!(y.to_f64(), 2.0);
    /// ```
    log10_f16, log10_kernel
);

/// Correctly rounded `e^x` for binary16 (overflows above `ln 65504+`).
///
/// ```
/// use rlibm_fp::Half;
/// assert_eq!(rlibm_math::half16::exp_f16(Half::ZERO).to_f64(), 1.0);
/// assert_eq!(rlibm_math::half16::exp_f16(Half::from_f64(12.0)).to_f64(), f64::INFINITY);
/// ```
pub fn exp_f16(x: Half) -> Half {
    if x.is_nan() {
        return Half::NAN;
    }
    let xd = x.to_f64();
    if xd > 11.1 {
        return Half::INFINITY; // exp(11.1) > 65520 (the overflow boundary)
    }
    if xd < -17.7 {
        return Half::ZERO; // exp(-17.7) < 2^-25 (half the min subnormal)
    }
    round_dd(exp_kernel(xd))
}

/// Correctly rounded `2^x` for binary16.
///
/// ```
/// use rlibm_fp::Half;
/// assert_eq!(rlibm_math::half16::exp2_f16(Half::from_f64(-3.0)).to_f64(), 0.125);
/// ```
pub fn exp2_f16(x: Half) -> Half {
    if x.is_nan() {
        return Half::NAN;
    }
    let xd = x.to_f64();
    if xd >= 16.0 {
        return Half::INFINITY;
    }
    if xd < -25.5 {
        return Half::ZERO;
    }
    round_dd(exp2_kernel(xd))
}

/// Correctly rounded `10^x` for binary16.
///
/// ```
/// use rlibm_fp::Half;
/// assert_eq!(rlibm_math::half16::exp10_f16(Half::from_f64(2.0)).to_f64(), 100.0);
/// ```
pub fn exp10_f16(x: Half) -> Half {
    if x.is_nan() {
        return Half::NAN;
    }
    let xd = x.to_f64();
    if xd > 4.82 {
        return Half::INFINITY;
    }
    if xd < -7.7 {
        return Half::ZERO;
    }
    round_dd(exp10_kernel(xd))
}

/// Correctly rounded hyperbolic sine for binary16.
///
/// ```
/// use rlibm_fp::Half;
/// let z = rlibm_math::half16::sinh_f16(Half::ZERO);
/// assert_eq!(z.to_f64(), 0.0);
/// ```
pub fn sinh_f16(x: Half) -> Half {
    if x.is_nan() {
        return Half::NAN;
    }
    let xd = x.to_f64();
    if xd == 0.0 {
        return x;
    }
    if xd > 11.8 {
        return Half::INFINITY;
    }
    if xd < -11.8 {
        return Half::NEG_INFINITY;
    }
    round_dd(sinh_kernel(xd))
}

/// Correctly rounded hyperbolic cosine for binary16.
///
/// ```
/// use rlibm_fp::Half;
/// assert_eq!(rlibm_math::half16::cosh_f16(Half::ZERO).to_f64(), 1.0);
/// ```
pub fn cosh_f16(x: Half) -> Half {
    if x.is_nan() {
        return Half::NAN;
    }
    if x.to_f64().abs() > 11.8 {
        return Half::INFINITY;
    }
    round_dd(cosh_kernel(x.to_f64()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials() {
        assert!(ln_f16(Half::from_f64(-1.0)).is_nan());
        assert_eq!(ln_f16(Half::ZERO).to_f64(), f64::NEG_INFINITY);
        assert_eq!(exp_f16(Half::NEG_INFINITY).to_f64(), 0.0);
        assert!(cosh_f16(Half::NAN).is_nan());
    }

    #[test]
    fn overflow_boundaries() {
        // ln(65504) = 11.0899...: exp overflows just above.
        assert!(exp_f16(Half::from_f64(11.0)).is_finite());
        assert!(exp_f16(Half::from_f64(11.1)).is_infinite());
        assert!(exp2_f16(Half::from_f64(15.9)).is_finite());
        assert!(exp2_f16(Half::from_f64(16.0)).is_infinite());
    }

    #[test]
    fn subnormal_results() {
        // exp2(-24.5) lands among binary16 subnormals.
        let y = exp2_f16(Half::from_f64(-24.5));
        assert!(y.to_f64() > 0.0 && y.to_f64() < 2f64.powi(-14));
    }
}
