//! # rlibm-math — the correctly rounded math library
//!
//! The runtime library produced by the RLIBM-32 approach (Lim &
//! Nagarakatte, PLDI 2021), reimplemented in Rust:
//!
//! * the **ten `f32` functions** of the paper's Table 1 — [`ln`],
//!   [`log2`], [`log10`], [`exp`], [`exp2`], [`exp10`], [`sinh`],
//!   [`cosh`], [`sinpi`], [`cospi`];
//! * the **eight posit32 functions** of Table 2 in [`posit`] — the first
//!   correctly rounded library for 32-bit posits;
//! * **bfloat16 functions** in [`bf16`] (exhaustively validated in the
//!   workspace tests);
//! * the **baseline models** in [`baselines`] used by the evaluation
//!   harnesses to reproduce the paper's comparisons.
//!
//! Every function follows the paper's published structure: special-case
//! filter, range reduction in double, table lookup, short polynomial,
//! output compensation — evaluated in **two tiers**. Tier 1 (the
//! private `fast` module) runs that structure in plain double with a statically
//! derived worst-case error band; a few integer ops on the result's
//! bit pattern ([`round::f32_round_safe`] / [`round::posit32_round_safe`])
//! certify the final cast is the correct rounding. The rare inputs
//! landing inside an unsafe band re-run the double-double kernels
//! ([`dd`]) with round-to-odd composition ([`round`]) — bit-identical
//! results, constructive accuracy argument, no double rounding. The
//! dd-only paths stay exported (`*_dd`) for certification sweeps, the
//! [`slice`] module batches tier 1 as structure-of-arrays chunks
//! ([`eval_slice_f32`] / [`eval_slice_posit32`]), and the
//! `fallback-counters` feature ([`stats`]) counts dd fallbacks for the
//! bench harnesses.
//!
//! # Quickstart
//!
//! ```
//! // float32:
//! assert_eq!(rlibm_math::log2(1024.0f32), 10.0);
//! assert_eq!(rlibm_math::sinpi(0.5f32), 1.0);
//!
//! // posit32:
//! use rlibm_posit::Posit32;
//! let x = Posit32::from_f64(2.0);
//! assert_eq!(rlibm_math::posit::log2_p32(x).to_f64(), 1.0);
//! ```

pub mod baselines;
pub mod bf16;
pub mod dd;
pub(crate) mod fast;
pub mod fault;
pub mod float;
pub mod half16;
pub mod p16;
pub mod posit;
pub mod round;
pub mod slice;
pub mod stats;
pub mod tables;
pub mod tables_codec;
pub mod tiers;

pub use float::{cosh, cospi, exp, exp10, exp2, ln, log10, log2, sinh, sinpi};
pub use slice::{eval_slice_f32, eval_slice_posit32, UnknownFunction};

/// Resolves one of the ten f32 functions by its paper-table name, or
/// `None` for an unknown name. Harnesses resolve once and call through
/// the pointer (no string comparison in the timed loop).
pub fn f32_fn_by_name(name: &str) -> Option<fn(f32) -> f32> {
    Some(match name {
        "ln" => ln,
        "log2" => log2,
        "log10" => log10,
        "exp" => exp,
        "exp2" => exp2,
        "exp10" => exp10,
        "sinh" => sinh,
        "cosh" => cosh,
        "sinpi" => sinpi,
        "cospi" => cospi,
        _ => return None,
    })
}

/// Resolves the dd-only (tier 2) variant of an f32 function by name —
/// the reference implementation the two-tier fast path must match
/// bit-for-bit, and the baseline the benches measure the fast path
/// against.
pub fn f32_dd_fn_by_name(name: &str) -> Option<fn(f32) -> f32> {
    Some(match name {
        "ln" => float::log::ln_dd,
        "log2" => float::log::log2_dd,
        "log10" => float::log::log10_dd,
        "exp" => float::exp::exp_dd,
        "exp2" => float::exp::exp2_dd,
        "exp10" => float::exp::exp10_dd,
        "sinh" => float::hyper::sinh_dd,
        "cosh" => float::hyper::cosh_dd,
        "sinpi" => float::trig::sinpi_dd,
        "cospi" => float::trig::cospi_dd,
        _ => return None,
    })
}

/// Resolves a posit32 function by name (see [`f32_fn_by_name`]).
pub fn posit32_fn_by_name(
    name: &str,
) -> Option<fn(rlibm_posit::Posit32) -> rlibm_posit::Posit32> {
    Some(match name {
        "ln" => posit::ln_p32,
        "log2" => posit::log2_p32,
        "log10" => posit::log10_p32,
        "exp" => posit::exp_p32,
        "exp2" => posit::exp2_p32,
        "exp10" => posit::exp10_p32,
        "sinh" => posit::sinh_p32,
        "cosh" => posit::cosh_p32,
        _ => return None,
    })
}

/// Resolves the dd-only (tier 2) variant of a posit32 function by name.
pub fn posit32_dd_fn_by_name(
    name: &str,
) -> Option<fn(rlibm_posit::Posit32) -> rlibm_posit::Posit32> {
    Some(match name {
        "ln" => posit::ln_p32_dd,
        "log2" => posit::log2_p32_dd,
        "log10" => posit::log10_p32_dd,
        "exp" => posit::exp_p32_dd,
        "exp2" => posit::exp2_p32_dd,
        "exp10" => posit::exp10_p32_dd,
        "sinh" => posit::sinh_p32_dd,
        "cosh" => posit::cosh_p32_dd,
        _ => return None,
    })
}

/// Resolves a float32-baseline function by name.
pub fn baseline_f32_fn_by_name(name: &str) -> Option<fn(f32) -> f32> {
    Some(match name {
        "ln" => baselines::float32::ln,
        "log2" => baselines::float32::log2,
        "log10" => baselines::float32::log10,
        "exp" => baselines::float32::exp,
        "exp2" => baselines::float32::exp2,
        "exp10" => baselines::float32::exp10,
        "sinh" => baselines::float32::sinh,
        "cosh" => baselines::float32::cosh,
        "sinpi" => baselines::float32::sinpi,
        "cospi" => baselines::float32::cospi,
        _ => return None,
    })
}

/// Evaluates one of the ten f32 functions by its paper-table name.
/// Convenience for harnesses that iterate over `Func::ALL`.
pub fn eval_f32_by_name(name: &str, x: f32) -> Option<f32> {
    f32_fn_by_name(name).map(|f| f(x))
}

/// Evaluates one of the eight posit32 functions by name.
pub fn eval_posit32_by_name(name: &str, x: rlibm_posit::Posit32) -> Option<rlibm_posit::Posit32> {
    posit32_fn_by_name(name).map(|f| f(x))
}

/// Evaluates one of the eight posit16 functions by name.
pub fn eval_posit16_by_name(name: &str, x: rlibm_posit::Posit16) -> Option<rlibm_posit::Posit16> {
    Some(match name {
        "ln" => p16::ln_p16(x),
        "log2" => p16::log2_p16(x),
        "log10" => p16::log10_p16(x),
        "exp" => p16::exp_p16(x),
        "exp2" => p16::exp2_p16(x),
        "exp10" => p16::exp10_p16(x),
        "sinh" => p16::sinh_p16(x),
        "cosh" => p16::cosh_p16(x),
        _ => return None,
    })
}

/// Evaluates one of the eight binary16 functions by name.
pub fn eval_half_by_name(name: &str, x: rlibm_fp::Half) -> Option<rlibm_fp::Half> {
    Some(match name {
        "ln" => half16::ln_f16(x),
        "log2" => half16::log2_f16(x),
        "log10" => half16::log10_f16(x),
        "exp" => half16::exp_f16(x),
        "exp2" => half16::exp2_f16(x),
        "exp10" => half16::exp10_f16(x),
        "sinh" => half16::sinh_f16(x),
        "cosh" => half16::cosh_f16(x),
        _ => return None,
    })
}

/// Evaluates one of the eight bfloat16 functions by name.
pub fn eval_bf16_by_name(name: &str, x: rlibm_fp::BFloat16) -> Option<rlibm_fp::BFloat16> {
    Some(match name {
        "ln" => bf16::ln_bf16(x),
        "log2" => bf16::log2_bf16(x),
        "log10" => bf16::log10_bf16(x),
        "exp" => bf16::exp_bf16(x),
        "exp2" => bf16::exp2_bf16(x),
        "exp10" => bf16::exp10_bf16(x),
        "sinh" => bf16::sinh_bf16(x),
        "cosh" => bf16::cosh_bf16(x),
        _ => return None,
    })
}
