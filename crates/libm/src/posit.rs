//! The eight correctly rounded posit32 functions (the paper's Table 2 —
//! the first correctly rounded math library for 32-bit posits).
//!
//! Every posit32 widens exactly to `f64`; the shared double-double kernels
//! evaluate there and [`crate::round::round_dd`] performs the single
//! correct rounding back, honouring posit semantics: saturation at
//! `maxpos`/`minpos` instead of overflow/underflow (the exact property the
//! re-purposed double libraries get wrong in Table 2), and `NaR` for
//! domain errors.

use rlibm_posit::Posit32;

use crate::float::exp::{exp10_kernel, exp2_kernel, exp_kernel};
use crate::float::hyper::{cosh_kernel, sinh_kernel};
use crate::float::log::{ln_kernel, log10_kernel, log2_kernel};
use crate::round::round_dd;

/// `ln 2^120` — results beyond this saturate posit32's `maxpos = 2^120`.
const LN_MAXPOS: f64 = 83.17766166719343;
/// `log10 2^120`.
const LOG10_MAXPOS: f64 = 36.123599478912376;

/// Common three-tier front end for the logarithm family: prefix
/// polynomial, full-degree plain-double kernel on escalation, dd only
/// when the posit safety test rejects both.
#[inline]
fn log_front(
    x: Posit32,
    prefix: fn(f64) -> f64,
    prefix_band: u64,
    fast: fn(f64) -> f64,
    band: u64,
    slot: usize,
    kernel: fn(f64) -> crate::dd::Dd,
) -> Posit32 {
    if x.is_nar() || x.is_zero() || x.is_negative() {
        // ln(0) = -inf and ln(negative) = NaN both map to NaR in posits.
        return Posit32::NAR;
    }
    let xd = x.to_f64();
    let y = crate::fault::perturb(slot, prefix(xd));
    if crate::round::posit32_round_safe(y, prefix_band) {
        crate::stats::record_tier_prefix(slot);
        return Posit32::from_f64(y);
    }
    let y = fast(xd);
    if crate::round::posit32_round_safe(y, band) {
        crate::stats::record_tier_full(slot);
        return Posit32::from_f64(y);
    }
    crate::stats::record_fallback(slot);
    round_dd(kernel(xd))
}

/// dd-only front end for the logarithm family (tier 2 alone).
#[inline]
fn log_front_dd(x: Posit32, kernel: fn(f64) -> crate::dd::Dd) -> Posit32 {
    if x.is_nar() || x.is_zero() || x.is_negative() {
        return Posit32::NAR;
    }
    round_dd(kernel(x.to_f64()))
}

/// Correctly rounded natural logarithm for posit32.
///
/// # Example
///
/// ```
/// use rlibm_posit::Posit32;
/// let e = Posit32::from_f64(core::f64::consts::E);
/// let y = rlibm_math::posit::ln_p32(e);
/// assert!((y.to_f64() - 1.0).abs() < 1e-7);
/// assert!(rlibm_math::posit::ln_p32(Posit32::ZERO).is_nar());
/// ```
pub fn ln_p32(x: Posit32) -> Posit32 {
    log_front(
        x,
        crate::fast::ln_prefix,
        crate::fast::LN_PREFIX_BAND,
        crate::fast::ln_fast,
        crate::fast::LN_BAND,
        crate::stats::slot::P32_LN,
        ln_kernel,
    )
}

/// `ln_p32` through the double-double kernel only (no fast path).
pub fn ln_p32_dd(x: Posit32) -> Posit32 {
    log_front_dd(x, ln_kernel)
}

/// Correctly rounded base-2 logarithm for posit32.
///
/// # Example
///
/// ```
/// use rlibm_posit::Posit32;
/// let y = rlibm_math::posit::log2_p32(Posit32::from_f64(8.0));
/// assert_eq!(y.to_f64(), 3.0);
/// ```
pub fn log2_p32(x: Posit32) -> Posit32 {
    log_front(
        x,
        crate::fast::log2_prefix,
        crate::fast::LOG2_PREFIX_BAND,
        crate::fast::log2_fast,
        crate::fast::LOG2_BAND,
        crate::stats::slot::P32_LOG2,
        log2_kernel,
    )
}

/// `log2_p32` through the double-double kernel only (no fast path).
pub fn log2_p32_dd(x: Posit32) -> Posit32 {
    log_front_dd(x, log2_kernel)
}

/// Correctly rounded base-10 logarithm for posit32.
///
/// # Example
///
/// ```
/// use rlibm_posit::Posit32;
/// let y = rlibm_math::posit::log10_p32(Posit32::from_f64(1000.0));
/// assert_eq!(y.to_f64(), 3.0);
/// ```
pub fn log10_p32(x: Posit32) -> Posit32 {
    log_front(
        x,
        crate::fast::log10_prefix,
        crate::fast::LOG10_PREFIX_BAND,
        crate::fast::log10_fast,
        crate::fast::LOG10_BAND,
        crate::stats::slot::P32_LOG10,
        log10_kernel,
    )
}

/// `log10_p32` through the double-double kernel only (no fast path).
pub fn log10_p32_dd(x: Posit32) -> Posit32 {
    log_front_dd(x, log10_kernel)
}

/// Correctly rounded `e^x` for posit32 (saturating, never NaR for real
/// inputs).
///
/// # Example
///
/// ```
/// use rlibm_posit::Posit32;
/// assert_eq!(rlibm_math::posit::exp_p32(Posit32::ZERO), Posit32::ONE);
/// // Saturation instead of overflow:
/// let big = Posit32::from_f64(1e6);
/// assert_eq!(rlibm_math::posit::exp_p32(big), Posit32::MAXPOS);
/// ```
pub fn exp_p32(x: Posit32) -> Posit32 {
    if x.is_nar() {
        return Posit32::NAR;
    }
    let xd = x.to_f64();
    if xd > LN_MAXPOS + 0.5 {
        return Posit32::MAXPOS;
    }
    if xd < -(LN_MAXPOS + 0.5) {
        return Posit32::MINPOS;
    }
    let y = crate::fault::perturb(crate::stats::slot::P32_EXP, crate::fast::exp_prefix(xd));
    if crate::round::posit32_round_safe(y, crate::fast::EXP_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::P32_EXP);
        return Posit32::from_f64(y);
    }
    let y = crate::fast::exp_fast(xd);
    if crate::round::posit32_round_safe(y, crate::fast::EXP_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::P32_EXP);
        return Posit32::from_f64(y);
    }
    crate::stats::record_fallback(crate::stats::slot::P32_EXP);
    round_dd(exp_kernel(xd))
}

/// `exp_p32` through the double-double kernel only (no fast path).
pub fn exp_p32_dd(x: Posit32) -> Posit32 {
    if x.is_nar() {
        return Posit32::NAR;
    }
    let xd = x.to_f64();
    if xd > LN_MAXPOS + 0.5 {
        return Posit32::MAXPOS;
    }
    if xd < -(LN_MAXPOS + 0.5) {
        return Posit32::MINPOS;
    }
    round_dd(exp_kernel(xd))
}

/// Correctly rounded `2^x` for posit32.
///
/// # Example
///
/// ```
/// use rlibm_posit::Posit32;
/// let y = rlibm_math::posit::exp2_p32(Posit32::from_f64(10.0));
/// assert_eq!(y.to_f64(), 1024.0);
/// ```
pub fn exp2_p32(x: Posit32) -> Posit32 {
    if x.is_nar() {
        return Posit32::NAR;
    }
    let xd = x.to_f64();
    if xd > 120.5 {
        return Posit32::MAXPOS;
    }
    if xd < -120.5 {
        return Posit32::MINPOS;
    }
    let y = crate::fault::perturb(crate::stats::slot::P32_EXP2, crate::fast::exp2_prefix(xd));
    if crate::round::posit32_round_safe(y, crate::fast::EXP2_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::P32_EXP2);
        return Posit32::from_f64(y);
    }
    let y = crate::fast::exp2_fast(xd);
    if crate::round::posit32_round_safe(y, crate::fast::EXP2_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::P32_EXP2);
        return Posit32::from_f64(y);
    }
    crate::stats::record_fallback(crate::stats::slot::P32_EXP2);
    round_dd(exp2_kernel(xd))
}

/// `exp2_p32` through the double-double kernel only (no fast path).
pub fn exp2_p32_dd(x: Posit32) -> Posit32 {
    if x.is_nar() {
        return Posit32::NAR;
    }
    let xd = x.to_f64();
    if xd > 120.5 {
        return Posit32::MAXPOS;
    }
    if xd < -120.5 {
        return Posit32::MINPOS;
    }
    round_dd(exp2_kernel(xd))
}

/// Correctly rounded `10^x` for posit32.
///
/// # Example
///
/// ```
/// use rlibm_posit::Posit32;
/// let y = rlibm_math::posit::exp10_p32(Posit32::from_f64(3.0));
/// assert_eq!(y.to_f64(), 1000.0);
/// ```
pub fn exp10_p32(x: Posit32) -> Posit32 {
    if x.is_nar() {
        return Posit32::NAR;
    }
    let xd = x.to_f64();
    if xd > LOG10_MAXPOS + 0.5 {
        return Posit32::MAXPOS;
    }
    if xd < -(LOG10_MAXPOS + 0.5) {
        return Posit32::MINPOS;
    }
    let y = crate::fault::perturb(crate::stats::slot::P32_EXP10, crate::fast::exp10_prefix(xd));
    if crate::round::posit32_round_safe(y, crate::fast::EXP10_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::P32_EXP10);
        return Posit32::from_f64(y);
    }
    let y = crate::fast::exp10_fast(xd);
    if crate::round::posit32_round_safe(y, crate::fast::EXP10_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::P32_EXP10);
        return Posit32::from_f64(y);
    }
    crate::stats::record_fallback(crate::stats::slot::P32_EXP10);
    round_dd(exp10_kernel(xd))
}

/// `exp10_p32` through the double-double kernel only (no fast path).
pub fn exp10_p32_dd(x: Posit32) -> Posit32 {
    if x.is_nar() {
        return Posit32::NAR;
    }
    let xd = x.to_f64();
    if xd > LOG10_MAXPOS + 0.5 {
        return Posit32::MAXPOS;
    }
    if xd < -(LOG10_MAXPOS + 0.5) {
        return Posit32::MINPOS;
    }
    round_dd(exp10_kernel(xd))
}

/// Correctly rounded hyperbolic sine for posit32.
///
/// # Example
///
/// ```
/// use rlibm_posit::Posit32;
/// assert_eq!(rlibm_math::posit::sinh_p32(Posit32::ZERO), Posit32::ZERO);
/// let big = Posit32::from_f64(200.0);
/// assert_eq!(rlibm_math::posit::sinh_p32(big), Posit32::MAXPOS);
/// ```
pub fn sinh_p32(x: Posit32) -> Posit32 {
    if x.is_nar() {
        return Posit32::NAR;
    }
    if x.is_zero() {
        return Posit32::ZERO;
    }
    let xd = x.to_f64();
    if xd > LN_MAXPOS + 1.5 {
        return Posit32::MAXPOS;
    }
    if xd < -(LN_MAXPOS + 1.5) {
        return -Posit32::MAXPOS;
    }
    // |x| < 2^-13: sinh(x) - x = x³/6 + ... is below half the posit
    // quantum (<= 24 fraction bits out here), so sinh(x) rounds to x.
    if xd.abs() < 2f64.powi(-13) {
        return x;
    }
    let y = crate::fault::perturb(crate::stats::slot::P32_SINH, crate::fast::sinh_prefix(xd));
    if crate::round::posit32_round_safe(y, crate::fast::SINH_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::P32_SINH);
        return Posit32::from_f64(y);
    }
    let y = crate::fast::sinh_fast(xd);
    if crate::round::posit32_round_safe(y, crate::fast::SINH_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::P32_SINH);
        return Posit32::from_f64(y);
    }
    crate::stats::record_fallback(crate::stats::slot::P32_SINH);
    round_dd(sinh_kernel(xd))
}

/// `sinh_p32` through the double-double kernel only (no fast path).
pub fn sinh_p32_dd(x: Posit32) -> Posit32 {
    if x.is_nar() {
        return Posit32::NAR;
    }
    if x.is_zero() {
        return Posit32::ZERO;
    }
    let xd = x.to_f64();
    if xd > LN_MAXPOS + 1.5 {
        return Posit32::MAXPOS;
    }
    if xd < -(LN_MAXPOS + 1.5) {
        return -Posit32::MAXPOS;
    }
    round_dd(sinh_kernel(xd))
}

/// Correctly rounded hyperbolic cosine for posit32.
///
/// # Example
///
/// ```
/// use rlibm_posit::Posit32;
/// assert_eq!(rlibm_math::posit::cosh_p32(Posit32::ZERO), Posit32::ONE);
/// ```
pub fn cosh_p32(x: Posit32) -> Posit32 {
    if x.is_nar() {
        return Posit32::NAR;
    }
    let xd = x.to_f64();
    if xd.abs() > LN_MAXPOS + 1.5 {
        return Posit32::MAXPOS;
    }
    let y = crate::fault::perturb(crate::stats::slot::P32_COSH, crate::fast::cosh_prefix(xd));
    if crate::round::posit32_round_safe(y, crate::fast::COSH_PREFIX_BAND) {
        crate::stats::record_tier_prefix(crate::stats::slot::P32_COSH);
        return Posit32::from_f64(y);
    }
    let y = crate::fast::cosh_fast(xd);
    if crate::round::posit32_round_safe(y, crate::fast::COSH_BAND) {
        crate::stats::record_tier_full(crate::stats::slot::P32_COSH);
        return Posit32::from_f64(y);
    }
    crate::stats::record_fallback(crate::stats::slot::P32_COSH);
    round_dd(cosh_kernel(xd))
}

/// `cosh_p32` through the double-double kernel only (no fast path).
pub fn cosh_p32_dd(x: Posit32) -> Posit32 {
    if x.is_nar() {
        return Posit32::NAR;
    }
    let xd = x.to_f64();
    if xd.abs() > LN_MAXPOS + 1.5 {
        return Posit32::MAXPOS;
    }
    round_dd(cosh_kernel(xd))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64) -> Posit32 {
        Posit32::from_f64(x)
    }

    #[test]
    fn nar_propagates() {
        for f in [ln_p32, log2_p32, log10_p32, exp_p32, exp2_p32, exp10_p32, sinh_p32, cosh_p32]
        {
            assert!(f(Posit32::NAR).is_nar());
        }
    }

    #[test]
    fn log_domain_errors_are_nar() {
        for f in [ln_p32, log2_p32, log10_p32] {
            assert!(f(Posit32::ZERO).is_nar());
            assert!(f(p(-1.0)).is_nar());
        }
    }

    #[test]
    fn saturation_no_overflow_or_underflow() {
        // The paper's Table 2 point: posits saturate; double libraries
        // overflow to inf (-> NaR) or underflow to 0. Ours must saturate.
        assert_eq!(exp_p32(p(100.0)), Posit32::MAXPOS);
        assert_eq!(exp_p32(p(-100.0)), Posit32::MINPOS);
        assert_eq!(exp_p32(Posit32::MAXPOS), Posit32::MAXPOS);
        assert_eq!(exp_p32(-Posit32::MAXPOS), Posit32::MINPOS);
        assert_eq!(exp2_p32(p(200.0)), Posit32::MAXPOS);
        assert_eq!(exp2_p32(p(-200.0)), Posit32::MINPOS);
        assert_eq!(exp10_p32(p(40.0)), Posit32::MAXPOS);
        assert_eq!(sinh_p32(p(-90.0)), -Posit32::MAXPOS);
        assert_eq!(cosh_p32(p(-90.0)), Posit32::MAXPOS);
    }

    #[test]
    fn tapered_precision_region() {
        use rlibm_fp::Representation;
        // Near 1.0 posit32 has MORE precision than f32 (27 fraction bits):
        // ln around 1 must honour the finer grid.
        let x = Posit32::ONE.next_up().unwrap();
        let y = ln_p32(x);
        // ln(1 + 2^-27) ~ 2^-27.
        assert!((y.to_f64() - 2f64.powi(-27)).abs() < 2f64.powi(-50));
    }

    #[test]
    fn extremes_of_log() {
        assert_eq!(log2_p32(Posit32::MAXPOS).to_f64(), 120.0);
        assert_eq!(log2_p32(Posit32::MINPOS).to_f64(), -120.0);
    }

    #[test]
    fn against_host() {
        let mut v = 1e-20f64;
        while v < 1e20 {
            let x = p(v);
            let xd = x.to_f64();
            let ours = ln_p32(x).to_f64();
            let host = xd.ln();
            assert!((ours - host).abs() <= host.abs() * 1e-8 + 1e-12, "ln({v:e})");
            v *= 9.7;
        }
    }
}
