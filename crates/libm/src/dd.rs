//! Double-double ("dd") arithmetic primitives.
//!
//! The paper evaluates everything in `H = double`. Our kernels carry the
//! handful of accuracy-critical steps (table value × polynomial, final
//! summation) as unevaluated hi + lo pairs, which keeps the evaluation
//! error near 2^-90 relative — far below the half-ulp-of-double level at
//! which double rounding into a 32-bit target could ever matter. The final
//! hi/lo pair is rounded *once* into the target by [`crate::round`].
//!
//! All error-free transformations are the classical ones (Dekker, Knuth);
//! `two_prod` uses the hardware FMA (the workspace builds with
//! `target-cpu=native`, mirroring the paper's AVX2 build flags).

/// Error-free sum: returns `(s, e)` with `s = fl(a+b)` and `a+b = s + e`
/// exactly. (Knuth's TwoSum — no magnitude precondition.)
#[inline(always)]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free sum assuming `|a| >= |b|` (Dekker's FastTwoSum).
#[inline(always)]
pub fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Error-free product: `(p, e)` with `a * b = p + e` exactly, via FMA.
#[inline(always)]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

/// A double-double value `hi + lo` with `|lo| <= ulp(hi)/2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dd {
    /// Leading component.
    pub hi: f64,
    /// Trailing component.
    pub lo: f64,
}

impl Dd {
    /// Wraps a plain double.
    #[inline(always)]
    pub fn from_f64(x: f64) -> Dd {
        Dd { hi: x, lo: 0.0 }
    }

    /// Builds from components, renormalizing.
    #[inline(always)]
    pub fn new(hi: f64, lo: f64) -> Dd {
        let (h, l) = quick_two_sum(hi, lo);
        Dd { hi: h, lo: l }
    }

    /// The value collapsed to one double (one rounding).
    #[inline(always)]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// dd + dd (error ~2^-104 relative).
    ///
    /// Named methods rather than `std::ops` impls: the kernels chain these
    /// by value and the explicit names keep dd-vs-f64 variants apart.
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn add(self, other: Dd) -> Dd {
        let (s, e) = two_sum(self.hi, other.hi);
        let e = e + self.lo + other.lo;
        let (hi, lo) = quick_two_sum(s, e);
        Dd { hi, lo }
    }

    /// dd + f64.
    #[inline(always)]
    pub fn add_f64(self, b: f64) -> Dd {
        let (s, e) = two_sum(self.hi, b);
        let e = e + self.lo;
        let (hi, lo) = quick_two_sum(s, e);
        Dd { hi, lo }
    }

    /// dd * dd (error ~2^-102 relative).
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn mul(self, other: Dd) -> Dd {
        let (p, e) = two_prod(self.hi, other.hi);
        let e = e + self.hi * other.lo + self.lo * other.hi;
        let (hi, lo) = quick_two_sum(p, e);
        Dd { hi, lo }
    }

    /// dd * f64.
    #[inline(always)]
    pub fn mul_f64(self, b: f64) -> Dd {
        let (p, e) = two_prod(self.hi, b);
        let e = e + self.lo * b;
        let (hi, lo) = quick_two_sum(p, e);
        Dd { hi, lo }
    }

    /// Reciprocal 1 / dd via one Newton step from the double estimate.
    #[inline(always)]
    pub fn recip(self) -> Dd {
        let y0 = 1.0 / self.hi;
        // r = 1 - self * y0 computed accurately with FMA.
        let r = (-self.hi).mul_add(y0, 1.0) - self.lo * y0;
        // y = y0 + y0 * r  (error ~ r^2 ~ 2^-104).
        let (p, e) = two_prod(y0, r);
        let (hi, lo) = quick_two_sum(y0, p + e);
        Dd { hi, lo }
    }

    /// Negation (exact).
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn neg(self) -> Dd {
        Dd { hi: -self.hi, lo: -self.lo }
    }

    /// Exact scaling by a power of two (`factor` must be a power of two).
    #[inline(always)]
    pub fn scale(self, factor: f64) -> Dd {
        Dd { hi: self.hi * factor, lo: self.lo * factor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_error_free() {
        let a = 1.0;
        let b = 2f64.powi(-60);
        let (s, e) = two_sum(a, b);
        assert_eq!(s, 1.0);
        assert_eq!(e, b);
        let (s2, e2) = two_sum(b, a); // no ordering requirement
        assert_eq!((s2, e2), (s, e));
    }

    #[test]
    fn two_prod_is_error_free() {
        let a = 1.0 + 2f64.powi(-30);
        let b = 1.0 + 2f64.powi(-31);
        let (p, e) = two_prod(a, b);
        // Exact product = 1 + 2^-30 + 2^-31 + 2^-61: p holds the first
        // three terms (they fit in 53 bits), e holds exactly the last.
        assert_eq!(p, 1.0 + 2f64.powi(-30) + 2f64.powi(-31));
        assert_eq!(e, 2f64.powi(-61));
    }

    #[test]
    fn dd_add_tracks_tiny_components() {
        let a = Dd::from_f64(1.0);
        let b = Dd::from_f64(2f64.powi(-70));
        let c = a.add(b);
        assert_eq!(c.hi, 1.0);
        assert_eq!(c.lo, 2f64.powi(-70));
    }

    #[test]
    fn dd_mul_matches_reference() {
        // (1 + 2^-40)^2 = 1 + 2^-39 + 2^-80.
        let a = Dd::from_f64(1.0 + 2f64.powi(-40));
        let sq = a.mul(a);
        assert_eq!(sq.hi, 1.0 + 2f64.powi(-39));
        assert_eq!(sq.lo, 2f64.powi(-80));
    }

    #[test]
    fn dd_recip_is_accurate() {
        let x = Dd::from_f64(3.0);
        let r = x.recip();
        // 1/3 in dd: hi = nearest double, lo refines it.
        assert_eq!(r.hi, 1.0 / 3.0);
        let back = r.mul(x);
        assert!((back.hi - 1.0).abs() < 1e-30);
        assert!((back.hi + back.lo - 1.0).abs() < 1e-30);
    }

    #[test]
    fn scale_is_exact() {
        let x = Dd::new(1.5, 2f64.powi(-60));
        let y = x.scale(0.25);
        assert_eq!(y.hi, 0.375);
        assert_eq!(y.lo, 2f64.powi(-62));
    }
}
