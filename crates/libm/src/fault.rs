//! Deterministic fault injection for the tier-1 fast path.
//!
//! The two-tier design's safety story rests on one claim: whenever the
//! plain-double kernel result is wrong by more than its certified band,
//! the round-safe bit test rejects it and the dd kernel re-runs. This
//! module provides the adversarial evidence. With the `fault` cargo
//! feature, every f32/posit32 front end routes its fast-path result
//! through [`perturb`] (a named site, one per [`crate::stats::slot`])
//! which — when a thread-local plan is [`arm`]ed — corrupts the value
//! with a seeded [`rlibm_fp::rng::XorShift64`] stream. Without the
//! feature the hook is an `#[inline(always)]` identity and the library
//! carries zero cost.
//!
//! Three corruption kinds are drawn from the stream:
//!
//! 1. **In-band ULP nudge** — the bit pattern moves by `1..=slack` f64
//!    ulps in the same binade, where `slack = BAND - DERIVED` (see
//!    `crate::fast`). The perturbed value's true error stays `<= BAND`,
//!    so *whether or not* the round-safe test accepts, the final cast is
//!    correct: acceptance is proven sound for any error `<= BAND`, and
//!    rejection falls back to dd. This exercises the band's headroom.
//! 2. **Low fraction-bit flip** — bit `j` with `2^j <= slack` flips
//!    (never the exponent, so the same in-band argument applies).
//! 3. **Catastrophic replacement** — NaN, ±inf, ±0, an f32-subnormal
//!    magnitude, or a huge/tiny out-of-range double. Every such value
//!    lies outside the exponent window both round-safe tests require, so
//!    certification must *reject* and route to dd.
//!
//! In all three cases the contract is the same: the faulted two-tier
//! output must equal the dd reference bit-for-bit. The sweep harness
//! (`rlibm_core::fault`) checks exactly that, per function, across f32
//! and posit32, counting injections per site through [`injected`].

/// Number of injection sites (one per [`crate::stats::slot`]).
pub const SITE_COUNT: usize = crate::stats::slot::COUNT;

/// Registry mirror of the injection total. The per-site atomics below
/// stay authoritative (the sweep asserts exact per-site deltas); this
/// counter puts the grand total next to the fallback counters in a
/// telemetry snapshot.
static FAULT_INJECTED: rlibm_obs::Counter = rlibm_obs::Counter::new("runtime.fault.injected");

/// Forces the injection-total mirror into the snapshot registry at zero.
pub(crate) fn register_metrics() {
    FAULT_INJECTED.register();
}

/// Certification slack per site, in f64 ulps: `BAND - DERIVED` for the
/// kernel feeding that site (posit sites share the f32 kernels).
#[cfg(feature = "fault")]
pub(crate) fn slack(site: usize) -> u64 {
    use crate::fast as f;
    use crate::stats::slot as s;
    const SLACKS: [u64; SITE_COUNT] = {
        let mut t = [0u64; SITE_COUNT];
        t[s::LN] = f::LN_BAND - f::LN_DERIVED;
        t[s::LOG2] = f::LOG2_BAND - f::LOG2_DERIVED;
        t[s::LOG10] = f::LOG10_BAND - f::LOG10_DERIVED;
        t[s::EXP] = f::EXP_BAND - f::EXP_DERIVED;
        t[s::EXP2] = f::EXP2_BAND - f::EXP2_DERIVED;
        t[s::EXP10] = f::EXP10_BAND - f::EXP10_DERIVED;
        t[s::SINH] = f::SINH_BAND - f::SINH_DERIVED;
        t[s::COSH] = f::COSH_BAND - f::COSH_DERIVED;
        t[s::SINPI] = f::SINPI_BAND - f::SINPI_DERIVED;
        t[s::COSPI] = f::COSPI_BAND - f::COSPI_DERIVED;
        t[s::P32_LN] = f::LN_BAND - f::LN_DERIVED;
        t[s::P32_LOG2] = f::LOG2_BAND - f::LOG2_DERIVED;
        t[s::P32_LOG10] = f::LOG10_BAND - f::LOG10_DERIVED;
        t[s::P32_EXP] = f::EXP_BAND - f::EXP_DERIVED;
        t[s::P32_EXP2] = f::EXP2_BAND - f::EXP2_DERIVED;
        t[s::P32_EXP10] = f::EXP10_BAND - f::EXP10_DERIVED;
        t[s::P32_SINH] = f::SINH_BAND - f::SINH_DERIVED;
        t[s::P32_COSH] = f::COSH_BAND - f::COSH_DERIVED;
        t
    };
    SLACKS[site % SITE_COUNT]
}

#[cfg(feature = "fault")]
mod imp {
    use core::cell::Cell;
    use core::sync::atomic::{AtomicU64, Ordering};
    use rlibm_fp::rng::XorShift64;

    static INJECTED: [AtomicU64; super::SITE_COUNT] =
        [const { AtomicU64::new(0) }; super::SITE_COUNT];

    thread_local! {
        // Cell<u64>: 0 = disarmed, otherwise the current rng state. A Cell
        // (not RefCell) keeps the hook reentrancy-proof and cheap.
        static PLAN: Cell<u64> = const { Cell::new(0) };
    }

    /// Values rejected by *both* round-safe exponent windows: specials,
    /// zeros, f32-subnormal scale, and out-of-range magnitudes.
    const CATASTROPHIC: [f64; 8] = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        1.469367938527859e-39, // 2^-129: below the f32-normal/posit window
        1.6069380442589903e60, // 2^200: above both windows
        1e-300,                // deep underflow
    ];

    pub fn arm(seed: u64) {
        // Seed 0 would read as "disarmed"; XorShift64 rejects 0 anyway.
        let s = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        PLAN.with(|p| p.set(s));
    }

    pub fn disarm() {
        PLAN.with(|p| p.set(0));
    }

    pub fn armed() -> bool {
        PLAN.with(|p| p.get() != 0)
    }

    pub fn injected(site: usize) -> u64 {
        INJECTED[site % super::SITE_COUNT].load(Ordering::Relaxed)
    }

    pub fn injected_total() -> u64 {
        INJECTED.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    pub fn reset_counters() {
        for c in &INJECTED {
            c.store(0, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn perturb(site: usize, y: f64) -> f64 {
        PLAN.with(|p| {
            let state = p.get();
            if state == 0 {
                return y;
            }
            let mut rng = XorShift64::new(state);
            let r = rng.next_u64();
            p.set(rng.next_u64().max(1));
            let slack = super::slack(site);
            let y2 = corrupt(y, slack, r);
            if y2.to_bits() != y.to_bits() {
                INJECTED[site % super::SITE_COUNT].fetch_add(1, Ordering::Relaxed);
                super::FAULT_INJECTED.add(1);
            }
            y2
        })
    }

    /// Picks a corruption kind from `r`: 1/8 catastrophic, 3/8 bit flip,
    /// 4/8 in-band nudge.
    fn corrupt(y: f64, slack: u64, r: u64) -> f64 {
        debug_assert!(slack >= 1);
        let kind = r & 7;
        let payload = r >> 3;
        if kind == 0 {
            return CATASTROPHIC[(payload % CATASTROPHIC.len() as u64) as usize];
        }
        let bits = y.to_bits();
        let sign = bits & (1u64 << 63);
        let mag = bits & !(1u64 << 63);
        if !y.is_finite() || mag == 0 {
            // The fast path never produces these, but stay total.
            return y;
        }
        if kind <= 3 {
            // Flip fraction bit j with 2^j <= slack: moves the value by
            // exactly 2^j ulps, exponent untouched.
            let max_bit = 63 - slack.leading_zeros(); // floor(log2(slack))
            let j = payload % u64::from(max_bit + 1);
            return f64::from_bits(bits ^ (1u64 << j));
        }
        // In-band nudge: ±(1..=slack) ulps, constrained to the same binade
        // so one ulp keeps one meaning and DERIVED + delta <= BAND stays a
        // theorem. If the first direction would cross the binade (or hit
        // the sign), nudge the other way; slack << 2^52 so one of the two
        // always fits.
        let delta = 1 + payload % slack;
        let exp = mag >> 52;
        let up = mag.wrapping_add(delta);
        let down = mag.wrapping_sub(delta);
        let cand = if payload & 1 == 0 {
            if up >> 52 == exp { up } else { down }
        } else if mag >= delta && down >> 52 == exp {
            down
        } else {
            up
        };
        if cand >> 52 == exp {
            f64::from_bits(sign | cand)
        } else {
            y
        }
    }
}

#[cfg(not(feature = "fault"))]
mod imp {
    pub fn arm(_seed: u64) {}
    pub fn disarm() {}
    pub fn armed() -> bool {
        false
    }
    pub fn injected(_site: usize) -> u64 {
        0
    }
    pub fn injected_total() -> u64 {
        0
    }
    pub fn reset_counters() {}
    #[inline(always)]
    pub fn perturb(_site: usize, y: f64) -> f64 {
        y
    }
}

/// Arms fault injection on the current thread with a deterministic seed.
/// No-op without the `fault` feature.
pub fn arm(seed: u64) {
    imp::arm(seed);
}

/// Disarms fault injection on the current thread.
pub fn disarm() {
    imp::disarm();
}

/// True when the current thread has an armed plan (always false without
/// the `fault` feature — harnesses assert this to fail loudly on a
/// misconfigured build).
pub fn armed() -> bool {
    imp::armed()
}

/// Faults injected at `site` (a [`crate::stats::slot`] index) since the
/// last [`reset_counters`], across all threads.
pub fn injected(site: usize) -> u64 {
    imp::injected(site)
}

/// Total faults injected across all sites.
pub fn injected_total() -> u64 {
    imp::injected_total()
}

/// Zeroes the per-site injection counters.
pub fn reset_counters() {
    imp::reset_counters();
}

/// The fast-path hook: corrupts `y` when the thread is armed.
#[inline(always)]
pub(crate) fn perturb(site: usize, y: f64) -> f64 {
    imp::perturb(site, y)
}

#[cfg(all(test, feature = "fault"))]
mod tests {
    use super::*;
    use crate::stats::slot;

    #[test]
    fn disarmed_is_identity() {
        disarm();
        assert_eq!(perturb(slot::EXP, 1.5f64).to_bits(), 1.5f64.to_bits());
        assert_eq!(injected_total(), 0);
    }

    #[test]
    fn armed_perturbs_and_counts_deterministically() {
        reset_counters();
        arm(42);
        let mut changed = 0;
        let mut first = Vec::new();
        for i in 0..1000 {
            let y = 1.0 + f64::from(i) * 1e-3;
            let y2 = perturb(slot::LN, y);
            first.push(y2.to_bits());
            if y2.to_bits() != y.to_bits() {
                changed += 1;
            }
        }
        disarm();
        assert!(changed > 900, "nearly every armed call must inject");
        assert_eq!(injected(slot::LN), changed);
        // Re-arming with the same seed replays the same corruptions.
        arm(42);
        for (i, &bits) in first.iter().enumerate() {
            let y = 1.0 + f64::from(i as u32) * 1e-3;
            assert_eq!(perturb(slot::LN, y).to_bits(), bits);
        }
        disarm();
        reset_counters();
    }

    #[test]
    fn in_band_corruptions_stay_within_slack() {
        arm(7);
        for i in 0..20_000u32 {
            let y = 0.5 + f64::from(i) * 1e-5;
            let y2 = perturb(slot::COSH, y);
            if !y2.is_finite() || y2 == 0.0 || y2.to_bits() >> 52 != y.to_bits() >> 52 {
                continue; // catastrophic kind: rejected by the exponent window
            }
            let moved = y2.to_bits().abs_diff(y.to_bits());
            assert!(
                moved <= slack(slot::COSH),
                "in-band corruption moved {moved} ulps > slack"
            );
        }
        disarm();
        reset_counters();
    }
}
