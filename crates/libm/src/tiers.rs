//! The progressive-tier registry: one table row per front-end function
//! describing its escalation ladder.
//!
//! Every entry point climbs the same three rungs — a truncated **prefix**
//! polynomial tested against a wide round-safety band, the **full**-degree
//! polynomial tested against the regular band, and the dd kernel with
//! round-to-odd — and this module is the single place where a rung's
//! parameters live as *data* rather than as constants scattered through
//! the front ends. The front ends still reference the `fast::*` constants
//! directly (so the hot paths fold them at compile time); the registry
//! re-exports the same constants so harnesses, reports, and tests can
//! iterate the ladder without hard-coding per-function numbers.
//!
//! Soundness invariant, pinned by a test here and in `fast.rs`: a value
//! that passes the prefix band while the prefix polynomial is within
//! `PREFIX_DERIVED` of the dd kernel rounds identically to the dd result,
//! and likewise for the full tier — which requires
//! `prefix_derived + (full_band - full_derived) <= prefix_band` so that a
//! prefix-accepted value is never one the full tier would have had to
//! escalate.

use crate::fast;
use crate::stats::slot;

/// One function's escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSpec {
    /// Registry name, matching the suffix of the `runtime.tier.*`
    /// counters (e.g. `"f32.exp"`).
    pub name: &'static str,
    /// Index into the [`crate::stats`] counter arrays.
    pub slot: usize,
    /// Round-safety band for the prefix tier (28-bit frac distance).
    pub prefix_band: u64,
    /// Round-safety band for the full-degree tier.
    pub full_band: u64,
    /// Certified bound on |prefix poly − dd kernel| in band units.
    pub prefix_derived: u64,
    /// Certified bound on |full poly − dd kernel| in band units.
    pub full_derived: u64,
    /// Terms evaluated by the prefix Horner chain.
    pub prefix_terms: usize,
    /// Terms evaluated by the full-degree Horner chain.
    pub full_terms: usize,
}

impl TierSpec {
    /// The soundness inequality for this ladder: any value the prefix
    /// tier accepts must also be a value the full tier would accept,
    /// given the two certified error bounds.
    pub const fn prefix_subsumed_by_full(&self) -> bool {
        self.prefix_derived + (self.full_band - self.full_derived) <= self.prefix_band
    }
}

/// Macro-free row helper so the tables below stay greppable.
#[allow(clippy::too_many_arguments)] // positional spec row, mirrors the table header
const fn row(
    name: &'static str,
    slot: usize,
    prefix_band: u64,
    full_band: u64,
    prefix_derived: u64,
    full_derived: u64,
    prefix_terms: usize,
    full_terms: usize,
) -> TierSpec {
    TierSpec {
        name,
        slot,
        prefix_band,
        full_band,
        prefix_derived,
        full_derived,
        prefix_terms,
        full_terms,
    }
}

/// The ten f32 front ends, in [`slot`] order.
#[rustfmt::skip]
pub const F32_TIERS: [TierSpec; 10] = [
    row("f32.ln",    slot::LN,    fast::LN_PREFIX_BAND,    fast::LN_BAND,    fast::LN_PREFIX_DERIVED,    fast::LN_DERIVED,    5, 8),
    row("f32.log2",  slot::LOG2,  fast::LOG2_PREFIX_BAND,  fast::LOG2_BAND,  fast::LOG2_PREFIX_DERIVED,  fast::LOG2_DERIVED,  5, 8),
    row("f32.log10", slot::LOG10, fast::LOG10_PREFIX_BAND, fast::LOG10_BAND, fast::LOG10_PREFIX_DERIVED, fast::LOG10_DERIVED, 5, 8),
    row("f32.exp",   slot::EXP,   fast::EXP_PREFIX_BAND,   fast::EXP_BAND,   fast::EXP_PREFIX_DERIVED,   fast::EXP_DERIVED,   5, 8),
    row("f32.exp2",  slot::EXP2,  fast::EXP2_PREFIX_BAND,  fast::EXP2_BAND,  fast::EXP2_PREFIX_DERIVED,  fast::EXP2_DERIVED,  5, 8),
    row("f32.exp10", slot::EXP10, fast::EXP10_PREFIX_BAND, fast::EXP10_BAND, fast::EXP10_PREFIX_DERIVED, fast::EXP10_DERIVED, 5, 8),
    row("f32.sinh",  slot::SINH,  fast::SINH_PREFIX_BAND,  fast::SINH_BAND,  fast::SINH_PREFIX_DERIVED,  fast::SINH_DERIVED,  5, 8),
    row("f32.cosh",  slot::COSH,  fast::COSH_PREFIX_BAND,  fast::COSH_BAND,  fast::COSH_PREFIX_DERIVED,  fast::COSH_DERIVED,  5, 8),
    row("f32.sinpi", slot::SINPI, fast::SINPI_PREFIX_BAND, fast::SINPI_BAND, fast::SINPI_PREFIX_DERIVED, fast::SINPI_DERIVED, 2, 4),
    row("f32.cospi", slot::COSPI, fast::COSPI_PREFIX_BAND, fast::COSPI_BAND, fast::COSPI_PREFIX_DERIVED, fast::COSPI_DERIVED, 3, 4),
];

/// The eight posit32 front ends. They share the f64 tier kernels with
/// the f32 paths (the bands bound the *kernel's* error, not the target
/// format's rounding), so every parameter is reused.
#[rustfmt::skip]
pub const POSIT32_TIERS: [TierSpec; 8] = [
    row("posit32.ln",    slot::P32_LN,    fast::LN_PREFIX_BAND,    fast::LN_BAND,    fast::LN_PREFIX_DERIVED,    fast::LN_DERIVED,    5, 8),
    row("posit32.log2",  slot::P32_LOG2,  fast::LOG2_PREFIX_BAND,  fast::LOG2_BAND,  fast::LOG2_PREFIX_DERIVED,  fast::LOG2_DERIVED,  5, 8),
    row("posit32.log10", slot::P32_LOG10, fast::LOG10_PREFIX_BAND, fast::LOG10_BAND, fast::LOG10_PREFIX_DERIVED, fast::LOG10_DERIVED, 5, 8),
    row("posit32.exp",   slot::P32_EXP,   fast::EXP_PREFIX_BAND,   fast::EXP_BAND,   fast::EXP_PREFIX_DERIVED,   fast::EXP_DERIVED,   5, 8),
    row("posit32.exp2",  slot::P32_EXP2,  fast::EXP2_PREFIX_BAND,  fast::EXP2_BAND,  fast::EXP2_PREFIX_DERIVED,  fast::EXP2_DERIVED,  5, 8),
    row("posit32.exp10", slot::P32_EXP10, fast::EXP10_PREFIX_BAND, fast::EXP10_BAND, fast::EXP10_PREFIX_DERIVED, fast::EXP10_DERIVED, 5, 8),
    row("posit32.sinh",  slot::P32_SINH,  fast::SINH_PREFIX_BAND,  fast::SINH_BAND,  fast::SINH_PREFIX_DERIVED,  fast::SINH_DERIVED,  5, 8),
    row("posit32.cosh",  slot::P32_COSH,  fast::COSH_PREFIX_BAND,  fast::COSH_BAND,  fast::COSH_PREFIX_DERIVED,  fast::COSH_DERIVED,  5, 8),
];

/// Looks a spec up by its registry name (`"f32.exp"`, `"posit32.ln"`).
pub fn by_name(name: &str) -> Option<&'static TierSpec> {
    F32_TIERS
        .iter()
        .chain(POSIT32_TIERS.iter())
        .find(|t| t.name == name)
}

/// Looks a spec up by its [`slot`] index.
pub fn by_slot(s: usize) -> Option<&'static TierSpec> {
    F32_TIERS.iter().chain(POSIT32_TIERS.iter()).find(|t| t.slot == s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ladder_is_sound() {
        for t in F32_TIERS.iter().chain(POSIT32_TIERS.iter()) {
            assert!(
                t.prefix_subsumed_by_full(),
                "{}: prefix_derived {} + (full_band {} - full_derived {}) > prefix_band {}",
                t.name,
                t.prefix_derived,
                t.full_band,
                t.full_derived,
                t.prefix_band
            );
            assert!(t.prefix_band > t.full_band, "{}: prefix band must be wider", t.name);
            assert!(t.prefix_terms < t.full_terms, "{}: prefix must be shorter", t.name);
        }
    }

    #[test]
    fn slots_are_a_bijection() {
        let mut seen = [false; slot::COUNT];
        for t in F32_TIERS.iter().chain(POSIT32_TIERS.iter()) {
            assert!(!seen[t.slot], "{}: slot {} reused", t.name, t.slot);
            seen[t.slot] = true;
        }
        assert!(seen.iter().all(|s| *s), "every slot must have a spec");
    }

    #[test]
    fn lookups_agree() {
        for t in F32_TIERS.iter().chain(POSIT32_TIERS.iter()) {
            assert_eq!(by_name(t.name), Some(t));
            assert_eq!(by_slot(t.slot), Some(t));
        }
        assert_eq!(by_name("f32.tan"), None);
        assert_eq!(by_slot(slot::COUNT), None);
    }

    #[test]
    fn posit_rows_mirror_their_f32_kernels() {
        // The posit front ends reuse the f64 tier kernels verbatim, so
        // their ladder parameters must match the f32 rows one-to-one.
        for p in &POSIT32_TIERS {
            let fname = p.name.replace("posit32.", "f32.");
            let f = by_name(&fname).expect("f32 twin exists");
            assert_eq!((p.prefix_band, p.full_band), (f.prefix_band, f.full_band), "{}", p.name);
            assert_eq!(
                (p.prefix_derived, p.full_derived),
                (f.prefix_derived, f.full_derived),
                "{}",
                p.name
            );
        }
    }
}
