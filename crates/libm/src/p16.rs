//! Correctly rounded posit16 functions — the *original* RLIBM's posit
//! target (the paper extends that work to 32 bits). With only 65 536
//! patterns, every function is validated exhaustively in the workspace
//! tests, the same end-to-end guarantee the 16-bit RLIBM paper made.

use rlibm_posit::Posit16;

use crate::float::exp::{exp10_kernel, exp2_kernel, exp_kernel};
use crate::float::hyper::{cosh_kernel, sinh_kernel};
use crate::float::log::{ln_kernel, log10_kernel, log2_kernel};
use crate::round::round_dd;

/// `ln(maxpos)` for posit16 (`maxpos = 2^28`).
const LN_MAXPOS16: f64 = 19.408121055678468;

#[inline]
fn log_front(x: Posit16, kernel: fn(f64) -> crate::dd::Dd) -> Posit16 {
    if x.is_nar() || x.is_zero() || x.is_negative() {
        return Posit16::NAR;
    }
    round_dd(kernel(x.to_f64()))
}

/// Correctly rounded natural logarithm for posit16.
///
/// ```
/// use rlibm_posit::Posit16;
/// assert_eq!(rlibm_math::p16::ln_p16(Posit16::ONE).to_f64(), 0.0);
/// assert!(rlibm_math::p16::ln_p16(Posit16::ZERO).is_nar());
/// ```
pub fn ln_p16(x: Posit16) -> Posit16 {
    log_front(x, ln_kernel)
}

/// Correctly rounded base-2 logarithm for posit16.
///
/// ```
/// use rlibm_posit::Posit16;
/// let y = rlibm_math::p16::log2_p16(Posit16::from_f64(8.0));
/// assert_eq!(y.to_f64(), 3.0);
/// ```
pub fn log2_p16(x: Posit16) -> Posit16 {
    log_front(x, log2_kernel)
}

/// Correctly rounded base-10 logarithm for posit16.
///
/// ```
/// use rlibm_posit::Posit16;
/// let y = rlibm_math::p16::log10_p16(Posit16::from_f64(100.0));
/// assert_eq!(y.to_f64(), 2.0);
/// ```
pub fn log10_p16(x: Posit16) -> Posit16 {
    log_front(x, log10_kernel)
}

/// Correctly rounded `e^x` for posit16 (saturating).
///
/// ```
/// use rlibm_posit::Posit16;
/// assert_eq!(rlibm_math::p16::exp_p16(Posit16::ZERO), Posit16::ONE);
/// let big = Posit16::from_f64(100.0);
/// assert_eq!(rlibm_math::p16::exp_p16(big), Posit16::MAXPOS);
/// ```
pub fn exp_p16(x: Posit16) -> Posit16 {
    if x.is_nar() {
        return Posit16::NAR;
    }
    let xd = x.to_f64();
    if xd > LN_MAXPOS16 + 0.5 {
        return Posit16::MAXPOS;
    }
    if xd < -(LN_MAXPOS16 + 0.5) {
        return Posit16::MINPOS;
    }
    round_dd(exp_kernel(xd))
}

/// Correctly rounded `2^x` for posit16.
///
/// ```
/// use rlibm_posit::Posit16;
/// let y = rlibm_math::p16::exp2_p16(Posit16::from_f64(-3.0));
/// assert_eq!(y.to_f64(), 0.125);
/// ```
pub fn exp2_p16(x: Posit16) -> Posit16 {
    if x.is_nar() {
        return Posit16::NAR;
    }
    let xd = x.to_f64();
    if xd > 28.5 {
        return Posit16::MAXPOS;
    }
    if xd < -28.5 {
        return Posit16::MINPOS;
    }
    round_dd(exp2_kernel(xd))
}

/// Correctly rounded `10^x` for posit16.
///
/// ```
/// use rlibm_posit::Posit16;
/// let y = rlibm_math::p16::exp10_p16(Posit16::from_f64(2.0));
/// assert_eq!(y.to_f64(), 100.0);
/// ```
pub fn exp10_p16(x: Posit16) -> Posit16 {
    if x.is_nar() {
        return Posit16::NAR;
    }
    let xd = x.to_f64();
    if xd > 8.93 {
        return Posit16::MAXPOS;
    }
    if xd < -8.93 {
        return Posit16::MINPOS;
    }
    round_dd(exp10_kernel(xd))
}

/// Correctly rounded hyperbolic sine for posit16.
///
/// ```
/// use rlibm_posit::Posit16;
/// assert_eq!(rlibm_math::p16::sinh_p16(Posit16::ZERO), Posit16::ZERO);
/// ```
pub fn sinh_p16(x: Posit16) -> Posit16 {
    if x.is_nar() {
        return Posit16::NAR;
    }
    if x.is_zero() {
        return Posit16::ZERO;
    }
    let xd = x.to_f64();
    if xd > LN_MAXPOS16 + 1.5 {
        return Posit16::MAXPOS;
    }
    if xd < -(LN_MAXPOS16 + 1.5) {
        return -Posit16::MAXPOS;
    }
    round_dd(sinh_kernel(xd))
}

/// Correctly rounded hyperbolic cosine for posit16.
///
/// ```
/// use rlibm_posit::Posit16;
/// assert_eq!(rlibm_math::p16::cosh_p16(Posit16::ZERO), Posit16::ONE);
/// ```
pub fn cosh_p16(x: Posit16) -> Posit16 {
    if x.is_nar() {
        return Posit16::NAR;
    }
    let xd = x.to_f64();
    if xd.abs() > LN_MAXPOS16 + 1.5 {
        return Posit16::MAXPOS;
    }
    round_dd(cosh_kernel(xd))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials() {
        for f in [ln_p16, log2_p16, log10_p16] {
            assert!(f(Posit16::NAR).is_nar());
            assert!(f(Posit16::ZERO).is_nar());
            assert!(f(Posit16::from_f64(-2.0)).is_nar());
        }
        assert_eq!(exp_p16(Posit16::ZERO), Posit16::ONE);
        assert_eq!(cosh_p16(Posit16::ZERO), Posit16::ONE);
    }

    #[test]
    fn saturation() {
        assert_eq!(exp_p16(Posit16::MAXPOS), Posit16::MAXPOS);
        assert_eq!(exp_p16(-Posit16::MAXPOS), Posit16::MINPOS);
        assert_eq!(exp2_p16(Posit16::from_f64(30.0)), Posit16::MAXPOS);
        assert_eq!(sinh_p16(Posit16::from_f64(-25.0)), -Posit16::MAXPOS);
    }

    #[test]
    fn exact_powers() {
        assert_eq!(log2_p16(Posit16::MAXPOS).to_f64(), 28.0);
        assert_eq!(log2_p16(Posit16::MINPOS).to_f64(), -28.0);
        assert_eq!(exp2_p16(Posit16::from_f64(10.0)).to_f64(), 1024.0);
        assert_eq!(exp10_p16(Posit16::from_f64(3.0)).to_f64(), 1000.0);
    }
}
