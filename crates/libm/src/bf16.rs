//! Correctly rounded bfloat16 functions (the original RLIBM's 16-bit
//! target, kept because the full generation pipeline can be validated
//! *exhaustively* against them — see the workspace integration tests).
//!
//! Every bfloat16 widens exactly to `f64`; the shared kernels do the work
//! and one [`crate::round::round_dd`] rounding lands the result.

use rlibm_fp::BFloat16;

use crate::float::exp::{exp10_kernel, exp2_kernel, exp_kernel};
use crate::float::hyper::{cosh_kernel, sinh_kernel};
use crate::float::log::{ln_kernel, log10_kernel, log2_kernel};
use crate::round::round_dd;

macro_rules! bf16_log {
    ($(#[$doc:meta])* $name:ident, $kernel:ident) => {
        $(#[$doc])*
        pub fn $name(x: BFloat16) -> BFloat16 {
            if x.is_nan() {
                return BFloat16::NAN;
            }
            let xd = x.to_f64();
            if xd < 0.0 {
                return BFloat16::NAN;
            }
            if xd == 0.0 {
                return BFloat16::NEG_INFINITY;
            }
            if xd.is_infinite() {
                return BFloat16::INFINITY;
            }
            round_dd($kernel(xd))
        }
    };
}

bf16_log!(
    /// Correctly rounded natural logarithm for bfloat16.
    ///
    /// ```
    /// use rlibm_fp::BFloat16;
    /// let y = rlibm_math::bf16::ln_bf16(BFloat16::from_f64(1.0));
    /// assert_eq!(y.to_f64(), 0.0);
    /// ```
    ln_bf16, ln_kernel
);
bf16_log!(
    /// Correctly rounded base-2 logarithm for bfloat16.
    ///
    /// ```
    /// use rlibm_fp::BFloat16;
    /// let y = rlibm_math::bf16::log2_bf16(BFloat16::from_f64(8.0));
    /// assert_eq!(y.to_f64(), 3.0);
    /// ```
    log2_bf16, log2_kernel
);
bf16_log!(
    /// Correctly rounded base-10 logarithm for bfloat16.
    ///
    /// ```
    /// use rlibm_fp::BFloat16;
    /// let y = rlibm_math::bf16::log10_bf16(BFloat16::from_f64(100.0));
    /// assert_eq!(y.to_f64(), 2.0);
    /// ```
    log10_bf16, log10_kernel
);

/// Correctly rounded `e^x` for bfloat16.
///
/// ```
/// use rlibm_fp::BFloat16;
/// let y = rlibm_math::bf16::exp_bf16(BFloat16::from_f64(1.0));
/// assert_eq!(y.to_f64(), 2.71875);
/// ```
pub fn exp_bf16(x: BFloat16) -> BFloat16 {
    if x.is_nan() {
        return BFloat16::NAN;
    }
    let xd = x.to_f64();
    if xd > 89.0 {
        return BFloat16::INFINITY;
    }
    if xd < -94.0 {
        return BFloat16::ZERO; // exp(-94) < 2^-134.5: below half the
                               // smallest bfloat16 subnormal (2^-133)
    }
    round_dd(exp_kernel(xd))
}

/// Correctly rounded `2^x` for bfloat16.
///
/// ```
/// use rlibm_fp::BFloat16;
/// let y = rlibm_math::bf16::exp2_bf16(BFloat16::from_f64(-3.0));
/// assert_eq!(y.to_f64(), 0.125);
/// ```
pub fn exp2_bf16(x: BFloat16) -> BFloat16 {
    if x.is_nan() {
        return BFloat16::NAN;
    }
    let xd = x.to_f64();
    if xd >= 128.0 {
        return BFloat16::INFINITY;
    }
    if xd < -135.0 {
        return BFloat16::ZERO;
    }
    round_dd(exp2_kernel(xd))
}

/// Correctly rounded `10^x` for bfloat16.
///
/// ```
/// use rlibm_fp::BFloat16;
/// let y = rlibm_math::bf16::exp10_bf16(BFloat16::from_f64(2.0));
/// assert_eq!(y.to_f64(), 100.0);
/// ```
pub fn exp10_bf16(x: BFloat16) -> BFloat16 {
    if x.is_nan() {
        return BFloat16::NAN;
    }
    let xd = x.to_f64();
    if xd > 38.6 {
        return BFloat16::INFINITY;
    }
    if xd < -40.6 {
        return BFloat16::ZERO;
    }
    round_dd(exp10_kernel(xd))
}

/// Correctly rounded hyperbolic sine for bfloat16.
///
/// ```
/// use rlibm_fp::BFloat16;
/// let z = rlibm_math::bf16::sinh_bf16(BFloat16::ZERO);
/// assert_eq!(z.to_f64(), 0.0);
/// ```
pub fn sinh_bf16(x: BFloat16) -> BFloat16 {
    if x.is_nan() {
        return BFloat16::NAN;
    }
    let xd = x.to_f64();
    if xd == 0.0 {
        return x;
    }
    if xd > 90.0 {
        return BFloat16::INFINITY;
    }
    if xd < -90.0 {
        return BFloat16::NEG_INFINITY;
    }
    round_dd(sinh_kernel(xd))
}

/// Correctly rounded hyperbolic cosine for bfloat16.
///
/// ```
/// use rlibm_fp::BFloat16;
/// let y = rlibm_math::bf16::cosh_bf16(BFloat16::ZERO);
/// assert_eq!(y.to_f64(), 1.0);
/// ```
pub fn cosh_bf16(x: BFloat16) -> BFloat16 {
    if x.is_nan() {
        return BFloat16::NAN;
    }
    let xd = x.to_f64();
    if xd.abs() > 90.0 {
        return BFloat16::INFINITY;
    }
    round_dd(cosh_kernel(xd))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials() {
        assert!(ln_bf16(BFloat16::from_f64(-2.0)).is_nan());
        assert_eq!(exp_bf16(BFloat16::NEG_INFINITY).to_f64(), 0.0);
        assert_eq!(exp_bf16(BFloat16::INFINITY).to_f64(), f64::INFINITY);
        assert!(cosh_bf16(BFloat16::NAN).is_nan());
    }

    #[test]
    fn saturation_thresholds_are_sound() {
        // Just inside the early exits the kernels must agree with them.
        assert_eq!(exp_bf16(BFloat16::from_f64(-93.0)).to_f64(), 0.0);
        assert!(exp_bf16(BFloat16::from_f64(-91.0)).to_f64() >= 0.0);
        // 2^-134 is exactly half the smallest subnormal: ties to even = 0.
        assert_eq!(exp2_bf16(BFloat16::from_f64(-134.0)).to_f64(), 0.0);
        assert_eq!(exp2_bf16(BFloat16::from_f64(-133.0)).to_f64(), 2f64.powi(-133));
    }

    #[test]
    fn against_host_samples() {
        for bits in (0x3C00u16..0x42A0).step_by(17) {
            let x = BFloat16::from_bits(bits);
            let ours = exp_bf16(x).to_f64();
            let host = x.to_f64().exp();
            assert!((ours - host).abs() <= host * 0.004, "exp({x})");
        }
    }
}
