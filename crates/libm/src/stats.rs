//! Fallback-rate instrumentation for the two-tier kernels.
//!
//! Every f32/posit32 front end calls [`record_fallback`] when the fast
//! path's safety test rejects a result and the dd kernel re-runs. With the
//! `fallback-counters` cargo feature the events land in per-function
//! relaxed atomics; without it the call compiles to nothing, so the
//! shipping library carries zero instrumentation cost.
//!
//! Only *fallbacks* are counted — never total calls. Fallbacks are a few
//! parts per million of inputs, so the counters stay out of the hot path
//! and do not perturb benchmark timing; harnesses divide by their own
//! known input counts to report a rate.

/// One counter slot per function, f32 functions in the paper's Table 1
/// order followed by the eight posit32 functions.
pub mod slot {
    /// f32 `ln`.
    pub const LN: usize = 0;
    /// f32 `log2`.
    pub const LOG2: usize = 1;
    /// f32 `log10`.
    pub const LOG10: usize = 2;
    /// f32 `exp`.
    pub const EXP: usize = 3;
    /// f32 `exp2`.
    pub const EXP2: usize = 4;
    /// f32 `exp10`.
    pub const EXP10: usize = 5;
    /// f32 `sinh`.
    pub const SINH: usize = 6;
    /// f32 `cosh`.
    pub const COSH: usize = 7;
    /// f32 `sinpi`.
    pub const SINPI: usize = 8;
    /// f32 `cospi`.
    pub const COSPI: usize = 9;
    /// posit32 `ln`.
    pub const P32_LN: usize = 10;
    /// posit32 `log2`.
    pub const P32_LOG2: usize = 11;
    /// posit32 `log10`.
    pub const P32_LOG10: usize = 12;
    /// posit32 `exp`.
    pub const P32_EXP: usize = 13;
    /// posit32 `exp2`.
    pub const P32_EXP2: usize = 14;
    /// posit32 `exp10`.
    pub const P32_EXP10: usize = 15;
    /// posit32 `sinh`.
    pub const P32_SINH: usize = 16;
    /// posit32 `cosh`.
    pub const P32_COSH: usize = 17;
    /// Number of slots.
    pub const COUNT: usize = 18;
}

#[cfg(feature = "fallback-counters")]
mod imp {
    use super::slot;
    use core::sync::atomic::{AtomicU64, Ordering};

    static FALLBACKS: [AtomicU64; slot::COUNT] = [const { AtomicU64::new(0) }; slot::COUNT];

    pub fn enabled() -> bool {
        true
    }

    #[inline]
    pub fn record_fallback(s: usize) {
        FALLBACKS[s].fetch_add(1, Ordering::Relaxed);
    }

    pub fn fallbacks(s: usize) -> u64 {
        FALLBACKS[s].load(Ordering::Relaxed)
    }

    pub fn reset() {
        for c in &FALLBACKS {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(not(feature = "fallback-counters"))]
mod imp {
    pub fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn record_fallback(_s: usize) {}

    pub fn fallbacks(_s: usize) -> u64 {
        0
    }

    pub fn reset() {}
}

/// True when the crate was built with the `fallback-counters` feature —
/// callers that *measure* rates should assert this so a misconfigured
/// build fails loudly instead of reporting a silent zero.
pub fn enabled() -> bool {
    imp::enabled()
}

/// Records one dd-fallback event for `slot` (no-op without the feature).
#[inline(always)]
pub(crate) fn record_fallback(s: usize) {
    imp::record_fallback(s);
}

/// Fallback events recorded for `slot` since the last [`reset`].
pub fn fallbacks(s: usize) -> u64 {
    imp::fallbacks(s)
}

/// Fallback count for an f32 function by its paper-table name (0 for an
/// unknown name).
pub fn fallbacks_f32(name: &str) -> u64 {
    f32_slot_by_name(name).map(fallbacks).unwrap_or(0)
}

/// Fallback count for a posit32 function by name (0 for an unknown name).
pub fn fallbacks_posit32(name: &str) -> u64 {
    posit32_slot_by_name(name).map(fallbacks).unwrap_or(0)
}

/// Slot index of an f32 function by name.
pub fn f32_slot_by_name(name: &str) -> Option<usize> {
    Some(match name {
        "ln" => slot::LN,
        "log2" => slot::LOG2,
        "log10" => slot::LOG10,
        "exp" => slot::EXP,
        "exp2" => slot::EXP2,
        "exp10" => slot::EXP10,
        "sinh" => slot::SINH,
        "cosh" => slot::COSH,
        "sinpi" => slot::SINPI,
        "cospi" => slot::COSPI,
        _ => return None,
    })
}

/// Slot index of a posit32 function by name.
pub fn posit32_slot_by_name(name: &str) -> Option<usize> {
    Some(match name {
        "ln" => slot::P32_LN,
        "log2" => slot::P32_LOG2,
        "log10" => slot::P32_LOG10,
        "exp" => slot::P32_EXP,
        "exp2" => slot::P32_EXP2,
        "exp10" => slot::P32_EXP10,
        "sinh" => slot::P32_SINH,
        "cosh" => slot::P32_COSH,
        _ => return None,
    })
}

/// Zeroes every counter (no-op without the feature).
pub fn reset() {
    imp::reset()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_lookup_is_total_over_func_names() {
        let names = ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh"];
        for (i, n) in names.iter().enumerate() {
            assert_eq!(f32_slot_by_name(n), Some(i));
            assert_eq!(posit32_slot_by_name(n), Some(i + 10));
        }
        assert_eq!(f32_slot_by_name("sinpi"), Some(slot::SINPI));
        assert_eq!(f32_slot_by_name("cospi"), Some(slot::COSPI));
        assert_eq!(f32_slot_by_name("tanh"), None);
        assert_eq!(posit32_slot_by_name("sinpi"), None);
    }

    #[test]
    fn counters_match_build_configuration() {
        reset();
        record_fallback(slot::LN);
        record_fallback(slot::LN);
        if enabled() {
            assert_eq!(fallbacks(slot::LN), 2);
        } else {
            assert_eq!(fallbacks(slot::LN), 0);
        }
        reset();
        assert_eq!(fallbacks(slot::LN), 0);
    }
}
