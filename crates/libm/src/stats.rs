//! Fallback-rate instrumentation for the two-tier kernels.
//!
//! Every f32/posit32 front end calls [`record_fallback`] when the fast
//! path's safety test rejects a result and the dd kernel re-runs. The
//! counters live in the workspace-wide `rlibm-obs` registry under
//! `runtime.fallback.{f32,posit32}.<fn>`, so a telemetry snapshot sees
//! them next to the generator's metrics; with telemetry off (the
//! default — the `fallback-counters` feature is now an alias for
//! `telemetry`) the call compiles to nothing and the shipping library
//! carries zero instrumentation cost.
//!
//! Only *fallbacks* are counted — never total calls. Fallbacks are a few
//! parts per million of inputs, so the counters stay out of the hot path
//! and do not perturb benchmark timing; harnesses divide by their own
//! known input counts to report a rate.
//!
//! The slot-indexed API below predates the registry and is kept as a
//! compat shim: the fig3/fig4 harnesses address counters by slot or by
//! name, and both views read the same registry statics.

use rlibm_obs::Counter;

/// One counter slot per function, f32 functions in the paper's Table 1
/// order followed by the eight posit32 functions.
pub mod slot {
    /// f32 `ln`.
    pub const LN: usize = 0;
    /// f32 `log2`.
    pub const LOG2: usize = 1;
    /// f32 `log10`.
    pub const LOG10: usize = 2;
    /// f32 `exp`.
    pub const EXP: usize = 3;
    /// f32 `exp2`.
    pub const EXP2: usize = 4;
    /// f32 `exp10`.
    pub const EXP10: usize = 5;
    /// f32 `sinh`.
    pub const SINH: usize = 6;
    /// f32 `cosh`.
    pub const COSH: usize = 7;
    /// f32 `sinpi`.
    pub const SINPI: usize = 8;
    /// f32 `cospi`.
    pub const COSPI: usize = 9;
    /// posit32 `ln`.
    pub const P32_LN: usize = 10;
    /// posit32 `log2`.
    pub const P32_LOG2: usize = 11;
    /// posit32 `log10`.
    pub const P32_LOG10: usize = 12;
    /// posit32 `exp`.
    pub const P32_EXP: usize = 13;
    /// posit32 `exp2`.
    pub const P32_EXP2: usize = 14;
    /// posit32 `exp10`.
    pub const P32_EXP10: usize = 15;
    /// posit32 `sinh`.
    pub const P32_SINH: usize = 16;
    /// posit32 `cosh`.
    pub const P32_COSH: usize = 17;
    /// Number of slots.
    pub const COUNT: usize = 18;
}

/// The registry-backed counters, indexed by [`slot`] constants.
static FALLBACKS: [Counter; slot::COUNT] = [
    Counter::new("runtime.fallback.f32.ln"),
    Counter::new("runtime.fallback.f32.log2"),
    Counter::new("runtime.fallback.f32.log10"),
    Counter::new("runtime.fallback.f32.exp"),
    Counter::new("runtime.fallback.f32.exp2"),
    Counter::new("runtime.fallback.f32.exp10"),
    Counter::new("runtime.fallback.f32.sinh"),
    Counter::new("runtime.fallback.f32.cosh"),
    Counter::new("runtime.fallback.f32.sinpi"),
    Counter::new("runtime.fallback.f32.cospi"),
    Counter::new("runtime.fallback.posit32.ln"),
    Counter::new("runtime.fallback.posit32.log2"),
    Counter::new("runtime.fallback.posit32.log10"),
    Counter::new("runtime.fallback.posit32.exp"),
    Counter::new("runtime.fallback.posit32.exp2"),
    Counter::new("runtime.fallback.posit32.exp10"),
    Counter::new("runtime.fallback.posit32.sinh"),
    Counter::new("runtime.fallback.posit32.cosh"),
];

/// Progressive-tier counters: which tier's result shipped for each call
/// that entered a front end in-domain. `TIER_DD` is bumped by
/// [`record_fallback`] itself, so `prefix + full + dd` always equals the
/// number of in-domain calls and the dd column stays the familiar
/// fallback count.
static TIER_PREFIX: [Counter; slot::COUNT] = [
    Counter::new("runtime.tier.prefix.f32.ln"),
    Counter::new("runtime.tier.prefix.f32.log2"),
    Counter::new("runtime.tier.prefix.f32.log10"),
    Counter::new("runtime.tier.prefix.f32.exp"),
    Counter::new("runtime.tier.prefix.f32.exp2"),
    Counter::new("runtime.tier.prefix.f32.exp10"),
    Counter::new("runtime.tier.prefix.f32.sinh"),
    Counter::new("runtime.tier.prefix.f32.cosh"),
    Counter::new("runtime.tier.prefix.f32.sinpi"),
    Counter::new("runtime.tier.prefix.f32.cospi"),
    Counter::new("runtime.tier.prefix.posit32.ln"),
    Counter::new("runtime.tier.prefix.posit32.log2"),
    Counter::new("runtime.tier.prefix.posit32.log10"),
    Counter::new("runtime.tier.prefix.posit32.exp"),
    Counter::new("runtime.tier.prefix.posit32.exp2"),
    Counter::new("runtime.tier.prefix.posit32.exp10"),
    Counter::new("runtime.tier.prefix.posit32.sinh"),
    Counter::new("runtime.tier.prefix.posit32.cosh"),
];

static TIER_FULL: [Counter; slot::COUNT] = [
    Counter::new("runtime.tier.full.f32.ln"),
    Counter::new("runtime.tier.full.f32.log2"),
    Counter::new("runtime.tier.full.f32.log10"),
    Counter::new("runtime.tier.full.f32.exp"),
    Counter::new("runtime.tier.full.f32.exp2"),
    Counter::new("runtime.tier.full.f32.exp10"),
    Counter::new("runtime.tier.full.f32.sinh"),
    Counter::new("runtime.tier.full.f32.cosh"),
    Counter::new("runtime.tier.full.f32.sinpi"),
    Counter::new("runtime.tier.full.f32.cospi"),
    Counter::new("runtime.tier.full.posit32.ln"),
    Counter::new("runtime.tier.full.posit32.log2"),
    Counter::new("runtime.tier.full.posit32.log10"),
    Counter::new("runtime.tier.full.posit32.exp"),
    Counter::new("runtime.tier.full.posit32.exp2"),
    Counter::new("runtime.tier.full.posit32.exp10"),
    Counter::new("runtime.tier.full.posit32.sinh"),
    Counter::new("runtime.tier.full.posit32.cosh"),
];

static TIER_DD: [Counter; slot::COUNT] = [
    Counter::new("runtime.tier.dd.f32.ln"),
    Counter::new("runtime.tier.dd.f32.log2"),
    Counter::new("runtime.tier.dd.f32.log10"),
    Counter::new("runtime.tier.dd.f32.exp"),
    Counter::new("runtime.tier.dd.f32.exp2"),
    Counter::new("runtime.tier.dd.f32.exp10"),
    Counter::new("runtime.tier.dd.f32.sinh"),
    Counter::new("runtime.tier.dd.f32.cosh"),
    Counter::new("runtime.tier.dd.f32.sinpi"),
    Counter::new("runtime.tier.dd.f32.cospi"),
    Counter::new("runtime.tier.dd.posit32.ln"),
    Counter::new("runtime.tier.dd.posit32.log2"),
    Counter::new("runtime.tier.dd.posit32.log10"),
    Counter::new("runtime.tier.dd.posit32.exp"),
    Counter::new("runtime.tier.dd.posit32.exp2"),
    Counter::new("runtime.tier.dd.posit32.exp10"),
    Counter::new("runtime.tier.dd.posit32.sinh"),
    Counter::new("runtime.tier.dd.posit32.cosh"),
];

/// True when the crate was built with runtime telemetry (either the
/// `telemetry` feature or its `fallback-counters` alias) — callers that
/// *measure* rates should assert this so a misconfigured build fails
/// loudly instead of reporting a silent zero.
pub fn enabled() -> bool {
    rlibm_obs::enabled()
}

/// Records one dd-fallback event for `slot` (no-op without telemetry).
/// Also bumps the dd tier counter: a fallback *is* the dd tier shipping,
/// so the two views stay one write apart from each other by definition.
#[inline(always)]
pub(crate) fn record_fallback(s: usize) {
    FALLBACKS[s].add(1);
    TIER_DD[s].add(1);
}

/// Records `n` prefix-tier acceptances for `slot` (no-op without
/// telemetry). Batched (`n > 1`) by the slice drivers.
#[inline(always)]
pub(crate) fn record_tier_prefix_n(s: usize, n: u64) {
    TIER_PREFIX[s].add(n);
}

/// Records one prefix-tier acceptance for `slot`. This is the only
/// per-call counter on the scalar happy path, so it uses the lossy
/// barrier-free increment — a locked RMW here measurably slows every
/// call (see `Counter::add_lossy`). The rare tiers (full, dd) and the
/// batched slice-driver adds stay exact.
#[inline(always)]
pub(crate) fn record_tier_prefix(s: usize) {
    TIER_PREFIX[s].add_lossy(1);
}

/// Records one full-tier acceptance (prefix escalated, full-degree
/// polynomial passed) for `slot`.
#[inline(always)]
pub(crate) fn record_tier_full(s: usize) {
    TIER_FULL[s].add(1);
}

/// Records `n` full-tier acceptances for `slot`. Batched by the slice
/// drivers when a chunk escalates prefix-rejected lanes in bulk.
#[inline(always)]
pub(crate) fn record_tier_full_n(s: usize, n: u64) {
    TIER_FULL[s].add(n);
}

/// Prefix-tier acceptances for `slot` since the last [`reset`].
pub fn tier_prefix(s: usize) -> u64 {
    TIER_PREFIX[s].get()
}

/// Full-tier acceptances for `slot` since the last [`reset`].
pub fn tier_full(s: usize) -> u64 {
    TIER_FULL[s].get()
}

/// dd-tier events for `slot` since the last [`reset`] (equals
/// [`fallbacks`] by construction).
pub fn tier_dd(s: usize) -> u64 {
    TIER_DD[s].get()
}

/// Fallback events recorded for `slot` since the last [`reset`].
pub fn fallbacks(s: usize) -> u64 {
    FALLBACKS[s].get()
}

/// Fallback count for an f32 function by its paper-table name (0 for an
/// unknown name).
pub fn fallbacks_f32(name: &str) -> u64 {
    f32_slot_by_name(name).map(fallbacks).unwrap_or(0)
}

/// Fallback count for a posit32 function by name (0 for an unknown name).
pub fn fallbacks_posit32(name: &str) -> u64 {
    posit32_slot_by_name(name).map(fallbacks).unwrap_or(0)
}

/// Slot index of an f32 function by name.
pub fn f32_slot_by_name(name: &str) -> Option<usize> {
    Some(match name {
        "ln" => slot::LN,
        "log2" => slot::LOG2,
        "log10" => slot::LOG10,
        "exp" => slot::EXP,
        "exp2" => slot::EXP2,
        "exp10" => slot::EXP10,
        "sinh" => slot::SINH,
        "cosh" => slot::COSH,
        "sinpi" => slot::SINPI,
        "cospi" => slot::COSPI,
        _ => return None,
    })
}

/// Slot index of a posit32 function by name.
pub fn posit32_slot_by_name(name: &str) -> Option<usize> {
    Some(match name {
        "ln" => slot::P32_LN,
        "log2" => slot::P32_LOG2,
        "log10" => slot::P32_LOG10,
        "exp" => slot::P32_EXP,
        "exp2" => slot::P32_EXP2,
        "exp10" => slot::P32_EXP10,
        "sinh" => slot::P32_SINH,
        "cosh" => slot::P32_COSH,
        _ => return None,
    })
}

/// Zeroes every counter (no-op without telemetry).
pub fn reset() {
    for c in &FALLBACKS {
        c.reset();
    }
    for arr in [&TIER_PREFIX, &TIER_FULL, &TIER_DD] {
        for c in arr {
            c.reset();
        }
    }
}

/// Forces all 18 fallback counters (and the runtime's other metrics)
/// into the snapshot registry at value zero, so a report can distinguish
/// "no fallbacks observed" from "counters not linked". Harnesses call
/// this once before taking snapshots.
pub fn register_all() {
    for c in &FALLBACKS {
        c.register();
    }
    for arr in [&TIER_PREFIX, &TIER_FULL, &TIER_DD] {
        for c in arr {
            c.register();
        }
    }
    crate::slice::register_metrics();
    crate::fault::register_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_lookup_is_total_over_func_names() {
        let names = ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh"];
        for (i, n) in names.iter().enumerate() {
            assert_eq!(f32_slot_by_name(n), Some(i));
            assert_eq!(posit32_slot_by_name(n), Some(i + 10));
        }
        assert_eq!(f32_slot_by_name("sinpi"), Some(slot::SINPI));
        assert_eq!(f32_slot_by_name("cospi"), Some(slot::COSPI));
        assert_eq!(f32_slot_by_name("tanh"), None);
        assert_eq!(posit32_slot_by_name("sinpi"), None);
    }

    #[test]
    fn counters_match_build_configuration() {
        reset();
        record_fallback(slot::LN);
        record_fallback(slot::LN);
        if enabled() {
            assert_eq!(fallbacks(slot::LN), 2);
        } else {
            assert_eq!(fallbacks(slot::LN), 0);
        }
        reset();
        assert_eq!(fallbacks(slot::LN), 0);
    }

    #[test]
    fn tier_counters_follow_the_same_build_gate() {
        reset();
        record_tier_prefix(slot::EXP);
        record_tier_prefix_n(slot::EXP, 3);
        record_tier_full(slot::EXP);
        record_tier_full_n(slot::EXP, 2);
        record_fallback(slot::EXP);
        if enabled() {
            assert_eq!(tier_prefix(slot::EXP), 4);
            assert_eq!(tier_full(slot::EXP), 3);
            assert_eq!(tier_dd(slot::EXP), 1);
            assert_eq!(tier_dd(slot::EXP), fallbacks(slot::EXP));
        } else {
            assert_eq!(tier_prefix(slot::EXP) + tier_full(slot::EXP) + tier_dd(slot::EXP), 0);
        }
        reset();
        assert_eq!(tier_prefix(slot::EXP), 0);
    }

    #[test]
    fn registry_sees_the_same_counters() {
        register_all();
        record_fallback(slot::EXP);
        let snap = rlibm_obs::snapshot();
        if enabled() {
            let v = snap.counter("runtime.fallback.f32.exp").expect("registered");
            assert_eq!(v, fallbacks(slot::EXP), "slot view and registry view agree");
        } else {
            assert!(snap.counters.is_empty());
        }
    }
}
