//! Build-time generation of the bit-packed kernel tables.
//!
//! Recomputes every table entry with the 160-bit multi-precision oracle
//! (`rlibm_mp::tables_src`, the same source of truth the `gen_tables`
//! reference dump uses), packs each hi/lo pair into 15 bytes (see
//! `src/tables_codec.rs`), and emits `packed_tables.rs` into `OUT_DIR`
//! together with the scalar double-double constants.
//!
//! Outputs are **pinned**: an FNV-1a checksum over the packed bytes,
//! exponent bases and constant bits is compared against the committed
//! `tables.fnv`; any drift — an oracle change, a packing change, a new
//! base — fails the build with both values printed. Regenerate the pin
//! intentionally with `RLIBM_WRITE_TABLE_FNV=1 cargo build -p rlibm-math`.
//!
//! `COSPI_T` is not emitted at all: `cos(pi n/512) == sin(pi (256-n)/512)`
//! holds bit-for-bit at double precision (the build verifies this before
//! relying on it), so the cospi accessor mirror-indexes the sinpi table.

use std::fmt::Write as _;

// The codec compiles twice (here and as crate::tables_codec) so the
// packer and the runtime unpacker can never drift apart. Runtime-only
// helpers (the hi-only prefix-tier accessor) go unused here.
#[allow(dead_code)]
#[path = "src/tables_codec.rs"]
mod codec;
use codec::{pack_entry, unpack_entry, PACKED_STRIDE};

const PREC: u32 = 160;

/// FNV-1a, matching the workspace's pinned-checksum convention.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("build.rs: {msg}");
    std::process::exit(1);
}

struct PackedTable {
    name: &'static str,
    doc: &'static str,
    hi_base: u64,
    lo_base: u64,
    bytes: Vec<u8>,
    len: usize,
}

/// Smallest biased exponent used by a column's nonzero entries — the
/// origin of its 4-bit code window.
fn column_base(entries: &[(f64, f64)], col: usize) -> u64 {
    entries
        .iter()
        .map(|&(h, l)| if col == 0 { h } else { l })
        .filter(|v| v.to_bits() != 0)
        .map(|v| (v.to_bits() >> 52) & 0x7FF)
        .min()
        .unwrap_or(1023)
}

fn pack_table(name: &'static str, doc: &'static str, entries: &[(f64, f64)]) -> PackedTable {
    let hi_base = column_base(entries, 0);
    let lo_base = column_base(entries, 1);
    let mut bytes = Vec::with_capacity(entries.len() * PACKED_STRIDE);
    for (i, &(hi, lo)) in entries.iter().enumerate() {
        match pack_entry(hi, lo, hi_base, lo_base) {
            Some(e) => bytes.extend_from_slice(&e),
            None => die(&format!(
                "{name}[{i}] = ({hi:e}, {lo:e}) does not fit the 15-byte packing \
                 (hi_base {hi_base}, lo_base {lo_base})"
            )),
        }
        // The packer must be exactly invertible — decode and compare.
        let (uh, ul) = unpack_entry(&bytes, i, hi_base, lo_base);
        if uh.to_bits() != hi.to_bits() || ul.to_bits() != lo.to_bits() {
            die(&format!("{name}[{i}]: pack/unpack round-trip lost bits"));
        }
    }
    PackedTable { name, doc, hi_base, lo_base, bytes, len: entries.len() }
}

fn main() {
    println!("cargo:rerun-if-changed=build.rs");
    println!("cargo:rerun-if-changed=src/tables_codec.rs");
    println!("cargo:rerun-if-changed=tables.fnv");
    println!("cargo:rerun-if-env-changed=RLIBM_WRITE_TABLE_FNV");

    let t = rlibm_mp::tables_src::compute(PREC);

    // The dedup the cospi accessor relies on, verified at build time.
    for n in 0..=256usize {
        let (ch, cl) = t.cospi_t[n];
        let (sh, sl) = t.sinpi_t[256 - n];
        if ch.to_bits() != sh.to_bits() || cl.to_bits() != sl.to_bits() {
            die(&format!("COSPI_T[{n}] != SINPI_T[{}]: mirror identity broken", 256 - n));
        }
    }

    let tables = [
        pack_table("EXP2_64", "`2^(j/64)` for `j in 0..64`", &t.exp2_64),
        pack_table("LN_F", "`ln(1 + j/128)` for `j in 0..=128`", &t.ln_f),
        pack_table("LOG2_F", "`log2(1 + j/128)` for `j in 0..=128`", &t.log2_f),
        pack_table("LOG10_F", "`log10(1 + j/128)` for `j in 0..=128`", &t.log10_f),
        pack_table(
            "SINPI_T",
            "`sin(pi n/512)` for `n in 0..=256` (also `cos(pi n/512)` mirrored)",
            &t.sinpi_t,
        ),
    ];

    // Checksum over the semantic content: table names, bases, packed
    // bytes, then constant names and bits, all in emission order.
    let mut fnv = Fnv::new();
    for pt in &tables {
        fnv.update(pt.name.as_bytes());
        fnv.update(&pt.hi_base.to_le_bytes());
        fnv.update(&pt.lo_base.to_le_bytes());
        fnv.update(&pt.bytes);
    }
    for (name, _, v) in &t.consts {
        fnv.update(name.as_bytes());
        fnv.update(&v.to_bits().to_le_bytes());
    }
    let checksum = fnv.0;

    let manifest = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(d) => d,
        Err(e) => die(&format!("CARGO_MANIFEST_DIR: {e}")),
    };
    let pin_path = std::path::Path::new(&manifest).join("tables.fnv");
    let pin_text = format!("{checksum:#018x}\n");
    if std::env::var("RLIBM_WRITE_TABLE_FNV").is_ok() {
        if let Err(e) = std::fs::write(&pin_path, &pin_text) {
            die(&format!("writing {}: {e}", pin_path.display()));
        }
        println!("cargo:warning=tables.fnv re-pinned to {checksum:#018x}");
    } else {
        let committed = std::fs::read_to_string(&pin_path)
            .unwrap_or_else(|e| die(&format!("reading {}: {e}", pin_path.display())));
        if committed.trim() != pin_text.trim() {
            die(&format!(
                "packed table checksum {checksum:#018x} does not match the committed \
                 pin {} — table generation drifted. If the change is intentional, \
                 re-pin with RLIBM_WRITE_TABLE_FNV=1 and re-certify.",
                committed.trim()
            ));
        }
    }

    // --- Emit packed_tables.rs ----------------------------------------
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// GENERATED by crates/libm/build.rs — do not edit. Packed-table\n\
         // checksum {checksum:#018x} (pinned by crates/libm/tables.fnv).\n"
    );
    let packed_total: usize = tables.iter().map(|pt| pt.bytes.len()).sum();
    // The replaced representation: six (f64, f64) tables (COSPI_T included).
    let unpacked_total = (64 + 3 * 129 + 2 * 257) * 16;
    let _ = writeln!(
        out,
        "/// FNV-1a checksum of the packed tables and constants.\n\
         pub const TABLES_FNV64: u64 = {checksum:#018x};\n\
         /// Total bytes of the packed table statics.\n\
         pub const TABLE_BYTES_PACKED: usize = {packed_total};\n\
         /// Bytes of the unpacked `[(f64, f64)]` representation these replace.\n\
         pub const TABLE_BYTES_UNPACKED: usize = {unpacked_total};\n"
    );
    for pt in &tables {
        let _ = writeln!(
            out,
            "/// {} — {} entries packed at a 15-byte stride.\n\
             pub static {}_P: [u8; {}] = [",
            pt.doc,
            pt.len,
            pt.name,
            pt.bytes.len()
        );
        for chunk in pt.bytes.chunks(15) {
            let row: Vec<String> = chunk.iter().map(|b| b.to_string()).collect();
            let _ = writeln!(out, "    {},", row.join(", "));
        }
        let _ = writeln!(
            out,
            "];\n\
             /// Biased-exponent origin of `{0}_P`'s hi codes.\n\
             pub const {0}_HI_BASE: u64 = {1};\n\
             /// Biased-exponent origin of `{0}_P`'s lo codes.\n\
             pub const {0}_LO_BASE: u64 = {2};\n",
            pt.name, pt.hi_base, pt.lo_base
        );
    }
    for (name, doc, v) in &t.consts {
        let _ = writeln!(
            out,
            "/// {doc}\npub const {name}: f64 = f64::from_bits({:#018x}); // {v:.18e}",
            v.to_bits()
        );
    }

    let out_dir = match std::env::var("OUT_DIR") {
        Ok(d) => d,
        Err(e) => die(&format!("OUT_DIR: {e}")),
    };
    let dest = std::path::Path::new(&out_dir).join("packed_tables.rs");
    if let Err(e) = std::fs::write(&dest, out) {
        die(&format!("writing {}: {e}", dest.display()));
    }
}
