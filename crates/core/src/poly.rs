//! Polynomials with sparse term lists and Horner evaluation in `H = f64`.
//!
//! The paper exploits structure: `sinpi(R)` gets an *odd* polynomial
//! (`c1 r + c3 r^3 + c5 r^5`), `cospi(R)` an *even* one. A term-exponent
//! list expresses all of these; evaluation factors the common stride so
//! the runtime cost matches a dense Horner of the compressed degree
//! (paper Section 4.1: "polynomial evaluation uses Horner's method").

/// A polynomial with explicit term exponents, evaluated in `f64`.
///
/// # Example
///
/// ```
/// use rlibm_core::poly::Polynomial;
/// // 2x + 3x^3 (odd polynomial):
/// let p = Polynomial::new(vec![1, 3], vec![2.0, 3.0]);
/// assert_eq!(p.eval(2.0), 2.0 * 2.0 + 3.0 * 8.0);
/// assert_eq!(p.degree(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    /// Term exponents, strictly increasing (e.g. `[0,1,2,3]` or `[1,3,5]`).
    terms: Vec<u32>,
    /// One coefficient per term.
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Builds a polynomial from exponents and coefficients.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or the exponents are not strictly
    /// increasing.
    pub fn new(terms: Vec<u32>, coeffs: Vec<f64>) -> Polynomial {
        assert_eq!(terms.len(), coeffs.len(), "terms/coeffs length mismatch");
        assert!(terms.windows(2).all(|w| w[0] < w[1]), "exponents must increase");
        Polynomial { terms, coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Polynomial {
        Polynomial { terms: vec![0], coeffs: vec![0.0] }
    }

    /// Term exponents.
    pub fn terms(&self) -> &[u32] {
        &self.terms
    }

    /// Coefficients, aligned with [`Self::terms`].
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Highest exponent.
    pub fn degree(&self) -> u32 {
        *self.terms.last().unwrap_or(&0)
    }

    /// Number of (potentially) nonzero terms — the paper's "# of Terms"
    /// column in Table 3.
    pub fn num_terms(&self) -> usize {
        self.coeffs.iter().filter(|c| **c != 0.0).count()
    }

    /// Horner evaluation in `f64`, factoring common strides: an
    /// `[1,3,5,...]` odd polynomial evaluates as `r * Q(r^2)`.
    #[inline]
    pub fn eval(&self, r: f64) -> f64 {
        if self.coeffs.is_empty() {
            return 0.0;
        }
        // Detect a uniform stride (dense: 1; odd/even: 2).
        let n = self.terms.len();
        if n == 1 {
            return self.coeffs[0] * powi_f64(r, self.terms[0]);
        }
        let stride = self.terms[1] - self.terms[0];
        let uniform = self
            .terms
            .windows(2)
            .all(|w| w[1] - w[0] == stride);
        if uniform && stride >= 1 {
            let x = powi_f64(r, stride);
            let mut acc = self.coeffs[n - 1];
            for i in (0..n - 1).rev() {
                acc = acc * x + self.coeffs[i];
            }
            return acc * powi_f64(r, self.terms[0]);
        }
        // General sparse Horner.
        let mut acc = self.coeffs[n - 1];
        for i in (0..n - 1).rev() {
            let gap = self.terms[i + 1] - self.terms[i];
            acc = acc * powi_f64(r, gap) + self.coeffs[i];
        }
        acc * powi_f64(r, self.terms[0])
    }
}

#[inline]
fn powi_f64(r: f64, e: u32) -> f64 {
    match e {
        0 => 1.0,
        1 => r,
        2 => r * r,
        3 => r * r * r,
        _ => {
            let h = powi_f64(r, e / 2);
            if e.is_multiple_of(2) {
                h * h
            } else {
                h * h * r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_eval_matches_naive() {
        let p = Polynomial::new(vec![0, 1, 2, 3], vec![1.0, -2.0, 0.5, 4.0]);
        for &x in &[0.0, 1.0, -1.5, 0.3, 7.2] {
            let naive = 1.0 - 2.0 * x + 0.5 * x * x + 4.0 * x * x * x;
            assert!((p.eval(x) - naive).abs() <= 1e-12 * naive.abs().max(1.0));
        }
        assert_eq!(p.degree(), 3);
        assert_eq!(p.num_terms(), 4);
    }

    #[test]
    fn odd_polynomial_is_odd() {
        let p = Polynomial::new(vec![1, 3, 5], vec![3.25, -5.16, 2.55]);
        for &x in &[0.1, 0.5, 1.3] {
            assert_eq!(p.eval(-x), -p.eval(x));
        }
    }

    #[test]
    fn even_polynomial_is_even() {
        let p = Polynomial::new(vec![0, 2, 4], vec![1.0, -4.93, 4.05]);
        for &x in &[0.1, 0.5, 1.3] {
            assert_eq!(p.eval(-x), p.eval(x));
        }
    }

    #[test]
    fn single_term() {
        let p = Polynomial::new(vec![4], vec![2.0]);
        assert_eq!(p.eval(3.0), 162.0);
    }

    #[test]
    fn irregular_terms() {
        // 1 + x^2 + x^7
        let p = Polynomial::new(vec![0, 2, 7], vec![1.0, 1.0, 1.0]);
        let x = 1.5f64;
        let naive = 1.0 + x * x + x.powi(7);
        assert!((p.eval(x) - naive).abs() < 1e-10);
    }

    #[test]
    fn zero_poly() {
        assert_eq!(Polynomial::zero().eval(123.0), 0.0);
    }
}
