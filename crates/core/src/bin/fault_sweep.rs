//! Fault-injection sweep driver (requires `--features fault`).
//!
//! Runs the adversarial certification of the two-tier round-safe design:
//! seeded corruptions at every tier-1 kernel site, dd-reference
//! comparison per input, per-function injection targets. Exits nonzero
//! if any corruption escaped as a mis-rounded output or a function fell
//! short of its injection target.
//!
//! ```text
//! fault_sweep [target_injections_per_func] [seed]
//! ```
//!
//! Defaults: 100 000 injections per function (the PR's acceptance bar),
//! seed 0xD1CE.

use rlibm_core::fault::{sweep_all, FaultReport};

fn parse_arg(s: Option<String>, default: u64) -> u64 {
    s.and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let target = parse_arg(args.next(), 100_000);
    let seed = parse_arg(args.next(), 0xD1CE);

    println!("fault sweep: target {target} injections per function, seed {seed:#x}");
    println!(
        "{:<8} {:<8} {:>12} {:>12} {:>14} {:>10}",
        "func", "repr", "evaluated", "injected", "dd_fallbacks", "mismatches"
    );
    let reports = sweep_all(target, seed);
    let mut failed = false;
    for r in &reports {
        let FaultReport { name, repr, evaluated, injected, dd_fallbacks, mismatches } = r;
        println!(
            "{name:<8} {repr:<8} {evaluated:>12} {injected:>12} {dd_fallbacks:>14} {mismatches:>10}"
        );
        if *mismatches > 0 {
            eprintln!("FAIL: {name}/{repr}: {mismatches} corrupted outputs escaped certification");
            failed = true;
        }
        if *injected < target {
            eprintln!(
                "FAIL: {name}/{repr}: only {injected} of {target} target injections landed \
                 (is the `fault` feature enabled all the way down?)"
            );
            failed = true;
        }
    }
    let total: u64 = reports.iter().map(|r| r.injected).sum();
    if failed {
        eprintln!("fault sweep FAILED ({total} total injections)");
        std::process::exit(1);
    }
    println!("fault sweep clean: {total} injections, zero mis-rounded outputs");
}
