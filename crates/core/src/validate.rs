//! Full-domain validation of generated (or hand-shipped) implementations
//! against the oracle — the final step of Section 2.2 and the machinery
//! behind the paper's Table 1 and Table 2 correctness counts.

use crate::par;
use rlibm_fp::rng::XorShift64;
use rlibm_fp::Representation;
use rlibm_mp::{correctly_rounded, Func};
use rlibm_obs::{Counter, Histogram, SpanTimer};

// Validation telemetry (no-ops unless built with the `telemetry`
// feature). Totals are added once per report — never per input — so the
// sweep loops stay free of atomics; mismatch recording sits on the
// already-cold failure path. The chunk spans expose per-worker
// throughput of the parallel engine.
static VALIDATE_INPUTS: Counter = Counter::new("validate.inputs");
static VALIDATE_MISMATCHES: Counter = Counter::new("validate.mismatches");
static VALIDATE_MISMATCH_BITS: Histogram = Histogram::new("validate.mismatch_bits");
static VALIDATE_CHUNK_SPAN: SpanTimer = SpanTimer::new("validate.chunk");
static AGREEMENT_INPUTS: Counter = Counter::new("agreement.inputs");
static AGREEMENT_MISMATCHES: Counter = Counter::new("agreement.mismatches");
static AGREEMENT_MISMATCH_BITS: Histogram = Histogram::new("agreement.mismatch_bits");
static AGREEMENT_CHUNK_SPAN: SpanTimer = SpanTimer::new("agreement.chunk");

/// Result of validating an implementation over a set of inputs.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Inputs checked.
    pub total: u64,
    /// Inputs where the implementation differed from the oracle.
    pub wrong: u64,
    /// Up to eight example failures `(input bits, got bits, want bits)`.
    pub examples: Vec<(u32, u32, u32)>,
}

impl ValidationReport {
    /// True when every checked input was correctly rounded.
    pub fn all_correct(&self) -> bool {
        self.wrong == 0
    }

    /// Absorbs a report covering the inputs that come *after* this
    /// report's inputs. Because examples are capped at the first eight in
    /// input order, merging chunk reports in chunk order reproduces the
    /// serial report exactly.
    fn absorb(&mut self, later: &ValidationReport) {
        self.total += later.total;
        self.wrong += later.wrong;
        let room = 8usize.saturating_sub(self.examples.len());
        self.examples.extend(later.examples.iter().take(room));
    }
}

/// Two results agree if they are the same value: bit-equal, both NaN, or
/// both zero (the zero-sign convention differs across libms and the paper
/// counts values, not bit patterns).
pub fn same_result<T: Representation>(a: T, b: T) -> bool {
    if a.to_bits_u32() == b.to_bits_u32() {
        return true;
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    let (af, bf) = (a.to_f64(), b.to_f64());
    af == bf // catches +0 vs -0 (and nothing else beyond bit equality)
}

/// Validates `implementation` against the oracle for every input produced
/// by `inputs`.
pub fn validate<T: Representation>(
    func: Func,
    implementation: impl Fn(T) -> T,
    inputs: impl Iterator<Item = T>,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    for x in inputs {
        report.total += 1;
        let got = implementation(x);
        let want = correctly_rounded(func, x);
        if !same_result(got, want) {
            report.wrong += 1;
            // The mismatch-bits histogram locates failures in the input
            // space: the log2 bucket of the bit pattern separates small
            // (low-pattern) inputs from the high exponent ranges.
            VALIDATE_MISMATCH_BITS.record(u64::from(x.to_bits_u32()));
            if report.examples.len() < 8 {
                report
                    .examples
                    .push((x.to_bits_u32(), got.to_bits_u32(), want.to_bits_u32()));
            }
        }
    }
    VALIDATE_INPUTS.add(report.total);
    VALIDATE_MISMATCHES.add(report.wrong);
    report
}

/// Parallel drop-in for [`validate`] over a slice of inputs.
///
/// The input index space is split into chunks, each chunk is validated
/// against the oracle on one of `threads` worker threads, and the chunk
/// reports are merged in chunk order. The result is **bit-identical** to
/// serial [`validate`] over the same slice for every thread count:
/// `total` and `wrong` are sums, and `examples` holds the first eight
/// failures in input order. Pass [`par::num_threads()`] for "all cores".
pub fn validate_par<T: Representation>(
    func: Func,
    implementation: impl Fn(T) -> T + Sync,
    inputs: &[T],
    threads: usize,
) -> ValidationReport {
    let chunk = par::default_chunk_size(inputs.len(), threads);
    let reports = par::run_chunked(inputs.len(), chunk, threads, |_, range| {
        let _span = VALIDATE_CHUNK_SPAN.start();
        validate(func, &implementation, inputs[range].iter().copied())
    });
    let mut merged = ValidationReport::default();
    for r in &reports {
        merged.absorb(r);
    }
    merged
}

/// Checks two implementations of the same function against each other —
/// no oracle involved. This is the cheap half of certifying a fast-path /
/// fallback split: the dd implementation is already validated against the
/// multi-precision oracle, so *bit-level agreement* with it transfers
/// correctness to the two-tier implementation over the swept inputs.
///
/// Agreement is strict bit equality except that any-NaN-vs-any-NaN
/// counts as agreeing (both f32 wrappers produce the canonical NaN, but
/// the contract shouldn't depend on the payload).
pub fn agreement<T: Representation>(
    implementation: impl Fn(T) -> T,
    reference: impl Fn(T) -> T,
    inputs: impl Iterator<Item = T>,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    for x in inputs {
        report.total += 1;
        let got = implementation(x);
        let want = reference(x);
        if got.to_bits_u32() != want.to_bits_u32() && !(got.is_nan() && want.is_nan()) {
            report.wrong += 1;
            AGREEMENT_MISMATCH_BITS.record(u64::from(x.to_bits_u32()));
            if report.examples.len() < 8 {
                report
                    .examples
                    .push((x.to_bits_u32(), got.to_bits_u32(), want.to_bits_u32()));
            }
        }
    }
    AGREEMENT_INPUTS.add(report.total);
    AGREEMENT_MISMATCHES.add(report.wrong);
    report
}

/// Parallel drop-in for [`agreement`] over a slice of inputs, chunked
/// exactly like [`validate_par`] (bit-identical to the serial report for
/// any thread count).
pub fn agreement_par<T: Representation>(
    implementation: impl Fn(T) -> T + Sync,
    reference: impl Fn(T) -> T + Sync,
    inputs: &[T],
    threads: usize,
) -> ValidationReport {
    let chunk = par::default_chunk_size(inputs.len(), threads);
    let reports = par::run_chunked(inputs.len(), chunk, threads, |_, range| {
        let _span = AGREEMENT_CHUNK_SPAN.start();
        agreement(&implementation, &reference, inputs[range].iter().copied())
    });
    let mut merged = ValidationReport::default();
    for r in &reports {
        merged.absorb(r);
    }
    merged
}

/// Every bit pattern of a 16-bit representation (the exhaustive iterator
/// used by the end-to-end pipeline tests).
pub fn all_16bit<T: Representation>() -> impl Iterator<Item = T> {
    assert_eq!(T::BITS, 16, "exhaustive iteration is for 16-bit types");
    (0..=u16::MAX).map(|b| T::from_bits_u32(b as u32))
}

/// A stratified sample of f32 inputs: `per_exponent` values from every
/// exponent bucket (both signs), plus all boundary patterns. This is the
/// workload generator for the Table 1 harness — full 2^32 enumeration with
/// a multi-precision oracle is days of compute, and the stratification
/// preserves the paper's coverage across the entire dynamic range.
pub fn stratified_f32(per_exponent: u32, seed: u64) -> Vec<f32> {
    let mut out = Vec::new();
    let mut rng = XorShift64::new(seed);
    for sign in [0u32, 1] {
        for exp in 0..=0xFEu32 {
            for _ in 0..per_exponent {
                let mant = (rng.next_u64() as u32) & 0x7F_FFFF;
                out.push(f32::from_bits((sign << 31) | (exp << 23) | mant));
            }
        }
    }
    // Boundary patterns.
    out.extend_from_slice(&[
        0.0,
        -0.0,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::from_bits(1),
        f32::MAX,
        f32::MIN,
        1.0,
        -1.0,
    ]);
    out
}

/// A stratified sample of posit32 inputs: `per_regime`-ish coverage by
/// sweeping the pattern space uniformly (posit patterns are uniformly
/// informative, unlike IEEE exponent buckets).
pub fn stratified_posit32(count: u32, seed: u64) -> Vec<rlibm_posit::Posit32> {
    let mut out = Vec::with_capacity(count as usize + 4);
    let stride = (u32::MAX / count).max(1);
    let mut bits = seed as u32 | 1;
    for _ in 0..count {
        out.push(rlibm_posit::Posit32::from_bits(bits));
        bits = bits.wrapping_add(stride);
    }
    out.extend_from_slice(&[
        rlibm_posit::Posit32::ZERO,
        rlibm_posit::Posit32::ONE,
        rlibm_posit::Posit32::MAXPOS,
        rlibm_posit::Posit32::MINPOS,
    ]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlibm_fp::BFloat16;

    #[test]
    fn oracle_validates_itself() {
        // The oracle vs the oracle: zero wrong, by construction.
        let report = validate(
            Func::Exp,
            |x: BFloat16| correctly_rounded(Func::Exp, x),
            (0x3F00..0x4000u16).map(BFloat16::from_bits),
        );
        assert!(report.all_correct());
        assert_eq!(report.total, 0x100);
    }

    #[test]
    fn wrong_implementation_is_caught() {
        // A deliberately sloppy exp: evaluated in f32 precision via the
        // host libm with a truncation; must show wrong results.
        let report = validate(
            Func::Exp,
            |x: BFloat16| BFloat16::from_f64(x.to_f64().exp() * (1.0 + 1e-3)),
            (0x3F80..0x3FC0u16).map(BFloat16::from_bits),
        );
        assert!(report.wrong > 0);
        assert!(!report.examples.is_empty());
    }

    #[test]
    fn same_result_semantics() {
        assert!(same_result(0.0f32, -0.0f32));
        assert!(same_result(f32::NAN, f32::NAN));
        assert!(!same_result(1.0f32, 1.0000001f32));
    }

    #[test]
    fn stratified_f32_covers_all_exponents() {
        let xs = stratified_f32(2, 42);
        assert!(xs.len() > 1000);
        // Every finite exponent appears.
        let mut seen = [false; 255];
        for x in &xs {
            let e = (x.to_bits() >> 23) & 0xFF;
            if e < 255 {
                seen[e as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stratified_posit_has_no_duplicates_in_small_counts() {
        let xs = stratified_posit32(1000, 7);
        assert_eq!(xs.len(), 1004);
        let mut bits: Vec<u32> = xs.iter().map(|p| p.to_bits()).collect();
        bits.sort_unstable();
        let before = bits.len();
        bits.dedup();
        assert_eq!(bits.len(), before, "stratified posit sample repeats bit patterns");
    }

    #[test]
    fn validate_par_is_deterministic_across_thread_counts() {
        // Exhaustive bf16 sweep: all 2^16 bit patterns, including NaNs,
        // infinities and the saturated tails, against a deliberately
        // imperfect implementation (host libm truncated to bf16 with a
        // small bias) so that `wrong` and `examples` are non-trivial.
        let inputs: Vec<BFloat16> = all_16bit::<BFloat16>().collect();
        let imp = |x: BFloat16| BFloat16::from_f64(x.to_f64().exp() * (1.0 + 1e-3));
        let serial = validate(Func::Exp, imp, inputs.iter().copied());
        assert_eq!(serial.total, 1 << 16);
        assert!(serial.wrong > 0, "biased exp must misround somewhere");
        assert_eq!(serial.examples.len(), 8);
        for threads in [1, 2, 8] {
            let par = validate_par(Func::Exp, imp, &inputs, threads);
            assert_eq!(par.total, serial.total, "threads = {threads}");
            assert_eq!(par.wrong, serial.wrong, "threads = {threads}");
            assert_eq!(par.examples, serial.examples, "threads = {threads}");
        }
    }

    #[test]
    fn agreement_catches_single_bit_differences() {
        // Identity agrees with itself...
        let inputs: Vec<BFloat16> = (0x3F00..0x4000u16).map(BFloat16::from_bits).collect();
        let clean = agreement(|x: BFloat16| x, |x: BFloat16| x, inputs.iter().copied());
        assert!(clean.all_correct());
        assert_eq!(clean.total, 0x100);
        // ...but a one-ulp nudge on some inputs is flagged, and NaN
        // payload differences are not.
        let nudged = |x: BFloat16| {
            if x.to_bits().is_multiple_of(7) {
                BFloat16::from_bits(x.to_bits() ^ 1)
            } else {
                x
            }
        };
        let report = agreement(nudged, |x: BFloat16| x, inputs.iter().copied());
        assert!(report.wrong > 0);
        assert!(!report.examples.is_empty());
        let nan_a = |_: BFloat16| BFloat16::from_bits(0x7FC0);
        let nan_b = |_: BFloat16| BFloat16::from_bits(0x7FC1);
        let nans = agreement(nan_a, nan_b, inputs.iter().copied().take(4));
        assert!(nans.all_correct(), "NaN payloads must not count as disagreement");
    }

    #[test]
    fn agreement_par_matches_serial() {
        let inputs: Vec<BFloat16> = all_16bit::<BFloat16>().collect();
        let nudged = |x: BFloat16| {
            if x.to_bits().is_multiple_of(11) {
                BFloat16::from_bits(x.to_bits() ^ 1)
            } else {
                x
            }
        };
        let serial = agreement(nudged, |x: BFloat16| x, inputs.iter().copied());
        assert!(serial.wrong > 0);
        for threads in [1, 3, 8] {
            let par = agreement_par(nudged, |x: BFloat16| x, &inputs, threads);
            assert_eq!(par.total, serial.total, "threads = {threads}");
            assert_eq!(par.wrong, serial.wrong, "threads = {threads}");
            assert_eq!(par.examples, serial.examples, "threads = {threads}");
        }
    }

    #[test]
    fn validate_par_all_correct_against_oracle() {
        // Oracle vs oracle through the parallel path: the report must be
        // clean and the worker threads must share the oracle soundly.
        let inputs: Vec<BFloat16> = (0x3F00..0x4000u16).map(BFloat16::from_bits).collect();
        let report = validate_par(
            Func::Exp,
            |x: BFloat16| correctly_rounded(Func::Exp, x),
            &inputs,
            8,
        );
        assert!(report.all_correct());
        assert_eq!(report.total, 0x100);
    }
}
