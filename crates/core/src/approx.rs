//! Piecewise polynomial generation (Algorithm 3, `GenApproxFunc` /
//! `GenApproxHelper` / `GenPiecewise`).
//!
//! Tries a single polynomial over the whole reduced domain first; when
//! counterexample-guided generation fails (infeasible degree or sample
//! overflow), the domain is split into `2^n` bit-pattern sub-domains with
//! increasing `n` until every sub-domain admits a polynomial. Negative and
//! non-negative reduced inputs are handled separately (their double bit
//! patterns share no prefix).

use crate::poly::Polynomial;
use crate::polygen::{gen_polynomial, PolyGenConfig, PolyGenError, PolyGenStats};
use crate::reduced::ReducedConstraint;
use crate::split::BitPatternSplitter;

/// A piecewise polynomial over one sign class of reduced inputs.
#[derive(Debug, Clone)]
pub struct PiecewiseApprox {
    /// Sub-domain selector (identity when there is a single polynomial).
    splitter: BitPatternSplitter,
    /// One polynomial per sub-domain. Sub-domains with no constraints get
    /// a zero polynomial (they are never reached by valid reduced inputs).
    polys: Vec<Polynomial>,
}

impl PiecewiseApprox {
    /// Evaluates the approximation at a reduced input.
    #[inline]
    pub fn eval(&self, r: f64) -> f64 {
        self.polys[self.splitter.index(r)].eval(r)
    }

    /// Number of sub-domains.
    pub fn domains(&self) -> usize {
        self.polys.len()
    }

    /// The sub-domain polynomials.
    pub fn polynomials(&self) -> &[Polynomial] {
        &self.polys
    }

    /// The splitter (for storage-size accounting).
    pub fn splitter(&self) -> &BitPatternSplitter {
        &self.splitter
    }

    /// Maximum polynomial degree across sub-domains (Table 3's "Degree").
    pub fn max_degree(&self) -> u32 {
        self.polys.iter().map(Polynomial::degree).max().unwrap_or(0)
    }

    /// Maximum number of nonzero terms (Table 3's "# of Terms").
    pub fn max_terms(&self) -> usize {
        self.polys.iter().map(Polynomial::num_terms).max().unwrap_or(0)
    }
}

/// A generated approximation for a full reduced domain: up to one
/// piecewise polynomial per sign class.
#[derive(Debug, Clone)]
pub struct SignSplitApprox {
    /// Approximation for negative reduced inputs (`L-`), if any exist.
    pub negative: Option<PiecewiseApprox>,
    /// Approximation for non-negative reduced inputs (`L+`), if any.
    pub non_negative: Option<PiecewiseApprox>,
}

impl SignSplitApprox {
    /// Evaluates using the sign-appropriate piecewise polynomial. Returns
    /// NaN when no polynomial was generated for the input's sign class —
    /// such inputs are outside the generated domain by construction, and
    /// NaN is the honest "no value" answer for a total function.
    pub fn eval(&self, r: f64) -> f64 {
        let side = if r.is_sign_negative() {
            self.negative.as_ref()
        } else {
            self.non_negative.as_ref()
        };
        match side {
            Some(p) => p.eval(r),
            None => f64::NAN,
        }
    }

    /// Total number of sub-domains across both sign classes.
    pub fn domains(&self) -> usize {
        self.negative.as_ref().map_or(0, PiecewiseApprox::domains)
            + self.non_negative.as_ref().map_or(0, PiecewiseApprox::domains)
    }
}

/// Configuration for Algorithm 3.
#[derive(Debug, Clone)]
pub struct ApproxConfig {
    /// Polynomial generation settings (terms, sample limits).
    pub polygen: PolyGenConfig,
    /// Maximum `n` for `2^n` sub-domains (the paper capped at `2^14`).
    pub max_split_bits: u32,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig { polygen: PolyGenConfig::default(), max_split_bits: 14 }
    }
}

/// Aggregate statistics over a generation run.
#[derive(Debug, Clone, Default)]
pub struct ApproxStats {
    /// Total LP calls across all sub-domains and split attempts.
    pub lp_calls: usize,
    /// Total counterexample rounds.
    pub cegis_rounds: usize,
    /// Split attempts (values of `n` tried).
    pub split_attempts: usize,
}

impl ApproxStats {
    fn absorb(&mut self, s: &PolyGenStats) {
        self.lp_calls += s.lp_calls;
        self.cegis_rounds += s.cegis_rounds;
    }
}

/// Errors from the piecewise generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApproxError {
    /// Even `2^max_split_bits` sub-domains were not enough.
    SplitLimitReached,
    /// The LP solver failed in a way more splitting cannot fix (cycling
    /// that survived its restarts, malformed dimensions).
    Solver(rlibm_lp::LpError),
}

impl core::fmt::Display for ApproxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ApproxError::SplitLimitReached => write!(f, "split limit reached"),
            ApproxError::Solver(e) => write!(f, "LP solver failed: {e}"),
        }
    }
}

impl std::error::Error for ApproxError {}

/// Algorithm 3's `GenApproxFunc`: generates piecewise polynomials for all
/// reduced constraints, splitting by sign first and then by bit pattern.
///
/// The input must already be merged per reduced input (see
/// [`crate::reduced::merge_by_reduced_input`]).
pub fn gen_approx(
    constraints: &[ReducedConstraint],
    cfg: &ApproxConfig,
) -> Result<(SignSplitApprox, ApproxStats), ApproxError> {
    let mut stats = ApproxStats::default();
    let (neg, pos): (Vec<_>, Vec<_>) = constraints
        .iter()
        .copied()
        .partition(|c| c.r.is_sign_negative());
    let negative = if neg.is_empty() {
        None
    } else {
        Some(gen_approx_helper(&neg, cfg, &mut stats)?)
    };
    let non_negative = if pos.is_empty() {
        None
    } else {
        Some(gen_approx_helper(&pos, cfg, &mut stats)?)
    };
    Ok((SignSplitApprox { negative, non_negative }, stats))
}

/// Algorithm 3's `GenApproxHelper`: increase the number of sub-domains
/// until every one is feasible.
fn gen_approx_helper(
    constraints: &[ReducedConstraint],
    cfg: &ApproxConfig,
    stats: &mut ApproxStats,
) -> Result<PiecewiseApprox, ApproxError> {
    debug_assert!(!constraints.is_empty());
    let r_min = constraints
        .iter()
        .map(|c| c.r)
        .fold(f64::INFINITY, f64::min);
    let r_max = constraints
        .iter()
        .map(|c| c.r)
        .fold(f64::NEG_INFINITY, f64::max);
    // For negative inputs min/max as *values*; the splitter only needs the
    // two extremes' bit patterns, order-agnostic.
    'split: for n in 0..=cfg.max_split_bits {
        stats.split_attempts += 1;
        let splitter = BitPatternSplitter::new(r_min.min(r_max), r_max.max(r_min), n);
        let mut buckets: Vec<Vec<ReducedConstraint>> = vec![Vec::new(); splitter.domains()];
        for c in constraints {
            buckets[splitter.index(c.r)].push(*c);
        }
        let mut polys = Vec::with_capacity(splitter.domains());
        for bucket in &buckets {
            match gen_polynomial(bucket, &cfg.polygen) {
                Ok((poly, pstats)) => {
                    stats.absorb(&pstats);
                    polys.push(poly);
                }
                Err(PolyGenError::Infeasible)
                | Err(PolyGenError::SampleOverflow)
                | Err(PolyGenError::RefinementExhausted) => {
                    continue 'split;
                }
                Err(PolyGenError::Solver(e)) => {
                    // Splitting the domain cannot repair a solver failure;
                    // surface it instead of burning the split budget.
                    return Err(ApproxError::Solver(e));
                }
            }
        }
        return Ok(PiecewiseApprox { splitter, polys });
    }
    Err(ApproxError::SplitLimitReached)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn constraints_from_fn(
        f: impl Fn(f64) -> f64,
        xs: impl Iterator<Item = f64>,
        half_width: f64,
    ) -> Vec<ReducedConstraint> {
        xs.map(|x| {
            let y = f(x);
            ReducedConstraint {
                r: x,
                interval: Interval::new(y - half_width, y + half_width),
            }
        })
        .collect()
    }

    #[test]
    fn single_polynomial_when_easy() {
        let cons = constraints_from_fn(
            |x| (core::f64::consts::PI * x).sin(),
            (1..2000).map(|i| i as f64 / 1024e3),
            1e-13,
        );
        let cfg = ApproxConfig {
            polygen: PolyGenConfig { terms: vec![1, 3, 5], ..Default::default() },
            ..Default::default()
        };
        let (approx, stats) = gen_approx(&cons, &cfg).expect("feasible");
        let pw = approx.non_negative.as_ref().unwrap();
        assert_eq!(pw.domains(), 1, "a quintic odd poly must fit in one piece");
        assert_eq!(stats.split_attempts, 1);
        for c in &cons {
            assert!(c.interval.contains(approx.eval(c.r)));
        }
    }

    #[test]
    fn splits_when_one_piece_is_not_enough() {
        // A low-degree polynomial over a wiggly wide domain: needs splits.
        let cons = constraints_from_fn(
            |x| (10.0 * x).sin(),
            (0..4000).map(|i| 1.0 + i as f64 / 4000.0 * 0.9999),
            1e-7,
        );
        let cfg = ApproxConfig {
            polygen: PolyGenConfig {
                terms: vec![0, 1, 2],
                max_sample: 400,
                ..Default::default()
            },
            max_split_bits: 10,
        };
        let (approx, stats) = gen_approx(&cons, &cfg).expect("feasible with splits");
        let pw = approx.non_negative.as_ref().unwrap();
        assert!(pw.domains() > 1, "must have split");
        assert!(stats.split_attempts > 1);
        for c in &cons {
            assert!(
                c.interval.contains(approx.eval(c.r)),
                "violated at r = {}",
                c.r
            );
        }
    }

    #[test]
    fn negative_and_positive_split() {
        // exp-like data on both sides of zero (the paper's exp/exp2/exp10
        // case: "we created two piecewise polynomials: one for the
        // negative reduced inputs and another for positive").
        let cons = constraints_from_fn(
            |x| x.exp(),
            (-1000..1000).filter(|&i| i != 0).map(|i| i as f64 * 5e-6),
            1e-13,
        );
        let cfg = ApproxConfig {
            polygen: PolyGenConfig { terms: vec![0, 1, 2, 3], ..Default::default() },
            ..Default::default()
        };
        let (approx, _) = gen_approx(&cons, &cfg).expect("feasible");
        assert!(approx.negative.is_some());
        assert!(approx.non_negative.is_some());
        for c in &cons {
            assert!(c.interval.contains(approx.eval(c.r)));
        }
    }

    #[test]
    fn split_limit_is_reported() {
        // Impossible windows (zero width around a high-degree shape with a
        // degree-0 polynomial) exhaust the split budget.
        let cons = constraints_from_fn(|x| x, (0..64).map(|i| 1.0 + i as f64 / 64.0 * 0.999), 1e-9);
        let cfg = ApproxConfig {
            polygen: PolyGenConfig { terms: vec![0], ..Default::default() },
            max_split_bits: 2,
        };
        assert!(matches!(
            gen_approx(&cons, &cfg),
            Err(ApproxError::SplitLimitReached)
        ));
    }

    #[test]
    fn domain_accounting() {
        let cons = constraints_from_fn(|x| x * x, (1..100).map(|i| i as f64 / 100.0), 1e-9);
        let cfg = ApproxConfig {
            polygen: PolyGenConfig { terms: vec![0, 1, 2], ..Default::default() },
            ..Default::default()
        };
        let (approx, _) = gen_approx(&cons, &cfg).expect("feasible");
        assert_eq!(approx.domains(), approx.non_negative.as_ref().unwrap().domains());
    }
}
