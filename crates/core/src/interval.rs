//! Rounding intervals (Algorithm 1, `RoundingInterval`).
//!
//! For a target value `y` in representation `T`, the rounding interval is
//! the set of doubles (`H = f64`) that round to `y`. Because every
//! representation's rounding function is monotone over the f64 total
//! order, the interval is a contiguous range `[lo, hi]` and its endpoints
//! can be found by binary search over f64 *order keys* — 64 probes of
//! `round_from_f64`, with no per-representation midpoint/tie-parity logic
//! to get wrong. (The paper notes both implementations; the search is the
//! robust one and costs nothing at generation scale.)

use rlibm_fp::bits::{f64_from_order_key, f64_order_key};
use rlibm_fp::Representation;

/// A closed interval of doubles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Smallest double in the interval.
    pub lo: f64,
    /// Largest double in the interval.
    pub hi: f64,
}

impl Interval {
    /// Builds an interval; panics if `lo > hi` or either end is NaN.
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(!lo.is_nan() && !hi.is_nan() && lo <= hi, "bad interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// True when `v` lies inside.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Intersection, or `None` when disjoint. Used when multiple original
    /// inputs map to the same reduced input (Section 3.2: "we generate a
    /// single combined interval by computing the common interval").
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Interval width as a double (saturating).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Number of doubles in the interval (inclusive), saturating at
    /// `u64::MAX`. The paper's "highly constrained" intervals are the ones
    /// where this is small.
    pub fn count_doubles(&self) -> u64 {
        let lo = f64_order_key(self.lo);
        let hi = f64_order_key(self.hi);
        (hi - lo) as u64 + 1
    }
}

/// The rounding interval of `y`: every double in `[lo, hi]` rounds to `y`
/// in `T`, and no double outside does. Returns `None` for NaN or infinite
/// targets (those are handled by each function's special-case filter, as
/// in the paper).
///
/// # Example
///
/// ```
/// use rlibm_core::interval::rounding_interval;
/// let iv = rounding_interval(1.0f32).unwrap();
/// // The interval straddles 1.0 by half an f32 ulp on each side...
/// assert!(iv.lo < 1.0 && 1.0 < iv.hi);
/// // ...and every contained double rounds back to 1.0:
/// assert_eq!(iv.lo as f32, 1.0);
/// assert_eq!(iv.hi as f32, 1.0);
/// ```
pub fn rounding_interval<T: Representation>(y: T) -> Option<Interval> {
    if y.is_nan() {
        return None;
    }
    let yf = y.to_f64();
    if yf.is_infinite() {
        return None;
    }
    let target_bits = y.to_bits_u32();
    // Order-key brackets: anything below prev(y) rounds below y, anything
    // above next(y) rounds above. When y is the extreme finite value the
    // bracket extends to the f64 extreme.
    let lo_bracket = match y.next_down() {
        Some(p) => {
            let pf = p.to_f64();
            if pf.is_infinite() {
                f64_order_key(f64::MIN)
            } else {
                f64_order_key(pf)
            }
        }
        None => f64_order_key(f64::MIN),
    };
    let hi_bracket = match y.next_up() {
        Some(n) => {
            let nf = n.to_f64();
            if nf.is_infinite() {
                f64_order_key(f64::MAX)
            } else {
                f64_order_key(nf)
            }
        }
        None => f64_order_key(f64::MAX),
    };
    let rounds_to_y = |k: i64| -> bool {
        T::round_from_f64(f64_from_order_key(k)).to_bits_u32() == target_bits
    };
    let center = f64_order_key(yf);
    debug_assert!(rounds_to_y(center), "y must round to itself");

    // Smallest key that still rounds to y: the predicate "rounds to >= y"
    // is monotone, so search in (lo_bracket, center].
    let mut lo = lo_bracket;
    let mut hi = center;
    // Invariant: !rounds_to_y(lo) possibly false if prev's f64 rounds to y
    // (can't: prev rounds to itself). But handle the degenerate bracket.
    if rounds_to_y(lo) {
        hi = lo;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if rounds_to_y(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let lo_key = if rounds_to_y(lo) { lo } else { hi };

    // Largest key that rounds to y.
    let mut lo2 = center;
    let mut hi2 = hi_bracket;
    if rounds_to_y(hi2) {
        lo2 = hi2;
    }
    while lo2 + 1 < hi2 {
        let mid = lo2 + (hi2 - lo2) / 2;
        if rounds_to_y(mid) {
            lo2 = mid;
        } else {
            hi2 = mid;
        }
    }
    let hi_key = if rounds_to_y(hi2) { hi2 } else { lo2 };

    Some(Interval::new(
        f64_from_order_key(lo_key),
        f64_from_order_key(hi_key),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlibm_fp::bits::{midpoint_f32, next_down_f64, next_up_f32, next_up_f64};
    use rlibm_fp::{BFloat16, Half};
    use rlibm_posit::Posit32;

    /// The analytic check: endpoints round to y, one-past endpoints do not.
    fn check_endpoints<T: Representation>(y: T) {
        let iv = rounding_interval(y).unwrap();
        assert_eq!(T::round_from_f64(iv.lo).to_bits_u32(), y.to_bits_u32());
        assert_eq!(T::round_from_f64(iv.hi).to_bits_u32(), y.to_bits_u32());
        let below = next_down_f64(iv.lo);
        let above = next_up_f64(iv.hi);
        assert_ne!(T::round_from_f64(below).to_bits_u32(), y.to_bits_u32());
        assert_ne!(T::round_from_f64(above).to_bits_u32(), y.to_bits_u32());
    }

    #[test]
    fn f32_interval_endpoints_are_midpoints() {
        // For an even-mantissa f32, both midpoints round TO y (ties to
        // even), so the interval must include them exactly.
        let y = 1.0f32; // mantissa even
        let iv = rounding_interval(y).unwrap();
        let m_lo = midpoint_f32(0.99999994f32, y);
        let m_hi = midpoint_f32(y, next_up_f32(y));
        assert_eq!(iv.lo, m_lo);
        assert_eq!(iv.hi, m_hi);
        // For an odd-mantissa f32 the midpoints round away, so the
        // interval is one double narrower on each side.
        let y_odd = next_up_f32(1.0f32);
        let iv2 = rounding_interval(y_odd).unwrap();
        assert_eq!(iv2.lo, next_up_f64(m_hi));
    }

    #[test]
    fn interval_endpoints_for_many_types() {
        check_endpoints(1.0f32);
        check_endpoints(next_up_f32(1.0f32));
        check_endpoints(-3.5f32);
        check_endpoints(f32::MIN_POSITIVE);
        check_endpoints(f32::from_bits(1)); // smallest subnormal
        check_endpoints(f32::MAX);
        check_endpoints(0.0f32);
        check_endpoints(BFloat16::from_f64(1.0));
        check_endpoints(BFloat16::from_f64(-0.0078125));
        check_endpoints(Half::from_f64(1.0));
        check_endpoints(Half::from_f64(65504.0));
        check_endpoints(Posit32::from_f64(1.0));
        check_endpoints(Posit32::from_f64(1.5e-12));
        check_endpoints(Posit32::MAXPOS);
        check_endpoints(Posit32::MINPOS);
    }

    #[test]
    fn zero_intervals_are_sign_strict() {
        // Intervals are bit-strict: +0.0 and -0.0 are distinct targets
        // (each claims one side of the number line up to half the smallest
        // subnormal, the tie rounding to even = zero).
        let iv = rounding_interval(0.0f32).unwrap();
        assert_eq!(iv.lo.to_bits(), 0.0f64.to_bits());
        assert_eq!(iv.hi, 2f64.powi(-150));
        let ivn = rounding_interval(-0.0f32).unwrap();
        assert_eq!(ivn.lo, -2f64.powi(-150));
        assert_eq!(ivn.hi.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn posit_maxpos_interval_extends_to_f64_max() {
        // Saturation: every huge double rounds to maxpos.
        let iv = rounding_interval(Posit32::MAXPOS).unwrap();
        assert_eq!(iv.hi, f64::MAX);
    }

    #[test]
    fn nan_and_inf_have_no_interval() {
        assert!(rounding_interval(f32::NAN).is_none());
        assert!(rounding_interval(f32::INFINITY).is_none());
        assert!(rounding_interval(Posit32::NAR).is_none());
    }

    #[test]
    fn intersect_and_width() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.intersect(&b), Some(Interval::new(1.0, 2.0)));
        let c = Interval::new(5.0, 6.0);
        assert!(a.intersect(&c).is_none());
        assert_eq!(a.width(), 2.0);
    }

    #[test]
    fn count_doubles_is_exact_for_adjacent() {
        let x = 1.0f64;
        let iv = Interval::new(x, next_up_f64(next_up_f64(x)));
        assert_eq!(iv.count_doubles(), 3);
    }

    #[test]
    fn every_bfloat16_interval_is_consistent() {
        // Exhaustive over all finite bfloat16 values.
        for bits in 0..=u16::MAX {
            let y = BFloat16::from_bits(bits);
            if y.is_nan() || y.is_infinite() {
                continue;
            }
            let iv = rounding_interval(y).unwrap();
            assert!(iv.contains(y.to_f64()), "value must be inside its own interval");
            assert_eq!(
                BFloat16::round_from_f64(iv.lo).to_bits(),
                bits,
                "lo endpoint of {bits:#06x}"
            );
            assert_eq!(BFloat16::round_from_f64(iv.hi).to_bits(), bits);
        }
    }
}
