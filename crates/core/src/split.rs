//! Bit-pattern based domain splitting (Algorithm 3, `SplitDomain`).
//!
//! To make piecewise polynomials cheap at runtime, the sub-domain of a
//! reduced input must be computable from its bits: the paper finds the
//! longest common prefix of `R_min` and `R_max` in the double bit-string
//! and uses the next `n` bits as the table index — "two bitwise operations
//! (an and and a shift)" at runtime.

/// Maps reduced inputs to one of `2^n` sub-domains using `n` bits of the
/// double representation after the common prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitPatternSplitter {
    /// Bits shared by every reduced input, from the MSB.
    common_prefix_len: u32,
    /// Number of index bits (`n`); `2^n` sub-domains.
    index_bits: u32,
    /// Right-shift amount applied to the raw bits.
    shift: u32,
    /// Mask applied after the shift.
    mask: u64,
}

impl BitPatternSplitter {
    /// Builds a splitter for reduced inputs in `[r_min, r_max]` (both of
    /// the same sign, as guaranteed by the +/- split in `GenApproxFunc`)
    /// with `2^index_bits` sub-domains.
    ///
    /// # Panics
    ///
    /// Panics if the inputs straddle zero / differ in sign, or if the
    /// requested index bits exceed the available mantissa bits.
    pub fn new(r_min: f64, r_max: f64, index_bits: u32) -> BitPatternSplitter {
        assert!(r_min <= r_max, "empty domain");
        assert!(
            r_min.is_sign_negative() == r_max.is_sign_negative(),
            "split positive and negative reduced inputs first (Algorithm 3 lines 2-3)"
        );
        let a = r_min.to_bits();
        let b = r_max.to_bits();
        let common = if a == b { 64 - index_bits } else { (a ^ b).leading_zeros() };
        assert!(
            common + index_bits <= 64,
            "not enough bits below the common prefix"
        );
        let shift = 64 - common - index_bits;
        BitPatternSplitter {
            common_prefix_len: common,
            index_bits,
            shift,
            mask: if index_bits == 0 { 0 } else { (1u64 << index_bits) - 1 },
        }
    }

    /// Number of sub-domains (`2^n`).
    pub fn domains(&self) -> usize {
        1usize << self.index_bits
    }

    /// Number of index bits.
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Length of the common bit prefix this splitter assumes.
    pub fn common_prefix_len(&self) -> u32 {
        self.common_prefix_len
    }

    /// The sub-domain of a reduced input: exactly the paper's two bitwise
    /// operations (shift + and).
    #[inline]
    pub fn index(&self, r: f64) -> usize {
        ((r.to_bits() >> self.shift) & self.mask) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_structure() {
        // Section 2.2 / Figure 2(d): reduced inputs for sinpi lie in
        // [2^-52, 2^-9]... their double bit patterns share the first six
        // bits (sign + top exponent bits), and 5 bits after that pick one
        // of 32 sub-domains.
        let r_min = 2f64.powi(-52);
        let r_max = 2f64.powi(-9) * 1.999;
        let s = BitPatternSplitter::new(r_min, r_max, 5);
        assert_eq!(s.domains(), 32);
        assert_eq!(s.common_prefix_len(), 6);
        // The paper's concrete reduced input and its sub-domain: R =
        // 1.86264514923095703125e-09 = 0x3E20000000000000; the six common
        // bits are 001111, the next five are 10001 = 17.
        let r: f64 = 1.862_645_149_230_957e-9;
        assert_eq!(r.to_bits(), 0x3E20000000000000);
        assert_eq!(s.index(r), 0b10001);
    }

    #[test]
    fn indices_are_monotone_for_positive_inputs() {
        // For positive doubles, bit order == value order, so sub-domain
        // indices are non-decreasing in r.
        let s = BitPatternSplitter::new(0.5, 0.999, 4);
        let mut prev = 0;
        for i in 0..1000 {
            let r = 0.5 + 0.499 * (i as f64 / 1000.0);
            let idx = s.index(r);
            assert!(idx >= prev, "index must not decrease");
            assert!(idx < 16);
            prev = idx;
        }
    }

    #[test]
    fn endpoints_land_in_first_and_last_buckets_region() {
        let s = BitPatternSplitter::new(1.0, 1.9999999, 3);
        assert_eq!(s.index(1.0), 0);
        assert_eq!(s.index(1.9999999), 7);
    }

    #[test]
    fn zero_index_bits_means_single_domain() {
        let s = BitPatternSplitter::new(0.25, 0.3, 0);
        assert_eq!(s.domains(), 1);
        assert_eq!(s.index(0.26), 0);
        assert_eq!(s.index(0.29), 0);
    }

    #[test]
    fn degenerate_single_point_domain() {
        let s = BitPatternSplitter::new(0.75, 0.75, 2);
        assert_eq!(s.domains(), 4);
        let _ = s.index(0.75); // must not panic
    }

    #[test]
    fn negative_domain() {
        let s = BitPatternSplitter::new(-1.9999, -1.0, 3);
        // For negative doubles bit order is reversed w.r.t. value order;
        // grouping is still consistent (same bits -> same bucket).
        assert_eq!(s.index(-1.0), s.index(-1.0));
        assert!(s.index(-1.5) < 8);
    }

    #[test]
    #[should_panic(expected = "split positive and negative")]
    fn mixed_signs_panic() {
        let _ = BitPatternSplitter::new(-1.0, 1.0, 3);
    }
}
