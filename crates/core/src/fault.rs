//! Fault-injection sweep: adversarial certification of the two-tier
//! round-safe design (feature `fault`).
//!
//! The runtime library's `fault` feature plants a seeded corruption hook
//! after every tier-1 fast kernel (see `rlibm_math::fault` for the
//! soundness argument: in-band nudges stay under the certification band,
//! catastrophic replacements land outside the round-safe exponent
//! window). This module drives those hooks at scale: for each function it
//! generates inputs biased toward the kernel-reaching domain, evaluates
//! the *faulted* two-tier entry point, and compares bit-for-bit against
//! the dd-only reference (`*_dd`), which has no injection site. The
//! contract under test is the paper's central claim made adversarial:
//!
//! > No corruption of the fast-path value may ever escape as a
//! > mis-rounded result — it is either provably below the certification
//! > band (the accepted cast is still correct) or rejected by
//! > `f32_round_safe`/`posit32_round_safe` into the dd fallback.
//!
//! The sweep keeps injecting until a target count of *actual* injections
//! (not merely evaluations) is reached per function, across both f32 and
//! posit32, and reports per-site injection and dd-fallback counters.

use rlibm_fp::rng::{draw_biased_f32, XorShift64};
use rlibm_math::fault as hooks;
use rlibm_posit::Posit32;

/// The ten f32 functions with a tier-1 injection site.
pub const F32_FUNCS: [&str; 10] =
    ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh", "sinpi", "cospi"];

/// The eight posit32 functions with a tier-1 injection site.
pub const POSIT32_FUNCS: [&str; 8] =
    ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh"];

/// Outcome of sweeping one function.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Function name (paper-table spelling).
    pub name: &'static str,
    /// `"f32"` or `"posit32"`.
    pub repr: &'static str,
    /// Inputs evaluated.
    pub evaluated: u64,
    /// Faults actually injected (the hook changed the value).
    pub injected: u64,
    /// dd fallbacks taken while armed (corruptions the certification
    /// caught; the remainder stayed inside the band and were absorbed).
    pub dd_fallbacks: u64,
    /// Outputs that differed from the dd reference — MUST be zero.
    pub mismatches: u64,
}

impl FaultReport {
    /// True when the sweep upholds the round-safe contract.
    pub fn clean(&self) -> bool {
        self.mismatches == 0
    }
}

fn bits_match_f32(a: f32, b: f32) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

/// Sweeps one f32 function until `target_injections` faults landed.
/// Returns `None` for a name outside the paper's tables.
pub fn sweep_f32(name: &str, target_injections: u64, seed: u64) -> Option<FaultReport> {
    let static_name = F32_FUNCS.iter().find(|n| **n == name)?;
    let fast = rlibm_math::f32_fn_by_name(name)?;
    let dd = rlibm_math::f32_dd_fn_by_name(name)?;
    let site = rlibm_math::stats::f32_slot_by_name(name)?;
    let mut rng = XorShift64::new(seed);
    let injected0 = hooks::injected(site);
    let fallbacks0 = rlibm_math::stats::fallbacks(site);
    let mut evaluated = 0u64;
    let mut mismatches = 0u64;
    // The domain bias makes the injection rate per draw high, but cap the
    // loop so a misconfigured build (feature off -> zero injections)
    // terminates and reports the shortfall instead of spinning.
    let max_evals = target_injections.saturating_mul(40).max(1000);
    hooks::arm(seed);
    while hooks::injected(site) - injected0 < target_injections && evaluated < max_evals {
        let x = draw_biased_f32(&mut rng, name);
        let got = fast(x);
        hooks::disarm();
        let want = dd(x);
        hooks::arm(rng.next_u64());
        if !bits_match_f32(got, want) {
            mismatches += 1;
        }
        evaluated += 1;
    }
    hooks::disarm();
    Some(FaultReport {
        name: static_name,
        repr: "f32",
        evaluated,
        injected: hooks::injected(site) - injected0,
        dd_fallbacks: rlibm_math::stats::fallbacks(site) - fallbacks0,
        mismatches,
    })
}

/// Sweeps one posit32 function until `target_injections` faults landed.
pub fn sweep_posit32(name: &str, target_injections: u64, seed: u64) -> Option<FaultReport> {
    let static_name = POSIT32_FUNCS.iter().find(|n| **n == name)?;
    let fast = rlibm_math::posit32_fn_by_name(name)?;
    let dd = rlibm_math::posit32_dd_fn_by_name(name)?;
    let site = rlibm_math::stats::posit32_slot_by_name(name)?;
    let mut rng = XorShift64::new(seed ^ 0xBEEF);
    let injected0 = hooks::injected(site);
    let fallbacks0 = rlibm_math::stats::fallbacks(site);
    let mut evaluated = 0u64;
    let mut mismatches = 0u64;
    let max_evals = target_injections.saturating_mul(40).max(1000);
    hooks::arm(seed);
    while hooks::injected(site) - injected0 < target_injections && evaluated < max_evals {
        // Random posit bit patterns concentrate near 1 by construction,
        // squarely inside every kernel's domain; NaR and the saturating
        // regimes appear at their natural rate.
        let x = Posit32::from_bits(rng.next_u32());
        let got = fast(x);
        hooks::disarm();
        let want = dd(x);
        hooks::arm(rng.next_u64());
        if got != want {
            mismatches += 1;
        }
        evaluated += 1;
    }
    hooks::disarm();
    Some(FaultReport {
        name: static_name,
        repr: "posit32",
        evaluated,
        injected: hooks::injected(site) - injected0,
        dd_fallbacks: rlibm_math::stats::fallbacks(site) - fallbacks0,
        mismatches,
    })
}

/// Sweeps every f32 and posit32 function. Reports come back in table
/// order, f32 first.
pub fn sweep_all(target_injections_per_func: u64, seed: u64) -> Vec<FaultReport> {
    let mut reports = Vec::with_capacity(F32_FUNCS.len() + POSIT32_FUNCS.len());
    for (i, name) in F32_FUNCS.iter().enumerate() {
        if let Some(r) = sweep_f32(name, target_injections_per_func, seed ^ (i as u64 + 1)) {
            reports.push(r);
        }
    }
    for (i, name) in POSIT32_FUNCS.iter().enumerate() {
        if let Some(r) = sweep_posit32(name, target_injections_per_func, seed ^ (0x100 + i as u64))
        {
            reports.push(r);
        }
    }
    reports
}

/// Snapshot of the kernel-level injection counters, per site, with the
/// paper-table names attached: `(name, repr, injections)` in table
/// order, f32 first. Harnesses that arm the hooks indirectly (the serve
/// chaos harness arms them per worker thread) use this to attribute
/// their kernel-fault totals to functions; counters are cumulative per
/// process, so callers diff two snapshots around a run.
pub fn site_injections() -> Vec<(&'static str, &'static str, u64)> {
    let mut out = Vec::with_capacity(F32_FUNCS.len() + POSIT32_FUNCS.len());
    for name in F32_FUNCS {
        if let Some(site) = rlibm_math::stats::f32_slot_by_name(name) {
            out.push((name, "f32", hooks::injected(site)));
        }
    }
    for name in POSIT32_FUNCS {
        if let Some(site) = rlibm_math::stats::posit32_slot_by_name(name) {
            out.push((name, "posit32", hooks::injected(site)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_snapshot_diffs_attribute_injections() {
        let before: u64 = site_injections().iter().map(|(_, _, n)| n).sum();
        let r = sweep_f32("exp", 500, 0xABCD).expect("known name");
        assert!(r.injected >= 500);
        let after = site_injections();
        assert_eq!(after.len(), F32_FUNCS.len() + POSIT32_FUNCS.len());
        let total: u64 = after.iter().map(|(_, _, n)| n).sum();
        assert!(total - before >= r.injected, "snapshot diff sees the sweep's injections");
        let exp = after.iter().find(|(n, r, _)| *n == "exp" && *r == "f32").expect("exp row");
        assert!(exp.2 >= 500);
    }

    #[test]
    fn smoke_sweep_is_clean_and_injects() {
        // Small target: the full 100k-per-function run is the
        // `fault_sweep` bin exercised by ci.sh.
        for name in F32_FUNCS {
            let r = sweep_f32(name, 2_000, 0xF00D).expect("known name");
            assert!(r.clean(), "{name}/f32: {} mismatches", r.mismatches);
            assert!(r.injected >= 2_000, "{name}/f32: only {} injections", r.injected);
        }
        for name in POSIT32_FUNCS {
            let r = sweep_posit32(name, 2_000, 0xF00D).expect("known name");
            assert!(r.clean(), "{name}/posit32: {} mismatches", r.mismatches);
            assert!(r.injected >= 2_000, "{name}/posit32: only {} injections", r.injected);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(sweep_f32("tanh", 1, 1).is_none());
        assert!(sweep_posit32("sinpi", 1, 1).is_none());
    }
}
