//! Counterexample-guided polynomial generation (Algorithm 4,
//! `GenPolynomial`).
//!
//! The generator never hands the LP solver more than a *sample* of the
//! reduced constraints: it solves, validates the rounded-to-double
//! coefficients against the *entire* constraint set in `H`, adds every
//! violated constraint to the sample (the counterexamples), and repeats.
//! Two refinement mechanisms from the paper are implemented:
//!
//! * **Search-and-refine for real coefficients** (Section 3.4): the LP's
//!   exact rational coefficients are rounded to `f64`; if the rounded
//!   polynomial violates a *sampled* constraint, that constraint's
//!   interval is shrunk by one double on the violated side and the LP is
//!   re-solved, until rounding is harmless.
//! * **Sample-size threshold**: if the sample grows past the configured
//!   threshold the sub-domain is declared infeasible, triggering a domain
//!   split upstream.
//!
//! Two generation-side performance mechanisms ride on the loop structure:
//! LP re-solves within one attempt are **warm-started** from the previous
//! optimal basis (the CEGIS moves — appending counterexample columns and
//! shrinking sampled intervals — both leave the old basis feasible, so
//! the solver can skip phase 1; any stale basis falls back to a cold
//! solve inside `rlibm_lp`), and counterexamples are **deduplicated** by
//! content before joining the sample (a violator bit-identical to an
//! already-sampled constraint adds an LP column without adding
//! information).

use crate::par;
use crate::poly::Polynomial;
use crate::reduced::ReducedConstraint;
use rlibm_fp::bits::{next_down_f64, next_up_f64};
use rlibm_lp::fit::{max_margin_fit_warm, FitConstraint, FitWarmStart};
use rlibm_lp::LpError;
use rlibm_obs::{Counter, Histogram, SpanTimer};
use std::collections::HashSet;

// Generation telemetry (no-ops unless built with the `telemetry`
// feature). The counters aggregate the same quantities `PolyGenStats`
// reports per call — the registry view adds up across the many
// sub-domain runs of a full pipeline, failures included.
static POLYGEN_RUNS: Counter = Counter::new("polygen.runs");
static POLYGEN_FAILURES: Counter = Counter::new("polygen.failures");
static POLYGEN_LP_CALLS: Counter = Counter::new("polygen.lp_calls");
static POLYGEN_LP_RESTARTS: Counter = Counter::new("polygen.lp_restarts");
static POLYGEN_DUP_COUNTEREXAMPLES: Counter = Counter::new("polygen.dup_counterexamples");
static POLYGEN_CEGIS_ROUNDS: Histogram = Histogram::new("polygen.cegis_rounds");
static POLYGEN_FINAL_SAMPLE: Histogram = Histogram::new("polygen.final_sample");
static POLYGEN_SPAN: SpanTimer = SpanTimer::new("polygen.gen_polynomial");

// Progressive-tier telemetry: how many progressive generations ran, how
// many had to ship the full-degree polynomial as the "prefix" (no
// shorter tier met the hit-rate target), and the distributions of the
// chosen prefix length and its certified hit rate (in basis points, so
// the integer histogram keeps 4 digits of resolution).
static PROGRESSIVE_RUNS: Counter = Counter::new("polygen.progressive.runs");
static PROGRESSIVE_DEGENERATE: Counter = Counter::new("polygen.progressive.degenerate");
static PROGRESSIVE_PREFIX_TERMS: Histogram = Histogram::new("polygen.progressive.prefix_terms");
static PROGRESSIVE_HIT_RATE_BP: Histogram = Histogram::new("polygen.progressive.hit_rate_bp");

/// Below this many constraints the full-set counterexample check runs
/// serially — thread spawn/merge overhead would exceed the sweep itself.
const PAR_CHECK_MIN: usize = 4096;

/// How many times a simplex `Cycling` verdict triggers a restart with a
/// fresh (shifted, denser) constraint sample before giving up. Cycling is
/// a property of the particular basis sequence, so a different sample
/// almost always clears it.
const MAX_LP_RESTARTS: usize = 3;

/// Tunables for Algorithm 4.
#[derive(Debug, Clone)]
pub struct PolyGenConfig {
    /// Term exponents of the polynomial to generate (e.g. `[0,1,2,3]`;
    /// `[1,3,5]` for the paper's odd quintic).
    pub terms: Vec<u32>,
    /// Initial uniform sample size.
    pub initial_sample: usize,
    /// Give up when the sample exceeds this (the paper used 50 000; tests
    /// here use far smaller constraint sets so the default is 4 000).
    pub max_sample: usize,
    /// Intervals at most this wide are "highly constrained" and are always
    /// added to the initial sample (the paper's `epsilon`).
    pub highly_constrained_width: f64,
    /// Cap on LP re-solves in the coefficient search-and-refine loop.
    pub max_refinements: usize,
    /// Carry the optimal LP basis across re-solves within one attempt
    /// (phase-1 skipping). Solver-level fallbacks keep this safe; the
    /// switch exists for differential testing against the cold path.
    pub warm_start: bool,
}

impl Default for PolyGenConfig {
    fn default() -> Self {
        PolyGenConfig {
            terms: vec![0, 1, 2, 3],
            initial_sample: 48,
            max_sample: 4_000,
            highly_constrained_width: 0.0,
            max_refinements: 64,
            warm_start: true,
        }
    }
}

/// Why generation failed, mirroring Algorithm 4's `(false, 0)` exits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyGenError {
    /// The LP proved no polynomial with these terms satisfies the sampled
    /// constraints (so none satisfies the full set either).
    Infeasible,
    /// The counterexample sample outgrew the threshold.
    SampleOverflow,
    /// Rounding the rational coefficients to `f64` could not be repaired
    /// within the refinement budget.
    RefinementExhausted,
    /// The LP solver itself failed — cycling that survived every
    /// fresh-sample restart, or malformed constraint dimensions.
    Solver(LpError),
}

impl core::fmt::Display for PolyGenError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PolyGenError::Infeasible => write!(f, "no polynomial with these terms is feasible"),
            PolyGenError::SampleOverflow => write!(f, "counterexample sample outgrew the limit"),
            PolyGenError::RefinementExhausted => {
                write!(f, "coefficient rounding could not be repaired within budget")
            }
            PolyGenError::Solver(e) => write!(f, "LP solver failed: {e}"),
        }
    }
}

impl std::error::Error for PolyGenError {}

/// Statistics of one generation run (feeds the Table 3 harness).
#[derive(Debug, Clone, Default)]
pub struct PolyGenStats {
    /// LP solver invocations.
    pub lp_calls: usize,
    /// Counterexample rounds (full validations that found violations).
    pub cegis_rounds: usize,
    /// Final sample size.
    pub final_sample: usize,
    /// Fresh-sample restarts forced by simplex cycling.
    pub lp_restarts: usize,
    /// Counterexamples dropped because a bit-identical `(r, lo, hi)`
    /// constraint was already in the sample (no information gain).
    pub dup_counterexamples: usize,
}

/// Runs Algorithm 4 on one sub-domain's constraints (sorted by `r`).
///
/// On success the returned polynomial, evaluated in `f64` with Horner's
/// method, produces a value inside the reduced interval for *every*
/// constraint — this is validated exhaustively before returning.
pub fn gen_polynomial(
    constraints: &[ReducedConstraint],
    cfg: &PolyGenConfig,
) -> Result<(Polynomial, PolyGenStats), PolyGenError> {
    let _span = POLYGEN_SPAN.start();
    POLYGEN_RUNS.add(1);
    let (result, stats) = gen_polynomial_impl(constraints, cfg);
    // Registry gets the per-run stats whether the run succeeded or not;
    // the final-sample histogram only makes sense for completed runs.
    POLYGEN_LP_CALLS.add(stats.lp_calls as u64);
    POLYGEN_LP_RESTARTS.add(stats.lp_restarts as u64);
    POLYGEN_DUP_COUNTEREXAMPLES.add(stats.dup_counterexamples as u64);
    POLYGEN_CEGIS_ROUNDS.record(stats.cegis_rounds as u64);
    match result {
        Ok(poly) => {
            POLYGEN_FINAL_SAMPLE.record(stats.final_sample as u64);
            Ok((poly, stats))
        }
        Err(e) => {
            POLYGEN_FAILURES.add(1);
            Err(e)
        }
    }
}

/// Tunables for progressive (tiered) generation on top of
/// [`PolyGenConfig`].
#[derive(Debug, Clone)]
pub struct ProgressiveConfig {
    /// Configuration for the full-degree polynomial (Algorithm 4).
    pub base: PolyGenConfig,
    /// Never report a prefix shorter than this many terms (a one-term
    /// "polynomial" is rarely worth a tier of its own).
    pub min_prefix_terms: usize,
    /// The prefix tier must land inside the rounding interval for at
    /// least this fraction of the constraints (e.g. `0.99`). The
    /// shortest prefix meeting the target is chosen.
    pub target_hit_rate: f64,
}

impl Default for ProgressiveConfig {
    fn default() -> Self {
        ProgressiveConfig {
            base: PolyGenConfig::default(),
            min_prefix_terms: 2,
            target_hit_rate: 0.99,
        }
    }
}

/// A full-degree certified polynomial plus the length of its shortest
/// leading-coefficient prefix that alone satisfies the configured
/// fraction of the constraints — the generation-side artifact behind
/// the runtime's progressive tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressivePolynomial {
    /// The certified full-degree polynomial (satisfies **every**
    /// constraint — same guarantee as [`gen_polynomial`]).
    pub full: Polynomial,
    /// Number of leading terms in the prefix tier, counting storage
    /// slots (`min_prefix_terms ..= full.coeffs().len()`).
    pub prefix_len: usize,
    /// Fraction of the constraints the prefix alone satisfies (the
    /// certified lower bound on the runtime prefix-tier hit rate over a
    /// constraint-distributed workload).
    pub prefix_hit_rate: f64,
}

impl ProgressivePolynomial {
    /// The prefix tier as a standalone polynomial (the first
    /// `prefix_len` terms of `full`, coefficient bits unchanged).
    pub fn prefix(&self) -> Polynomial {
        Polynomial::new(
            self.full.terms()[..self.prefix_len].to_vec(),
            self.full.coeffs()[..self.prefix_len].to_vec(),
        )
    }

    /// True when no shorter prefix met the hit-rate target and the
    /// "prefix" tier is the full polynomial (the runtime should then
    /// collapse to two tiers for this function).
    pub fn is_degenerate(&self) -> bool {
        self.prefix_len == self.full.coeffs().len()
    }
}

/// Runs Algorithm 4, then derives the shortest progressive prefix: the
/// full-degree polynomial is generated exactly as [`gen_polynomial`]
/// does (identical bits, identical stats), and each candidate prefix —
/// leading coefficients only, never refit — is swept against the whole
/// constraint set to measure how many rounding intervals it already
/// lands in. The shortest prefix at or above `target_hit_rate` wins;
/// if none qualifies the full polynomial is returned as a degenerate
/// prefix with hit rate 1.
///
/// Truncation (not refitting) is what makes the runtime escalation
/// cheap: tier 0 evaluates a Horner prefix of the same coefficient
/// array, so escalating to the full degree reuses the table lookup and
/// reduction work unchanged.
pub fn gen_progressive(
    constraints: &[ReducedConstraint],
    cfg: &ProgressiveConfig,
) -> Result<(ProgressivePolynomial, PolyGenStats), PolyGenError> {
    let (full, stats) = gen_polynomial(constraints, &cfg.base)?;
    PROGRESSIVE_RUNS.add(1);
    // Storage slots, not `num_terms()` (which skips exactly-zero
    // coefficients and would collapse the floor on sparse fits).
    let n_terms = full.coeffs().len();
    let min_len = cfg.min_prefix_terms.clamp(1, n_terms);
    let target = cfg.target_hit_rate.clamp(0.0, 1.0);
    let mut chosen = (n_terms, 1.0);
    for len in min_len..n_terms {
        let prefix = Polynomial::new(
            full.terms()[..len].to_vec(),
            full.coeffs()[..len].to_vec(),
        );
        let hits = if constraints.len() >= PAR_CHECK_MIN {
            par::par_filter_indices(constraints.len(), par::num_threads(), |i| {
                let c = &constraints[i];
                c.interval.contains(prefix.eval(c.r))
            })
            .len()
        } else {
            constraints
                .iter()
                .filter(|c| c.interval.contains(prefix.eval(c.r)))
                .count()
        };
        let rate =
            if constraints.is_empty() { 1.0 } else { hits as f64 / constraints.len() as f64 };
        if rate >= target {
            chosen = (len, rate);
            break;
        }
    }
    let (prefix_len, prefix_hit_rate) = chosen;
    if prefix_len == n_terms {
        PROGRESSIVE_DEGENERATE.add(1);
    }
    PROGRESSIVE_PREFIX_TERMS.record(prefix_len as u64);
    PROGRESSIVE_HIT_RATE_BP.record((prefix_hit_rate * 10_000.0) as u64);
    Ok((ProgressivePolynomial { full, prefix_len, prefix_hit_rate }, stats))
}

fn gen_polynomial_impl(
    constraints: &[ReducedConstraint],
    cfg: &PolyGenConfig,
) -> (Result<Polynomial, PolyGenError>, PolyGenStats) {
    let mut stats = PolyGenStats::default();
    if constraints.is_empty() {
        let poly = Polynomial::new(cfg.terms.clone(), vec![0.0; cfg.terms.len()]);
        return (Ok(poly), stats);
    }
    // Restart-with-fresh-samples backoff: a simplex `Cycling` verdict is a
    // property of one basis sequence, so re-seed the sample (shifted and
    // denser) and try again a bounded number of times before surfacing it.
    let mut attempt = 0;
    loop {
        match gen_attempt(constraints, cfg, attempt, &mut stats) {
            Ok(poly) => return (Ok(poly), stats),
            Err(PolyGenError::Solver(LpError::Cycling { .. })) if attempt < MAX_LP_RESTARTS => {
                attempt += 1;
                stats.lp_restarts += 1;
            }
            Err(e) => return (Err(e), stats),
        }
    }
}

/// One full Algorithm-4 run from a fresh initial sample. `attempt > 0`
/// shifts the sample phase and doubles its density so a cycling-prone
/// basis is not rebuilt verbatim.
fn gen_attempt(
    constraints: &[ReducedConstraint],
    cfg: &PolyGenConfig,
    attempt: usize,
    stats: &mut PolyGenStats,
) -> Result<Polynomial, PolyGenError> {
    // Initial sample: uniform over the (sorted) constraints, proportional
    // to their distribution (Section 3.4), plus all highly constrained
    // intervals.
    let mut in_sample = vec![false; constraints.len()];
    let want = cfg.initial_sample.max(1).saturating_mul(1 << attempt.min(8));
    let step = (constraints.len() / want).max(1);
    for i in (attempt % step..constraints.len()).step_by(step) {
        in_sample[i] = true;
    }
    if let Some(last) = in_sample.last_mut() {
        *last = true;
    }
    if cfg.highly_constrained_width > 0.0 {
        for (i, c) in constraints.iter().enumerate() {
            if c.interval.width() <= cfg.highly_constrained_width {
                in_sample[i] = true;
            }
        }
    }

    // Mutable copies of the sampled intervals (search-and-refine shrinks
    // them; the originals stay as the validation target).
    let mut work: Vec<ReducedConstraint> = constraints.to_vec();

    // Content identity of every sampled constraint (original, unshrunk
    // values): a counterexample whose exact (r, lo, hi) bits are already
    // sampled would duplicate an LP column without adding information.
    let content_key = |c: &ReducedConstraint| {
        (c.r.to_bits(), c.interval.lo.to_bits(), c.interval.hi.to_bits())
    };
    let mut sample_keys: HashSet<(u64, u64, u64)> = constraints
        .iter()
        .zip(&in_sample)
        .filter(|(_, s)| **s)
        .map(|(c, _)| content_key(c))
        .collect();

    // The previous round's optimal LP basis, keyed by constraint index
    // (stable within an attempt: the sample only grows). Carrying it
    // forward lets the solver re-enter at the old optimum; any staleness
    // is handled by the solver's own cold fallback.
    let mut warm: Option<FitWarmStart> = None;

    loop {
        let sample_count = in_sample.iter().filter(|s| **s).count();
        if sample_count > cfg.max_sample {
            return Err(PolyGenError::SampleOverflow);
        }
        // Inner loop: solve + coefficient-rounding refinement.
        let poly = {
            let mut refinements = 0;
            loop {
                let (fit_cons, ids): (Vec<FitConstraint>, Vec<u64>) = work
                    .iter()
                    .enumerate()
                    .zip(&in_sample)
                    .filter(|(_, s)| **s)
                    .map(|((i, c), _)| {
                        (
                            FitConstraint::from_point(
                                c.r,
                                c.interval.lo,
                                c.interval.hi,
                                &cfg.terms,
                            ),
                            i as u64,
                        )
                    })
                    .unzip();
                stats.lp_calls += 1;
                let prev = if cfg.warm_start { warm.take() } else { None };
                let fit = match max_margin_fit_warm(
                    &fit_cons,
                    cfg.terms.len(),
                    &ids,
                    prev.as_ref(),
                ) {
                    Ok(Some((fit, ws))) => {
                        warm = Some(ws);
                        fit
                    }
                    Ok(None) => return Err(PolyGenError::Infeasible),
                    Err(e) => return Err(PolyGenError::Solver(e)),
                };
                let poly = Polynomial::new(cfg.terms.clone(), fit.coeffs_f64());
                // Check the *sampled* constraints in H; shrink the first
                // violated one and re-solve (search-and-refine).
                let mut violated = None;
                for (i, c) in work.iter().enumerate() {
                    if !in_sample[i] {
                        continue;
                    }
                    let v = poly.eval(c.r);
                    if v < c.interval.lo {
                        violated = Some((i, false));
                        break;
                    }
                    if v > c.interval.hi {
                        violated = Some((i, true));
                        break;
                    }
                }
                match violated {
                    None => break poly,
                    Some((i, high_side)) => {
                        refinements += 1;
                        if refinements > cfg.max_refinements {
                            return Err(PolyGenError::RefinementExhausted);
                        }
                        let iv = &mut work[i].interval;
                        if high_side {
                            let new_hi = next_down_f64(iv.hi);
                            if new_hi < iv.lo {
                                return Err(PolyGenError::Infeasible);
                            }
                            iv.hi = new_hi;
                        } else {
                            let new_lo = next_up_f64(iv.lo);
                            if new_lo > iv.hi {
                                return Err(PolyGenError::Infeasible);
                            }
                            iv.lo = new_lo;
                        }
                    }
                }
            }
        };
        // Full validation against the ORIGINAL constraints; collect
        // counterexamples (Algorithm 4's Check). This is the loop that
        // touches every constraint on every CEGIS round, so large
        // constraint sets are swept on all cores; `par_filter_indices`
        // returns the violations sorted ascending, which makes the sample
        // evolution (and therefore the whole run) thread-count-invariant.
        let violations = if constraints.len() >= PAR_CHECK_MIN {
            par::par_filter_indices(constraints.len(), par::num_threads(), |i| {
                let c = &constraints[i];
                !in_sample[i] && !c.interval.contains(poly.eval(c.r))
            })
        } else {
            (0..constraints.len())
                .filter(|&i| {
                    let c = &constraints[i];
                    !in_sample[i] && !c.interval.contains(poly.eval(c.r))
                })
                .collect()
        };
        // Append, skipping content duplicates. A skipped violator is
        // still safe: its bit-identical twin joins (or is already in) the
        // sample, and a polynomial satisfying the twin's interval — even
        // after shrinking, which only tightens it — satisfies the
        // duplicate's identical original interval too. For the same
        // reason a round with violations always admits at least one new
        // sample point, so progress is preserved.
        let mut new_counterexamples = 0usize;
        for i in violations {
            if sample_keys.insert(content_key(&constraints[i])) {
                in_sample[i] = true;
                new_counterexamples += 1;
            } else {
                stats.dup_counterexamples += 1;
            }
        }
        if new_counterexamples == 0 {
            // Could still have violations on sampled-and-shrunk points?
            // No: sampled points were validated against the *shrunk*
            // intervals, which are subsets of the originals.
            debug_assert!(constraints
                .iter()
                .all(|c| c.interval.contains(poly.eval(c.r))));
            stats.final_sample = in_sample.iter().filter(|s| **s).count();
            return Ok(poly);
        }
        stats.cegis_rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn constraints_from_fn(
        f: impl Fn(f64) -> f64,
        xs: impl Iterator<Item = f64>,
        half_width: f64,
    ) -> Vec<ReducedConstraint> {
        xs.map(|x| {
            let y = f(x);
            ReducedConstraint {
                r: x,
                interval: Interval::new(y - half_width, y + half_width),
            }
        })
        .collect()
    }

    #[test]
    fn fits_exp_on_small_domain() {
        // e^r on [0, ln2/128] with generous windows: a cubic suffices.
        let n = 2000;
        let cons = constraints_from_fn(
            |x| x.exp(),
            (0..n).map(|i| i as f64 * 0.0054 / n as f64),
            1e-12,
        );
        let cfg = PolyGenConfig { terms: vec![0, 1, 2, 3], ..Default::default() };
        let (poly, stats) = gen_polynomial(&cons, &cfg).expect("feasible");
        assert!(stats.lp_calls >= 1);
        for c in &cons {
            assert!(c.interval.contains(poly.eval(c.r)));
        }
        // The fitted coefficients resemble the Taylor series of e^r.
        assert!((poly.coeffs()[0] - 1.0).abs() < 1e-9);
        assert!((poly.coeffs()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn counterexamples_are_used() {
        // A tiny initial sample forces CEGIS rounds on a wiggly function.
        let n = 3000;
        let cons = constraints_from_fn(
            |x| (core::f64::consts::PI * x).sin(),
            (1..n).map(|i| i as f64 * 0.002 / n as f64),
            5e-14,
        );
        let cfg = PolyGenConfig {
            terms: vec![1, 3],
            initial_sample: 3,
            ..Default::default()
        };
        let (poly, _stats) = gen_polynomial(&cons, &cfg).expect("feasible");
        for c in &cons {
            assert!(c.interval.contains(poly.eval(c.r)), "violated at {}", c.r);
        }
    }

    #[test]
    fn progressive_prefers_short_prefix_on_wide_intervals() {
        // With windows ~1e-6, the quadratic prefix of the fitted
        // quartic already lands in every interval on this tiny domain:
        // the cubic and quartic terms contribute < r^3 < 2e-7.
        let n = 2000;
        let cons = constraints_from_fn(
            |x| x.exp(),
            (0..n).map(|i| i as f64 * 0.0054 / n as f64),
            1e-6,
        );
        let cfg = ProgressiveConfig {
            base: PolyGenConfig { terms: vec![0, 1, 2, 3, 4], ..Default::default() },
            min_prefix_terms: 2,
            target_hit_rate: 1.0,
        };
        let (prog, _stats) = gen_progressive(&cons, &cfg).expect("feasible");
        assert!(prog.prefix_len < prog.full.coeffs().len(), "expected a real prefix");
        assert!(!prog.is_degenerate());
        assert_eq!(prog.prefix_hit_rate, 1.0);
        // The prefix polynomial is literally the leading coefficients.
        let prefix = prog.prefix();
        assert_eq!(prefix.num_terms(), prog.prefix_len);
        assert_eq!(prefix.coeffs(), &prog.full.coeffs()[..prog.prefix_len]);
        // And the full polynomial still satisfies every constraint.
        for c in &cons {
            assert!(c.interval.contains(prog.full.eval(c.r)));
        }
    }

    #[test]
    fn progressive_degenerates_on_tight_intervals() {
        // With 1e-12 windows every term of the fitted polynomial is
        // load-bearing, so no strict prefix can meet a 99% target and
        // the result collapses to the full polynomial.
        let n = 2000;
        let cons = constraints_from_fn(
            |x| x.exp(),
            (0..n).map(|i| i as f64 * 0.0054 / n as f64),
            1e-12,
        );
        let cfg = ProgressiveConfig {
            base: PolyGenConfig { terms: vec![0, 1, 2, 3], ..Default::default() },
            min_prefix_terms: 2,
            target_hit_rate: 0.99,
        };
        let (prog, _stats) = gen_progressive(&cons, &cfg).expect("feasible");
        assert!(prog.is_degenerate());
        assert_eq!(prog.prefix_len, prog.full.coeffs().len());
        assert_eq!(prog.prefix_hit_rate, 1.0);
    }

    #[test]
    fn progressive_full_matches_gen_polynomial_bits() {
        // The full-degree polynomial must be bit-identical to a plain
        // gen_polynomial run: progressive tiering is a pure overlay.
        let n = 1500;
        let cons = constraints_from_fn(
            |x| (1.0 + x).ln(),
            (0..n).map(|i| i as f64 * 0.003 / n as f64),
            1e-10,
        );
        let base = PolyGenConfig { terms: vec![1, 2, 3, 4], ..Default::default() };
        let (plain, _) = gen_polynomial(&cons, &base).expect("feasible");
        let cfg = ProgressiveConfig {
            base,
            min_prefix_terms: 2,
            target_hit_rate: 0.9,
        };
        let (prog, _) = gen_progressive(&cons, &cfg).expect("feasible");
        let plain_bits: Vec<u64> = plain.coeffs().iter().map(|c| c.to_bits()).collect();
        let prog_bits: Vec<u64> = prog.full.coeffs().iter().map(|c| c.to_bits()).collect();
        assert_eq!(plain_bits, prog_bits);
        // min_prefix_terms is a floor even when one term would do.
        assert!(prog.prefix_len >= 2);
    }

    #[test]
    fn progressive_respects_min_prefix_floor() {
        // Constant function: the 1-term prefix would hit 100%, but the
        // configured floor of 3 terms must win.
        let n = 800;
        let cons = constraints_from_fn(
            |_| 1.0,
            (0..n).map(|i| i as f64 * 0.001 / n as f64),
            1e-3,
        );
        let cfg = ProgressiveConfig {
            base: PolyGenConfig { terms: vec![0, 1, 2, 3], ..Default::default() },
            min_prefix_terms: 3,
            target_hit_rate: 0.5,
        };
        let (prog, _stats) = gen_progressive(&cons, &cfg).expect("feasible");
        assert!(prog.prefix_len >= 3);
    }

    #[test]
    fn infeasible_degree_is_detected() {
        // A line cannot track a parabola to 1e-9 over [0,1].
        let cons = constraints_from_fn(|x| x * x, (0..200).map(|i| i as f64 / 200.0), 1e-9);
        let cfg = PolyGenConfig { terms: vec![0, 1], ..Default::default() };
        match gen_polynomial(&cons, &cfg) {
            Err(PolyGenError::Infeasible) => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn singleton_sample_handles_tight_interval() {
        // One very tight constraint plus loose ones: the tight one must be
        // marked highly constrained and sampled from the start.
        let mut cons = constraints_from_fn(|x| 1.0 + x, (0..100).map(|i| i as f64 / 100.0), 1e-3);
        cons[50].interval = Interval::new(1.5, 1.5 + 1e-15);
        let cfg = PolyGenConfig {
            terms: vec![0, 1],
            initial_sample: 4,
            highly_constrained_width: 1e-12,
            ..Default::default()
        };
        let (poly, _) = gen_polynomial(&cons, &cfg).expect("feasible");
        assert!(cons[50].interval.contains(poly.eval(cons[50].r)));
    }

    #[test]
    fn empty_constraints_give_zero_poly() {
        let cfg = PolyGenConfig::default();
        let (poly, _) = gen_polynomial(&[], &cfg).expect("trivially feasible");
        assert_eq!(poly.eval(0.5), 0.0);
    }

    #[test]
    fn parallel_counterexample_path_matches_small_run() {
        // Above PAR_CHECK_MIN the full-set check runs on the parallel
        // engine; the generated polynomial must still satisfy every
        // constraint and the run must stay deterministic.
        let n = PAR_CHECK_MIN + 2000;
        let cons = constraints_from_fn(
            |x| x.exp(),
            (0..n).map(|i| i as f64 * 0.0054 / n as f64),
            1e-12,
        );
        let cfg = PolyGenConfig {
            terms: vec![0, 1, 2, 3],
            initial_sample: 3,
            ..Default::default()
        };
        let (poly_a, stats_a) = gen_polynomial(&cons, &cfg).expect("feasible");
        let (poly_b, stats_b) = gen_polynomial(&cons, &cfg).expect("feasible");
        assert_eq!(poly_a.coeffs(), poly_b.coeffs(), "generation must be deterministic");
        assert_eq!(stats_a.lp_calls, stats_b.lp_calls);
        for c in &cons {
            assert!(c.interval.contains(poly_a.eval(c.r)));
        }
    }

    #[test]
    fn warm_and_cold_cegis_generate_identical_polynomials() {
        // The warm-started LP chain must not change *what* is generated,
        // only how fast: same polynomial bits, same CEGIS trajectory.
        // The wiggly low-sample workload forces several counterexample
        // rounds plus refinement re-solves, so the warm path is genuinely
        // exercised (first call cold, every later call warm).
        let n = 3000;
        let cons = constraints_from_fn(
            |x| (core::f64::consts::PI * x).sin(),
            (1..n).map(|i| i as f64 * 0.002 / n as f64),
            5e-14,
        );
        let warm_cfg = PolyGenConfig {
            terms: vec![1, 3],
            initial_sample: 3,
            warm_start: true,
            ..Default::default()
        };
        let cold_cfg = PolyGenConfig { warm_start: false, ..warm_cfg.clone() };
        let (poly_w, stats_w) = gen_polynomial(&cons, &warm_cfg).expect("warm feasible");
        let (poly_c, stats_c) = gen_polynomial(&cons, &cold_cfg).expect("cold feasible");
        assert_eq!(poly_w.coeffs(), poly_c.coeffs(), "coefficient bits must match");
        assert_eq!(stats_w.lp_calls, stats_c.lp_calls);
        assert_eq!(stats_w.cegis_rounds, stats_c.cegis_rounds);
        assert_eq!(stats_w.final_sample, stats_c.final_sample);
    }

    #[test]
    fn duplicate_counterexamples_are_dropped() {
        // Wide windows around y = x, plus a bit-identical *pair* of tight
        // off-center constraints hidden between initial sample points.
        // The first fit (y = x, the max-margin center) violates both
        // twins; the CEGIS round must admit exactly one and count the
        // other as a duplicate instead of growing the LP.
        let mut cons = constraints_from_fn(|x| x, (0..100).map(|i| i as f64 / 100.0), 0.1);
        let twin = ReducedConstraint {
            r: 0.505,
            interval: Interval::new(0.555 - 1e-6, 0.555 + 1e-6),
        };
        cons.splice(51..51, [twin, twin]);
        let cfg = PolyGenConfig {
            terms: vec![0, 1],
            initial_sample: 8, // step 12: indices 0, 12, ..., 96 — twins at 51/52 unsampled
            ..Default::default()
        };
        let (poly, stats) = gen_polynomial(&cons, &cfg).expect("feasible");
        for c in &cons {
            assert!(c.interval.contains(poly.eval(c.r)), "violated at {}", c.r);
        }
        assert_eq!(stats.dup_counterexamples, 1, "stats: {stats:?}");
        assert!(stats.cegis_rounds >= 1);
    }

    #[test]
    fn stats_track_work() {
        let cons = constraints_from_fn(|x| x.exp(), (0..500).map(|i| i as f64 * 1e-5), 1e-11);
        let cfg = PolyGenConfig {
            terms: vec![0, 1, 2, 3],
            initial_sample: 2,
            ..Default::default()
        };
        let (_, stats) = gen_polynomial(&cons, &cfg).expect("feasible");
        assert!(stats.final_sample >= 2);
        assert!(stats.lp_calls >= 1);
    }
}
