//! In-tree chunked work-distribution engine (scoped threads, no rayon).
//!
//! The generator's dominant costs — oracle validation over a full input
//! domain, the Algorithm 4 counterexample check against the complete
//! constraint set, and multi-precision table population — are all
//! embarrassingly parallel sweeps over an indexed range. This module
//! gives them one shared engine while keeping the workspace hermetic
//! (standard library only):
//!
//! * work is split into fixed **index chunks**; an atomic counter hands
//!   chunks to workers, so uneven per-item cost (the Ziv loop's precision
//!   doubling, saturated special cases) self-balances;
//! * every chunk's result is tagged with its chunk index and the merge
//!   happens **in chunk order**, so the combined result is bit-identical
//!   regardless of thread count or scheduling — determinism is the
//!   contract, not an accident;
//! * `threads <= 1` (or a single chunk) short-circuits to a plain serial
//!   loop with zero thread overhead, which is also the reference
//!   semantics the parallel path must reproduce.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the `RLIBM_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// host's available parallelism.
pub fn num_threads() -> usize {
    match std::env::var("RLIBM_THREADS").ok().and_then(|s| s.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// A chunk size that yields several chunks per worker (for balance under
/// uneven per-item cost) without degenerating into per-item dispatch.
pub fn default_chunk_size(len: usize, threads: usize) -> usize {
    (len / (threads.max(1) * 8)).max(64)
}

/// Runs `worker` over `len` items split into `chunk_size`-sized index
/// ranges on up to `threads` OS threads, returning the per-chunk results
/// **ordered by chunk index** (chunk `k` covers
/// `k*chunk_size .. min((k+1)*chunk_size, len)`).
///
/// The worker receives `(chunk_index, index_range)` and may capture shared
/// state by reference (`std::thread::scope` makes borrows sound). Panics
/// in a worker propagate to the caller.
pub fn run_chunked<R, F>(len: usize, chunk_size: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let chunk_size = chunk_size.max(1);
    let n_chunks = len.div_ceil(chunk_size);
    let chunk_range = |k: usize| (k * chunk_size)..((k + 1) * chunk_size).min(len);
    let workers = threads.min(n_chunks);
    if workers <= 1 {
        return (0..n_chunks).map(|k| worker(k, chunk_range(k))).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n_chunks {
                            break;
                        }
                        local.push((k, worker(k, chunk_range(k))));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(v) => v,
                // A worker panicked (can only be a bug in the caller's
                // closure): re-raise on the coordinating thread instead of
                // unwrapping into a second, less informative panic.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    tagged.sort_unstable_by_key(|(k, _)| *k);
    debug_assert_eq!(tagged.len(), n_chunks);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Order-preserving parallel map: `out[i] == f(&items[i])` for every `i`,
/// computed on up to `threads` threads.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunk = default_chunk_size(items.len(), threads);
    run_chunked(items.len(), chunk, threads, |_, range| {
        items[range].iter().map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Order-preserving parallel map over an index range: `out[i] == f(i)`.
pub fn par_map_range<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunk = default_chunk_size(len, threads);
    run_chunked(len, chunk, threads, |_, range| range.map(&f).collect::<Vec<R>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Parallel filter over indices: returns every `i in 0..len` with
/// `pred(i)`, **sorted ascending** — identical to the serial filter loop
/// for any thread count.
pub fn par_filter_indices<F>(len: usize, threads: usize, pred: F) -> Vec<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    let chunk = default_chunk_size(len, threads);
    run_chunked(len, chunk, threads, |_, range| {
        range.filter(|&i| pred(i)).collect::<Vec<usize>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_results_are_ordered_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 33] {
            let chunks = run_chunked(1000, 7, threads, |k, range| {
                assert_eq!(range.start, k * 7);
                (k, range.len())
            });
            assert_eq!(chunks.len(), 1000usize.div_ceil(7));
            for (i, (k, len)) in chunks.iter().enumerate() {
                assert_eq!(i, *k);
                assert_eq!(*len, if i == 142 { 6 } else { 7 });
            }
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let want: Vec<u64> = items.iter().map(|x| x.wrapping_mul(2654435761)).collect();
        for threads in [1, 2, 8] {
            let got = par_map(&items, threads, |x| x.wrapping_mul(2654435761));
            assert_eq!(got, want, "threads = {threads}");
        }
        assert_eq!(par_map_range(10_000, 4, |i| i * 3), (0..10_000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn filter_indices_are_sorted_and_complete() {
        let want: Vec<usize> = (0..5000).filter(|i| i % 17 == 3).collect();
        for threads in [1, 2, 8] {
            assert_eq!(par_filter_indices(5000, threads, |i| i % 17 == 3), want);
        }
    }

    #[test]
    fn all_items_visited_exactly_once() {
        let sum = AtomicU64::new(0);
        run_chunked(100_000, 13, 8, |_, range| {
            for i in range {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(run_chunked(0, 8, 4, |_, _| ()).is_empty());
        assert!(par_map::<u32, u32, _>(&[], 4, |x| *x).is_empty());
        assert!(par_filter_indices(0, 4, |_| true).is_empty());
    }
}
