//! The end-to-end generator (Algorithm 1, `CorrectPolys`).
//!
//! Wires the oracle, rounding intervals, reduced-interval deduction,
//! domain splitting and counterexample-guided polynomial generation into
//! one driver: given an elementary function, a range reduction, an output
//! compensation and a set of target inputs, produce piecewise polynomials
//! for every component function such that the composed evaluation is
//! correctly rounded for every input.

use crate::approx::{gen_approx, ApproxConfig, ApproxError, SignSplitApprox};
use crate::interval::{rounding_interval, Interval};
use crate::reduced::{
    deduce_reduced_intervals, merge_by_reduced_input, ReducedError, ReductionCase,
};
use rlibm_fp::Representation;
use rlibm_mp::{
    try_correctly_rounded, try_correctly_rounded_f64, Func, OracleError, DEFAULT_PREC_CEILING,
};
use rlibm_obs::SpanTimer;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

// Phase spans for the end-to-end generator (no-ops unless built with the
// `telemetry` feature). `pipeline.generate` wraps the whole run; the
// oracle sweep and the assembly phase nest inside it, so the snapshot
// shows where a generation run's wall-clock actually goes.
static GENERATE_SPAN: SpanTimer = SpanTimer::new("pipeline.generate");
static ORACLE_CASES_SPAN: SpanTimer = SpanTimer::new("pipeline.oracle_cases");
static ASSEMBLE_SPAN: SpanTimer = SpanTimer::new("pipeline.assemble");

/// Range reduction in `H`: `x -> r`.
pub type RangeReduce = Arc<dyn Fn(f64) -> f64 + Send + Sync>;
/// Output compensation in `H`: `(component values at r, x) -> y`.
pub type OutputComp = Arc<dyn Fn(&[f64], f64) -> f64 + Send + Sync>;

/// A full generation task description.
pub struct GeneratorSpec {
    /// The elementary function being approximated.
    pub func: Func,
    /// The component functions `f_i` evaluated at the reduced input
    /// (often just `[func]`; two for the sinpi/cospi/sinh/cosh families).
    pub components: Vec<Func>,
    /// Range reduction `RR_H`.
    pub range_reduce: RangeReduce,
    /// Output compensation `OC_H` (must be monotone in the component
    /// value vector, per Algorithm 2's requirement).
    pub output_comp: OutputComp,
    /// Piecewise generation settings (one per component).
    pub approx_cfgs: Vec<ApproxConfig>,
}

impl GeneratorSpec {
    /// The trivial spec: no range reduction (`r = x`), output is the
    /// single component's value. Useful for narrow domains and tests.
    pub fn identity(func: Func, terms: Vec<u32>) -> GeneratorSpec {
        let cfg = ApproxConfig {
            polygen: crate::polygen::PolyGenConfig { terms, ..Default::default() },
            ..Default::default()
        };
        GeneratorSpec {
            func,
            components: vec![func],
            range_reduce: Arc::new(|x| x),
            output_comp: Arc::new(|vals, _| vals[0]),
            approx_cfgs: vec![cfg],
        }
    }
}

/// Failures of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// The Ziv oracle hit its precision ceiling on some input.
    Oracle(OracleError),
    /// Reduced-interval deduction failed (Algorithm 2's exits).
    Reduced(ReducedError),
    /// Piecewise generation failed for a component.
    Approx(ApproxError),
    /// A checkpoint file could not be read, written, or parsed.
    Checkpoint(String),
}

impl From<OracleError> for GenError {
    fn from(e: OracleError) -> Self {
        GenError::Oracle(e)
    }
}

impl From<ReducedError> for GenError {
    fn from(e: ReducedError) -> Self {
        GenError::Reduced(e)
    }
}

impl From<ApproxError> for GenError {
    fn from(e: ApproxError) -> Self {
        GenError::Approx(e)
    }
}

impl core::fmt::Display for GenError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GenError::Oracle(e) => write!(f, "oracle failed: {e}"),
            GenError::Reduced(e) => write!(f, "reduced-interval deduction failed: {e:?}"),
            GenError::Approx(e) => write!(f, "piecewise generation failed: {e}"),
            GenError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for GenError {}

/// Table 3 row material for one generation run.
#[derive(Debug, Clone, Default)]
pub struct GenStats {
    /// Wall-clock seconds spent generating.
    pub seconds: f64,
    /// Number of distinct reduced inputs.
    pub reduced_inputs: usize,
    /// Sub-domain count per component.
    pub piecewise_sizes: Vec<usize>,
    /// Maximum degree per component.
    pub degrees: Vec<u32>,
    /// Maximum term count per component.
    pub term_counts: Vec<usize>,
    /// Total LP invocations.
    pub lp_calls: usize,
}

/// The output of [`generate`]: per-component piecewise polynomials plus
/// the spec's reduction/compensation closures for evaluation.
pub struct GeneratedFunction {
    components: Vec<SignSplitApprox>,
    range_reduce: RangeReduce,
    output_comp: OutputComp,
    stats: GenStats,
}

impl GeneratedFunction {
    /// Evaluates the generated implementation in `H` (no final rounding:
    /// the caller rounds into its target representation).
    pub fn eval(&self, x: f64) -> f64 {
        let r = (self.range_reduce)(x);
        let vals: Vec<f64> = self.components.iter().map(|a| a.eval(r)).collect();
        (self.output_comp)(&vals, x)
    }

    /// The per-component piecewise approximations.
    pub fn components(&self) -> &[SignSplitApprox] {
        &self.components
    }

    /// Generation statistics (Table 3 material).
    pub fn stats(&self) -> &GenStats {
        &self.stats
    }
}

/// Runs Algorithm 1 over the given target inputs.
///
/// Inputs whose oracle result has no rounding interval (NaN/infinite
/// results — the special cases a library front-end filters before the
/// polynomial path) are skipped.
pub fn generate<T: Representation>(
    spec: &GeneratorSpec,
    inputs: &[T],
) -> Result<GeneratedFunction, GenError> {
    generate_with_checkpoint(spec, inputs, None)
}

/// [`generate`] with optional checkpoint/resume for long runs.
///
/// The oracle sweep (Algorithm 1 lines 3-6) dominates wall-clock on
/// 32-bit-scale runs; with `checkpoint = Some(path)` its result — the
/// full `ReductionCase` set — is written to `path` after computing, and
/// any later run with the same spec and inputs resumes from the file
/// instead of re-running the Ziv loops. A checkpoint whose header does
/// not match the current spec/inputs is a [`GenError::Checkpoint`] (it
/// belongs to a different run; delete it to recompute). Writes go to a
/// temporary sibling file first and are renamed into place, so an
/// interrupted run never leaves a torn checkpoint.
pub fn generate_with_checkpoint<T: Representation>(
    spec: &GeneratorSpec,
    inputs: &[T],
    checkpoint: Option<&Path>,
) -> Result<GeneratedFunction, GenError> {
    assert_eq!(spec.components.len(), spec.approx_cfgs.len());
    let _span = GENERATE_SPAN.start();
    let start = Instant::now();
    if let Some(path) = checkpoint {
        // A run killed between write and rename leaves a `.tmp` sibling.
        // The rename never happened, so the main file (or its absence) is
        // the authoritative state — drop the torn temporary instead of
        // letting it pile up next to every long-running sweep.
        let tmp = path.with_extension("tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp).map_err(|e| {
                GenError::Checkpoint(format!("remove stale {}: {e}", tmp.display()))
            })?;
        }
    }
    let cases = match checkpoint {
        Some(path) if path.exists() => load_checkpoint(spec, inputs.len(), path)?,
        _ => {
            let cases = oracle_cases(spec, inputs)?;
            if let Some(path) = checkpoint {
                save_checkpoint(spec, inputs.len(), &cases, path)?;
            }
            cases
        }
    };
    assemble(spec, &cases, start)
}

/// Algorithm 1 lines 3-6: oracle + rounding interval per input. Every
/// input is independent and each one pays for two oracle evaluations
/// (Ziv loops), so this sweep runs on all cores; the order-preserving
/// map keeps `cases` identical to the serial loop's output for any
/// thread count. Any oracle failure (precision ceiling) aborts the sweep.
fn oracle_cases<T: Representation>(
    spec: &GeneratorSpec,
    inputs: &[T],
) -> Result<Vec<ReductionCase>, GenError> {
    let _span = ORACLE_CASES_SPAN.start();
    crate::par::par_map(inputs, crate::par::num_threads(), |&x| {
        if x.is_nan() {
            return None;
        }
        let xf = x.to_f64();
        // Special and exactly representable cases are handled by the
        // library front-end, not the polynomial (their degenerate
        // rounding intervals would force the LP to zero margin).
        if rlibm_mp::oracle::is_special_case(spec.func, xf) {
            return None;
        }
        let y: T = match try_correctly_rounded(spec.func, x, DEFAULT_PREC_CEILING) {
            Ok(y) => y,
            Err(e) => return Some(Err(GenError::Oracle(e))),
        };
        let target = rounding_interval(y)?;
        let r = (spec.range_reduce)(xf);
        let mut component_values = Vec::with_capacity(spec.components.len());
        for &fi in &spec.components {
            match try_correctly_rounded_f64(fi, r, DEFAULT_PREC_CEILING) {
                Ok(v) => component_values.push(v),
                Err(e) => return Some(Err(GenError::Oracle(e))),
            }
        }
        Some(Ok(ReductionCase { x: xf, target, r, component_values }))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Algorithms 2-4 over the (possibly checkpoint-restored) case set.
fn assemble(
    spec: &GeneratorSpec,
    cases: &[ReductionCase],
    start: Instant,
) -> Result<GeneratedFunction, GenError> {
    let _span = ASSEMBLE_SPAN.start();
    // Algorithm 2.
    let per_component = deduce_reduced_intervals(cases, spec.output_comp.as_ref())?;
    // Merge duplicates, then Algorithm 3 + 4 per component.
    let mut components = Vec::with_capacity(per_component.len());
    let mut stats = GenStats::default();
    for (i, constraints) in per_component.iter().enumerate() {
        let merged = merge_by_reduced_input(constraints, i)?;
        stats.reduced_inputs = stats.reduced_inputs.max(merged.len());
        let (approx, astats) = gen_approx(&merged, &spec.approx_cfgs[i])?;
        stats.lp_calls += astats.lp_calls;
        stats.piecewise_sizes.push(approx.domains());
        let max_deg = approx
            .negative
            .iter()
            .chain(approx.non_negative.iter())
            .map(|p| p.max_degree())
            .max()
            .unwrap_or(0);
        let max_terms = approx
            .negative
            .iter()
            .chain(approx.non_negative.iter())
            .map(|p| p.max_terms())
            .max()
            .unwrap_or(0);
        stats.degrees.push(max_deg);
        stats.term_counts.push(max_terms);
        components.push(approx);
    }
    stats.seconds = start.elapsed().as_secs_f64();
    Ok(GeneratedFunction {
        components,
        range_reduce: Arc::clone(&spec.range_reduce),
        output_comp: Arc::clone(&spec.output_comp),
        stats,
    })
}

/// First line of a checkpoint file. The header binds the file to one
/// (function, input count, component count) so a stale file from another
/// run is rejected instead of silently generating from the wrong cases.
const CHECKPOINT_MAGIC: &str = "rlibm-checkpoint v1";

fn save_checkpoint(
    spec: &GeneratorSpec,
    n_inputs: usize,
    cases: &[ReductionCase],
    path: &Path,
) -> Result<(), GenError> {
    use std::fmt::Write as _;
    let mut text = format!(
        "{CHECKPOINT_MAGIC} func={} inputs={} components={} cases={}\n",
        spec.func.name(),
        n_inputs,
        spec.components.len(),
        cases.len(),
    );
    for c in cases {
        let _ = write!(
            text,
            "{:016x} {:016x} {:016x} {:016x}",
            c.x.to_bits(),
            c.target.lo.to_bits(),
            c.target.hi.to_bits(),
            c.r.to_bits(),
        );
        for v in &c.component_values {
            let _ = write!(text, " {:016x}", v.to_bits());
        }
        text.push('\n');
    }
    // Write-then-rename: an interrupted run leaves the old checkpoint (or
    // none) intact, never a torn file.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)
        .map_err(|e| GenError::Checkpoint(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| GenError::Checkpoint(format!("rename into {}: {e}", path.display())))
}

fn parse_bits_f64(tok: &str) -> Result<f64, GenError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| GenError::Checkpoint(format!("bad hex field {tok:?}")))
}

fn load_checkpoint(
    spec: &GeneratorSpec,
    n_inputs: usize,
    path: &Path,
) -> Result<Vec<ReductionCase>, GenError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| GenError::Checkpoint(format!("read {}: {e}", path.display())))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| GenError::Checkpoint(format!("{}: empty checkpoint", path.display())))?;
    let expect = format!(
        "{CHECKPOINT_MAGIC} func={} inputs={} components={} cases=",
        spec.func.name(),
        n_inputs,
        spec.components.len(),
    );
    let Some(count_str) = header.strip_prefix(&expect) else {
        // Distinguish "written by a different format version" (this build
        // cannot read it at all) from "belongs to a different run" (same
        // format, different spec/inputs) — both typed, never a garbled
        // line-level parse error further down.
        if !header.starts_with(CHECKPOINT_MAGIC) {
            return Err(GenError::Checkpoint(format!(
                "{}: unsupported checkpoint version (header {header:?}, this build reads \
                 {CHECKPOINT_MAGIC:?}); delete the file to recompute",
                path.display(),
            )));
        }
        return Err(GenError::Checkpoint(format!(
            "{}: header {header:?} does not match this run ({expect}<n>); \
             delete the file to recompute",
            path.display(),
        )));
    };
    let n_cases: usize = count_str
        .parse()
        .map_err(|_| GenError::Checkpoint(format!("bad case count {count_str:?}")))?;
    let mut cases = Vec::with_capacity(n_cases);
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split(' ').map(parse_bits_f64);
        let mut fixed = [0.0f64; 4];
        for slot in &mut fixed {
            *slot = toks.next().ok_or_else(|| {
                GenError::Checkpoint(format!("truncated checkpoint line {line:?}"))
            })??;
        }
        let [x, lo, hi, r] = fixed;
        let component_values: Vec<f64> = toks.collect::<Result<_, _>>()?;
        if component_values.len() != spec.components.len() {
            return Err(GenError::Checkpoint(format!(
                "checkpoint line has {} component values, spec has {} components",
                component_values.len(),
                spec.components.len(),
            )));
        }
        cases.push(ReductionCase { x, target: Interval::new(lo, hi), r, component_values });
    }
    if cases.len() != n_cases {
        return Err(GenError::Checkpoint(format!(
            "expected {n_cases} cases, found {}",
            cases.len(),
        )));
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{all_16bit, validate};
    use rlibm_fp::{BFloat16, Half};
    use rlibm_mp::round_mp;

    #[test]
    fn identity_pipeline_exp_bfloat16() {
        let spec = GeneratorSpec::identity(Func::Exp, vec![0, 1, 2, 3, 4, 5, 6]);
        let inputs: Vec<BFloat16> = all_16bit::<BFloat16>()
            .filter(|x: &BFloat16| {
                x.is_finite()
                    && x.to_f64().abs() <= 1.0
                    && !rlibm_mp::oracle::is_special_case(Func::Exp, x.to_f64())
            })
            .collect();
        assert!(inputs.len() > 10_000);
        let g = generate(&spec, &inputs).expect("generation succeeds");
        let report = validate(
            Func::Exp,
            |x: BFloat16| BFloat16::from_f64(g.eval(x.to_f64())),
            inputs.iter().copied(),
        );
        assert!(
            report.all_correct(),
            "exp wrong for {} of {} inputs; first: {:?}",
            report.wrong,
            report.total,
            report.examples.first()
        );
        assert!(g.stats().reduced_inputs > 1000);
        assert!(g.stats().lp_calls >= 1);
    }

    #[test]
    fn identity_pipeline_log2_half_precision() {
        // log2 over [1, 2) for binary16: a classic reduced domain.
        let spec = GeneratorSpec::identity(Func::Log2, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let inputs: Vec<Half> = all_16bit::<Half>()
            .filter(|x: &Half| {
                x.is_finite()
                    && x.to_f64() >= 1.0
                    && x.to_f64() < 2.0
                    && !rlibm_mp::oracle::is_special_case(Func::Log2, x.to_f64())
            })
            .collect();
        assert_eq!(inputs.len(), 1023); // 1024 minus the exact case log2(1)
        let g = generate(&spec, &inputs).expect("generation succeeds");
        let report = validate(
            Func::Log2,
            |x: Half| Half::from_f64(g.eval(x.to_f64())),
            inputs.iter().copied(),
        );
        assert!(report.all_correct(), "{} wrong", report.wrong);
    }

    #[test]
    fn multi_component_pipeline() {
        // A toy two-function reduction: approximate sinpi on [1/512, 1/4]
        // through the identity r = x but demanding BOTH sinpi(r) and
        // cospi(r) polynomials, composed as y = s * 1 + c * 0 ... use a
        // genuine OC: y = sinpi(x/2 + x/2) = s*c + c*s = 2 s c with
        // r = x/2. (sinpi(2r) = 2 sinpi(r) cospi(r).)
        let spec = GeneratorSpec {
            func: Func::SinPi,
            components: vec![Func::SinPi, Func::CosPi],
            range_reduce: Arc::new(|x| x * 0.5),
            output_comp: Arc::new(|vals, _| 2.0 * vals[0] * vals[1]),
            approx_cfgs: vec![
                ApproxConfig {
                    polygen: crate::polygen::PolyGenConfig {
                        terms: vec![1, 3, 5],
                        ..Default::default()
                    },
                    ..Default::default()
                },
                ApproxConfig {
                    polygen: crate::polygen::PolyGenConfig {
                        terms: vec![0, 2, 4],
                        ..Default::default()
                    },
                    ..Default::default()
                },
            ],
        };
        let inputs: Vec<BFloat16> = all_16bit::<BFloat16>()
            .filter(|x: &BFloat16| {
                let v = x.to_f64();
                (1.0 / 512.0..=0.25).contains(&v)
            })
            .collect();
        assert!(inputs.len() > 500);
        let g = generate(&spec, &inputs).expect("generation succeeds");
        let report = validate(
            Func::SinPi,
            |x: BFloat16| BFloat16::from_f64(g.eval(x.to_f64())),
            inputs.iter().copied(),
        );
        assert!(
            report.all_correct(),
            "sinpi-via-double-angle wrong for {} of {}",
            report.wrong,
            report.total
        );
        assert_eq!(g.components().len(), 2);
    }

    #[test]
    fn checkpoint_roundtrip_resumes_and_rejects_stale() {
        let spec = GeneratorSpec::identity(Func::Log2, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let inputs: Vec<Half> = all_16bit::<Half>()
            .filter(|x: &Half| {
                x.is_finite()
                    && x.to_f64() >= 1.0
                    && x.to_f64() < 2.0
                    && !rlibm_mp::oracle::is_special_case(Func::Log2, x.to_f64())
            })
            .collect();
        let path = std::env::temp_dir().join(format!("rlibm_ckpt_{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let g1 = generate_with_checkpoint(&spec, &inputs, Some(path.as_path())).expect("first run");
        assert!(path.exists(), "first run must write the checkpoint");
        // Second run resumes from the file (same cases -> same polynomials).
        let g2 = generate_with_checkpoint(&spec, &inputs, Some(path.as_path())).expect("resume");
        for x in inputs.iter().step_by(17) {
            assert_eq!(
                g1.eval(x.to_f64()).to_bits(),
                g2.eval(x.to_f64()).to_bits(),
                "resumed run must reproduce the original polynomials"
            );
        }
        // A checkpoint for a different input set is stale: typed error.
        match generate_with_checkpoint(&spec, &inputs[..100], Some(path.as_path())) {
            Err(GenError::Checkpoint(_)) => {}
            Err(other) => panic!("expected Checkpoint error, got {other:?}"),
            Ok(_) => panic!("stale checkpoint must be rejected"),
        }
        // A torn/corrupt file is a typed error too, not a panic.
        std::fs::write(&path, "rlibm-checkpoint v1 garbage\n").expect("rewrite");
        match generate_with_checkpoint(&spec, &inputs, Some(path.as_path())) {
            Err(GenError::Checkpoint(_)) => {}
            Err(other) => panic!("expected Checkpoint error, got {other:?}"),
            Ok(_) => panic!("corrupt checkpoint must be rejected"),
        }
        // A future format version is its own typed rejection, naming the
        // version this build reads — not a garbled line-level parse.
        std::fs::write(&path, "rlibm-checkpoint v9 func=log2 inputs=1 components=1 cases=0\n")
            .expect("rewrite");
        match generate_with_checkpoint(&spec, &inputs, Some(path.as_path())) {
            Err(GenError::Checkpoint(msg)) => assert!(
                msg.contains("unsupported checkpoint version"),
                "version mismatch must be named: {msg}"
            ),
            Err(other) => panic!("expected Checkpoint error, got {other:?}"),
            Ok(_) => panic!("version-mismatched checkpoint must be rejected"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_stale_tmp_is_cleaned_on_resume() {
        let spec = GeneratorSpec::identity(Func::Log2, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let inputs: Vec<Half> = all_16bit::<Half>()
            .filter(|x: &Half| {
                x.is_finite()
                    && x.to_f64() >= 1.0
                    && x.to_f64() < 2.0
                    && !rlibm_mp::oracle::is_special_case(Func::Log2, x.to_f64())
            })
            .collect();
        let path = std::env::temp_dir().join(format!("rlibm_ckpt_tmp_{}.txt", std::process::id()));
        let tmp = path.with_extension("tmp");
        let _ = std::fs::remove_file(&path);
        // Simulate a crash between write and rename: a torn tmp, no
        // main checkpoint. The next run must clean it up and proceed.
        std::fs::write(&tmp, "rlibm-checkpoint v1 half-written").expect("plant tmp");
        let g1 = generate_with_checkpoint(&spec, &inputs, Some(path.as_path())).expect("run");
        assert!(!tmp.exists(), "stale tmp must be removed on resume");
        assert!(path.exists());
        // And again with a valid checkpoint present: the tmp is still
        // dropped, the checkpoint still honored.
        std::fs::write(&tmp, "torn again").expect("plant tmp");
        let g2 = generate_with_checkpoint(&spec, &inputs, Some(path.as_path())).expect("resume");
        assert!(!tmp.exists());
        for x in inputs.iter().step_by(29) {
            assert_eq!(g1.eval(x.to_f64()).to_bits(), g2.eval(x.to_f64()).to_bits());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oracle_round_trip_consistency() {
        // round_mp of the oracle's own MpFloat path must agree with
        // correctly_rounded — a wiring sanity check for the pipeline.
        let x = BFloat16::from_f64(0.71875);
        let via_t: BFloat16 = rlibm_mp::correctly_rounded(Func::Ln, x);
        let via_f64 = rlibm_mp::correctly_rounded_f64(Func::Ln, x.to_f64());
        // The doubly-rounded value agrees here because ln(0.71875) is far
        // from a bfloat16 boundary.
        assert_eq!(BFloat16::from_f64(via_f64).to_bits(), via_t.to_bits());
        let _ = round_mp::<BFloat16>(&rlibm_mp::elem::ln(0.71875, 128));
    }
}
