//! The RLIBM-32 generator — the paper's primary contribution.
//!
//! This crate implements the four algorithms of Section 3:
//!
//! * [`interval`] — rounding intervals in `H = f64` for any target
//!   representation (Algorithm 1's `RoundingInterval`).
//! * [`reduced`] — reduced-interval deduction when range reduction uses
//!   one *or several* elementary functions (Algorithm 2), plus the
//!   common-interval merge for duplicate reduced inputs.
//! * [`split`] — bit-pattern based domain splitting (Algorithm 3's
//!   `SplitDomain`), giving two-bit-op sub-domain dispatch at runtime.
//! * [`polygen`] — counterexample-guided polynomial generation with
//!   sampling and coefficient search-and-refine (Algorithm 4).
//! * [`approx`] — the piecewise assembly loop (Algorithm 3).
//! * [`pipeline`] — the end-to-end `CorrectPolys` driver (Algorithm 1).
//! * [`validate`] — oracle-backed full-domain validation and the
//!   stratified workload generators used by the evaluation harnesses.
//! * [`par`] — the in-tree chunked work-distribution engine (scoped
//!   threads, deterministic chunk-ordered merges) that parallelizes the
//!   oracle sweeps above without any registry dependency.
//! * [`certify`] — the sharded, checkpointed, resumable sweep driver
//!   that certifies the shipped two-tier library over the full 2^32
//!   bit-pattern domain (the paper's all-inputs claim as an artifact).
//!
//! # End-to-end example (a 16-bit target, exhaustively correct)
//!
//! ```
//! use rlibm_core::pipeline::{generate, GeneratorSpec};
//! use rlibm_core::validate::{all_16bit, validate};
//! use rlibm_fp::BFloat16;
//! use rlibm_mp::Func;
//!
//! // Generate a correctly rounded exp for bfloat16 inputs in [-1, 1]
//! // (identity range reduction; the library crate does the full domain).
//! let spec = GeneratorSpec::identity(Func::Exp, vec![0, 1, 2, 3, 4, 5, 6]);
//! let inputs: Vec<BFloat16> = all_16bit::<BFloat16>()
//!     .filter(|x: &BFloat16| {
//!         x.is_finite()
//!             && x.to_f64().abs() <= 1.0
//!             && !rlibm_mp::oracle::is_special_case(Func::Exp, x.to_f64())
//!     })
//!     .collect();
//! let generated = generate(&spec, &inputs).expect("generation succeeds");
//! let report = validate(
//!     Func::Exp,
//!     |x: BFloat16| BFloat16::from_f64(generated.eval(x.to_f64())),
//!     inputs.iter().copied(),
//! );
//! assert!(report.all_correct());
//! ```

pub mod approx;
pub mod certify;
#[cfg(feature = "fault")]
pub mod fault;
pub mod interval;
pub mod par;
pub mod pipeline;
pub mod poly;
pub mod polygen;
pub mod reduced;
pub mod split;
pub mod validate;

pub use approx::{gen_approx, ApproxConfig, PiecewiseApprox, SignSplitApprox};
pub use interval::{rounding_interval, Interval};
pub use poly::Polynomial;
pub use polygen::{gen_polynomial, PolyGenConfig, PolyGenError};
pub use reduced::{deduce_reduced_intervals, merge_by_reduced_input, ReducedConstraint};
pub use split::BitPatternSplitter;
