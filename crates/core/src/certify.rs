//! Exhaustive 2^32 certification sweep driver (ROADMAP item 2).
//!
//! The paper's headline claim is correct rounding for **all** inputs of a
//! 32-bit representation. Sampling 1M inputs per function (plus the
//! exhaustive 16-bit targets) is evidence, not the claim itself; this
//! module turns the claim into a checked artifact. The u32 bit-pattern
//! domain is partitioned into fixed-size **shards** (`2^shard_bits`
//! consecutive bit patterns each); for every input of a shard the
//! two-tier fast path is bit-compared against the dd-only reference, and
//! a budgeted subset of shards is additionally spot-checked against the
//! Ziv oracle. Per-shard verdicts persist in a tmp+rename checkpoint
//! file (same crash-safety discipline as the generator's
//! [`crate::pipeline`] checkpoints), so a sweep is resumable at shard
//! granularity and accumulates across invocations.
//!
//! The driver is deliberately **representation-agnostic**: it sweeps
//! `fn(u32) -> u32` bit transfer functions, so this crate needs no
//! dependency on the runtime library. The `certify` binary (in
//! `rlibm-bench`, which already links every layer) supplies the closures
//! — two-tier entry point, dd reference, Ziv oracle — and renders the
//! accumulated state into the committed `CERT_manifest.json`.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use rlibm_obs::{Counter, SpanTimer};

/// First token pair of a certification checkpoint file; bump the version
/// suffix when the line format changes.
pub const CERT_MAGIC: &str = "rlibm-cert v1";

/// Default shard size exponent: `2^24` inputs per shard, 256 shards per
/// function. At the measured two-tier + dd throughput (~80 ns/input on
/// the reference box) one shard is a ~1.4 s unit of resumable work.
pub const DEFAULT_SHARD_BITS: u32 = 24;

static CERT_INPUTS: Counter = Counter::new("certify.sweep.inputs");
static CERT_MISMATCHES: Counter = Counter::new("certify.sweep.mismatches");
static CERT_SHARDS: Counter = Counter::new("certify.sweep.shards");
static CERT_ORACLE_CHECKED: Counter = Counter::new("certify.oracle.checked");
static CERT_ORACLE_MISMATCHES: Counter = Counter::new("certify.oracle.mismatches");
static CERT_SHARD_SPAN: SpanTimer = SpanTimer::new("certify.shard");

/// Typed failures of the certification driver. The checkpoint variants
/// mirror the generator's policy: a file that does not bind to the
/// requested sweep is an error to surface, never a silent recompute.
#[derive(Debug)]
pub enum CertError {
    /// Checkpoint file malformed, version-mismatched, or bound to a
    /// different (function, kind, shard size) than requested.
    Checkpoint(String),
    /// Filesystem failure reading or writing sweep state.
    Io(String),
    /// Invalid sweep configuration (shard size out of range, shard index
    /// out of domain).
    Config(String),
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Checkpoint(m) => write!(f, "certify checkpoint: {m}"),
            CertError::Io(m) => write!(f, "certify io: {m}"),
            CertError::Config(m) => write!(f, "certify config: {m}"),
        }
    }
}

impl std::error::Error for CertError {}

/// Outcome of sweeping one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardVerdict {
    /// Shard index (`0..shard_count`); the shard covers bit patterns
    /// `shard << shard_bits ..= (shard + 1) << shard_bits - 1`.
    pub shard: u32,
    /// Inputs where the two-tier fast path and the dd reference disagree.
    pub mismatches: u64,
    /// Bit pattern of the lowest mismatching input, if any.
    pub first_mismatch: Option<u32>,
    /// Inputs spot-checked against the Ziv oracle.
    pub oracle_checked: u64,
    /// Spot-checks where the dd reference and the oracle disagree.
    pub oracle_mismatches: u64,
    /// Bit pattern of the first oracle disagreement, if any.
    pub first_oracle_mismatch: Option<u32>,
}

impl ShardVerdict {
    /// True when neither comparison found a disagreement.
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.oracle_mismatches == 0
    }
}

/// Aggregate view of a function's sweep state (manifest material).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertSummary {
    /// Shards in the full domain partition.
    pub shards_total: u64,
    /// Shards with a recorded verdict.
    pub shards_done: u64,
    /// Inputs covered by recorded shards.
    pub inputs_checked: u64,
    /// Total fast-vs-dd mismatches across recorded shards.
    pub mismatches: u64,
    /// Lowest first-mismatch bit pattern across recorded shards.
    pub first_mismatch: Option<u32>,
    /// Total oracle spot-checks across recorded shards.
    pub oracle_checked: u64,
    /// Total dd-vs-oracle disagreements.
    pub oracle_mismatches: u64,
    /// First dd-vs-oracle disagreement bit pattern.
    pub first_oracle_mismatch: Option<u32>,
}

impl CertSummary {
    /// `"complete"` / `"partial"` / `"pending"` manifest status.
    pub fn status(&self) -> &'static str {
        if self.shards_done == self.shards_total {
            "complete"
        } else if self.shards_done > 0 {
            "partial"
        } else {
            "pending"
        }
    }
}

/// Resumable sweep state for one (function, kind) pair: the set of
/// per-shard verdicts recorded so far, bound to one shard partition.
#[derive(Debug, Clone)]
pub struct CertState {
    func: String,
    kind: String,
    shard_bits: u32,
    verdicts: BTreeMap<u32, ShardVerdict>,
}

fn checked_shard_bits(shard_bits: u32) -> Result<u32, CertError> {
    if (8..=32).contains(&shard_bits) {
        Ok(shard_bits)
    } else {
        Err(CertError::Config(format!(
            "shard_bits {shard_bits} outside supported range 8..=32"
        )))
    }
}

impl CertState {
    /// Fresh, empty sweep state.
    pub fn new(func: &str, kind: &str, shard_bits: u32) -> Result<CertState, CertError> {
        Ok(CertState {
            func: func.to_string(),
            kind: kind.to_string(),
            shard_bits: checked_shard_bits(shard_bits)?,
            verdicts: BTreeMap::new(),
        })
    }

    /// The function name this state certifies.
    pub fn func(&self) -> &str {
        &self.func
    }

    /// The representation kind ("float32", "posit32", ...).
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Shard size exponent.
    pub fn shard_bits(&self) -> u32 {
        self.shard_bits
    }

    /// Number of shards in the full 2^32 partition.
    pub fn shard_count(&self) -> u64 {
        1u64 << (32 - self.shard_bits)
    }

    /// Checkpoint file path for this state under `dir`.
    pub fn checkpoint_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("cert-{}-{}.ckpt", self.kind, self.func))
    }

    /// Loads existing state from `dir` if a checkpoint exists, otherwise
    /// returns a fresh state. A stale `.tmp` sibling left by a run killed
    /// mid-write is removed (the rename never happened, so the main file
    /// — or its absence — is the authoritative state). A checkpoint with
    /// a different format version, function binding or shard size is a
    /// typed [`CertError::Checkpoint`].
    pub fn load_or_new(dir: &Path, func: &str, kind: &str, shard_bits: u32) -> Result<CertState, CertError> {
        let state = CertState::new(func, kind, shard_bits)?;
        let path = state.checkpoint_path(dir);
        let tmp = path.with_extension("tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp)
                .map_err(|e| CertError::Io(format!("remove stale {}: {e}", tmp.display())))?;
        }
        if !path.exists() {
            return Ok(state);
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CertError::Io(format!("read {}: {e}", path.display())))?;
        state.parse_checkpoint(&text, &path)
    }

    fn parse_checkpoint(mut self, text: &str, path: &Path) -> Result<CertState, CertError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| {
            CertError::Checkpoint(format!("{}: empty checkpoint", path.display()))
        })?;
        let expect = format!(
            "{CERT_MAGIC} kind={} func={} shard_bits={} shards={}",
            self.kind,
            self.func,
            self.shard_bits,
            self.shard_count(),
        );
        if header != expect {
            // Distinguish a format-version bump from a binding mismatch:
            // the former means "this tool can't read the file", the
            // latter "this file belongs to a different sweep".
            let msg = if !header.starts_with(CERT_MAGIC) {
                format!(
                    "{}: unsupported checkpoint version (header {header:?}, this build reads {CERT_MAGIC:?})",
                    path.display(),
                )
            } else {
                format!(
                    "{}: checkpoint bound to a different sweep (header {header:?}, expected {expect:?}); \
                     delete the file to restart",
                    path.display(),
                )
            };
            return Err(CertError::Checkpoint(msg));
        }
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let v = parse_verdict_line(line)
                .map_err(|m| CertError::Checkpoint(format!("{}: {m}", path.display())))?;
            if u64::from(v.shard) >= self.shard_count() {
                return Err(CertError::Checkpoint(format!(
                    "{}: shard {} out of range (domain has {} shards)",
                    path.display(),
                    v.shard,
                    self.shard_count(),
                )));
            }
            self.verdicts.insert(v.shard, v);
        }
        Ok(self)
    }

    /// Writes the state to its checkpoint file under `dir` (created if
    /// missing) with the tmp+rename discipline: an interrupted save
    /// leaves the previous checkpoint intact, never a torn file.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, CertError> {
        use std::fmt::Write as _;
        std::fs::create_dir_all(dir)
            .map_err(|e| CertError::Io(format!("create {}: {e}", dir.display())))?;
        let path = self.checkpoint_path(dir);
        let mut text = format!(
            "{CERT_MAGIC} kind={} func={} shard_bits={} shards={}\n",
            self.kind,
            self.func,
            self.shard_bits,
            self.shard_count(),
        );
        for v in self.verdicts.values() {
            let _ = write!(text, "{:08x} {:016x} ", v.shard, v.mismatches);
            push_opt_bits(&mut text, v.first_mismatch);
            let _ = write!(text, " {:016x} {:016x} ", v.oracle_checked, v.oracle_mismatches);
            push_opt_bits(&mut text, v.first_oracle_mismatch);
            text.push('\n');
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)
            .map_err(|e| CertError::Io(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| CertError::Io(format!("rename into {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Records (or overwrites) one shard's verdict.
    pub fn record(&mut self, v: ShardVerdict) -> Result<(), CertError> {
        if u64::from(v.shard) >= self.shard_count() {
            return Err(CertError::Config(format!(
                "shard {} out of range (domain has {} shards)",
                v.shard,
                self.shard_count(),
            )));
        }
        self.verdicts.insert(v.shard, v);
        Ok(())
    }

    /// The recorded verdict for `shard`, if any.
    pub fn verdict(&self, shard: u32) -> Option<&ShardVerdict> {
        self.verdicts.get(&shard)
    }

    /// Shard indices without a recorded verdict, ascending.
    pub fn remaining(&self) -> Vec<u32> {
        (0..self.shard_count() as u32).filter(|s| !self.verdicts.contains_key(s)).collect()
    }

    /// True once every shard has a verdict.
    pub fn is_complete(&self) -> bool {
        self.verdicts.len() as u64 == self.shard_count()
    }

    /// Aggregates the recorded verdicts into manifest material.
    pub fn summary(&self) -> CertSummary {
        let mut s = CertSummary {
            shards_total: self.shard_count(),
            shards_done: self.verdicts.len() as u64,
            inputs_checked: (self.verdicts.len() as u64) << self.shard_bits,
            mismatches: 0,
            first_mismatch: None,
            oracle_checked: 0,
            oracle_mismatches: 0,
            first_oracle_mismatch: None,
        };
        for v in self.verdicts.values() {
            s.mismatches += v.mismatches;
            s.oracle_checked += v.oracle_checked;
            s.oracle_mismatches += v.oracle_mismatches;
            if s.first_mismatch.is_none() {
                s.first_mismatch = v.first_mismatch;
            }
            if s.first_oracle_mismatch.is_none() {
                s.first_oracle_mismatch = v.first_oracle_mismatch;
            }
        }
        s
    }

    /// Recorded shard indices as a compact range list (`"0-127,200"`),
    /// or `"-"` when nothing is recorded yet — the manifest's
    /// human-readable coverage column.
    pub fn done_ranges(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut run: Option<(u32, u32)> = None;
        for &s in self.verdicts.keys() {
            run = match run {
                Some((lo, hi)) if s == hi + 1 => Some((lo, s)),
                Some((lo, hi)) => {
                    flush_range(&mut out, lo, hi);
                    Some((s, s))
                }
                None => Some((s, s)),
            };
        }
        if let Some((lo, hi)) = run {
            flush_range(&mut out, lo, hi);
        }
        if out.is_empty() {
            let _ = write!(out, "-");
        }
        out
    }
}

fn flush_range(out: &mut String, lo: u32, hi: u32) {
    use std::fmt::Write as _;
    if !out.is_empty() {
        out.push(',');
    }
    if lo == hi {
        let _ = write!(out, "{lo}");
    } else {
        let _ = write!(out, "{lo}-{hi}");
    }
}

fn push_opt_bits(text: &mut String, bits: Option<u32>) {
    use std::fmt::Write as _;
    match bits {
        Some(b) => {
            let _ = write!(text, "{b:08x}");
        }
        None => text.push('-'),
    }
}

fn parse_hex_u64(tok: &str) -> Result<u64, String> {
    u64::from_str_radix(tok, 16).map_err(|_| format!("bad hex field {tok:?}"))
}

fn parse_opt_bits(tok: &str) -> Result<Option<u32>, String> {
    if tok == "-" {
        return Ok(None);
    }
    u32::from_str_radix(tok, 16).map(Some).map_err(|_| format!("bad bit-pattern field {tok:?}"))
}

fn parse_verdict_line(line: &str) -> Result<ShardVerdict, String> {
    let mut toks = line.split(' ');
    let mut next = || toks.next().ok_or_else(|| format!("truncated verdict line {line:?}"));
    let shard = parse_hex_u64(next()?)?;
    let shard = u32::try_from(shard).map_err(|_| format!("shard index overflow in {line:?}"))?;
    let mismatches = parse_hex_u64(next()?)?;
    let first_mismatch = parse_opt_bits(next()?)?;
    let oracle_checked = parse_hex_u64(next()?)?;
    let oracle_mismatches = parse_hex_u64(next()?)?;
    let first_oracle_mismatch = parse_opt_bits(next()?)?;
    if toks.next().is_some() {
        return Err(format!("trailing fields in verdict line {line:?}"));
    }
    Ok(ShardVerdict {
        shard,
        mismatches,
        first_mismatch,
        oracle_checked,
        oracle_mismatches,
        first_oracle_mismatch,
    })
}

/// Oracle spot-check budget for [`sweep_shard`]: `samples` inputs of the
/// shard, chosen by a deterministic (seeded, thread-count-independent)
/// stride-free PRNG, are compared `reference` vs `oracle`.
pub struct OracleBudget<'a> {
    /// Bit transfer function of the Ziv oracle (same output
    /// canonicalization as the other two closures).
    pub oracle: &'a (dyn Fn(u32) -> u32 + Sync),
    /// Spot-checks per selected shard.
    pub samples: u32,
    /// Base seed; the shard index is mixed in, so every shard draws a
    /// distinct but reproducible sample set.
    pub seed: u64,
}

/// splitmix64: tiny, seedable, good enough for picking sample offsets.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sweeps one shard: compares `fast(bits)` against `reference(bits)` for
/// every bit pattern of the shard (parallelized over [`crate::par`]'s
/// chunked engine; the merge is chunk-ordered, so `first_mismatch` is
/// the lowest mismatching pattern for any thread count), then runs the
/// optional oracle spot-check serially. The closures map input bit
/// pattern to output bit pattern and are expected to canonicalize
/// don't-care outputs (e.g. NaN payloads) identically.
pub fn sweep_shard<F, G>(
    shard: u32,
    shard_bits: u32,
    threads: usize,
    fast: F,
    reference: G,
    oracle: Option<&OracleBudget<'_>>,
) -> Result<ShardVerdict, CertError>
where
    F: Fn(u32) -> u32 + Sync,
    G: Fn(u32) -> u32 + Sync,
{
    let shard_bits = checked_shard_bits(shard_bits)?;
    let shard_len = 1u64 << shard_bits;
    let shard_count = 1u64 << (32 - shard_bits);
    if u64::from(shard) >= shard_count {
        return Err(CertError::Config(format!(
            "shard {shard} out of range (domain has {shard_count} shards)"
        )));
    }
    let base = u64::from(shard) << shard_bits;
    let _span = CERT_SHARD_SPAN.start();

    let shard_len_usize = shard_len as usize;
    let chunk = crate::par::default_chunk_size(shard_len_usize, threads);
    let per_chunk = crate::par::run_chunked(shard_len_usize, chunk, threads, |_, range| {
        let mut mismatches = 0u64;
        let mut first: Option<u32> = None;
        for off in range {
            let bits = (base + off as u64) as u32;
            if fast(bits) != reference(bits) {
                mismatches += 1;
                if first.is_none() {
                    first = Some(bits);
                }
            }
        }
        (mismatches, first)
    });
    let mismatches: u64 = per_chunk.iter().map(|(m, _)| m).sum();
    let first_mismatch = per_chunk.iter().find_map(|(_, f)| *f);

    let mut oracle_checked = 0u64;
    let mut oracle_mismatches = 0u64;
    let mut first_oracle_mismatch: Option<u32> = None;
    if let Some(budget) = oracle {
        let mut rng = budget.seed ^ (u64::from(shard).wrapping_mul(0xA076_1D64_78BD_642F));
        for _ in 0..budget.samples {
            let off = splitmix64(&mut rng) & (shard_len - 1);
            let bits = (base + off) as u32;
            oracle_checked += 1;
            if reference(bits) != (budget.oracle)(bits) {
                oracle_mismatches += 1;
                if first_oracle_mismatch.is_none() {
                    first_oracle_mismatch = Some(bits);
                }
            }
        }
        CERT_ORACLE_CHECKED.add(oracle_checked);
        CERT_ORACLE_MISMATCHES.add(oracle_mismatches);
    }

    CERT_INPUTS.add(shard_len);
    CERT_MISMATCHES.add(mismatches);
    CERT_SHARDS.add(1);
    Ok(ShardVerdict {
        shard,
        mismatches,
        first_mismatch,
        oracle_checked,
        oracle_mismatches,
        first_oracle_mismatch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rlibm-certify-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn sweep_finds_planted_mismatches_in_order() {
        // shard 3 of 2^16-sized shards covers 0x0003_0000..0x0004_0000.
        let fast = |b: u32| if b == 0x0003_0102 || b == 0x0003_0101 { !b } else { b };
        let v = sweep_shard(3, 16, 4, fast, |b: u32| b, None).expect("sweep");
        assert_eq!(v.mismatches, 2);
        assert_eq!(v.first_mismatch, Some(0x0003_0101));
        assert_eq!(v.oracle_checked, 0);
        assert!(!v.clean());

        let clean = sweep_shard(3, 16, 4, |b: u32| b, |b: u32| b, None).expect("sweep");
        assert_eq!(clean.mismatches, 0);
        assert!(clean.clean());
    }

    #[test]
    fn oracle_spot_check_is_deterministic_and_counts() {
        let budget = OracleBudget { oracle: &|b: u32| b ^ 1, samples: 40, seed: 7 };
        let v1 = sweep_shard(0, 16, 1, |b: u32| b, |b: u32| b, Some(&budget)).expect("sweep");
        let v2 = sweep_shard(0, 16, 4, |b: u32| b, |b: u32| b, Some(&budget)).expect("sweep");
        assert_eq!(v1, v2, "oracle sampling must not depend on thread count");
        assert_eq!(v1.oracle_checked, 40);
        assert_eq!(v1.oracle_mismatches, 40);
        assert!(v1.first_oracle_mismatch.is_some());
        assert_eq!(v1.mismatches, 0);
    }

    #[test]
    fn state_roundtrip_resume_and_ranges() {
        let dir = tmpdir("roundtrip");
        let mut st = CertState::new("exp", "float32", 24).expect("state");
        assert_eq!(st.shard_count(), 256);
        assert_eq!(st.remaining().len(), 256);
        assert_eq!(st.done_ranges(), "-");
        for shard in [0u32, 1, 2, 7, 255] {
            st.record(ShardVerdict {
                shard,
                mismatches: if shard == 7 { 3 } else { 0 },
                first_mismatch: (shard == 7).then_some(0x0700_0001),
                oracle_checked: 16,
                oracle_mismatches: 0,
                first_oracle_mismatch: None,
            })
            .expect("record");
        }
        st.save(&dir).expect("save");
        assert_eq!(st.done_ranges(), "0-2,7,255");

        let back = CertState::load_or_new(&dir, "exp", "float32", 24).expect("load");
        assert_eq!(back.remaining().len(), 251);
        assert!(!back.remaining().contains(&7));
        assert_eq!(back.verdict(7).and_then(|v| v.first_mismatch), Some(0x0700_0001));
        let s = back.summary();
        assert_eq!(s.shards_done, 5);
        assert_eq!(s.inputs_checked, 5 << 24);
        assert_eq!(s.mismatches, 3);
        assert_eq!(s.first_mismatch, Some(0x0700_0001));
        assert_eq!(s.oracle_checked, 80);
        assert_eq!(s.status(), "partial");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_is_removed_on_load() {
        let dir = tmpdir("staletmp");
        let st = CertState::new("ln", "float32", 24).expect("state");
        let tmp = st.checkpoint_path(&dir).with_extension("tmp");
        std::fs::write(&tmp, "torn half-write").expect("plant tmp");
        let loaded = CertState::load_or_new(&dir, "ln", "float32", 24).expect("load");
        assert!(!tmp.exists(), "stale tmp must be cleaned up");
        assert_eq!(loaded.remaining().len(), 256);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_binding_mismatches_are_typed() {
        let dir = tmpdir("mismatch");
        let mut st = CertState::new("ln", "float32", 24).expect("state");
        st.record(ShardVerdict {
            shard: 0,
            mismatches: 0,
            first_mismatch: None,
            oracle_checked: 0,
            oracle_mismatches: 0,
            first_oracle_mismatch: None,
        })
        .expect("record");
        let path = st.save(&dir).expect("save");

        // Same file, different binding: shard size.
        let err = CertState::load_or_new(&dir, "ln", "float32", 20).unwrap_err();
        assert!(matches!(err, CertError::Checkpoint(_)), "got {err:?}");
        assert!(err.to_string().contains("different sweep"), "{err}");

        // Future format version.
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, text.replacen("rlibm-cert v1", "rlibm-cert v9", 1))
            .expect("rewrite");
        let err = CertState::load_or_new(&dir, "ln", "float32", 24).unwrap_err();
        assert!(err.to_string().contains("unsupported checkpoint version"), "{err}");

        // Garbled verdict line.
        std::fs::write(
            &path,
            format!("{CERT_MAGIC} kind=float32 func=ln shard_bits=24 shards=256\nzz zz zz\n"),
        )
        .expect("rewrite");
        let err = CertState::load_or_new(&dir, "ln", "float32", 24).unwrap_err();
        assert!(matches!(err, CertError::Checkpoint(_)), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_bits_and_indices_are_validated() {
        assert!(CertState::new("ln", "float32", 4).is_err());
        assert!(CertState::new("ln", "float32", 33).is_err());
        let mut st = CertState::new("ln", "float32", 24).expect("state");
        let v = ShardVerdict {
            shard: 256,
            mismatches: 0,
            first_mismatch: None,
            oracle_checked: 0,
            oracle_mismatches: 0,
            first_oracle_mismatch: None,
        };
        assert!(st.record(v).is_err());
        assert!(sweep_shard(256, 24, 1, |b: u32| b, |b: u32| b, None).is_err());
    }
}
