//! Reduced rounding intervals (Algorithm 2, `ReducedIntervals`).
//!
//! Range reduction turns the original input `x` into a reduced input `r`,
//! and output compensation `OC` reconstructs `f(x)` from the values of one
//! or more elementary functions at `r` (e.g. `sinpi(x)` needs both
//! `sinpi(R)` and `cospi(R)` — the paper's headline multi-function case).
//! The generator must know how much *freedom* each `f_i(r)` has: the
//! largest interval around the correctly rounded `RN_H(f_i(r))` such that
//! output compensation still lands inside `x`'s rounding interval.
//!
//! The paper widens the lower bounds of all component functions
//! simultaneously (then the upper bounds), which is sound when `OC` is
//! monotone in its function arguments; it suggests binary search for
//! efficiency. We implement exactly that: the step count `n` is searched
//! over f64 order keys, moving every `v_i` by `n` ulps at once.

use crate::interval::Interval;
use rlibm_fp::bits::{f64_from_order_key, f64_order_key};

/// A reduced-input constraint: the polynomial for one component function
/// must produce a value inside `interval` at reduced input `r`.
#[derive(Debug, Clone, Copy)]
pub struct ReducedConstraint {
    /// The reduced input (in `H = f64`).
    pub r: f64,
    /// The freedom interval for this component function at `r`.
    pub interval: Interval,
}

/// Everything the deduction needs to know about one original input.
#[derive(Debug, Clone)]
pub struct ReductionCase {
    /// The original input (widened to f64).
    pub x: f64,
    /// The rounding interval of the correctly rounded `f(x)`.
    pub target: Interval,
    /// The reduced input `RR_H(x)`.
    pub r: f64,
    /// The correctly rounded double value `RN_H(f_i(r))` for each
    /// component function.
    pub component_values: Vec<f64>,
}

/// Error cases of the deduction, mirroring the paper's failure exits.
#[derive(Debug, Clone, PartialEq)]
pub enum ReducedError {
    /// Output compensation at the correctly rounded component values does
    /// not land in the target interval: the range reduction must be
    /// redesigned or `H` needs more precision (Algorithm 2, line 8).
    CenterMisses {
        /// The offending original input.
        x: f64,
    },
    /// Two original inputs mapping to the same reduced input have disjoint
    /// freedom intervals (Section 3.2's "no common interval" case).
    EmptyIntersection {
        /// The reduced input with conflicting requirements.
        r: f64,
        /// Index of the component function.
        component: usize,
    },
}

/// Deduces, for each component function, the per-`x` freedom intervals.
///
/// `oc` evaluates output compensation in `H`: given candidate values for
/// each component function (same order as `component_values`) and the
/// original input, it returns the compensated result. It must be monotone
/// in the candidate vector direction (all lowered or all raised together),
/// which holds for every range reduction in the paper.
///
/// Returns one `Vec<ReducedConstraint>` per component function, aligned
/// with `cases` (one entry per original input; intersection of duplicates
/// is a separate step, [`merge_by_reduced_input`]).
pub fn deduce_reduced_intervals(
    cases: &[ReductionCase],
    oc: &dyn Fn(&[f64], f64) -> f64,
) -> Result<Vec<Vec<ReducedConstraint>>, ReducedError> {
    let n_funcs = cases.first().map_or(0, |c| c.component_values.len());
    let mut out: Vec<Vec<ReducedConstraint>> = vec![Vec::with_capacity(cases.len()); n_funcs];
    for case in cases {
        assert_eq!(case.component_values.len(), n_funcs, "ragged component values");
        let center = oc(&case.component_values, case.x);
        if !case.target.contains(center) {
            return Err(ReducedError::CenterMisses { x: case.x });
        }
        let keys: Vec<i64> = case.component_values.iter().map(|&v| f64_order_key(v)).collect();
        let probe = |delta: i64| -> bool {
            let vals: Vec<f64> = keys.iter().map(|&k| f64_from_order_key(k + delta)).collect();
            let y = oc(&vals, case.x);
            !y.is_nan() && case.target.contains(y)
        };
        let down = widen(&probe, -1);
        let up = widen(&probe, 1);
        for (i, &k) in keys.iter().enumerate() {
            let lo = f64_from_order_key(k - down);
            let hi = f64_from_order_key(k + up);
            out[i].push(ReducedConstraint {
                r: case.r,
                interval: Interval::new(lo, hi),
            });
        }
    }
    Ok(out)
}

/// Finds the largest `n >= 0` such that `probe(dir * m)` holds for all
/// `m <= n`, by exponential growth + binary search (the probe is monotone
/// because OC is). Capped so the moved values stay finite.
fn widen(probe: &dyn Fn(i64) -> bool, dir: i64) -> i64 {
    if !probe(dir) {
        return 0;
    }
    // Exponential phase.
    let mut good = 1i64;
    let cap = 1i64 << 52; // plenty: 2^52 ulps of freedom never happens
    while good < cap && probe(dir * good * 2) {
        good *= 2;
    }
    // Binary phase in (good, good*2).
    let mut lo = good;
    let mut hi = (good * 2).min(cap);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(dir * mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Merges constraints that share a reduced input by intersecting their
/// intervals (Section 3.2). The result is sorted by `r` and deduplicated.
pub fn merge_by_reduced_input(
    constraints: &[ReducedConstraint],
    component: usize,
) -> Result<Vec<ReducedConstraint>, ReducedError> {
    let mut sorted: Vec<ReducedConstraint> = constraints.to_vec();
    sorted.sort_by(|a, b| {
        f64_order_key(a.r).cmp(&f64_order_key(b.r))
    });
    let mut out: Vec<ReducedConstraint> = Vec::with_capacity(sorted.len());
    for c in sorted {
        match out.last_mut() {
            Some(last) if last.r.to_bits() == c.r.to_bits() => {
                match last.interval.intersect(&c.interval) {
                    Some(iv) => last.interval = iv,
                    None => {
                        return Err(ReducedError::EmptyIntersection { r: c.r, component })
                    }
                }
            }
            _ => out.push(c),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::rounding_interval;
    use rlibm_fp::bits::{next_down_f64, next_up_f64};

    /// Identity "range reduction": OC is just the value itself. The
    /// deduced interval must then BE the rounding interval.
    #[test]
    fn identity_oc_recovers_rounding_interval() {
        let y = 0.7654321f32; // arbitrary target
        let target = rounding_interval(y).unwrap();
        let v = y as f64; // pretend RN_H(f(r)) = y exactly
        let cases = vec![ReductionCase {
            x: 1.0,
            target,
            r: 1.0,
            component_values: vec![v],
        }];
        let res = deduce_reduced_intervals(&cases, &|vals, _x| vals[0]).unwrap();
        let iv = res[0][0].interval;
        assert_eq!(iv.lo, target.lo);
        assert_eq!(iv.hi, target.hi);
    }

    /// OC with a scale factor: freedom shrinks proportionally.
    #[test]
    fn scaling_oc_shrinks_freedom() {
        let target = Interval::new(100.0 - 0.5, 100.0 + 0.5);
        let cases = vec![ReductionCase {
            x: 0.0,
            target,
            r: 0.0,
            component_values: vec![1.0],
        }];
        // OC multiplies by 100: 1 unit of freedom in f_i is 100 units in y.
        let res = deduce_reduced_intervals(&cases, &|vals, _| vals[0] * 100.0).unwrap();
        let iv = res[0][0].interval;
        assert!(iv.contains(1.0));
        assert!((iv.hi - 1.0 - 0.005).abs() < 1e-9, "hi = {}", iv.hi);
        assert!((1.0 - iv.lo - 0.005).abs() < 1e-9, "lo = {}", iv.lo);
    }

    /// Decreasing OC still works: the membership probe doesn't care about
    /// direction.
    #[test]
    fn decreasing_oc() {
        let target = Interval::new(-1.1, -0.9);
        let cases = vec![ReductionCase {
            x: 0.0,
            target,
            r: 0.0,
            component_values: vec![1.0],
        }];
        let res = deduce_reduced_intervals(&cases, &|vals, _| -vals[0]).unwrap();
        let iv = res[0][0].interval;
        assert!((iv.lo - 0.9).abs() < 1e-12 && (iv.hi - 1.1).abs() < 1e-12);
    }

    /// Two component functions widened simultaneously (the sinpi/cospi
    /// shape: y = a*s + b*c).
    #[test]
    fn two_component_oc() {
        let target = Interval::new(1.0 - 1e-3, 1.0 + 1e-3);
        let cases = vec![ReductionCase {
            x: 0.25,
            target,
            r: 0.25,
            component_values: vec![0.5, 0.5],
        }];
        // y = s + c = 1.0 at the center.
        let res = deduce_reduced_intervals(&cases, &|vals, _| vals[0] + vals[1]).unwrap();
        let s_iv = res[0][0].interval;
        let c_iv = res[1][0].interval;
        // Moving both by n ulps moves y by ~2n ulps of 0.5 = n ulps of 1.0:
        // each function gets roughly half the target's freedom.
        assert!(s_iv.contains(0.5) && c_iv.contains(0.5));
        assert!(s_iv.width() > 4e-4 && s_iv.width() < 1.1e-3);
        assert!(c_iv.width() > 4e-4 && c_iv.width() < 1.1e-3);
    }

    #[test]
    fn center_miss_is_reported() {
        let target = Interval::new(5.0, 6.0);
        let cases = vec![ReductionCase {
            x: 42.0,
            target,
            r: 0.0,
            component_values: vec![1.0],
        }];
        let err = deduce_reduced_intervals(&cases, &|vals, _| vals[0]).unwrap_err();
        assert_eq!(err, ReducedError::CenterMisses { x: 42.0 });
    }

    #[test]
    fn merge_intersects_duplicates() {
        let a = ReducedConstraint { r: 0.5, interval: Interval::new(1.0, 3.0) };
        let b = ReducedConstraint { r: 0.5, interval: Interval::new(2.0, 4.0) };
        let c = ReducedConstraint { r: 0.25, interval: Interval::new(0.0, 1.0) };
        let merged = merge_by_reduced_input(&[a, b, c], 0).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].r, 0.25);
        assert_eq!(merged[1].interval, Interval::new(2.0, 3.0));
    }

    #[test]
    fn merge_reports_conflicts() {
        let a = ReducedConstraint { r: 0.5, interval: Interval::new(1.0, 2.0) };
        let b = ReducedConstraint { r: 0.5, interval: Interval::new(3.0, 4.0) };
        let err = merge_by_reduced_input(&[a, b], 7).unwrap_err();
        assert_eq!(err, ReducedError::EmptyIntersection { r: 0.5, component: 7 });
    }

    #[test]
    fn widen_is_tight() {
        // Probe true exactly for |delta| <= 1000.
        let probe = |d: i64| d.abs() <= 1000;
        assert_eq!(widen(&probe, 1), 1000);
        assert_eq!(widen(&probe, -1), 1000);
        let never = |_: i64| false;
        assert_eq!(widen(&never, 1), 0);
    }

    #[test]
    fn deduced_bounds_are_maximal() {
        // The endpoint must be in, one past must be out.
        let y = 2.5f32;
        let target = rounding_interval(y).unwrap();
        let cases = vec![ReductionCase {
            x: 2.5,
            target,
            r: 2.5,
            component_values: vec![2.5],
        }];
        let res = deduce_reduced_intervals(&cases, &|v, _| v[0] * (1.0 + 1e-13)).unwrap();
        let iv = res[0][0].interval;
        let oc = |v: f64| v * (1.0 + 1e-13);
        assert!(target.contains(oc(iv.lo)));
        assert!(target.contains(oc(iv.hi)));
        assert!(!target.contains(oc(next_down_f64(iv.lo))));
        assert!(!target.contains(oc(next_up_f64(iv.hi))));
    }
}
