//! Arbitrary-precision mathematical constants.
//!
//! Computed on demand with integer (fixed-point) series and cached per
//! precision. Each constant is returned correctly rounded to the requested
//! precision with at most 1 ulp of error (the fixed-point computation
//! carries 64 guard bits).

use crate::biguint::BigUint;
use crate::float::MpFloat;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

const GUARD: u32 = 64;

#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum Which {
    Ln2,
    Ln10,
    Pi,
}

fn cache() -> &'static Mutex<HashMap<(Which, u32), MpFloat>> {
    static CACHE: OnceLock<Mutex<HashMap<(Which, u32), MpFloat>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cached(which: Which, prec: u32, compute: impl FnOnce(u32) -> MpFloat) -> MpFloat {
    // A poisoned lock only means another thread panicked mid-insert; the
    // map still holds only fully computed constants, so recover it.
    if let Some(v) = cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&(which, prec))
    {
        return v.clone();
    }
    let v = compute(prec);
    cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert((which, prec), v.clone());
    v
}

/// `ln 2` to `prec` bits (error < 1 ulp).
///
/// Series: `ln 2 = sum_{k>=1} 1 / (k 2^k)`, one bit per term.
pub fn ln2(prec: u32) -> MpFloat {
    cached(Which::Ln2, prec, |prec| {
        let f = (prec + GUARD) as u64; // fixed-point fraction bits
        let mut sum = BigUint::zero();
        for k in 1..=f {
            // floor(2^f / (k 2^k)) = floor(2^(f-k) / k)
            let (t, _) = BigUint::one().shl(f - k).div_rem_u64(k);
            if t.is_zero() {
                break;
            }
            sum = sum.add(&t);
        }
        MpFloat::normalize_round(false, -(f as i64), sum, prec, true)
    })
}

/// `ln 10` to `prec` bits (error < 1 ulp).
///
/// `ln 10 = 3 ln 2 + ln(5/4)` with `ln(5/4) = 2 atanh(1/9)`.
pub fn ln10(prec: u32) -> MpFloat {
    cached(Which::Ln10, prec, |prec| {
        let f = (prec + GUARD) as u64;
        // 2 atanh(1/9) = sum_k 2 / ((2k+1) 9^(2k+1))
        let mut sum = BigUint::zero();
        let mut pow9 = BigUint::from_u64(9);
        let mut k = 0u64;
        loop {
            let denom_small = 2 * k + 1;
            let num = BigUint::one().shl(f + 1);
            let (t1, _) = num.div_rem(&pow9);
            let (t, _) = t1.div_rem_u64(denom_small);
            if t.is_zero() {
                break;
            }
            sum = sum.add(&t);
            pow9 = pow9.mul_u64(81);
            k += 1;
        }
        let ln54 = MpFloat::normalize_round(false, -(f as i64), sum, prec + GUARD, true);
        let three_ln2 = ln2(prec + GUARD).mul_u64(3, prec + GUARD);
        three_ln2.add(&ln54, prec)
    })
}

/// `pi` to `prec` bits (error < 1 ulp).
///
/// Machin's formula: `pi = 16 atan(1/5) - 4 atan(1/239)`.
pub fn pi(prec: u32) -> MpFloat {
    cached(Which::Pi, prec, |prec| {
        let f = (prec + GUARD) as u64;
        let a5 = atan_inv_fixed(5, f);
        let a239 = atan_inv_fixed(239, f);
        
        a5.mul_u64(16, prec + GUARD).sub(&a239.mul_u64(4, prec + GUARD), prec)
    })
}

/// `atan(1/x)` as an `MpFloat`, computed in fixed point with `f` fraction
/// bits: `sum_k (-1)^k / ((2k+1) x^(2k+1))`.
fn atan_inv_fixed(x: u64, f: u64) -> MpFloat {
    let x2 = x * x; // fits: x <= 239
    let mut pos = BigUint::zero();
    let mut neg = BigUint::zero();
    let mut powx = BigUint::from_u64(x);
    let mut k = 0u64;
    loop {
        let num = BigUint::one().shl(f);
        let (t1, _) = num.div_rem(&powx);
        let (t, _) = t1.div_rem_u64(2 * k + 1);
        if t.is_zero() {
            break;
        }
        if k.is_multiple_of(2) {
            pos = pos.add(&t);
        } else {
            neg = neg.add(&t);
        }
        powx = powx.mul_u64(x2);
        k += 1;
    }
    let sum = pos.sub(&neg);
    MpFloat::normalize_round(false, -(f as i64), sum, (f - 8) as u32, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln2_matches_f64() {
        assert_eq!(ln2(64).to_f64(), core::f64::consts::LN_2);
        assert_eq!(ln2(256).to_f64(), core::f64::consts::LN_2);
    }

    #[test]
    fn ln10_matches_f64() {
        assert_eq!(ln10(128).to_f64(), core::f64::consts::LN_10);
    }

    #[test]
    fn pi_matches_f64() {
        assert_eq!(pi(128).to_f64(), core::f64::consts::PI);
    }

    #[test]
    fn constants_consistent_across_precisions() {
        // The 128-bit value must be a prefix of the 512-bit value: their
        // difference is below 1 ulp of the coarser precision.
        for (lo, hi) in [(ln2(128), ln2(512)), (ln10(128), ln10(512)), (pi(128), pi(512))] {
            let diff = lo.sub(&hi, 128).abs();
            if !diff.is_zero() {
                // |diff| < 2^(msb(lo) - 127)
                assert!(diff.msb_pos() < lo.msb_pos() - 126);
            }
        }
    }

    #[test]
    fn known_bits_of_pi() {
        // pi's significand in hex is 3.243F6A8885A308D313198A2E037073... ;
        // normalized to [1, 2) the top 64 mantissa bits are
        // 0xC90FDAA22168C234 (this is the value used in hardware tables).
        let p = pi(64);
        let via_f64 = p.to_f64();
        assert_eq!(via_f64, core::f64::consts::PI);
        // Pin the full 64-bit mantissa, not just the f64 projection:
        // pi rounded to 64 bits = 0xC90FDAA22168C235 * 2^-62 (the 64th bit
        // rounds up: the next bits are 1100...).
        let exact = MpFloat::normalize_round(
            false,
            -62,
            BigUint::from_u64(0xC90FDAA22168C235),
            64,
            false,
        );
        assert!(p.sub(&exact, 64).is_zero());
    }
}
