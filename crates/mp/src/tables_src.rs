//! The single source of truth for the kernel lookup tables and
//! double-double constants shipped in `rlibm-math`.
//!
//! Two consumers share this module: the `gen_tables` bin (human-readable
//! reference dump) and `crates/libm/build.rs` (the bit-packed tables the
//! runtime actually links, pinned by a committed checksum). Every entry
//! is computed with the multi-precision oracle at the caller's precision
//! (160 bits in both consumers) and decomposed into a hi/lo double pair
//! (`hi = RN(v)`, `lo = RN(v - hi)`), so the pair represents the true
//! value to ~2^-106 relative error.

use crate::{consts, elem, MpFloat};

/// One hi/lo pair per table slot, plus the named scalar constants in a
/// fixed emission order (the checksum hashes them in this order).
pub struct TableData {
    /// `2^(j/64)` for `j in 0..64`.
    pub exp2_64: Vec<(f64, f64)>,
    /// `ln(1 + j/128)` for `j in 0..=128` (`j == 0` is exactly zero).
    pub ln_f: Vec<(f64, f64)>,
    /// `log2(1 + j/128)` for `j in 0..=128`.
    pub log2_f: Vec<(f64, f64)>,
    /// `log10(1 + j/128)` for `j in 0..=128`.
    pub log10_f: Vec<(f64, f64)>,
    /// `sin(pi n/512)` for `n in 0..=256`.
    pub sinpi_t: Vec<(f64, f64)>,
    /// `cos(pi n/512)` for `n in 0..=256`. Bit-for-bit the mirror of
    /// `sinpi_t` (`cospi_t[n] == sinpi_t[256 - n]`); kept here so both
    /// consumers can verify the identity before relying on it.
    pub cospi_t: Vec<(f64, f64)>,
    /// `(name, doc, value)` scalar constants, emission order.
    pub consts: Vec<(&'static str, &'static str, f64)>,
}

fn dd(v: &MpFloat, prec: u32) -> (f64, f64) {
    let hi = v.to_f64();
    let lo = v.sub(&MpFloat::from_f64(hi, prec), prec).to_f64();
    (hi, lo)
}

/// Computes every table and constant at `prec` bits.
pub fn compute(prec: u32) -> TableData {
    let exp2_64: Vec<(f64, f64)> = (0..64)
        .map(|j| dd(&elem::exp2(j as f64 / 64.0, prec), prec))
        .collect();

    let mut ln_f = Vec::with_capacity(129);
    let mut log2_f = Vec::with_capacity(129);
    let mut log10_f = Vec::with_capacity(129);
    for j in 0..=128 {
        let f = 1.0 + j as f64 / 128.0;
        if j == 0 {
            let z = MpFloat::zero(prec);
            ln_f.push(dd(&z, prec));
            log2_f.push(dd(&z, prec));
            log10_f.push(dd(&z, prec));
        } else {
            ln_f.push(dd(&elem::ln(f, prec), prec));
            log2_f.push(dd(&elem::log2(f, prec), prec));
            log10_f.push(dd(&elem::log10(f, prec), prec));
        }
    }

    let sinpi_t: Vec<(f64, f64)> = (0..=256)
        .map(|n| dd(&elem::sinpi(n as f64 / 512.0, prec), prec))
        .collect();
    let cospi_t: Vec<(f64, f64)> = (0..=256)
        .map(|n| dd(&elem::cospi(n as f64 / 512.0, prec), prec))
        .collect();

    let ln2 = consts::ln2(prec);
    let ln10 = consts::ln10(prec);
    let pi = consts::pi(prec);
    let one = MpFloat::from_u64(1, prec);
    let inv_ln2 = one.div(&ln2, prec);
    let inv_ln10 = one.div(&ln10, prec);
    let log10_2 = ln2.div(&ln10, prec);

    // ln2/64 split into an exact 39-bit head (so `k * LN2_64_HI` with
    // |k| < 2^14 is exact) plus two corrections.
    let ln2_64 = ln2.mul_pow2(-6);
    let hi39 = ln2_64.round(39);
    let rest = ln2_64.sub(&hi39, prec);
    let (mid, _) = dd(&rest, prec);
    let rest2 = rest.sub(&MpFloat::from_f64(mid, prec), prec);

    // Same split for ln2 itself at 42 bits (the log kernels' `e * LN2`).
    let ln2_hi42 = ln2.round(42);
    let ln2_rest = ln2.sub(&ln2_hi42, prec);
    let (ln2_mid, _) = dd(&ln2_rest, prec);
    let ln2_rest2 = ln2_rest.sub(&MpFloat::from_f64(ln2_mid, prec), prec);

    let pi2 = pi.mul(&pi, prec);
    let pi3 = pi2.mul(&pi, prec);
    let pi4 = pi2.mul(&pi2, prec);
    let pi5 = pi4.mul(&pi, prec);
    let pi6 = pi4.mul(&pi2, prec);
    let pi7 = pi6.mul(&pi, prec);

    let (ln2_hi, ln2_lo) = dd(&ln2, prec);
    let (ln10_hi, ln10_lo) = dd(&ln10, prec);
    let (pi_hi, pi_lo) = dd(&pi, prec);
    let (inv_ln2_hi, inv_ln2_lo) = dd(&inv_ln2, prec);
    let (inv_ln10_hi, inv_ln10_lo) = dd(&inv_ln10, prec);
    let (log10_2_hi, log10_2_lo) = dd(&log10_2, prec);
    let (cospi_c2_hi, cospi_c2_lo) = dd(&pi2.mul_pow2(-1).neg(), prec);

    let consts = vec![
        ("LN2_HI", "`ln 2` (hi part).", ln2_hi),
        ("LN2_LO", "`ln 2` (lo part; hi + lo is exact to ~2^-106).", ln2_lo),
        ("LN10_HI", "`ln 10` (hi part).", ln10_hi),
        ("LN10_LO", "`ln 10` (lo part; hi + lo is exact to ~2^-106).", ln10_lo),
        ("PI_HI", "`pi` (hi part).", pi_hi),
        ("PI_LO", "`pi` (lo part; hi + lo is exact to ~2^-106).", pi_lo),
        ("INV_LN2_HI", "`1 / ln 2` (hi part).", inv_ln2_hi),
        ("INV_LN2_LO", "`1 / ln 2` (lo part; hi + lo is exact to ~2^-106).", inv_ln2_lo),
        ("INV_LN10_HI", "`1 / ln 10` (hi part).", inv_ln10_hi),
        ("INV_LN10_LO", "`1 / ln 10` (lo part; hi + lo is exact to ~2^-106).", inv_ln10_lo),
        ("LOG10_2_HI", "`log10(2) = ln2 / ln10` (hi part).", log10_2_hi),
        ("LOG10_2_LO", "`log10(2)` (lo part; hi + lo is exact to ~2^-106).", log10_2_lo),
        (
            "LN2_64_HI",
            "`ln2/64` rounded to 39 bits: `k * LN2_64_HI` is exact for `|k| < 2^14`.",
            hi39.to_f64(),
        ),
        ("LN2_64_MID", "`ln2/64 - LN2_64_HI`, first correction.", mid),
        ("LN2_64_LO", "`ln2/64 - LN2_64_HI - LN2_64_MID`, second correction.", rest2.to_f64()),
        (
            "LN2_HI42",
            "`ln 2` rounded to 42 bits: `e * LN2_HI42` is exact for `|e| < 2^11`.",
            ln2_hi42.to_f64(),
        ),
        ("LN2_MID", "`ln2 - LN2_HI42`, first correction.", ln2_mid),
        ("LN2_LO42", "`ln2 - LN2_HI42 - LN2_MID`, second correction.", ln2_rest2.to_f64()),
        (
            "SINPI_C3",
            "`-pi^3/6` (sinpi cubic coefficient).",
            pi3.div_u64(6, prec).neg().to_f64(),
        ),
        ("SINPI_C5", "`pi^5/120`.", pi5.div_u64(120, prec).to_f64()),
        ("SINPI_C7", "`-pi^7/5040`.", pi7.div_u64(5040, prec).neg().to_f64()),
        ("COSPI_C2_HI", "`-pi^2/2` (cospi quadratic coefficient) (hi part).", cospi_c2_hi),
        (
            "COSPI_C2_LO",
            "`-pi^2/2` (lo part; hi + lo is exact to ~2^-106).",
            cospi_c2_lo,
        ),
        ("COSPI_C4", "`pi^4/24`.", pi4.div_u64(24, prec).to_f64()),
        ("COSPI_C6", "`-pi^6/720`.", pi6.div_u64(720, prec).neg().to_f64()),
        (
            "LOG2_10",
            "`log2(10)` (plain double; only steers integer k).",
            ln10.div(&ln2, prec).to_f64(),
        ),
        (
            "LOG2_E",
            "`log2(e)` (plain double; only steers integer k).",
            one.div(&ln2, prec).to_f64(),
        ),
    ];

    TableData { exp2_64, ln_f, log2_f, log10_f, sinpi_t, cospi_t, consts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_anchor_values() {
        let t = compute(96);
        assert_eq!(t.exp2_64.len(), 64);
        assert_eq!(t.ln_f.len(), 129);
        assert_eq!(t.sinpi_t.len(), 257);
        assert_eq!(t.exp2_64[0], (1.0, 0.0));
        assert_eq!(t.ln_f[0], (0.0, 0.0));
        assert_eq!(t.sinpi_t[256].0, 1.0);
        // cospi is the bit-exact mirror of sinpi — the packing relies on it.
        for n in 0..=256 {
            assert_eq!(t.cospi_t[n].0.to_bits(), t.sinpi_t[256 - n].0.to_bits(), "hi at {n}");
            assert_eq!(t.cospi_t[n].1.to_bits(), t.sinpi_t[256 - n].1.to_bits(), "lo at {n}");
        }
        let pi_hi = t.consts.iter().find(|c| c.0 == "PI_HI").map(|c| c.2);
        assert_eq!(pi_hi, Some(core::f64::consts::PI));
    }
}
