//! Arbitrary-precision unsigned integers.
//!
//! A minimal, dependency-free bignum tailored to what the RLIBM-32 pipeline
//! needs: mantissa arithmetic for [`crate::MpFloat`] (add/sub/mul/div/shift
//! on numbers of a few thousand bits) and exact rational arithmetic for the
//! LP solver. Little-endian `u64` limbs, canonical form (no trailing zero
//! limbs).
//!
//! Two generation-hot-path optimizations (DESIGN.md "Generator
//! performance"):
//!
//! * **Inline small values.** The exact simplex churns through rationals
//!   whose components overwhelmingly fit in one or two limbs, and the Ziv
//!   oracle's working precision starts at 128 bits — whose products,
//!   guard-shifted sums and normalization shifts are 129–256 bits wide.
//!   Storing 0–4 limbs directly in the struct ([`Repr::Inline`]) keeps all
//!   of those off the heap. The representation is canonical — any value
//!   that fits [`INLINE_LIMBS`] limbs is *always* `Inline`, so structural
//!   equality over the limb slice is value equality.
//! * **Karatsuba multiplication** above [`KARATSUBA_THRESHOLD`] limbs
//!   (the Ziv oracle's `MpFloat` mantissas reach thousands of bits at
//!   high precisions); schoolbook below, where simplicity beats
//!   asymptotics.

use core::cmp::Ordering;

/// Limbs stored without allocation. Four limbs cover every 256-bit value:
/// the LP-intermediate rational components (overwhelmingly 1–2 limbs) and
/// the Ziv oracle's entire 128-bit-precision working set, including the
/// double-width mantissa products it normalizes back down. Two limbs put
/// the oracle's mantissas exactly *at* the boundary, so every product
/// heap-allocated (the PR-5 `ns_oracle` regression); four puts the whole
/// first Ziv round inside it.
const INLINE_LIMBS: usize = 4;

/// Operands with at least this many limbs on both sides multiply via
/// Karatsuba; below it, schoolbook wins on constant factors.
const KARATSUBA_THRESHOLD: usize = 32;

/// Canonical limb storage: values of at most [`INLINE_LIMBS`] limbs are
/// always `Inline` (unused inline limbs are zero); `Heap` vectors always
/// have more than [`INLINE_LIMBS`] limbs with a nonzero top limb.
#[derive(Debug, Clone)]
enum Repr {
    Inline { len: u8, limbs: [u64; INLINE_LIMBS] },
    Heap(Vec<u64>),
}

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use rlibm_mp::BigUint;
/// let a = BigUint::from_u64(u64::MAX);
/// let b = &a * &a;
/// let (q, r) = b.div_rem(&a);
/// assert_eq!(q, a);
/// assert!(r.is_zero());
/// ```
#[derive(Debug, Clone)]
pub struct BigUint {
    repr: Repr,
}

impl Default for BigUint {
    fn default() -> Self {
        Self::zero()
    }
}

impl PartialEq for BigUint {
    fn eq(&self, other: &Self) -> bool {
        self.limbs() == other.limbs()
    }
}

impl Eq for BigUint {}

impl core::hash::Hash for BigUint {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.limbs().hash(state);
    }
}

/// Drops high zero limbs from a slice view.
fn trim(mut s: &[u64]) -> &[u64] {
    while let Some((&0, rest)) = s.split_last() {
        s = rest;
    }
    s
}

/// Schoolbook product into a zeroed buffer of exactly `a.len() + b.len()`
/// limbs (the fixed-scratch and heap paths share this core).
fn mul_schoolbook_into(out: &mut [u64], a: &[u64], b: &[u64]) {
    for (i, &x) in a.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let t = x as u128 * y as u128 + out[i + j] as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
}

/// Schoolbook product of two normalized limb slices.
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    mul_schoolbook_into(&mut out, a, b);
    out
}

/// `out = a + b` over raw limbs into a zeroed buffer one limb longer than
/// the longer operand.
fn add_limbs_into(out: &mut [u64], a: &[u64], b: &[u64]) {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut carry = 0u64;
    for (i, &x) in long.iter().enumerate() {
        let y = short.get(i).copied().unwrap_or(0);
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        out[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    out[long.len()] = carry;
}

/// `a + b` over raw limb slices (result may carry one extra limb).
fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len().max(b.len()) + 1];
    add_limbs_into(&mut out, a, b);
    out
}

/// `out = limbs << (64*limb_shift + bit_shift)` into a zeroed buffer of
/// exactly `limbs.len() + limb_shift + 1` limbs.
fn shl_into(out: &mut [u64], limbs: &[u64], limb_shift: usize, bit_shift: u32) {
    for (i, &l) in limbs.iter().enumerate() {
        out[i + limb_shift] |= l << bit_shift;
        if bit_shift > 0 {
            out[i + limb_shift + 1] |= l >> (64 - bit_shift);
        }
    }
}

/// `out = src >> bit_shift` (sub-limb shift only) into a buffer of exactly
/// `src.len()` limbs.
fn shr_into(out: &mut [u64], src: &[u64], bit_shift: u32) {
    for i in 0..src.len() {
        out[i] = src[i] >> bit_shift;
        if bit_shift > 0 && i + 1 < src.len() {
            out[i] |= src[i + 1] << (64 - bit_shift);
        }
    }
}

/// `out = limbs / d`, returning the remainder; `out` is exactly
/// `limbs.len()` limbs and `d` is nonzero.
fn div_limbs_u64_into(out: &mut [u64], limbs: &[u64], d: u64) -> u64 {
    let mut rem = 0u128;
    for i in (0..limbs.len()).rev() {
        let cur = (rem << 64) | limbs[i] as u128;
        out[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    rem as u64
}

/// `a -= b` over raw limbs; requires `a >= b` as integers.
fn sub_limbs_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, slot) in a.iter_mut().enumerate() {
        let y = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = slot.overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *slot = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0, "limb subtraction underflow");
}

/// `acc[shift..] += x`, propagating the carry inside `acc` (the caller
/// sizes `acc` so the carry cannot run off the end).
fn add_into(acc: &mut [u64], x: &[u64], shift: usize) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < x.len() || carry > 0 {
        let y = x.get(i).copied().unwrap_or(0);
        let slot = &mut acc[shift + i];
        let (s1, c1) = slot.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        *slot = s2;
        carry = (c1 as u64) + (c2 as u64);
        i += 1;
    }
}

/// Karatsuba above the threshold, schoolbook below. Inputs normalized;
/// output may have high zero limbs (callers re-normalize).
fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    // Split both operands at half the shorter one so every quarter is
    // nonempty: a = a1·2^(64m) + a0, b likewise, then the three-product
    // identity a·b = z2·2^(128m) + (z1 - z2 - z0)·2^(64m) + z0 with
    // z1 = (a0+a1)(b0+b1).
    let m = a.len().min(b.len()) / 2;
    let (a0, a1) = a.split_at(m);
    let (b0, b1) = b.split_at(m);
    let (a0, b0) = (trim(a0), trim(b0));
    let z0 = mul_limbs(a0, b0);
    let z2 = mul_limbs(a1, b1);
    let sa = add_limbs(a0, a1);
    let sb = add_limbs(b0, b1);
    let mut z1 = mul_limbs(trim(&sa), trim(&sb));
    sub_limbs_in_place(&mut z1, &z0);
    sub_limbs_in_place(&mut z1, &z2);
    let mut out = vec![0u64; a.len() + b.len()];
    add_into(&mut out, &z0, 0);
    add_into(&mut out, trim(&z1), m);
    add_into(&mut out, &z2, 2 * m);
    out
}

impl BigUint {
    /// Builds the canonical representation from (possibly denormalized)
    /// little-endian limbs.
    fn from_norm_vec(mut v: Vec<u64>) -> Self {
        while v.last() == Some(&0) {
            v.pop();
        }
        if v.len() <= INLINE_LIMBS {
            let mut limbs = [0u64; INLINE_LIMBS];
            limbs[..v.len()].copy_from_slice(&v);
            BigUint { repr: Repr::Inline { len: v.len() as u8, limbs } }
        } else {
            BigUint { repr: Repr::Heap(v) }
        }
    }

    /// As [`Self::from_norm_vec`] but from a fixed-size scratch array,
    /// allocating only when the value needs more than [`INLINE_LIMBS`]
    /// limbs.
    fn from_limb_array(s: &[u64]) -> Self {
        let s = trim(s);
        if s.len() <= INLINE_LIMBS {
            let mut limbs = [0u64; INLINE_LIMBS];
            limbs[..s.len()].copy_from_slice(s);
            BigUint { repr: Repr::Inline { len: s.len() as u8, limbs } }
        } else {
            BigUint { repr: Repr::Heap(s.to_vec()) }
        }
    }

    /// The canonical little-endian limb slice (empty for zero).
    fn limbs(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline { len, limbs } => &limbs[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// The whole value as a `u128` when it fits in two limbs. Inline
    /// values can be wider than that (up to [`INLINE_LIMBS`] limbs), so
    /// the length gate is load-bearing — the `u128` fast paths keyed on
    /// this must not see truncated values.
    fn as_u128(&self) -> Option<u128> {
        match &self.repr {
            // Unused inline limbs are zero by the canonical invariant.
            Repr::Inline { len, limbs } if *len <= 2 => {
                Some(limbs[0] as u128 | (limbs[1] as u128) << 64)
            }
            _ => None,
        }
    }

    /// Zero.
    pub fn zero() -> Self {
        BigUint { repr: Repr::Inline { len: 0, limbs: [0; INLINE_LIMBS] } }
    }

    /// One.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// Constructs from a `u64`.
    pub fn from_u64(x: u64) -> Self {
        let mut limbs = [0u64; INLINE_LIMBS];
        limbs[0] = x;
        BigUint { repr: Repr::Inline { len: (x != 0) as u8, limbs } }
    }

    /// Constructs from a `u128`.
    pub fn from_u128(x: u128) -> Self {
        let lo = x as u64;
        let hi = (x >> 64) as u64;
        if hi == 0 {
            Self::from_u64(lo)
        } else {
            let mut limbs = [0u64; INLINE_LIMBS];
            limbs[0] = lo;
            limbs[1] = hi;
            BigUint { repr: Repr::Inline { len: 2, limbs } }
        }
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Inline { len: 0, .. })
    }

    /// True for one.
    pub fn is_one(&self) -> bool {
        matches!(&self.repr, Repr::Inline { len: 1, limbs } if limbs[0] == 1)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> u64 {
        let limbs = self.limbs();
        match limbs.last() {
            None => 0,
            Some(&top) => (limbs.len() as u64) * 64 - top.leading_zeros() as u64,
        }
    }

    /// The bit at index `i` (little-endian, index 0 = LSB).
    pub fn bit(&self, i: u64) -> bool {
        let limbs = self.limbs();
        let limb = (i / 64) as usize;
        if limb >= limbs.len() {
            return false;
        }
        (limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Number of trailing zero bits.
    ///
    /// # Panics
    ///
    /// Panics on zero (which has no well-defined answer).
    pub fn trailing_zeros(&self) -> u64 {
        assert!(!self.is_zero(), "trailing_zeros of zero");
        for (i, &l) in self.limbs().iter().enumerate() {
            if l != 0 {
                return i as u64 * 64 + l.trailing_zeros() as u64;
            }
        }
        unreachable!()
    }

    /// True when any of the low `n` bits is set (used for sticky-bit
    /// computations when rounding mantissas).
    pub fn any_low_bits(&self, n: u64) -> bool {
        let limbs = self.limbs();
        let full = (n / 64) as usize;
        for &l in limbs.iter().take(full) {
            if l != 0 {
                return true;
            }
        }
        let rem = n % 64;
        if rem > 0 && full < limbs.len() {
            return limbs[full] & ((1u64 << rem) - 1) != 0;
        }
        false
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: u64) -> BigUint {
        if self.is_zero() {
            return Self::zero();
        }
        if let Some(a) = self.as_u128() {
            if self.bit_len() + n <= 128 {
                return Self::from_u128(a << n);
            }
        }
        let limbs = self.limbs();
        let limb_shift = (n / 64) as usize;
        let bit_shift = (n % 64) as u32;
        let out_len = limbs.len() + limb_shift + 1;
        if out_len <= INLINE_LIMBS + 1 {
            let mut out = [0u64; INLINE_LIMBS + 1];
            shl_into(&mut out[..out_len], limbs, limb_shift, bit_shift);
            return Self::from_limb_array(&out[..out_len]);
        }
        let mut out = vec![0u64; out_len];
        shl_into(&mut out, limbs, limb_shift, bit_shift);
        Self::from_norm_vec(out)
    }

    /// Right shift by `n` bits (bits shifted out are discarded).
    pub fn shr(&self, n: u64) -> BigUint {
        if let Some(a) = self.as_u128() {
            return if n >= 128 { Self::zero() } else { Self::from_u128(a >> n) };
        }
        let limbs = self.limbs();
        let limb_shift = (n / 64) as usize;
        if limb_shift >= limbs.len() {
            return Self::zero();
        }
        let bit_shift = (n % 64) as u32;
        let src = &limbs[limb_shift..];
        if src.len() <= INLINE_LIMBS {
            let mut out = [0u64; INLINE_LIMBS];
            shr_into(&mut out[..src.len()], src, bit_shift);
            return Self::from_limb_array(&out[..src.len()]);
        }
        let mut out = vec![0u64; src.len()];
        shr_into(&mut out, src, bit_shift);
        Self::from_norm_vec(out)
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        if let (Some(a), Some(b)) = (self.as_u128(), other.as_u128()) {
            let (s, carried) = a.overflowing_add(b);
            if !carried {
                return Self::from_u128(s);
            }
            return Self::from_limb_array(&[s as u64, (s >> 64) as u64, 1]);
        }
        let (a, b) = (self.limbs(), other.limbs());
        let out_len = a.len().max(b.len()) + 1;
        if out_len <= INLINE_LIMBS + 1 {
            let mut out = [0u64; INLINE_LIMBS + 1];
            add_limbs_into(&mut out[..out_len], a, b);
            return Self::from_limb_array(&out[..out_len]);
        }
        Self::from_norm_vec(add_limbs(a, b))
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        if let (Some(a), Some(b)) = (self.as_u128(), other.as_u128()) {
            return Self::from_u128(a - b);
        }
        let a = self.limbs();
        if a.len() <= INLINE_LIMBS {
            let mut out = [0u64; INLINE_LIMBS];
            out[..a.len()].copy_from_slice(a);
            sub_limbs_in_place(&mut out[..a.len()], other.limbs());
            return Self::from_limb_array(&out[..a.len()]);
        }
        let mut out = a.to_vec();
        sub_limbs_in_place(&mut out, other.limbs());
        Self::from_norm_vec(out)
    }

    /// Multiplication (schoolbook up to [`KARATSUBA_THRESHOLD`] limbs,
    /// Karatsuba above).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        if let (Some(a), Some(b)) = (self.as_u128(), other.as_u128()) {
            // Single-limb operands stay entirely in u128.
            if (a >> 64) == 0 && (b >> 64) == 0 {
                return Self::from_u128(a * b);
            }
            // Two-limb operands fill at most a fixed 4-limb scratch.
            // Four partial products; the column sums below stay within
            // u128 (mid < 3*2^64, p11 + carry <= 2^128 - 1).
            let (a0, a1) = (a as u64, (a >> 64) as u64);
            let (b0, b1) = (b as u64, (b >> 64) as u64);
            let p00 = a0 as u128 * b0 as u128;
            let p01 = a0 as u128 * b1 as u128;
            let p10 = a1 as u128 * b0 as u128;
            let p11 = a1 as u128 * b1 as u128;
            let mid = (p00 >> 64) + (p01 as u64 as u128) + (p10 as u64 as u128);
            let high = p11 + (mid >> 64) + (p01 >> 64) + (p10 >> 64);
            let out = [p00 as u64, mid as u64, high as u64, (high >> 64) as u64];
            return Self::from_limb_array(&out);
        }
        let (a, b) = (self.limbs(), other.limbs());
        // Wider inline operands (the oracle's 129..256-bit intermediates
        // at escalated Ziv precisions) still fit a fixed double-width
        // scratch.
        let out_len = a.len() + b.len();
        if out_len <= 2 * INLINE_LIMBS {
            let mut out = [0u64; 2 * INLINE_LIMBS];
            mul_schoolbook_into(&mut out[..out_len], a, b);
            return Self::from_limb_array(&out[..out_len]);
        }
        Self::from_norm_vec(mul_limbs(a, b))
    }

    /// Multiplication by a `u64`.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return Self::zero();
        }
        if let Some(a) = self.as_u128() {
            let lo = (a as u64) as u128 * m as u128;
            let hi = ((a >> 64) as u64) as u128 * m as u128;
            let mid = hi + (lo >> 64);
            let out = [lo as u64, mid as u64, (mid >> 64) as u64];
            return Self::from_limb_array(&out);
        }
        let limbs = self.limbs();
        if limbs.len() <= INLINE_LIMBS {
            let mut out = [0u64; INLINE_LIMBS + 1];
            mul_schoolbook_into(&mut out[..limbs.len() + 1], limbs, &[m]);
            return Self::from_limb_array(&out[..limbs.len() + 1]);
        }
        let mut out = Vec::with_capacity(limbs.len() + 1);
        let mut carry = 0u128;
        for &a in limbs {
            let t = a as u128 * m as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        Self::from_norm_vec(out)
    }

    /// Division by a `u64` divisor, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        if let Some(a) = self.as_u128() {
            return (Self::from_u128(a / d as u128), (a % d as u128) as u64);
        }
        let limbs = self.limbs();
        if limbs.len() <= INLINE_LIMBS {
            let mut out = [0u64; INLINE_LIMBS];
            let rem = div_limbs_u64_into(&mut out[..limbs.len()], limbs, d);
            return (Self::from_limb_array(&out[..limbs.len()]), rem);
        }
        let mut out = vec![0u64; limbs.len()];
        let rem = div_limbs_u64_into(&mut out, limbs, d);
        (Self::from_norm_vec(out), rem)
    }

    /// Division, returning `(quotient, remainder)`.
    ///
    /// Uses a base-2^64 schoolbook (Knuth Algorithm D style with a
    /// normalize-and-estimate inner loop simplified to per-bit refinement
    /// for the correction step).
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, d: &BigUint) -> (BigUint, BigUint) {
        assert!(!d.is_zero(), "division by zero");
        if let (Some(a), Some(b)) = (self.as_u128(), d.as_u128()) {
            return (Self::from_u128(a / b), Self::from_u128(a % b));
        }
        let d_limbs = d.limbs();
        if d_limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(d_limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        match self.cmp(d) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        // Normalize so the divisor's top bit is set.
        let shift = 64 - ((d.bit_len() - 1) % 64 + 1);
        let u = self.shl(shift);
        let v = d.shl(shift);
        let n = v.limbs().len();
        let m = u.limbs().len() - n;
        let v_top = v.limbs()[n - 1];
        let v_second = if n >= 2 { v.limbs()[n - 2] } else { 0 };

        let mut rem = u.clone();
        let mut q_limbs = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q_hat from the top limbs of rem relative to position j.
            let r2 = rem.limbs().get(j + n).copied().unwrap_or(0);
            let r1 = rem.limbs().get(j + n - 1).copied().unwrap_or(0);
            let r0 = rem.limbs().get(j + n - 2).copied().unwrap_or(0);
            let top = ((r2 as u128) << 64) | r1 as u128;
            let mut q_hat = if r2 >= v_top {
                u64::MAX as u128
            } else {
                top / v_top as u128
            };
            let mut r_hat = top - q_hat * v_top as u128;
            // Refine: classic two-limb check.
            while r_hat <= u64::MAX as u128
                && q_hat * v_second as u128 > ((r_hat << 64) | r0 as u128)
            {
                q_hat -= 1;
                r_hat += v_top as u128;
            }
            let mut q_hat = q_hat as u64;
            // Subtract q_hat * v << (64*j) from rem; fix up if negative.
            let prod = v.mul_u64(q_hat).shl(64 * j as u64);
            if prod > rem {
                q_hat -= 1;
                let prod2 = v.mul_u64(q_hat).shl(64 * j as u64);
                debug_assert!(prod2 <= rem);
                rem = rem.sub(&prod2);
            } else {
                rem = rem.sub(&prod);
            }
            q_limbs[j] = q_hat;
        }
        let q = Self::from_norm_vec(q_limbs);
        let r = rem.shr(shift);
        debug_assert!(&q.mul(d).add(&r) == self);
        (q, r)
    }

    /// The value as a `u64`. Every caller first reduces the value below
    /// 2^64 (by shifting or a `bit_len` check); values wider than one limb
    /// are an internal invariant violation caught in debug builds.
    pub fn to_u64(&self) -> u64 {
        debug_assert!(self.limbs().len() <= 1, "BigUint::to_u64 overflow");
        self.limbs().first().copied().unwrap_or(0)
    }

    /// The top 64 significant bits as a `u64` with MSB set (undefined for
    /// zero). Together with `bit_len` this summarizes the magnitude.
    pub fn top_bits(&self) -> u64 {
        assert!(!self.is_zero());
        let len = self.bit_len();
        if len <= 64 {
            self.limbs()[0] << (64 - len)
        } else {
            self.shr(len - 64).to_u64()
        }
    }

    /// Greatest common divisor.
    ///
    /// Binary (Stein) gcd — only shifts and subtractions, so the inner
    /// loop is cheap limb traffic instead of full divisions. When the
    /// operand sizes are far apart one Euclidean reduction first brings
    /// them together (a pure subtract-and-shift loop would grind through
    /// the size gap 64 bits at a time).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.limbs().len() + 2 < b.limbs().len() {
            b = b.div_rem(&a).1;
            if b.is_zero() {
                return a;
            }
        } else if b.limbs().len() + 2 < a.limbs().len() {
            a = a.div_rem(&b).1;
            if a.is_zero() {
                return b;
            }
        }
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let k = az.min(bz);
        a = a.shr(az);
        b = b.shr(bz);
        // Invariant: a and b odd.
        loop {
            if a > b {
                core::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(k);
            }
            b = b.shr(b.trailing_zeros());
        }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u64) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Parses a decimal string.
    ///
    /// # Panics
    ///
    /// Panics on non-digit characters or an empty string.
    pub fn from_decimal(s: &str) -> BigUint {
        assert!(!s.is_empty(), "empty decimal string");
        let mut acc = BigUint::zero();
        for c in s.chars() {
            assert!(c.is_ascii_digit(), "invalid decimal digit {c:?}");
            let d = c.to_digit(10).unwrap_or(0) as u64;
            acc = acc.mul_u64(10).add(&BigUint::from_u64(d));
        }
        acc
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b) = (self.limbs(), other.limbs());
        match a.len().cmp(&b.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl core::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::add(self, rhs)
    }
}

impl core::ops::Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        BigUint::sub(self, rhs)
    }
}

impl core::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::mul(self, rhs)
    }
}

impl core::fmt::Display for BigUint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10_000_000_000_000_000_000);
            digits.push(r);
            cur = q;
        }
        if let Some(top) = digits.pop() {
            write!(f, "{top}")?;
        }
        for d in digits.iter().rev() {
            write!(f, "{d:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_decimal(s)
    }

    #[test]
    fn basic_construction() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(42).to_u64(), 42);
        assert_eq!(BigUint::from_u128(u128::MAX).bit_len(), 128);
    }

    #[test]
    fn add_with_carries() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        let c = a.add(&b);
        assert_eq!(c, BigUint::from_u128(1u128 << 64));
        assert_eq!(c.bit_len(), 65);
    }

    #[test]
    fn sub_with_borrows() {
        let a = BigUint::from_u128(1u128 << 64);
        let b = BigUint::from_u64(1);
        assert_eq!(a.sub(&b), BigUint::from_u64(u64::MAX));
        assert!(a.sub(&a).is_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = BigUint::from_u64(0xDEAD_BEEF_CAFE_F00D);
        let b = BigUint::from_u64(0x1234_5678_9ABC_DEF0);
        let c = a.mul(&b);
        let expect = 0xDEAD_BEEF_CAFE_F00Du128 * 0x1234_5678_9ABC_DEF0u128;
        assert_eq!(c, BigUint::from_u128(expect));
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_u64(0b1011);
        assert_eq!(a.shl(130).shr(130), a);
        assert_eq!(a.shl(1).to_u64(), 0b10110);
        assert_eq!(a.shr(2).to_u64(), 0b10);
        assert!(a.shr(64).is_zero());
        assert_eq!(a.shl(64).bit_len(), 68);
    }

    #[test]
    fn bit_access() {
        let a = BigUint::from_u64(0b1010).shl(100);
        assert!(a.bit(101));
        assert!(!a.bit(100));
        assert!(a.bit(103));
        assert_eq!(a.trailing_zeros(), 101);
        assert!(a.any_low_bits(102));
        assert!(!a.any_low_bits(101));
    }

    #[test]
    fn division_small() {
        let a = big("123456789012345678901234567890");
        let (q, r) = a.div_rem_u64(97);
        assert_eq!(q.mul_u64(97).add(&BigUint::from_u64(r)), a);
        assert!(r < 97);
    }

    #[test]
    fn division_multi_limb() {
        let a = big("340282366920938463463374607431768211455123456789");
        let d = big("18446744073709551629");
        let (q, r) = a.div_rem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r < d);
    }

    #[test]
    fn division_exercises_qhat_correction() {
        // Divisor with max top limb forces the q_hat estimate paths.
        let d = BigUint::from_u128(((u64::MAX as u128) << 64) | 1);
        let a = d.mul(&big("987654321987654321987654321")).add(&BigUint::from_u64(7));
        let (q, r) = a.div_rem(&d);
        assert_eq!(q, big("987654321987654321987654321"));
        assert_eq!(r.to_u64(), 7);
    }

    #[test]
    fn division_by_larger_and_equal() {
        let a = BigUint::from_u64(5);
        let d = big("99999999999999999999");
        let (q, r) = a.div_rem(&d);
        assert!(q.is_zero());
        assert_eq!(r, a);
        let (q2, r2) = d.div_rem(&d);
        assert!(q2.is_one());
        assert!(r2.is_zero());
    }

    #[test]
    fn gcd_works() {
        let a = big("123456789012345678901234567890");
        let b = big("987654321098765432109876543210");
        let g = a.gcd(&b);
        let (_, ra) = a.div_rem(&g);
        let (_, rb) = b.div_rem(&g);
        assert!(ra.is_zero() && rb.is_zero());
        assert_eq!(BigUint::from_u64(12).gcd(&BigUint::from_u64(18)).to_u64(), 6);
    }

    #[test]
    fn gcd_handles_disparate_sizes_and_powers_of_two() {
        // Size gap > 2 limbs exercises the initial Euclidean reduction.
        let small = BigUint::from_u64(3 << 5);
        let huge = BigUint::from_u64(3).shl(1000);
        assert_eq!(small.gcd(&huge), BigUint::from_u64(3 << 5));
        assert_eq!(huge.gcd(&small), BigUint::from_u64(3 << 5));
        let a = BigUint::from_u64(7).shl(200);
        let b = BigUint::from_u64(7).shl(100);
        assert_eq!(a.gcd(&b), b);
        assert!(a.gcd(&BigUint::zero()) == a);
        assert!(BigUint::zero().gcd(&b) == b);
    }

    #[test]
    fn pow_and_display() {
        let t = BigUint::from_u64(10).pow(25);
        assert_eq!(t.to_string(), "10000000000000000000000000");
        assert_eq!(BigUint::from_u64(2).pow(100), BigUint::one().shl(100));
        assert_eq!(BigUint::zero().to_string(), "0");
    }

    #[test]
    fn decimal_roundtrip() {
        let s = "123456789098765432101112131415161718192021222324252627282930";
        assert_eq!(big(s).to_string(), s);
    }

    #[test]
    fn top_bits() {
        let a = BigUint::from_u64(1).shl(100);
        assert_eq!(a.top_bits(), 1u64 << 63);
        assert_eq!(BigUint::from_u64(3).top_bits(), 3u64 << 62);
    }

    /// Values that fit [`INLINE_LIMBS`] limbs must always be stored
    /// inline, including results that *shrink* back across the boundary.
    #[test]
    fn representation_is_canonical_across_the_inline_boundary() {
        let two64 = BigUint::from_u128(1u128 << 64);
        // The oracle's 256-bit mantissa products sit exactly at the top of
        // the inline range.
        let top4 = BigUint::one().shl(255); // 4 limbs: inline
        assert!(matches!(top4.repr, Repr::Inline { len: 4, .. }));
        let big5 = BigUint::one().shl(256); // 5 limbs: heap
        assert!(matches!(big5.repr, Repr::Heap(_)));
        let shrunk = big5.sub(&BigUint::one()); // 2^256 - 1: exactly 4 limbs
        assert!(matches!(shrunk.repr, Repr::Inline { len: 4, .. }));
        assert_eq!(shrunk.bit_len(), 256);
        let back = shrunk.add(&BigUint::one());
        assert!(matches!(back.repr, Repr::Heap(_)));
        assert_eq!(back, big5);
        let q = big5.div_rem(&two64).0; // 2^192: 4 limbs
        assert!(matches!(q.repr, Repr::Inline { len: 4, .. }));
        assert_eq!(q, BigUint::one().shl(192));
    }

    /// Inline values wider than two limbs must bypass the `u128` fast
    /// paths untruncated: every op on 3–4-limb operands has to agree with
    /// the slice-based reference routines.
    #[test]
    fn wide_inline_values_bypass_the_u128_fast_paths() {
        let vals: Vec<BigUint> = [
            BigUint::from_u128(u128::MAX),
            BigUint::from_u128(0xDEAD_BEEF_CAFE_F00D).shl(130),
            BigUint::one().shl(128),                       // 3 limbs
            BigUint::one().shl(192).sub(&BigUint::one()),  // 3 limbs, all ones
            BigUint::one().shl(255),                       // 4 limbs
            BigUint::one().shl(256).sub(&BigUint::one()),  // 4 limbs, all ones
        ]
        .to_vec();
        for a in &vals {
            for b in &vals {
                let want_mul =
                    BigUint::from_norm_vec(mul_schoolbook(a.limbs(), b.limbs()));
                assert_eq!(a.mul(b), want_mul, "{a} * {b}");
                let want_add = BigUint::from_norm_vec(add_limbs(a.limbs(), b.limbs()));
                assert_eq!(a.add(b), want_add, "{a} + {b}");
                let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
                assert_eq!(hi.sub(lo).add(lo), *hi, "{hi} - {lo}");
            }
            assert_eq!(a.shl(37).shr(37), *a, "{a} shift roundtrip");
            assert_eq!(a.shl(64).shr(1).shr(63), *a, "{a} limb-shift roundtrip");
            let m = 0x1234_5678_9ABC_DEF0u64;
            assert_eq!(
                a.mul_u64(m),
                a.mul(&BigUint::from_u64(m)),
                "{a} * small"
            );
            let (q, r) = a.div_rem_u64(97);
            assert_eq!(q.mul_u64(97).add(&BigUint::from_u64(r)), *a, "{a} / 97");
        }
    }

    #[test]
    fn inline_mul_covers_all_limb_count_combinations() {
        let vals: [u128; 6] = [
            1,
            0xFFFF_FFFF_FFFF_FFFF,
            0x1_0000_0000_0000_0000,
            u128::MAX,
            0xDEAD_BEEF_CAFE_F00D_1234_5678_9ABC_DEF0,
            0x8000_0000_0000_0000_0000_0000_0000_0000,
        ];
        for &a in &vals {
            for &b in &vals {
                let got = BigUint::from_u128(a).mul(&BigUint::from_u128(b));
                // Reference: schoolbook over the raw limb slices.
                let want = BigUint::from_norm_vec(mul_schoolbook(
                    trim(&[a as u64, (a >> 64) as u64]),
                    trim(&[b as u64, (b >> 64) as u64]),
                ));
                assert_eq!(got, want, "{a:#x} * {b:#x}");
            }
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook_above_threshold() {
        // Deterministic pseudo-random limbs spanning the threshold.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (la, lb) in [(32, 32), (33, 64), (64, 64), (65, 40), (100, 33)] {
            let a: Vec<u64> = (0..la).map(|_| next()).collect();
            let b: Vec<u64> = (0..lb).map(|_| next()).collect();
            let (a, b) = (trim(&a).to_vec(), trim(&b).to_vec());
            let kara = BigUint::from_norm_vec(mul_limbs(&a, &b));
            let school = BigUint::from_norm_vec(mul_schoolbook(&a, &b));
            assert_eq!(kara, school, "sizes {la}x{lb}");
        }
    }
}
