//! Arbitrary-precision unsigned integers.
//!
//! A minimal, dependency-free bignum tailored to what the RLIBM-32 pipeline
//! needs: mantissa arithmetic for [`crate::MpFloat`] (add/sub/mul/div/shift
//! on numbers of a few thousand bits) and exact rational arithmetic for the
//! LP solver. Little-endian `u64` limbs, canonical form (no trailing zero
//! limbs). Schoolbook algorithms throughout — operand sizes here are tens
//! of limbs, where simplicity beats asymptotics.

use core::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use rlibm_mp::BigUint;
/// let a = BigUint::from_u64(u64::MAX);
/// let b = &a * &a;
/// let (q, r) = b.div_rem(&a);
/// assert_eq!(q, a);
/// assert!(r.is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; highest limb nonzero (empty means zero).
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(x: u64) -> Self {
        if x == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![x] }
        }
    }

    /// Constructs from a `u128`.
    pub fn from_u128(x: u128) -> Self {
        let lo = x as u64;
        let hi = (x >> 64) as u64;
        if hi == 0 {
            Self::from_u64(lo)
        } else {
            BigUint { limbs: vec![lo, hi] }
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True for one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64) * 64 - top.leading_zeros() as u64,
        }
    }

    /// The bit at index `i` (little-endian, index 0 = LSB).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Number of trailing zero bits.
    ///
    /// # Panics
    ///
    /// Panics on zero (which has no well-defined answer).
    pub fn trailing_zeros(&self) -> u64 {
        assert!(!self.is_zero(), "trailing_zeros of zero");
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i as u64 * 64 + l.trailing_zeros() as u64;
            }
        }
        unreachable!()
    }

    /// True when any of the low `n` bits is set (used for sticky-bit
    /// computations when rounding mantissas).
    pub fn any_low_bits(&self, n: u64) -> bool {
        let full = (n / 64) as usize;
        for &l in self.limbs.iter().take(full) {
            if l != 0 {
                return true;
            }
        }
        let rem = n % 64;
        if rem > 0 && full < self.limbs.len() {
            return self.limbs[full] & ((1u64 << rem) - 1) != 0;
        }
        false
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: u64) -> BigUint {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = (n % 64) as u32;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift > 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits (bits shifted out are discarded).
    pub fn shr(&self, n: u64) -> BigUint {
        let limb_shift = (n / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = (n % 64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = vec![0u64; src.len()];
        for i in 0..src.len() {
            out[i] = src[i] >> bit_shift;
            if bit_shift > 0 && i + 1 < src.len() {
                out[i] |= src[i + 1] << (64 - bit_shift);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let b = short.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = long.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Multiplication (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Multiplication by a `u64`.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let t = a as u128 * m as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        BigUint { limbs: out }
    }

    /// Division by a `u64` divisor, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut q = BigUint { limbs: out };
        q.normalize();
        (q, rem as u64)
    }

    /// Division, returning `(quotient, remainder)`.
    ///
    /// Uses a base-2^64 schoolbook (Knuth Algorithm D style with a
    /// normalize-and-estimate inner loop simplified to per-bit refinement
    /// for the correction step).
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, d: &BigUint) -> (BigUint, BigUint) {
        assert!(!d.is_zero(), "division by zero");
        if d.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(d.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        match self.cmp(d) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        // Normalize so the divisor's top bit is set.
        let shift = 64 - ((d.bit_len() - 1) % 64 + 1);
        let u = self.shl(shift);
        let v = d.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let v_top = v.limbs[n - 1];
        let v_second = if n >= 2 { v.limbs[n - 2] } else { 0 };

        let mut rem = u.clone();
        let mut q_limbs = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q_hat from the top limbs of rem relative to position j.
            let r2 = rem.limbs.get(j + n).copied().unwrap_or(0);
            let r1 = rem.limbs.get(j + n - 1).copied().unwrap_or(0);
            let r0 = rem.limbs.get(j + n - 2).copied().unwrap_or(0);
            let top = ((r2 as u128) << 64) | r1 as u128;
            let mut q_hat = if r2 >= v_top {
                u64::MAX as u128
            } else {
                top / v_top as u128
            };
            let mut r_hat = top - q_hat * v_top as u128;
            // Refine: classic two-limb check.
            while r_hat <= u64::MAX as u128
                && q_hat * v_second as u128 > ((r_hat << 64) | r0 as u128)
            {
                q_hat -= 1;
                r_hat += v_top as u128;
            }
            let mut q_hat = q_hat as u64;
            // Subtract q_hat * v << (64*j) from rem; fix up if negative.
            let prod = v.mul_u64(q_hat).shl(64 * j as u64);
            if prod > rem {
                q_hat -= 1;
                let prod2 = v.mul_u64(q_hat).shl(64 * j as u64);
                debug_assert!(prod2 <= rem);
                rem = rem.sub(&prod2);
            } else {
                rem = rem.sub(&prod);
            }
            q_limbs[j] = q_hat;
        }
        let mut q = BigUint { limbs: q_limbs };
        q.normalize();
        let r = rem.shr(shift);
        debug_assert!(&q.mul(d).add(&r) == self);
        (q, r)
    }

    /// The value as a `u64`. Every caller first reduces the value below
    /// 2^64 (by shifting or a `bit_len` check); values wider than one limb
    /// are an internal invariant violation caught in debug builds.
    pub fn to_u64(&self) -> u64 {
        debug_assert!(self.limbs.len() <= 1, "BigUint::to_u64 overflow");
        self.limbs.first().copied().unwrap_or(0)
    }

    /// The top 64 significant bits as a `u64` with MSB set (undefined for
    /// zero). Together with `bit_len` this summarizes the magnitude.
    pub fn top_bits(&self) -> u64 {
        assert!(!self.is_zero());
        let len = self.bit_len();
        if len <= 64 {
            self.limbs[0] << (64 - len)
        } else {
            self.shr(len - 64).to_u64()
        }
    }

    /// Greatest common divisor (Euclid's algorithm).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u64) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Parses a decimal string.
    ///
    /// # Panics
    ///
    /// Panics on non-digit characters or an empty string.
    pub fn from_decimal(s: &str) -> BigUint {
        assert!(!s.is_empty(), "empty decimal string");
        let mut acc = BigUint::zero();
        for c in s.chars() {
            assert!(c.is_ascii_digit(), "invalid decimal digit {c:?}");
            let d = c.to_digit(10).unwrap_or(0) as u64;
            acc = acc.mul_u64(10).add(&BigUint::from_u64(d));
        }
        acc
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl core::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::add(self, rhs)
    }
}

impl core::ops::Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        BigUint::sub(self, rhs)
    }
}

impl core::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::mul(self, rhs)
    }
}

impl core::fmt::Display for BigUint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10_000_000_000_000_000_000);
            digits.push(r);
            cur = q;
        }
        if let Some(top) = digits.pop() {
            write!(f, "{top}")?;
        }
        for d in digits.iter().rev() {
            write!(f, "{d:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_decimal(s)
    }

    #[test]
    fn basic_construction() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(42).to_u64(), 42);
        assert_eq!(BigUint::from_u128(u128::MAX).bit_len(), 128);
    }

    #[test]
    fn add_with_carries() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        let c = a.add(&b);
        assert_eq!(c, BigUint::from_u128(1u128 << 64));
        assert_eq!(c.bit_len(), 65);
    }

    #[test]
    fn sub_with_borrows() {
        let a = BigUint::from_u128(1u128 << 64);
        let b = BigUint::from_u64(1);
        assert_eq!(a.sub(&b), BigUint::from_u64(u64::MAX));
        assert!(a.sub(&a).is_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = BigUint::from_u64(0xDEAD_BEEF_CAFE_F00D);
        let b = BigUint::from_u64(0x1234_5678_9ABC_DEF0);
        let c = a.mul(&b);
        let expect = 0xDEAD_BEEF_CAFE_F00Du128 * 0x1234_5678_9ABC_DEF0u128;
        assert_eq!(c, BigUint::from_u128(expect));
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_u64(0b1011);
        assert_eq!(a.shl(130).shr(130), a);
        assert_eq!(a.shl(1).to_u64(), 0b10110);
        assert_eq!(a.shr(2).to_u64(), 0b10);
        assert!(a.shr(64).is_zero());
        assert_eq!(a.shl(64).bit_len(), 68);
    }

    #[test]
    fn bit_access() {
        let a = BigUint::from_u64(0b1010).shl(100);
        assert!(a.bit(101));
        assert!(!a.bit(100));
        assert!(a.bit(103));
        assert_eq!(a.trailing_zeros(), 101);
        assert!(a.any_low_bits(102));
        assert!(!a.any_low_bits(101));
    }

    #[test]
    fn division_small() {
        let a = big("123456789012345678901234567890");
        let (q, r) = a.div_rem_u64(97);
        assert_eq!(q.mul_u64(97).add(&BigUint::from_u64(r)), a);
        assert!(r < 97);
    }

    #[test]
    fn division_multi_limb() {
        let a = big("340282366920938463463374607431768211455123456789");
        let d = big("18446744073709551629");
        let (q, r) = a.div_rem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r < d);
    }

    #[test]
    fn division_exercises_qhat_correction() {
        // Divisor with max top limb forces the q_hat estimate paths.
        let d = BigUint::from_u128(((u64::MAX as u128) << 64) | 1);
        let a = d.mul(&big("987654321987654321987654321")).add(&BigUint::from_u64(7));
        let (q, r) = a.div_rem(&d);
        assert_eq!(q, big("987654321987654321987654321"));
        assert_eq!(r.to_u64(), 7);
    }

    #[test]
    fn division_by_larger_and_equal() {
        let a = BigUint::from_u64(5);
        let d = big("99999999999999999999");
        let (q, r) = a.div_rem(&d);
        assert!(q.is_zero());
        assert_eq!(r, a);
        let (q2, r2) = d.div_rem(&d);
        assert!(q2.is_one());
        assert!(r2.is_zero());
    }

    #[test]
    fn gcd_works() {
        let a = big("123456789012345678901234567890");
        let b = big("987654321098765432109876543210");
        let g = a.gcd(&b);
        let (_, ra) = a.div_rem(&g);
        let (_, rb) = b.div_rem(&g);
        assert!(ra.is_zero() && rb.is_zero());
        assert_eq!(BigUint::from_u64(12).gcd(&BigUint::from_u64(18)).to_u64(), 6);
    }

    #[test]
    fn pow_and_display() {
        let t = BigUint::from_u64(10).pow(25);
        assert_eq!(t.to_string(), "10000000000000000000000000");
        assert_eq!(BigUint::from_u64(2).pow(100), BigUint::one().shl(100));
        assert_eq!(BigUint::zero().to_string(), "0");
    }

    #[test]
    fn decimal_roundtrip() {
        let s = "123456789098765432101112131415161718192021222324252627282930";
        assert_eq!(big(s).to_string(), s);
    }

    #[test]
    fn top_bits() {
        let a = BigUint::from_u64(1).shl(100);
        assert_eq!(a.top_bits(), 1u64 << 63);
        assert_eq!(BigUint::from_u64(3).top_bits(), 3u64 << 62);
    }
}
