//! Multi-precision arithmetic and the correctly rounded oracle for the
//! RLIBM-32 reproduction (the role MPFR and GMP play in the paper).
//!
//! Layers, bottom to top:
//!
//! * [`BigUint`] / [`BigInt`] — dependency-free big integers.
//! * [`Rational`] — exact rationals (the LP solver's coefficient domain).
//! * [`MpFloat`] — arbitrary-precision binary floating point with
//!   round-to-nearest-even and round-to-odd conversions.
//! * [`consts`] — pi, ln 2, ln 10 to any precision.
//! * [`elem`] — the ten elementary functions with guaranteed error bounds.
//! * [`oracle`] — Ziv-loop correct rounding into any target representation
//!   ([`correctly_rounded`]) or into double ([`correctly_rounded_f64`]),
//!   with precision-bounded variants ([`try_correctly_rounded`],
//!   [`try_correctly_rounded_f64`]) that surface
//!   [`OracleError::PrecisionExhausted`] instead of doubling forever.
//!
//! # Example
//!
//! ```
//! use rlibm_mp::{correctly_rounded, Func};
//!
//! // The correctly rounded float32 value of ln(0.1):
//! let y: f32 = correctly_rounded(Func::Ln, 0.1f32);
//! assert_eq!(y, -2.3025852f32);
//! ```

pub mod bigint;
pub mod biguint;
pub mod consts;
pub mod elem;
pub mod float;
pub mod oracle;
pub mod rational;
pub mod tables_src;

pub use bigint::BigInt;
pub use biguint::BigUint;
pub use float::MpFloat;
pub use oracle::{
    correctly_rounded, correctly_rounded_f64, round_mp, try_correctly_rounded,
    try_correctly_rounded_f64, Func, OracleError, DEFAULT_PREC_CEILING,
};
pub use rational::Rational;
