//! Arbitrary-precision elementary functions with rigorous error bounds.
//!
//! Every public function takes an *exact* input (an `f64`, which every
//! 32-bit representation widens to exactly) and a target precision, and
//! returns a result whose total error is at most [`ERR_ULPS`] ulps at that
//! precision. The Ziv loop in [`crate::oracle`] relies on this bound: it
//! widens the result by ±`ERR_ULPS` ulps and retries at doubled precision
//! until both ends round identically in the target representation.
//!
//! Internally everything is evaluated with 64 guard bits; argument
//! reductions are chosen so that cancellation never exceeds a handful of
//! bits (the analysis is in the comments of each routine), leaving orders
//! of magnitude of slack against the claimed bound.

use crate::consts;
use crate::float::MpFloat;

/// Guaranteed error bound, in ulps at the requested precision, for every
/// function in this module. The true error is far smaller (the working
/// precision carries 64 guard bits); the bound is deliberately generous
/// because the Ziv loop only needs soundness, not tightness.
pub const ERR_ULPS: i64 = 16;

const GUARD: u32 = 64;

/// `e^x` to `prec` bits.
pub fn exp(x: f64, prec: u32) -> MpFloat {
    let w = prec + GUARD;
    let (e, k) = exp_core_f64(x, w);
    e.mul_pow2(k).round(prec)
}

/// `2^x` to `prec` bits.
pub fn exp2(x: f64, prec: u32) -> MpFloat {
    let w = prec + GUARD;
    // Reduce with the *exact* f64 split x = i + t, |t| <= 1/2: both parts
    // are exact, so the only error is in t*ln2 (one rounding) and the
    // series.
    let i = x.round_ties_even();
    let t = x - i; // exact (Sterbenz range)
    let u = MpFloat::from_f64(t, w).mul(&consts::ln2(w + 16), w);
    let e = exp_taylor(&u, w);
    e.mul_pow2(i as i64).round(prec)
}

/// `10^x` to `prec` bits.
pub fn exp10(x: f64, prec: u32) -> MpFloat {
    let w = prec + GUARD;
    // 10^x = 2^i * e^(x ln10 - i ln2), i = round(x log2 10). The two
    // products cancel to |u| <= ln2/2 + slack; computing both at w + 48
    // bits leaves the difference with ~2^-w relative error even after the
    // ~7 bits of cancellation (|x ln10| <= 2^9 here).
    let i = (x * core::f64::consts::LOG2_10).round_ties_even();
    let wx = w + 48;
    let a = MpFloat::from_f64(x, wx).mul(&consts::ln10(wx), wx);
    let b = MpFloat::from_f64(i, wx).mul(&consts::ln2(wx), wx);
    let u = a.sub(&b, w);
    let e = exp_taylor(&u, w);
    e.mul_pow2(i as i64).round(prec)
}

/// `ln x` to `prec` bits (`x > 0`).
///
/// # Panics
///
/// Panics if `x <= 0` or non-finite.
pub fn ln(x: f64, prec: u32) -> MpFloat {
    let w = prec + GUARD;
    let (e, lnm) = ln_reduced(x, w);
    // ln x = e ln2 + ln m with m in [0.75, 1.5): |ln m| <= 0.41 while
    // |e ln2| >= 0.69 whenever e != 0, so at most ~2 bits cancel.
    let eln2 = consts::ln2(w + 8).mul_i64(e, w + 8);
    eln2.add(&lnm, prec)
}

/// `log2 x` to `prec` bits (`x > 0`).
///
/// # Panics
///
/// Panics if `x <= 0` or non-finite.
pub fn log2(x: f64, prec: u32) -> MpFloat {
    let w = prec + GUARD;
    let (e, lnm) = ln_reduced(x, w);
    // log2 x = e + ln m / ln 2; |ln m / ln 2| <= 0.59 < 1 so at most one
    // bit cancels against the exact integer e.
    let log2m = lnm.div(&consts::ln2(w + 8), w);
    MpFloat::from_i64(e, w).add(&log2m, prec)
}

/// `log10 x` to `prec` bits (`x > 0`).
///
/// # Panics
///
/// Panics if `x <= 0` or non-finite.
pub fn log10(x: f64, prec: u32) -> MpFloat {
    let w = prec + GUARD;
    let (e, lnm) = ln_reduced(x, w);
    // log10 x = e log10(2) + ln m / ln 10. |ln m / ln10| <= 0.18 while
    // |e log10 2| >= 0.301 for e != 0: bounded cancellation again.
    let ln10 = consts::ln10(w + 8);
    let log10_2 = consts::ln2(w + 8).div(&ln10, w + 8);
    let term = lnm.div(&ln10, w + 8);
    log10_2.mul_i64(e, w + 8).add(&term, prec)
}

/// `sinh x` to `prec` bits.
pub fn sinh(x: f64, prec: u32) -> MpFloat {
    let w = prec + GUARD;
    let a = x.abs();
    let v = if a < 0.25 {
        // Direct odd Taylor series: no cancellation, relative error
        // preserved down to the tiniest inputs.
        sinh_taylor(&MpFloat::from_f64(a, w), w)
    } else {
        // (A - 1/A)/2 with A = e^a >= e^0.25: |A - 1/A| >= 0.39 A, so the
        // subtraction loses at most ~1.4 bits.
        let (ea, k) = exp_core_f64(a, w + 8);
        let a_full = ea.mul_pow2(k);
        let inv = MpFloat::from_u64(1, w + 8).div(&a_full, w + 8);
        a_full.sub(&inv, w).mul_pow2(-1)
    };
    if x < 0.0 {
        v.neg().round(prec)
    } else {
        v.round(prec)
    }
}

/// `cosh x` to `prec` bits.
pub fn cosh(x: f64, prec: u32) -> MpFloat {
    let w = prec + GUARD;
    let a = x.abs();
    let (ea, k) = exp_core_f64(a, w + 8);
    let a_full = ea.mul_pow2(k);
    let inv = MpFloat::from_u64(1, w + 8).div(&a_full, w + 8);
    a_full.add(&inv, w).mul_pow2(-1).round(prec)
}

/// `sin(pi x)` to `prec` bits.
///
/// # Panics
///
/// Panics if `|x| >= 2^53` (integral inputs of that size are exact zeros
/// and must be special-cased by the caller) or `x` is non-finite.
pub fn sinpi(x: f64, prec: u32) -> MpFloat {
    assert!(x.is_finite() && x.abs() < 2f64.powi(53));
    let w = prec + GUARD;
    let neg_in = x < 0.0;
    let a = x.abs();
    // Exact binary reduction: j = a mod 2 in [0, 2).
    let j = a - 2.0 * (a / 2.0).floor();
    let (k, l) = if j >= 1.0 { (true, j - 1.0) } else { (false, j) };
    // sinpi(l) for l in [0,1) is >= 0 and symmetric about 1/2.
    let lp = if l > 0.5 { 1.0 - l } else { l }; // exact (Sterbenz)
    let v = if lp <= 0.25 {
        sin_pi_t(lp, w)
    } else {
        cos_pi_t(0.5 - lp, w) // 0.5 - lp exact
    };
    let neg = neg_in ^ k;
    if neg {
        v.neg().round(prec)
    } else {
        v.round(prec)
    }
}

/// `cos(pi x)` to `prec` bits.
///
/// # Panics
///
/// Panics if `|x| >= 2^53` or `x` is non-finite.
pub fn cospi(x: f64, prec: u32) -> MpFloat {
    assert!(x.is_finite() && x.abs() < 2f64.powi(53));
    let w = prec + GUARD;
    let a = x.abs(); // cospi is even
    let j = a - 2.0 * (a / 2.0).floor();
    let (k, l) = if j >= 1.0 { (true, j - 1.0) } else { (false, j) };
    // cospi(l) for l in [0,1): positive on [0, 1/2), negative mirror after.
    let (m, lpp) = if l > 0.5 { (true, 1.0 - l) } else { (false, l) };
    let v = if lpp <= 0.25 {
        cos_pi_t(lpp, w)
    } else {
        sin_pi_t(0.5 - lpp, w)
    };
    let neg = k ^ m;
    if neg {
        v.neg().round(prec)
    } else {
        v.round(prec)
    }
}

/// Shared `e^x` core: returns `(e^r, k)` with `x = k ln2 + r`, so the full
/// value is `e^r * 2^k`. The result is at the given working precision.
fn exp_core_f64(x: f64, w: u32) -> (MpFloat, i64) {
    // k from a double estimate: being off by one only widens |r| to ~1.04,
    // which the Taylor series absorbs.
    let k = (x / core::f64::consts::LN_2).round_ties_even() as i64;
    // r = x - k ln2: |x| <= ~2^10 for every caller, so the subtraction
    // cancels at most ~11 bits; 48 extra bits of ln2 keep r's relative
    // error near 2^-w.
    let wx = w + 48;
    let kln2 = consts::ln2(wx).mul_i64(k, wx);
    let r = MpFloat::from_f64(x, wx).sub(&kln2, w);
    (exp_taylor(&r, w), k)
}

/// Taylor series for `e^u`, `|u| <= ~1.05`.
fn exp_taylor(u: &MpFloat, w: u32) -> MpFloat {
    let one = MpFloat::from_u64(1, w);
    if u.is_zero() {
        return one;
    }
    let mut sum = one.clone();
    let mut term = one;
    let mut n = 1u64;
    loop {
        term = term.mul(u, w).div_u64(n, w);
        if term.is_zero() || term.msb_pos() < sum.msb_pos() - w as i64 - 4 {
            break;
        }
        sum = sum.add(&term, w);
        n += 1;
    }
    sum
}

/// `sin(pi t)` for exact `t in [0, 0.25 + eps]`.
fn sin_pi_t(t: f64, w: u32) -> MpFloat {
    if t == 0.0 {
        return MpFloat::zero(w);
    }
    let u = MpFloat::from_f64(t, w + 8).mul(&consts::pi(w + 8), w);
    // sin u = u - u^3/3! + ... ; |u| <= pi/4, terms decay fast and the
    // first term dominates, so relative error is preserved for tiny t.
    let u2 = u.mul(&u, w);
    let mut term = u.clone();
    let mut sum = u;
    let mut k = 1u64;
    loop {
        term = term.mul(&u2, w).div_u64((2 * k) * (2 * k + 1), w).neg();
        if term.is_zero() || term.msb_pos() < sum.msb_pos() - w as i64 - 4 {
            break;
        }
        sum = sum.add(&term, w);
        k += 1;
    }
    sum
}

/// `cos(pi t)` for exact `t in [0, 0.25 + eps]`.
fn cos_pi_t(t: f64, w: u32) -> MpFloat {
    let one = MpFloat::from_u64(1, w);
    if t == 0.0 {
        return one;
    }
    let u = MpFloat::from_f64(t, w + 8).mul(&consts::pi(w + 8), w);
    let u2 = u.mul(&u, w);
    let mut term = one.clone();
    let mut sum = one;
    let mut k = 1u64;
    loop {
        term = term.mul(&u2, w).div_u64((2 * k - 1) * (2 * k), w).neg();
        if term.is_zero() || term.msb_pos() < sum.msb_pos() - w as i64 - 4 {
            break;
        }
        sum = sum.add(&term, w);
        k += 1;
    }
    sum
}

/// Odd Taylor series for `sinh`, `0 <= x < 0.25`.
fn sinh_taylor(x: &MpFloat, w: u32) -> MpFloat {
    if x.is_zero() {
        return MpFloat::zero(w);
    }
    let x2 = x.mul(x, w);
    let mut term = x.clone();
    let mut sum = x.clone();
    let mut k = 1u64;
    loop {
        term = term.mul(&x2, w).div_u64((2 * k) * (2 * k + 1), w);
        if term.is_zero() || term.msb_pos() < sum.msb_pos() - w as i64 - 4 {
            break;
        }
        sum = sum.add(&term, w);
        k += 1;
    }
    sum
}

/// Common log reduction: `x = m * 2^e` with `m in [0.75, 1.5)`; returns
/// `(e, ln m)` with `ln m` at working precision.
fn ln_reduced(x: f64, w: u32) -> (i64, MpFloat) {
    assert!(x.is_finite() && x > 0.0, "log of non-positive value");
    let (_, mant, exp2) = rlibm_fp::bits::decompose_f64(x);
    // Normalize mant (odd integer) to m in [1, 2).
    let bits = 64 - mant.leading_zeros() as i64;
    let mut e = exp2 as i64 + bits - 1;
    // m = mant / 2^(bits-1) in [1, 2); fold into [0.75, 1.5).
    let mut m = MpFloat::from_u64(mant, w).mul_pow2(-(bits - 1));
    if m.cmp(&MpFloat::from_f64(1.5, w)) != core::cmp::Ordering::Less {
        m = m.mul_pow2(-1);
        e += 1;
    }
    // ln m = 2 atanh(s), s = (m-1)/(m+1) in [-1/7, 1/5].
    let one = MpFloat::from_u64(1, w);
    let s = m.sub(&one, w).div(&m.add(&one, w), w);
    if s.is_zero() {
        return (e, MpFloat::zero(w));
    }
    let s2 = s.mul(&s, w);
    let mut term = s.clone();
    let mut sum = s;
    let mut k = 1u64;
    loop {
        term = term.mul(&s2, w);
        let contrib = term.div_u64(2 * k + 1, w);
        if contrib.is_zero() || contrib.msb_pos() < sum.msb_pos() - w as i64 - 4 {
            break;
        }
        sum = sum.add(&contrib, w);
        k += 1;
    }
    (e, sum.mul_pow2(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Max acceptable deviation from the f64 std library: std promises a
    /// correctly rounded... no, it promises ~1 ulp. Compare at 2 ulps.
    fn close_f64(a: f64, b: f64) -> bool {
        if a == b {
            return true;
        }
        let ulp = rlibm_fp::bits::ulp_f64(b.abs().max(f64::MIN_POSITIVE));
        (a - b).abs() <= 2.0 * ulp
    }

    #[test]
    fn exp_against_std() {
        for &x in &[0.0, 1.0, -1.0, 0.5, -20.25, 42.0, 87.3, -100.0, 1e-10] {
            let v = exp(x, 128).to_f64();
            assert!(close_f64(v, x.exp()), "exp({x}): {v} vs {}", x.exp());
        }
    }

    #[test]
    fn exp2_exp10_against_std() {
        for &x in &[0.0, 1.0, -1.0, 10.5, -126.7, 37.9] {
            assert!(close_f64(exp2(x, 128).to_f64(), x.exp2()), "exp2({x})");
        }
        for &x in &[0.0, 1.0, -1.0, 5.25, -37.4, 30.1] {
            let v = exp10(x, 128).to_f64();
            let want = 10f64.powf(x);
            assert!(close_f64(v, want), "exp10({x}): {v} vs {want}");
        }
    }

    #[test]
    fn exact_powers() {
        assert_eq!(exp2(10.0, 128).to_f64(), 1024.0);
        assert_eq!(exp10(3.0, 128).to_f64(), 1000.0);
        assert_eq!(exp(0.0, 128).to_f64(), 1.0);
    }

    #[test]
    fn logs_against_std() {
        for &x in &[1.0, 2.0, 0.5, 1e-30, 1e30, std::f64::consts::PI, 0.9999999, 1.0000001, 7e-42] {
            assert!(close_f64(ln(x, 128).to_f64(), x.ln()), "ln({x})");
            assert!(close_f64(log2(x, 128).to_f64(), x.log2()), "log2({x})");
            assert!(close_f64(log10(x, 128).to_f64(), x.log10()), "log10({x})");
        }
    }

    #[test]
    fn log2_of_powers_is_exact() {
        assert_eq!(log2(8.0, 128).to_f64(), 3.0);
        assert_eq!(log2(2f64.powi(-60), 128).to_f64(), -60.0);
        assert_eq!(ln(1.0, 128).to_f64(), 0.0);
    }

    #[test]
    fn hyperbolics_against_std() {
        for &x in &[0.0, 1e-20, 0.1, -0.2, 1.0, -5.5, 20.0, -88.0] {
            assert!(close_f64(sinh(x, 128).to_f64(), x.sinh()), "sinh({x})");
            assert!(close_f64(cosh(x, 128).to_f64(), x.cosh()), "cosh({x})");
        }
    }

    #[test]
    fn sinh_tiny_keeps_relative_accuracy() {
        let x = 2f64.powi(-140);
        // sinh(x) ~ x with relative error x^2/6: indistinguishable at 128
        // bits from x itself only in f64 projection.
        assert_eq!(sinh(x, 128).to_f64(), x);
    }

    #[test]
    fn sinpi_cospi_special_angles() {
        assert_eq!(sinpi(0.5, 128).to_f64(), 1.0);
        assert_eq!(sinpi(1.5, 128).to_f64(), -1.0);
        assert_eq!(sinpi(2.5, 128).to_f64(), 1.0);
        assert_eq!(cospi(1.0, 128).to_f64(), -1.0);
        assert_eq!(cospi(2.0, 128).to_f64(), 1.0);
        assert_eq!(sinpi(0.25, 128).to_f64(), core::f64::consts::FRAC_1_SQRT_2);
        assert_eq!(cospi(0.25, 128).to_f64(), core::f64::consts::FRAC_1_SQRT_2);
        // Odd / even symmetry.
        assert_eq!(sinpi(-0.3, 128).to_f64(), -sinpi(0.3, 128).to_f64());
        assert_eq!(cospi(-0.3, 128).to_f64(), cospi(0.3, 128).to_f64());
    }

    #[test]
    fn sinpi_against_std() {
        for &x in &[0.1f64, 0.3, 0.499, 0.7, 1.25, 123.456, 8388607.3] {
            let want = (core::f64::consts::PI * (x - x.round_ties_even())).sin().abs();
            let got = sinpi(x, 128).to_f64().abs();
            assert!(close_f64(got, want), "sinpi({x}): {got} vs {want}");
        }
    }

    #[test]
    fn precision_escalation_is_consistent() {
        // Doubling the precision must agree to within ERR_ULPS of the
        // coarser result: this is the empirical check of the error bound.
        for &x in &[0.7, 3.3, -2.6, 55.1] {
            let lo = exp(x, 128);
            let hi = exp(x, 512);
            let diff = lo.sub(&hi, 128).abs();
            if !diff.is_zero() {
                assert!(
                    diff.msb_pos() <= lo.msb_pos() - 128 + 5,
                    "exp({x}) differs too much across precisions"
                );
            }
        }
    }
}
