//! The correctly rounded oracle (the role MPFR plays in the paper).
//!
//! Given an elementary function and an input in any target representation
//! `T`, [`correctly_rounded`] returns the *exact* result of evaluating the
//! function over the reals, rounded once into `T`. The implementation is
//! Ziv's strategy: evaluate with [`crate::elem`] at 128 bits, widen by the
//! guaranteed error bound, and check whether both ends of the error
//! interval round identically; if not, double the precision and retry.
//!
//! Rounding from the multi-precision value into `T` goes through
//! round-to-odd at 53 bits ([`MpFloat::to_f64_round_odd`]) followed by the
//! representation's own rounding — a composition that is provably a single
//! correct rounding for every target with at most 51 significant bits,
//! ties and exact values included.
//!
//! Results that are *exactly representable* (the table-maker's dilemma
//! degenerate cases: `ln 1`, `log2` of powers of two, `exp2` of integers,
//! `sinpi` of half-integers, ...) are detected up front from the
//! transcendence structure of each function; the Ziv loop would not
//! terminate on them.

use crate::biguint::BigUint;
use crate::elem;
use crate::float::MpFloat;
use core::any::TypeId;
use rlibm_fp::Representation;
use rlibm_obs::{Counter, Histogram};
use std::cell::RefCell;
use std::collections::HashMap;

// The oracle entry points are plain functions over value types; parallel
// validation hands them to worker threads by shared reference, so the
// types they traffic in must stay thread-safe. Compile-time proof:
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Func>();
    assert_send_sync::<MpFloat>();
    assert_send_sync::<BigUint>();
};

/// Bound on each per-thread oracle cache (entries, not bytes). When a
/// cache fills up it is cleared wholesale — no eviction bookkeeping, and
/// a full sweep over a 16-bit domain still fits in one generation.
const ZIV_CACHE_CAP: usize = 1 << 16;

// Ziv-loop telemetry (no-ops unless built with the `telemetry` feature).
// Indexed by [`Func::index`], i.e. [`Func::ALL`] order. The final-precision
// histograms are the load-bearing metric: they show how often the oracle
// settles at the 128-bit starting precision versus escalating toward the
// hard cases near rounding boundaries.
static ZIV_FINAL_PREC: [Histogram; 10] = [
    Histogram::new("oracle.ziv.final_prec.ln"),
    Histogram::new("oracle.ziv.final_prec.log2"),
    Histogram::new("oracle.ziv.final_prec.log10"),
    Histogram::new("oracle.ziv.final_prec.exp"),
    Histogram::new("oracle.ziv.final_prec.exp2"),
    Histogram::new("oracle.ziv.final_prec.exp10"),
    Histogram::new("oracle.ziv.final_prec.sinh"),
    Histogram::new("oracle.ziv.final_prec.cosh"),
    Histogram::new("oracle.ziv.final_prec.sinpi"),
    Histogram::new("oracle.ziv.final_prec.cospi"),
];
static ZIV_ESCALATIONS: [Counter; 10] = [
    Counter::new("oracle.ziv.escalations.ln"),
    Counter::new("oracle.ziv.escalations.log2"),
    Counter::new("oracle.ziv.escalations.log10"),
    Counter::new("oracle.ziv.escalations.exp"),
    Counter::new("oracle.ziv.escalations.exp2"),
    Counter::new("oracle.ziv.escalations.exp10"),
    Counter::new("oracle.ziv.escalations.sinh"),
    Counter::new("oracle.ziv.escalations.cosh"),
    Counter::new("oracle.ziv.escalations.sinpi"),
    Counter::new("oracle.ziv.escalations.cospi"),
];
static ZIV_CACHE_HITS: Counter = Counter::new("oracle.ziv.cache_hits");
static ZIV_MP_EVALS: Counter = Counter::new("oracle.ziv.mp_evals");
// Wholesale cache flushes at ZIV_CACHE_CAP: each one discards every warm
// entry on the thread, so a nonzero count explains sudden cache-hit-rate
// cliffs in long generation runs.
static ZIV_CACHE_CLEARS: Counter = Counter::new("oracle.ziv.cache_clears");

/// Forces every oracle metric into the snapshot registry at value zero,
/// so reports can distinguish "never escalated" from "not linked".
pub fn register_metrics() {
    for h in &ZIV_FINAL_PREC {
        h.register();
    }
    for c in &ZIV_ESCALATIONS {
        c.register();
    }
    ZIV_CACHE_HITS.register();
    ZIV_MP_EVALS.register();
    ZIV_CACHE_CLEARS.register();
}

thread_local! {
    // Ziv-loop results are worth caching: the generator evaluates
    // `correctly_rounded_f64` once per *reduced* input, and many inputs
    // share a reduced input; repeated validation sweeps replay identical
    // queries. Keyed by bit pattern (plus target type for the generic
    // entry point); thread-local, so no locks on the hot path and the
    // parallel engine's workers each warm their own cache.
    static ZIV_CACHE_T: RefCell<HashMap<(Func, TypeId, u32), u32>> =
        RefCell::new(HashMap::new());
    static ZIV_CACHE_F64: RefCell<HashMap<(Func, u64), u64>> =
        RefCell::new(HashMap::new());
}

/// The ten elementary functions of the paper's float library (Table 1).
/// The posit32 library uses the first eight (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// Natural logarithm.
    Ln,
    /// Base-2 logarithm.
    Log2,
    /// Base-10 logarithm.
    Log10,
    /// Natural exponential.
    Exp,
    /// Base-2 exponential.
    Exp2,
    /// Base-10 exponential.
    Exp10,
    /// Hyperbolic sine.
    Sinh,
    /// Hyperbolic cosine.
    Cosh,
    /// `sin(pi x)`.
    SinPi,
    /// `cos(pi x)`.
    CosPi,
}

impl Func {
    /// All ten functions, in the paper's Table 1 order.
    pub const ALL: [Func; 10] = [
        Func::Ln,
        Func::Log2,
        Func::Log10,
        Func::Exp,
        Func::Exp2,
        Func::Exp10,
        Func::Sinh,
        Func::Cosh,
        Func::SinPi,
        Func::CosPi,
    ];

    /// The eight functions of the posit32 library (Table 2).
    pub const POSIT: [Func; 8] = [
        Func::Ln,
        Func::Log2,
        Func::Log10,
        Func::Exp,
        Func::Exp2,
        Func::Exp10,
        Func::Sinh,
        Func::Cosh,
    ];

    /// Dense index of this function in [`Func::ALL`] order (0..10).
    /// Harnesses use it to key per-function metric and result arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short lowercase name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Func::Ln => "ln",
            Func::Log2 => "log2",
            Func::Log10 => "log10",
            Func::Exp => "exp",
            Func::Exp2 => "exp2",
            Func::Exp10 => "exp10",
            Func::Sinh => "sinh",
            Func::Cosh => "cosh",
            Func::SinPi => "sinpi",
            Func::CosPi => "cospi",
        }
    }

    /// Reference `f64` implementation from the host libm (useful for
    /// sanity tests; NOT correctly rounded).
    pub fn host_f64(self, x: f64) -> f64 {
        match self {
            Func::Ln => x.ln(),
            Func::Log2 => x.log2(),
            Func::Log10 => x.log10(),
            Func::Exp => x.exp(),
            Func::Exp2 => x.exp2(),
            Func::Exp10 => 10f64.powf(x),
            Func::Sinh => x.sinh(),
            Func::Cosh => x.cosh(),
            Func::SinPi => (core::f64::consts::PI * x).sin(),
            Func::CosPi => (core::f64::consts::PI * x).cos(),
        }
    }

    /// Multi-precision evaluation (input must be finite and inside the
    /// function's open domain; exact cases must already be filtered).
    fn eval_mp(self, x: f64, prec: u32) -> MpFloat {
        match self {
            Func::Ln => elem::ln(x, prec),
            Func::Log2 => elem::log2(x, prec),
            Func::Log10 => elem::log10(x, prec),
            Func::Exp => elem::exp(x, prec),
            Func::Exp2 => elem::exp2(x, prec),
            Func::Exp10 => elem::exp10(x, prec),
            Func::Sinh => elem::sinh(x, prec),
            Func::Cosh => elem::cosh(x, prec),
            Func::SinPi => elem::sinpi(x, prec),
            Func::CosPi => elem::cospi(x, prec),
        }
    }
}

/// Outcome of the special-case filter: either a ready `f64` whose single
/// rounding into the target is the answer, or "run the Ziv loop".
enum Filtered {
    /// Round this double into the target (it is either the exact result or
    /// a round-odd surrogate that rounds identically).
    Value(f64),
    /// The result is this exact multi-precision value.
    Exact(MpFloat),
    /// Proceed with multi-precision evaluation.
    Continue,
}

/// A saturating stand-in for "finite but larger than every target":
/// `f64::MAX` rounds to infinity in the float family and to `maxpos` in the
/// posit family, which is exactly the saturation each target wants.
const HUGE: f64 = f64::MAX;
/// A stand-in for "nonzero but smaller than every target boundary".
fn tiny(sign: bool) -> f64 {
    if sign {
        -f64::from_bits(1)
    } else {
        f64::from_bits(1)
    }
}

/// Special-case filter, in `f64` terms (every target input widens exactly).
fn filter(f: Func, x: f64) -> Filtered {
    use Filtered::*;
    if x.is_nan() {
        return Value(f64::NAN);
    }
    match f {
        Func::Ln | Func::Log2 | Func::Log10 => {
            if x < 0.0 {
                return Value(f64::NAN);
            }
            if x == 0.0 {
                return Value(f64::NEG_INFINITY);
            }
            if x.is_infinite() {
                return Value(f64::INFINITY);
            }
            if x == 1.0 {
                return Value(0.0);
            }
            match f {
                Func::Log2 => {
                    // Exact iff x is a power of two (log2 of any other
                    // rational is irrational).
                    let (_, mant, exp) = rlibm_fp::bits::decompose_f64(x);
                    if mant == 1 {
                        return Value(exp as f64);
                    }
                }
                Func::Log10
                    // Exact iff x == 10^k (k integer). Only k >= 0 can be
                    // binary-representable (10^-k is not dyadic).
                    if x >= 1.0 && x.fract() == 0.0 => {
                        let k = x.log10().round();
                        if (0.0..=400.0).contains(&k) {
                            let p = BigUint::from_u64(10).pow(k as u64);
                            let xr = crate::Rational::from_f64(x);
                            if xr.denom().is_one() && *xr.numer().magnitude() == p {
                                return Value(k);
                            }
                        }
                    }
                _ => {}
            }
            Continue
        }
        Func::Exp | Func::Exp2 | Func::Exp10 => {
            if x == f64::NEG_INFINITY {
                return Value(0.0);
            }
            if x == f64::INFINITY {
                return Value(f64::INFINITY);
            }
            if x == 0.0 {
                return Value(1.0);
            }
            // Clamp far outside every target's dynamic range so the
            // multi-precision exponent stays small.
            let log2_result = match f {
                Func::Exp => x * core::f64::consts::LOG2_E,
                Func::Exp2 => x,
                Func::Exp10 => x * core::f64::consts::LOG2_10,
                _ => unreachable!("only the exponential family reaches here"),
            };
            if log2_result > 4096.0 {
                return Value(HUGE);
            }
            if log2_result < -4096.0 {
                return Value(tiny(false));
            }
            // Exact integer cases: 2^n always; 10^n for n >= 0.
            if f == Func::Exp2 && x.fract() == 0.0 {
                return Exact(MpFloat::from_u64(1, 8).mul_pow2(x as i64));
            }
            if f == Func::Exp10 && x.fract() == 0.0 && x > 0.0 {
                let p = BigUint::from_u64(10).pow(x as u64);
                let prec = (p.bit_len() as u32).max(2);
                return Exact(MpFloat::normalize_round(false, 0, p, prec, false));
            }
            Continue
        }
        Func::Sinh => {
            if x == 0.0 || x.is_infinite() {
                return Value(x); // sinh(+-0) = +-0, sinh(+-inf) = +-inf
            }
            if x.abs() * core::f64::consts::LOG2_E > 4096.0 {
                return Value(if x > 0.0 { HUGE } else { -HUGE });
            }
            Continue
        }
        Func::Cosh => {
            if x == 0.0 {
                return Value(1.0);
            }
            if x.is_infinite() {
                return Value(f64::INFINITY);
            }
            if x.abs() * core::f64::consts::LOG2_E > 4096.0 {
                return Value(HUGE);
            }
            Continue
        }
        Func::SinPi => {
            if x.is_infinite() {
                return Value(f64::NAN);
            }
            if x == 0.0 {
                return Value(x); // preserves the zero's sign
            }
            if x.fract() == 0.0 {
                // sin(pi n) == 0 exactly. Zero-sign conventions vary
                // across libms; we use +0 and compare by value elsewhere.
                return Value(0.0);
            }
            let half = x - 0.5; // exact: non-integer x here has |x| < 2^52
            if half.fract() == 0.0 {
                // sin(pi (n + 1/2)) = (-1)^n for any integer n.
                let n = half as i64;
                return Value(if n.rem_euclid(2) == 0 { 1.0 } else { -1.0 });
            }
            Continue
        }
        Func::CosPi => {
            if x.is_infinite() {
                return Value(f64::NAN);
            }
            if x == 0.0 {
                return Value(1.0);
            }
            let a = x.abs();
            if a >= 2f64.powi(53) {
                return Value(1.0); // every such double is an even integer
            }
            if a.fract() == 0.0 {
                return Value(if (a as i64) % 2 == 0 { 1.0 } else { -1.0 });
            }
            if (a - 0.5).fract() == 0.0 {
                return Value(0.0); // cos(pi (n + 1/2)) == 0 exactly
            }
            Continue
        }
    }
}

/// Rounds a multi-precision value into `T` via round-to-odd at 53 bits.
pub fn round_mp<T: Representation>(v: &MpFloat) -> T {
    T::round_from_f64(v.to_f64_round_odd())
}

/// True when `f(x)` is a special or exactly representable case that a
/// library front-end handles before the polynomial path (domain errors,
/// infinities, `ln 1 = 0`, `exp2` of integers, `sinpi` of half-integers,
/// ...). The generator excludes these inputs — their rounding intervals
/// are degenerate (often singletons), which would force the LP toward
/// zero margin exactly as the paper's special-case handling avoids.
pub fn is_special_case(f: Func, x: f64) -> bool {
    !matches!(filter(f, x), Filtered::Continue)
}

/// Precision ceiling used by the infallible oracle wrappers: 16384 bits.
///
/// Every filtered (non-exact) case of the ten paper functions resolves
/// far below this — a disagreement at 16384 bits would mean an exact case
/// missed by [`filter`], which [`try_correctly_rounded`] reports as an
/// error instead of doubling forever.
pub const DEFAULT_PREC_CEILING: u32 = 1 << 14;

/// Floor on the Ziv starting precision (the elementary series need some
/// working room regardless of how low the caller sets the ceiling).
const MIN_ZIV_PREC: u32 = 32;

/// Failure modes of the bounded Ziv oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// The rounding test still disagreed at the precision ceiling. Either
    /// the ceiling is artificially low, or the input is an exact case
    /// that [`filter`] failed to enumerate (a table-maker's-dilemma point
    /// that genuinely needs more bits cannot exist past a few hundred
    /// bits for these functions).
    PrecisionExhausted {
        /// The function being evaluated.
        func: Func,
        /// The input (widened to f64).
        input: f64,
        /// The ceiling that was exhausted.
        max_prec: u32,
    },
    /// The multi-precision evaluation returned exactly zero, which the
    /// filter should have caught as an exact case.
    UnexpectedZero {
        /// The function being evaluated.
        func: Func,
        /// The input (widened to f64).
        input: f64,
        /// The working precision at which the zero appeared.
        prec: u32,
    },
}

impl core::fmt::Display for OracleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OracleError::PrecisionExhausted { func, input, max_prec } => write!(
                f,
                "Ziv loop exceeded {max_prec} bits for {func}({input:e}); \
                 the result may be an unfiltered exact case"
            ),
            OracleError::UnexpectedZero { func, input, prec } => {
                write!(f, "unexpected exact zero from {func}({input:e}) at {prec} bits")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// The correctly rounded value of `f(x)` in the representation `T`.
///
/// This is the oracle of Algorithm 1, line 4 (`RN_T(f(x))`).
///
/// # Example
///
/// ```
/// use rlibm_mp::{correctly_rounded, Func};
/// let y: f32 = correctly_rounded(Func::Exp, 1.0f32);
/// assert_eq!(y, 2.7182817f32);
/// ```
pub fn correctly_rounded<T: Representation>(f: Func, x: T) -> T {
    match try_correctly_rounded(f, x, DEFAULT_PREC_CEILING) {
        Ok(v) => v,
        // 16384 bits of disagreement would mean `filter` missed an exact
        // case — impossible for the enumerated special-case tables, and
        // covered by the exhaustive oracle sweeps in the workspace tests.
        Err(e) => unreachable!("{e}"),
    }
}

/// [`correctly_rounded`] with an explicit Ziv precision ceiling.
///
/// The Ziv loop starts at min(128, `max_prec`) bits (but never below the
/// working floor of the elementary series) and doubles until the widened
/// value interval rounds unambiguously; when it would exceed `max_prec`
/// it returns [`OracleError::PrecisionExhausted`] instead of looping.
///
/// # Errors
///
/// [`OracleError::PrecisionExhausted`] when the ceiling is reached
/// without an unambiguous rounding; [`OracleError::UnexpectedZero`] if
/// the multi-precision evaluation collapses to exact zero (an exact case
/// [`filter`] should have handled).
pub fn try_correctly_rounded<T: Representation>(
    f: Func,
    x: T,
    max_prec: u32,
) -> Result<T, OracleError> {
    let xf = x.to_f64();
    match filter(f, xf) {
        Filtered::Value(v) => Ok(T::round_from_f64(v)),
        Filtered::Exact(v) => Ok(round_mp(&v)),
        Filtered::Continue => {
            let key = (f, TypeId::of::<T>(), x.to_bits_u32());
            if let Some(bits) = ZIV_CACHE_T.with(|c| c.borrow().get(&key).copied()) {
                ZIV_CACHE_HITS.add(1);
                return Ok(T::from_bits_u32(bits));
            }
            let mut prec = 128u32.min(max_prec).max(MIN_ZIV_PREC);
            let mut escalations = 0u64;
            loop {
                ZIV_MP_EVALS.add(1);
                let v = f.eval_mp(xf, prec);
                if v.is_zero() {
                    return Err(OracleError::UnexpectedZero { func: f, input: xf, prec });
                }
                let lo = v.offset_ulps(-elem::ERR_ULPS);
                let hi = v.offset_ulps(elem::ERR_ULPS);
                let rl: T = round_mp(&lo);
                let rh: T = round_mp(&hi);
                if rl.to_bits_u32() == rh.to_bits_u32() {
                    ZIV_FINAL_PREC[f.index()].record(u64::from(prec));
                    ZIV_ESCALATIONS[f.index()].add(escalations);
                    ZIV_CACHE_T.with(|c| {
                        let mut c = c.borrow_mut();
                        if c.len() >= ZIV_CACHE_CAP {
                            ZIV_CACHE_CLEARS.add(1);
                            c.clear();
                        }
                        c.insert(key, rl.to_bits_u32());
                    });
                    return Ok(rl);
                }
                let next = prec.saturating_mul(2);
                if next > max_prec {
                    return Err(OracleError::PrecisionExhausted { func: f, input: xf, max_prec });
                }
                prec = next;
                escalations += 1;
            }
        }
    }
}

/// The correctly rounded value of `f(x)` in double precision.
///
/// Used by the generator when deducing reduced intervals: Algorithm 2
/// line 7 computes `RN_H(f_i(r))` with `H = f64`.
pub fn correctly_rounded_f64(f: Func, x: f64) -> f64 {
    match try_correctly_rounded_f64(f, x, DEFAULT_PREC_CEILING) {
        Ok(v) => v,
        Err(e) => unreachable!("{e}"),
    }
}

/// [`correctly_rounded_f64`] with an explicit Ziv precision ceiling.
///
/// # Errors
///
/// Same failure modes as [`try_correctly_rounded`].
pub fn try_correctly_rounded_f64(f: Func, x: f64, max_prec: u32) -> Result<f64, OracleError> {
    match filter(f, x) {
        Filtered::Value(v) => Ok(v),
        Filtered::Exact(v) => Ok(v.to_f64()),
        Filtered::Continue => {
            let key = (f, x.to_bits());
            if let Some(bits) = ZIV_CACHE_F64.with(|c| c.borrow().get(&key).copied()) {
                ZIV_CACHE_HITS.add(1);
                return Ok(f64::from_bits(bits));
            }
            let mut prec = 128u32.min(max_prec).max(MIN_ZIV_PREC);
            let mut escalations = 0u64;
            loop {
                ZIV_MP_EVALS.add(1);
                let v = f.eval_mp(x, prec);
                if v.is_zero() {
                    return Err(OracleError::UnexpectedZero { func: f, input: x, prec });
                }
                let lo = v.offset_ulps(-elem::ERR_ULPS);
                let hi = v.offset_ulps(elem::ERR_ULPS);
                let (rl, rh) = (lo.to_f64(), hi.to_f64());
                if rl.to_bits() == rh.to_bits() {
                    ZIV_FINAL_PREC[f.index()].record(u64::from(prec));
                    ZIV_ESCALATIONS[f.index()].add(escalations);
                    ZIV_CACHE_F64.with(|c| {
                        let mut c = c.borrow_mut();
                        if c.len() >= ZIV_CACHE_CAP {
                            ZIV_CACHE_CLEARS.add(1);
                            c.clear();
                        }
                        c.insert(key, rl.to_bits());
                    });
                    return Ok(rl);
                }
                let next = prec.saturating_mul(2);
                if next > max_prec {
                    return Err(OracleError::PrecisionExhausted { func: f, input: x, max_prec });
                }
                prec = next;
                escalations += 1;
            }
        }
    }
}

impl core::fmt::Display for Func {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_cases_float() {
        assert!(correctly_rounded::<f32>(Func::Ln, f32::NAN).is_nan());
        assert!(correctly_rounded::<f32>(Func::Ln, -1.0f32).is_nan());
        assert_eq!(correctly_rounded::<f32>(Func::Ln, 0.0f32), f32::NEG_INFINITY);
        assert_eq!(correctly_rounded::<f32>(Func::Ln, 1.0f32), 0.0);
        assert_eq!(correctly_rounded::<f32>(Func::Exp, f32::NEG_INFINITY), 0.0);
        assert_eq!(correctly_rounded::<f32>(Func::Exp, 0.0f32), 1.0);
        assert_eq!(correctly_rounded::<f32>(Func::Exp2, 10.0f32), 1024.0);
        assert_eq!(correctly_rounded::<f32>(Func::Exp10, 5.0f32), 1e5);
        assert_eq!(correctly_rounded::<f32>(Func::Log2, 4096.0f32), 12.0);
        assert_eq!(correctly_rounded::<f32>(Func::Log10, 1000.0f32), 3.0);
        assert_eq!(correctly_rounded::<f32>(Func::SinPi, 2.5f32), 1.0);
        assert_eq!(correctly_rounded::<f32>(Func::SinPi, 7.0f32), 0.0);
        assert_eq!(correctly_rounded::<f32>(Func::CosPi, 7.0f32), -1.0);
        assert_eq!(correctly_rounded::<f32>(Func::CosPi, 7.5f32), 0.0);
        assert_eq!(correctly_rounded::<f32>(Func::Cosh, 0.0f32), 1.0);
    }

    #[test]
    fn overflow_saturation_float_vs_posit() {
        use rlibm_posit::Posit32;
        // exp overflows float to +inf...
        assert_eq!(correctly_rounded::<f32>(Func::Exp, 1000.0f32), f32::INFINITY);
        // ...but saturates posit32 to maxpos.
        let big = Posit32::from_f64(1000.0);
        assert_eq!(correctly_rounded::<Posit32>(Func::Exp, big), Posit32::MAXPOS);
        // exp of very negative: float underflows to 0, posit to minpos.
        assert_eq!(correctly_rounded::<f32>(Func::Exp, -1000.0f32), 0.0);
        let neg = Posit32::from_f64(-1000.0);
        assert_eq!(correctly_rounded::<Posit32>(Func::Exp, neg), Posit32::MINPOS);
    }

    #[test]
    fn agrees_with_host_libm_on_easy_points() {
        // The host double libm is accurate to ~1 ulp; rounding its result
        // to f32 agrees with the correctly rounded result except within a
        // sliver around f32 rounding boundaries. Avoid half-integers
        // (exact sinpi/cospi zeros where the host's pi-rounding error
        // dominates) and allow a 1-ulp sliver.
        for &x in &[0.53f32, 1.47, 2.11, 3.7, 10.1, 0.037] {
            for f in Func::ALL {
                let ours = correctly_rounded::<f32>(f, x);
                let host = f.host_f64(x as f64) as f32;
                let tol = rlibm_fp::bits::ulp_f32(host);
                assert!(
                    (ours - host).abs() <= tol,
                    "{f}({x}): ours {ours:e} vs host {host:e}"
                );
            }
        }
    }

    #[test]
    fn sinpi_sign_structure() {
        assert_eq!(correctly_rounded::<f32>(Func::SinPi, 0.25f32), 0.70710677f32);
        assert_eq!(correctly_rounded::<f32>(Func::SinPi, -0.25f32), -0.70710677f32);
        assert_eq!(correctly_rounded::<f32>(Func::SinPi, 1.25f32), -0.70710677f32);
        assert_eq!(correctly_rounded::<f32>(Func::CosPi, 0.75f32), -0.70710677f32);
    }

    #[test]
    fn f64_oracle_matches_host_on_easy_points() {
        for &x in &[0.3, 1.9, 5.3] {
            for f in Func::ALL {
                let ours = correctly_rounded_f64(f, x);
                let host = f.host_f64(x);
                let diff = (ours - host).abs();
                // sinpi/cospi through the host accumulate the rounding of
                // pi*x, amplified by |x|: allow that absolute slack.
                let tol = match f {
                    Func::SinPi | Func::CosPi => {
                        2.0 * rlibm_fp::bits::ulp_f64(host) + x.abs() * 4.0 * f64::EPSILON
                    }
                    _ => 2.0 * rlibm_fp::bits::ulp_f64(host),
                };
                assert!(diff <= tol, "{f}({x}): {ours:e} vs host {host:e}");
            }
        }
    }

    #[test]
    fn cached_queries_are_stable_and_thread_safe() {
        // Same query twice on one thread (second hit comes from the
        // per-thread cache) and once from a fresh thread (cold cache):
        // all three must agree bit for bit.
        for f in Func::ALL {
            let first = correctly_rounded::<f32>(f, 0.73f32);
            let again = correctly_rounded::<f32>(f, 0.73f32);
            assert_eq!(first.to_bits(), again.to_bits());
            let d1 = correctly_rounded_f64(f, 0.73);
            let d2 = correctly_rounded_f64(f, 0.73);
            assert_eq!(d1.to_bits(), d2.to_bits());
            let (cold, cold64) = std::thread::scope(|s| {
                s.spawn(|| (correctly_rounded::<f32>(f, 0.73f32), correctly_rounded_f64(f, 0.73)))
                    .join()
                    .unwrap()
            });
            assert_eq!(cold.to_bits(), first.to_bits());
            assert_eq!(cold64.to_bits(), d1.to_bits());
        }
    }

    #[test]
    fn cache_distinguishes_target_types() {
        use rlibm_fp::{BFloat16, Half};
        // Identical (func, bit-pattern) keys for different 16-bit targets
        // must not collide: 0x3DCC is bf16 0.0996… but half 0.4248….
        let bits = 0x3DCCu16;
        // Warm the cache with the bf16 query, then issue the half query on
        // this (warm) thread and both queries on a cold thread; a key
        // collision would surface as a warm/cold mismatch.
        let b: BFloat16 = correctly_rounded(Func::Exp, BFloat16::from_bits(bits));
        let h: Half = correctly_rounded(Func::Exp, Half::from_bits(bits));
        let (cb, ch) = std::thread::scope(|s| {
            s.spawn(|| {
                let cb: BFloat16 = correctly_rounded(Func::Exp, BFloat16::from_bits(bits));
                let ch: Half = correctly_rounded(Func::Exp, Half::from_bits(bits));
                (cb, ch)
            })
            .join()
            .unwrap()
        });
        assert_eq!(b.to_bits(), cb.to_bits());
        assert_eq!(h.to_bits(), ch.to_bits());
        assert_ne!(b.to_f64(), h.to_f64());
    }

    #[test]
    fn precision_ceiling_surfaces_as_error_not_hang() {
        // At a 32-bit ceiling the widened Ziv interval (ERR_ULPS ulps at
        // 32 bits of working precision) routinely straddles an f32
        // rounding boundary, so a sweep of ordinary inputs must hit
        // PrecisionExhausted — and must *return* it rather than loop.
        let mut exhausted = 0u32;
        let mut agree = 0u32;
        for i in 0..2000u32 {
            let x = 0.5f32 + i as f32 * 1e-3;
            match try_correctly_rounded::<f32>(Func::Ln, x, 32) {
                Ok(y) => {
                    // A low-ceiling success must agree with the default oracle.
                    assert_eq!(y.to_bits(), correctly_rounded::<f32>(Func::Ln, x).to_bits());
                    agree += 1;
                }
                Err(OracleError::PrecisionExhausted { func, max_prec, .. }) => {
                    assert_eq!(func, Func::Ln);
                    assert_eq!(max_prec, 32);
                    exhausted += 1;
                }
                Err(other) => panic!("unexpected oracle error {other}"),
            }
        }
        assert!(exhausted > 0, "an artificially low ceiling must be reachable");
        assert!(agree > 0, "most inputs still resolve at 32 bits");
        // The same inputs resolve fine under the default ceiling.
        for i in 0..2000u32 {
            let x = 0.5f32 + i as f32 * 1e-3;
            assert!(try_correctly_rounded::<f32>(Func::Ln, x, DEFAULT_PREC_CEILING).is_ok());
        }
    }

    #[test]
    fn f64_precision_ceiling_surfaces_as_error() {
        let mut exhausted = 0u32;
        for i in 0..500u32 {
            let x = 1.0 + f64::from(i) * 1e-3;
            if matches!(
                try_correctly_rounded_f64(Func::Exp, x, 32),
                Err(OracleError::PrecisionExhausted { .. })
            ) {
                exhausted += 1;
            }
        }
        assert!(exhausted > 0);
    }

    #[test]
    fn bfloat16_oracle_exhaustive_strip() {
        // Every bfloat16 in [1, 2): exp must be monotone and within the
        // correct bracket of the host libm.
        use rlibm_fp::BFloat16;
        let mut prev = f64::MIN;
        for bits in 0x3F80u16..0x4000 {
            let x = BFloat16::from_bits(bits);
            let y = correctly_rounded::<BFloat16>(Func::Exp, x).to_f64();
            assert!(y >= prev, "exp not monotone at {x}");
            prev = y;
            let host = x.to_f64().exp();
            assert!((y - host).abs() <= host * 0.01);
        }
    }
}
