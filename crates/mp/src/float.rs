//! Arbitrary-precision binary floating point (the MPFR substitute).
//!
//! [`MpFloat`] is sign × mantissa × 2^exp with an arbitrary-precision
//! mantissa. The paper uses MPFR with up to 400 bits of precision to
//! compute oracle results; this module provides the same capability:
//! round-to-nearest-even arithmetic at any requested precision, exact
//! conversions from `f64`, and correctly rounding conversions *to* `f64`
//! including a round-to-odd variant that composes safely with a second
//! rounding into any ≤32-bit target representation.

use crate::biguint::BigUint;
use core::cmp::Ordering;

/// An arbitrary-precision binary floating point number.
///
/// Value = `(-1)^sign * mant * 2^exp`, with `mant` normalized so that
/// `mant.bit_len() == prec` for nonzero values. One ulp is `2^exp`.
///
/// # Example
///
/// ```
/// use rlibm_mp::MpFloat;
/// let a = MpFloat::from_f64(0.1, 128);
/// let b = MpFloat::from_f64(0.2, 128);
/// let c = a.add(&b, 128);
/// // The sum of the doubles 0.1 and 0.2 is not the double 0.3 -- and the
/// // 128-bit computation shows it exactly:
/// assert_ne!(c.to_f64(), 0.3);
/// assert_eq!(c.to_f64(), 0.30000000000000004);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpFloat {
    sign: bool,
    exp: i64,
    mant: BigUint,
    prec: u32,
}

impl MpFloat {
    /// Zero at the given precision.
    pub fn zero(prec: u32) -> Self {
        MpFloat { sign: false, exp: 0, mant: BigUint::zero(), prec }
    }

    /// Exact conversion from `u64`.
    pub fn from_u64(x: u64, prec: u32) -> Self {
        Self::normalize_round(false, 0, BigUint::from_u64(x), prec, false)
    }

    /// Exact conversion from `i64`.
    pub fn from_i64(x: i64, prec: u32) -> Self {
        Self::normalize_round(x < 0, 0, BigUint::from_u64(x.unsigned_abs()), prec, false)
    }

    /// Conversion from a finite `f64` (exact whenever `prec >= 53`).
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity.
    pub fn from_f64(x: f64, prec: u32) -> Self {
        assert!(x.is_finite(), "MpFloat::from_f64 of non-finite");
        let (sign, mant, exp) = rlibm_fp::bits::decompose_f64(x);
        Self::normalize_round(sign, exp as i64, BigUint::from_u64(mant), prec, false)
    }

    /// Builds a value from raw parts, normalizing the mantissa to `prec`
    /// bits with round-to-nearest-even. `sticky` declares that nonzero bits
    /// were already discarded strictly below `mant`'s LSB.
    pub fn normalize_round(sign: bool, exp: i64, mant: BigUint, prec: u32, sticky: bool) -> Self {
        assert!(prec >= 2, "precision too small");
        if mant.is_zero() {
            // A pure sticky residue can't be represented; callers that care
            // (none do: sticky always accompanies a nonzero kept part in
            // this crate) would need a directed mode.
            return Self::zero(prec);
        }
        let len = mant.bit_len();
        if len <= prec as u64 {
            let shift = prec as u64 - len;
            // Shifting left is exact; the sticky residue (if any) is below
            // the round position so RNE keeps the mantissa unchanged.
            return MpFloat { sign, exp: exp - shift as i64, mant: mant.shl(shift), prec };
        }
        let drop = len - prec as u64;
        let mut kept = mant.shr(drop);
        let round_bit = mant.bit(drop - 1);
        let st = mant.any_low_bits(drop - 1) || sticky;
        let mut e = exp + drop as i64;
        if round_bit && (st || kept.bit(0)) {
            kept = kept.add(&BigUint::one());
            if kept.bit_len() > prec as u64 {
                kept = kept.shr(1);
                e += 1;
            }
        }
        MpFloat { sign, exp: e, mant: kept, prec }
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.mant.is_zero()
    }

    /// True for strictly negative values.
    pub fn is_negative(&self) -> bool {
        self.sign && !self.is_zero()
    }

    /// The working precision in bits.
    pub fn prec(&self) -> u32 {
        self.prec
    }

    /// Exponent of one ulp (`2^exp`); meaningful for nonzero values.
    pub fn ulp_exp(&self) -> i64 {
        self.exp
    }

    /// Position of the most significant bit: the value's magnitude is in
    /// `[2^msb_pos, 2^(msb_pos + 1))`.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn msb_pos(&self) -> i64 {
        assert!(!self.is_zero());
        self.exp + self.mant.bit_len() as i64 - 1
    }

    /// Negation (exact).
    pub fn neg(&self) -> MpFloat {
        let mut r = self.clone();
        if !r.is_zero() {
            r.sign = !r.sign;
        }
        r
    }

    /// Absolute value (exact).
    pub fn abs(&self) -> MpFloat {
        let mut r = self.clone();
        r.sign = false;
        r
    }

    /// Exact scaling by `2^k`.
    pub fn mul_pow2(&self, k: i64) -> MpFloat {
        let mut r = self.clone();
        if !r.is_zero() {
            r.exp += k;
        }
        r
    }

    /// Magnitude comparison.
    pub fn cmp_abs(&self, other: &MpFloat) -> Ordering {
        match (self.is_zero(), other.is_zero()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        match self.msb_pos().cmp(&other.msb_pos()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        // Same magnitude class: compare mantissas aligned to a common scale.
        let (a, b) = align(&self.mant, self.exp, &other.mant, other.exp);
        a.cmp(&b)
    }

    /// Numeric comparison. Not `Ord::cmp`: `MpFloat` deliberately does
    /// not implement `Ord` (NaN-free by construction, but precision-carrying
    /// equality would be misleading).
    #[allow(clippy::should_implement_trait)]
    pub fn cmp(&self, other: &MpFloat) -> Ordering {
        match (self.is_negative(), other.is_negative()) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.cmp_abs(other),
            (true, true) => other.cmp_abs(self),
        }
    }

    /// Addition rounded to `prec` bits.
    pub fn add(&self, other: &MpFloat, prec: u32) -> MpFloat {
        if self.is_zero() {
            return Self::normalize_round(
                other.sign,
                other.exp,
                other.mant.clone(),
                prec,
                false,
            );
        }
        if other.is_zero() {
            return Self::normalize_round(self.sign, self.exp, self.mant.clone(), prec, false);
        }
        // Order by magnitude so `hi` dominates.
        let (hi, lo) = if self.cmp_abs(other) != Ordering::Less {
            (self, other)
        } else {
            (other, self)
        };
        const G: i64 = 3; // guard bits
        let base = hi.exp - G;
        let a = hi.mant.shl(G as u64);
        let s = lo.exp - base;
        let (b, mut sticky) = if s >= 0 {
            (lo.mant.shl(s as u64), false)
        } else {
            let sh = (-s) as u64;
            (lo.mant.shr(sh), lo.mant.any_low_bits(sh))
        };
        if hi.sign == lo.sign {
            Self::normalize_round(hi.sign, base, a.add(&b), prec, sticky)
        } else {
            let mut diff = a.sub(&b);
            if sticky {
                // True subtrahend slightly larger: borrow one, the residue
                // stays strictly positive (sticky remains set).
                diff = diff.sub(&BigUint::one());
            }
            if diff.is_zero() && !sticky {
                return Self::zero(prec);
            }
            if diff.is_zero() {
                // Positive residue below one guard ulp.
                diff = BigUint::one();
                sticky = false;
            }
            Self::normalize_round(hi.sign, base, diff, prec, sticky)
        }
    }

    /// Subtraction rounded to `prec` bits.
    pub fn sub(&self, other: &MpFloat, prec: u32) -> MpFloat {
        self.add(&other.neg(), prec)
    }

    /// Multiplication rounded to `prec` bits.
    pub fn mul(&self, other: &MpFloat, prec: u32) -> MpFloat {
        if self.is_zero() || other.is_zero() {
            return Self::zero(prec);
        }
        Self::normalize_round(
            self.sign != other.sign,
            self.exp + other.exp,
            self.mant.mul(&other.mant),
            prec,
            false,
        )
    }

    /// Division rounded to `prec` bits.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div(&self, other: &MpFloat, prec: u32) -> MpFloat {
        assert!(!other.is_zero(), "MpFloat division by zero");
        if self.is_zero() {
            return Self::zero(prec);
        }
        // Produce a quotient with at least prec + 2 bits.
        let la = self.mant.bit_len() as i64;
        let lb = other.mant.bit_len() as i64;
        let k = (prec as i64 + 2 + lb - la).max(0) as u64;
        let num = self.mant.shl(k);
        let (q, r) = num.div_rem(&other.mant);
        debug_assert!(q.bit_len() >= prec as u64 + 2);
        Self::normalize_round(
            self.sign != other.sign,
            self.exp - other.exp - k as i64,
            q,
            prec,
            !r.is_zero(),
        )
    }

    /// Re-rounds this value to a (usually lower) precision with RNE.
    pub fn round(&self, prec: u32) -> MpFloat {
        Self::normalize_round(self.sign, self.exp, self.mant.clone(), prec, false)
    }

    /// Multiplication by a signed machine integer, rounded to `prec` bits.
    pub fn mul_i64(&self, m: i64, prec: u32) -> MpFloat {
        let v = self.mul_u64(m.unsigned_abs(), prec);
        if m < 0 {
            v.neg()
        } else {
            v
        }
    }

    /// Multiplication by a small unsigned integer, rounded to `prec` bits.
    pub fn mul_u64(&self, m: u64, prec: u32) -> MpFloat {
        if m == 0 || self.is_zero() {
            return Self::zero(prec);
        }
        Self::normalize_round(self.sign, self.exp, self.mant.mul_u64(m), prec, false)
    }

    /// Division by a small unsigned integer, rounded to `prec` bits.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_u64(&self, d: u64, prec: u32) -> MpFloat {
        assert!(d != 0);
        if self.is_zero() {
            return Self::zero(prec);
        }
        let k = prec as u64 + 2 + 64;
        let (q, r) = self.mant.shl(k).div_rem_u64(d);
        Self::normalize_round(self.sign, self.exp - k as i64, q, prec, r != 0)
    }

    /// The value shifted by `n` of its own ulps: `self + n * 2^exp`,
    /// computed exactly (the result's precision may grow by one bit).
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn offset_ulps(&self, n: i64) -> MpFloat {
        assert!(!self.is_zero(), "offset_ulps on zero");
        // Work on the signed value: magnitude mant with sign.
        let delta = BigUint::from_u64(n.unsigned_abs());
        let (sign, mant) = if (n >= 0) != self.sign {
            // Same direction as the value: magnitude grows.
            (self.sign, self.mant.add(&delta))
        } else if self.mant >= delta {
            (self.sign, self.mant.sub(&delta))
        } else {
            (!self.sign, delta.sub(&self.mant))
        };
        let prec = (mant.bit_len() as u32).max(2);
        Self::normalize_round(sign, self.exp, mant, prec, false)
    }

    /// Rounds to the nearest integer (ties away from zero).
    ///
    /// # Panics
    ///
    /// Panics if the result does not fit in `i64`.
    pub fn round_to_i64(&self) -> i64 {
        if self.is_zero() {
            return 0;
        }
        let v = if self.exp >= 0 {
            let shifted = self.mant.shl(self.exp as u64);
            assert!(shifted.bit_len() <= 62, "round_to_i64 overflow");
            shifted.to_u64()
        } else {
            let sh = (-self.exp) as u64;
            if sh > self.mant.bit_len() {
                // |value| <= 1/2 at most... check the half boundary.
                if sh == self.mant.bit_len() && self.mant.bit(self.mant.bit_len() - 1) {
                    // value in [1/2, 1): rounds to 1 only if >= 1/2 (ties away)
                    1
                } else {
                    0
                }
            } else {
                let int = self.mant.shr(sh);
                assert!(int.bit_len() <= 62, "round_to_i64 overflow");
                let half = self.mant.bit(sh - 1);
                int.to_u64() + half as u64
            }
        };
        if self.sign {
            -(v as i64)
        } else {
            v as i64
        }
    }

    /// Correctly rounded (RNE) conversion to `f64`, handling the subnormal
    /// range and overflow to infinity.
    pub fn to_f64(&self) -> f64 {
        self.convert_f64(false)
    }

    /// Round-to-odd conversion to `f64`: exact values convert exactly;
    /// inexact values truncate toward zero and force the last bit to 1.
    ///
    /// Round-to-odd at 53 bits followed by round-to-nearest into any
    /// representation with at most 51 significant bits is equivalent to a
    /// single correct rounding — this is how the oracle rounds into every
    /// 32-bit target without double-rounding errors.
    pub fn to_f64_round_odd(&self) -> f64 {
        self.convert_f64(true)
    }

    fn convert_f64(&self, round_odd: bool) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let msb = self.msb_pos();
        if msb > 1023 {
            // Overflow: round-odd saturates just inside the range so a
            // subsequent rounding still sees "huge finite"; RNE overflows.
            return apply_sign(
                if round_odd { f64::MAX } else { f64::INFINITY },
                self.sign,
            );
        }
        if msb < -1074 {
            // Below the smallest subnormal: round-odd keeps a nonzero trace.
            if round_odd {
                return apply_sign(f64::from_bits(1), self.sign);
            }
            // RNE: anything at or below half the smallest subnormal is 0;
            // above rounds to the smallest subnormal.
            return if msb < -1075 {
                apply_sign(0.0, self.sign)
            } else {
                // Magnitude in [2^-1075, 2^-1074): compare with the tie.
                // Exactly 2^-1075 iff the mantissa is a pure power of two.
                let exact_tie = self.mant.trailing_zeros() == self.mant.bit_len() - 1;
                if exact_tie && !round_odd {
                    apply_sign(0.0, self.sign) // tie to even (zero)
                } else {
                    apply_sign(f64::from_bits(1), self.sign)
                }
            };
        }
        // Available precision: 53 bits in the normal range, fewer for
        // subnormals.
        let avail: u64 = if msb >= -1022 {
            53
        } else {
            (53 - (-1022 - msb)) as u64
        };
        let len = self.mant.bit_len();
        let (kept, inexact) = if len <= avail {
            (self.mant.shl(avail - len), false)
        } else {
            let drop = len - avail;
            let k = self.mant.shr(drop);
            let round_bit = self.mant.bit(drop - 1);
            let sticky = self.mant.any_low_bits(drop - 1);
            if round_odd {
                (k, round_bit || sticky)
            } else {
                let mut k = k;
                if round_bit && (sticky || k.bit(0)) {
                    k = k.add(&BigUint::one());
                }
                (k, false)
            }
        };
        let mut m = if kept.bit_len() <= 64 { kept.to_u64() } else { unreachable!() };
        let mut e2 = msb - avail as i64 + 1; // value = m * 2^e2 (before any carry)
        if m == 1u64 << avail {
            // RNE carry into the next binade.
            m >>= 1;
            e2 += 1;
            if msb + 1 > 1023 {
                return apply_sign(f64::INFINITY, self.sign);
            }
        }
        if round_odd && inexact {
            m |= 1;
        }
        apply_sign(exact_scale(m, e2), self.sign)
    }

    /// The integer part `floor(|self|)` as a `u64` together with whether a
    /// fractional part exists. Used by argument reductions.
    ///
    /// # Panics
    ///
    /// Panics if the integer part exceeds `u64`.
    pub fn trunc_abs_u64(&self) -> (u64, bool) {
        if self.is_zero() {
            return (0, false);
        }
        if self.exp >= 0 {
            let v = self.mant.shl(self.exp as u64);
            return (v.to_u64(), false);
        }
        let sh = (-self.exp) as u64;
        if sh >= self.mant.bit_len() {
            return (0, true);
        }
        let int = self.mant.shr(sh);
        (int.to_u64(), self.mant.any_low_bits(sh))
    }
}

/// Aligns two mantissas to a common exponent for exact comparison.
fn align(a: &BigUint, ea: i64, b: &BigUint, eb: i64) -> (BigUint, BigUint) {
    if ea >= eb {
        (a.shl((ea - eb) as u64), b.clone())
    } else {
        (a.clone(), b.shl((eb - ea) as u64))
    }
}

fn apply_sign(v: f64, sign: bool) -> f64 {
    if sign {
        -v
    } else {
        v
    }
}

/// `m * 2^e2` computed exactly (the caller guarantees representability).
fn exact_scale(m: u64, e2: i64) -> f64 {
    debug_assert!(m <= 1u64 << 53);
    let mut v = m as f64;
    let mut e = e2;
    // Two-step scaling keeps every intermediate exact: the first step stays
    // within the normal range.
    while e > 900 {
        v *= 2f64.powi(900);
        e -= 900;
    }
    while e < -900 {
        v *= 2f64.powi(-900);
        e += 900;
    }
    v * 2f64.powi(e as i32)
}

impl core::fmt::Display for MpFloat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:e}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp(x: f64) -> MpFloat {
        MpFloat::from_f64(x, 128)
    }

    #[test]
    fn f64_roundtrip_exact() {
        for &x in &[0.0, 1.0, -1.5, 0.1, 1e300, -1e-300, f64::MIN_POSITIVE, f64::from_bits(1)] {
            assert_eq!(mp(x).to_f64(), x, "x = {x:e}");
            assert_eq!(mp(x).to_f64_round_odd(), x, "round-odd must be exact here");
        }
    }

    #[test]
    fn normalization_invariant() {
        let v = mp(3.0);
        assert_eq!(v.mant.bit_len(), 128);
        assert_eq!(v.msb_pos(), 1);
    }

    #[test]
    fn add_sub_basics() {
        assert_eq!(mp(1.5).add(&mp(2.25), 128).to_f64(), 3.75);
        assert_eq!(mp(1.5).sub(&mp(2.25), 128).to_f64(), -0.75);
        assert!(mp(7.0).sub(&mp(7.0), 128).is_zero());
        assert_eq!(mp(-1.0).add(&mp(0.0), 128).to_f64(), -1.0);
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // (1 + 2^-100) - 1 at 128 bits must be exactly 2^-100.
        let one = mp(1.0);
        let tiny = mp(2f64.powi(-100));
        let sum = one.add(&tiny, 128);
        let diff = sum.sub(&one, 128);
        assert_eq!(diff.to_f64(), 2f64.powi(-100));
    }

    #[test]
    fn rounding_to_precision() {
        // 2^60 + 1 rounded to 53 bits loses the 1 (RNE, below half-ulp).
        let v = MpFloat::from_u64((1u64 << 60) + 1, 61);
        let r = MpFloat::normalize_round(false, 0, BigUint::from_u64((1u64 << 60) + 1), 53, false);
        assert_eq!(r.to_f64(), 2f64.powi(60));
        assert_eq!(v.to_f64(), 2f64.powi(60)); // f64 conversion rounds the same way
        // 2^60 + 2^7 is an exact tie at 53 bits -> even (down).
        let tie = MpFloat::normalize_round(false, 0, BigUint::from_u64((1u64 << 60) + (1 << 7)), 53, false);
        assert_eq!(tie.to_f64(), 2f64.powi(60));
        // ...but with sticky set it must round up.
        let up = MpFloat::normalize_round(false, 0, BigUint::from_u64((1u64 << 60) + (1 << 7)), 53, true);
        assert_eq!(up.to_f64(), 2f64.powi(60) + 2f64.powi(8));
    }

    #[test]
    fn mul_div_inverse() {
        let a = mp(1.7);
        let b = mp(0.3);
        let p = a.mul(&b, 192);
        let q = p.div(&b, 192);
        // One rounding each way: must agree with a to ~190 bits, so the
        // f64 projection is identical.
        assert_eq!(q.to_f64(), 1.7);
    }

    #[test]
    fn div_matches_rational() {
        let a = mp(1.0);
        let b = mp(3.0);
        let third = a.div(&b, 128);
        assert_eq!(third.to_f64(), 1.0 / 3.0);
        let r = crate::Rational::from_ratio_i64(1, 3);
        assert_eq!(third.to_f64(), r.to_f64());
    }

    #[test]
    fn small_int_helpers() {
        let x = mp(10.0).div_u64(4, 128);
        assert_eq!(x.to_f64(), 2.5);
        let y = mp(2.5).mul_u64(3, 128);
        assert_eq!(y.to_f64(), 7.5);
    }

    #[test]
    fn comparison() {
        assert_eq!(mp(1.0).cmp(&mp(2.0)), Ordering::Less);
        assert_eq!(mp(-1.0).cmp(&mp(-2.0)), Ordering::Greater);
        assert_eq!(mp(-1.0).cmp(&mp(1.0)), Ordering::Less);
        assert_eq!(mp(1.5).cmp(&mp(1.5)), Ordering::Equal);
        assert_eq!(mp(0.0).cmp(&mp(0.0)), Ordering::Equal);
    }

    #[test]
    fn round_to_i64_cases() {
        assert_eq!(mp(2.5).round_to_i64(), 3);
        assert_eq!(mp(-2.5).round_to_i64(), -3);
        assert_eq!(mp(2.49).round_to_i64(), 2);
        assert_eq!(mp(0.49).round_to_i64(), 0);
        assert_eq!(mp(0.5).round_to_i64(), 1);
        assert_eq!(mp(-0.25).round_to_i64(), 0);
        assert_eq!(mp(1e15).round_to_i64(), 1_000_000_000_000_000);
    }

    #[test]
    fn offset_ulps_walks_neighbours() {
        let v = mp(1.0);
        let up = v.offset_ulps(1);
        let down = v.offset_ulps(-1);
        assert!(up.cmp(&v) == Ordering::Greater);
        assert!(down.cmp(&v) == Ordering::Less);
        // 1 ulp at 128-bit precision of 1.0 is 2^-127.
        assert_eq!(up.sub(&v, 128).to_f64(), 2f64.powi(-127));
        // Crossing zero.
        let tiny = MpFloat::from_u64(1, 2);
        let neg = tiny.offset_ulps(-3);
        assert!(neg.is_negative());
    }

    #[test]
    fn round_odd_composes_with_f32_rounding() {
        // Build a value strictly between the f32 tie 1 + 2^-24 and the next
        // double: RNE to f64 would land exactly ON the tie and then
        // double-round to 1.0; round-odd keeps it off the tie.
        let tie = mp(1.0 + 2f64.powi(-24));
        let just_above = tie.offset_ulps(1); // way below one f64 ulp above
        let via_odd = just_above.to_f64_round_odd() as f32;
        assert_eq!(via_odd, 1.0 + 2f32.powi(-23), "round-odd must avoid the double-rounding trap");
        let via_rne = just_above.to_f64() as f32;
        assert_eq!(via_rne, 1.0, "plain RNE double-rounds here (expected)");
    }

    #[test]
    fn subnormal_f64_conversion() {
        // A value needing subnormal precision: 3 * 2^-1073 = 6 quanta.
        // (NB: 2f64.powi(-1073) evaluates to 0 -- powi overflows internally
        // -- so the expected value is built from raw bits.)
        let v = MpFloat::from_u64(3, 8).mul_pow2(-1073);
        assert_eq!(v.to_f64(), f64::from_bits(6));
        // Below the smallest subnormal.
        let tiny = MpFloat::from_u64(1, 8).mul_pow2(-1200);
        assert_eq!(tiny.to_f64(), 0.0);
        assert_eq!(tiny.to_f64_round_odd(), f64::from_bits(1));
        // Exactly half the smallest subnormal ties to zero.
        let half = MpFloat::from_u64(1, 8).mul_pow2(-1075);
        assert_eq!(half.to_f64(), 0.0);
        // Just above the half rounds up.
        let above = MpFloat::from_u64(3, 8).mul_pow2(-1076);
        assert_eq!(above.to_f64(), f64::from_bits(1));
    }

    #[test]
    fn overflow_conversion() {
        let big = MpFloat::from_u64(1, 8).mul_pow2(2000);
        assert_eq!(big.to_f64(), f64::INFINITY);
        assert_eq!(big.to_f64_round_odd(), f64::MAX);
        assert_eq!(big.neg().to_f64(), f64::NEG_INFINITY);
    }

    #[test]
    fn trunc_abs() {
        assert_eq!(mp(3.75).trunc_abs_u64(), (3, true));
        assert_eq!(mp(-4.0).trunc_abs_u64(), (4, false));
        assert_eq!(mp(0.25).trunc_abs_u64(), (0, true));
    }
}
