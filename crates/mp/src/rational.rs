//! Exact rational numbers.
//!
//! These are the coefficient domain of the LP solver (`rlibm-lp`): the paper
//! uses SoPlex in exact rational mode precisely because floating point
//! pivoting can certify an infeasible system as feasible (or vice versa),
//! which would silently break the correctly rounded guarantee.
//!
//! # Lazy normalization
//!
//! The exact simplex and the basis-recovery Gaussian elimination are the
//! dominant producers of intermediate rationals, and reducing by gcd on
//! *every* `add`/`mul` used to dominate their cost. Arithmetic therefore
//! keeps results **unreduced** and only runs the gcd
//!
//! * when a result's combined numerator+denominator bit size crosses
//!   [`REDUCE_WATERMARK_BITS`] (bounding the blow-up of long operation
//!   chains), and
//! * on explicit canonicalization ([`Rational::canonicalize`], `Display`,
//!   `Hash`).
//!
//! Comparison needs no normalization at all — `Ord`/`PartialEq` cross-
//! multiply, so equality is *value* equality regardless of representation.
//! Constructors ([`Rational::new`], [`Rational::from_f64`], ...) still
//! produce canonical values, so [`Rational::numer`]/[`Rational::denom`]
//! on a freshly constructed value see the reduced form.

use crate::bigint::BigInt;
use crate::biguint::BigUint;
use core::cmp::Ordering;

/// Unreduced results whose numerator+denominator bit lengths exceed this
/// watermark are reduced eagerly; below it the gcd is deferred. Sized so
/// the LP's typical degree-7 power-basis entries (a few hundred bits)
/// chain several operations allocation-cheap before a reduction lands.
const REDUCE_WATERMARK_BITS: u64 = 2048;

/// An exact rational number `num / den` with `den > 0` and zero stored
/// as `0/1`. The representation may be *unreduced* after arithmetic (see
/// the module docs); `==`, `Ord` and `Hash` all have value semantics, so
/// `2/4 == 1/2` regardless of storage.
///
/// # Example
///
/// ```
/// use rlibm_mp::Rational;
/// let a = Rational::from_ratio_i64(1, 3);
/// let b = Rational::from_ratio_i64(1, 6);
/// assert_eq!(&a + &b, Rational::from_ratio_i64(1, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl PartialEq for Rational {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Rational {}

impl core::hash::Hash for Rational {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        // Hash the canonical form so value-equal representations collide.
        let c = self.clone().reduce();
        c.num.hash(state);
        c.den.hash(state);
    }
}

impl Rational {
    /// Zero.
    pub fn zero() -> Self {
        Rational { num: BigInt::zero(), den: BigUint::one() }
    }

    /// One.
    pub fn one() -> Self {
        Rational { num: BigInt::one(), den: BigUint::one() }
    }

    /// Constructs from an integer.
    pub fn from_i64(x: i64) -> Self {
        Rational { num: BigInt::from_i64(x), den: BigUint::one() }
    }

    /// Constructs from a numerator/denominator pair of machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn from_ratio_i64(num: i64, den: i64) -> Self {
        assert!(den != 0, "zero denominator");
        let (num, den) = if den < 0 { (-num, -(den as i128)) } else { (num, den as i128) };
        Self::new(BigInt::from_i64(num), BigUint::from_u128(den as u128))
    }

    /// Constructs from big numerator and positive denominator, reducing to
    /// canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        if num.is_zero() {
            return Self::zero();
        }
        (Rational { num, den }).reduce()
    }

    /// Internal lazy constructor: keeps the result unreduced unless its
    /// size crosses the watermark (zero still normalizes to `0/1`).
    fn from_parts(num: BigInt, den: BigUint) -> Self {
        debug_assert!(!den.is_zero(), "zero denominator");
        if num.is_zero() {
            return Self::zero();
        }
        let r = Rational { num, den };
        if r.num.magnitude().bit_len() + r.den.bit_len() > REDUCE_WATERMARK_BITS {
            r.reduce()
        } else {
            r
        }
    }

    /// Divides out `gcd(|num|, den)`.
    fn reduce(self) -> Self {
        let g = self.num.magnitude().gcd(&self.den);
        if g.is_one() {
            return self;
        }
        let (n, _) = self.num.magnitude().div_rem(&g);
        let (d, _) = self.den.div_rem(&g);
        Rational {
            num: BigInt::from_biguint(self.num.is_negative(), n),
            den: d,
        }
    }

    /// Reduces the stored representation to canonical form (`den > 0`,
    /// `gcd(|num|, den) == 1`). Call before extracting components of a
    /// value produced by arithmetic.
    pub fn canonicalize(&mut self) {
        let taken = core::mem::take(self);
        *self = taken.reduce();
    }

    /// Exact conversion from a finite `f64`: every double is a rational
    /// with a power-of-two denominator.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity.
    pub fn from_f64(x: f64) -> Self {
        assert!(x.is_finite(), "Rational::from_f64 of non-finite");
        let (sign, mant, exp) = rlibm_fp::bits::decompose_f64(x);
        if mant == 0 {
            return Self::zero();
        }
        let m = BigUint::from_u64(mant);
        if exp >= 0 {
            Rational {
                num: BigInt::from_biguint(sign, m.shl(exp as u64)),
                den: BigUint::one(),
            }
        } else {
            // mant is odd, so gcd(mant, 2^|exp|) == 1: already canonical.
            Rational {
                num: BigInt::from_biguint(sign, m),
                den: BigUint::one().shl((-exp) as u64),
            }
        }
    }

    /// The numerator *as stored*: canonical for constructor-produced
    /// values; arithmetic results may be unreduced until
    /// [`Self::canonicalize`]. Compare values with `==`/`cmp`, not by
    /// component.
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The (positive) denominator *as stored* (see [`Self::numer`]).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True for strictly negative values.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Sign: -1, 0 or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Negation.
    pub fn neg(&self) -> Rational {
        Rational { num: self.num.neg(), den: self.den.clone() }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational { num: self.num.abs(), den: self.den.clone() }
    }

    /// Addition.
    pub fn add(&self, other: &Rational) -> Rational {
        let num = &self.num.mul(&BigInt::from_biguint(false, other.den.clone()))
            + &other.num.mul(&BigInt::from_biguint(false, self.den.clone()));
        Rational::from_parts(num, self.den.mul(&other.den))
    }

    /// Subtraction.
    pub fn sub(&self, other: &Rational) -> Rational {
        self.add(&other.neg())
    }

    /// Multiplication.
    pub fn mul(&self, other: &Rational) -> Rational {
        Rational::from_parts(self.num.mul(&other.num), self.den.mul(&other.den))
    }

    /// Division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div(&self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "rational division by zero");
        let num = self.num.mul(&BigInt::from_biguint(false, other.den.clone()));
        let den_sign = other.num.is_negative();
        let den = self.den.mul(other.num.magnitude());
        Rational::from_parts(if den_sign { num.neg() } else { num }, den)
    }

    /// Reciprocal.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn recip(&self) -> Rational {
        Rational::one().div(self)
    }

    /// Correctly rounded (RNE) conversion to `f64`.
    ///
    /// Works on the stored representation directly — the quotient (and
    /// thus the rounding) is invariant under common factors, so no
    /// normalization is needed.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let n = self.num.magnitude();
        let d = &self.den;
        // Compute a 55-bit quotient with sticky, then one rounding.
        let nlen = n.bit_len() as i64;
        let dlen = d.bit_len() as i64;
        // Shift numerator so the quotient has ~57 bits.
        let shift = 57 - (nlen - dlen);
        let (q, r) = if shift >= 0 {
            n.shl(shift as u64).div_rem(d)
        } else {
            // Quotient already huge; scale the denominator instead.
            n.div_rem(&d.shl((-shift) as u64))
        };
        let qlen = q.bit_len();
        debug_assert!(qlen >= 56, "quotient too short: {qlen}");
        // Keep the top 55 bits, fold everything else (plus the division
        // remainder) into a sticky bit, then let the u64 -> f64 conversion
        // do the single rounding.
        let drop = qlen - 55;
        let top = q.shr(drop).to_u64();
        let sticky = q.any_low_bits(drop) || !r.is_zero();
        let t = (top << 1) | sticky as u64;
        let scale = (qlen as i64 - 55) - shift - 1;
        let v = scale_f64(t as f64, scale);
        if self.num.is_negative() {
            -v
        } else {
            v
        }
    }
}

/// `x * 2^scale` with a single correct rounding even into the subnormal
/// range... except that `x` here always carries at most 56 significant bits,
/// so the two-step scaling below never double-rounds for the magnitudes the
/// oracle produces (|scale| < 2100).
fn scale_f64(x: f64, scale: i64) -> f64 {
    let mut v = x;
    let mut s = scale;
    while s > 1000 {
        v *= 2f64.powi(1000);
        s -= 1000;
    }
    while s < -1000 {
        v *= 2f64.powi(-1000);
        s += 1000;
    }
    v * 2f64.powi(s as i32)
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0); representation-invariant.
        let lhs = self.num.mul(&BigInt::from_biguint(false, other.den.clone()));
        let rhs = other.num.mul(&BigInt::from_biguint(false, self.den.clone()));
        lhs.cmp(&rhs)
    }
}

macro_rules! rational_ops {
    ($trait:ident, $method:ident) => {
        impl core::ops::$trait for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                Rational::$method(self, rhs)
            }
        }
    };
}

rational_ops!(Add, add);
rational_ops!(Sub, sub);
rational_ops!(Mul, mul);
rational_ops!(Div, div);

impl core::ops::Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational::neg(self)
    }
}

impl core::fmt::Display for Rational {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Display the canonical form whatever the storage.
        let c = self.clone().reduce();
        if c.den.is_one() {
            write!(f, "{}", c.num)
        } else {
            write!(f, "{}/{}", c.num, c.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio_i64(n, d)
    }

    #[test]
    fn canonical_form() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::zero());
    }

    #[test]
    fn field_operations() {
        assert_eq!(r(1, 3).add(&r(1, 6)), r(1, 2));
        assert_eq!(r(1, 3).sub(&r(1, 2)), r(-1, 6));
        assert_eq!(r(2, 3).mul(&r(3, 4)), r(1, 2));
        assert_eq!(r(1, 3).div(&r(2, 3)), r(1, 2));
        assert_eq!(r(-1, 3).div(&r(-2, 3)), r(1, 2));
        assert_eq!(r(3, 7).recip(), r(7, 3));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < Rational::zero());
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn from_f64_is_exact() {
        assert_eq!(Rational::from_f64(0.5), r(1, 2));
        assert_eq!(Rational::from_f64(-0.75), r(-3, 4));
        assert_eq!(Rational::from_f64(3.0), r(3, 1));
        // 0.1 is NOT one tenth in binary.
        assert_ne!(Rational::from_f64(0.1), r(1, 10));
        let point_one = Rational::from_f64(0.1);
        assert_eq!(point_one.to_f64(), 0.1);
    }

    #[test]
    fn to_f64_correctly_rounded() {
        // 1/3 rounds to the nearest double.
        let third = r(1, 3);
        let d = third.to_f64();
        let lo = Rational::from_f64(rlibm_fp::bits::next_down_f64(d));
        let hi = Rational::from_f64(rlibm_fp::bits::next_up_f64(d));
        let dd = Rational::from_f64(d);
        assert!(third.sub(&dd).abs() <= third.sub(&lo).abs());
        assert!(third.sub(&dd).abs() <= third.sub(&hi).abs());
        // An exact tie: midpoint between 1.0 and 1.0 + eps is
        // 1 + 2^-53, which ties to even (1.0).
        let tie = Rational::one().add(&Rational::new(
            BigInt::one(),
            BigUint::one().shl(53),
        ));
        assert_eq!(tie.to_f64(), 1.0);
        // Just above the tie rounds up.
        let above = tie.add(&Rational::new(BigInt::one(), BigUint::one().shl(200)));
        assert_eq!(above.to_f64(), 1.0 + f64::EPSILON);
    }

    #[test]
    fn roundtrip_random_doubles() {
        let mut state = 0x12345678u64;
        for _ in 0..500 {
            // xorshift
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = f64::from_bits(state % 0x7FF0_0000_0000_0000);
            if !x.is_finite() {
                continue;
            }
            assert_eq!(Rational::from_f64(x).to_f64(), x, "x = {x:e}");
        }
    }

    #[test]
    fn display() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-7, 1).to_string(), "-7");
    }

    #[test]
    fn lazy_results_have_value_semantics() {
        // 1/6 * 3/1 stays stored as 3/6 under the watermark; equality,
        // ordering, hashing and canonicalization all see 1/2.
        let half = r(1, 6).mul(&r(3, 1));
        assert_eq!(half, r(1, 2));
        assert!(half <= r(1, 2) && half >= r(1, 2));
        use core::hash::{Hash, Hasher};
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        half.hash(&mut h1);
        r(1, 2).hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish(), "value-equal hashes must agree");
        let mut c = half.clone();
        c.canonicalize();
        assert!(!c.denom().is_one() && *c.denom() == BigUint::from_u64(2));
        assert_eq!(half.to_string(), "1/2", "Display shows the canonical form");
        assert_eq!(half.to_f64(), 0.5);
    }

    #[test]
    fn watermark_bounds_representation_growth() {
        // A long unreduced product chain must stay below (roughly) the
        // watermark instead of growing without bound.
        let mut acc = Rational::one();
        let step = Rational::from_f64(1.5f64.powi(40)); // wide power-of-two den
        let inv = step.recip();
        for _ in 0..200 {
            acc = acc.mul(&step).mul(&inv);
        }
        assert_eq!(acc, Rational::one());
        let bits = acc.numer().magnitude().bit_len() + acc.denom().bit_len();
        assert!(
            bits <= REDUCE_WATERMARK_BITS + 512,
            "unreduced growth escaped the watermark: {bits} bits"
        );
    }
}
