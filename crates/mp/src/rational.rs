//! Exact rational numbers.
//!
//! These are the coefficient domain of the LP solver (`rlibm-lp`): the paper
//! uses SoPlex in exact rational mode precisely because floating point
//! pivoting can certify an infeasible system as feasible (or vice versa),
//! which would silently break the correctly rounded guarantee.

use crate::bigint::BigInt;
use crate::biguint::BigUint;
use core::cmp::Ordering;

/// An exact rational number `num / den`, always in canonical form:
/// `den > 0`, `gcd(|num|, den) == 1`, and zero is `0/1`.
///
/// # Example
///
/// ```
/// use rlibm_mp::Rational;
/// let a = Rational::from_ratio_i64(1, 3);
/// let b = Rational::from_ratio_i64(1, 6);
/// assert_eq!(&a + &b, Rational::from_ratio_i64(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl Rational {
    /// Zero.
    pub fn zero() -> Self {
        Rational { num: BigInt::zero(), den: BigUint::one() }
    }

    /// One.
    pub fn one() -> Self {
        Rational { num: BigInt::one(), den: BigUint::one() }
    }

    /// Constructs from an integer.
    pub fn from_i64(x: i64) -> Self {
        Rational { num: BigInt::from_i64(x), den: BigUint::one() }
    }

    /// Constructs from a numerator/denominator pair of machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn from_ratio_i64(num: i64, den: i64) -> Self {
        assert!(den != 0, "zero denominator");
        let (num, den) = if den < 0 { (-num, -(den as i128)) } else { (num, den as i128) };
        Self::new(BigInt::from_i64(num), BigUint::from_u128(den as u128))
    }

    /// Constructs from big numerator and positive denominator, reducing to
    /// canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        if num.is_zero() {
            return Self::zero();
        }
        let g = num.magnitude().gcd(&den);
        let (n, _) = num.magnitude().div_rem(&g);
        let (d, _) = den.div_rem(&g);
        Rational {
            num: BigInt::from_biguint(num.is_negative(), n),
            den: d,
        }
    }

    /// Exact conversion from a finite `f64`: every double is a rational
    /// with a power-of-two denominator.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity.
    pub fn from_f64(x: f64) -> Self {
        assert!(x.is_finite(), "Rational::from_f64 of non-finite");
        let (sign, mant, exp) = rlibm_fp::bits::decompose_f64(x);
        if mant == 0 {
            return Self::zero();
        }
        let m = BigUint::from_u64(mant);
        if exp >= 0 {
            Rational {
                num: BigInt::from_biguint(sign, m.shl(exp as u64)),
                den: BigUint::one(),
            }
        } else {
            // mant is odd, so gcd(mant, 2^|exp|) == 1: already canonical.
            Rational {
                num: BigInt::from_biguint(sign, m),
                den: BigUint::one().shl((-exp) as u64),
            }
        }
    }

    /// The numerator.
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The (positive) denominator.
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True for strictly negative values.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Sign: -1, 0 or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Negation.
    pub fn neg(&self) -> Rational {
        Rational { num: self.num.neg(), den: self.den.clone() }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational { num: self.num.abs(), den: self.den.clone() }
    }

    /// Addition.
    pub fn add(&self, other: &Rational) -> Rational {
        let num = &self.num.mul(&BigInt::from_biguint(false, other.den.clone()))
            + &other.num.mul(&BigInt::from_biguint(false, self.den.clone()));
        Rational::new(num, self.den.mul(&other.den))
    }

    /// Subtraction.
    pub fn sub(&self, other: &Rational) -> Rational {
        self.add(&other.neg())
    }

    /// Multiplication.
    pub fn mul(&self, other: &Rational) -> Rational {
        Rational::new(self.num.mul(&other.num), self.den.mul(&other.den))
    }

    /// Division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div(&self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "rational division by zero");
        let num = self.num.mul(&BigInt::from_biguint(false, other.den.clone()));
        let den_sign = other.num.is_negative();
        let den = self.den.mul(other.num.magnitude());
        Rational::new(if den_sign { num.neg() } else { num }, den)
    }

    /// Reciprocal.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn recip(&self) -> Rational {
        Rational::one().div(self)
    }

    /// Correctly rounded (RNE) conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let n = self.num.magnitude();
        let d = &self.den;
        // Compute a 55-bit quotient with sticky, then one rounding.
        let nlen = n.bit_len() as i64;
        let dlen = d.bit_len() as i64;
        // Shift numerator so the quotient has ~57 bits.
        let shift = 57 - (nlen - dlen);
        let (q, r) = if shift >= 0 {
            n.shl(shift as u64).div_rem(d)
        } else {
            // Quotient already huge; scale the denominator instead.
            n.div_rem(&d.shl((-shift) as u64))
        };
        let qlen = q.bit_len();
        debug_assert!(qlen >= 56, "quotient too short: {qlen}");
        // Keep the top 55 bits, fold everything else (plus the division
        // remainder) into a sticky bit, then let the u64 -> f64 conversion
        // do the single rounding.
        let drop = qlen - 55;
        let top = q.shr(drop).to_u64();
        let sticky = q.any_low_bits(drop) || !r.is_zero();
        let t = (top << 1) | sticky as u64;
        let scale = (qlen as i64 - 55) - shift - 1;
        let v = scale_f64(t as f64, scale);
        if self.num.is_negative() {
            -v
        } else {
            v
        }
    }
}

/// `x * 2^scale` with a single correct rounding even into the subnormal
/// range... except that `x` here always carries at most 56 significant bits,
/// so the two-step scaling below never double-rounds for the magnitudes the
/// oracle produces (|scale| < 2100).
fn scale_f64(x: f64, scale: i64) -> f64 {
    let mut v = x;
    let mut s = scale;
    while s > 1000 {
        v *= 2f64.powi(1000);
        s -= 1000;
    }
    while s < -1000 {
        v *= 2f64.powi(-1000);
        s += 1000;
    }
    v * 2f64.powi(s as i32)
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0)
        let lhs = self.num.mul(&BigInt::from_biguint(false, other.den.clone()));
        let rhs = other.num.mul(&BigInt::from_biguint(false, self.den.clone()));
        lhs.cmp(&rhs)
    }
}

macro_rules! rational_ops {
    ($trait:ident, $method:ident) => {
        impl core::ops::$trait for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                Rational::$method(self, rhs)
            }
        }
    };
}

rational_ops!(Add, add);
rational_ops!(Sub, sub);
rational_ops!(Mul, mul);
rational_ops!(Div, div);

impl core::ops::Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational::neg(self)
    }
}

impl core::fmt::Display for Rational {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio_i64(n, d)
    }

    #[test]
    fn canonical_form() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::zero());
    }

    #[test]
    fn field_operations() {
        assert_eq!(r(1, 3).add(&r(1, 6)), r(1, 2));
        assert_eq!(r(1, 3).sub(&r(1, 2)), r(-1, 6));
        assert_eq!(r(2, 3).mul(&r(3, 4)), r(1, 2));
        assert_eq!(r(1, 3).div(&r(2, 3)), r(1, 2));
        assert_eq!(r(-1, 3).div(&r(-2, 3)), r(1, 2));
        assert_eq!(r(3, 7).recip(), r(7, 3));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < Rational::zero());
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn from_f64_is_exact() {
        assert_eq!(Rational::from_f64(0.5), r(1, 2));
        assert_eq!(Rational::from_f64(-0.75), r(-3, 4));
        assert_eq!(Rational::from_f64(3.0), r(3, 1));
        // 0.1 is NOT one tenth in binary.
        assert_ne!(Rational::from_f64(0.1), r(1, 10));
        let point_one = Rational::from_f64(0.1);
        assert_eq!(point_one.to_f64(), 0.1);
    }

    #[test]
    fn to_f64_correctly_rounded() {
        // 1/3 rounds to the nearest double.
        let third = r(1, 3);
        let d = third.to_f64();
        let lo = Rational::from_f64(rlibm_fp::bits::next_down_f64(d));
        let hi = Rational::from_f64(rlibm_fp::bits::next_up_f64(d));
        let dd = Rational::from_f64(d);
        assert!(third.sub(&dd).abs() <= third.sub(&lo).abs());
        assert!(third.sub(&dd).abs() <= third.sub(&hi).abs());
        // An exact tie: midpoint between 1.0 and 1.0 + eps is
        // 1 + 2^-53, which ties to even (1.0).
        let tie = Rational::one().add(&Rational::new(
            BigInt::one(),
            BigUint::one().shl(53),
        ));
        assert_eq!(tie.to_f64(), 1.0);
        // Just above the tie rounds up.
        let above = tie.add(&Rational::new(BigInt::one(), BigUint::one().shl(200)));
        assert_eq!(above.to_f64(), 1.0 + f64::EPSILON);
    }

    #[test]
    fn roundtrip_random_doubles() {
        let mut state = 0x12345678u64;
        for _ in 0..500 {
            // xorshift
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = f64::from_bits(state % 0x7FF0_0000_0000_0000);
            if !x.is_finite() {
                continue;
            }
            assert_eq!(Rational::from_f64(x).to_f64(), x, "x = {x:e}");
        }
    }

    #[test]
    fn display() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-7, 1).to_string(), "-7");
    }
}
