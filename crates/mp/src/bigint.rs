//! Arbitrary-precision signed integers (a sign + [`BigUint`] magnitude).

use crate::biguint::BigUint;
use core::cmp::Ordering;

/// An arbitrary-precision signed integer.
///
/// Canonical form: zero is always non-negative.
///
/// # Example
///
/// ```
/// use rlibm_mp::BigInt;
/// let a = BigInt::from_i64(-7);
/// let b = BigInt::from_i64(3);
/// assert_eq!((&a * &b).to_i64(), -21);
/// assert_eq!((&a + &b).to_i64(), -4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigInt {
    negative: bool,
    mag: BigUint,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        BigInt { negative: false, mag: BigUint::zero() }
    }

    /// One.
    pub fn one() -> Self {
        BigInt { negative: false, mag: BigUint::one() }
    }

    /// Constructs from an `i64`.
    pub fn from_i64(x: i64) -> Self {
        BigInt {
            negative: x < 0,
            mag: BigUint::from_u64(x.unsigned_abs()),
        }
    }

    /// Constructs from an `i128`.
    pub fn from_i128(x: i128) -> Self {
        BigInt {
            negative: x < 0,
            mag: BigUint::from_u128(x.unsigned_abs()),
        }
    }

    /// Constructs from a sign and magnitude.
    pub fn from_biguint(negative: bool, mag: BigUint) -> Self {
        BigInt {
            negative: negative && !mag.is_zero(),
            mag,
        }
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// True for strictly negative values.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Sign: -1, 0 or 1.
    pub fn signum(&self) -> i32 {
        if self.mag.is_zero() {
            0
        } else if self.negative {
            -1
        } else {
            1
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt { negative: false, mag: self.mag.clone() }
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        BigInt::from_biguint(!self.negative, self.mag.clone())
    }

    /// Addition.
    pub fn add(&self, other: &BigInt) -> BigInt {
        if self.negative == other.negative {
            BigInt::from_biguint(self.negative, self.mag.add(&other.mag))
        } else {
            match self.mag.cmp(&other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_biguint(self.negative, self.mag.sub(&other.mag))
                }
                Ordering::Less => {
                    BigInt::from_biguint(other.negative, other.mag.sub(&self.mag))
                }
            }
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// Multiplication.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        BigInt::from_biguint(self.negative != other.negative, self.mag.mul(&other.mag))
    }

    /// Truncated division with remainder: `self = q * other + r` with
    /// `|r| < |other|` and `r` having the sign of `self` (or zero).
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = self.mag.div_rem(&other.mag);
        (
            BigInt::from_biguint(self.negative != other.negative, q),
            BigInt::from_biguint(self.negative, r),
        )
    }

    /// The value as an `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit.
    pub fn to_i64(&self) -> i64 {
        if self.mag.is_zero() {
            return 0;
        }
        let m = self.mag.to_u64();
        if self.negative {
            assert!(m <= 1u64 << 63, "BigInt::to_i64 overflow");
            (m as i128).wrapping_neg() as i64
        } else {
            assert!(m < 1u64 << 63, "BigInt::to_i64 overflow");
            m as i64
        }
    }

    /// Approximate conversion to `f64` (correctly rounded, RNE).
    pub fn to_f64(&self) -> f64 {
        if self.mag.is_zero() {
            return 0.0;
        }
        let len = self.mag.bit_len();
        let v = if len <= 63 {
            self.mag.to_u64() as f64
        } else {
            // Take top 55 bits (53 + round + need-sticky) with sticky.
            let shift = len - 55;
            let top = self.mag.shr(shift).to_u64();
            let sticky = self.mag.any_low_bits(shift);
            let mut t = top << 1; // make room for the sticky bit
            if sticky {
                t |= 1;
            }
            // t has 56 bits; f64 conversion rounds once. The sticky bit is
            // below the rounding position, so this is a correct single
            // rounding overall (round-to-odd style composition).
            t as f64 * 2f64.powi((shift as i32) - 1)
        };
        if self.negative {
            -v
        } else {
            v
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.mag.cmp(&other.mag),
            (true, true) => other.mag.cmp(&self.mag),
        }
    }
}

macro_rules! bigint_ops {
    ($trait:ident, $method:ident) => {
        impl core::ops::$trait for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                BigInt::$method(self, rhs)
            }
        }
    };
}

bigint_ops!(Add, add);
bigint_ops!(Sub, sub);
bigint_ops!(Mul, mul);

impl core::ops::Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt::neg(self)
    }
}

impl core::fmt::Display for BigInt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_arithmetic() {
        let a = BigInt::from_i64(-5);
        let b = BigInt::from_i64(3);
        assert_eq!(a.add(&b).to_i64(), -2);
        assert_eq!(a.sub(&b).to_i64(), -8);
        assert_eq!(a.mul(&b).to_i64(), -15);
        assert_eq!(b.sub(&a).to_i64(), 8);
    }

    #[test]
    fn zero_is_canonical() {
        let a = BigInt::from_i64(-5);
        let z = a.add(&BigInt::from_i64(5));
        assert!(z.is_zero());
        assert!(!z.is_negative());
        assert_eq!(z.signum(), 0);
    }

    #[test]
    fn truncated_division() {
        let a = BigInt::from_i64(-7);
        let b = BigInt::from_i64(2);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.to_i64(), -3);
        assert_eq!(r.to_i64(), -1);
        // Invariant: a == q*b + r.
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn ordering() {
        let vals: Vec<BigInt> = [-100i64, -1, 0, 1, 99].iter().map(|&x| BigInt::from_i64(x)).collect();
        for w in vals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn to_f64_exact_and_rounded() {
        assert_eq!(BigInt::from_i64(-42).to_f64(), -42.0);
        let big = BigInt::from_biguint(false, crate::BigUint::from_u64(1).shl(100));
        assert_eq!(big.to_f64(), 2f64.powi(100));
        // 2^100 + 1 rounds down to 2^100.
        let big1 = BigInt::from_biguint(
            false,
            crate::BigUint::from_u64(1).shl(100).add(&crate::BigUint::one()),
        );
        assert_eq!(big1.to_f64(), 2f64.powi(100));
        // 2^100 + 2^47 is an exact tie -> rounds to even (down).
        let tie = BigInt::from_biguint(
            false,
            crate::BigUint::from_u64(1).shl(100).add(&crate::BigUint::from_u64(1).shl(47)),
        );
        assert_eq!(tie.to_f64(), 2f64.powi(100));
        // 2^100 + 2^47 + 1 must round up.
        let above = BigInt::from_biguint(false, tie.magnitude().add(&crate::BigUint::one()));
        assert_eq!(above.to_f64(), 2f64.powi(100) + 2f64.powi(48));
    }

    #[test]
    fn i64_boundaries() {
        assert_eq!(BigInt::from_i64(i64::MIN).to_i64(), i64::MIN);
        assert_eq!(BigInt::from_i64(i64::MAX).to_i64(), i64::MAX);
        assert_eq!(BigInt::from_i128(-1).to_i64(), -1);
    }

    #[test]
    fn display() {
        assert_eq!(BigInt::from_i64(-123).to_string(), "-123");
        assert_eq!(BigInt::zero().to_string(), "0");
    }
}
