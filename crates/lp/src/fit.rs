//! Polynomial fitting as exact linear programming.
//!
//! The paper's `GetCoeffsUsingLP` (Algorithm 4) asks: given reduced inputs
//! `r_i` with reduced intervals `[l_i, h_i]`, find polynomial coefficients
//! `c` such that `l_i <= P(r_i) <= h_i` for every `i`. We solve the
//! *maximum margin* variant — maximize `delta` such that
//! `l_i + delta <= P(r_i) <= h_i - delta` — which yields coefficients
//! centered inside the feasible polytope (so rounding them to doubles
//! rarely violates a constraint, cutting down the search-and-refine loop).
//!
//! Because there are only `k = degree + 1` coefficients but up to tens of
//! thousands of constraints, we hand the simplex the *dual*: `k + 2` rows
//! instead of `2m`, making each pivot O(k·m) instead of O(m²). The primal
//! coefficients are recovered from the optimal dual basis by solving the
//! `k+1` active constraints as an exact linear system.

use crate::error::LpError;
use crate::simplex::{solve_standard_form, solve_standard_form_warm, StandardResult};
use crate::simplex_f64::{solve_standard_form_f64, solve_standard_form_f64_warm, F64Result};
use rlibm_mp::{BigUint, Rational};
use std::collections::HashMap;

/// One linear constraint `lo <= sum_j basis_j * c_j <= hi` on the
/// polynomial coefficients `c`.
#[derive(Debug, Clone)]
pub struct FitConstraint {
    /// The value of each polynomial basis function at the constraint point
    /// (e.g. `[1, r, r^2, ...]` for a dense polynomial, `[r, r^3, r^5]`
    /// for an odd one).
    pub basis: Vec<Rational>,
    /// Lower interval endpoint.
    pub lo: Rational,
    /// Upper interval endpoint.
    pub hi: Rational,
}

impl FitConstraint {
    /// Builds the constraint for a reduced input `r` (an exact double) with
    /// rounding interval `[lo, hi]` (exact doubles) and the given term
    /// exponents (e.g. `[0, 1, 2, 3]` for a dense cubic, `[1, 3, 5]` for
    /// the paper's odd quintic for `sinpi`).
    pub fn from_point(r: f64, lo: f64, hi: f64, term_exponents: &[u32]) -> FitConstraint {
        let rq = Rational::from_f64(r);
        let basis = term_exponents
            .iter()
            .map(|&e| pow_rational(&rq, e))
            .collect();
        FitConstraint {
            basis,
            lo: Rational::from_f64(lo),
            hi: Rational::from_f64(hi),
        }
    }
}

fn pow_rational(r: &Rational, e: u32) -> Rational {
    let mut acc = Rational::one();
    for _ in 0..e {
        acc = acc.mul(r);
    }
    acc
}

/// A successful fit.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The exact rational coefficients, one per basis function.
    pub coeffs: Vec<Rational>,
    /// The margin `delta >= 0` by which every constraint is interior.
    pub margin: Rational,
}

impl FitResult {
    /// Coefficients rounded to `f64` (each with one correct rounding).
    pub fn coeffs_f64(&self) -> Vec<f64> {
        self.coeffs.iter().map(Rational::to_f64).collect()
    }
}

/// Stable identity of one dual column across CEGIS rounds.
///
/// Between LP calls the sample grows (counterexamples append) so raw
/// column *indices* shift; what stays meaningful is *which constraint's
/// which bound* a dual variable belongs to. Warm bases are therefore
/// keyed by caller-supplied constraint ids and translated back to column
/// indices against each round's constraint slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmCol {
    /// The dual variable of constraint `id`'s upper (`hi`) or lower
    /// (`lo`) primal inequality.
    Constraint {
        /// Caller-assigned stable id of the constraint.
        id: u64,
        /// `true` for the `hi` bound's dual variable, `false` for `lo`'s.
        upper: bool,
    },
    /// An artificial left basic at zero in tableau row `row` (a redundant
    /// dual row; row count `k + 1` is fixed across rounds, so the slot
    /// translates directly).
    Artificial {
        /// Tableau row index of the basic artificial.
        row: usize,
    },
}

/// Optimal-basis snapshot handed back by [`max_margin_fit_warm`], to be
/// fed to the next call on a grown sample. Treat as opaque.
#[derive(Debug, Clone, Default)]
pub struct FitWarmStart {
    cols: Vec<WarmCol>,
}

/// Finds coefficients maximizing the margin, or `Ok(None)` when no
/// polynomial with this basis satisfies every interval.
///
/// Following SoPlex's iterative-refinement architecture, the solve runs in
/// two layers: a fast `f64` simplex proposes an optimal basis; the basis's
/// active constraints are then re-solved and the full constraint set
/// re-verified in **exact rational arithmetic**. Only when the floating
/// point basis fails exact verification does the slow exact simplex run.
/// A returned fit therefore always satisfies every constraint exactly; an
/// `Ok(None)` is exact whenever the exact path ran, and is a (practically
/// always correct) floating point verdict otherwise — a wrong `Ok(None)`
/// merely causes an unnecessary domain split upstream, never an incorrect
/// library.
///
/// # Errors
///
/// [`LpError::DimensionMismatch`] if constraints disagree on the basis
/// length; [`LpError::Cycling`] if the *exact* simplex exhausts its pivot
/// budget (an `f64`-layer budget exhaustion silently falls through to the
/// exact layer). Callers respond to `Cycling` by resampling.
///
/// # Example
///
/// ```
/// use rlibm_lp::fit::{max_margin_fit, FitConstraint};
/// // Fit c0 + c1 x through [0.9, 1.1] at x = 0 and [1.9, 2.1] at x = 1.
/// let cons = vec![
///     FitConstraint::from_point(0.0, 0.9, 1.1, &[0, 1]),
///     FitConstraint::from_point(1.0, 1.9, 2.1, &[0, 1]),
/// ];
/// let fit = max_margin_fit(&cons, 2).expect("solver ok").expect("feasible");
/// let c = fit.coeffs_f64();
/// assert!((c[0] - 1.0).abs() < 0.2 && (c[1] - 1.0).abs() < 0.4);
/// ```
pub fn max_margin_fit(
    constraints: &[FitConstraint],
    num_coeffs: usize,
) -> Result<Option<FitResult>, LpError> {
    let ids: Vec<u64> = (0..constraints.len() as u64).collect();
    Ok(max_margin_fit_warm(constraints, num_coeffs, &ids, None)?.map(|(fit, _)| fit))
}

/// [`max_margin_fit`] with warm-started re-solves for CEGIS loops.
///
/// `ids[i]` is a caller-chosen stable identity for `constraints[i]` —
/// stable meaning that when the caller re-invokes with a grown constraint
/// set (the CEGIS move: counterexamples append, intervals never change
/// identity), a surviving constraint keeps its id. The returned
/// [`FitWarmStart`] snapshots the optimal basis in id space; feeding it
/// to the next call lets both simplex layers skip phase 1 and re-enter at
/// the previous optimum, which is typically a handful of pivots from the
/// new one. Warm entry is strictly best-effort: any mismatch falls back
/// to the cold path inside the solver (counted by the
/// `lp.*.warm_fallbacks` telemetry), so correctness is untouched — a
/// returned fit is still exactly verified against every constraint.
///
/// # Errors
///
/// As [`max_margin_fit`], plus [`LpError::DimensionMismatch`] when `ids`
/// and `constraints` disagree in length. Duplicate ids make the id space
/// ambiguous and simply disable warm entry for that call.
pub fn max_margin_fit_warm(
    constraints: &[FitConstraint],
    num_coeffs: usize,
    ids: &[u64],
    warm: Option<&FitWarmStart>,
) -> Result<Option<(FitResult, FitWarmStart)>, LpError> {
    if constraints.is_empty() {
        return Ok(Some((
            FitResult {
                coeffs: vec![Rational::zero(); num_coeffs],
                margin: Rational::zero(),
            },
            FitWarmStart::default(),
        )));
    }
    if ids.len() != constraints.len() {
        return Err(LpError::DimensionMismatch {
            what: "constraint ids",
            expected: constraints.len(),
            got: ids.len(),
        });
    }
    let k = num_coeffs;
    for c in constraints {
        if c.basis.len() != k {
            return Err(LpError::DimensionMismatch {
                what: "constraint basis",
                expected: k,
                got: c.basis.len(),
            });
        }
        debug_assert!(c.lo <= c.hi, "empty interval");
    }
    let m = constraints.len();
    // Primal: min -delta over z = (c_0..c_{k-1}, delta) subject to
    //   ( a_i, 1) . z <= h_i      and      (-a_i, 1) . z <= -l_i.
    // Dual (what we actually solve): min q^T y, D^T y = (0,..,0,1), y >= 0
    // with one dual variable per primal inequality.
    let rows = k + 1;
    let cols = 2 * m;

    // Translate the id-space warm basis into this round's column indices.
    // An unknown id or bad row means the snapshot predates a sample reset:
    // silently solve cold (the solver-level fallback counters only track
    // warm attempts that reached the solver and failed there).
    let warm_cols: Option<Vec<usize>> = warm.and_then(|ws| {
        let index_of: HashMap<u64, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        if index_of.len() != ids.len() {
            return None; // duplicate ids: id space is ambiguous
        }
        ws.cols
            .iter()
            .map(|&wc| match wc {
                WarmCol::Constraint { id, upper } => index_of
                    .get(&id)
                    .map(|&i| 2 * i + usize::from(!upper)),
                WarmCol::Artificial { row } => (row < rows).then_some(cols + row),
            })
            .collect()
    });
    // Snapshot a solved basis back into id space.
    let snapshot = |basis: &[usize]| FitWarmStart {
        cols: basis
            .iter()
            .map(|&bj| {
                if bj < cols {
                    WarmCol::Constraint { id: ids[bj / 2], upper: bj % 2 == 0 }
                } else {
                    WarmCol::Artificial { row: bj - cols }
                }
            })
            .collect(),
    };

    // ---- Fast layer: f64 simplex proposes a basis. ----
    let basis_f64: Vec<f64> = constraints
        .iter()
        .flat_map(|c| c.basis.iter().map(Rational::to_f64))
        .collect();
    let mut a64 = vec![vec![0.0f64; cols]; rows];
    let mut c64 = vec![0.0f64; cols];
    for (i, con) in constraints.iter().enumerate() {
        for j in 0..k {
            a64[j][2 * i] = basis_f64[i * k + j];
            a64[j][2 * i + 1] = -basis_f64[i * k + j];
        }
        a64[k][2 * i] = 1.0;
        a64[k][2 * i + 1] = 1.0;
        c64[2 * i] = con.hi.to_f64();
        c64[2 * i + 1] = -con.lo.to_f64();
    }
    let mut b64 = vec![0.0f64; rows];
    b64[k] = 1.0;
    let budget = 2000 + 80 * m;
    let f64_result = match &warm_cols {
        Some(wb) => solve_standard_form_f64_warm(&a64, &b64, &c64, budget, wb),
        None => solve_standard_form_f64(&a64, &b64, &c64, budget),
    };
    if let Ok(F64Result::Optimal { basis, .. }) = f64_result {
        if let Some(fit) = recover_exact(&basis, constraints, k, cols) {
            if fit.margin.is_negative() {
                if warm_cols.is_none() {
                    // Exactly-computed optimum of the proposed basis is
                    // negative: no polynomial fits (modulo basis
                    // optimality, see the doc comment).
                    return Ok(None);
                }
                // A warm-started proposal must not decide infeasibility:
                // near a zero-margin optimum the warm pivot path can
                // terminate one vertex away from the cold path's, and an
                // "infeasible" verdict aborts the whole sub-domain. Fall
                // through to the exact layer for an exact verdict.
            } else if verify_exact(constraints, &fit.coeffs) {
                let ws = snapshot(&basis);
                return Ok(Some((fit, ws)));
            }
        }
    }

    // ---- Exact layer: rational simplex fallback. ----
    let mut a_std = vec![vec![Rational::zero(); cols]; rows];
    let mut c_std = vec![Rational::zero(); cols];
    for (i, con) in constraints.iter().enumerate() {
        for (j, bj) in con.basis.iter().enumerate() {
            a_std[j][2 * i] = bj.clone();
            a_std[j][2 * i + 1] = bj.neg();
        }
        a_std[k][2 * i] = Rational::one();
        a_std[k][2 * i + 1] = Rational::one();
        c_std[2 * i] = con.hi.clone();
        c_std[2 * i + 1] = con.lo.neg();
    }
    let mut b_std = vec![Rational::zero(); rows];
    b_std[k] = Rational::one();
    let exact_result = match &warm_cols {
        Some(wb) => solve_standard_form_warm(&a_std, &b_std, &c_std, budget, wb)?,
        None => solve_standard_form(&a_std, &b_std, &c_std, budget)?,
    };
    let (basis, objective) = match exact_result {
        StandardResult::Optimal { basis, objective, .. } => (basis, objective),
        StandardResult::Infeasible => {
            unreachable!("the dual of an always-feasible bounded primal cannot be infeasible")
        }
        // Dual unbounded <=> primal infeasible (cannot happen: delta is
        // free). Budget exhaustion propagates as LpError::Cycling above.
        StandardResult::Unbounded => return Ok(None),
    };
    if objective.is_negative() {
        return Ok(None);
    }
    let Some(fit) = recover_exact(&basis, constraints, k, cols) else {
        return Ok(None);
    };
    debug_assert_eq!(fit.margin, objective, "margin must equal the dual optimum");
    debug_assert!(verify_exact(constraints, &fit.coeffs));
    let ws = snapshot(&basis);
    Ok(Some((fit, ws)))
}

/// Solves the `k+1` active primal constraints named by a dual basis as an
/// exact linear system, recovering `(coefficients, margin)`.
fn recover_exact(
    basis: &[usize],
    constraints: &[FitConstraint],
    k: usize,
    cols: usize,
) -> Option<FitResult> {
    let rows = k + 1;
    let mut sys: Vec<Vec<Rational>> = Vec::with_capacity(rows);
    let mut rhs: Vec<Rational> = Vec::with_capacity(rows);
    for &bj in basis {
        if bj < cols {
            let i = bj / 2;
            let upper = bj % 2 == 0;
            let con = &constraints[i];
            let mut row: Vec<Rational> = Vec::with_capacity(rows);
            if upper {
                row.extend(con.basis.iter().cloned());
                row.push(Rational::one());
                rhs.push(con.hi.clone());
            } else {
                row.extend(con.basis.iter().map(Rational::neg));
                row.push(Rational::one());
                rhs.push(con.lo.neg());
            }
            sys.push(row);
        } else {
            // Artificial basic at zero pins the corresponding primal
            // coordinate to zero.
            let t = bj - cols;
            let mut row = vec![Rational::zero(); rows];
            row[t] = Rational::one();
            sys.push(row);
            rhs.push(Rational::zero());
        }
    }
    let z = solve_linear_system(&mut sys, &mut rhs)?;
    let margin = z[k].clone();
    let coeffs = z[..k].to_vec();
    Some(FitResult { coeffs, margin })
}

/// Exact feasibility check of a coefficient vector against every
/// constraint (margin not required: the caller wants plain containment).
fn verify_exact(constraints: &[FitConstraint], coeffs: &[Rational]) -> bool {
    constraints.iter().all(|con| {
        let mut v = Rational::zero();
        for (b, c) in con.basis.iter().zip(coeffs) {
            if !c.is_zero() && !b.is_zero() {
                v = v.add(&b.mul(c));
            }
        }
        v >= con.lo && v <= con.hi
    })
}

/// Exact Gaussian elimination with partial (first-nonzero) pivoting.
/// Returns `None` for a singular system (degenerate dual basis).
// The elimination reads row `col` while writing row `r`; index loops keep
// that two-row access pattern visible.
#[allow(clippy::needless_range_loop)]
fn solve_linear_system(a: &mut [Vec<Rational>], b: &mut [Rational]) -> Option<Vec<Rational>> {
    let n = b.len();
    for col in 0..n {
        let pivot_row = (col..n).find(|&r| !a[r][col].is_zero())?;
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let p = a[col][col].clone();
        for r in 0..n {
            if r == col || a[r][col].is_zero() {
                continue;
            }
            let factor = a[r][col].div(&p);
            for j in col..n {
                if !a[col][j].is_zero() {
                    a[r][j] = a[r][j].sub(&factor.mul(&a[col][j]));
                }
            }
            b[r] = b[r].sub(&factor.mul(&b[col]));
        }
    }
    let mut x = vec![Rational::zero(); n];
    for i in 0..n {
        x[i] = b[i].div(&a[i][i]);
    }
    Some(x)
}

/// Interpolation helper: the unique polynomial of degree `n-1` through `n`
/// exact points, via the same Gaussian elimination. Used by tests and by
/// the generator's lower-degree fallback.
pub fn interpolate(points: &[(Rational, Rational)]) -> Option<Vec<Rational>> {
    let n = points.len();
    let mut a: Vec<Vec<Rational>> = points
        .iter()
        .map(|(x, _)| (0..n as u32).map(|e| pow_rational(x, e)).collect())
        .collect();
    let mut b: Vec<Rational> = points.iter().map(|(_, y)| y.clone()).collect();
    solve_linear_system(&mut a, &mut b)
}

/// Builds `2^k` as a Rational (convenience for tests and interval maths).
pub fn pow2_rational(k: i64) -> Rational {
    if k >= 0 {
        Rational::new(
            rlibm_mp::BigInt::from_biguint(false, BigUint::one().shl(k as u64)),
            BigUint::one(),
        )
    } else {
        Rational::new(rlibm_mp::BigInt::one(), BigUint::one().shl((-k) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_line_through_two_windows() {
        let cons = vec![
            FitConstraint::from_point(0.0, -0.1, 0.1, &[0, 1]),
            FitConstraint::from_point(1.0, 0.9, 1.1, &[0, 1]),
        ];
        let fit = max_margin_fit(&cons, 2).expect("lp").expect("feasible");
        assert!(!fit.margin.is_negative());
        let c = fit.coeffs_f64();
        // P(0) in [-0.1, 0.1], P(1) in [0.9, 1.1].
        assert!((-0.1..=0.1).contains(&c[0]));
        assert!((0.9..=1.1).contains(&(c[0] + c[1])));
    }

    #[test]
    fn margin_is_maximized() {
        // Single constraint: value at 0 in [0, 2]. Max margin = 1, value 1.
        let cons = vec![FitConstraint::from_point(0.0, 0.0, 2.0, &[0])];
        let fit = max_margin_fit(&cons, 1).expect("lp").expect("feasible");
        assert_eq!(fit.margin, Rational::one());
        assert_eq!(fit.coeffs[0], Rational::one());
    }

    #[test]
    fn detects_infeasible_windows() {
        // A degree-0 polynomial cannot be in [0, 0.1] and [1, 1.1] at once.
        let cons = vec![
            FitConstraint::from_point(0.5, 0.0, 0.1, &[0]),
            FitConstraint::from_point(0.7, 1.0, 1.1, &[0]),
        ];
        assert!(max_margin_fit(&cons, 1).expect("lp").is_none());
    }

    #[test]
    fn quadratic_through_three_tight_windows() {
        // y = x^2 sampled at 3 points with tiny windows.
        let eps = 1e-9;
        let cons: Vec<_> = [0.25, 0.5, 0.75]
            .iter()
            .map(|&x| FitConstraint::from_point(x, x * x - eps, x * x + eps, &[0, 1, 2]))
            .collect();
        let fit = max_margin_fit(&cons, 3).expect("lp").expect("feasible");
        let c = fit.coeffs_f64();
        assert!(c[0].abs() < 1e-6, "c0 = {}", c[0]);
        assert!(c[1].abs() < 1e-5, "c1 = {}", c[1]);
        assert!((c[2] - 1.0).abs() < 1e-5, "c2 = {}", c[2]);
    }

    #[test]
    fn odd_basis_for_sine_like_data() {
        // sin(pi r) on tiny domain fits c1 r + c3 r^3 with c1 ~ pi.
        let pts = [0.0001f64, 0.0005, 0.001, 0.0015, 0.00195];
        let cons: Vec<_> = pts
            .iter()
            .map(|&r| {
                let y = (core::f64::consts::PI * r).sin();
                FitConstraint::from_point(r, y - 1e-13, y + 1e-13, &[1, 3])
            })
            .collect();
        let fit = max_margin_fit(&cons, 2).expect("lp").expect("feasible");
        let c = fit.coeffs_f64();
        assert!((c[0] - core::f64::consts::PI).abs() < 1e-4, "c1 = {}", c[0]);
        assert!(c[1] < 0.0, "cubic term of sin must be negative: {}", c[1]);
    }

    #[test]
    fn singleton_intervals_force_interpolation() {
        // Exact point constraints: margin must be 0 and the line exact.
        let cons = vec![
            FitConstraint::from_point(0.0, 1.0, 1.0, &[0, 1]),
            FitConstraint::from_point(2.0, 5.0, 5.0, &[0, 1]),
        ];
        let fit = max_margin_fit(&cons, 2).expect("lp").expect("feasible");
        assert!(fit.margin.is_zero());
        assert_eq!(fit.coeffs[0], Rational::from_i64(1));
        assert_eq!(fit.coeffs[1], Rational::from_i64(2));
    }

    #[test]
    fn many_constraints_stay_fast() {
        // 400 constraints around y = 1 + x/2: the dual has only 3 rows.
        let mut cons = Vec::new();
        for i in 0..400 {
            let x = i as f64 / 400.0;
            let y = 1.0 + 0.5 * x;
            cons.push(FitConstraint::from_point(x, y - 1e-6, y + 1e-6, &[0, 1]));
        }
        let fit = max_margin_fit(&cons, 2).expect("lp").expect("feasible");
        let c = fit.coeffs_f64();
        assert!((c[0] - 1.0).abs() < 1e-5);
        assert!((c[1] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn interpolation_recovers_cubic() {
        let r = Rational::from_i64;
        // y = x^3 - 2x + 1 at 4 points.
        let pts: Vec<_> = [-1i64, 0, 1, 2]
            .iter()
            .map(|&x| {
                let xr = r(x);
                let y = xr.mul(&xr).mul(&xr).sub(&r(2).mul(&xr)).add(&r(1));
                (xr, y)
            })
            .collect();
        let c = interpolate(&pts).expect("nonsingular");
        assert_eq!(c[0], r(1));
        assert_eq!(c[1], r(-2));
        assert_eq!(c[2], r(0));
        assert_eq!(c[3], r(1));
    }

    #[test]
    fn pow2_rational_both_signs() {
        assert_eq!(pow2_rational(10).to_f64(), 1024.0);
        assert_eq!(pow2_rational(-3).to_f64(), 0.125);
    }

    #[test]
    fn warm_chain_reproduces_cold_fits_exactly() {
        // Simulate a CEGIS loop: start with a seed sample, append one
        // constraint per round (keeping ids stable), and carry the warm
        // basis forward. The cubic target is *not* representable by the
        // quadratic basis, so the max-margin optimum is pinned by genuine
        // approximation error and is unique (no equal-margin vertex
        // ties, the generic situation for real rounding intervals). The
        // warm fit must then be *identical* — same exact rational
        // coefficients — to a cold fit of the same constraint set: warm
        // entry may only change the pivot path, not the optimum.
        let curve = |x: f64| 0.3 + 0.7 * x - 0.4 * x * x + 0.9 * x * x * x;
        let mk = |i: usize| {
            let x = 0.05 + i as f64 * 0.11 + (i * i % 7) as f64 * 0.013;
            // Width chosen so the best-quadratic error binds (margin < w,
            // making the optimum unique) while staying feasible as the
            // appended points stretch the domain.
            let w = 0.08;
            FitConstraint::from_point(x, curve(x) - w, curve(x) + w, &[0, 1, 2])
        };
        let mut cons: Vec<FitConstraint> = (0..8).map(mk).collect();
        let mut ids: Vec<u64> = (0..8).collect();
        let mut warm: Option<FitWarmStart> = None;
        for round in 0..6 {
            let (fit, ws) = max_margin_fit_warm(&cons, 3, &ids, warm.as_ref())
                .expect("lp")
                .expect("feasible");
            let cold = max_margin_fit(&cons, 3).expect("lp").expect("feasible");
            assert_eq!(fit.margin, cold.margin, "round {round}");
            assert_eq!(fit.coeffs, cold.coeffs, "round {round}");
            let i = 8 + round;
            cons.push(mk(i));
            ids.push(i as u64);
            warm = Some(ws);
        }
    }

    #[test]
    fn mismatched_ids_are_a_typed_error() {
        let cons = vec![FitConstraint::from_point(0.0, 0.0, 2.0, &[0])];
        assert!(matches!(
            max_margin_fit_warm(&cons, 1, &[], None),
            Err(LpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn stale_warm_start_still_fits() {
        // A warm start naming ids that no longer exist must fall back
        // cleanly and still produce a verified fit.
        let cons = vec![FitConstraint::from_point(0.0, 0.0, 2.0, &[0])];
        let (_, ws) = max_margin_fit_warm(&cons, 1, &[7], None)
            .expect("lp")
            .expect("feasible");
        let cons2 = vec![FitConstraint::from_point(0.0, 0.0, 4.0, &[0])];
        let (fit, _) = max_margin_fit_warm(&cons2, 1, &[99], Some(&ws))
            .expect("lp")
            .expect("feasible");
        assert_eq!(fit.coeffs[0], Rational::from_i64(2));
        assert_eq!(fit.margin, Rational::from_i64(2));
    }
}
