//! Polynomial fitting as exact linear programming.
//!
//! The paper's `GetCoeffsUsingLP` (Algorithm 4) asks: given reduced inputs
//! `r_i` with reduced intervals `[l_i, h_i]`, find polynomial coefficients
//! `c` such that `l_i <= P(r_i) <= h_i` for every `i`. We solve the
//! *maximum margin* variant — maximize `delta` such that
//! `l_i + delta <= P(r_i) <= h_i - delta` — which yields coefficients
//! centered inside the feasible polytope (so rounding them to doubles
//! rarely violates a constraint, cutting down the search-and-refine loop).
//!
//! Because there are only `k = degree + 1` coefficients but up to tens of
//! thousands of constraints, we hand the simplex the *dual*: `k + 2` rows
//! instead of `2m`, making each pivot O(k·m) instead of O(m²). The primal
//! coefficients are recovered from the optimal dual basis by solving the
//! `k+1` active constraints as an exact linear system.

use crate::error::LpError;
use crate::simplex::{solve_standard_form, StandardResult};
use crate::simplex_f64::{solve_standard_form_f64, F64Result};
use rlibm_mp::{BigUint, Rational};

/// One linear constraint `lo <= sum_j basis_j * c_j <= hi` on the
/// polynomial coefficients `c`.
#[derive(Debug, Clone)]
pub struct FitConstraint {
    /// The value of each polynomial basis function at the constraint point
    /// (e.g. `[1, r, r^2, ...]` for a dense polynomial, `[r, r^3, r^5]`
    /// for an odd one).
    pub basis: Vec<Rational>,
    /// Lower interval endpoint.
    pub lo: Rational,
    /// Upper interval endpoint.
    pub hi: Rational,
}

impl FitConstraint {
    /// Builds the constraint for a reduced input `r` (an exact double) with
    /// rounding interval `[lo, hi]` (exact doubles) and the given term
    /// exponents (e.g. `[0, 1, 2, 3]` for a dense cubic, `[1, 3, 5]` for
    /// the paper's odd quintic for `sinpi`).
    pub fn from_point(r: f64, lo: f64, hi: f64, term_exponents: &[u32]) -> FitConstraint {
        let rq = Rational::from_f64(r);
        let basis = term_exponents
            .iter()
            .map(|&e| pow_rational(&rq, e))
            .collect();
        FitConstraint {
            basis,
            lo: Rational::from_f64(lo),
            hi: Rational::from_f64(hi),
        }
    }
}

fn pow_rational(r: &Rational, e: u32) -> Rational {
    let mut acc = Rational::one();
    for _ in 0..e {
        acc = acc.mul(r);
    }
    acc
}

/// A successful fit.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The exact rational coefficients, one per basis function.
    pub coeffs: Vec<Rational>,
    /// The margin `delta >= 0` by which every constraint is interior.
    pub margin: Rational,
}

impl FitResult {
    /// Coefficients rounded to `f64` (each with one correct rounding).
    pub fn coeffs_f64(&self) -> Vec<f64> {
        self.coeffs.iter().map(Rational::to_f64).collect()
    }
}

/// Finds coefficients maximizing the margin, or `Ok(None)` when no
/// polynomial with this basis satisfies every interval.
///
/// Following SoPlex's iterative-refinement architecture, the solve runs in
/// two layers: a fast `f64` simplex proposes an optimal basis; the basis's
/// active constraints are then re-solved and the full constraint set
/// re-verified in **exact rational arithmetic**. Only when the floating
/// point basis fails exact verification does the slow exact simplex run.
/// A returned fit therefore always satisfies every constraint exactly; an
/// `Ok(None)` is exact whenever the exact path ran, and is a (practically
/// always correct) floating point verdict otherwise — a wrong `Ok(None)`
/// merely causes an unnecessary domain split upstream, never an incorrect
/// library.
///
/// # Errors
///
/// [`LpError::DimensionMismatch`] if constraints disagree on the basis
/// length; [`LpError::Cycling`] if the *exact* simplex exhausts its pivot
/// budget (an `f64`-layer budget exhaustion silently falls through to the
/// exact layer). Callers respond to `Cycling` by resampling.
///
/// # Example
///
/// ```
/// use rlibm_lp::fit::{max_margin_fit, FitConstraint};
/// // Fit c0 + c1 x through [0.9, 1.1] at x = 0 and [1.9, 2.1] at x = 1.
/// let cons = vec![
///     FitConstraint::from_point(0.0, 0.9, 1.1, &[0, 1]),
///     FitConstraint::from_point(1.0, 1.9, 2.1, &[0, 1]),
/// ];
/// let fit = max_margin_fit(&cons, 2).expect("solver ok").expect("feasible");
/// let c = fit.coeffs_f64();
/// assert!((c[0] - 1.0).abs() < 0.2 && (c[1] - 1.0).abs() < 0.4);
/// ```
pub fn max_margin_fit(
    constraints: &[FitConstraint],
    num_coeffs: usize,
) -> Result<Option<FitResult>, LpError> {
    if constraints.is_empty() {
        return Ok(Some(FitResult {
            coeffs: vec![Rational::zero(); num_coeffs],
            margin: Rational::zero(),
        }));
    }
    let k = num_coeffs;
    for c in constraints {
        if c.basis.len() != k {
            return Err(LpError::DimensionMismatch {
                what: "constraint basis",
                expected: k,
                got: c.basis.len(),
            });
        }
        debug_assert!(c.lo <= c.hi, "empty interval");
    }
    let m = constraints.len();
    // Primal: min -delta over z = (c_0..c_{k-1}, delta) subject to
    //   ( a_i, 1) . z <= h_i      and      (-a_i, 1) . z <= -l_i.
    // Dual (what we actually solve): min q^T y, D^T y = (0,..,0,1), y >= 0
    // with one dual variable per primal inequality.
    let rows = k + 1;
    let cols = 2 * m;

    // ---- Fast layer: f64 simplex proposes a basis. ----
    let basis_f64: Vec<f64> = constraints
        .iter()
        .flat_map(|c| c.basis.iter().map(Rational::to_f64))
        .collect();
    let mut a64 = vec![vec![0.0f64; cols]; rows];
    let mut c64 = vec![0.0f64; cols];
    for (i, con) in constraints.iter().enumerate() {
        for j in 0..k {
            a64[j][2 * i] = basis_f64[i * k + j];
            a64[j][2 * i + 1] = -basis_f64[i * k + j];
        }
        a64[k][2 * i] = 1.0;
        a64[k][2 * i + 1] = 1.0;
        c64[2 * i] = con.hi.to_f64();
        c64[2 * i + 1] = -con.lo.to_f64();
    }
    let mut b64 = vec![0.0f64; rows];
    b64[k] = 1.0;
    let budget = 2000 + 80 * m;
    if let Ok(F64Result::Optimal { basis, .. }) =
        solve_standard_form_f64(&a64, &b64, &c64, budget)
    {
        if let Some(fit) = recover_exact(&basis, constraints, k, cols) {
            if fit.margin.is_negative() {
                // Exactly-computed optimum of the proposed basis is
                // negative: no polynomial fits (modulo basis optimality,
                // see the doc comment).
                return Ok(None);
            }
            if verify_exact(constraints, &fit.coeffs) {
                return Ok(Some(fit));
            }
        }
    }

    // ---- Exact layer: rational simplex fallback. ----
    let mut a_std = vec![vec![Rational::zero(); cols]; rows];
    let mut c_std = vec![Rational::zero(); cols];
    for (i, con) in constraints.iter().enumerate() {
        for (j, bj) in con.basis.iter().enumerate() {
            a_std[j][2 * i] = bj.clone();
            a_std[j][2 * i + 1] = bj.neg();
        }
        a_std[k][2 * i] = Rational::one();
        a_std[k][2 * i + 1] = Rational::one();
        c_std[2 * i] = con.hi.clone();
        c_std[2 * i + 1] = con.lo.neg();
    }
    let mut b_std = vec![Rational::zero(); rows];
    b_std[k] = Rational::one();
    let (basis, objective) = match solve_standard_form(&a_std, &b_std, &c_std, budget)? {
        StandardResult::Optimal { basis, objective, .. } => (basis, objective),
        StandardResult::Infeasible => {
            unreachable!("the dual of an always-feasible bounded primal cannot be infeasible")
        }
        // Dual unbounded <=> primal infeasible (cannot happen: delta is
        // free). Budget exhaustion propagates as LpError::Cycling above.
        StandardResult::Unbounded => return Ok(None),
    };
    if objective.is_negative() {
        return Ok(None);
    }
    let Some(fit) = recover_exact(&basis, constraints, k, cols) else {
        return Ok(None);
    };
    debug_assert_eq!(fit.margin, objective, "margin must equal the dual optimum");
    debug_assert!(verify_exact(constraints, &fit.coeffs));
    Ok(Some(fit))
}

/// Solves the `k+1` active primal constraints named by a dual basis as an
/// exact linear system, recovering `(coefficients, margin)`.
fn recover_exact(
    basis: &[usize],
    constraints: &[FitConstraint],
    k: usize,
    cols: usize,
) -> Option<FitResult> {
    let rows = k + 1;
    let mut sys: Vec<Vec<Rational>> = Vec::with_capacity(rows);
    let mut rhs: Vec<Rational> = Vec::with_capacity(rows);
    for &bj in basis {
        if bj < cols {
            let i = bj / 2;
            let upper = bj % 2 == 0;
            let con = &constraints[i];
            let mut row: Vec<Rational> = Vec::with_capacity(rows);
            if upper {
                row.extend(con.basis.iter().cloned());
                row.push(Rational::one());
                rhs.push(con.hi.clone());
            } else {
                row.extend(con.basis.iter().map(Rational::neg));
                row.push(Rational::one());
                rhs.push(con.lo.neg());
            }
            sys.push(row);
        } else {
            // Artificial basic at zero pins the corresponding primal
            // coordinate to zero.
            let t = bj - cols;
            let mut row = vec![Rational::zero(); rows];
            row[t] = Rational::one();
            sys.push(row);
            rhs.push(Rational::zero());
        }
    }
    let z = solve_linear_system(&mut sys, &mut rhs)?;
    let margin = z[k].clone();
    let coeffs = z[..k].to_vec();
    Some(FitResult { coeffs, margin })
}

/// Exact feasibility check of a coefficient vector against every
/// constraint (margin not required: the caller wants plain containment).
fn verify_exact(constraints: &[FitConstraint], coeffs: &[Rational]) -> bool {
    constraints.iter().all(|con| {
        let mut v = Rational::zero();
        for (b, c) in con.basis.iter().zip(coeffs) {
            if !c.is_zero() && !b.is_zero() {
                v = v.add(&b.mul(c));
            }
        }
        v >= con.lo && v <= con.hi
    })
}

/// Exact Gaussian elimination with partial (first-nonzero) pivoting.
/// Returns `None` for a singular system (degenerate dual basis).
// The elimination reads row `col` while writing row `r`; index loops keep
// that two-row access pattern visible.
#[allow(clippy::needless_range_loop)]
fn solve_linear_system(a: &mut [Vec<Rational>], b: &mut [Rational]) -> Option<Vec<Rational>> {
    let n = b.len();
    for col in 0..n {
        let pivot_row = (col..n).find(|&r| !a[r][col].is_zero())?;
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let p = a[col][col].clone();
        for r in 0..n {
            if r == col || a[r][col].is_zero() {
                continue;
            }
            let factor = a[r][col].div(&p);
            for j in col..n {
                if !a[col][j].is_zero() {
                    a[r][j] = a[r][j].sub(&factor.mul(&a[col][j]));
                }
            }
            b[r] = b[r].sub(&factor.mul(&b[col]));
        }
    }
    let mut x = vec![Rational::zero(); n];
    for i in 0..n {
        x[i] = b[i].div(&a[i][i]);
    }
    Some(x)
}

/// Interpolation helper: the unique polynomial of degree `n-1` through `n`
/// exact points, via the same Gaussian elimination. Used by tests and by
/// the generator's lower-degree fallback.
pub fn interpolate(points: &[(Rational, Rational)]) -> Option<Vec<Rational>> {
    let n = points.len();
    let mut a: Vec<Vec<Rational>> = points
        .iter()
        .map(|(x, _)| (0..n as u32).map(|e| pow_rational(x, e)).collect())
        .collect();
    let mut b: Vec<Rational> = points.iter().map(|(_, y)| y.clone()).collect();
    solve_linear_system(&mut a, &mut b)
}

/// Builds `2^k` as a Rational (convenience for tests and interval maths).
pub fn pow2_rational(k: i64) -> Rational {
    if k >= 0 {
        Rational::new(
            rlibm_mp::BigInt::from_biguint(false, BigUint::one().shl(k as u64)),
            BigUint::one(),
        )
    } else {
        Rational::new(rlibm_mp::BigInt::one(), BigUint::one().shl((-k) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_line_through_two_windows() {
        let cons = vec![
            FitConstraint::from_point(0.0, -0.1, 0.1, &[0, 1]),
            FitConstraint::from_point(1.0, 0.9, 1.1, &[0, 1]),
        ];
        let fit = max_margin_fit(&cons, 2).expect("lp").expect("feasible");
        assert!(!fit.margin.is_negative());
        let c = fit.coeffs_f64();
        // P(0) in [-0.1, 0.1], P(1) in [0.9, 1.1].
        assert!((-0.1..=0.1).contains(&c[0]));
        assert!((0.9..=1.1).contains(&(c[0] + c[1])));
    }

    #[test]
    fn margin_is_maximized() {
        // Single constraint: value at 0 in [0, 2]. Max margin = 1, value 1.
        let cons = vec![FitConstraint::from_point(0.0, 0.0, 2.0, &[0])];
        let fit = max_margin_fit(&cons, 1).expect("lp").expect("feasible");
        assert_eq!(fit.margin, Rational::one());
        assert_eq!(fit.coeffs[0], Rational::one());
    }

    #[test]
    fn detects_infeasible_windows() {
        // A degree-0 polynomial cannot be in [0, 0.1] and [1, 1.1] at once.
        let cons = vec![
            FitConstraint::from_point(0.5, 0.0, 0.1, &[0]),
            FitConstraint::from_point(0.7, 1.0, 1.1, &[0]),
        ];
        assert!(max_margin_fit(&cons, 1).expect("lp").is_none());
    }

    #[test]
    fn quadratic_through_three_tight_windows() {
        // y = x^2 sampled at 3 points with tiny windows.
        let eps = 1e-9;
        let cons: Vec<_> = [0.25, 0.5, 0.75]
            .iter()
            .map(|&x| FitConstraint::from_point(x, x * x - eps, x * x + eps, &[0, 1, 2]))
            .collect();
        let fit = max_margin_fit(&cons, 3).expect("lp").expect("feasible");
        let c = fit.coeffs_f64();
        assert!(c[0].abs() < 1e-6, "c0 = {}", c[0]);
        assert!(c[1].abs() < 1e-5, "c1 = {}", c[1]);
        assert!((c[2] - 1.0).abs() < 1e-5, "c2 = {}", c[2]);
    }

    #[test]
    fn odd_basis_for_sine_like_data() {
        // sin(pi r) on tiny domain fits c1 r + c3 r^3 with c1 ~ pi.
        let pts = [0.0001f64, 0.0005, 0.001, 0.0015, 0.00195];
        let cons: Vec<_> = pts
            .iter()
            .map(|&r| {
                let y = (core::f64::consts::PI * r).sin();
                FitConstraint::from_point(r, y - 1e-13, y + 1e-13, &[1, 3])
            })
            .collect();
        let fit = max_margin_fit(&cons, 2).expect("lp").expect("feasible");
        let c = fit.coeffs_f64();
        assert!((c[0] - core::f64::consts::PI).abs() < 1e-4, "c1 = {}", c[0]);
        assert!(c[1] < 0.0, "cubic term of sin must be negative: {}", c[1]);
    }

    #[test]
    fn singleton_intervals_force_interpolation() {
        // Exact point constraints: margin must be 0 and the line exact.
        let cons = vec![
            FitConstraint::from_point(0.0, 1.0, 1.0, &[0, 1]),
            FitConstraint::from_point(2.0, 5.0, 5.0, &[0, 1]),
        ];
        let fit = max_margin_fit(&cons, 2).expect("lp").expect("feasible");
        assert!(fit.margin.is_zero());
        assert_eq!(fit.coeffs[0], Rational::from_i64(1));
        assert_eq!(fit.coeffs[1], Rational::from_i64(2));
    }

    #[test]
    fn many_constraints_stay_fast() {
        // 400 constraints around y = 1 + x/2: the dual has only 3 rows.
        let mut cons = Vec::new();
        for i in 0..400 {
            let x = i as f64 / 400.0;
            let y = 1.0 + 0.5 * x;
            cons.push(FitConstraint::from_point(x, y - 1e-6, y + 1e-6, &[0, 1]));
        }
        let fit = max_margin_fit(&cons, 2).expect("lp").expect("feasible");
        let c = fit.coeffs_f64();
        assert!((c[0] - 1.0).abs() < 1e-5);
        assert!((c[1] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn interpolation_recovers_cubic() {
        let r = Rational::from_i64;
        // y = x^3 - 2x + 1 at 4 points.
        let pts: Vec<_> = [-1i64, 0, 1, 2]
            .iter()
            .map(|&x| {
                let xr = r(x);
                let y = xr.mul(&xr).mul(&xr).sub(&r(2).mul(&xr)).add(&r(1));
                (xr, y)
            })
            .collect();
        let c = interpolate(&pts).expect("nonsingular");
        assert_eq!(c[0], r(1));
        assert_eq!(c[1], r(-2));
        assert_eq!(c[2], r(0));
        assert_eq!(c[3], r(1));
    }

    #[test]
    fn pow2_rational_both_signs() {
        assert_eq!(pow2_rational(10).to_f64(), 1024.0);
        assert_eq!(pow2_rational(-3).to_f64(), 0.125);
    }
}
