//! Floating point simplex used as a *basis oracle*.
//!
//! Exact rational pivoting on a dense tableau is robust but slow once
//! entries grow to thousands of bits. SoPlex — the paper's solver — gets
//! both speed and exactness through iterative refinement (Gleixner,
//! Steffy, Wolter, ISSAC'12, the paper's citation [17]): solve fast in
//! floating point, then repair in exact arithmetic. We follow the same
//! architecture: this module finds an (almost surely optimal) basis in
//! `f64`; [`crate::fit`] re-solves the active constraints *exactly* and
//! verifies every constraint in rational arithmetic, falling back to the
//! exact simplex when the floating point basis does not check out.

use crate::error::LpError;
use rlibm_obs::Counter;

// Basis-oracle telemetry, mirroring the exact engine's counters (no-ops
// unless built with the `telemetry` feature).
static LP_F64_SOLVES: Counter = Counter::new("lp.f64.solves");
static LP_F64_PIVOTS: Counter = Counter::new("lp.f64.pivots");
static LP_F64_CYCLING: Counter = Counter::new("lp.f64.cycling");
static LP_F64_WARM_STARTS: Counter = Counter::new("lp.f64.warm_starts");
static LP_F64_WARM_FALLBACKS: Counter = Counter::new("lp.f64.warm_fallbacks");

/// Forces the f64-simplex counters into the snapshot registry at zero
/// (see `simplex::register_metrics`).
pub fn register_metrics() {
    LP_F64_SOLVES.register();
    LP_F64_PIVOTS.register();
    LP_F64_CYCLING.register();
    LP_F64_WARM_STARTS.register();
    LP_F64_WARM_FALLBACKS.register();
}

/// Outcome of the f64 solve: mirrors [`crate::simplex::StandardResult`]
/// but with approximate values.
#[derive(Debug, Clone, PartialEq)]
pub enum F64Result {
    /// An (approximately) optimal basis.
    Optimal {
        /// Column indices of the final basis, one per row.
        basis: Vec<usize>,
        /// Approximate objective value.
        objective: f64,
    },
    /// The phase-1 objective could not be driven to (near) zero.
    Infeasible,
    /// The objective appears unbounded below.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves `min c·x, A x = b, x >= 0` in `f64`, returning the final basis.
///
/// # Errors
///
/// [`LpError::DimensionMismatch`] on inconsistent dimensions;
/// [`LpError::Cycling`] when `max_pivots` is exhausted (callers fall back
/// to the exact solver or resample).
pub fn solve_standard_form_f64(
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
    max_pivots: usize,
) -> Result<F64Result, LpError> {
    LP_F64_SOLVES.add(1);
    let m = a.len();
    let n = if m > 0 { a[0].len() } else { c.len() };
    if b.len() != m {
        return Err(LpError::DimensionMismatch { what: "rhs length", expected: m, got: b.len() });
    }
    if c.len() != n {
        return Err(LpError::DimensionMismatch {
            what: "objective length",
            expected: n,
            got: c.len(),
        });
    }
    if m == 0 {
        return Ok(F64Result::Optimal { basis: Vec::new(), objective: 0.0 });
    }
    let mut tableau = build_tableau_f64(a, b, m, n);
    let total = n + m;
    let mut basis: Vec<usize> = (n..n + m).collect();
    let mut pivots = max_pivots;

    // Phase 1.
    let p1_cost = |j: usize| if j >= n { 1.0 } else { 0.0 };
    match loop_f64(&mut tableau, &mut basis, total, total, &p1_cost, &mut pivots) {
        LoopF64::Optimal => {}
        LoopF64::Unbounded => unreachable!("phase 1 cannot be unbounded"),
        LoopF64::OutOfBudget => {
            LP_F64_CYCLING.add(1);
            return Err(LpError::Cycling { pivots: max_pivots });
        }
    }
    let infeas: f64 = basis
        .iter()
        .enumerate()
        .filter(|(_, &bj)| bj >= n)
        .map(|(i, _)| tableau[i][total])
        .sum();
    if infeas > EPS {
        return Ok(F64Result::Infeasible);
    }
    for i in 0..m {
        if basis[i] >= n {
            if let Some(j) = (0..n).find(|&j| tableau[i][j].abs() > EPS) {
                pivot_f64(&mut tableau, &mut basis, i, j, total);
            }
        }
    }
    // Phase 2.
    let p2_cost = |j: usize| if j >= n { 0.0 } else { c[j] };
    match loop_f64(&mut tableau, &mut basis, total, n, &p2_cost, &mut pivots) {
        LoopF64::Optimal => {}
        LoopF64::Unbounded => return Ok(F64Result::Unbounded),
        LoopF64::OutOfBudget => {
            LP_F64_CYCLING.add(1);
            return Err(LpError::Cycling { pivots: max_pivots });
        }
    }
    let mut objective = 0.0;
    for (i, &bj) in basis.iter().enumerate() {
        if bj < n {
            objective += c[bj] * tableau[i][total];
        }
    }
    Ok(F64Result::Optimal { basis, objective })
}

/// Like [`solve_standard_form_f64`], but first tries to re-enter the
/// simplex from `warm_basis`, the optimal basis of a previous related
/// solve with the same rows. CEGIS re-solves only ever *append columns*
/// (new counterexamples add dual variables) or *change the objective*
/// (interval refinement rewrites `c`); neither move disturbs the primal
/// feasibility of an old basis, so phase 1 can be skipped: rebuild the
/// tableau, pivot each warm column back into the basis, and run phase 2
/// directly. Any snag — stale index, duplicate or dependent column,
/// negative rhs, exhausted budget — falls back to the cold two-phase
/// solve, so the warm path can only change *speed*, never the result's
/// validity (the caller certifies optimality downstream regardless).
///
/// # Errors
///
/// As [`solve_standard_form_f64`]; a failed warm entry is not an error,
/// only a counted fallback.
pub fn solve_standard_form_f64_warm(
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
    max_pivots: usize,
    warm_basis: &[usize],
) -> Result<F64Result, LpError> {
    let m = a.len();
    let n = if m > 0 { a[0].len() } else { c.len() };
    if m > 0 && b.len() == m && c.len() == n && warm_basis.len() == m {
        if let Some(res) = warm_attempt_f64(a, b, c, max_pivots, warm_basis, m, n) {
            LP_F64_SOLVES.add(1);
            LP_F64_WARM_STARTS.add(1);
            return Ok(res);
        }
    }
    LP_F64_WARM_FALLBACKS.add(1);
    solve_standard_form_f64(a, b, c, max_pivots)
}

/// The warm-entry body: `None` means "fall back to the cold solve".
fn warm_attempt_f64(
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
    max_pivots: usize,
    warm_basis: &[usize],
    m: usize,
    n: usize,
) -> Option<F64Result> {
    let total = n + m;
    let mut tableau = build_tableau_f64(a, b, m, n);
    let mut basis: Vec<usize> = (n..n + m).collect();
    let mut pivots = max_pivots;

    // Split warm targets: artificial columns are already basic in their
    // own row (the identity block), structural columns must be pivoted in.
    let mut claimed = vec![false; m];
    let mut seen = vec![false; total];
    let mut structural = Vec::with_capacity(m);
    for &j in warm_basis {
        if j >= total || seen[j] {
            return None; // stale or duplicated column: basis unusable
        }
        seen[j] = true;
        if j >= n {
            claimed[j - n] = true;
        } else {
            structural.push(j);
        }
    }
    for j in structural {
        // Partial pivoting over the unclaimed rows: the warm columns are
        // linearly independent if the old basis still makes sense, so a
        // greedy max-|entry| assignment succeeds unless the basis is stale.
        let mut best: Option<(usize, f64)> = None;
        for (i, row) in tableau.iter().enumerate() {
            let v = row[j].abs();
            if !claimed[i] && v > EPS && best.is_none_or(|(_, bv)| v > bv) {
                best = Some((i, v));
            }
        }
        let (i, _) = best?;
        if pivots == 0 {
            return None;
        }
        pivots -= 1;
        pivot_f64(&mut tableau, &mut basis, i, j, total);
        claimed[i] = true;
    }
    // The rebuilt basis must be primal feasible (rhs >= 0) with every
    // still-basic artificial stuck at zero; otherwise phase 1 is needed
    // after all and the cold path should run it.
    for (i, row) in tableau.iter().enumerate() {
        let rhs = row[total];
        if rhs < -EPS || (basis[i] >= n && rhs > EPS) {
            return None;
        }
    }
    let p2_cost = |j: usize| if j >= n { 0.0 } else { c[j] };
    match loop_f64(&mut tableau, &mut basis, total, n, &p2_cost, &mut pivots) {
        LoopF64::Optimal => {
            let mut objective = 0.0;
            for (i, &bj) in basis.iter().enumerate() {
                if bj < n {
                    objective += c[bj] * tableau[i][total];
                }
            }
            Some(F64Result::Optimal { basis, objective })
        }
        LoopF64::Unbounded => Some(F64Result::Unbounded),
        LoopF64::OutOfBudget => None, // suspected cycling: restart cold
    }
}

/// Sign-normalized `[A | I | b]` tableau with one artificial per row.
fn build_tableau_f64(a: &[Vec<f64>], b: &[f64], m: usize, n: usize) -> Vec<Vec<f64>> {
    let mut tableau: Vec<Vec<f64>> = Vec::with_capacity(m);
    for i in 0..m {
        let flip = b[i] < 0.0;
        let s = if flip { -1.0 } else { 1.0 };
        let mut row: Vec<f64> = a[i].iter().take(n).map(|&v| s * v).collect();
        for k in 0..m {
            row.push(if k == i { 1.0 } else { 0.0 });
        }
        row.push(s * b[i]);
        tableau.push(row);
    }
    tableau
}

/// Result of one f64 simplex phase.
enum LoopF64 {
    Optimal,
    Unbounded,
    OutOfBudget,
}

// Same lockstep tableau indexing as the exact simplex loop.
#[allow(clippy::needless_range_loop)]
fn loop_f64(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    total: usize,
    enter_limit: usize,
    cost: &dyn Fn(usize) -> f64,
    pivots: &mut usize,
) -> LoopF64 {
    let m = tableau.len();
    let mut degenerate = 0usize;
    loop {
        let cb: Vec<f64> = basis.iter().map(|&bj| cost(bj)).collect();
        let bland = degenerate > 4 * total;
        let mut entering: Option<(usize, f64)> = None;
        for j in 0..enter_limit {
            if basis.contains(&j) {
                continue;
            }
            let mut rc = cost(j);
            for i in 0..m {
                if cb[i] != 0.0 {
                    rc -= cb[i] * tableau[i][j];
                }
            }
            if rc < -EPS {
                if bland {
                    entering = Some((j, rc));
                    break;
                }
                match entering {
                    Some((_, best)) if rc >= best => {}
                    _ => entering = Some((j, rc)),
                }
            }
        }
        let Some((j_in, _)) = entering else { return LoopF64::Optimal };
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if tableau[i][j_in] > EPS {
                let ratio = tableau[i][total] / tableau[i][j_in];
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < lr - EPS
                            || (ratio < lr + EPS && basis[i] < basis[li])
                        {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((i_out, ratio)) = leave else { return LoopF64::Unbounded };
        degenerate = if ratio.abs() <= EPS { degenerate + 1 } else { 0 };
        if *pivots == 0 {
            return LoopF64::OutOfBudget;
        }
        *pivots -= 1;
        pivot_f64(tableau, basis, i_out, j_in, total);
    }
}

fn pivot_f64(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    row: usize,
    col: usize,
    total: usize,
) {
    LP_F64_PIVOTS.add(1);
    let p = tableau[row][col];
    for v in tableau[row].iter_mut() {
        *v /= p;
    }
    tableau[row][col] = 1.0;
    let pivot_row = tableau[row].clone();
    for (i, r) in tableau.iter_mut().enumerate() {
        if i == row {
            continue;
        }
        let f = r[col];
        if f == 0.0 {
            continue;
        }
        for j in 0..=total {
            r[j] -= f * pivot_row[j];
        }
        r[col] = 0.0;
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_solver_on_small_problem() {
        let a = vec![vec![1.0, 2.0, 1.0, 0.0], vec![3.0, 1.0, 0.0, 1.0]];
        let b = vec![4.0, 6.0];
        let c = vec![-1.0, -1.0, 0.0, 0.0];
        match solve_standard_form_f64(&a, &b, &c, 10_000) {
            Ok(F64Result::Optimal { objective, .. }) => {
                assert!((objective - (-14.0 / 5.0)).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        let a = vec![vec![1.0], vec![1.0]];
        let b = vec![1.0, 2.0];
        let c = vec![0.0];
        assert_eq!(solve_standard_form_f64(&a, &b, &c, 10_000), Ok(F64Result::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let a = vec![vec![1.0, -1.0]];
        let b = vec![0.0];
        let c = vec![-1.0, 0.0];
        assert_eq!(solve_standard_form_f64(&a, &b, &c, 10_000), Ok(F64Result::Unbounded));
    }

    #[test]
    fn exhausted_budget_is_a_typed_error() {
        let a = vec![vec![1.0, 2.0, 1.0, 0.0], vec![3.0, 1.0, 0.0, 1.0]];
        let b = vec![4.0, 6.0];
        let c = vec![-1.0, -1.0, 0.0, 0.0];
        assert_eq!(
            solve_standard_form_f64(&a, &b, &c, 0),
            Err(LpError::Cycling { pivots: 0 })
        );
    }

    #[test]
    fn warm_restart_from_own_optimum_matches_cold() {
        let a = vec![vec![1.0, 2.0, 1.0, 0.0], vec![3.0, 1.0, 0.0, 1.0]];
        let b = vec![4.0, 6.0];
        let c = vec![-1.0, -1.0, 0.0, 0.0];
        let Ok(F64Result::Optimal { basis, objective }) =
            solve_standard_form_f64(&a, &b, &c, 10_000)
        else {
            panic!("cold solve failed")
        };
        // Re-solving from the optimum must hit the same objective with no
        // phase-1 work (an already-optimal basis needs zero phase-2 pivots,
        // so a budget covering only the basis-entry pivots suffices).
        match solve_standard_form_f64_warm(&a, &b, &c, basis.len(), &basis) {
            Ok(F64Result::Optimal { objective: warm_obj, basis: warm_basis }) => {
                assert!((warm_obj - objective).abs() < 1e-12);
                let mut sorted = warm_basis.clone();
                sorted.sort_unstable();
                let mut cold_sorted = basis.clone();
                cold_sorted.sort_unstable();
                assert_eq!(sorted, cold_sorted);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn warm_survives_appended_columns_and_changed_objective() {
        // Round 1: two columns. Round 2 appends two more columns (the
        // CEGIS move) and perturbs the objective; the old basis must still
        // warm-start and reach the new optimum.
        let a1 = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let b = vec![2.0, 3.0];
        let c1 = vec![-1.0, -1.0];
        let Ok(F64Result::Optimal { basis, .. }) = solve_standard_form_f64(&a1, &b, &c1, 1000)
        else {
            panic!("round 1 failed")
        };
        let a2 = vec![vec![1.0, 0.0, 1.0, 2.0], vec![0.0, 1.0, 1.0, 0.5]];
        let c2 = vec![-1.0, -2.0, -10.0, 0.0];
        // Old basis indices survive verbatim: columns were only appended.
        let warm = solve_standard_form_f64_warm(&a2, &b, &c2, 1000, &basis)
            .expect("warm solve");
        let cold = solve_standard_form_f64(&a2, &b, &c2, 1000).expect("cold solve");
        let (F64Result::Optimal { objective: wo, .. }, F64Result::Optimal { objective: co, .. }) =
            (warm, cold)
        else {
            panic!("expected optimal from both paths")
        };
        assert!((wo - co).abs() < 1e-9, "warm {wo} vs cold {co}");
    }

    #[test]
    fn stale_warm_basis_falls_back_to_cold() {
        let a = vec![vec![1.0, 2.0, 1.0, 0.0], vec![3.0, 1.0, 0.0, 1.0]];
        let b = vec![4.0, 6.0];
        let c = vec![-1.0, -1.0, 0.0, 0.0];
        // Out-of-range and duplicated columns: both must quietly cold-solve.
        for bogus in [vec![99usize, 0], vec![1usize, 1]] {
            match solve_standard_form_f64_warm(&a, &b, &c, 10_000, &bogus) {
                Ok(F64Result::Optimal { objective, .. }) => {
                    assert!((objective - (-14.0 / 5.0)).abs() < 1e-9);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
