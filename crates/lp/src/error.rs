//! Typed errors for the LP layer.
//!
//! The solvers in this crate never panic on degenerate or oversized
//! problems: budget exhaustion and malformed inputs surface as
//! [`LpError`] values so the generator upstream can restart with fresh
//! samples or split the domain instead of aborting a multi-hour run.

/// Failure modes of the simplex solvers and the fitting front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The pivot budget ran out before reaching optimality. With Bland's
    /// rule engaged the simplex provably terminates, so in practice this
    /// means the problem needs more pivots than the caller's budget — the
    /// caller should retry with fresh samples or a smaller problem.
    Cycling {
        /// The exhausted budget (total pivots granted).
        pivots: usize,
    },
    /// Matrix/vector dimensions disagree (ragged constraint matrix,
    /// wrong-length cost or right-hand side, inconsistent basis length).
    DimensionMismatch {
        /// Which input was malformed.
        what: &'static str,
        /// The length implied by the rest of the problem.
        expected: usize,
        /// The length actually supplied.
        got: usize,
    },
}

impl core::fmt::Display for LpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LpError::Cycling { pivots } => {
                write!(f, "simplex pivot budget exhausted after {pivots} pivots")
            }
            LpError::DimensionMismatch { what, expected, got } => {
                write!(f, "dimension mismatch in {what}: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for LpError {}
