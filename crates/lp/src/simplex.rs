//! Exact two-phase primal simplex over rationals.
//!
//! Solves `min c·x` subject to `A x = b`, `x >= 0` with every pivot carried
//! out in exact [`Rational`] arithmetic — the property that makes SoPlex
//! (in its exact mode) the solver of choice in the paper: a floating point
//! solver can return "feasible" coefficients that violate a rounding
//! interval by a hair, silently destroying the correctly rounded guarantee.
//!
//! Pivoting uses Dantzig's rule for speed with an automatic switch to
//! Bland's rule (which provably terminates) if degeneracy drags on.

use crate::error::LpError;
use rlibm_mp::Rational;
use rlibm_obs::Counter;

// Solver telemetry (no-ops unless built with the `telemetry` feature).
// Pivot counts dominate generation cost once tableau entries grow, so the
// exact/f64 pivot ratio is the number to watch when tuning the basis-
// oracle refinement path.
static LP_EXACT_SOLVES: Counter = Counter::new("lp.exact.solves");
static LP_EXACT_PIVOTS: Counter = Counter::new("lp.exact.pivots");
static LP_EXACT_CYCLING: Counter = Counter::new("lp.exact.cycling");
static LP_EXACT_WARM_STARTS: Counter = Counter::new("lp.exact.warm_starts");
static LP_EXACT_WARM_FALLBACKS: Counter = Counter::new("lp.exact.warm_fallbacks");

/// Forces the exact-simplex counters into the snapshot registry at zero.
/// The exact layer only runs when the f64 proposal fails certification,
/// so without this a clean run would omit the counters entirely and a
/// report could not distinguish "never needed" from "not linked".
pub fn register_metrics() {
    LP_EXACT_SOLVES.register();
    LP_EXACT_PIVOTS.register();
    LP_EXACT_CYCLING.register();
    LP_EXACT_WARM_STARTS.register();
    LP_EXACT_WARM_FALLBACKS.register();
}

/// Outcome of a standard-form solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StandardResult {
    /// An optimal basic solution.
    Optimal {
        /// Values of all variables (length = number of columns).
        x: Vec<Rational>,
        /// Objective value `c·x`.
        objective: Rational,
        /// Column indices of the final basis, one per row.
        basis: Vec<usize>,
    },
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Exact simplex solver for `min c·x, A x = b, x >= 0`.
///
/// # Example
///
/// ```
/// use rlibm_lp::simplex::solve_standard_form;
/// use rlibm_mp::Rational;
/// let r = Rational::from_i64;
/// // min -x0 s.t. x0 + x1 = 4, x0 <= 3 (x0 + x2 = 3): optimum x0 = 3.
/// let a = vec![vec![r(1), r(1), r(0)], vec![r(1), r(0), r(1)]];
/// let b = vec![r(4), r(3)];
/// let c = vec![r(-1), r(0), r(0)];
/// match solve_standard_form(&a, &b, &c, 100_000) {
///     Ok(rlibm_lp::simplex::StandardResult::Optimal { x, .. }) => {
///         assert_eq!(x[0], r(3));
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
///
/// # Errors
///
/// [`LpError::DimensionMismatch`] if the matrix dimensions are
/// inconsistent; [`LpError::Cycling`] when the `max_pivots` budget runs
/// out before optimality (callers respond by splitting domains or
/// resampling).
pub fn solve_standard_form(
    a: &[Vec<Rational>],
    b: &[Rational],
    c: &[Rational],
    max_pivots: usize,
) -> Result<StandardResult, LpError> {
    LP_EXACT_SOLVES.add(1);
    let m = a.len();
    let n = if m > 0 { a[0].len() } else { c.len() };
    if b.len() != m {
        return Err(LpError::DimensionMismatch { what: "rhs length", expected: m, got: b.len() });
    }
    for row in a {
        if row.len() != n {
            return Err(LpError::DimensionMismatch {
                what: "constraint row",
                expected: n,
                got: row.len(),
            });
        }
    }
    if c.len() != n {
        return Err(LpError::DimensionMismatch {
            what: "objective length",
            expected: n,
            got: c.len(),
        });
    }
    if m == 0 {
        // No constraints: optimum is 0 iff no negative cost (else unbounded).
        if c.iter().any(|cj| cj.is_negative()) {
            return Ok(StandardResult::Unbounded);
        }
        return Ok(StandardResult::Optimal {
            x: vec![Rational::zero(); n],
            objective: Rational::zero(),
            basis: Vec::new(),
        });
    }

    // Phase 1: add one artificial per row (after sign-normalizing b >= 0),
    // minimize their sum.
    let mut tableau = build_tableau(a, b, m, n);
    let total_cols = n + m; // artificial columns are n..n+m
    let mut basis: Vec<usize> = (n..n + m).collect();

    // Phase-1 cost: 1 for artificials, 0 otherwise.
    let phase1_cost = |j: usize| {
        if j >= n {
            Rational::one()
        } else {
            Rational::zero()
        }
    };
    let mut pivots_left = max_pivots;
    match simplex_loop(
        &mut tableau,
        &mut basis,
        total_cols,
        total_cols,
        &|j| phase1_cost(j),
        &mut pivots_left,
    ) {
        LoopOutcome::Optimal => {}
        LoopOutcome::Unbounded => unreachable!("phase-1 objective cannot be unbounded"),
        LoopOutcome::OutOfBudget => {
            LP_EXACT_CYCLING.add(1);
            return Err(LpError::Cycling { pivots: max_pivots });
        }
    }
    // Phase-1 objective = sum of basic artificial values.
    let mut phase1_obj = Rational::zero();
    for (i, &bj) in basis.iter().enumerate() {
        if bj >= n {
            phase1_obj = phase1_obj.add(&tableau[i][total_cols]);
        }
    }
    if !phase1_obj.is_zero() {
        return Ok(StandardResult::Infeasible);
    }
    // Drive any (zero-valued) artificials out of the basis when possible.
    for i in 0..m {
        if basis[i] >= n {
            if let Some(j) = (0..n).find(|&j| !tableau[i][j].is_zero()) {
                pivot(&mut tableau, &mut basis, i, j, total_cols);
            }
            // If the whole row is zero on structural columns, the row is
            // redundant; the artificial stays basic at value zero, which is
            // harmless for phase 2 as long as it never goes positive (it
            // cannot: its column is excluded from entering below).
        }
    }

    // Phase 2: original costs; artificial columns barred from entering.
    let phase2_cost = |j: usize| {
        if j >= n {
            // Effectively +infinity: never attractive. Using a large cost
            // keeps the code uniform; correctness only needs "not
            // negative reduced cost", which a huge positive cost ensures.
            Rational::from_i64(1)
        } else {
            c[j].clone()
        }
    };
    match simplex_loop(
        &mut tableau,
        &mut basis,
        total_cols,
        n,
        &|j| phase2_cost(j),
        &mut pivots_left,
    ) {
        LoopOutcome::Optimal => {}
        LoopOutcome::Unbounded => return Ok(StandardResult::Unbounded),
        LoopOutcome::OutOfBudget => {
            LP_EXACT_CYCLING.add(1);
            return Err(LpError::Cycling { pivots: max_pivots });
        }
    }

    let mut x = vec![Rational::zero(); n];
    for (i, &bj) in basis.iter().enumerate() {
        if bj < n {
            x[bj] = tableau[i][total_cols].clone();
        }
    }
    let mut objective = Rational::zero();
    for j in 0..n {
        if !x[j].is_zero() {
            objective = objective.add(&c[j].mul(&x[j]));
        }
    }
    Ok(StandardResult::Optimal { x, objective, basis })
}

/// Like [`solve_standard_form`], but first tries to re-enter the simplex
/// from `warm_basis`, the optimal basis of a previous related solve with
/// the same rows. The two moves a CEGIS loop makes between LP calls —
/// appending columns (new counterexamples become dual variables) and
/// rewriting the objective (interval refinement) — both leave an old
/// basis primal feasible, so phase 1 can be skipped: rebuild the tableau,
/// pivot the warm columns back in, and run phase 2 directly. Any snag
/// (stale index, dependent column, negative rhs, exhausted budget) falls
/// back to the cold two-phase solve; warm starting can only change speed,
/// never the exactness of the answer.
///
/// # Errors
///
/// As [`solve_standard_form`]; a failed warm entry is not an error, only
/// a counted fallback.
pub fn solve_standard_form_warm(
    a: &[Vec<Rational>],
    b: &[Rational],
    c: &[Rational],
    max_pivots: usize,
    warm_basis: &[usize],
) -> Result<StandardResult, LpError> {
    let m = a.len();
    let n = if m > 0 { a[0].len() } else { c.len() };
    let dims_ok = m > 0
        && b.len() == m
        && c.len() == n
        && warm_basis.len() == m
        && a.iter().all(|row| row.len() == n);
    if dims_ok {
        if let Some(res) = warm_attempt(a, b, c, max_pivots, warm_basis, m, n) {
            LP_EXACT_SOLVES.add(1);
            LP_EXACT_WARM_STARTS.add(1);
            return Ok(res);
        }
    }
    LP_EXACT_WARM_FALLBACKS.add(1);
    solve_standard_form(a, b, c, max_pivots)
}

/// The warm-entry body: `None` means "fall back to the cold solve".
fn warm_attempt(
    a: &[Vec<Rational>],
    b: &[Rational],
    c: &[Rational],
    max_pivots: usize,
    warm_basis: &[usize],
    m: usize,
    n: usize,
) -> Option<StandardResult> {
    let total_cols = n + m;
    let mut tableau = build_tableau(a, b, m, n);
    let mut basis: Vec<usize> = (n..n + m).collect();
    let mut pivots_left = max_pivots;

    // Artificial warm columns are already basic in their own row (the
    // identity block); structural ones must be pivoted in.
    let mut claimed = vec![false; m];
    let mut seen = vec![false; total_cols];
    let mut structural = Vec::with_capacity(m);
    for &j in warm_basis {
        if j >= total_cols || seen[j] {
            return None; // stale or duplicated column: basis unusable
        }
        seen[j] = true;
        if j >= n {
            claimed[j - n] = true;
        } else {
            structural.push(j);
        }
    }
    for j in structural {
        // Exact arithmetic: any nonzero entry in an unclaimed row is a
        // valid pivot. First-match keeps the entry deterministic.
        let i = (0..m).find(|&i| !claimed[i] && !tableau[i][j].is_zero())?;
        if pivots_left == 0 {
            return None;
        }
        pivots_left -= 1;
        pivot(&mut tableau, &mut basis, i, j, total_cols);
        claimed[i] = true;
    }
    // The rebuilt basis must be primal feasible (rhs >= 0) with every
    // still-basic artificial exactly zero; otherwise phase 1 is really
    // needed and the cold path should run it.
    for (i, row) in tableau.iter().enumerate() {
        let rhs = &row[total_cols];
        if rhs.is_negative() || (basis[i] >= n && !rhs.is_zero()) {
            return None;
        }
    }
    // Phase 2 straight away (artificials barred from entering, as in the
    // cold path).
    let phase2_cost = |j: usize| {
        if j >= n {
            Rational::from_i64(1)
        } else {
            c[j].clone()
        }
    };
    match simplex_loop(
        &mut tableau,
        &mut basis,
        total_cols,
        n,
        &|j| phase2_cost(j),
        &mut pivots_left,
    ) {
        LoopOutcome::Optimal => {}
        LoopOutcome::Unbounded => return Some(StandardResult::Unbounded),
        LoopOutcome::OutOfBudget => return None, // suspected cycling: restart cold
    }
    let mut x = vec![Rational::zero(); n];
    for (i, &bj) in basis.iter().enumerate() {
        if bj < n {
            x[bj] = tableau[i][total_cols].clone();
        }
    }
    let mut objective = Rational::zero();
    for j in 0..n {
        if !x[j].is_zero() {
            objective = objective.add(&c[j].mul(&x[j]));
        }
    }
    Some(StandardResult::Optimal { x, objective, basis })
}

/// Sign-normalized `[A | I | b]` tableau with one artificial per row.
fn build_tableau(a: &[Vec<Rational>], b: &[Rational], m: usize, n: usize) -> Vec<Vec<Rational>> {
    let mut tableau: Vec<Vec<Rational>> = Vec::with_capacity(m);
    for i in 0..m {
        let flip = b[i].is_negative();
        let mut row: Vec<Rational> = Vec::with_capacity(n + m + 1);
        for v in a[i].iter().take(n) {
            row.push(if flip { v.neg() } else { v.clone() });
        }
        for k in 0..m {
            row.push(if k == i { Rational::one() } else { Rational::zero() });
        }
        row.push(if flip { b[i].neg() } else { b[i].clone() });
        tableau.push(row);
    }
    tableau
}

/// Result of one simplex phase.
enum LoopOutcome {
    Optimal,
    Unbounded,
    OutOfBudget,
}

/// Core loop. Columns `>= enter_limit` never enter the basis.
// Reduced-cost scans index `cb`, `basis` and tableau columns in lockstep;
// range loops keep the textbook simplex notation.
#[allow(clippy::needless_range_loop)]
fn simplex_loop(
    tableau: &mut [Vec<Rational>],
    basis: &mut [usize],
    total_cols: usize,
    enter_limit: usize,
    cost: &dyn Fn(usize) -> Rational,
    pivots_left: &mut usize,
) -> LoopOutcome {
    let m = tableau.len();
    let mut degenerate_streak = 0usize;
    loop {
        // Simplex multipliers via reduced costs computed directly:
        // rc_j = c_j - sum_i cb_i * T[i][j].
        let cb: Vec<Rational> = basis.iter().map(|&bj| cost(bj)).collect();
        let mut entering: Option<(usize, Rational)> = None;
        let bland = degenerate_streak > 2 * total_cols;
        for j in 0..enter_limit {
            if basis.contains(&j) {
                continue;
            }
            let mut rc = cost(j);
            for i in 0..m {
                if !cb[i].is_zero() && !tableau[i][j].is_zero() {
                    rc = rc.sub(&cb[i].mul(&tableau[i][j]));
                }
            }
            if rc.is_negative() {
                if bland {
                    entering = Some((j, rc));
                    break; // Bland: first improving column
                }
                match &entering {
                    Some((_, best)) if rc >= *best => {}
                    _ => entering = Some((j, rc)),
                }
            }
        }
        let Some((j_in, _)) = entering else {
            return LoopOutcome::Optimal;
        };
        // Ratio test (Bland tie-break on smallest basis index).
        let mut leave: Option<(usize, Rational)> = None;
        for i in 0..m {
            if tableau[i][j_in].signum() > 0 {
                let ratio = tableau[i][total_cols].div(&tableau[i][j_in]);
                match &leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < *lr || (ratio == *lr && basis[i] < basis[*li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((i_out, ratio)) = leave else {
            return LoopOutcome::Unbounded;
        };
        if ratio.is_zero() {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }
        if *pivots_left == 0 {
            return LoopOutcome::OutOfBudget;
        }
        *pivots_left -= 1;
        pivot(tableau, basis, i_out, j_in, total_cols);
    }
}

/// Gauss-Jordan pivot on (row, col).
fn pivot(tableau: &mut [Vec<Rational>], basis: &mut [usize], row: usize, col: usize, total_cols: usize) {
    LP_EXACT_PIVOTS.add(1);
    let p = tableau[row][col].clone();
    debug_assert!(!p.is_zero());
    for v in tableau[row].iter_mut() {
        if !v.is_zero() {
            *v = v.div(&p);
        }
    }
    // The pivot entry itself becomes exactly 1.
    tableau[row][col] = Rational::one();
    let pivot_row = tableau[row].clone();
    for (i, r) in tableau.iter_mut().enumerate() {
        if i == row {
            continue;
        }
        let factor = r[col].clone();
        if factor.is_zero() {
            continue;
        }
        for j in 0..=total_cols {
            if !pivot_row[j].is_zero() {
                r[j] = r[j].sub(&factor.mul(&pivot_row[j]));
            }
        }
        r[col] = Rational::zero();
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_i64(n)
    }

    fn rr(n: i64, d: i64) -> Rational {
        Rational::from_ratio_i64(n, d)
    }

    #[test]
    fn simple_optimum() {
        // min -x - y s.t. x + 2y + s1 = 4; 3x + y + s2 = 6. Vertices: the
        // optimum is at x = 8/5, y = 6/5 with objective -14/5.
        let a = vec![
            vec![r(1), r(2), r(1), r(0)],
            vec![r(3), r(1), r(0), r(1)],
        ];
        let b = vec![r(4), r(6)];
        let c = vec![r(-1), r(-1), r(0), r(0)];
        match solve_standard_form(&a, &b, &c, 10_000) {
            Ok(StandardResult::Optimal { x, objective, .. }) => {
                assert_eq!(x[0], rr(8, 5));
                assert_eq!(x[1], rr(6, 5));
                assert_eq!(objective, rr(-14, 5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        // x = 1 and x = 2 simultaneously.
        let a = vec![vec![r(1)], vec![r(1)]];
        let b = vec![r(1), r(2)];
        let c = vec![r(0)];
        assert_eq!(solve_standard_form(&a, &b, &c, 10_000), Ok(StandardResult::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // min -x s.t. x - y = 0: x can grow forever.
        let a = vec![vec![r(1), r(-1)]];
        let b = vec![r(0)];
        let c = vec![r(-1), r(0)];
        assert_eq!(solve_standard_form(&a, &b, &c, 10_000), Ok(StandardResult::Unbounded));
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // -x = -3 => x = 3.
        let a = vec![vec![r(-1)]];
        let b = vec![r(-3)];
        let c = vec![r(1)];
        match solve_standard_form(&a, &b, &c, 10_000) {
            Ok(StandardResult::Optimal { x, .. }) => assert_eq!(x[0], r(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn solution_satisfies_constraints_exactly() {
        // Random-ish fractional system solved exactly.
        let a = vec![
            vec![rr(1, 3), rr(2, 7), r(1), r(0)],
            vec![rr(5, 2), rr(-1, 4), r(0), r(1)],
        ];
        let b = vec![rr(10, 21), rr(9, 4)];
        let c = vec![r(-2), r(-3), r(0), r(0)];
        match solve_standard_form(&a, &b, &c, 10_000) {
            Ok(StandardResult::Optimal { x, .. }) => {
                for (row, rhs) in a.iter().zip(&b) {
                    let mut lhs = Rational::zero();
                    for (aij, xj) in row.iter().zip(&x) {
                        lhs = lhs.add(&aij.mul(xj));
                    }
                    assert_eq!(lhs, *rhs, "exact equality must hold");
                }
                for xj in &x {
                    assert!(!xj.is_negative());
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant rows force degenerate pivots.
        let a = vec![
            vec![r(1), r(1), r(1), r(0), r(0)],
            vec![r(2), r(2), r(0), r(1), r(0)],
            vec![r(1), r(1), r(0), r(0), r(1)],
        ];
        let b = vec![r(2), r(4), r(2)];
        let c = vec![r(-1), r(-2), r(0), r(0), r(0)];
        match solve_standard_form(&a, &b, &c, 100_000) {
            Ok(StandardResult::Optimal { objective, .. }) => {
                assert_eq!(objective, r(-4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exhausted_budget_is_a_typed_error() {
        // The degenerate problem above needs several pivots; a budget of
        // zero must surface as LpError::Cycling, never a panic or a spin.
        let a = vec![
            vec![r(1), r(1), r(1), r(0), r(0)],
            vec![r(2), r(2), r(0), r(1), r(0)],
            vec![r(1), r(1), r(0), r(0), r(1)],
        ];
        let b = vec![r(2), r(4), r(2)];
        let c = vec![r(-1), r(-2), r(0), r(0), r(0)];
        assert_eq!(
            solve_standard_form(&a, &b, &c, 0),
            Err(crate::error::LpError::Cycling { pivots: 0 })
        );
    }

    #[test]
    fn warm_restart_from_own_optimum_is_exact() {
        let a = vec![
            vec![r(1), r(2), r(1), r(0)],
            vec![r(3), r(1), r(0), r(1)],
        ];
        let b = vec![r(4), r(6)];
        let c = vec![r(-1), r(-1), r(0), r(0)];
        let Ok(StandardResult::Optimal { x, objective, basis }) =
            solve_standard_form(&a, &b, &c, 10_000)
        else {
            panic!("cold solve failed")
        };
        match solve_standard_form_warm(&a, &b, &c, basis.len(), &basis) {
            Ok(StandardResult::Optimal { x: wx, objective: wo, .. }) => {
                assert_eq!(wx, x);
                assert_eq!(wo, objective);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn warm_survives_appended_columns_and_changed_objective() {
        // The CEGIS moves: append columns, rewrite the objective. The old
        // basis indices survive verbatim and the warm answer must equal
        // the cold one exactly.
        let a1 = vec![vec![r(1), r(0)], vec![r(0), r(1)]];
        let b = vec![r(2), r(3)];
        let c1 = vec![r(-1), r(-1)];
        let Ok(StandardResult::Optimal { basis, .. }) = solve_standard_form(&a1, &b, &c1, 1000)
        else {
            panic!("round 1 failed")
        };
        let a2 = vec![
            vec![r(1), r(0), r(1), r(2)],
            vec![r(0), r(1), r(1), r(1)],
        ];
        let c2 = vec![r(-1), r(-2), r(-10), r(0)];
        let warm = solve_standard_form_warm(&a2, &b, &c2, 1000, &basis).expect("warm");
        let cold = solve_standard_form(&a2, &b, &c2, 1000).expect("cold");
        let (
            StandardResult::Optimal { objective: wo, .. },
            StandardResult::Optimal { objective: co, .. },
        ) = (warm, cold)
        else {
            panic!("expected optimal from both paths")
        };
        assert_eq!(wo, co);
    }

    #[test]
    fn stale_warm_basis_falls_back_to_cold() {
        let a = vec![
            vec![r(1), r(2), r(1), r(0)],
            vec![r(3), r(1), r(0), r(1)],
        ];
        let b = vec![r(4), r(6)];
        let c = vec![r(-1), r(-1), r(0), r(0)];
        for bogus in [vec![99usize, 0], vec![1usize, 1], vec![0usize]] {
            match solve_standard_form_warm(&a, &b, &c, 10_000, &bogus) {
                Ok(StandardResult::Optimal { objective, .. }) => {
                    assert_eq!(objective, rr(-14, 5));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn ragged_matrix_is_a_typed_error() {
        let a = vec![vec![r(1), r(2)], vec![r(1)]];
        let b = vec![r(1), r(2)];
        let c = vec![r(0), r(0)];
        assert!(matches!(
            solve_standard_form(&a, &b, &c, 100),
            Err(crate::error::LpError::DimensionMismatch { .. })
        ));
    }
}
