//! Exact rational linear programming (the SoPlex substitute).
//!
//! RLIBM-32 frames "find polynomial coefficients that land inside every
//! rounding interval" as a linear program and insists on an *exact
//! rational* solver: a floating point LP can misclassify feasibility right
//! at the boundary, which is exactly where correctly rounded libraries
//! live. This crate provides:
//!
//! * [`simplex`] — a two-phase primal simplex over [`rlibm_mp::Rational`]
//!   with Dantzig pricing and a Bland anti-cycling fallback.
//! * [`fit`] — the polynomial-fitting front end: maximum-margin interval
//!   fitting via the dual LP (rows = number of coefficients, so tens of
//!   thousands of constraints stay cheap), plus exact interpolation.
//!
//! Both solvers are bounded and panic-free: pivot budgets surface as
//! [`LpError::Cycling`] and malformed inputs as
//! [`LpError::DimensionMismatch`], so a degenerate basis can never hang
//! or abort a generator run.
//!
//! # Example
//!
//! ```
//! use rlibm_lp::fit::{max_margin_fit, FitConstraint};
//!
//! // Find c0 + c1*x passing through two windows:
//! let cons = vec![
//!     FitConstraint::from_point(0.0, 0.9, 1.1, &[0, 1]),
//!     FitConstraint::from_point(1.0, 2.9, 3.1, &[0, 1]),
//! ];
//! let fit = max_margin_fit(&cons, 2).expect("solver ok").expect("feasible");
//! assert!(!fit.margin.is_negative());
//! ```

pub mod error;
pub mod fit;
pub mod simplex;
pub mod simplex_f64;

pub use error::LpError;
pub use fit::{
    interpolate, max_margin_fit, max_margin_fit_warm, FitConstraint, FitResult, FitWarmStart,
};
pub use simplex::{solve_standard_form, StandardResult};
