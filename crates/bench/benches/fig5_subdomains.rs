//! Criterion version of Figure 5: log2/log10 throughput vs sub-domain
//! count 2^0 .. 2^12.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rlibm_bench::sweep::{Base, SweepLog};
use rlibm_bench::workloads::timing_inputs_f32;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let xs = timing_inputs_f32("log2", 1024, 44);
    for (base, label) in [(Base::Two, "log2"), (Base::Ten, "log10")] {
        let mut group = c.benchmark_group(format!("fig5/{label}"));
        for bits in 0..=12u32 {
            let sw = SweepLog::new(base, bits);
            group.bench_with_input(BenchmarkId::from_parameter(format!("2^{bits}")), &xs, |b, xs| {
                b.iter(|| {
                    for &x in xs {
                        black_box(sw.eval(black_box(x)));
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fig5
}
criterion_main!(benches);
