//! Criterion version of Figure 3: RLIBM-32 float functions vs the three
//! baseline models. Groups are named `fig3/<fn>/<library>`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rlibm_bench::workloads::timing_inputs_f32;
use rlibm_mp::Func;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    for f in Func::ALL {
        let name = f.name();
        let xs = timing_inputs_f32(name, 1024, 42);
        let mut group = c.benchmark_group(format!("fig3/{name}"));
        group.bench_with_input(BenchmarkId::new("rlibm32", name), &xs, |b, xs| {
            b.iter(|| {
                for &x in xs {
                    black_box(rlibm_math::eval_f32_by_name(name, black_box(x)));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("double_libm", name), &xs, |b, xs| {
            b.iter(|| {
                for &x in xs {
                    black_box(rlibm_math::baselines::double64::to_f32(name, black_box(x)));
                }
            })
        });
        if !matches!(f, Func::SinPi | Func::CosPi) {
            group.bench_with_input(BenchmarkId::new("crlibm", name), &xs, |b, xs| {
                b.iter(|| {
                    for &x in xs {
                        black_box(rlibm_math::baselines::crlibm::to_f32(name, black_box(x)));
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fig3
}
criterion_main!(benches);
