//! Criterion version of Figure 4: RLIBM-32 posit32 functions vs the
//! re-purposed double library model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rlibm_bench::workloads::timing_inputs_posit32;
use rlibm_mp::Func;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    for f in Func::POSIT {
        let name = f.name();
        let xs = timing_inputs_posit32(name, 1024, 43);
        let mut group = c.benchmark_group(format!("fig4/{name}"));
        group.bench_with_input(BenchmarkId::new("rlibm32", name), &xs, |b, xs| {
            b.iter(|| {
                for &x in xs {
                    black_box(rlibm_math::eval_posit32_by_name(name, black_box(x)));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("double_libm", name), &xs, |b, xs| {
            b.iter(|| {
                for &x in xs {
                    black_box(rlibm_math::baselines::double64::to_posit32(name, black_box(x)));
                }
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fig4
}
criterion_main!(benches);
