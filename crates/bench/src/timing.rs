//! Timing methodology mirroring Section 4.1.
//!
//! The paper measures hardware cycles per call over all 2^32 inputs, six
//! repetitions, on a fixed-frequency Xeon. Here we measure nanoseconds per
//! call over pseudo-random input arrays (the paper's secondary harness
//! uses arrays of 1024 inputs — same shape), taking the minimum of several
//! repetitions to suppress scheduler noise. Absolute numbers differ from
//! the paper's testbed; the *ratios* (speedups) are what the figures
//! reproduce.

use std::hint::black_box;
use std::time::Instant;

/// Measures the mean nanoseconds per call of `f` over `inputs`, taking the
/// best of `reps` timed sweeps (each sweep long enough to dominate timer
/// overhead).
pub fn ns_per_call<T: Copy, R>(inputs: &[T], reps: usize, mut f: impl FnMut(T) -> R) -> f64 {
    assert!(!inputs.is_empty());
    // Warm up and pick an iteration count that runs >= ~5 ms.
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            for &x in inputs {
                black_box(f(black_box(x)));
            }
        }
        let dt = t0.elapsed();
        if dt.as_secs_f64() >= 0.005 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            for &x in inputs {
                black_box(f(black_box(x)));
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt / (iters as f64 * inputs.len() as f64));
    }
    best * 1e9
}

/// Geometric mean of a slice of positive ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Formats a speedup row like the paper's figures ("1.31x").
pub fn fmt_speedup(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive_and_sane() {
        let inputs: Vec<f32> = (0..256).map(|i| i as f32 * 0.01 + 0.1).collect();
        let ns = ns_per_call(&inputs, 3, |x| x * 1.5 + 2.0);
        assert!(ns > 0.0 && ns < 1_000.0, "{ns} ns for a mul-add?");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
