//! Input workloads for timing and correctness sweeps.
//!
//! Timing inputs are drawn from each function's *useful* domain (the paper
//! times all 2^32 bit patterns, which for exp means mostly saturated
//! values; for ratio comparisons the interesting region is where the
//! polynomial path actually runs). Correctness sweeps reuse the stratified
//! generators from `rlibm-core`. All pseudo-randomness comes from the
//! in-tree [`XorShift64`] generator — the workspace has no registry
//! dependencies, and the streams are reproducible by seed alone.

use rlibm_fp::rng::XorShift64;
use rlibm_posit::Posit32;

/// A deterministic RNG for reproducible workloads.
pub fn rng(seed: u64) -> XorShift64 {
    XorShift64::new(seed)
}

/// Timing inputs for a float function: uniform over the region where the
/// kernel (not the special-case filter) runs.
pub fn timing_inputs_f32(name: &str, n: usize, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| match name {
            "ln" | "log2" | "log10" => {
                // Log-uniform positives across the full exponent range.
                let e = r.uniform_f32(-126.0, 127.0);
                let m = r.uniform_f32(1.0, 2.0);
                m * e.exp2()
            }
            "exp" => r.uniform_f32(-87.0, 88.0),
            "exp2" => r.uniform_f32(-125.0, 127.0),
            "exp10" => r.uniform_f32(-37.0, 38.0),
            "sinh" | "cosh" => r.uniform_f32(-88.0, 88.0),
            "sinpi" | "cospi" => r.uniform_f32(-1000.0, 1000.0),
            _ => panic!("unknown function {name}"),
        })
        .collect()
}

/// Timing inputs for a posit32 function.
pub fn timing_inputs_posit32(name: &str, n: usize, seed: u64) -> Vec<Posit32> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            let v: f64 = match name {
                "ln" | "log2" | "log10" => {
                    let e = r.uniform_f64(-118.0, 118.0);
                    let m = r.uniform_f64(1.0, 2.0);
                    m * e.exp2()
                }
                "exp" => r.uniform_f64(-82.0, 82.0),
                "exp2" => r.uniform_f64(-118.0, 118.0),
                "exp10" => r.uniform_f64(-35.0, 35.0),
                "sinh" | "cosh" => r.uniform_f64(-82.0, 82.0),
                _ => panic!("unknown posit function {name}"),
            };
            Posit32::from_f64(v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_stay_in_kernel_domains() {
        for name in ["ln", "exp", "exp2", "exp10", "sinh", "sinpi"] {
            let xs = timing_inputs_f32(name, 500, 7);
            assert_eq!(xs.len(), 500);
            for &x in &xs {
                let y = rlibm_math::eval_f32_by_name(name, x).expect("known name");
                assert!(!y.is_nan(), "{name}({x}) is NaN");
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(timing_inputs_f32("exp", 32, 5), timing_inputs_f32("exp", 32, 5));
        let a = timing_inputs_posit32("ln", 16, 1);
        let b = timing_inputs_posit32("ln", 16, 1);
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }
}
