//! Schema helpers for the `TRACE_report.json` latency-attribution
//! document (schema `rlibm-trace/v1`) emitted by the `trace_report`
//! harness.
//!
//! The document carries, per (kind, function) workload row, the exact
//! per-stage attribution sums of the trace-sampled requests — queue
//! wait, batch residency, kernel time per lane, rescalar-fallback time
//! per lane — plus service-wide stage quantiles (from the
//! `serve.trace.*` log2 histograms), exemplar input bit patterns behind
//! every shed reason / rescalar fallback / slowest completions, and a
//! flight-recorder summary.
//!
//! [`check_trace_schema`] is the single validator used both by the
//! harness (before exit, on its own emission) and by `--check` / ci.sh
//! on the committed artifact, so a hand-edited or stale report fails
//! the build. The `attribution` invariants — every workload row
//! nonzero — apply to full, telemetry-on documents; quick smokes and
//! telemetry-off builds only need the shape.

use crate::json::{check_bench_schema, Json};

/// Schema tag carried by every trace-attribution document.
pub const TRACE_SCHEMA: &str = "rlibm-trace/v1";

/// Per-row attribution fields (all `ns_*` so `bench_compare` diffs
/// them as timings).
pub const PER_FN_FIELDS: &[&str] =
    &["ns_queue_mean", "ns_batch_mean", "ns_kernel_lane", "ns_fallback_lane"];

/// Shed-reason exemplar sections; with `fault: true` each must be
/// non-empty (the chaos legs exercise every reason).
pub const SHED_SECTIONS: &[&str] =
    &["deadline", "backpressure", "admission", "corrupted", "poisoned"];

/// The four attributed stages summarized in `stage_quantiles`.
pub const STAGES: &[&str] = &["queue_wait_ns", "batch_wait_ns", "kernel_ns", "fallback_ns"];

fn flag(doc: &Json, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing boolean '{key}'")),
    }
}

/// Validates a trace-attribution document. Beyond the shared bench
/// schema (tag, `n_inputs`, per-row numeric fields), checks the flags,
/// the stage-quantile section, the exemplar sections, and — for full
/// telemetry-on documents — that every workload row carries nonzero
/// queue / batch / kernel attribution and every shed reason has at
/// least one exemplar when the chaos legs ran.
pub fn check_trace_schema(doc: &Json) -> Result<(), String> {
    check_bench_schema(doc, TRACE_SCHEMA, PER_FN_FIELDS)?;
    let quick = flag(doc, "quick")?;
    let telemetry = flag(doc, "telemetry")?;
    let fault = flag(doc, "fault")?;
    doc.get("sample_shift")
        .and_then(Json::as_num)
        .filter(|x| x.is_finite() && *x >= 0.0)
        .ok_or("missing numeric 'sample_shift'")?;

    let stages = doc.get("stage_quantiles").ok_or("missing 'stage_quantiles'")?;
    for stage in STAGES {
        let s = stages.get(stage).ok_or(format!("stage_quantiles missing '{stage}'"))?;
        for field in ["count", "p50", "p99", "p999"] {
            s.get(field)
                .and_then(Json::as_num)
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or(format!("stage '{stage}' missing numeric '{field}'"))?;
        }
    }

    let exemplars = doc.get("exemplars").ok_or("missing 'exemplars'")?;
    let section_len = |name: &str| -> Result<usize, String> {
        exemplars
            .get(name)
            .and_then(Json::as_arr)
            .map(<[Json]>::len)
            .ok_or(format!("exemplars missing '{name}' array"))
    };
    for name in SHED_SECTIONS {
        let n = section_len(name)?;
        if fault && telemetry && n == 0 {
            return Err(format!(
                "fault document has no '{name}' shed exemplars (the chaos legs must \
                 exercise every reason)"
            ));
        }
    }
    let rescalar = section_len("rescalar")?;
    if telemetry && !quick && rescalar == 0 {
        return Err("full document has no rescalar exemplars".to_string());
    }
    if section_len("slowest")? == 0 {
        return Err("'slowest' exemplars are empty".to_string());
    }

    let flight = doc.get("flight").ok_or("missing 'flight' summary")?;
    for field in ["dumps", "panic_dumps", "corruption_dumps", "events"] {
        flight
            .get(field)
            .and_then(Json::as_num)
            .filter(|x| x.is_finite() && *x >= 0.0)
            .ok_or(format!("flight summary missing numeric '{field}'"))?;
    }

    // The attribution teeth: a full telemetry-on run must attribute
    // every (kind, function) workload on every per-request stage.
    let rows = doc.get("functions").and_then(Json::as_arr).unwrap_or(&[]);
    if rows.len() != rlibm_serve::workload::NUM_FUNCS {
        return Err(format!(
            "expected {} workload rows, found {}",
            rlibm_serve::workload::NUM_FUNCS,
            rows.len()
        ));
    }
    if telemetry && !quick {
        for row in rows {
            let name = row.get("name").and_then(Json::as_str).unwrap_or("?");
            for field in ["samples", "ns_queue_mean", "ns_batch_mean", "ns_kernel_lane"] {
                let v = row.get(field).and_then(Json::as_num).unwrap_or(0.0);
                if v <= 0.0 {
                    return Err(format!(
                        "full document row '{name}' has no {field} attribution"
                    ));
                }
            }
        }
        if fault {
            let dumps = flight.get("dumps").and_then(Json::as_num).unwrap_or(0.0);
            if dumps <= 0.0 {
                return Err("fault document captured no flight dumps".to_string());
            }
        }
    }
    Ok(())
}

/// Writes a trace document to `path`, then re-reads, re-parses and
/// re-validates it — mirrors [`crate::json::write_validated`] for this
/// schema.
pub fn write_validated_trace(path: &str, doc: &Json) -> std::io::Result<()> {
    std::fs::write(path, doc.to_pretty())?;
    let text = std::fs::read_to_string(path)?;
    let parsed =
        crate::json::parse(&text).unwrap_or_else(|e| panic!("{path}: emitted invalid JSON: {e}"));
    assert_eq!(&parsed, doc, "{path}: JSON did not round-trip");
    check_trace_schema(&parsed).unwrap_or_else(|e| panic!("{path}: schema violation: {e}"));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage() -> Json {
        Json::obj()
            .set("count", 10.0)
            .set("sum", 1000.0)
            .set("mean", 100.0)
            .set("p50", 90.0)
            .set("p99", 300.0)
            .set("p999", 400.0)
    }

    fn minimal_doc(quick: bool, telemetry: bool, fault: bool) -> Json {
        let rows: Vec<Json> = (0..rlibm_serve::workload::NUM_FUNCS as u8)
            .map(|f| {
                Json::obj()
                    .set("name", rlibm_serve::workload::func_label(f).as_str())
                    .set("samples", 5.0)
                    .set("ns_queue_mean", 120.0)
                    .set("ns_batch_mean", 80.0)
                    .set("ns_kernel_lane", 11.0)
                    .set("ns_fallback_lane", 0.5)
            })
            .collect();
        let shed = |n: usize| {
            Json::Arr(
                (0..n)
                    .map(|i| Json::obj().set("func", "ln").set("x_bits", i as f64))
                    .collect(),
            )
        };
        let exemplars = Json::obj()
            .set("deadline", shed(1))
            .set("backpressure", shed(1))
            .set("admission", shed(1))
            .set("corrupted", shed(1))
            .set("poisoned", shed(1))
            .set("rescalar", shed(2))
            .set("slowest", shed(3));
        Json::obj()
            .set("schema", TRACE_SCHEMA)
            .set("quick", quick)
            .set("telemetry", telemetry)
            .set("fault", fault)
            .set("sample_shift", 4.0)
            .set("n_inputs", 1000.0)
            .set(
                "stage_quantiles",
                Json::obj()
                    .set("queue_wait_ns", stage())
                    .set("batch_wait_ns", stage())
                    .set("kernel_ns", stage())
                    .set("fallback_ns", stage()),
            )
            .set(
                "flight",
                Json::obj()
                    .set("dumps", 2.0)
                    .set("panic_dumps", 1.0)
                    .set("corruption_dumps", 1.0)
                    .set("events", 300.0),
            )
            .set("exemplars", exemplars)
            .set("functions", rows)
    }

    #[test]
    fn accepts_a_complete_document() {
        assert_eq!(check_trace_schema(&minimal_doc(false, true, true)), Ok(()));
        assert_eq!(check_trace_schema(&minimal_doc(true, true, false)), Ok(()));
        assert_eq!(check_trace_schema(&minimal_doc(true, false, false)), Ok(()));
    }

    #[test]
    fn full_documents_must_attribute_every_workload() {
        let mut doc = minimal_doc(false, true, true);
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "functions" {
                    if let Json::Arr(rows) = v {
                        if let Some(Json::Obj(row)) = rows.first_mut() {
                            for (rk, rv) in row.iter_mut() {
                                if rk == "ns_kernel_lane" {
                                    *rv = Json::Num(0.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = check_trace_schema(&doc).unwrap_err();
        assert!(err.contains("ns_kernel_lane"), "{err}");
        // The same zero passes on a quick smoke.
        let mut quick = doc;
        if let Json::Obj(fields) = &mut quick {
            for (k, v) in fields.iter_mut() {
                if k == "quick" {
                    *v = Json::Bool(true);
                }
            }
        }
        assert_eq!(check_trace_schema(&quick), Ok(()));
    }

    #[test]
    fn fault_documents_require_every_shed_exemplar() {
        let mut doc = minimal_doc(false, true, true);
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "exemplars" {
                    if let Json::Obj(ex) = v {
                        for (ek, ev) in ex.iter_mut() {
                            if ek == "poisoned" {
                                *ev = Json::Arr(Vec::new());
                            }
                        }
                    }
                }
            }
        }
        let err = check_trace_schema(&doc).unwrap_err();
        assert!(err.contains("poisoned"), "{err}");
    }

    #[test]
    fn row_count_must_cover_the_workload_matrix() {
        let mut doc = minimal_doc(true, false, false);
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "functions" {
                    if let Json::Arr(rows) = v {
                        rows.pop();
                    }
                }
            }
        }
        let err = check_trace_schema(&doc).unwrap_err();
        assert!(err.contains("workload rows"), "{err}");
    }
}
