//! Reproduces **Figure 3**: speedup of RLIBM-32's float functions over
//! (a) the float-libm model, (b) the double-libm model, and (c) the
//! CR-LIBM model. Prints one row per function plus the geometric mean —
//! the paper's bar charts in tabular form.
//!
//! Usage: `cargo run -p rlibm-bench --release --bin fig3 [n_inputs]`

use rlibm_bench::timing::{fmt_speedup, geomean, ns_per_call};
use rlibm_bench::workloads::timing_inputs_f32;
use rlibm_mp::Func;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    println!("Figure 3: speedup of RLIBM-32 float functions (inputs/function: {n})\n");
    println!(
        "{:>8} | {:>9} | {:>14} | {:>15} | {:>13}",
        "float fn", "ours (ns)", "vs float-libm", "vs double-libm", "vs CR-LIBM"
    );
    println!("{}", "-".repeat(72));
    let (mut s_f, mut s_d, mut s_c) = (Vec::new(), Vec::new(), Vec::new());
    for f in Func::ALL {
        let name = f.name();
        let xs = timing_inputs_f32(name, n, 42);
        let ours_fn = rlibm_math::f32_fn_by_name(name);
        let base_fn = rlibm_math::baseline_f32_fn_by_name(name);
        let ours = ns_per_call(&xs, 5, ours_fn);
        let fl = ns_per_call(&xs, 5, base_fn);
        let db = ns_per_call(&xs, 5, |x| rlibm_math::baselines::double64::to_f32(name, x));
        let cr = if matches!(f, Func::SinPi | Func::CosPi) {
            db
        } else {
            ns_per_call(&xs, 5, |x| rlibm_math::baselines::crlibm::to_f32(name, x))
        };
        s_f.push(fl / ours);
        s_d.push(db / ours);
        s_c.push(cr / ours);
        println!(
            "{:>8} | {:>9.1} | {:>14} | {:>15} | {:>13}",
            name,
            ours,
            fmt_speedup(fl / ours),
            fmt_speedup(db / ours),
            fmt_speedup(cr / ours)
        );
    }
    println!("{}", "-".repeat(72));
    println!(
        "{:>8} | {:>9} | {:>14} | {:>15} | {:>13}",
        "geomean",
        "",
        fmt_speedup(geomean(&s_f)),
        fmt_speedup(geomean(&s_d)),
        fmt_speedup(geomean(&s_c))
    );
    println!(
        "\nPaper reference points: 1.1x over glibc float, 1.2x over glibc\n\
         double, 1.5-1.6x over Intel, 2x over CR-LIBM, 2.5-2.7x over\n\
         MetaLibm. Absolute ns differ (different hardware + Rust harness);\n\
         the ordering RLIBM >= double-repurposing >= CR-LIBM is the\n\
         reproduced shape."
    );
}
