//! Reproduces **Figure 3**: speedup of RLIBM-32's float functions over
//! (a) the float-libm model, (b) the double-libm model, and (c) the
//! CR-LIBM model — now measuring the two-tier implementation three ways:
//!
//! * `fast` — the shipping scalar path (plain-double kernel, certified
//!   dd fallback inside the unsafe rounding bands);
//! * `dd` — the pure double-double + round-to-odd kernel (what every
//!   call paid before the two-tier split);
//! * `batched` — [`rlibm_math::eval_slice_f32`] over the same inputs.
//!
//! Alongside the table it emits a machine-readable `BENCH_fig3.json`
//! (schema `rlibm-bench/fig3/v2` — v2 adds a top-level `tables` section
//! with the packed/unpacked lookup-table footprints), re-parsed and
//! schema-checked before the process exits, and prints the dd-fallback
//! rate observed on the timing workload (the counters are always on in
//! this crate).
//!
//! Usage: `cargo run -p rlibm-bench --release --bin fig3 -- \
//!             [n_inputs] [--quick] [--out PATH]`
//!
//! `--quick` shrinks the workload and repetition count for CI smoke
//! runs; pair it with `--out target/...` so it never clobbers the
//! committed full-run `BENCH_fig3.json`.

use rlibm_bench::json::{write_validated, Json};
use rlibm_bench::timing::{fmt_speedup, geomean, ns_per_call};
use rlibm_bench::workloads::timing_inputs_f32;
use rlibm_math::stats;
use rlibm_mp::Func;

pub const SCHEMA: &str = "rlibm-bench/fig3/v2";
pub const PER_FN_FIELDS: &[&str] = &[
    "ns_fast",
    "ns_dd",
    "ns_batched",
    "ns_float_libm",
    "ns_double_libm",
    "ns_crlibm",
    "fallback_rate",
];

struct Cli {
    n: usize,
    reps: usize,
    quick: bool,
    out: String,
    /// `--only a,b`: measure just these functions, for fast iteration
    /// while optimizing a single kernel. Partial runs never write the
    /// JSON doc — the committed BENCH file is always a full sweep.
    only: Option<Vec<String>>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        n: 4096,
        reps: 5,
        quick: false,
        out: "BENCH_fig3.json".to_string(),
        only: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                cli.quick = true;
                cli.n = 256;
                cli.reps = 2;
            }
            "--out" => cli.out = args.next().expect("--out requires a path"),
            "--only" => {
                let list = args.next().expect("--only requires a comma-separated list");
                cli.only = Some(list.split(',').map(str::to_string).collect());
            }
            other => cli.n = other.parse().unwrap_or_else(|_| panic!("bad arg '{other}'")),
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    assert!(stats::enabled(), "bench builds carry fallback counters");
    println!(
        "Figure 3: RLIBM-32 float functions, two-tier measurement (inputs/function: {}{})\n",
        cli.n,
        if cli.quick { ", quick mode" } else { "" }
    );
    println!(
        "{:>8} | {:>9} | {:>7} | {:>12} | {:>8} | {:>14} | {:>15} | {:>13} | {:>9}",
        "float fn",
        "fast (ns)",
        "dd (ns)",
        "batched (ns)",
        "fast/dd",
        "vs float-libm",
        "vs double-libm",
        "vs CR-LIBM",
        "fallback"
    );
    println!("{}", "-".repeat(116));

    // Timings are the min over `reps` full passes of the whole sweep
    // (each pass measures every function and model once) rather than
    // `reps` back-to-back repetitions per row: on shared hosts,
    // slowdown windows last seconds, and interleaving keeps one window
    // from poisoning every repetition of a single row.
    let mut best = vec![[f64::INFINITY; 6]; Func::ALL.len()];
    for _ in 0..cli.reps {
        for (fi, f) in Func::ALL.iter().enumerate() {
            let name = f.name();
            if let Some(only) = &cli.only {
                if !only.iter().any(|o| o == name) {
                    continue;
                }
            }
            let xs = timing_inputs_f32(name, cli.n, 42);
            let fast_fn = rlibm_math::f32_fn_by_name(name).expect("known name");
            let dd_fn = rlibm_math::f32_dd_fn_by_name(name).expect("known name");
            let base_fn = rlibm_math::baseline_f32_fn_by_name(name).expect("known name");
            let fast = ns_per_call(&xs, 2, fast_fn);
            let dd = ns_per_call(&xs, 2, dd_fn);
            let mut out = vec![0.0f32; xs.len()];
            let batched = ns_per_call(&[0usize], 2, |_| {
                rlibm_math::eval_slice_f32(name, &xs, &mut out).expect("known name");
                out[0]
            }) / xs.len() as f64;
            let fl = ns_per_call(&xs, 2, base_fn);
            let db = ns_per_call(&xs, 2, |x| {
                rlibm_math::baselines::double64::to_f32(name, x)
            });
            let cr = if matches!(f, Func::SinPi | Func::CosPi) {
                db // CR-LIBM has no sinpi/cospi; the paper compares these to double-libm.
            } else {
                ns_per_call(&xs, 2, |x| rlibm_math::baselines::crlibm::to_f32(name, x))
            };
            let b = &mut best[fi];
            for (slot, v) in [fast, dd, batched, fl, db, cr].into_iter().enumerate() {
                b[slot] = b[slot].min(v);
            }
        }
    }

    let (mut s_dd, mut s_f, mut s_d, mut s_c, mut s_b) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut rows = Vec::new();
    for (fi, f) in Func::ALL.iter().enumerate() {
        let name = f.name();
        if let Some(only) = &cli.only {
            if !only.iter().any(|o| o == name) {
                continue;
            }
        }
        let xs = timing_inputs_f32(name, cli.n, 42);
        let fast_fn = rlibm_math::f32_fn_by_name(name).expect("known name");

        // Fallback rate: one untimed sweep between counter reset/read, so
        // the number is per-workload-input, not per-timing-iteration.
        stats::reset();
        for &x in &xs {
            std::hint::black_box(fast_fn(x));
        }
        let rate = stats::fallbacks_f32(name) as f64 / xs.len() as f64;

        let [fast, dd, batched, fl, db, cr] = best[fi];
        s_dd.push(dd / fast);
        s_f.push(fl / fast);
        s_d.push(db / fast);
        s_c.push(cr / fast);
        s_b.push(fast / batched);
        println!(
            "{:>8} | {:>9.1} | {:>7.1} | {:>12.1} | {:>8} | {:>14} | {:>15} | {:>13} | {:>8.3}%",
            name,
            fast,
            dd,
            batched,
            fmt_speedup(dd / fast),
            fmt_speedup(fl / fast),
            fmt_speedup(db / fast),
            fmt_speedup(cr / fast),
            rate * 100.0
        );
        rows.push(
            Json::obj()
                .set("name", name)
                .set("ns_fast", fast)
                .set("ns_dd", dd)
                .set("ns_batched", batched)
                .set("ns_float_libm", fl)
                .set("ns_double_libm", db)
                .set("ns_crlibm", cr)
                .set("fallback_rate", rate),
        );
    }
    println!("{}", "-".repeat(116));
    println!(
        "{:>8} | {:>9} | {:>7} | {:>12} | {:>8} | {:>14} | {:>15} | {:>13} |",
        "geomean",
        "",
        "",
        "",
        fmt_speedup(geomean(&s_dd)),
        fmt_speedup(geomean(&s_f)),
        fmt_speedup(geomean(&s_d)),
        fmt_speedup(geomean(&s_c))
    );
    println!(
        "\nfast/dd is the two-tier payoff (acceptance bar: >= 1.50x geomean);\n\
         'fallback' is the share of workload inputs that needed the dd\n\
         kernel. Paper reference points: 1.1x over glibc float, 1.2x over\n\
         glibc double, 2x over CR-LIBM. Absolute ns differ (different\n\
         hardware + Rust harness); the ordering RLIBM >= double-repurposing\n\
         >= CR-LIBM is the reproduced shape."
    );

    let doc = Json::obj()
        .set("schema", SCHEMA)
        .set("quick", cli.quick)
        .set("n_inputs", cli.n as f64)
        .set(
            "tables",
            Json::obj()
                .set("bytes_packed", rlibm_math::tables::TABLE_BYTES_PACKED as f64)
                .set("bytes_unpacked", rlibm_math::tables::TABLE_BYTES_UNPACKED as f64),
        )
        .set("functions", rows)
        .set(
            "geomean",
            Json::obj()
                .set("fast_vs_dd", geomean(&s_dd))
                .set("fast_vs_float_libm", geomean(&s_f))
                .set("fast_vs_double_libm", geomean(&s_d))
                .set("fast_vs_crlibm", geomean(&s_c))
                .set("batched_vs_fast", geomean(&s_b)),
        );
    if cli.only.is_some() {
        println!("\npartial run (--only): not writing {}", cli.out);
        return;
    }
    write_validated(&cli.out, &doc, SCHEMA, PER_FN_FIELDS).expect("write BENCH json");
    println!("\nwrote {} (schema {SCHEMA}, parsed + validated)", cli.out);
}
