//! Reproduces **Table 1**: generation of correctly rounded results for
//! 32-bit floats — RLIBM-32 vs a single-precision libm model, a
//! re-purposed double libm (the glibc/Intel-double column), and a
//! CR-LIBM model (correctly rounded double, double-rounded to float).
//!
//! The paper enumerates all 2^32 inputs; a multi-precision oracle makes
//! that days of compute here, so the default run checks a stratified
//! sample (every exponent bucket of both signs) and reports misrounding
//! *counts over the sample* plus the scaled estimate for the full domain.
//!
//! Usage: `cargo run -p rlibm-bench --release --bin table1 [per_exponent]`
//! (default 40 — about 20k inputs per function; the paper-scale run uses
//! 4000+).

use rlibm_core::par::num_threads;
use rlibm_core::validate::{stratified_f32, validate_par, ValidationReport};
use rlibm_mp::Func;

fn mark(r: &ValidationReport, scale: f64) -> String {
    if r.wrong == 0 {
        "ok".to_string()
    } else {
        format!("X({} | ~{:.1e} full)", r.wrong, r.wrong as f64 * scale)
    }
}

fn main() {
    let per_exp: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let xs = stratified_f32(per_exp, 0xACE1_2345);
    let scale = 2f64.powi(32) / xs.len() as f64;
    let threads = num_threads();
    println!("Table 1: correctly rounded results for 32-bit float");
    println!(
        "  sample: {} stratified inputs/function (x{:.0} to full domain)\n",
        xs.len(),
        scale
    );
    println!(
        "{:>8} | {:>12} | {:>18} | {:>18} | {:>18}",
        "float fn", "RLIBM-32", "float-libm model", "double-libm model", "CR-LIBM model"
    );
    println!("{}", "-".repeat(86));
    for f in Func::ALL {
        let name = f.name();
        let ours = validate_par(f, |x: f32| rlibm_math::eval_f32_by_name(name, x).expect("known name"), &xs, threads);
        let fl32 = validate_par(
            f,
            |x: f32| match name {
                "ln" => rlibm_math::baselines::float32::ln(x),
                "log2" => rlibm_math::baselines::float32::log2(x),
                "log10" => rlibm_math::baselines::float32::log10(x),
                "exp" => rlibm_math::baselines::float32::exp(x),
                "exp2" => rlibm_math::baselines::float32::exp2(x),
                "exp10" => rlibm_math::baselines::float32::exp10(x),
                "sinh" => rlibm_math::baselines::float32::sinh(x),
                "cosh" => rlibm_math::baselines::float32::cosh(x),
                "sinpi" => rlibm_math::baselines::float32::sinpi(x),
                "cospi" => rlibm_math::baselines::float32::cospi(x),
                _ => unreachable!(),
            },
            &xs,
            threads,
        );
        let dbl = validate_par(
            f,
            |x: f32| rlibm_math::baselines::double64::to_f32(name, x),
            &xs,
            threads,
        );
        let cr: ValidationReport = if matches!(f, Func::SinPi | Func::CosPi) {
            // The CR-LIBM model shares the double64 path for sinpi/cospi
            // (CR-LIBM itself has no sinpi/cospi; the paper marks its own
            // double column there).
            dbl.clone()
        } else {
            validate_par(
                f,
                |x: f32| rlibm_math::baselines::crlibm::to_f32(name, x),
                &xs,
                threads,
            )
        };
        println!(
            "{:>8} | {:>12} | {:>18} | {:>18} | {:>18}",
            name,
            mark(&ours, scale),
            mark(&fl32, scale),
            mark(&dbl, scale),
            mark(&cr, scale)
        );
        assert_eq!(
            ours.wrong, 0,
            "RLIBM-32 column must be clean; first failure: {:?}",
            ours.examples.first()
        );
    }
    println!(
        "\n'ok' = correctly rounded on every sampled input; X(n | ~m full) = n\n\
         sampled misroundings, m the scaled full-domain estimate (cf. the\n\
         paper's X(4.2E5) style entries)."
    );
}
