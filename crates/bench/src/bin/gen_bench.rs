//! Generation-side benchmark: times the two hot phases of the paper's
//! pipeline per function — the Ziv **oracle** sweep that constructs
//! rounding intervals (Algorithm 1 + the per-component `f64` oracle of
//! Algorithm 2) and the CEGIS **`gen_polynomial`** run (Algorithm 4,
//! sampling + LP + counterexample rounds) — and emits a schema-checked
//! `BENCH_gen.json` (schema `rlibm-bench/gen/v1`) diffable by
//! `bench_compare`, so generator-side regressions can't land silently.
//!
//! Workloads are identity-reduction Half (fp16) runs on per-function
//! domains sized so every generation *succeeds* (the bench panics if one
//! goes infeasible — a silent `Err` would time the failure path):
//! log family on `[1, 2)`, exp family on `±[2^-8, 2^-2]`, sinh/cosh on
//! `[2^-6, 2^-2]`, sinpi/cospi on `[2^-8, 2^-2]`, with odd/even term
//! sets matching each function's parity.
//!
//! Timing protocol:
//!
//! * `ns_oracle` — per-input ns for the full oracle case construction
//!   (`try_correctly_rounded::<Half>` + `rounding_interval` + the f64
//!   component oracle), best of `reps` sweeps, **each sweep on a freshly
//!   spawned thread** so the thread-local Ziv caches start cold every
//!   rep and the number deterministically measures the cold path instead
//!   of whatever cache state earlier reps left behind.
//! * `ns_gen_poly` — wall time of one `gen_polynomial` call on the
//!   merged reduced constraints, best of `reps` (the call is
//!   deterministic, so min-of-reps isolates scheduler noise).
//!
//! Rows also carry non-`ns_*` context fields (`n_constraints`,
//! `lp_calls`, `cegis_rounds`, `final_sample`); `bench_compare` ignores
//! them by design and diffs only the shared `ns_*` fields.
//!
//! Usage: `cargo run -p rlibm-bench --release --bin gen_bench -- \
//!             [--quick] [--out PATH]`

use rlibm_bench::json::{write_validated, Json};
use rlibm_bench::timing::geomean;
use rlibm_core::reduced::ReductionCase;
use rlibm_core::validate::all_16bit;
use rlibm_core::{
    deduce_reduced_intervals, gen_polynomial, merge_by_reduced_input, rounding_interval,
    PolyGenConfig, ReducedConstraint,
};
use rlibm_fp::Half;
use rlibm_mp::oracle::{
    is_special_case, try_correctly_rounded, try_correctly_rounded_f64, DEFAULT_PREC_CEILING,
};
use rlibm_mp::Func;
use std::time::Instant;

pub const SCHEMA: &str = "rlibm-bench/gen/v1";
pub const PER_FN_FIELDS: &[&str] = &["ns_gen_poly", "ns_oracle"];

struct Cli {
    reps: usize,
    quick: bool,
    out: String,
}

fn parse_cli() -> Cli {
    let mut cli = Cli { reps: 3, quick: false, out: "BENCH_gen.json".to_string() };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                cli.quick = true;
                cli.reps = 1;
            }
            "--out" => cli.out = args.next().expect("--out requires a path"),
            other => cli.reps = other.parse().unwrap_or_else(|_| panic!("bad arg '{other}'")),
        }
    }
    cli
}

/// Per-function generation workload: the input domain (over f64-widened
/// Half values) and the polynomial term exponents.
struct Workload {
    func: Func,
    terms: Vec<u32>,
    lo: f64,
    hi: f64,
    both_signs: bool,
}

fn workloads() -> Vec<Workload> {
    let w = |func, terms: Vec<u32>, lo: f64, hi: f64, both_signs| Workload {
        func,
        terms,
        lo,
        hi,
        both_signs,
    };
    vec![
        // Log family on one binade (the pipeline e2e test proves this
        // shape feasible for log2 at degree 7).
        w(Func::Ln, (0..=7).collect(), 1.0, 2.0, false),
        w(Func::Log2, (0..=7).collect(), 1.0, 2.0, false),
        w(Func::Log10, (0..=7).collect(), 1.0, 2.0, false),
        // Exp family near zero, both signs.
        w(Func::Exp, (0..=6).collect(), 2f64.powi(-8), 2f64.powi(-2), true),
        w(Func::Exp2, (0..=6).collect(), 2f64.powi(-8), 2f64.powi(-2), true),
        w(Func::Exp10, (0..=6).collect(), 2f64.powi(-8), 2f64.powi(-2), true),
        // Parity-matched term sets for the odd/even functions.
        w(Func::Sinh, vec![1, 3, 5], 2f64.powi(-6), 2f64.powi(-2), false),
        w(Func::Cosh, vec![0, 2, 4], 2f64.powi(-6), 2f64.powi(-2), false),
        w(Func::SinPi, vec![1, 3, 5, 7], 2f64.powi(-8), 2f64.powi(-2), false),
        // cospi needs the x^6 term: at x=1/4 the degree-4 truncation
        // error (pi x)^6/720 ~ 3.3e-4 exceeds a Half rounding interval.
        w(Func::CosPi, vec![0, 2, 4, 6], 2f64.powi(-8), 2f64.powi(-2), false),
    ]
}

fn inputs_for(w: &Workload, quick: bool) -> Vec<Half> {
    let in_domain = |v: f64| {
        let m = v.abs();
        (w.lo..w.hi).contains(&m) && (w.both_signs || v > 0.0)
    };
    let xs: Vec<Half> = all_16bit::<Half>()
        .filter(|x| {
            let v = x.to_f64();
            v.is_finite() && in_domain(v) && !is_special_case(w.func, v)
        })
        .collect();
    // Quick mode subsamples the domain; generation still runs end to end
    // (sampling keeps the first/last constraint, so the shape holds).
    if quick {
        xs.into_iter().step_by(8).collect()
    } else {
        xs
    }
}

/// One oracle case-construction pass over `inputs` (the per-input work
/// of the pipeline's `oracle_cases`, identity reduction). Returns the
/// cases so the caller can reuse the final pass's output.
fn oracle_pass(func: Func, inputs: &[Half]) -> Vec<ReductionCase> {
    let mut cases = Vec::with_capacity(inputs.len());
    for &x in inputs {
        let xf = x.to_f64();
        let y: Half = try_correctly_rounded(func, x, DEFAULT_PREC_CEILING)
            .unwrap_or_else(|e| panic!("{}: oracle failed on {xf}: {e:?}", func.name()));
        let Some(target) = rounding_interval(y) else { continue };
        let r = xf; // identity range reduction
        let cv = try_correctly_rounded_f64(func, r, DEFAULT_PREC_CEILING)
            .unwrap_or_else(|e| panic!("{}: f64 oracle failed on {r}: {e:?}", func.name()));
        cases.push(ReductionCase { x: xf, target, r, component_values: vec![cv] });
    }
    cases
}

/// Best-of-`reps` per-input oracle time, each rep on a fresh thread so
/// the thread-local Ziv caches are cold every time.
fn time_oracle(func: Func, inputs: &[Half], reps: usize) -> (f64, Vec<ReductionCase>) {
    let mut best = f64::INFINITY;
    let mut cases = Vec::new();
    for _ in 0..reps {
        let (ns, c) = std::thread::scope(|s| {
            s.spawn(|| {
                let t0 = Instant::now();
                let c = oracle_pass(func, inputs);
                (t0.elapsed().as_nanos() as f64 / inputs.len().max(1) as f64, c)
            })
            .join()
            .expect("oracle timing thread")
        });
        best = best.min(ns);
        cases = c;
    }
    (best, cases)
}

fn main() {
    let cli = parse_cli();
    println!(
        "Generation benchmark: oracle interval construction + gen_polynomial per function \
         (reps: {}{})\n",
        cli.reps,
        if cli.quick { ", quick mode" } else { "" }
    );
    println!(
        "{:>8} | {:>8} | {:>11} | {:>11} | {:>15} | {:>8} | {:>6} | {:>6}",
        "function", "inputs", "constraints", "oracle (ns)", "gen_poly (ms)", "lp_calls", "cegis", "sample"
    );
    println!("{}", "-".repeat(94));

    let mut rows = Vec::new();
    let mut total_inputs = 0usize;
    let (mut all_oracle, mut all_gen) = (Vec::new(), Vec::new());
    for w in workloads() {
        let name = w.func.name();
        let inputs = inputs_for(&w, cli.quick);
        assert!(!inputs.is_empty(), "{name}: empty workload domain");
        total_inputs += inputs.len();

        let (ns_oracle, cases) = time_oracle(w.func, &inputs, cli.reps);

        // Algorithm 2 + duplicate merge, untimed: one-component identity
        // reduction, so the output composition is the component itself.
        let per_component = deduce_reduced_intervals(&cases, &|vals, _| vals[0])
            .unwrap_or_else(|e| panic!("{name}: reduced-interval deduction failed: {e:?}"));
        let merged: Vec<ReducedConstraint> = merge_by_reduced_input(&per_component[0], 0)
            .unwrap_or_else(|e| panic!("{name}: constraint merge failed: {e:?}"));

        let cfg = PolyGenConfig { terms: w.terms.clone(), ..Default::default() };
        let mut best = f64::INFINITY;
        let mut last_stats = None;
        for _ in 0..cli.reps {
            let t0 = Instant::now();
            let (poly, stats) = gen_polynomial(&merged, &cfg)
                .unwrap_or_else(|e| panic!("{name}: generation failed: {e:?}"));
            best = best.min(t0.elapsed().as_nanos() as f64);
            std::hint::black_box(&poly);
            last_stats = Some(stats);
        }
        let stats = last_stats.expect("at least one rep");

        all_oracle.push(ns_oracle);
        all_gen.push(best);
        println!(
            "{:>8} | {:>8} | {:>11} | {:>11.0} | {:>15.2} | {:>8} | {:>6} | {:>6}",
            name,
            inputs.len(),
            merged.len(),
            ns_oracle,
            best / 1e6,
            stats.lp_calls,
            stats.cegis_rounds,
            stats.final_sample
        );
        rows.push(
            Json::obj()
                .set("name", name)
                .set("ns_gen_poly", best)
                .set("ns_oracle", ns_oracle)
                .set("n_inputs", inputs.len() as f64)
                .set("n_constraints", merged.len() as f64)
                .set("lp_calls", stats.lp_calls as f64)
                .set("cegis_rounds", stats.cegis_rounds as f64)
                .set("final_sample", stats.final_sample as f64),
        );
    }
    println!("{}", "-".repeat(94));
    println!(
        "{:>8} | {:>8} | {:>11} | {:>11.0} | {:>15.2} |",
        "geomean",
        "",
        "",
        geomean(&all_oracle),
        geomean(&all_gen) / 1e6
    );
    println!(
        "\nns_oracle is per input, cold Ziv caches (fresh thread per rep);\n\
         ns_gen_poly is one full Algorithm 4 run on the merged constraints.\n\
         Diff against a baseline with: bench_compare OLD.json NEW.json"
    );

    let doc = Json::obj()
        .set("schema", SCHEMA)
        .set("quick", cli.quick)
        .set("n_inputs", total_inputs as f64)
        .set("functions", rows)
        .set(
            "geomean",
            Json::obj()
                .set("ns_oracle", geomean(&all_oracle))
                .set("ns_gen_poly", geomean(&all_gen)),
        );
    write_validated(&cli.out, &doc, SCHEMA, PER_FN_FIELDS).expect("write BENCH json");
    println!("\nwrote {} (schema {SCHEMA}, parsed + validated)", cli.out);
}
