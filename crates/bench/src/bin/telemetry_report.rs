//! Exercises every instrumented layer of the workspace and emits a
//! schema-checked telemetry snapshot (`TELEM_report.json`, schema
//! `rlibm-telem/v1`).
//!
//! Four phases, each lighting up one band of the metric namespace:
//!
//! 1. **Generator** — a real polynomial generation + exhaustive 16-bit
//!    validation (the paper's Table 3 shape), populating the
//!    `pipeline.*` spans, `polygen.*`, `lp.*` and `validate.*` metrics.
//! 2. **Oracle** — Ziv sweeps over all ten functions on domain-biased
//!    f32 inputs, populating `oracle.ziv.final_prec.<fn>` histograms
//!    and the escalation/cache/eval counters.
//! 3. **Runtime fallbacks** — per-function input sweeps through the
//!    two-tier entry points until each of the 18 `runtime.fallback.*`
//!    counters has fired (fallbacks are parts-per-million events, so
//!    the full run draws up to 20M inputs per function; `--quick` caps
//!    at 200k and settles for registered-at-zero presence).
//! 4. **Batched eval** — one `eval_slice_f32` call ticking the
//!    `runtime.slice.f32.*` counters.
//! 5. **Progressive tiers** — the fig3 timing workload through every
//!    scalar front end, populating `runtime.tier.{prefix,full,dd}.*`
//!    and asserting the prefix tier carried >= 90% of in-domain calls
//!    (the cheap tier must be the common case or the ladder is
//!    mis-tuned).
//!
//! The binary asserts telemetry is compiled in (it is, in this crate),
//! asserts the snapshot's core sections are populated, prints a human
//! summary, and writes + re-parses + schema-validates the JSON.
//!
//! Usage: `cargo run -p rlibm-bench --release --bin telemetry_report -- \
//!             [seed] [--quick] [--out PATH]`

use rlibm_bench::telem::{telem_to_json, write_validated_telem, TELEM_SCHEMA};
use rlibm_core::pipeline::{generate, GeneratorSpec};
use rlibm_core::validate::{all_16bit, validate};
use rlibm_fp::rng::{draw_biased_f32, XorShift64};
use rlibm_fp::Half;
use rlibm_math::stats;
use rlibm_mp::oracle::is_special_case;
use rlibm_mp::Func;
use rlibm_posit::Posit32;
use std::sync::Arc;

struct Cli {
    seed: u64,
    quick: bool,
    out: String,
}

fn parse_cli() -> Cli {
    let mut cli = Cli { seed: 42, quick: false, out: "TELEM_report.json".to_string() };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--out" => cli.out = args.next().expect("--out requires a path"),
            other => cli.seed = other.parse().unwrap_or_else(|_| panic!("bad arg '{other}'")),
        }
    }
    cli
}

/// Phase 1: run the generator end to end on a 16-bit target. Quick mode
/// uses a one-component exp2 spec on a narrow domain; the full run uses
/// the two-component sinpi double-angle reduction from the e2e suite.
fn exercise_generator(quick: bool) {
    let (func, inputs, spec) = if quick {
        let inputs: Vec<Half> = all_16bit::<Half>()
            .filter(|x| {
                let v = x.to_f64();
                v.is_finite() && !is_special_case(Func::Exp2, v) && v.abs() <= 0.25
            })
            .collect();
        (Func::Exp2, inputs, GeneratorSpec::identity(Func::Exp2, (0..=5).collect()))
    } else {
        let inputs: Vec<Half> = all_16bit::<Half>()
            .filter(|x| {
                let v = x.to_f64();
                v.is_finite()
                    && !is_special_case(Func::SinPi, v)
                    && (1.0 / 256.0..=0.5).contains(&v)
            })
            .collect();
        let mk_cfg = |terms: Vec<u32>| rlibm_core::ApproxConfig {
            polygen: rlibm_core::PolyGenConfig { terms, ..Default::default() },
            ..Default::default()
        };
        let spec = GeneratorSpec {
            func: Func::SinPi,
            components: vec![Func::SinPi, Func::CosPi],
            range_reduce: Arc::new(|x| x * 0.5),
            output_comp: Arc::new(|vals, _| 2.0 * vals[0] * vals[1]),
            approx_cfgs: vec![mk_cfg(vec![1, 3, 5]), mk_cfg(vec![0, 2, 4])],
        };
        (Func::SinPi, inputs, spec)
    };
    let g = generate(&spec, &inputs).expect("generation");
    let report =
        validate(func, |x: Half| Half::from_f64(g.eval(x.to_f64())), inputs.iter().copied());
    assert!(report.all_correct(), "generated {func:?} mis-rounds {} inputs", report.wrong);
    println!(
        "  generator: {:?} over {} inputs, all correctly rounded",
        func,
        inputs.len()
    );
}

/// Phase 2: Ziv sweeps — `per_fn` non-special f32 evaluations through
/// the oracle for every function.
fn exercise_oracle(seed: u64, per_fn: u32) {
    let mut rng = XorShift64::new(seed ^ 0x0B5E);
    for f in Func::ALL {
        let mut done = 0u32;
        // Biased draws land in-domain ~3/4 of the time; the bound is a
        // misconfiguration backstop, not an expected exit.
        for _ in 0..per_fn.saturating_mul(64) {
            if done == per_fn {
                break;
            }
            let x = draw_biased_f32(&mut rng, f.name());
            if !x.is_finite() || is_special_case(f, f64::from(x)) {
                continue;
            }
            std::hint::black_box(rlibm_mp::oracle::correctly_rounded::<f32>(f, x));
            done += 1;
        }
        assert!(done == per_fn, "{}: only {done}/{per_fn} oracle evals", f.name());
    }
    println!("  oracle: {} Ziv evaluations per function", per_fn);
}

/// Phase 3: drive the two-tier runtimes until each fallback counter has
/// fired, up to `cap` draws per function. Returns counters still at
/// their starting value.
fn exercise_fallbacks(seed: u64, cap: u64) -> Vec<String> {
    let mut missing = Vec::new();
    for (i, f) in Func::ALL.iter().enumerate() {
        let name = f.name();
        let fast = rlibm_math::f32_fn_by_name(name).expect("known name");
        let slot = stats::f32_slot_by_name(name).expect("known name");
        let before = stats::fallbacks(slot);
        let mut rng = XorShift64::new(seed ^ (i as u64 + 1));
        let mut draws = 0u64;
        while stats::fallbacks(slot) == before && draws < cap {
            std::hint::black_box(fast(draw_biased_f32(&mut rng, name)));
            draws += 1;
        }
        if stats::fallbacks(slot) == before {
            missing.push(format!("f32.{name}"));
        }
    }
    for (i, name) in ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh"]
        .iter()
        .enumerate()
    {
        let fast = rlibm_math::posit32_fn_by_name(name).expect("known name");
        let slot = stats::posit32_slot_by_name(name).expect("known name");
        let before = stats::fallbacks(slot);
        let mut rng = XorShift64::new(seed ^ (0x100 + i as u64));
        let mut draws = 0u64;
        // Random posit bit patterns concentrate near 1, inside every
        // kernel's domain (cf. the fault sweep's posit strategy).
        while stats::fallbacks(slot) == before && draws < cap {
            std::hint::black_box(fast(Posit32::from_bits(rng.next_u32())));
            draws += 1;
        }
        if stats::fallbacks(slot) == before {
            missing.push(format!("posit32.{name}"));
        }
    }
    missing
}

/// Phase 5: the progressive-tier hit-rate check. Runs the same
/// domain-biased workload fig3 times through every scalar front end
/// and returns the aggregate prefix-tier share of in-domain calls.
fn exercise_tiers(per_fn: usize) -> f64 {
    let mut prefix_total = 0u64;
    let mut total = 0u64;
    println!("\n{:>8} | {:>8} | {:>8} | {:>8} | {:>8}", "fn", "prefix", "full", "dd", "prefix%");
    println!("{}", "-".repeat(52));
    for f in Func::ALL {
        let name = f.name();
        let fast = rlibm_math::f32_fn_by_name(name).expect("known name");
        let slot = stats::f32_slot_by_name(name).expect("known name");
        let before = (stats::tier_prefix(slot), stats::tier_full(slot), stats::tier_dd(slot));
        for x in rlibm_bench::workloads::timing_inputs_f32(name, per_fn, 42) {
            std::hint::black_box(fast(x));
        }
        let dp = stats::tier_prefix(slot) - before.0;
        let df = stats::tier_full(slot) - before.1;
        let dd = stats::tier_dd(slot) - before.2;
        let in_domain = dp + df + dd;
        assert!(in_domain > 0, "{name}: timing workload never entered the tier ladder");
        println!(
            "{:>8} | {:>8} | {:>8} | {:>8} | {:>7.2}%",
            name,
            dp,
            df,
            dd,
            100.0 * dp as f64 / in_domain as f64
        );
        prefix_total += dp;
        total += in_domain;
    }
    let rate = prefix_total as f64 / total as f64;
    assert!(
        rate >= 0.90,
        "prefix tier carried only {:.2}% of in-domain calls (need >= 90%)",
        rate * 100.0
    );
    rate
}

/// Phase 4: one batched evaluation to tick the slice counters.
fn exercise_slice(seed: u64) {
    let mut rng = XorShift64::new(seed ^ 0x51DE);
    let xs: Vec<f32> = (0..4096).map(|_| draw_biased_f32(&mut rng, "exp")).collect();
    let mut out = vec![0.0f32; xs.len()];
    rlibm_math::eval_slice_f32("exp", &xs, &mut out).expect("known name");
    std::hint::black_box(&out);
}

fn main() {
    let cli = parse_cli();
    assert!(
        rlibm_obs::enabled(),
        "telemetry_report requires the telemetry feature (on by default in rlibm-bench)"
    );
    println!(
        "Telemetry report: exercising all instrumented layers (seed {}{})\n",
        cli.seed,
        if cli.quick { ", quick mode" } else { "" }
    );

    // Start from a clean registry, then force every runtime counter in at
    // zero so the snapshot distinguishes "zero observed" from "unlinked".
    rlibm_obs::reset_all();
    stats::register_all();
    rlibm_mp::oracle::register_metrics();
    rlibm_lp::simplex::register_metrics();
    rlibm_lp::simplex_f64::register_metrics();

    exercise_generator(cli.quick);
    exercise_oracle(cli.seed, if cli.quick { 60 } else { 2000 });
    let fallback_cap = if cli.quick { 200_000 } else { 20_000_000 };
    let missing = exercise_fallbacks(cli.seed, fallback_cap);
    exercise_slice(cli.seed);
    println!(
        "  runtime: fallback sweeps (cap {} draws/function), slice eval over 4096 lanes",
        fallback_cap
    );
    let tier_rate = exercise_tiers(if cli.quick { 1024 } else { 4096 });
    println!(
        "  tiers: prefix tier carried {:.2}% of in-domain calls on the timing workload",
        tier_rate * 100.0
    );

    let snap = rlibm_obs::snapshot();

    // Core-section assertions: a report missing these is a wiring bug.
    for f in Func::ALL {
        let name = format!("oracle.ziv.final_prec.{}", f.name());
        let h = snap
            .histogram(&name)
            .unwrap_or_else(|| panic!("{name} not in snapshot"));
        assert!(h.count > 0, "{name}: no Ziv samples recorded");
    }
    assert!(snap.counter("polygen.runs").unwrap_or(0) >= 1, "polygen.runs is zero");
    // The f64 layer fronts every LP; the exact layer only runs when a
    // proposal fails certification, so it is asserted present, not hot.
    assert!(snap.counter("lp.f64.solves").unwrap_or(0) >= 1, "lp.f64.solves is zero");
    assert!(snap.counter("lp.exact.solves").is_some(), "lp.exact.solves not registered");
    assert!(
        snap.span("pipeline.generate").map_or(0, |s| s.count) >= 1,
        "pipeline.generate span never closed"
    );
    let fallback_counters: Vec<_> = snap
        .counters
        .iter()
        .filter(|c| c.name.starts_with("runtime.fallback."))
        .collect();
    assert!(
        fallback_counters.len() == 18,
        "expected 18 runtime.fallback.* counters, snapshot has {}",
        fallback_counters.len()
    );
    let tier_counters =
        snap.counters.iter().filter(|c| c.name.starts_with("runtime.tier.")).count();
    assert!(
        tier_counters == 54,
        "expected 54 runtime.tier.* counters (3 tiers x 18 slots), snapshot has {tier_counters}"
    );

    println!("\n{:>34} | {:>12}", "counter", "value");
    println!("{}", "-".repeat(49));
    for c in &snap.counters {
        println!("{:>34} | {:>12}", c.name, c.value);
    }
    println!("\n{:>34} | {:>9} | {:>14} | {:>10}", "histogram/span", "count", "sum", "mean");
    println!("{}", "-".repeat(77));
    for h in snap.histograms.iter().chain(snap.spans.iter()) {
        let mean = if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 };
        println!("{:>34} | {:>9} | {:>14} | {:>10.1}", h.name, h.count, h.sum, mean);
    }

    let doc = telem_to_json(&snap, cli.quick, cli.seed);
    write_validated_telem(&cli.out, &doc).expect("write TELEM json");
    println!("\nwrote {} (schema {TELEM_SCHEMA}, parsed + validated)", cli.out);

    if !missing.is_empty() {
        if cli.quick {
            println!(
                "note: no fallback observed within the quick cap for: {} \
                 (counters present at zero; the full run requires them nonzero)",
                missing.join(", ")
            );
        } else {
            eprintln!(
                "FAIL: no fallback observed within {} draws for: {}",
                fallback_cap,
                missing.join(", ")
            );
            std::process::exit(1);
        }
    }
}
