//! Reproduces **Figure 5**: speedup of `log2` and `log10` as the number
//! of piecewise-polynomial sub-domains grows from 2^0 to 2^12, relative
//! to the single-polynomial configuration. A `(deg N)` annotation marks
//! rows where the polynomial degree dropped — the paper's circles.
//!
//! Usage: `cargo run -p rlibm-bench --release --bin fig5 [n_inputs]`

use rlibm_bench::sweep::{Base, SweepLog};
use rlibm_bench::timing::ns_per_call;
use rlibm_bench::workloads::timing_inputs_f32;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    println!("Figure 5: log2/log10 performance vs piecewise sub-domains\n");
    println!(
        "{:>11} | {:>10} {:>8} | {:>10} {:>8} | {:>8}",
        "sub-domains", "log2 (ns)", "speedup", "log10(ns)", "speedup", "table"
    );
    println!("{}", "-".repeat(68));
    let xs = timing_inputs_f32("log2", n, 44);
    let mut base2 = None;
    let mut base10 = None;
    let mut prev_deg = u32::MAX;
    for bits in 0..=12u32 {
        let l2 = SweepLog::new(Base::Two, bits);
        let l10 = SweepLog::new(Base::Ten, bits);
        let t2 = ns_per_call(&xs, 5, |x| l2.eval(x));
        let t10 = ns_per_call(&xs, 5, |x| l10.eval(x));
        let b2 = *base2.get_or_insert(t2);
        let b10 = *base10.get_or_insert(t10);
        let deg_note = if l2.degree() < prev_deg && bits > 0 {
            format!(" (deg {})", l2.degree())
        } else {
            String::new()
        };
        prev_deg = prev_deg.min(l2.degree());
        println!(
            "{:>11} | {:>10.1} {:>7.2}x | {:>10.1} {:>7.2}x | {:>7}B{}",
            format!("2^{bits}"),
            t2,
            b2 / t2,
            t10,
            b10 / t10,
            l2.table_bytes(),
            deg_note
        );
    }
    println!(
        "\nPaper reference: ~1.2x at 2^6 sub-domains (6 KB of coefficients),\n\
         flattening beyond as table lookups stop paying for degree drops."
    );
}
