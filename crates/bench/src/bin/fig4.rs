//! Reproduces **Figure 4**: speedup of RLIBM-32's posit32 functions over
//! math libraries created by re-purposing double-precision functions.
//!
//! Usage: `cargo run -p rlibm-bench --release --bin fig4 [n_inputs]`

use rlibm_bench::timing::{fmt_speedup, geomean, ns_per_call};
use rlibm_bench::workloads::timing_inputs_posit32;
use rlibm_mp::Func;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    println!("Figure 4: speedup of RLIBM-32 posit32 functions (inputs/function: {n})\n");
    println!(
        "{:>8} | {:>9} | {:>22}",
        "posit fn", "ours (ns)", "vs repurposed double"
    );
    println!("{}", "-".repeat(46));
    let mut sp = Vec::new();
    for f in Func::POSIT {
        let name = f.name();
        let xs = timing_inputs_posit32(name, n, 43);
        let ours = ns_per_call(&xs, 5, rlibm_math::posit32_fn_by_name(name));
        let db = ns_per_call(&xs, 5, |x| {
            rlibm_math::baselines::double64::to_posit32(name, x)
        });
        sp.push(db / ours);
        println!(
            "{:>8} | {:>9.1} | {:>22}",
            name,
            ours,
            fmt_speedup(db / ours)
        );
    }
    println!("{}", "-".repeat(46));
    println!("{:>8} | {:>9} | {:>22}", "geomean", "", fmt_speedup(geomean(&sp)));
    println!(
        "\nPaper reference: 1.1x over glibc/Intel double, 1.4x over CR-LIBM\n\
         — and unlike all of those, every result here is correctly rounded\n\
         (Table 2)."
    );
}
