//! Reproduces **Figure 4**: speedup of RLIBM-32's posit32 functions over
//! math libraries created by re-purposing double-precision functions —
//! measuring, like `fig3`, the two-tier split (`fast` scalar path vs the
//! pure `dd` kernel) plus [`rlibm_math::eval_slice_posit32`] batching,
//! and emitting a machine-readable `BENCH_fig4.json` (schema
//! `rlibm-bench/fig4/v1`, re-parsed and schema-checked before exit).
//!
//! Usage: `cargo run -p rlibm-bench --release --bin fig4 -- \
//!             [n_inputs] [--quick] [--out PATH]`

use rlibm_bench::json::{write_validated, Json};
use rlibm_bench::timing::{fmt_speedup, geomean, ns_per_call};
use rlibm_bench::workloads::timing_inputs_posit32;
use rlibm_math::stats;
use rlibm_mp::Func;

pub const SCHEMA: &str = "rlibm-bench/fig4/v1";
pub const PER_FN_FIELDS: &[&str] = &[
    "ns_fast",
    "ns_dd",
    "ns_batched",
    "ns_double_libm",
    "fallback_rate",
];

fn main() {
    let mut n: usize = 4096;
    let mut reps = 5usize;
    let mut quick = false;
    let mut out_path = "BENCH_fig4.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                quick = true;
                n = 256;
                reps = 2;
            }
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => n = other.parse().unwrap_or_else(|_| panic!("bad arg '{other}'")),
        }
    }
    assert!(stats::enabled(), "bench builds carry fallback counters");
    println!(
        "Figure 4: RLIBM-32 posit32 functions, two-tier measurement (inputs/function: {n}{})\n",
        if quick { ", quick mode" } else { "" }
    );
    println!(
        "{:>8} | {:>9} | {:>7} | {:>12} | {:>8} | {:>22} | {:>9}",
        "posit fn", "fast (ns)", "dd (ns)", "batched (ns)", "fast/dd", "vs repurposed double", "fallback"
    );
    println!("{}", "-".repeat(94));
    let (mut s_dd, mut s_p, mut s_b) = (Vec::new(), Vec::new(), Vec::new());
    let mut rows = Vec::new();
    for f in Func::POSIT {
        let name = f.name();
        let xs = timing_inputs_posit32(name, n, 43);
        let fast_fn = rlibm_math::posit32_fn_by_name(name).expect("known name");
        let dd_fn = rlibm_math::posit32_dd_fn_by_name(name).expect("known name");

        stats::reset();
        for &x in &xs {
            std::hint::black_box(fast_fn(x));
        }
        let rate = stats::fallbacks_posit32(name) as f64 / xs.len() as f64;

        let fast = ns_per_call(&xs, reps, fast_fn);
        let dd = ns_per_call(&xs, reps, dd_fn);
        let mut out = vec![rlibm_posit::Posit32::ZERO; xs.len()];
        let batched = ns_per_call(&[0usize], reps, |_| {
            rlibm_math::eval_slice_posit32(name, &xs, &mut out).expect("known name");
            out[0]
        }) / xs.len() as f64;
        let db = ns_per_call(&xs, reps, |x| {
            rlibm_math::baselines::double64::to_posit32(name, x)
        });

        s_dd.push(dd / fast);
        s_p.push(db / fast);
        s_b.push(fast / batched);
        println!(
            "{:>8} | {:>9.1} | {:>7.1} | {:>12.1} | {:>8} | {:>22} | {:>8.3}%",
            name,
            fast,
            dd,
            batched,
            fmt_speedup(dd / fast),
            fmt_speedup(db / fast),
            rate * 100.0
        );
        rows.push(
            Json::obj()
                .set("name", name)
                .set("ns_fast", fast)
                .set("ns_dd", dd)
                .set("ns_batched", batched)
                .set("ns_double_libm", db)
                .set("fallback_rate", rate),
        );
    }
    println!("{}", "-".repeat(94));
    println!(
        "{:>8} | {:>9} | {:>7} | {:>12} | {:>8} | {:>22} |",
        "geomean",
        "",
        "",
        "",
        fmt_speedup(geomean(&s_dd)),
        fmt_speedup(geomean(&s_p))
    );
    println!(
        "\nPaper reference: 1.1x over glibc/Intel double, 1.4x over CR-LIBM\n\
         — and unlike all of those, every result here is correctly rounded\n\
         (Table 2)."
    );

    let doc = Json::obj()
        .set("schema", SCHEMA)
        .set("quick", quick)
        .set("n_inputs", n as f64)
        .set("functions", rows)
        .set(
            "geomean",
            Json::obj()
                .set("fast_vs_dd", geomean(&s_dd))
                .set("fast_vs_double_libm", geomean(&s_p))
                .set("batched_vs_fast", geomean(&s_b)),
        );
    write_validated(&out_path, &doc, SCHEMA, PER_FN_FIELDS).expect("write BENCH json");
    println!("\nwrote {out_path} (schema {SCHEMA}, parsed + validated)");
}
