//! Latency-attribution report for the serving stack: drives the traced
//! `rlibm-serve` closed loop through a set of legs — a healthy
//! attribution run, a rescalar-exemplar harvest, deadline pressure, a
//! mid-run drain, and (with the `fault` feature) backpressure,
//! corruption and panic-storm chaos legs — and emits a schema-checked
//! `TRACE_report.json` (`rlibm-trace/v1`, re-parsed and validated
//! before exit) answering *where requests spend their time*:
//!
//! * per (kind, function) workload: mean queue wait, mean batch
//!   residency, kernel ns/lane and rescalar-fallback ns/lane, from the
//!   exact `ServeReport::attribution` sums;
//! * service-wide stage quantiles (p50/p99/p999) estimated from the
//!   `serve.trace.*` log2 histograms via `rlibm_obs::quantile`;
//! * exemplars: the actual input bit patterns behind every shed reason,
//!   behind rescalar fallbacks (harvested from the trace rings), and
//!   behind the slowest completions;
//! * a flight-recorder summary of the dumps the chaos legs triggered.
//!
//! The serve outputs stay bit-identical with tracing on or off (the
//! `trace_identity` feature-matrix test pins them); this harness only
//! *reads* the observability side.
//!
//! `--check PATH` re-validates a committed report without re-running —
//! ci.sh runs it against the committed artifact in both feature
//! configurations.
//!
//! Usage: `cargo run -p rlibm-bench --release [--features fault,simd] \
//!             --bin trace_report -- [--quick] [--out PATH]`
//!        `... --bin trace_report -- --check TRACE_report.json`

use rlibm_bench::json::{parse, Json};
use rlibm_bench::trace::{check_trace_schema, write_validated_trace, TRACE_SCHEMA};
use rlibm_obs::quantile::from_log2_buckets;
use rlibm_obs::trace as obs_trace;
use rlibm_serve::{
    serve_closed_loop, workload, ServeConfig, ServeReport, ShedReason, StageAttribution,
};

/// Exemplars kept per section (counts are still reported exactly).
const EXEMPLAR_CAP: usize = 8;

/// Everything accumulated across legs.
#[derive(Default)]
struct Gathered {
    submitted: u64,
    attribution: Vec<StageAttribution>,
    /// (reason section index, func, x_bits, tag) — capped per section.
    sheds: Vec<Vec<(u8, u32, u64)>>,
    shed_totals: Vec<u64>,
    /// (func, x_bits) rescalar exemplars from the trace rings.
    rescalar: Vec<(u8, u32)>,
    rescalar_total: u64,
    /// (func, x_bits, latency_ns, tag) slowest completions.
    slowest: Vec<(u8, u32, u64, u64)>,
    flight_panic: u64,
    flight_corruption: u64,
    flight_events: u64,
}

impl Gathered {
    fn new() -> Gathered {
        Gathered {
            attribution: vec![StageAttribution::default(); workload::NUM_FUNCS],
            sheds: vec![Vec::new(); SHED_REASONS.len()],
            shed_totals: vec![0; SHED_REASONS.len()],
            ..Gathered::default()
        }
    }

    fn absorb(&mut self, report: &ServeReport) {
        self.submitted += report.submitted;
        for (sum, part) in self.attribution.iter_mut().zip(report.attribution.iter()) {
            sum.merge(part);
        }
        for shed in &report.sheds {
            let idx = reason_index(shed.reason);
            self.shed_totals[idx] += 1;
            if self.sheds[idx].len() < EXEMPLAR_CAP {
                self.sheds[idx].push((shed.func, shed.x_bits, shed.tag));
            }
        }
        for dump in &report.flight {
            match dump.trigger {
                rlibm_serve::FlightTrigger::Panic => self.flight_panic += 1,
                rlibm_serve::FlightTrigger::Corruption => self.flight_corruption += 1,
            }
            self.flight_events += dump.events.len() as u64;
        }
        // Keep the globally slowest completions.
        for c in &report.completions {
            self.slowest.push((c.func, c.x_bits, c.latency_ns, c.tag));
        }
        self.slowest.sort_unstable_by_key(|&(_, _, ns, _)| std::cmp::Reverse(ns));
        self.slowest.truncate(EXEMPLAR_CAP);
    }
}

/// Section order mirrors `rlibm_bench::trace::SHED_SECTIONS`.
const SHED_REASONS: &[(ShedReason, &str)] = &[
    (ShedReason::Deadline, "deadline"),
    (ShedReason::Backpressure, "backpressure"),
    (ShedReason::AdmissionClosed, "admission"),
    (ShedReason::Corrupted, "corrupted"),
    (ShedReason::Poisoned, "poisoned"),
];

fn reason_index(reason: ShedReason) -> usize {
    SHED_REASONS
        .iter()
        .position(|&(r, _)| r == reason)
        .unwrap_or_else(|| unreachable!("every reason is listed"))
}

fn run_leg(name: &str, gathered: &mut Gathered, cfg: &ServeConfig) -> ServeReport {
    let report =
        serve_closed_loop(cfg).unwrap_or_else(|e| panic!("leg {name}: accounting lost: {e}"));
    assert!(report.balanced(), "leg {name}: accounting does not balance");
    assert_eq!(
        workload::count_mismatches(&report.completions),
        0,
        "leg {name}: tracing must not perturb served bits"
    );
    gathered.absorb(&report);
    println!(
        "{name:>18} | {:>9} | {:>9} | {:>7} | {:>6} | {:>5}",
        report.submitted,
        report.completions.len(),
        report.sheds.len(),
        report.panics,
        report.flight.len(),
    );
    report
}

fn exemplar_rows(items: &[(u8, u32, u64)]) -> Json {
    Json::Arr(
        items
            .iter()
            .map(|&(func, x_bits, tag)| {
                Json::obj()
                    .set("func", workload::func_label(func % workload::NUM_FUNCS as u8).as_str())
                    .set("x_bits", f64::from(x_bits))
                    .set("tag", tag as f64)
            })
            .collect(),
    )
}

fn stage_entry(hist: Option<&rlibm_obs::HistogramSnapshot>) -> Json {
    let (count, sum, buckets) = hist
        .map(|h| (h.count, h.sum, h.buckets.as_slice()))
        .unwrap_or((0, 0, &[]));
    let mean = if count > 0 { sum as f64 / count as f64 } else { 0.0 };
    Json::obj()
        .set("count", count as f64)
        .set("sum", sum as f64)
        .set("mean", mean)
        .set("p50", from_log2_buckets(buckets, 0.50) as f64)
        .set("p99", from_log2_buckets(buckets, 0.99) as f64)
        .set("p999", from_log2_buckets(buckets, 0.999) as f64)
}

fn check_report(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    check_trace_schema(&doc).map_err(|e| format!("{path}: {e}"))?;
    let rows = doc.get("functions").and_then(Json::as_arr).map_or(0, <[Json]>::len);
    println!("{path}: ok — {rows} workload rows, schema {TRACE_SCHEMA}, invariants hold");
    Ok(())
}

/// Keeps injected chaos panics out of stderr (the chaos legs unwind
/// thousands of times on purpose); every other panic stays loud.
fn install_chaos_panic_filter() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected =
            info.payload().downcast_ref::<&str>().is_some_and(|s| s.starts_with("chaos:"));
        if !injected {
            default_hook(info);
        }
    }));
}

fn main() {
    let mut quick = false;
    let mut out_path = "TRACE_report.json".to_string();
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--check" => check_path = Some(args.next().expect("--check requires a path")),
            other => panic!("bad arg '{other}'"),
        }
    }
    if let Some(path) = check_path {
        if let Err(e) = check_report(&path) {
            eprintln!("trace_report --check failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    let fault = rlibm_serve::chaos::injection_compiled_in();
    let telemetry = rlibm_obs::enabled();
    if fault {
        install_chaos_panic_filter();
    }
    rlibm_serve::register_metrics();
    rlibm_obs::reset_all();

    let scale = |full: u64, q: u64| if quick { q } else { full };
    let base = ServeConfig {
        shards: 2,
        producers: 2,
        queue_capacity: 512,
        seed: 0x0001_2ACE_5EED, // deterministic, distinct from the other harnesses
        posit_permille: 350,
        restart_backoff_ns: 1_000,
        ..ServeConfig::default()
    };
    println!(
        "trace_report: sampling 1/{} by tag hash{}\n",
        1u64 << obs_trace::DEFAULT_SAMPLE_SHIFT,
        if quick { " (quick mode)" } else { "" }
    );
    println!(
        "{:>18} | {:>9} | {:>9} | {:>7} | {:>6} | {:>5}",
        "leg", "submitted", "complete", "sheds", "panics", "dumps"
    );
    println!("{}", "-".repeat(70));

    let mut gathered = Gathered::new();

    // 1. Healthy attribution: default 1/16 sampling; fills the
    //    per-function queue/batch/kernel sums and the slowest exemplars.
    run_leg(
        "healthy",
        &mut gathered,
        &ServeConfig { requests: scale(400_000, 60_000), ..base.clone() },
    );

    // 2. Rescalar harvest: sampling effectively off (shift 32) and
    //    f32-only traffic, so the trace rings end the leg holding almost
    //    nothing but Rescalar exemplar events (sheds would also appear,
    //    but this leg is healthy). Snapshot immediately — the next leg's
    //    threads reclaim and clear the rings.
    run_leg(
        "rescalar_harvest",
        &mut gathered,
        &ServeConfig {
            requests: scale(400_000, 80_000),
            posit_permille: 0,
            trace_sample_shift: 32,
            ..base.clone()
        },
    );
    for t in obs_trace::snapshot_rings() {
        for e in t.events {
            if e.kind == obs_trace::TraceKind::Rescalar {
                gathered.rescalar_total += 1;
                if gathered.rescalar.len() < EXEMPLAR_CAP
                    && !gathered.rescalar.contains(&(e.aux, e.payload))
                {
                    gathered.rescalar.push((e.aux, e.payload));
                }
            }
        }
    }

    // 3. Deadline pressure: a 1ns relative deadline sheds at dequeue —
    //    every deadline exemplar carries the input bits it never served.
    run_leg(
        "deadline",
        &mut gathered,
        &ServeConfig { requests: scale(60_000, 15_000), deadline_ns: 1, ..base.clone() },
    );

    // 4. Mid-run drain: admission closes while the run is in flight;
    //    the unsubmitted remainder becomes AdmissionClosed exemplars.
    run_leg(
        "drain",
        &mut gathered,
        &ServeConfig {
            requests: scale(2_000_000, 400_000),
            drain_after_ns: scale(5_000_000, 1_000_000),
            ..base.clone()
        },
    );

    // Chaos legs (fault builds only): backpressure under injected
    // stalls, ring corruption, and a panic storm against a restart
    // budget of 1 — covering the remaining shed reasons and triggering
    // flight-recorder dumps.
    if fault {
        run_leg(
            "backpressure",
            &mut gathered,
            &ServeConfig {
                requests: scale(100_000, 15_000),
                queue_capacity: 64,
                push_budget: 16,
                chaos: Some(rlibm_serve::ChaosConfig {
                    seed: 0xB4C2_7A0E,
                    delay_per_million: 200_000,
                    delay_ns: 2_000_000,
                    ..rlibm_serve::ChaosConfig::default()
                }),
                ..base.clone()
            },
        );
        run_leg(
            "corruption",
            &mut gathered,
            &ServeConfig {
                requests: scale(200_000, 30_000),
                chaos: Some(rlibm_serve::ChaosConfig {
                    seed: 0xBAD_C0DE,
                    corrupt_per_million: 50_000,
                    ..rlibm_serve::ChaosConfig::default()
                }),
                ..base.clone()
            },
        );
        run_leg(
            "panic_storm",
            &mut gathered,
            &ServeConfig {
                requests: scale(100_000, 20_000),
                max_restarts: 1,
                chaos: Some(rlibm_serve::ChaosConfig {
                    seed: 0xDEAD_BEA7,
                    panic_per_million: 500_000,
                    ..rlibm_serve::ChaosConfig::default()
                }),
                ..base.clone()
            },
        );
    }
    println!("{}", "-".repeat(70));

    // Attribution table from the exact per-function sums.
    println!(
        "\n{:>16} | {:>8} | {:>10} | {:>10} | {:>10} | {:>10}",
        "workload", "samples", "queue (ns)", "batch (ns)", "kern/lane", "fall/lane"
    );
    println!("{}", "-".repeat(80));
    let mut rows = Vec::new();
    for (f, a) in gathered.attribution.iter().enumerate() {
        let queue_mean = if a.samples > 0 { a.queue_ns as f64 / a.samples as f64 } else { 0.0 };
        let batch_mean = if a.samples > 0 { a.batch_ns as f64 / a.samples as f64 } else { 0.0 };
        let kernel_lane =
            if a.kernel_lanes > 0 { a.kernel_ns as f64 / a.kernel_lanes as f64 } else { 0.0 };
        let fallback_lane =
            if a.kernel_lanes > 0 { a.fallback_ns as f64 / a.kernel_lanes as f64 } else { 0.0 };
        let label = workload::func_label(f as u8);
        println!(
            "{label:>16} | {:>8} | {queue_mean:>10.0} | {batch_mean:>10.0} | \
             {kernel_lane:>10.1} | {fallback_lane:>10.2}",
            a.samples
        );
        rows.push(
            Json::obj()
                .set("name", label.as_str())
                .set("samples", a.samples as f64)
                .set("kernel_lanes", a.kernel_lanes as f64)
                .set("batches", a.batches as f64)
                .set("ns_queue_mean", queue_mean)
                .set("ns_batch_mean", batch_mean)
                .set("ns_kernel_lane", kernel_lane)
                .set("ns_fallback_lane", fallback_lane),
        );
    }
    println!("{}", "-".repeat(80));

    // Service-wide stage quantiles from the serve.trace.* histograms.
    let snap = rlibm_obs::snapshot();
    let hist = |name: &str| snap.histograms.iter().find(|h| h.name == name);
    let stage_quantiles = Json::obj()
        .set("queue_wait_ns", stage_entry(hist("serve.trace.queue_wait_ns")))
        .set("batch_wait_ns", stage_entry(hist("serve.trace.batch_wait_ns")))
        .set("kernel_ns", stage_entry(hist("serve.trace.kernel_ns")))
        .set("fallback_ns", stage_entry(hist("serve.trace.fallback_ns")));

    let mut exemplars = Json::obj();
    let mut shed_totals = Json::obj();
    for (i, &(_, name)) in SHED_REASONS.iter().enumerate() {
        exemplars = exemplars.set(name, exemplar_rows(&gathered.sheds[i]));
        shed_totals = shed_totals.set(name, gathered.shed_totals[i] as f64);
    }
    exemplars = exemplars
        .set(
            "rescalar",
            Json::Arr(
                gathered
                    .rescalar
                    .iter()
                    .map(|&(func, x_bits)| {
                        Json::obj()
                            .set(
                                "func",
                                workload::func_label(func % workload::NUM_FUNCS as u8).as_str(),
                            )
                            .set("x_bits", f64::from(x_bits))
                    })
                    .collect(),
            ),
        )
        .set(
            "slowest",
            Json::Arr(
                gathered
                    .slowest
                    .iter()
                    .map(|&(func, x_bits, ns, tag)| {
                        Json::obj()
                            .set(
                                "func",
                                workload::func_label(func % workload::NUM_FUNCS as u8).as_str(),
                            )
                            .set("x_bits", f64::from(x_bits))
                            .set("latency_ns", ns as f64)
                            .set("tag", tag as f64)
                    })
                    .collect(),
            ),
        );

    let sampled: u64 = gathered.attribution.iter().map(|a| a.samples).sum();
    println!(
        "\nsampled {} of {} requests; {} rescalar exemplars seen ({} kept); \
         {} flight dump(s) ({} panic, {} corruption), {} events; {} trace drops",
        sampled,
        gathered.submitted,
        gathered.rescalar_total,
        gathered.rescalar.len(),
        gathered.flight_panic + gathered.flight_corruption,
        gathered.flight_panic,
        gathered.flight_corruption,
        gathered.flight_events,
        obs_trace::dropped_events(),
    );

    let doc = Json::obj()
        .set("schema", TRACE_SCHEMA)
        .set("quick", quick)
        .set("telemetry", telemetry)
        .set("fault", fault)
        .set("sample_shift", f64::from(obs_trace::DEFAULT_SAMPLE_SHIFT))
        .set("n_inputs", gathered.submitted as f64)
        .set("sampled", sampled as f64)
        .set("dropped_events", obs_trace::dropped_events() as f64)
        .set("shed_totals", shed_totals)
        .set("rescalar_events", gathered.rescalar_total as f64)
        .set("stage_quantiles", stage_quantiles)
        .set(
            "flight",
            Json::obj()
                .set("dumps", (gathered.flight_panic + gathered.flight_corruption) as f64)
                .set("panic_dumps", gathered.flight_panic as f64)
                .set("corruption_dumps", gathered.flight_corruption as f64)
                .set("events", gathered.flight_events as f64),
        )
        .set("exemplars", exemplars)
        .set("functions", rows);
    write_validated_trace(&out_path, &doc).expect("write TRACE json");
    println!("wrote {out_path} (schema {TRACE_SCHEMA}, parsed + validated)");
}
