//! Reproduces **Table 3**: details about the generated polynomials —
//! generation time, number of reduced inputs, piecewise-polynomial size,
//! degree and term count, for both float and posit32 targets.
//!
//! Each function's generator runs on its *reduced* domain (the domain its
//! range reduction produces — e.g. `[0, 1/512]` for sinpi/cospi, `[1, 2)`
//! for the logs), which is where the paper's counterexample-guided
//! generation operates. Domains are subsampled (the paper's full runs use
//! every reduced input and take minutes to hours; the sampling factor is
//! printed).
//!
//! Usage: `cargo run -p rlibm-bench --release --bin table3 [max_inputs]`

use rlibm_core::pipeline::{generate, GeneratorSpec};
use rlibm_core::polygen::PolyGenConfig;
use rlibm_core::ApproxConfig;
use rlibm_fp::Representation;
use rlibm_mp::Func;
use rlibm_posit::Posit32;

/// Reduced-domain description for one Table 3 row.
struct Row {
    func: Func,
    lo: f64,
    hi: f64,
    terms: Vec<u32>,
}

fn rows() -> Vec<Row> {
    let dense = |d: u32| (0..=d).collect::<Vec<_>>();
    vec![
        Row { func: Func::Ln, lo: 1.0, hi: 1.9999999, terms: dense(7) },
        Row { func: Func::Log2, lo: 1.0, hi: 1.9999999, terms: dense(7) },
        Row { func: Func::Log10, lo: 1.0, hi: 1.9999999, terms: dense(7) },
        Row { func: Func::Exp, lo: -0.0054, hi: 0.0054, terms: dense(5) },
        Row { func: Func::Exp2, lo: -0.0078125, hi: 0.0078125, terms: dense(5) },
        Row { func: Func::Exp10, lo: -0.0054, hi: 0.0054, terms: dense(5) },
        Row { func: Func::Sinh, lo: 0.000001, hi: 0.34657, terms: vec![1, 3, 5, 7, 9] },
        Row { func: Func::Cosh, lo: 0.000001, hi: 0.34657, terms: vec![0, 2, 4, 6, 8] },
        Row { func: Func::SinPi, lo: 1e-9, hi: 0.001953125, terms: vec![1, 3, 5] },
        Row { func: Func::CosPi, lo: 1e-9, hi: 0.001953125, terms: vec![0, 2, 4] },
    ]
}

/// All f32 values in `[lo, hi]`, subsampled to about `max` points.
fn f32_inputs(lo: f64, hi: f64, max: usize) -> Vec<f32> {
    let a = (lo as f32).to_bits();
    let b = (hi as f32).to_bits();
    let mut out = Vec::new();
    if lo >= 0.0 {
        let stride = (((b - a) as usize / max).max(1)) as u32;
        let mut bits = a;
        while bits <= b {
            out.push(f32::from_bits(bits));
            bits = bits.saturating_add(stride);
            if bits == u32::MAX {
                break;
            }
        }
    } else {
        // Two sign classes: mirror the positive sweep.
        let pos = f32_inputs(0.0000001, hi, max / 2);
        out.extend(pos.iter().map(|&x| -x));
        out.extend(pos);
    }
    out
}

/// Posit32 values in `[lo, hi]`, subsampled (positive patterns are
/// value-ordered, so a pattern stride is a value sweep).
fn posit_inputs(lo: f64, hi: f64, max: usize) -> Vec<Posit32> {
    let mut out = Vec::new();
    if lo >= 0.0 {
        let a = Posit32::from_f64(lo.max(1e-30)).to_bits();
        let b = Posit32::from_f64(hi).to_bits();
        let stride = (((b - a) as usize / max).max(1)) as u32;
        let mut bits = a;
        while bits <= b {
            out.push(Posit32::from_bits(bits));
            bits = bits.saturating_add(stride);
        }
    } else {
        let pos = posit_inputs(1e-9, hi, max / 2);
        out.extend(pos.iter().map(|&x| -x));
        out.extend(pos);
    }
    out
}

fn run<T: Representation>(row: &Row, inputs: &[T]) -> String {
    let mut spec = GeneratorSpec::identity(row.func, row.terms.clone());
    spec.approx_cfgs[0] = ApproxConfig {
        polygen: PolyGenConfig {
            terms: row.terms.clone(),
            initial_sample: 64,
            max_sample: 3000,
            ..Default::default()
        },
        max_split_bits: 12,
    };
    match generate(&spec, inputs) {
        Ok(g) => {
            let st = g.stats();
            format!(
                "{:>7.1}s | {:>9} | 2^{:<3} | {:>3} | {:>3}",
                st.seconds,
                st.reduced_inputs,
                (st.piecewise_sizes[0] as f64).log2().round() as u32,
                st.degrees[0],
                st.term_counts[0]
            )
        }
        Err(e) => format!("FAILED: {e}"),
    }
}

fn main() {
    let max_inputs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12_000);
    println!("Table 3: generated piecewise polynomials (reduced-domain runs,");
    println!("  ~{max_inputs} sampled reduced inputs per function)\n");
    println!(
        "{:>7} | {:>8} | {:>7} | {:>9} | {:>5} | {:>3} | {:>3}",
        "f(x)", "target", "time", "reduced", "polys", "deg", "terms"
    );
    println!("{}", "-".repeat(60));
    for row in rows() {
        let xs = f32_inputs(row.lo, row.hi, max_inputs);
        let cell = run::<f32>(&row, &xs);
        println!("{:>7} | {:>8} | {}", row.func.name(), "float", cell);
    }
    for row in rows().into_iter().take(8) {
        // posit32 has the first eight functions (Table 2's set).
        let xs = posit_inputs(row.lo, row.hi, max_inputs);
        let cell = run::<Posit32>(&row, &xs);
        println!("{:>7} | {:>8} | {}", row.func.name(), "posit32", cell);
    }
    println!(
        "\nColumns mirror the paper's Table 3: generation time, number of\n\
         (sampled) reduced inputs, piecewise polynomial count, max degree,\n\
         max non-zero terms. sinpi/cospi admit a single polynomial, as in\n\
         the paper."
    );
}
