//! Chaos harness for the supervised serving layer (feature `fault`).
//!
//! Drives `rlibm-serve` through six adversarial scenarios — panic
//! storms, injected flush delays under deadlines, ring-slot corruption,
//! producer backpressure, a mid-run graceful drain, and kernel-level
//! fast-path faults composed with shard panics — and asserts the
//! service's failure contract on every one:
//!
//! > Every submitted request ends as **exactly one** of a bit-identical
//! > completion or an explicitly-reasoned shed record, and **zero**
//! > mis-rounded outputs escape, no matter what is injected.
//!
//! Each scenario's accounting (completions, sheds by reason, panics,
//! restarts, injection counts, mismatches, unaccounted remainder) lands
//! in a schema-checked `CHAOS_manifest.json` (`rlibm-chaos/v1`,
//! re-parsed and validated before exit). A full run must land at least
//! [`FULL_INJECTION_FLOOR`] injections across all modes; `--quick`
//! shrinks the workloads for the CI smoke and drops the floor.
//!
//! `--check PATH` re-validates a committed manifest without re-running:
//! schema, per-row invariants (`unaccounted == 0`, `mismatches == 0`)
//! and the full-run injection floor. ci.sh runs it against the
//! committed artifact so a hand-edited or stale manifest fails the
//! build.
//!
//! Usage: `cargo run -p rlibm-bench --release --features fault \
//!             --bin chaos_bench -- [--quick] [--out PATH]`
//!        `... --bin chaos_bench -- --check CHAOS_manifest.json`

use rlibm_bench::json::{check_bench_schema, parse, write_validated, Json};
use rlibm_obs::quantile::percentile;
use rlibm_serve::{serve_closed_loop, workload, ChaosConfig, ServeConfig, ShedReason};

pub const SCHEMA: &str = "rlibm-chaos/v1";
pub const PER_FN_FIELDS: &[&str] = &["ns_p50", "ns_p99"];

/// Minimum total injections (serve-layer + kernel-layer) a full run
/// must certify against.
pub const FULL_INJECTION_FLOOR: u64 = 100_000;

/// What a scenario is required to have exercised (beyond the universal
/// invariants, which every scenario asserts).
#[derive(Default)]
struct Expect {
    panics: bool,
    delays: bool,
    corruptions: bool,
    kernel_faults: bool,
    deadline_sheds: bool,
    backpressure_sheds: bool,
    admission_sheds: bool,
    /// The restart budget is unlimited, so no shard may give up and
    /// every panic must be followed by a restart.
    full_recovery: bool,
}

struct ScenarioResult {
    row: Json,
    injected: u64,
    submitted: u64,
}

/// Totals from the kernel-level injection sites (cumulative per
/// process; scenarios diff around their run).
fn kernel_injected_total() -> u64 {
    rlibm_core::fault::site_injections().iter().map(|(_, _, n)| n).sum()
}

fn run_scenario(name: &str, cfg: &ServeConfig, expect: &Expect) -> ScenarioResult {
    let kernel0 = kernel_injected_total();
    let report = serve_closed_loop(cfg)
        .unwrap_or_else(|e| panic!("scenario {name}: accounting lost: {e}"));
    let kernel_injections = kernel_injected_total() - kernel0;

    // The universal invariant, asserted on every scenario regardless of
    // what was injected.
    let completions = report.completions.len() as u64;
    let sheds = report.sheds.len() as u64;
    let unaccounted = report.submitted.saturating_sub(completions + sheds);
    assert!(
        report.balanced(),
        "scenario {name}: {completions} completions + {sheds} sheds != {} submitted",
        report.submitted
    );
    let mismatches = workload::count_mismatches(&report.completions);
    assert_eq!(mismatches, 0, "scenario {name}: mis-rounded outputs escaped");
    // Exactly-once across both outcome kinds: no tag may appear twice.
    let mut tags: Vec<u64> = report
        .completions
        .iter()
        .map(|c| c.tag)
        .chain(report.sheds.iter().map(|s| s.tag))
        .collect();
    tags.sort_unstable();
    let before = tags.len();
    tags.dedup();
    assert_eq!(tags.len(), before, "scenario {name}: a request ended twice");
    // Every caught panic is one we injected — a non-chaos panic in the
    // worker body would break this equality.
    assert_eq!(
        report.panics, report.chaos.panics,
        "scenario {name}: caught panics != injected panics"
    );

    // Scenario-specific obligations: the chaos plan must actually have
    // fired, otherwise the scenario certifies nothing.
    if expect.panics {
        assert!(report.chaos.panics > 0, "scenario {name}: no panics injected");
    }
    if expect.delays {
        assert!(report.chaos.delays > 0, "scenario {name}: no delays injected");
    }
    if expect.corruptions {
        assert!(report.chaos.corruptions > 0, "scenario {name}: no corruption injected");
        assert_eq!(
            report.shed_count(ShedReason::Corrupted),
            report.chaos.corruptions,
            "scenario {name}: every corruption must be detected and shed, exactly"
        );
    }
    if expect.kernel_faults {
        assert!(kernel_injections > 0, "scenario {name}: no kernel faults injected");
    }
    if expect.deadline_sheds {
        assert!(
            report.shed_count(ShedReason::Deadline) > 0,
            "scenario {name}: deadline pressure produced no deadline sheds"
        );
    }
    if expect.backpressure_sheds {
        assert!(
            report.shed_count(ShedReason::Backpressure) > 0,
            "scenario {name}: overload produced no backpressure sheds"
        );
    }
    if expect.full_recovery {
        assert!(
            report.failed_shards.is_empty(),
            "scenario {name}: a shard gave up despite an unlimited restart budget"
        );
        assert_eq!(
            report.restarts, report.panics,
            "scenario {name}: every caught panic must restart its shard"
        );
    }
    if expect.admission_sheds {
        assert!(
            report.shed_count(ShedReason::AdmissionClosed) > 0,
            "scenario {name}: the drain produced no admission sheds"
        );
        assert!(!report.completions.is_empty(), "scenario {name}: drain served nothing");
        assert_eq!(report.quiesce.len(), report.shards, "scenario {name}: quiesce rows");
    }

    let mut lat: Vec<u64> = report.completions.iter().map(|c| c.latency_ns).collect();
    lat.sort_unstable();
    let (p50, p99) = (percentile(&lat, 0.50), percentile(&lat, 0.99));
    let injected = report.chaos.total() + kernel_injections;
    println!(
        "{name:>18} | {:>9} | {:>9} | {:>7} | {:>6}/{:<6} | {:>8} | {:>9} | ok",
        report.submitted,
        completions,
        sheds,
        report.panics,
        report.restarts,
        injected,
        p99,
    );
    let row = Json::obj()
        .set("name", name)
        .set("requests", report.submitted as f64)
        .set("completions", completions as f64)
        .set("sheds", sheds as f64)
        .set("shed_deadline", report.shed_count(ShedReason::Deadline) as f64)
        .set("shed_backpressure", report.shed_count(ShedReason::Backpressure) as f64)
        .set("shed_admission", report.shed_count(ShedReason::AdmissionClosed) as f64)
        .set("shed_corrupted", report.shed_count(ShedReason::Corrupted) as f64)
        .set("shed_poisoned", report.shed_count(ShedReason::Poisoned) as f64)
        .set("panics", report.panics as f64)
        .set("restarts", report.restarts as f64)
        .set("failed_shards", report.failed_shards.len() as f64)
        .set("delays", report.chaos.delays as f64)
        .set("corruptions", report.chaos.corruptions as f64)
        .set("kernel_injections", kernel_injections as f64)
        .set("mismatches", mismatches as f64)
        .set("unaccounted", unaccounted as f64)
        .set("ns_p50", p50 as f64)
        .set("ns_p99", p99 as f64);
    ScenarioResult { row, injected, submitted: report.submitted }
}

/// Re-validates a committed manifest: schema shape, per-row invariants,
/// and the full-run injection floor. Exits nonzero on any violation.
fn check_manifest(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    check_bench_schema(&doc, SCHEMA, PER_FN_FIELDS).map_err(|e| format!("{path}: {e}"))?;
    let quick = matches!(doc.get("quick"), Some(Json::Bool(true)));
    let rows = doc.get("functions").and_then(Json::as_arr).unwrap_or(&[]);
    let mut total_injected = 0.0;
    for row in rows {
        let name = row.get("name").and_then(Json::as_str).unwrap_or("?");
        for (field, want_zero) in [("unaccounted", true), ("mismatches", true)] {
            let v = row
                .get(field)
                .and_then(Json::as_num)
                .ok_or(format!("{path}: row '{name}' missing '{field}'"))?;
            if want_zero && v != 0.0 {
                return Err(format!("{path}: row '{name}' has nonzero {field} = {v}"));
            }
        }
        for field in ["requests", "completions", "sheds", "panics", "restarts"] {
            row.get(field)
                .and_then(Json::as_num)
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or(format!("{path}: row '{name}' missing numeric '{field}'"))?;
        }
        let (req, comp, sheds) = (
            row.get("requests").and_then(Json::as_num).unwrap_or(0.0),
            row.get("completions").and_then(Json::as_num).unwrap_or(0.0),
            row.get("sheds").and_then(Json::as_num).unwrap_or(0.0),
        );
        if comp + sheds != req {
            return Err(format!(
                "{path}: row '{name}' does not balance: {comp} + {sheds} != {req}"
            ));
        }
        for field in ["delays", "corruptions", "kernel_injections", "panics"] {
            total_injected += row.get(field).and_then(Json::as_num).unwrap_or(0.0);
        }
    }
    let claimed = doc
        .get("total_injected")
        .and_then(Json::as_num)
        .ok_or(format!("{path}: missing 'total_injected'"))?;
    if claimed != total_injected {
        return Err(format!(
            "{path}: total_injected {claimed} != per-row sum {total_injected}"
        ));
    }
    if !quick && total_injected < FULL_INJECTION_FLOOR as f64 {
        return Err(format!(
            "{path}: full manifest certifies only {total_injected} injections \
             (floor {FULL_INJECTION_FLOOR})"
        ));
    }
    println!(
        "{path}: ok — {} scenario(s), {total_injected} injections, all rows balanced, \
         zero mismatches",
        rows.len()
    );
    Ok(())
}

/// Keeps injected chaos panics (static payload prefixed "chaos:") out
/// of stderr — thousands of expected unwinds would drown real failures
/// — while leaving every other panic loudly reported.
fn install_chaos_panic_filter() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected =
            info.payload().downcast_ref::<&str>().is_some_and(|s| s.starts_with("chaos:"));
        if !injected {
            default_hook(info);
        }
    }));
}

fn main() {
    let mut quick = false;
    let mut out_path = "CHAOS_manifest.json".to_string();
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--check" => check_path = Some(args.next().expect("--check requires a path")),
            other => panic!("bad arg '{other}'"),
        }
    }
    if let Some(path) = check_path {
        if let Err(e) = check_manifest(&path) {
            eprintln!("chaos_bench --check failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    install_chaos_panic_filter();
    rlibm_serve::register_metrics();
    assert!(rlibm_serve::chaos::injection_compiled_in());
    // Workload scale: full mode is sized so the committed manifest
    // certifies >= FULL_INJECTION_FLOOR injections with margin.
    let scale = |full: u64, q: u64| if quick { q } else { full };
    let base = ServeConfig {
        shards: 2,
        producers: 2,
        queue_capacity: 512,
        seed: 0xC4A0_5EED,
        posit_permille: 250,
        restart_backoff_ns: 1_000,
        ..ServeConfig::default()
    };
    println!(
        "chaos_bench: 6 scenarios{}\n",
        if quick { " (quick mode)" } else { "" }
    );
    println!(
        "{:>18} | {:>9} | {:>9} | {:>7} | {:>6}/{:<6} | {:>8} | {:>9} |",
        "scenario", "submitted", "complete", "sheds", "panics", "restarts", "injected", "p99 (ns)"
    );
    println!("{}", "-".repeat(96));

    let results = vec![
    // 1. Panic storm: a few percent of flushes unwind the worker before
    //    any completion is recorded; the supervisor must salvage,
    //    requeue and restart without losing or duplicating a request.
    run_scenario(
        "panic_storm",
        &ServeConfig {
            requests: scale(300_000, 30_000),
            max_restarts: u32::MAX,
            chaos: Some(ChaosConfig {
                seed: 0x9A41C,
                panic_per_million: 30_000,
                ..ChaosConfig::default()
            }),
            ..base.clone()
        },
        &Expect { panics: true, full_recovery: true, ..Expect::default() },
    ),

    // 2. Deadline pressure: injected 1ms flush stalls against a 0.5ms
    //    deadline — requests queued behind a stall must be shed as
    //    Deadline records, not served late or dropped.
    run_scenario(
        "deadline_pressure",
        &ServeConfig {
            requests: scale(200_000, 20_000),
            deadline_ns: 500_000,
            chaos: Some(ChaosConfig {
                seed: 0x00DE_AD11,
                delay_per_million: 50_000,
                delay_ns: 1_000_000,
                ..ChaosConfig::default()
            }),
            ..base.clone()
        },
        &Expect { delays: true, deadline_sheds: true, ..Expect::default() },
    ),

    // 3. Ring corruption: 8% of dequeues have one bit of x_bits flipped
    //    in the slot. The per-request checksum must catch every single
    //    one (shed Corrupted, count-exact) — none may reach a kernel.
    run_scenario(
        "corruption",
        &ServeConfig {
            requests: scale(1_500_000, 40_000),
            chaos: Some(ChaosConfig {
                seed: 0xBAD_B174,
                corrupt_per_million: 80_000,
                ..ChaosConfig::default()
            }),
            ..base.clone()
        },
        &Expect { corruptions: true, ..Expect::default() },
    ),

    // 4. Backpressure: a tiny ring, a spin-only push budget (16
    //    attempts resolve in nanoseconds, well inside an injected 2ms
    //    stall) and frequent long stalls force the producers'
    //    bounded-backoff push to give up — overload becomes typed
    //    Backpressure sheds instead of an unbounded spin.
    run_scenario(
        "backpressure",
        &ServeConfig {
            requests: scale(150_000, 15_000),
            queue_capacity: 64,
            push_budget: 16,
            chaos: Some(ChaosConfig {
                seed: 0xB4C2,
                delay_per_million: 200_000,
                delay_ns: 2_000_000,
                ..ChaosConfig::default()
            }),
            ..base.clone()
        },
        &Expect { delays: true, backpressure_sheds: true, ..Expect::default() },
    ),

    // 5. Drain under load: admission closes mid-run while flushes are
    //    being stalled; admitted work is served, the remainder becomes
    //    AdmissionClosed sheds, and every shard quiesces cleanly.
    run_scenario(
        "drain_under_load",
        &ServeConfig {
            requests: scale(2_000_000, 150_000),
            drain_after_ns: scale(30_000_000, 3_000_000),
            chaos: Some(ChaosConfig {
                seed: 0x000D_2A14,
                delay_per_million: 20_000,
                delay_ns: 200_000,
                ..ChaosConfig::default()
            }),
            ..base.clone()
        },
        &Expect { delays: true, admission_sheds: true, ..Expect::default() },
    ),

    // 6. Kernel faults under supervision: the PR-3 fast-path corruption
    //    hooks armed on every worker thread (posit-heavy traffic — the
    //    posit slice path routes through the scalar fns, which carry
    //    the injection sites) *composed with* shard panics. Both
    //    failure layers at once, still bit-identical completions.
    run_scenario(
        "kernel_faults",
        &ServeConfig {
            requests: scale(400_000, 40_000),
            posit_permille: 700,
            max_restarts: u32::MAX,
            chaos: Some(ChaosConfig {
                seed: 0x0006_EB5E,
                panic_per_million: 10_000,
                kernel_fault_seed: 0xFA57_F417,
                ..ChaosConfig::default()
            }),
            ..base.clone()
        },
        &Expect { panics: true, kernel_faults: true, full_recovery: true, ..Expect::default() },
    ),
    ];

    println!("{}", "-".repeat(96));
    let total_injected: u64 = results.iter().map(|r| r.injected).sum();
    let n_inputs: u64 = results.iter().map(|r| r.submitted).sum();
    println!(
        "\ntotal: {n_inputs} requests, {total_injected} injections across \
         panic/delay/corruption/kernel — every request accounted, zero mis-rounded"
    );
    if !quick {
        assert!(
            total_injected >= FULL_INJECTION_FLOOR,
            "full run certified only {total_injected} injections (floor {FULL_INJECTION_FLOOR})"
        );
    }

    let doc = Json::obj()
        .set("schema", SCHEMA)
        .set("quick", quick)
        .set("n_inputs", n_inputs as f64)
        .set("total_injected", total_injected as f64)
        .set("functions", results.into_iter().map(|r| r.row).collect::<Vec<_>>());
    write_validated(&out_path, &doc, SCHEMA, PER_FN_FIELDS).expect("write chaos manifest");
    println!("wrote {out_path} (schema {SCHEMA}, parsed + validated)");
}
